GO ?= go

.PHONY: all build test check vet fmt race fuzz verify bench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails (and lists the files) when anything is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# check is the CI gate: static checks plus the full suite under the
# race detector.
check: vet fmt race

# fuzz gives the assembler fuzz target a short budget (CI smoke; run
# longer locally when touching the parser).
fuzz:
	$(GO) test ./internal/asm -fuzz FuzzParse -fuzztime 30s

# verify runs the differential oracle over the whole workload suite.
verify:
	$(GO) run ./cmd/dsasim -verify

bench:
	$(GO) test -bench . -benchtime 1x ./...
