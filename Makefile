GO ?= go

.PHONY: all build test check vet fmt lint race allocs fuzz verify resume-oracle bench bench-smoke batch soak soak-short serve service-smoke cluster-smoke partition-chaos ha-chaos

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails (and lists the files) when anything is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint runs go vet always, and staticcheck when it is installed (the
# offline build environment does not ship it; CI installs it).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race ./...

# allocs is the allocation-regression gate: the interpreter's hot
# step loop AND the DSA steady-state watch path (cache hit, CID memo
# replay, checkpointed takeover, batched NEON, commit) must not
# allocate. It must run without -race (the detector's instrumentation
# allocates), which is why it is a separate target from race.
allocs:
	$(GO) test -run 'ZeroAlloc' ./internal/cpu ./internal/dsa

# check is the CI gate: static checks, the allocation gate, and the
# full suite under the race detector.
check: vet fmt allocs race

# fuzz gives the assembler fuzz target a short budget (CI smoke; run
# longer locally when touching the parser). The checked-in corpus under
# internal/asm/testdata/fuzz/FuzzParse starts the run warm.
fuzz:
	$(GO) test ./internal/asm -fuzz FuzzParse -fuzztime 30s

# verify runs the differential oracle over the whole workload suite.
verify:
	$(GO) run ./cmd/dsasim -verify

# resume-oracle runs the interrupt/resume differential oracle on a
# 3-workload subset (the full sweep runs with the regular test suite):
# kill at a random step, resume from the snapshot, require bit-identical
# results. DSASIM_RESUME_SEED replays a failing kill point.
resume-oracle:
	DSASIM_RESUME_WORKLOADS=mm_32x32,str_prep,bit_count \
		$(GO) test -race -run TestInterruptResumeOracle -v ./internal/experiments

# batch runs the whole workload x config matrix under the simulation
# supervisor (concurrent, deadline-guarded, panic-isolated).
batch:
	$(GO) run ./cmd/dsasim -batch -configs extended,original,scalar

# soak-short is the bounded chaos soak CI runs (~30s): every workload
# x fault class concurrently under the race detector, plus synthetic
# panic and runaway jobs — zero lost jobs is the acceptance bar.
soak-short:
	$(GO) test -race -short -run TestChaosSoak -timeout 300s ./internal/integration

# soak is the extended chaos soak (adds sparse fault arming).
soak:
	$(GO) test -race -run TestChaosSoak -timeout 1800s ./internal/integration

# serve boots the dsasimd simulation service on :8077 with its state
# under ./dsasimd-data (job table + per-job checkpoints). SIGTERM
# drains gracefully; restarting resumes interrupted jobs.
serve:
	$(GO) run ./cmd/dsasimd -addr :8077 -data dsasimd-data

# service-smoke is the CI gate for the dsasimd service: the HTTP e2e
# suite (submit/poll parity, 429 backpressure, SSE progress, metric
# names, drain→restart resume) under the race detector, then the real
# binary booted and driven over HTTP with a SIGTERM shutdown.
service-smoke:
	$(GO) test -race -timeout 600s ./internal/server
	$(GO) test -run TestDaemonSmoke -timeout 300s ./cmd/dsasimd

# cluster-smoke is the CI gate for multi-worker dsasimd: the
# in-process lease-protocol suite (expiry takeover, zombie fencing,
# coordinator restart recovery, metric names) under the race
# detector, then real processes — a coordinator plus two workers, one
# SIGKILLed mid-run — with zero lost jobs and results bit-identical
# to a single-process run.
cluster-smoke:
	$(GO) test -race -timeout 600s ./internal/cluster
	$(GO) test -run TestClusterSmoke -timeout 600s ./cmd/dsasimd

# partition-chaos is the network-fault robustness gate: a coordinator
# plus three workers behind commanded TCP proxies, driven through full
# and asymmetric partitions, slow-drip bandwidth, and connection
# resets while every HTTP exchange suffers seeded drop/delay/
# duplicate/reset/truncate/errcode injection — three seeds, race
# detector on, zero lost jobs and bit-identical digests required.
# A failing run logs its seed; DSASIMD_CHAOS_SEED=<seed> replays it.
partition-chaos:
	$(GO) test -race -run TestClusterPartitionChaos -timeout 1800s -v ./cmd/dsasimd

# ha-chaos is the coordinator-failover gate: the in-process HA suite
# (replicated mirror promotion, role endpoints, deposition fencing,
# endpoint rotation) under the race detector, then real processes —
# three replicated coordinators with netchaos-proxied replication
# links plus three workers: the leader SIGKILLed mid-dispatch, its
# replacement rejoined as a standby, and the successor partitioned off
# its peers past the lease TTL — three seeds, zero lost jobs,
# exactly-once completion, bit-identical digests, and every deposed
# term's writes fenced with 409. A failing run logs its seed;
# DSASIMD_CHAOS_SEED=<seed> replays it.
ha-chaos:
	$(GO) test -race -run TestHA -timeout 600s ./internal/cluster
	$(GO) test -race -run TestCoordinatorFailoverChaos -timeout 1800s -v ./cmd/dsasimd

# bench measures simulator throughput (wall-clock, steps/sec, scalar
# and DSA modes) and persists it as BENCH_sim.json, then runs the Go
# benchmark suite (simulated-machine metrics: ticks, speedups, energy).
bench:
	$(GO) run ./cmd/benchsim -out BENCH_sim.json
	$(GO) test -bench . -benchtime 1x ./...

# bench-smoke compiles and runs every benchmark exactly once — the CI
# guard that keeps the bench suite from bit-rotting between perf work.
bench-smoke:
	$(GO) test -bench . -benchtime 1x ./...
