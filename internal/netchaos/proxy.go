package netchaos

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// PartitionMode selects which directions of a Proxy's links are
// blackholed. Asymmetric partitions are the interesting ones: one
// side keeps hearing the other and draws exactly the wrong
// conclusions unless the protocol is fenced properly.
type PartitionMode int

const (
	// Healthy forwards both directions.
	Healthy PartitionMode = iota
	// PartitionBoth blackholes both directions: a full partition.
	PartitionBoth
	// PartitionToTarget blackholes client→target: requests vanish,
	// but target→client bytes already in flight still arrive.
	PartitionToTarget
	// PartitionFromTarget blackholes target→client: requests are
	// delivered and processed, their responses vanish — the classic
	// "did my write land?" ambiguity.
	PartitionFromTarget
)

func (m PartitionMode) String() string {
	switch m {
	case Healthy:
		return "healthy"
	case PartitionBoth:
		return "partition-both"
	case PartitionToTarget:
		return "partition-to-target"
	case PartitionFromTarget:
		return "partition-from-target"
	}
	return fmt.Sprintf("mode-%d", int(m))
}

// Proxy is a commanded TCP relay between one client side (usually a
// cluster worker) and one target (the coordinator). It injects
// topology-level faults the HTTP stack cannot express: partitions,
// asymmetric partitions, slow-drip bandwidth, and connection resets.
// Blackholed bytes are read from the sender and discarded — the
// sender's kernel sees progress, like packets lost beyond the first
// hop — so a heal lets new exchanges flow immediately.
type Proxy struct {
	target string
	ln     net.Listener
	logf   func(format string, args ...any)

	mu          sync.Mutex
	mode        PartitionMode
	bytesPerSec int64
	conns       map[net.Conn]struct{}
	closed      bool
}

// NewProxy listens on 127.0.0.1:0 and relays every connection to
// target (a host:port). Faults are commanded via the Partition /
// SlowDrip / Reset / Heal methods; a fresh proxy is Healthy.
func NewProxy(target string, logf func(string, ...any)) (*Proxy, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, ln: ln, logf: logf, conns: map[net.Conn]struct{}{}}
	go p.accept()
	p.logf("netchaos: proxy %s -> %s", p.Addr(), target)
	return p, nil
}

// Addr is the proxy's listen address (host:port) for clients to dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Partition sets the blackhole mode. PartitionBoth with no heal is a
// full partition; the asymmetric modes cut one direction only.
func (p *Proxy) Partition(mode PartitionMode) {
	p.mu.Lock()
	p.mode = mode
	p.mu.Unlock()
	p.logf("netchaos: proxy %s mode=%s", p.Addr(), mode)
}

// SlowDrip throttles both directions to roughly bytesPerSec
// (0 = unlimited): the link is up but nearly useless, the failure
// mode timeouts are for.
func (p *Proxy) SlowDrip(bytesPerSec int64) {
	p.mu.Lock()
	p.bytesPerSec = bytesPerSec
	p.mu.Unlock()
	p.logf("netchaos: proxy %s slow-drip=%dB/s", p.Addr(), bytesPerSec)
}

// Reset abruptly closes every live relayed connection (RST where the
// platform cooperates), leaving the proxy accepting new ones.
func (p *Proxy) Reset() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
		_ = c.Close()
	}
	p.logf("netchaos: proxy %s reset %d conn(s)", p.Addr(), len(conns))
}

// Heal restores full, unthrottled forwarding.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.mode = Healthy
	p.bytesPerSec = 0
	p.mu.Unlock()
	p.logf("netchaos: proxy %s healed", p.Addr())
}

// Close stops accepting and tears down every live connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	_ = p.ln.Close()
	p.Reset()
}

func (p *Proxy) accept() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.relay(client)
	}
}

// track registers a live conn; untrack removes and closes it.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	_ = c.Close()
}

// relay dials the target and pumps both directions until either side
// ends. Each direction consults the current mode per chunk, so a
// partition or heal applies to connections already in flight.
func (p *Proxy) relay(client net.Conn) {
	upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		_ = client.Close()
		return
	}
	if !p.track(client) || !p.track(upstream) {
		_ = client.Close()
		_ = upstream.Close()
		return
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.pump(client, upstream, true)
	}()
	go func() {
		defer wg.Done()
		p.pump(upstream, client, false)
	}()
	wg.Wait()
	p.untrack(client)
	p.untrack(upstream)
}

// dropNow reports whether bytes flowing in the given direction are
// currently blackholed, and the active drip rate.
func (p *Proxy) dropNow(toTarget bool) (drop bool, bps int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch p.mode {
	case PartitionBoth:
		drop = true
	case PartitionToTarget:
		drop = toTarget
	case PartitionFromTarget:
		drop = !toTarget
	}
	return drop, p.bytesPerSec
}

// pump copies src→dst in small chunks, discarding blackholed bytes
// and pacing under a slow-drip. On either end's failure it closes the
// counterpart's write side so the peer sees EOF rather than a hang.
func (p *Proxy) pump(src, dst net.Conn, toTarget bool) {
	buf := make([]byte, 512)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			drop, bps := p.dropNow(toTarget)
			if !drop {
				if bps > 0 {
					time.Sleep(time.Duration(int64(n) * int64(time.Second) / bps))
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
		}
		if rerr != nil {
			break
		}
	}
	if tc, ok := dst.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
}
