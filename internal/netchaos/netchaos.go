// Package netchaos is a deterministic, seed-replayable network fault
// injector for the dsasimd cluster's robustness proofs. It has two
// faces, matching the two places a distributed protocol can be hurt:
//
//   - Injector, an http.RoundTripper wrapper for client-side faults:
//     dropped connections, stalls until the request deadline, added
//     latency, duplicated requests, connection resets after the server
//     processed the request, truncated response bodies, and error-code
//     substitution. Each request draws at most one fault class from a
//     seeded RNG, so a failing run replays from its seed — the same
//     convention as DSASIM_SOAK_SEED and DSASIM_RESUME_SEED.
//
//   - Proxy, a TCP relay for topology-level faults the client stack
//     cannot see: full partitions, *asymmetric* partitions (one
//     direction blackholed while the other flows), slow-drip
//     bandwidth, connection resets, and healing. The proxy is
//     commanded, not random: chaos tests script its schedule from
//     their own seeded RNG so the whole topology replay is one seed.
//
// The package exists to prove the cluster protocol (internal/cluster)
// keeps its invariants — zero lost jobs, exactly-once completion,
// bit-identical digests — when the network misbehaves, not just when
// processes die.
package netchaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Fault classes, used as count keys and log labels.
const (
	FaultDrop      = "drop"      // connection refused before the request is sent
	FaultTimeout   = "timeout"   // stall until the request context gives up
	FaultDelay     = "delay"     // added latency, then a normal exchange
	FaultDuplicate = "duplicate" // the request is delivered twice
	FaultReset     = "reset"     // server processes it, client sees a reset
	FaultTruncate  = "truncate"  // response body cut short mid-stream
	FaultErrCode   = "errcode"   // response status replaced with 502
)

// Classes lists every client-side fault class in a stable order.
var Classes = []string{
	FaultDrop, FaultTimeout, FaultDelay, FaultDuplicate,
	FaultReset, FaultTruncate, FaultErrCode,
}

// Rates holds per-fault-class probabilities in [0,1]. At most one
// fault fires per request: the classes are stacked cumulatively and a
// single uniform draw picks one (or none), which keeps the draw
// sequence — and therefore the replay — one number per request.
type Rates struct {
	Drop      float64
	Timeout   float64
	Delay     float64
	Duplicate float64
	Reset     float64
	Truncate  float64
	ErrCode   float64
	// MaxDelay bounds the latency added by a delay fault
	// (0 = DefaultMaxDelay).
	MaxDelay time.Duration
}

// DefaultMaxDelay bounds delay faults when Rates.MaxDelay is zero.
const DefaultMaxDelay = 100 * time.Millisecond

// Total is the summed fault probability; it must stay <= 1.
func (r Rates) Total() float64 {
	return r.Drop + r.Timeout + r.Delay + r.Duplicate + r.Reset + r.Truncate + r.ErrCode
}

// String renders the rates in ParseRates' syntax (for replay lines).
func (r Rates) String() string {
	parts := []string{}
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add(FaultDrop, r.Drop)
	add(FaultTimeout, r.Timeout)
	add(FaultDelay, r.Delay)
	add(FaultDuplicate, r.Duplicate)
	add(FaultReset, r.Reset)
	add(FaultTruncate, r.Truncate)
	add(FaultErrCode, r.ErrCode)
	if r.MaxDelay > 0 {
		parts = append(parts, fmt.Sprintf("maxdelay=%s", r.MaxDelay))
	}
	return strings.Join(parts, ",")
}

// ParseRates parses a comma-separated fault spec, e.g.
// "drop=0.05,delay=0.1,maxdelay=200ms". Unknown keys, malformed
// values, or a total probability above 1 are errors — a chaos flag
// that silently does nothing would un-prove the test relying on it.
func ParseRates(spec string) (Rates, error) {
	var r Rates
	if strings.TrimSpace(spec) == "" {
		return r, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return r, fmt.Errorf("netchaos: bad rate %q (want key=value)", kv)
		}
		if k == "maxdelay" {
			d, err := time.ParseDuration(v)
			if err != nil {
				return r, fmt.Errorf("netchaos: bad maxdelay %q: %v", v, err)
			}
			r.MaxDelay = d
			continue
		}
		p, err := strconv.ParseFloat(v, 64)
		if err != nil || p < 0 || p > 1 {
			return r, fmt.Errorf("netchaos: bad probability %q for %s", v, k)
		}
		switch k {
		case FaultDrop:
			r.Drop = p
		case FaultTimeout:
			r.Timeout = p
		case FaultDelay:
			r.Delay = p
		case FaultDuplicate:
			r.Duplicate = p
		case FaultReset:
			r.Reset = p
		case FaultTruncate:
			r.Truncate = p
		case FaultErrCode:
			r.ErrCode = p
		default:
			return r, fmt.Errorf("netchaos: unknown fault class %q", k)
		}
	}
	if t := r.Total(); t > 1 {
		return r, fmt.Errorf("netchaos: fault probabilities sum to %g > 1", t)
	}
	return r, nil
}

// formatCounts renders a fault-count map deterministically for logs.
func formatCounts(counts map[string]uint64) string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	return strings.Join(parts, " ")
}
