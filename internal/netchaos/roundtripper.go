package netchaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// maxStall bounds a timeout fault when the request carries no
// deadline, so an injector can never hang a caller forever.
const maxStall = 5 * time.Second

// Injector is a fault-injecting http.RoundTripper. Every request
// draws one number from the seeded RNG (under a mutex, so a
// sequential caller gets a fully deterministic fault schedule) and
// suffers at most one fault class. Injected faults are counted per
// class; Counts is the test-side evidence that a chaos run actually
// exercised every class it claims to.
type Injector struct {
	base  http.RoundTripper
	rates Rates
	seed  int64
	logf  func(format string, args ...any)

	mu     sync.Mutex
	rng    *rand.Rand
	counts map[string]uint64
}

// NewInjector wraps base (nil = http.DefaultTransport) with the given
// fault rates, drawn from a dedicated RNG seeded with seed.
func NewInjector(seed int64, rates Rates, base http.RoundTripper, logf func(string, ...any)) *Injector {
	if base == nil {
		base = http.DefaultTransport
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if rates.MaxDelay <= 0 {
		rates.MaxDelay = DefaultMaxDelay
	}
	return &Injector{
		base:   base,
		rates:  rates,
		seed:   seed,
		logf:   logf,
		rng:    rand.New(rand.NewSource(seed)),
		counts: map[string]uint64{},
	}
}

// Seed returns the injector's seed (for replay lines).
func (in *Injector) Seed() int64 { return in.seed }

// Counts returns a copy of the per-class injected-fault counters.
func (in *Injector) Counts() map[string]uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// CountsLine renders the counters deterministically for logs.
func (in *Injector) CountsLine() string { return formatCounts(in.Counts()) }

// draw picks this request's fault class ("" = none) and, for delay
// faults, its duration — one RNG consultation per request, so the
// schedule replays from the seed.
func (in *Injector) draw() (class string, delay time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	x := in.rng.Float64()
	for _, c := range []struct {
		name string
		p    float64
	}{
		{FaultDrop, in.rates.Drop},
		{FaultTimeout, in.rates.Timeout},
		{FaultDelay, in.rates.Delay},
		{FaultDuplicate, in.rates.Duplicate},
		{FaultReset, in.rates.Reset},
		{FaultTruncate, in.rates.Truncate},
		{FaultErrCode, in.rates.ErrCode},
	} {
		if x < c.p {
			class = c.name
			break
		}
		x -= c.p
	}
	if class == FaultDelay {
		delay = time.Duration(in.rng.Int63n(int64(in.rates.MaxDelay))) + time.Millisecond
	}
	if class != "" {
		in.counts[class]++
	}
	return class, delay
}

// RoundTrip implements http.RoundTripper.
func (in *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	class, delay := in.draw()
	if class != "" {
		in.logf("netchaos: inject %s on %s %s", class, req.Method, req.URL.Path)
	}

	// Buffer the body up front: duplication needs to send it twice,
	// and the protocol's requests are small JSON documents.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	send := func() (*http.Response, error) {
		r := req.Clone(req.Context())
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		return in.base.RoundTrip(r)
	}

	switch class {
	case FaultDrop:
		// The connection never happens.
		return nil, fmt.Errorf("netchaos: connection dropped (injected)")

	case FaultTimeout:
		// Stall until the caller's deadline: this is what a blackholed
		// link looks like from above, and it is the fault that keeps
		// per-request context deadlines honest.
		ctx := req.Context()
		t := time.NewTimer(maxStall)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
			return nil, fmt.Errorf("netchaos: request stalled (injected)")
		}

	case FaultDelay:
		ctx := req.Context()
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
		return send()

	case FaultDuplicate:
		// Deliver twice; the caller sees the first exchange. The
		// duplicate lands after it, like a retransmitted datagram —
		// the receiver must reject the replay on its own.
		resp, err := send()
		if err != nil {
			return resp, err
		}
		buf, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if dup, derr := send(); derr == nil {
			io.Copy(io.Discard, dup.Body)
			dup.Body.Close()
		}
		resp.Body = io.NopCloser(bytes.NewReader(buf))
		return resp, nil

	case FaultReset:
		// The server fully processes the request, but the client sees
		// a reset before reading the response — the ambiguous failure
		// that forces idempotent retries.
		resp, err := send()
		if err != nil {
			return resp, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("netchaos: connection reset by peer (injected)")

	case FaultTruncate:
		resp, err := send()
		if err != nil {
			return resp, err
		}
		buf, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		resp.Body = io.NopCloser(&truncatedBody{data: buf[:len(buf)/2]})
		return resp, nil

	case FaultErrCode:
		// The exchange happened, but an intermediary swallowed the
		// answer and substituted its own.
		resp, err := send()
		if err != nil {
			return resp, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return &http.Response{
			Status:     "502 Bad Gateway",
			StatusCode: http.StatusBadGateway,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{"Content-Type": []string{"text/plain"}},
			Body:       io.NopCloser(bytes.NewReader([]byte("netchaos: bad gateway (injected)\n"))),
			Request:    req,
		}, nil
	}
	return send()
}

// truncatedBody yields its data then fails with ErrUnexpectedEOF, the
// way a connection torn down mid-body looks to a JSON decoder.
type truncatedBody struct {
	data []byte
	off  int
}

func (t *truncatedBody) Read(p []byte) (int, error) {
	if t.off >= len(t.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, t.data[t.off:])
	t.off += n
	return n, nil
}
