package netchaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newBackend is a tiny JSON echo server counting the requests it
// actually receives — the ground truth for duplicate and reset
// faults, where the client's view and the server's diverge.
func newBackend(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"echo":%q}`, string(body))
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func post(t *testing.T, client *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(`{"ping":1}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	return client.Do(req)
}

// TestParseRates pins the flag syntax the daemon exposes.
func TestParseRates(t *testing.T) {
	r, err := ParseRates("drop=0.05,delay=0.1,duplicate=0.2,maxdelay=250ms")
	if err != nil {
		t.Fatal(err)
	}
	if r.Drop != 0.05 || r.Delay != 0.1 || r.Duplicate != 0.2 || r.MaxDelay != 250*time.Millisecond {
		t.Fatalf("parsed %+v", r)
	}
	for _, bad := range []string{"bogus=0.1", "drop=2", "drop", "drop=0.9,delay=0.9"} {
		if _, err := ParseRates(bad); err == nil {
			t.Errorf("ParseRates(%q) accepted", bad)
		}
	}
	if rt, err := ParseRates(r.String()); err != nil || rt != r {
		t.Errorf("round-trip: %+v vs %+v (%v)", rt, r, err)
	}
}

// TestInjectorDeterminism: two injectors with the same seed produce
// the same fault schedule — the property replay lines depend on.
func TestInjectorDeterminism(t *testing.T) {
	rates := Rates{Drop: 0.2, Delay: 0.2, Duplicate: 0.2, ErrCode: 0.2}
	schedule := func(seed int64) []string {
		in := NewInjector(seed, rates, nil, nil)
		var out []string
		for i := 0; i < 200; i++ {
			c, _ := in.draw()
			out = append(out, c)
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %q vs %q for the same seed", i, a[i], b[i])
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 200-draw schedules")
	}
}

// oneFault builds an injector that fires exactly one class, always.
func oneFault(class string) Rates {
	r := Rates{MaxDelay: 30 * time.Millisecond}
	switch class {
	case FaultDrop:
		r.Drop = 1
	case FaultTimeout:
		r.Timeout = 1
	case FaultDelay:
		r.Delay = 1
	case FaultDuplicate:
		r.Duplicate = 1
	case FaultReset:
		r.Reset = 1
	case FaultTruncate:
		r.Truncate = 1
	case FaultErrCode:
		r.ErrCode = 1
	}
	return r
}

// TestInjectorFaultClasses drives each class at probability 1 against
// a live backend and asserts the client-visible and server-visible
// effects separately.
func TestInjectorFaultClasses(t *testing.T) {
	for _, class := range Classes {
		t.Run(class, func(t *testing.T) {
			ts, hits := newBackend(t)
			in := NewInjector(1, oneFault(class), nil, t.Logf)
			client := &http.Client{Transport: in}

			switch class {
			case FaultDrop:
				if _, err := post(t, client, ts.URL); err == nil {
					t.Fatal("dropped request returned a response")
				}
				if hits.Load() != 0 {
					t.Fatalf("dropped request reached the server %d times", hits.Load())
				}

			case FaultTimeout:
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				defer cancel()
				req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL, strings.NewReader("{}"))
				start := time.Now()
				_, err := client.Do(req)
				if err == nil {
					t.Fatal("stalled request returned a response")
				}
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("stall error = %v, want the caller's deadline", err)
				}
				if time.Since(start) < 40*time.Millisecond {
					t.Fatal("stall returned before the request deadline")
				}

			case FaultDelay:
				start := time.Now()
				resp, err := post(t, client, ts.URL)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if time.Since(start) < time.Millisecond {
					t.Fatal("delay fault added no latency")
				}
				if hits.Load() != 1 {
					t.Fatalf("delayed request hit the server %d times", hits.Load())
				}

			case FaultDuplicate:
				resp, err := post(t, client, ts.URL)
				if err != nil {
					t.Fatal(err)
				}
				var body struct {
					Echo string `json:"echo"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
					t.Fatalf("decoding the first exchange: %v", err)
				}
				resp.Body.Close()
				if body.Echo != `{"ping":1}` {
					t.Fatalf("echo = %q", body.Echo)
				}
				if hits.Load() != 2 {
					t.Fatalf("duplicated request hit the server %d times, want 2", hits.Load())
				}

			case FaultReset:
				if _, err := post(t, client, ts.URL); err == nil {
					t.Fatal("reset request returned a response")
				}
				if hits.Load() != 1 {
					t.Fatalf("reset request hit the server %d times, want 1 (processed, answer lost)", hits.Load())
				}

			case FaultTruncate:
				resp, err := post(t, client, ts.URL)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				var v map[string]any
				err = json.NewDecoder(resp.Body).Decode(&v)
				if err == nil {
					t.Fatal("truncated body decoded cleanly")
				}

			case FaultErrCode:
				resp, err := post(t, client, ts.URL)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusBadGateway {
					t.Fatalf("status = %d, want 502", resp.StatusCode)
				}
				if hits.Load() != 1 {
					t.Fatalf("substituted request hit the server %d times", hits.Load())
				}
			}

			if n := in.Counts()[class]; n < 1 {
				t.Errorf("counts[%s] = %d, want >= 1 (line: %s)", class, n, in.CountsLine())
			}
		})
	}
}

// shortClient builds a client with a small timeout for partition
// probes, where the expected outcome is "hangs until deadline".
func shortClient(d time.Duration) *http.Client {
	return &http.Client{Timeout: d, Transport: &http.Transport{DisableKeepAlives: true}}
}

// TestProxyPartitionHeal: a full partition blackholes requests (the
// server never sees them), and a heal restores service on the same
// proxy address.
func TestProxyPartitionHeal(t *testing.T) {
	ts, hits := newBackend(t)
	p, err := NewProxy(strings.TrimPrefix(ts.URL, "http://"), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	base := "http://" + p.Addr()

	resp, err := post(t, shortClient(2*time.Second), base)
	if err != nil {
		t.Fatalf("healthy proxy: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("healthy proxy delivered %d requests", hits.Load())
	}

	p.Partition(PartitionBoth)
	if _, err := post(t, shortClient(300*time.Millisecond), base); err == nil {
		t.Fatal("request crossed a full partition")
	}
	if hits.Load() != 1 {
		t.Fatalf("partitioned request reached the server (%d hits)", hits.Load())
	}

	p.Heal()
	resp, err = post(t, shortClient(2*time.Second), base)
	if err != nil {
		t.Fatalf("healed proxy: %v", err)
	}
	resp.Body.Close()
}

// TestProxyAsymmetricPartition: with target→client blackholed, the
// request is processed but the answer vanishes — and with
// client→target blackholed, the server never hears anything.
func TestProxyAsymmetricPartition(t *testing.T) {
	ts, hits := newBackend(t)
	p, err := NewProxy(strings.TrimPrefix(ts.URL, "http://"), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	base := "http://" + p.Addr()

	p.Partition(PartitionFromTarget)
	if _, err := post(t, shortClient(400*time.Millisecond), base); err == nil {
		t.Fatal("got a response across a from-target partition")
	}
	deadline := time.Now().Add(2 * time.Second)
	for hits.Load() != 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if hits.Load() != 1 {
		t.Fatalf("from-target partition: server hits = %d, want 1 (request must still be delivered)", hits.Load())
	}

	p.Heal()
	p.Partition(PartitionToTarget)
	if _, err := post(t, shortClient(400*time.Millisecond), base); err == nil {
		t.Fatal("got a response across a to-target partition")
	}
	if hits.Load() != 1 {
		t.Fatalf("to-target partition: server hits = %d, want still 1", hits.Load())
	}
}

// TestProxySlowDripAndReset: a slow-drip link delays the exchange
// measurably, and Reset tears live connections down hard.
func TestProxySlowDripAndReset(t *testing.T) {
	ts, _ := newBackend(t)
	p, err := NewProxy(strings.TrimPrefix(ts.URL, "http://"), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	base := "http://" + p.Addr()

	// ~120 bytes of request + ~160 of response at 2 KiB/s ≈ 140ms.
	p.SlowDrip(2048)
	start := time.Now()
	resp, err := post(t, shortClient(5*time.Second), base)
	if err != nil {
		t.Fatalf("slow-drip: %v", err)
	}
	resp.Body.Close()
	if since := time.Since(start); since < 20*time.Millisecond {
		t.Fatalf("slow-drip exchange took %v, want visible pacing", since)
	}
	p.Heal()

	// Park a connection mid-exchange, then reset it.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Second)
	}))
	t.Cleanup(slow.Close)
	p2, err := NewProxy(strings.TrimPrefix(slow.URL, "http://"), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p2.Close)
	errCh := make(chan error, 1)
	go func() {
		_, err := post(t, shortClient(5*time.Second), "http://"+p2.Addr())
		errCh <- err
	}()
	time.Sleep(100 * time.Millisecond)
	p2.Reset()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("reset connection completed its exchange")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("reset did not break the in-flight exchange")
	}
}
