package mem

import (
	"bytes"
	"testing"
)

func TestJournalRollbackRestoresBytes(t *testing.T) {
	m := New(1 << 16)
	if err := m.Store(0x100, 4, 0x11223344); err != nil {
		t.Fatal(err)
	}
	j := m.BeginJournal()
	// Word store, byte store, block store straddling a page boundary.
	if err := m.Store(0x100, 4, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if err := m.Store(0x2ff, 1, 0x7f); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreBlock(0x3f0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if got := len(j.Pages()); got != 4 {
		t.Fatalf("touched pages = %d, want 4 (0x100, 0x200, 0x300, 0x400)", got)
	}
	j.Rollback()
	v, _ := m.Load(0x100, 4)
	if v != 0x11223344 {
		t.Errorf("rolled-back word = %#x, want 0x11223344", v)
	}
	b, _ := m.Load(0x2ff, 1)
	if b != 0 {
		t.Errorf("rolled-back byte = %#x, want 0", b)
	}
	if m.journal != nil {
		t.Error("journal still attached after rollback")
	}
}

func TestJournalCommitKeepsBytes(t *testing.T) {
	m := New(1 << 16)
	j := m.BeginJournal()
	if err := m.Store(0x40, 4, 42); err != nil {
		t.Fatal(err)
	}
	j.Commit()
	v, _ := m.Load(0x40, 4)
	if v != 42 {
		t.Errorf("committed word = %d, want 42", v)
	}
	// A fresh journal can start after commit.
	m.BeginJournal().Rollback()
}

func TestJournalLastPageShortSave(t *testing.T) {
	// Memory whose size is not a page multiple: the final partial page
	// must journal without running past the backing slice.
	m := New(journalPageBytes + 8)
	j := m.BeginJournal()
	if err := m.Store(uint32(journalPageBytes), 4, 7); err != nil {
		t.Fatal(err)
	}
	j.Rollback()
	v, _ := m.Load(uint32(journalPageBytes), 4)
	if v != 0 {
		t.Errorf("short-page rollback = %d, want 0", v)
	}
}

func TestSnapshotPage(t *testing.T) {
	m := New(1 << 12)
	m.Store(8, 4, 0xabcd)
	snap := m.SnapshotPage(0)
	var want [journalPageBytes]byte
	want[8], want[9] = 0xcd, 0xab
	if !bytes.Equal(snap, want[:]) {
		t.Error("snapshot does not match memory contents")
	}
}

// TestSnapshotPageNoAlias pins the copy-semantics contract: the slice
// SnapshotPage returns must never alias live memory, in either
// direction, including across a journal rollback.
func TestSnapshotPageNoAlias(t *testing.T) {
	m := New(1 << 12)
	m.Store(8, 4, 0xabcd)
	snap := m.SnapshotPage(0)
	frozen := append([]byte(nil), snap...)

	// Later stores — plain, and journaled-then-rolled-back — must not
	// reach into the snapshot.
	m.Store(8, 4, 0x1111)
	j := m.BeginJournal()
	m.Store(12, 4, 0x2222)
	j.Rollback()
	if !bytes.Equal(snap, frozen) {
		t.Error("snapshot mutated by stores after it was taken — SnapshotPage aliases live memory")
	}

	// Writes through the snapshot must not reach back into memory.
	for i := range snap {
		snap[i] = 0xff
	}
	if v, _ := m.Load(8, 4); v != 0x1111 {
		t.Errorf("memory word = %#x after scribbling on snapshot, want 0x1111", v)
	}
}
