package mem

import "sort"

// journalPageBytes is the copy-on-write granularity of the undo log.
// 256 bytes keeps the per-store bookkeeping to one map lookup while
// bounding the saved state to a few pages per takeover window.
const journalPageBytes = 256

// Journal is a copy-on-write undo log over a Memory: from BeginJournal
// until Commit or Rollback, the first store into each 256-byte page
// saves the page's prior contents, so the memory image at journal
// start can be restored exactly. The DSA's checkpoint layer uses one
// journal per speculative takeover.
type Journal struct {
	mem   *Memory
	pages map[uint32][]byte // page base address → saved contents

	// lastPage short-circuits record for the overwhelmingly common
	// case: consecutive stores landing in a page already saved.
	lastPage uint32
	lastOK   bool
}

// BeginJournal starts an undo journal. Only one journal can be active
// at a time; starting a second one panics (a nested speculative region
// is a programming error in the checkpoint layer).
func (m *Memory) BeginJournal() *Journal {
	if m.journal != nil {
		panic("mem: journal already active")
	}
	j := m.jFree
	if j != nil {
		m.jFree = nil
	} else {
		j = &Journal{mem: m, pages: make(map[uint32][]byte)}
	}
	m.journal = j
	return j
}

// record saves the pages overlapping [addr, addr+n) before they are
// overwritten. Called from Store/StoreBlock with bounds already
// checked.
func (j *Journal) record(addr uint32, n int) {
	first := addr &^ (journalPageBytes - 1)
	last := (addr + uint32(n) - 1) &^ (journalPageBytes - 1)
	if first == last && j.lastOK && first == j.lastPage {
		return
	}
	for p := first; ; p += journalPageBytes {
		if _, seen := j.pages[p]; !seen {
			end := int(p) + journalPageBytes
			if end > len(j.mem.data) {
				end = len(j.mem.data)
			}
			var old []byte
			if size := end - int(p); size == journalPageBytes {
				if k := len(j.mem.pageFree); k > 0 {
					old = j.mem.pageFree[k-1]
					j.mem.pageFree = j.mem.pageFree[:k-1]
				}
			}
			if old == nil {
				old = make([]byte, end-int(p))
			}
			copy(old, j.mem.data[p:end])
			j.pages[p] = old
		}
		if p == last {
			break
		}
	}
	j.lastPage, j.lastOK = last, true
}

// Rollback restores every journaled page to its saved contents and
// detaches the journal.
func (j *Journal) Rollback() {
	for p, old := range j.pages {
		copy(j.mem.data[p:int(p)+len(old)], old)
	}
	j.detach()
}

// Commit discards the undo log, keeping the current memory contents,
// and detaches the journal.
func (j *Journal) Commit() { j.detach() }

// maxPooledPages bounds how many page buffers the memory retains for
// reuse — enough for any realistic takeover window, small enough that
// a one-off huge journal does not pin its footprint forever.
const maxPooledPages = 256

func (j *Journal) detach() {
	if j.mem.journal == j {
		j.mem.journal = nil
	}
	// Recycle the journal and its full-size page buffers. SavedPage
	// views are only valid while the journal is attached (all callers
	// diff before Commit/Rollback), so reuse cannot alias live reads.
	for p, old := range j.pages {
		if len(old) == journalPageBytes && len(j.mem.pageFree) < maxPooledPages {
			j.mem.pageFree = append(j.mem.pageFree, old)
		}
		delete(j.pages, p)
	}
	j.lastOK = false
	if j.mem.jFree == nil {
		j.mem.jFree = j
	}
}

// Pages returns the base addresses of every journaled (written) page
// in ascending order — the takeover's touched-memory footprint.
func (j *Journal) Pages() []uint32 {
	out := make([]uint32, 0, len(j.pages))
	for p := range j.pages {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// PageSize returns the journal's copy-on-write granularity in bytes.
func PageSize() int { return journalPageBytes }

// SavedPage returns the pre-journal contents of the page at base (nil
// when the page was never written under this journal).
func (j *Journal) SavedPage(base uint32) []byte { return j.pages[base] }

// SnapshotPage returns a copy of the *current* contents of the page at
// base — used to capture a speculative outcome before rolling back,
// and by snapshot writers serializing the memory image.
//
// Copy semantics are part of the contract: the returned slice is
// freshly allocated and never aliases live memory, so later stores
// (including journal rollbacks) cannot mutate it after the fact. A
// snapshot writer that held an aliasing view here could persist a torn
// read — half pre-store, half post-store bytes.
func (m *Memory) SnapshotPage(base uint32) []byte {
	end := int(base) + journalPageBytes
	if end > len(m.data) {
		end = len(m.data)
	}
	out := make([]byte, end-int(base))
	copy(out, m.data[base:end])
	return out
}

// PageView returns the page at base as a read-only alias of live
// memory — no copy. Unlike SnapshotPage the view is invalidated by the
// next store; it exists for transient same-call comparisons (the
// verifier's page diff), never for retention.
func (m *Memory) PageView(base uint32) []byte {
	end := int(base) + journalPageBytes
	if end > len(m.data) {
		end = len(m.data)
	}
	return m.data[base:end]
}
