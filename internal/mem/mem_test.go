package mem

import (
	"testing"
	"testing/quick"
)

func TestLoadStoreSizes(t *testing.T) {
	m := New(1024)
	if err := m.Store(0, 4, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	// Little-endian byte order.
	for i, want := range []uint32{0xEF, 0xBE, 0xAD, 0xDE} {
		got, err := m.Load(uint32(i), 1)
		if err != nil || got != want {
			t.Errorf("byte %d = %#x, want %#x (err %v)", i, got, want, err)
		}
	}
	h, _ := m.Load(2, 2)
	if h != 0xDEAD {
		t.Errorf("half = %#x", h)
	}
	w, _ := m.Load(0, 4)
	if w != 0xDEADBEEF {
		t.Errorf("word = %#x", w)
	}
}

func TestBounds(t *testing.T) {
	m := New(16)
	if _, err := m.Load(13, 4); err == nil {
		t.Error("load straddling end must fail")
	}
	if err := m.Store(16, 1, 0); err == nil {
		t.Error("store past end must fail")
	}
	if _, err := m.Load(12, 4); err != nil {
		t.Errorf("last word load failed: %v", err)
	}
	if _, err := m.Load(0, 3); err == nil {
		t.Error("bad size must fail")
	}
	if err := m.Store(0, 8, 0); err == nil {
		t.Error("bad store size must fail")
	}
}

func TestTypedAccessors(t *testing.T) {
	m := New(4096)
	words := []int32{1, -2, 3, -2147483648}
	if err := m.WriteWords(100, words); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadWords(100, len(words))
	if err != nil {
		t.Fatal(err)
	}
	for i := range words {
		if got[i] != words[i] {
			t.Errorf("word %d = %d, want %d", i, got[i], words[i])
		}
	}
	fl := []float32{1.5, -0.25, 3e8}
	if err := m.WriteFloats(200, fl); err != nil {
		t.Fatal(err)
	}
	gf, err := m.ReadFloats(200, len(fl))
	if err != nil {
		t.Fatal(err)
	}
	for i := range fl {
		if gf[i] != fl[i] {
			t.Errorf("float %d = %v, want %v", i, gf[i], fl[i])
		}
	}
	bs := []byte{9, 8, 7}
	if err := m.WriteBytes(300, bs); err != nil {
		t.Fatal(err)
	}
	gb, _ := m.ReadBytes(300, 3)
	if gb[0] != 9 || gb[2] != 7 {
		t.Errorf("bytes = %v", gb)
	}
}

func TestQuickWordRoundTrip(t *testing.T) {
	m := New(1 << 16)
	f := func(addr uint16, v uint32) bool {
		a := uint32(addr) &^ 3
		if err := m.Store(a, 4, v); err != nil {
			return a+4 > uint32(m.Size())
		}
		got, err := m.Load(a, 4)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCacheHitMiss(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	cold := h.Access(0x1000, 4)
	warm := h.Access(0x1000, 4)
	if cold <= warm {
		t.Errorf("cold access (%d) must cost more than warm (%d)", cold, warm)
	}
	if warm != DefaultHierarchy().L1.HitTicks {
		t.Errorf("warm hit = %d ticks, want %d", warm, DefaultHierarchy().L1.HitTicks)
	}
	s := h.L1Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("L1 stats = %+v", s)
	}
}

func TestCacheSameLine(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	h.Access(0x2000, 4)
	// Same 64-byte line → hit.
	if got := h.Access(0x2030, 4); got != DefaultHierarchy().L1.HitTicks {
		t.Errorf("same-line access = %d ticks", got)
	}
}

func TestCacheLineStraddle(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	h.Access(0x0, 4)
	h.Access(0x40, 4) // warm both lines
	straddle := h.Access(0x38, 16)
	if straddle != 2*DefaultHierarchy().L1.HitTicks {
		t.Errorf("straddling warm access = %d ticks, want %d", straddle, 2*DefaultHierarchy().L1.HitTicks)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	cfg := HierarchyConfig{
		L1:       CacheConfig{SizeBytes: 256, LineBytes: 64, Ways: 2, HitTicks: 1}, // 2 sets × 2 ways
		L2:       CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 4, HitTicks: 10},
		MemTicks: 100,
	}
	h := NewHierarchy(cfg)
	// Three lines mapping to set 0 (stride = 2 sets × 64 B = 128 B).
	h.Access(0x000, 4) // miss
	h.Access(0x080, 4) // miss, set now {0x080, 0x000}
	h.Access(0x100, 4) // miss, evicts LRU 0x000
	if got := h.Access(0x080, 4); got != 1 {
		t.Errorf("0x080 should still hit L1, got %d ticks", got)
	}
	got := h.Access(0x000, 4) // evicted from L1, but present in L2
	if got != 1+10 {
		t.Errorf("0x000 should hit L2, got %d ticks", got)
	}
}

func TestL2MissCost(t *testing.T) {
	cfg := DefaultHierarchy()
	h := NewHierarchy(cfg)
	got := h.Access(0x123400, 4)
	want := cfg.L1.HitTicks + cfg.L2.HitTicks + cfg.MemTicks
	if got != want {
		t.Errorf("cold miss = %d, want %d", got, want)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	h.Access(0x100, 4)
	h.Reset()
	if h.Accesses != 0 || h.L1Stats().Misses != 0 {
		t.Error("reset did not clear counters")
	}
	if got := h.Access(0x100, 4); got == DefaultHierarchy().L1.HitTicks {
		t.Error("reset did not clear cache contents")
	}
}

func TestAccessWriteBuffered(t *testing.T) {
	cfg := DefaultHierarchy()
	h := NewHierarchy(cfg)
	// A cold store costs only the L1 port (write buffer hides the miss)…
	if got := h.AccessWrite(0x9000, 4); got != cfg.L1.HitTicks {
		t.Errorf("cold store = %d ticks, want %d", got, cfg.L1.HitTicks)
	}
	// …but still allocates the line, so the following load hits.
	if got := h.Access(0x9000, 4); got != cfg.L1.HitTicks {
		t.Errorf("load after store = %d ticks, want %d (write-allocate)", got, cfg.L1.HitTicks)
	}
}

func TestAccessWriteStraddle(t *testing.T) {
	cfg := DefaultHierarchy()
	h := NewHierarchy(cfg)
	if got := h.AccessWrite(0x38, 16); got != 2*cfg.L1.HitTicks {
		t.Errorf("straddling store = %d ticks, want %d", got, 2*cfg.L1.HitTicks)
	}
}
