// Package mem provides the data-memory substrate shared by the scalar
// core, the NEON engine and the DSA: a flat little-endian byte memory
// for functional state plus a two-level set-associative LRU cache model
// for timing (64 KB L1 / 512 KB L2, matching the dissertation's systems
// setup).
package mem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrOutOfRange marks accesses past the end of simulated memory;
// callers classify takeover failures with errors.Is.
var ErrOutOfRange = errors.New("address out of range")

// DefaultSize is the simulated physical memory size (16 MiB), ample for
// every workload in the suite.
const DefaultSize = 16 << 20

// Memory is flat, byte-addressable, little-endian storage. An
// optional undo journal records overwritten bytes so speculative
// execution (DSA takeovers) can be rolled back precisely.
type Memory struct {
	data    []byte
	journal *Journal

	// Journal recycling: one spare Journal plus full-size page buffers
	// reclaimed at detach, so the once-per-takeover checkpoint costs no
	// steady-state allocations (see journal.go).
	jFree    *Journal
	pageFree [][]byte
}

// New returns a zeroed memory of size bytes (DefaultSize if size <= 0).
func New(size int) *Memory {
	if size <= 0 {
		size = DefaultSize
	}
	return &Memory{data: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// Sum64 returns an FNV-1a digest of the whole memory image without
// copying it. The batch supervisor keeps this 8-byte digest per job
// instead of the multi-megabyte image, so result retention stays flat
// while degraded runs can still be diffed against a scalar reference.
func (m *Memory) Sum64() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range m.data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// rangeErr and badSizeErr build the cold-path errors out of line so
// check, Load and Store stay within the compiler's inlining budget —
// they sit on the interpreter's per-instruction path.
func (m *Memory) rangeErr(addr uint32, n int) error {
	return fmt.Errorf("mem: access [%#x, %#x) %w (size %#x)", addr, int(addr)+n, ErrOutOfRange, len(m.data))
}

func badSizeErr(size int) error {
	return fmt.Errorf("mem: bad access size %d", size)
}

func (m *Memory) check(addr uint32, n int) error {
	if int(addr)+n > len(m.data) {
		return m.rangeErr(addr, n)
	}
	return nil
}

// Load reads size (1, 2 or 4) bytes at addr, zero-extended.
func (m *Memory) Load(addr uint32, size int) (uint32, error) {
	if int(addr)+size > len(m.data) {
		return 0, m.rangeErr(addr, size)
	}
	switch size {
	case 1:
		return uint32(m.data[addr]), nil
	case 2:
		return uint32(binary.LittleEndian.Uint16(m.data[addr:])), nil
	case 4:
		return binary.LittleEndian.Uint32(m.data[addr:]), nil
	default:
		return 0, badSizeErr(size)
	}
}

// Store writes the low size bytes of v at addr.
func (m *Memory) Store(addr uint32, size int, v uint32) error {
	if int(addr)+size > len(m.data) {
		return m.rangeErr(addr, size)
	}
	if m.journal != nil {
		m.journal.record(addr, size)
	}
	switch size {
	case 1:
		m.data[addr] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(m.data[addr:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(m.data[addr:], v)
	default:
		return badSizeErr(size)
	}
	return nil
}

// ReadAt copies len(dst) bytes starting at addr into dst. Unlike
// LoadBlock it does not allocate, so it can sit on the vector-execution
// hot path.
func (m *Memory) ReadAt(addr uint32, dst []byte) error {
	if err := m.check(addr, len(dst)); err != nil {
		return err
	}
	copy(dst, m.data[addr:])
	return nil
}

// LoadBlock copies n bytes starting at addr into a fresh slice.
func (m *Memory) LoadBlock(addr uint32, n int) ([]byte, error) {
	if err := m.check(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, m.data[addr:])
	return out, nil
}

// StoreBlock writes b at addr.
func (m *Memory) StoreBlock(addr uint32, b []byte) error {
	if err := m.check(addr, len(b)); err != nil {
		return err
	}
	if m.journal != nil {
		m.journal.record(addr, len(b))
	}
	copy(m.data[addr:], b)
	return nil
}

// --- typed convenience accessors (workload setup and verification) ---

// WriteWords stores 32-bit values starting at addr.
func (m *Memory) WriteWords(addr uint32, vals []int32) error {
	for i, v := range vals {
		if err := m.Store(addr+uint32(4*i), 4, uint32(v)); err != nil {
			return err
		}
	}
	return nil
}

// ReadWords loads n 32-bit values starting at addr.
func (m *Memory) ReadWords(addr uint32, n int) ([]int32, error) {
	out := make([]int32, n)
	for i := range out {
		v, err := m.Load(addr+uint32(4*i), 4)
		if err != nil {
			return nil, err
		}
		out[i] = int32(v)
	}
	return out, nil
}

// WriteBytes stores 8-bit values starting at addr.
func (m *Memory) WriteBytes(addr uint32, vals []byte) error {
	return m.StoreBlock(addr, vals)
}

// ReadBytes loads n bytes starting at addr.
func (m *Memory) ReadBytes(addr uint32, n int) ([]byte, error) {
	return m.LoadBlock(addr, n)
}

// WriteFloats stores float32 values starting at addr.
func (m *Memory) WriteFloats(addr uint32, vals []float32) error {
	for i, v := range vals {
		if err := m.Store(addr+uint32(4*i), 4, math.Float32bits(v)); err != nil {
			return err
		}
	}
	return nil
}

// ReadFloats loads n float32 values starting at addr.
func (m *Memory) ReadFloats(addr uint32, n int) ([]float32, error) {
	out := make([]float32, n)
	for i := range out {
		v, err := m.Load(addr+uint32(4*i), 4)
		if err != nil {
			return nil, err
		}
		out[i] = math.Float32frombits(v)
	}
	return out, nil
}
