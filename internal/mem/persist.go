package mem

import (
	"fmt"

	"repro/internal/snapshot"
)

// snapPageBytes is the granularity of the durable memory image: the
// snapshot stores only pages with non-zero content, so a 16 MiB
// machine whose workload touches a few hundred KiB serializes to a few
// hundred KiB. Distinct from journalPageBytes (the speculative undo
// granularity) on purpose — durable snapshots want fewer, larger
// extents.
const snapPageBytes = 4096

// JournalActive reports whether a speculative undo journal is open.
// Snapshot writers use it as a guard: serializing memory mid-journal
// would capture half-applied speculative stores.
func (m *Memory) JournalActive() bool { return m.journal != nil }

// SaveState encodes the memory as its size plus every non-zero
// 4 KiB page. The caller must not snapshot while a journal is active
// (see JournalActive); doing so panics, matching BeginJournal's
// contract that the checkpoint layer sequences these.
func (m *Memory) SaveState(e *snapshot.Enc) {
	if m.journal != nil {
		panic("mem: SaveState during active journal")
	}
	e.Int(len(m.data))
	e.U32(snapPageBytes)
	nonZero := 0
	for base := 0; base < len(m.data); base += snapPageBytes {
		if !zeroPage(m.data[base:min(base+snapPageBytes, len(m.data))]) {
			nonZero++
		}
	}
	e.U32(uint32(nonZero))
	for base := 0; base < len(m.data); base += snapPageBytes {
		page := m.data[base:min(base+snapPageBytes, len(m.data))]
		if zeroPage(page) {
			continue
		}
		e.U32(uint32(base))
		e.Raw(page)
	}
}

// RestoreState rebuilds the memory image from d. The encoded size must
// match the live memory's size; pages outside the encoded set are
// zeroed, so restore is exact regardless of the memory's prior
// contents.
func (m *Memory) RestoreState(d *snapshot.Dec) error {
	if m.journal != nil {
		panic("mem: RestoreState during active journal")
	}
	size := d.Int()
	pageBytes := d.U32()
	if err := d.Err(); err != nil {
		return err
	}
	if size != len(m.data) {
		return fmt.Errorf("%w: snapshot memory size %d, machine has %d", snapshot.ErrMismatch, size, len(m.data))
	}
	if pageBytes != snapPageBytes {
		return fmt.Errorf("%w: snapshot page size %d, want %d", snapshot.ErrCorrupt, pageBytes, snapPageBytes)
	}
	clear(m.data)
	n := d.U32()
	for i := uint32(0); i < n; i++ {
		base := int(d.U32())
		if base%snapPageBytes != 0 || base >= len(m.data) {
			return fmt.Errorf("%w: memory page base %#x", snapshot.ErrCorrupt, base)
		}
		page := d.Raw(min(snapPageBytes, len(m.data)-base))
		if page == nil {
			return d.Err()
		}
		copy(m.data[base:], page)
	}
	return nil
}

func zeroPage(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// SaveState encodes the hierarchy's tag arrays and counters. Ticks
// charged per access depend on the LRU state, so a resumed run only
// reproduces the uninterrupted run's tick count if the cache model is
// restored exactly.
func (h *Hierarchy) SaveState(e *snapshot.Enc) {
	e.U64(h.Accesses)
	h.l1.save(e)
	h.l2.save(e)
}

// RestoreState rebuilds the cache model from d. The snapshot's
// geometry (set count, ways) must match the live configuration; a
// mismatch means the snapshot was taken under a different hierarchy
// config and is rejected with ErrMismatch.
func (h *Hierarchy) RestoreState(d *snapshot.Dec) error {
	h.Accesses = d.U64()
	if err := h.l1.restore(d); err != nil {
		return fmt.Errorf("L1: %w", err)
	}
	if err := h.l2.restore(d); err != nil {
		return fmt.Errorf("L2: %w", err)
	}
	return nil
}

func (c *cacheLevel) save(e *snapshot.Enc) {
	e.U64(c.hits)
	e.U64(c.misses)
	e.U32(uint32(len(c.sets)))
	e.U32(uint32(c.cfg.Ways))
	for i := range c.sets {
		tags := c.sets[i].tags
		e.U8(uint8(len(tags)))
		for _, t := range tags {
			e.U32(t)
		}
	}
}

func (c *cacheLevel) restore(d *snapshot.Dec) error {
	hits := d.U64()
	misses := d.U64()
	nSets := int(d.U32())
	ways := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if nSets != len(c.sets) || ways != c.cfg.Ways {
		return fmt.Errorf("%w: cache geometry %d sets × %d ways, machine has %d × %d",
			snapshot.ErrMismatch, nSets, ways, len(c.sets), c.cfg.Ways)
	}
	c.hits, c.misses = hits, misses
	for i := range c.sets {
		n := int(d.U8())
		if n > c.cfg.Ways {
			return fmt.Errorf("%w: set %d holds %d tags, max %d", snapshot.ErrCorrupt, i, n, c.cfg.Ways)
		}
		tags := c.sets[i].tags[:0]
		for j := 0; j < n; j++ {
			tags = append(tags, d.U32())
		}
		c.sets[i].tags = tags
	}
	return d.Err()
}
