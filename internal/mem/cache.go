package mem

// Cache timing model: two-level, set-associative, LRU replacement —
// "L1 64 kb / L2 512 kb / Cache Policy LRU" per the dissertation's
// systems setup (Table 4). The model tracks tags only; data always
// lives in Memory. Access returns a latency in ticks which the CPU
// and NEON timing models add to the instruction cost.

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int
	LineBytes int
	Ways      int
	HitTicks  int64 // latency charged on a hit at this level
}

// HierarchyConfig describes the full data-memory hierarchy.
type HierarchyConfig struct {
	L1, L2    CacheConfig
	MemTicks  int64 // main-memory latency on L2 miss
	TicksUnit string
}

// DefaultHierarchy reproduces the paper's setup with latencies in
// tick units (10 ticks = 1 CPU cycle at 1 GHz; see cpu.TicksPerCycle).
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1:       CacheConfig{SizeBytes: 64 << 10, LineBytes: 64, Ways: 4, HitTicks: 10},  // 1 cycle
		L2:       CacheConfig{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8, HitTicks: 80}, // 8 cycles
		MemTicks: 600,                                                                     // 60 cycles
	}
}

type cacheSet struct {
	tags []uint32 // MRU first
}

type cacheLevel struct {
	cfg      CacheConfig
	sets     []cacheSet
	setShift uint
	setMask  uint32
	hits     uint64
	misses   uint64
}

func newCacheLevel(cfg CacheConfig) *cacheLevel {
	nLines := cfg.SizeBytes / cfg.LineBytes
	nSets := nLines / cfg.Ways
	if nSets < 1 {
		nSets = 1
	}
	shift := uint(0)
	for (1 << shift) < cfg.LineBytes {
		shift++
	}
	c := &cacheLevel{cfg: cfg, sets: make([]cacheSet, nSets), setShift: shift, setMask: uint32(nSets - 1)}
	for i := range c.sets {
		c.sets[i].tags = make([]uint32, 0, cfg.Ways)
	}
	return c
}

// access touches the line containing addr; it returns true on hit and
// updates LRU order, inserting on miss. The first-way check is split
// out because repeated references to the same line (a word-stream
// walking a 64-byte line) hit the MRU slot almost every time, where
// the reorder is a no-op.
func (c *cacheLevel) access(addr uint32) bool {
	line := addr >> c.setShift
	set := &c.sets[line&c.setMask]
	if tags := set.tags; len(tags) > 0 && tags[0] == line {
		c.hits++
		return true
	}
	for i, t := range set.tags {
		if t == line {
			// Move to MRU position.
			copy(set.tags[1:i+1], set.tags[:i])
			set.tags[0] = line
			c.hits++
			return true
		}
	}
	c.misses++
	if len(set.tags) < c.cfg.Ways {
		set.tags = append(set.tags, 0)
	}
	copy(set.tags[1:], set.tags)
	set.tags[0] = line
	return false
}

// Stats holds hit/miss counters for one cache level.
type Stats struct {
	Hits, Misses uint64
}

// Hierarchy is the two-level cache timing model.
type Hierarchy struct {
	cfg HierarchyConfig
	l1  *cacheLevel
	l2  *cacheLevel
	// Accesses counts every data-memory reference fed to the model.
	Accesses uint64
}

// NewHierarchy builds the model from cfg.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{cfg: cfg, l1: newCacheLevel(cfg.L1), l2: newCacheLevel(cfg.L2)}
}

// Access charges one load of width bytes at addr and returns its
// latency in ticks. References that straddle a line boundary charge
// both lines (relevant for 16-byte vector accesses).
func (h *Hierarchy) Access(addr uint32, width int) int64 {
	h.Accesses++
	first := addr >> h.l1.setShift
	last := (addr + uint32(width) - 1) >> h.l1.setShift
	if first == last {
		// Fast path: the access fits in one line — every scalar word
		// access and all aligned vector accesses land here.
		return h.accessLine(first << h.l1.setShift)
	}
	var ticks int64
	for line := first; ; line++ {
		ticks += h.accessLine(line << h.l1.setShift)
		if line == last {
			break
		}
	}
	return ticks
}

// AccessWrite charges one store. Stores retire through the write
// buffer, so the pipeline only pays the L1 port latency; the tags are
// still updated (write-allocate) so subsequent loads hit.
func (h *Hierarchy) AccessWrite(addr uint32, width int) int64 {
	h.Accesses++
	first := addr >> h.l1.setShift
	last := (addr + uint32(width) - 1) >> h.l1.setShift
	if first == last {
		h.accessLine(first << h.l1.setShift)
		return h.cfg.L1.HitTicks
	}
	var ticks int64
	for line := first; ; line++ {
		h.accessLine(line << h.l1.setShift)
		ticks += h.cfg.L1.HitTicks
		if line == last {
			break
		}
	}
	return ticks
}

func (h *Hierarchy) accessLine(addr uint32) int64 {
	if h.l1.access(addr) {
		return h.cfg.L1.HitTicks
	}
	if h.l2.access(addr) {
		return h.cfg.L1.HitTicks + h.cfg.L2.HitTicks
	}
	return h.cfg.L1.HitTicks + h.cfg.L2.HitTicks + h.cfg.MemTicks
}

// L1Stats returns L1 hit/miss counters.
func (h *Hierarchy) L1Stats() Stats { return Stats{h.l1.hits, h.l1.misses} }

// L2Stats returns L2 hit/miss counters.
func (h *Hierarchy) L2Stats() Stats { return Stats{h.l2.hits, h.l2.misses} }

// Reset clears all cache state and counters.
func (h *Hierarchy) Reset() {
	h.l1 = newCacheLevel(h.cfg.L1)
	h.l2 = newCacheLevel(h.cfg.L2)
	h.Accesses = 0
}
