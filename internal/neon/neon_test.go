package neon

import (
	"testing"
	"testing/quick"

	"repro/internal/armlite"
	"repro/internal/mem"
)

func TestLaneAccessAllTypes(t *testing.T) {
	for _, dt := range []armlite.DataType{armlite.I8, armlite.I16, armlite.I32} {
		var v Vec
		for i := 0; i < dt.Lanes(); i++ {
			v.SetLane(dt, i, uint32(i*3+1))
		}
		for i := 0; i < dt.Lanes(); i++ {
			if got := v.LaneU(dt, i); got != uint32(i*3+1) {
				t.Errorf("%v lane %d = %d, want %d", dt, i, got, i*3+1)
			}
		}
	}
}

func TestLaneSignExtension(t *testing.T) {
	var v Vec
	v.SetLane(armlite.I8, 0, 0xFF)
	if got := v.LaneS(armlite.I8, 0); got != -1 {
		t.Errorf("i8 sign extension = %d, want -1", got)
	}
	v.SetLane(armlite.I16, 1, 0x8000)
	if got := v.LaneS(armlite.I16, 1); got != -32768 {
		t.Errorf("i16 sign extension = %d", got)
	}
}

func TestFloatLanes(t *testing.T) {
	var v Vec
	v.SetLaneF(2, 3.25)
	if got := v.LaneF(2); got != 3.25 {
		t.Errorf("float lane = %v", got)
	}
}

func TestSplat(t *testing.T) {
	v := Splat(armlite.I16, 7)
	for i := 0; i < 8; i++ {
		if v.LaneU(armlite.I16, i) != 7 {
			t.Fatalf("lane %d = %d", i, v.LaneU(armlite.I16, i))
		}
	}
}

func TestALUIntOps(t *testing.T) {
	a := Splat(armlite.I32, 10)
	b := Splat(armlite.I32, 3)
	cases := map[armlite.Op]int32{
		armlite.OpVadd: 13, armlite.OpVsub: 7, armlite.OpVmul: 30,
		armlite.OpVand: 10 & 3, armlite.OpVorr: 10 | 3, armlite.OpVeor: 10 ^ 3,
		armlite.OpVmin: 3, armlite.OpVmax: 10,
	}
	for op, want := range cases {
		out, err := ALU(op, armlite.I32, Vec{}, a, b, 0)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		for i := 0; i < 4; i++ {
			if got := out.LaneS(armlite.I32, i); got != want {
				t.Errorf("%v lane %d = %d, want %d", op, i, got, want)
			}
		}
	}
}

func TestALUShifts(t *testing.T) {
	a := Splat(armlite.I32, 0x100)
	out, err := ALU(armlite.OpVshr, armlite.I32, Vec{}, a, Vec{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if out.LaneS(armlite.I32, 0) != 1 {
		t.Errorf("vshr = %d", out.LaneS(armlite.I32, 0))
	}
	out, err = ALU(armlite.OpVshl, armlite.I32, Vec{}, a, Vec{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.LaneS(armlite.I32, 0) != 0x1000 {
		t.Errorf("vshl = %#x", out.LaneS(armlite.I32, 0))
	}
	// Arithmetic shift right preserves sign.
	negVal := int32(-64)
	neg := Splat(armlite.I32, uint32(negVal))
	out, _ = ALU(armlite.OpVshr, armlite.I32, Vec{}, neg, Vec{}, 2)
	if out.LaneS(armlite.I32, 0) != -16 {
		t.Errorf("arithmetic vshr = %d, want -16", out.LaneS(armlite.I32, 0))
	}
}

func TestALUFloat(t *testing.T) {
	a := Vec{}
	b := Vec{}
	for i := 0; i < 4; i++ {
		a.SetLaneF(i, float32(i)+0.5)
		b.SetLaneF(i, 2)
	}
	out, err := ALU(armlite.OpVmul, armlite.VF32, Vec{}, a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := (float32(i) + 0.5) * 2
		if got := out.LaneF(i); got != want {
			t.Errorf("fmul lane %d = %v, want %v", i, got, want)
		}
	}
	if _, err := ALU(armlite.OpVand, armlite.VF32, Vec{}, a, b, 0); err == nil {
		t.Error("vand.f32 should be rejected")
	}
}

func TestCompareAndSelect(t *testing.T) {
	a := Splat(armlite.I32, 5)
	var b Vec
	for i := 0; i < 4; i++ {
		b.SetLane(armlite.I32, i, uint32(i*3)) // 0,3,6,9
	}
	mask, err := ALU(armlite.OpVcgt, armlite.I32, Vec{}, a, b, 0) // a > b → 1,1,0,0
	if err != nil {
		t.Fatal(err)
	}
	wantMask := []uint32{0xFFFFFFFF, 0xFFFFFFFF, 0, 0}
	for i := 0; i < 4; i++ {
		if mask.LaneU(armlite.I32, i) != wantMask[i] {
			t.Errorf("vcgt lane %d = %#x", i, mask.LaneU(armlite.I32, i))
		}
	}
	// vbsl: qd = mask ? qn : qm
	sel, err := ALU(armlite.OpVbsl, armlite.I32, mask, a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{5, 5, 6, 9}
	for i := 0; i < 4; i++ {
		if got := sel.LaneS(armlite.I32, i); got != want[i] {
			t.Errorf("vbsl lane %d = %d, want %d", i, got, want[i])
		}
	}
	// vceq
	eq, _ := ALU(armlite.OpVceq, armlite.I32, Vec{}, a, Splat(armlite.I32, 5), 0)
	if eq.LaneU(armlite.I32, 0) != 0xFFFFFFFF {
		t.Error("vceq failed on equal lanes")
	}
}

func TestLoadStoreVec(t *testing.T) {
	m := mem.New(1024)
	want := []int32{11, 22, 33, 44}
	if err := m.WriteWords(64, want); err != nil {
		t.Fatal(err)
	}
	v, err := LoadVec(m, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if v.LaneS(armlite.I32, i) != w {
			t.Errorf("lane %d = %d", i, v.LaneS(armlite.I32, i))
		}
	}
	if err := StoreVec(m, 128, v); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadWords(128, 4)
	for i, w := range want {
		if got[i] != w {
			t.Errorf("stored word %d = %d", i, got[i])
		}
	}
	if _, err := LoadVec(m, 1020); err == nil {
		t.Error("out-of-range vector load must fail")
	}
}

// Property: vadd.i32 equals per-lane scalar addition for arbitrary
// inputs (wrapping arithmetic).
func TestQuickVaddMatchesScalar(t *testing.T) {
	f := func(a, b [4]int32) bool {
		var qa, qb Vec
		for i := 0; i < 4; i++ {
			qa.SetLane(armlite.I32, i, uint32(a[i]))
			qb.SetLane(armlite.I32, i, uint32(b[i]))
		}
		out, err := ALU(armlite.OpVadd, armlite.I32, Vec{}, qa, qb, 0)
		if err != nil {
			return false
		}
		for i := 0; i < 4; i++ {
			if out.LaneS(armlite.I32, i) != a[i]+b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: vbsl is a bitwise mux for arbitrary masks.
func TestQuickVbsl(t *testing.T) {
	f := func(mask, n, m [16]byte) bool {
		var qd, qn, qm Vec
		copy(qd[:], mask[:])
		copy(qn[:], n[:])
		copy(qm[:], m[:])
		out, err := ALU(armlite.OpVbsl, armlite.I8, qd, qn, qm, 0)
		if err != nil {
			return false
		}
		for i := 0; i < 16; i++ {
			if out[i] != (mask[i]&n[i])|(^mask[i]&m[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimingInstrTicks(t *testing.T) {
	tm := DefaultTiming()
	if tm.InstrTicks(armlite.OpVadd) != tm.OpIssueTicks {
		t.Error("vadd ticks wrong")
	}
	if tm.InstrTicks(armlite.OpVld1) != tm.MemIssueTicks {
		t.Error("vld1 ticks wrong")
	}
	if tm.InstrTicks(armlite.OpVdup) != tm.DupTicks {
		t.Error("vdup ticks wrong")
	}
}
