package neon

import (
	"math"

	"repro/internal/armlite"
	"repro/internal/mem"
)

// Batched NEON execution.
//
// ALU is the semantic reference: value parameters, per-lane LaneS /
// SetLane dispatch on the data type. That shape costs a 16-byte copy
// per operand plus a width switch per lane, which dominates the vector
// hot path (plan.runChunk). ALUInto and ReadVec below are the batched
// equivalents: pointer operands, one width dispatch per call, whole
// vectors processed in one loop. They must stay bit-identical to the
// reference — TestALUIntoMatchesReference sweeps every op × data type
// (including shift counts at and past the lane width) to pin that, and
// the golden digests pin it end to end.

// ReadVec reads 16 bytes at addr from memory into *dst without
// allocating (the batched counterpart of LoadVec).
func ReadVec(m *mem.Memory, addr uint32, dst *Vec) error {
	return m.ReadAt(addr, dst[:])
}

// ALUInto computes a lane-wise operation into *dst. dst may alias qn
// or qm (register reuse in generated plans); for vbsl the previous
// *dst value is the blend mask, as with ALU's qd parameter.
func ALUInto(op armlite.Op, dt armlite.DataType, dst, qn, qm *Vec, imm int32) error {
	dt = dt.Vector()
	var out Vec
	switch op {
	case armlite.OpVmov:
		*dst = *qm
		return nil
	case armlite.OpVbsl:
		for i := range out {
			out[i] = (dst[i] & qn[i]) | (^dst[i] & qm[i])
		}
		*dst = out
		return nil
	}
	if dt == armlite.VF32 {
		for i := 0; i < 4; i++ {
			a := math.Float32frombits(leU32(qn[4*i:]))
			b := math.Float32frombits(leU32(qm[4*i:]))
			var r float32
			switch op {
			case armlite.OpVadd:
				r = a + b
			case armlite.OpVsub:
				r = a - b
			case armlite.OpVmul:
				r = a * b
			case armlite.OpVmin:
				r = min32f(a, b)
			case armlite.OpVmax:
				r = max32f(a, b)
			case armlite.OpVceq:
				leP32(out[4*i:], maskBool(a == b))
				continue
			case armlite.OpVcgt:
				leP32(out[4*i:], maskBool(a > b))
				continue
			default:
				// Keep the reference's error text for unsupported ops.
				_, err := ALU(op, dt, *dst, *qn, *qm, imm)
				return err
			}
			leP32(out[4*i:], math.Float32bits(r))
		}
		*dst = out
		return nil
	}
	// Bitwise ops are width-independent: one byte loop regardless of dt.
	switch op {
	case armlite.OpVand:
		for i := range out {
			out[i] = qn[i] & qm[i]
		}
		*dst = out
		return nil
	case armlite.OpVorr:
		for i := range out {
			out[i] = qn[i] | qm[i]
		}
		*dst = out
		return nil
	case armlite.OpVeor:
		for i := range out {
			out[i] = qn[i] ^ qm[i]
		}
		*dst = out
		return nil
	}
	// Width-specific integer ops. The reference sign-extends each lane
	// to int32, operates, and truncates back; operating at the native
	// width is bit-identical: add/sub/mul are modular (low bits do not
	// depend on the extension), compares and min/max of sign-extended
	// values order the same as the native signed values, and Go shifts
	// by counts at or past the width saturate exactly like shifting the
	// extended value and truncating (left → 0, arithmetic right → sign).
	sh := uint32(imm) & 31
	switch dt.Size() {
	case 1:
		for i := 0; i < 16; i++ {
			a, b := int8(qn[i]), int8(qm[i])
			var r int8
			switch op {
			case armlite.OpVadd:
				r = a + b
			case armlite.OpVsub:
				r = a - b
			case armlite.OpVmul:
				r = a * b
			case armlite.OpVmin:
				r = b
				if a < b {
					r = a
				}
			case armlite.OpVmax:
				r = b
				if a > b {
					r = a
				}
			case armlite.OpVshl:
				r = a << sh
			case armlite.OpVshr:
				r = a >> sh
			case armlite.OpVceq:
				if a == b {
					r = -1
				}
			case armlite.OpVcgt:
				if a > b {
					r = -1
				}
			default:
				_, err := ALU(op, dt, *dst, *qn, *qm, imm)
				return err
			}
			out[i] = byte(r)
		}
	case 2:
		for i := 0; i < 8; i++ {
			a := int16(leU16(qn[2*i:]))
			b := int16(leU16(qm[2*i:]))
			var r int16
			switch op {
			case armlite.OpVadd:
				r = a + b
			case armlite.OpVsub:
				r = a - b
			case armlite.OpVmul:
				r = a * b
			case armlite.OpVmin:
				r = b
				if a < b {
					r = a
				}
			case armlite.OpVmax:
				r = b
				if a > b {
					r = a
				}
			case armlite.OpVshl:
				r = a << sh
			case armlite.OpVshr:
				r = a >> sh
			case armlite.OpVceq:
				if a == b {
					r = -1
				}
			case armlite.OpVcgt:
				if a > b {
					r = -1
				}
			default:
				_, err := ALU(op, dt, *dst, *qn, *qm, imm)
				return err
			}
			leP16(out[2*i:], uint16(r))
		}
	default:
		for i := 0; i < 4; i++ {
			a := int32(leU32(qn[4*i:]))
			b := int32(leU32(qm[4*i:]))
			var r int32
			switch op {
			case armlite.OpVadd:
				r = a + b
			case armlite.OpVsub:
				r = a - b
			case armlite.OpVmul:
				r = a * b
			case armlite.OpVmin:
				r = b
				if a < b {
					r = a
				}
			case armlite.OpVmax:
				r = b
				if a > b {
					r = a
				}
			case armlite.OpVshl:
				r = a << sh
			case armlite.OpVshr:
				r = a >> sh
			case armlite.OpVceq:
				if a == b {
					r = -1
				}
			case armlite.OpVcgt:
				if a > b {
					r = -1
				}
			default:
				_, err := ALU(op, dt, *dst, *qn, *qm, imm)
				return err
			}
			leP32(out[4*i:], uint32(r))
		}
	}
	*dst = out
	return nil
}

// Little-endian lane accessors over a Vec sub-slice. encoding/binary's
// versions are equivalent; these keep the package dependency-light and
// inline trivially.
func leU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func leP16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }

func leP32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
