package neon

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/armlite"
	"repro/internal/mem"
)

// TestALUIntoMatchesReference sweeps every vector ALU op across every
// lane type with randomized operands and checks ALUInto is bit-identical
// to the reference ALU — including shift counts at and beyond the lane
// width, NaN/Inf float lanes, and dst aliasing one of the sources.
func TestALUIntoMatchesReference(t *testing.T) {
	ops := []armlite.Op{
		armlite.OpVadd, armlite.OpVsub, armlite.OpVmul,
		armlite.OpVand, armlite.OpVorr, armlite.OpVeor,
		armlite.OpVmin, armlite.OpVmax,
		armlite.OpVshl, armlite.OpVshr,
		armlite.OpVceq, armlite.OpVcgt,
		armlite.OpVmov, armlite.OpVbsl,
	}
	dts := []armlite.DataType{armlite.I8, armlite.I16, armlite.I32, armlite.VF32}
	imms := []int32{0, 1, 3, 7, 8, 15, 16, 31}

	rng := rand.New(rand.NewSource(7))
	randVec := func(dt armlite.DataType) Vec {
		var v Vec
		for i := range v {
			v[i] = byte(rng.Intn(256))
		}
		if dt == armlite.VF32 && rng.Intn(2) == 0 {
			// Mix in special float lanes: NaN and ±Inf must propagate
			// identically through both paths.
			v.SetLane(armlite.I32, rng.Intn(4), math.Float32bits(float32(math.NaN())))
			v.SetLane(armlite.I32, rng.Intn(4), math.Float32bits(float32(math.Inf(-1))))
		}
		return v
	}

	for _, dt := range dts {
		for _, op := range ops {
			for _, imm := range imms {
				for trial := 0; trial < 32; trial++ {
					qd, qn, qm := randVec(dt), randVec(dt), randVec(dt)
					want, wantErr := ALU(op, dt, qd, qn, qm, imm)

					got := qd
					gotErr := ALUInto(op, dt, &got, &qn, &qm, imm)
					if (wantErr != nil) != (gotErr != nil) {
						t.Fatalf("%v %v imm=%d: err mismatch: ref %v, into %v", op, dt, imm, wantErr, gotErr)
					}
					if wantErr != nil {
						continue
					}
					if got != want {
						t.Fatalf("%v %v imm=%d trial %d:\n  qd=%v qn=%v qm=%v\n  ref  %v\n  into %v",
							op, dt, imm, trial, qd, qn, qm, want, got)
					}

					// Aliased destination: dst == qn.
					an := qn
					if err := ALUInto(op, dt, &an, &an, &qm, imm); err == nil {
						ref, _ := ALU(op, dt, qn, qn, qm, imm)
						if an != ref {
							t.Fatalf("%v %v imm=%d: dst aliasing qn diverges: ref %v, into %v", op, dt, imm, ref, an)
						}
					}
				}
			}
		}
	}
}

func TestReadVecMatchesLoadVec(t *testing.T) {
	m := mem.New(1 << 12)
	for i := 0; i < 1<<12; i++ {
		if err := m.Store(uint32(i), 1, uint32(i*7+3)); err != nil {
			t.Fatal(err)
		}
	}
	for _, addr := range []uint32{0, 1, 13, 256, 1<<12 - armlite.VectorBytes} {
		want, err := LoadVec(m, addr)
		if err != nil {
			t.Fatal(err)
		}
		var got Vec
		if err := ReadVec(m, addr, &got); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("addr %#x: ReadVec %v != LoadVec %v", addr, got, want)
		}
	}
	var v Vec
	if err := ReadVec(m, 1<<12-8, &v); err == nil {
		t.Fatal("ReadVec past end of memory: want error, got nil")
	}
}
