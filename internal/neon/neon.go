// Package neon models the ARM NEON 128-bit SIMD engine of the
// dissertation: a sixteen-entry quadword register file (Q0–Q15),
// lane-typed arithmetic for every parallelism degree of Fig. 4
// (16×8-bit, 8×16-bit, 4×32-bit int, 4×float32), vector loads and
// stores against the shared memory, and the engine's own pipeline
// timing (10-stage pipeline fed through a 16-entry instruction queue,
// per the A8/NEON schematic in Fig. 3).
package neon

import (
	"fmt"
	"math"

	"repro/internal/armlite"
	"repro/internal/mem"
)

// Vec is one 128-bit vector register value.
type Vec [armlite.VectorBytes]byte

// LaneU returns lane i interpreted per dt, zero-extended to uint32.
func (v Vec) LaneU(dt armlite.DataType, i int) uint32 {
	switch dt.Size() {
	case 1:
		return uint32(v[i])
	case 2:
		return uint32(v[2*i]) | uint32(v[2*i+1])<<8
	default:
		return uint32(v[4*i]) | uint32(v[4*i+1])<<8 | uint32(v[4*i+2])<<16 | uint32(v[4*i+3])<<24
	}
}

// LaneS returns lane i sign-extended to int32.
func (v Vec) LaneS(dt armlite.DataType, i int) int32 {
	u := v.LaneU(dt, i)
	switch dt.Size() {
	case 1:
		return int32(int8(u))
	case 2:
		return int32(int16(u))
	default:
		return int32(u)
	}
}

// SetLane writes the low bytes of val into lane i per dt.
func (v *Vec) SetLane(dt armlite.DataType, i int, val uint32) {
	switch dt.Size() {
	case 1:
		v[i] = byte(val)
	case 2:
		v[2*i] = byte(val)
		v[2*i+1] = byte(val >> 8)
	default:
		v[4*i] = byte(val)
		v[4*i+1] = byte(val >> 8)
		v[4*i+2] = byte(val >> 16)
		v[4*i+3] = byte(val >> 24)
	}
}

// LaneF returns lane i as a float32 (dt must be 4-byte).
func (v Vec) LaneF(i int) float32 { return math.Float32frombits(v.LaneU(armlite.I32, i)) }

// SetLaneF writes a float32 into lane i.
func (v *Vec) SetLaneF(i int, f float32) { v.SetLane(armlite.I32, i, math.Float32bits(f)) }

// String formats the vector as 4 words for debugging.
func (v Vec) String() string {
	return fmt.Sprintf("{%#08x %#08x %#08x %#08x}",
		v.LaneU(armlite.I32, 0), v.LaneU(armlite.I32, 1),
		v.LaneU(armlite.I32, 2), v.LaneU(armlite.I32, 3))
}

// Unit is the NEON engine: register file plus event counters the
// energy model consumes.
type Unit struct {
	Q [armlite.NumVRegs]Vec

	// Event counters.
	Ops    uint64 // arithmetic/logic vector operations executed
	Loads  uint64 // vector loads
	Stores uint64 // vector stores
}

// New returns a zeroed NEON unit.
func New() *Unit { return &Unit{} }

// Reset clears registers and counters.
func (u *Unit) Reset() { *u = Unit{} }

// Splat returns a vector with every dt-lane set to val.
func Splat(dt armlite.DataType, val uint32) Vec {
	var v Vec
	for i := 0; i < dt.Lanes(); i++ {
		v.SetLane(dt, i, val)
	}
	return v
}

// ALU computes a lane-wise operation. qd is the previous destination
// value (needed by vbsl, which blends through the destination mask).
func ALU(op armlite.Op, dt armlite.DataType, qd, qn, qm Vec, imm int32) (Vec, error) {
	var out Vec
	dt = dt.Vector()
	lanes := dt.Lanes()
	switch op {
	case armlite.OpVmov:
		return qm, nil
	case armlite.OpVbsl:
		for i := range out {
			out[i] = (qd[i] & qn[i]) | (^qd[i] & qm[i])
		}
		return out, nil
	}
	if dt == armlite.VF32 {
		for i := 0; i < lanes; i++ {
			a, b := math.Float32frombits(qn.LaneU(armlite.I32, i)), math.Float32frombits(qm.LaneU(armlite.I32, i))
			var r float32
			switch op {
			case armlite.OpVadd:
				r = a + b
			case armlite.OpVsub:
				r = a - b
			case armlite.OpVmul:
				r = a * b
			case armlite.OpVmin:
				r = min32f(a, b)
			case armlite.OpVmax:
				r = max32f(a, b)
			case armlite.OpVceq:
				out.SetLane(armlite.I32, i, maskBool(a == b))
				continue
			case armlite.OpVcgt:
				out.SetLane(armlite.I32, i, maskBool(a > b))
				continue
			default:
				return out, fmt.Errorf("neon: op %v not defined for f32", op)
			}
			out.SetLaneF(i, r)
		}
		return out, nil
	}
	for i := 0; i < lanes; i++ {
		a, b := qn.LaneS(dt, i), qm.LaneS(dt, i)
		var r int32
		switch op {
		case armlite.OpVadd:
			r = a + b
		case armlite.OpVsub:
			r = a - b
		case armlite.OpVmul:
			r = a * b
		case armlite.OpVand:
			r = a & b
		case armlite.OpVorr:
			r = a | b
		case armlite.OpVeor:
			r = a ^ b
		case armlite.OpVmin:
			if a < b {
				r = a
			} else {
				r = b
			}
		case armlite.OpVmax:
			if a > b {
				r = a
			} else {
				r = b
			}
		case armlite.OpVshl:
			r = a << (uint32(imm) & 31)
		case armlite.OpVshr:
			r = a >> (uint32(imm) & 31)
		case armlite.OpVceq:
			r = int32(maskBool(a == b))
		case armlite.OpVcgt:
			r = int32(maskBool(a > b))
		default:
			return out, fmt.Errorf("neon: unknown vector ALU op %v", op)
		}
		out.SetLane(dt, i, uint32(r))
	}
	return out, nil
}

func maskBool(b bool) uint32 {
	if b {
		return 0xFFFFFFFF
	}
	return 0
}

func min32f(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func max32f(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

// LoadVec reads 16 bytes at addr from memory into a Vec.
func LoadVec(m *mem.Memory, addr uint32) (Vec, error) {
	var v Vec
	b, err := m.LoadBlock(addr, armlite.VectorBytes)
	if err != nil {
		return v, err
	}
	copy(v[:], b)
	return v, nil
}

// StoreVec writes v's 16 bytes to memory at addr.
func StoreVec(m *mem.Memory, addr uint32, v Vec) error {
	return m.StoreBlock(addr, v[:])
}
