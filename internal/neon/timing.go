package neon

import "repro/internal/armlite"

// Timing holds the NEON engine latency constants, in ticks
// (10 ticks = 1 CPU cycle; the NEON pipeline runs at core clock on the
// A8-class design of Fig. 3). The defaults model:
//
//   - a deeply pipelined 10-stage engine that sustains one vector
//     operation per cycle once filled;
//   - a 16-entry instruction queue so dispatch from the core never
//     stalls in our single-threaded scenario;
//   - vector loads/stores whose cache latency is charged by the shared
//     mem.Hierarchy, plus a small issue cost here.
type Timing struct {
	PipelineFillTicks int64 // charged once when the engine is (re)activated
	OpIssueTicks      int64 // per vector arithmetic/logic operation
	MemIssueTicks     int64 // per vector load/store, before cache latency
	DupTicks          int64 // scalar→vector transfer (vdup), ARM→NEON queue
	LaneMoveTicks     int64 // single-element insert/extract (leftovers)
}

// DefaultTiming returns the model used by all experiments.
func DefaultTiming() Timing {
	return Timing{
		PipelineFillTicks: 100, // 10 cycles: refill the 10-stage pipeline
		OpIssueTicks:      10,  // 1 cycle/op steady state
		MemIssueTicks:     10,  // 1 cycle + cache hierarchy latency
		DupTicks:          20,  // ARM→NEON transfer through the data queue
		LaneMoveTicks:     10,
	}
}

// InstrTicks returns the issue cost of one vector instruction
// (excluding data-cache latency, which the caller adds per access).
func (t Timing) InstrTicks(op armlite.Op) int64 {
	switch op {
	case armlite.OpVld1, armlite.OpVst1:
		return t.MemIssueTicks
	case armlite.OpVdup:
		return t.DupTicks
	default:
		return t.OpIssueTicks
	}
}
