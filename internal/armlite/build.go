package armlite

// Constructors for building instructions programmatically. The DSA's
// run-time SIMD generator and the static auto-vectorizer both emit code
// through these, and tests use them to avoid round-tripping through the
// assembler.

// MovImm builds `mov rd, #imm`.
func MovImm(rd Reg, imm int32) Instr {
	in := NewInstr(OpMov)
	in.Rd, in.Imm, in.HasImm = rd, imm, true
	return in
}

// MovReg builds `mov rd, rm`.
func MovReg(rd, rm Reg) Instr {
	in := NewInstr(OpMov)
	in.Rd, in.Rm = rd, rm
	return in
}

// ALUReg builds a three-register data-processing instruction.
func ALUReg(op Op, rd, rn, rm Reg) Instr {
	in := NewInstr(op)
	in.Rd, in.Rn, in.Rm = rd, rn, rm
	return in
}

// ALUImm builds a register-immediate data-processing instruction.
func ALUImm(op Op, rd, rn Reg, imm int32) Instr {
	in := NewInstr(op)
	in.Rd, in.Rn, in.Imm, in.HasImm = rd, rn, imm, true
	return in
}

// CmpImm builds `cmp rn, #imm`.
func CmpImm(rn Reg, imm int32) Instr {
	in := NewInstr(OpCmp)
	in.Rn, in.Imm, in.HasImm = rn, imm, true
	return in
}

// CmpReg builds `cmp rn, rm`.
func CmpReg(rn, rm Reg) Instr {
	in := NewInstr(OpCmp)
	in.Rn, in.Rm = rn, rm
	return in
}

// LoadPost builds `ldr<dt> rd, [base], #inc` (post-indexed, writeback).
func LoadPost(dt DataType, rd, base Reg, inc int32) Instr {
	in := NewInstr(OpLdr)
	in.DT = dt
	in.Rd = rd
	in.Mem = Mem{Base: base, Index: NoReg, Offset: inc, Kind: AddrPostIndex, Writeback: true}
	return in
}

// StorePost builds `str<dt> rd, [base], #inc` (post-indexed, writeback).
func StorePost(dt DataType, rd, base Reg, inc int32) Instr {
	in := NewInstr(OpStr)
	in.DT = dt
	in.Rd = rd
	in.Mem = Mem{Base: base, Index: NoReg, Offset: inc, Kind: AddrPostIndex, Writeback: true}
	return in
}

// LoadOfs builds `ldr<dt> rd, [base, #ofs]`.
func LoadOfs(dt DataType, rd, base Reg, ofs int32) Instr {
	in := NewInstr(OpLdr)
	in.DT = dt
	in.Rd = rd
	in.Mem = Mem{Base: base, Index: NoReg, Offset: ofs, Kind: AddrOffset}
	return in
}

// StoreOfs builds `str<dt> rd, [base, #ofs]`.
func StoreOfs(dt DataType, rd, base Reg, ofs int32) Instr {
	in := NewInstr(OpStr)
	in.DT = dt
	in.Rd = rd
	in.Mem = Mem{Base: base, Index: NoReg, Offset: ofs, Kind: AddrOffset}
	return in
}

// Branch builds a conditional branch to an instruction index.
func Branch(cond Cond, target int) Instr {
	in := NewInstr(OpB)
	in.Cond = cond
	in.Target = target
	return in
}

// BranchLabel builds a conditional branch to a label (resolved later).
func BranchLabel(cond Cond, label string) Instr {
	in := NewInstr(OpB)
	in.Cond = cond
	in.Label = label
	in.Target = -1
	return in
}

// Halt builds the machine-stop instruction.
func Halt() Instr { return NewInstr(OpHalt) }

// Nop builds a no-op.
func Nop() Instr { return NewInstr(OpNop) }

// VLoad builds `vld1.<dt> qd, [base]` with optional writeback (+16).
func VLoad(dt DataType, qd VReg, base Reg, writeback bool) Instr {
	in := NewInstr(OpVld1)
	in.DT = dt.Vector()
	in.Qd = qd
	in.Mem = Mem{Base: base, Index: NoReg, Kind: AddrOffset, Writeback: writeback}
	return in
}

// VStore builds `vst1.<dt> qd, [base]` with optional writeback (+16).
func VStore(dt DataType, qd VReg, base Reg, writeback bool) Instr {
	in := NewInstr(OpVst1)
	in.DT = dt.Vector()
	in.Qd = qd
	in.Mem = Mem{Base: base, Index: NoReg, Kind: AddrOffset, Writeback: writeback}
	return in
}

// VALU builds a three-operand vector instruction, e.g. `vadd.i32`.
func VALU(op Op, dt DataType, qd, qn, qm VReg) Instr {
	in := NewInstr(op)
	in.DT = dt.Vector()
	in.Qd, in.Qn, in.Qm = qd, qn, qm
	return in
}

// VShiftImm builds `vshl/vshr.<dt> qd, qn, #imm`.
func VShiftImm(op Op, dt DataType, qd, qn VReg, imm int32) Instr {
	in := NewInstr(op)
	in.DT = dt.Vector()
	in.Qd, in.Qn = qd, qn
	in.Imm, in.HasImm = imm, true
	return in
}

// VDup builds `vdup.<dt> qd, rn`.
func VDup(dt DataType, qd VReg, rn Reg) Instr {
	in := NewInstr(OpVdup)
	in.DT = dt.Vector()
	in.Qd, in.Rn = qd, rn
	return in
}
