// Package armlite defines a compact ARMv7-flavoured instruction set used
// by the whole repository: the scalar CPU model executes it, the static
// auto-vectorizer rewrites it, and the Dynamic SIMD Assembler (DSA) both
// observes it and generates the NEON-style vector subset of it at run
// time.
//
// The ISA deliberately mirrors the instruction idioms the dissertation's
// examples are written in (Fig. 25): post-indexed loads and stores
// (`ldr r3, [r5], #4`), compare-and-branch loop closings
// (`cmp r0, r4; blt loop`), and 128-bit NEON operations with explicit
// element types (`vadd.i32 q9, q9, q8`, `vld1.32 q8, [r5]!`).
package armlite

import "fmt"

// Reg identifies a scalar (core) register. R0–R12 are general purpose;
// SP, LR and PC follow the ARM convention.
type Reg uint8

// Scalar register names.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // R13
	LR // R14
	PC // R15

	// NumRegs is the size of the scalar register file.
	NumRegs = 16
	// NoReg marks an unused register slot in an instruction.
	NoReg Reg = 0xFF
)

// String returns the assembler name of the register.
func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	case PC:
		return "pc"
	case NoReg:
		return "<none>"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// VReg identifies a 128-bit NEON quadword register Q0–Q15.
type VReg uint8

// NumVRegs is the size of the NEON quadword register file (Q0–Q15),
// matching the "Sixteen 128-bit (Q0 - Q15)" row of the dissertation's
// systems-setup table.
const NumVRegs = 16

// NoVReg marks an unused vector register slot.
const NoVReg VReg = 0xFF

// String returns the assembler name of the vector register.
func (v VReg) String() string {
	if v == NoVReg {
		return "<none>"
	}
	return fmt.Sprintf("q%d", uint8(v))
}

// Valid reports whether v names an architectural vector register.
func (v VReg) Valid() bool { return v < NumVRegs }

// Cond is an ARM condition code. Every instruction carries one;
// CondAL (always) is the default.
type Cond uint8

// Condition codes.
const (
	CondAL Cond = iota // always
	CondEQ             // Z set
	CondNE             // Z clear
	CondLT             // N != V
	CondLE             // Z set or N != V
	CondGT             // Z clear and N == V
	CondGE             // N == V
	CondMI             // N set
	CondPL             // N clear
	CondHS             // C set   (unsigned >=)
	CondLO             // C clear (unsigned <)
	CondHI             // C set and Z clear (unsigned >)
	CondLS             // C clear or Z set  (unsigned <=)
)

var condNames = [...]string{
	CondAL: "", CondEQ: "eq", CondNE: "ne", CondLT: "lt", CondLE: "le",
	CondGT: "gt", CondGE: "ge", CondMI: "mi", CondPL: "pl", CondHS: "hs",
	CondLO: "lo", CondHI: "hi", CondLS: "ls",
}

// String returns the condition suffix ("" for always).
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Flags is the processor condition flag state (NZCV).
type Flags struct {
	N, Z, C, V bool
}

// Holds reports whether the condition passes under the given flags.
func (c Cond) Holds(f Flags) bool {
	switch c {
	case CondAL:
		return true
	case CondEQ:
		return f.Z
	case CondNE:
		return !f.Z
	case CondLT:
		return f.N != f.V
	case CondLE:
		return f.Z || f.N != f.V
	case CondGT:
		return !f.Z && f.N == f.V
	case CondGE:
		return f.N == f.V
	case CondMI:
		return f.N
	case CondPL:
		return !f.N
	case CondHS:
		return f.C
	case CondLO:
		return !f.C
	case CondHI:
		return f.C && !f.Z
	case CondLS:
		return !f.C || f.Z
	default:
		return false
	}
}

// Inverse returns the complementary condition (e.g. EQ→NE). CondAL has
// no inverse and is returned unchanged.
func (c Cond) Inverse() Cond {
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondGE:
		return CondLT
	case CondLE:
		return CondGT
	case CondGT:
		return CondLE
	case CondMI:
		return CondPL
	case CondPL:
		return CondMI
	case CondHS:
		return CondLO
	case CondLO:
		return CondHS
	case CondHI:
		return CondLS
	case CondLS:
		return CondHI
	default:
		return c
	}
}

// DataType describes the element type of a memory access or vector
// operation. For scalar memory ops only B, H, W and F32 apply; vector
// operations use the lane-typed variants exactly as NEON mnemonics do
// (.i8, .i16, .i32, .f32).
type DataType uint8

// Data types.
const (
	Word DataType = iota // 32-bit integer (default)
	Byte                 // 8-bit
	Half                 // 16-bit
	F32                  // 32-bit IEEE float
	I8                   // vector lanes of 8-bit ints
	I16                  // vector lanes of 16-bit ints
	I32                  // vector lanes of 32-bit ints
	VF32                 // vector lanes of 32-bit floats
)

// Size returns the element size in bytes.
func (d DataType) Size() int {
	switch d {
	case Byte, I8:
		return 1
	case Half, I16:
		return 2
	default:
		return 4
	}
}

// Lanes returns how many elements of this type fit in a 128-bit vector
// register — the parallelism degrees of the dissertation's Fig. 4
// (16 × .i8, 8 × .i16, 4 × .i32, 4 × .f32).
func (d DataType) Lanes() int { return VectorBytes / d.Size() }

// IsFloat reports whether the element type is floating point.
func (d DataType) IsFloat() bool { return d == F32 || d == VF32 }

// Vector returns the vector (lane-typed) counterpart of a scalar data
// type: Byte→I8, Half→I16, Word→I32, F32→VF32. Lane types map to
// themselves.
func (d DataType) Vector() DataType {
	switch d {
	case Byte:
		return I8
	case Half:
		return I16
	case Word:
		return I32
	case F32:
		return VF32
	default:
		return d
	}
}

// String returns the NEON-style type suffix.
func (d DataType) String() string {
	switch d {
	case Word:
		return "w"
	case Byte:
		return "b"
	case Half:
		return "h"
	case F32:
		return "f"
	case I8:
		return "i8"
	case I16:
		return "i16"
	case I32:
		return "i32"
	case VF32:
		return "f32"
	default:
		return fmt.Sprintf("dt(%d)", uint8(d))
	}
}

// VectorBytes is the NEON engine width in bytes (128 bits), per the
// dissertation's "128-bit Wide" system setup.
const VectorBytes = 16
