package armlite

import (
	"fmt"
	"strings"
)

// Op is an instruction opcode.
type Op uint8

// Scalar data-processing, memory, and control opcodes, followed by the
// NEON-style vector subset.
const (
	OpNop Op = iota

	// Data processing (integer).
	OpMov // rd := op2
	OpMvn // rd := ^op2
	OpAdd // rd := rn + op2
	OpSub // rd := rn - op2
	OpRsb // rd := op2 - rn
	OpMul // rd := rn * rm
	OpMla // rd := rn*rm + ra (ra carried in Imm slot as register? no: uses Ra)
	OpSdiv
	OpUdiv
	OpAnd
	OpOrr
	OpEor
	OpBic
	OpLsl
	OpLsr
	OpAsr
	OpCmp // flags := rn - op2
	OpCmn // flags := rn + op2
	OpTst // flags := rn & op2

	// Data processing (float, on 32-bit register bit patterns).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFCmp

	// Memory.
	OpLdr // load (size per DT: Byte/Half/Word/F32)
	OpStr // store

	// Control.
	OpB    // conditional branch
	OpBL   // branch and link (call)
	OpBX   // branch to register (return: bx lr)
	OpHalt // stop the machine (end of program)

	// Vector (NEON-style).
	OpVld1 // vld1.<dt> qd, [rn](!)
	OpVst1 // vst1.<dt> qd, [rn](!)
	OpVadd
	OpVsub
	OpVmul
	OpVand
	OpVorr
	OpVeor
	OpVmin
	OpVmax
	OpVshl // shift left by immediate, per lane
	OpVshr // shift right by immediate, per lane (arithmetic for ints)
	OpVdup // splat scalar register into all lanes
	OpVceq // lane compare equal → all-ones/zero mask
	OpVcgt // lane compare greater-than → mask
	OpVbsl // bitwise select: qd := (qd & qn) | (^qd & qm)
	OpVmov // qd := qm

	numOps
)

var opNames = [...]string{
	OpNop: "nop", OpMov: "mov", OpMvn: "mvn", OpAdd: "add", OpSub: "sub",
	OpRsb: "rsb", OpMul: "mul", OpMla: "mla", OpSdiv: "sdiv", OpUdiv: "udiv",
	OpAnd: "and", OpOrr: "orr", OpEor: "eor", OpBic: "bic", OpLsl: "lsl",
	OpLsr: "lsr", OpAsr: "asr", OpCmp: "cmp", OpCmn: "cmn", OpTst: "tst",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFCmp: "fcmp", OpLdr: "ldr", OpStr: "str", OpB: "b", OpBL: "bl",
	OpBX: "bx", OpHalt: "halt", OpVld1: "vld1", OpVst1: "vst1",
	OpVadd: "vadd", OpVsub: "vsub", OpVmul: "vmul", OpVand: "vand",
	OpVorr: "vorr", OpVeor: "veor", OpVmin: "vmin", OpVmax: "vmax",
	OpVshl: "vshl", OpVshr: "vshr", OpVdup: "vdup", OpVceq: "vceq",
	OpVcgt: "vcgt", OpVbsl: "vbsl", OpVmov: "vmov",
}

// String returns the base mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsVector reports whether the opcode belongs to the NEON-style subset.
func (o Op) IsVector() bool { return o >= OpVld1 && o <= OpVmov }

// IsBranch reports whether the opcode transfers control.
func (o Op) IsBranch() bool { return o == OpB || o == OpBL || o == OpBX }

// IsMem reports whether the opcode accesses data memory.
func (o Op) IsMem() bool {
	return o == OpLdr || o == OpStr || o == OpVld1 || o == OpVst1
}

// IsALU reports whether the opcode is a scalar data-processing
// operation (including compares and float arithmetic).
func (o Op) IsALU() bool { return o >= OpMov && o <= OpFCmp }

// SetsFlagsAlways reports whether the opcode updates NZCV regardless of
// the S suffix (the compare family).
func (o Op) SetsFlagsAlways() bool {
	return o == OpCmp || o == OpCmn || o == OpTst || o == OpFCmp
}

// VectorALUOp maps a scalar ALU opcode to its vector counterpart, used
// by both the static auto-vectorizer and the DSA's run-time SIMD
// generator. ok is false for opcodes with no vector form.
func VectorALUOp(o Op) (vop Op, ok bool) {
	switch o {
	case OpAdd, OpFAdd:
		return OpVadd, true
	case OpSub, OpFSub:
		return OpVsub, true
	case OpMul, OpFMul:
		return OpVmul, true
	case OpAnd:
		return OpVand, true
	case OpOrr:
		return OpVorr, true
	case OpEor:
		return OpVeor, true
	case OpLsl:
		return OpVshl, true
	case OpLsr, OpAsr:
		return OpVshr, true
	default:
		return OpNop, false
	}
}

// AddrKind selects the addressing mode of a memory instruction.
type AddrKind uint8

// Addressing modes.
const (
	AddrOffset    AddrKind = iota // [rn, #imm] — no writeback
	AddrPostIndex                 // [rn], #imm — access at rn, then rn += imm
	AddrRegOffset                 // [rn, rm, lsl #s]
)

// Mem describes the memory operand of a load/store.
//
// Writeback combines with Kind as follows:
//
//   - AddrPostIndex always writes back (access at rn, then rn += imm).
//   - AddrOffset + Writeback on a scalar ldr/str is the pre-index form
//     "[rn, #imm]!": access at rn+imm, then rn = rn+imm.
//   - AddrOffset + Writeback on a vector vld1/vst1 is the NEON "[rn]!"
//     form: access at rn, then rn += VectorBytes. The offset must be
//     zero (Validate rejects the ambiguous combination).
//   - AddrRegOffset never writes back; Validate rejects the mismatch
//     so it cannot be silently dropped at execution time.
type Mem struct {
	Base      Reg
	Index     Reg // NoReg unless AddrRegOffset
	Offset    int32
	Shift     uint8 // LSL amount for AddrRegOffset
	Kind      AddrKind
	Writeback bool // see the addressing-mode table above
}

// Instr is one armlite instruction. A single struct covers the whole
// ISA; unused fields hold their zero value (or NoReg/NoVReg).
type Instr struct {
	Op       Op
	Cond     Cond
	SetFlags bool // the S suffix (subs, adds, ...)
	DT       DataType

	// Scalar operands.
	Rd, Rn, Rm, Ra Reg
	Imm            int32
	HasImm         bool // Rm unused; Imm is operand 2

	// Memory operand (OpLdr/OpStr/OpVld1/OpVst1).
	Mem Mem

	// Vector operands.
	Qd, Qn, Qm VReg

	// Branch target: instruction index within the program. The
	// assembler resolves Label into Target.
	Target int
	Label  string
}

// NewInstr returns an instruction with register slots marked unused,
// so partially filled instructions validate and print cleanly.
func NewInstr(op Op) Instr {
	return Instr{
		Op: op,
		Rd: NoReg, Rn: NoReg, Rm: NoReg, Ra: NoReg,
		Qd: NoVReg, Qn: NoVReg, Qm: NoVReg,
		Mem: Mem{Base: NoReg, Index: NoReg},
	}
}

// Mnemonic returns the full mnemonic including condition, S suffix and
// data-type suffix, e.g. "subs", "blt", "vadd.i32", "ldrb".
func (in Instr) Mnemonic() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	if in.Op == OpLdr || in.Op == OpStr {
		switch in.DT {
		case Byte:
			b.WriteString("b")
		case Half:
			b.WriteString("h")
		case F32:
			b.WriteString("f")
		}
	}
	if in.SetFlags && !in.Op.SetsFlagsAlways() {
		b.WriteString("s")
	}
	b.WriteString(in.Cond.String())
	if in.Op.IsVector() {
		b.WriteString(".")
		b.WriteString(in.DT.Vector().String())
	}
	return b.String()
}

func (m Mem) String() string {
	switch m.Kind {
	case AddrPostIndex:
		return fmt.Sprintf("[%s], #%d", m.Base, m.Offset)
	case AddrRegOffset:
		if m.Shift != 0 {
			return fmt.Sprintf("[%s, %s, lsl #%d]", m.Base, m.Index, m.Shift)
		}
		return fmt.Sprintf("[%s, %s]", m.Base, m.Index)
	default:
		wb := ""
		if m.Writeback {
			wb = "!"
		}
		if m.Offset == 0 {
			return fmt.Sprintf("[%s]%s", m.Base, wb)
		}
		return fmt.Sprintf("[%s, #%d]%s", m.Base, m.Offset, wb)
	}
}

// String disassembles the instruction. The output re-assembles to an
// identical instruction (round-trip tested).
func (in Instr) String() string {
	mn := in.Mnemonic()
	op2 := func() string {
		if in.HasImm {
			return fmt.Sprintf("#%d", in.Imm)
		}
		return in.Rm.String()
	}
	switch in.Op {
	case OpNop, OpHalt:
		return mn
	case OpMov, OpMvn:
		return fmt.Sprintf("%s %s, %s", mn, in.Rd, op2())
	case OpCmp, OpCmn, OpTst, OpFCmp:
		return fmt.Sprintf("%s %s, %s", mn, in.Rn, op2())
	case OpMla:
		return fmt.Sprintf("%s %s, %s, %s, %s", mn, in.Rd, in.Rn, in.Rm, in.Ra)
	case OpMul, OpSdiv, OpUdiv, OpFAdd, OpFSub, OpFMul, OpFDiv:
		return fmt.Sprintf("%s %s, %s, %s", mn, in.Rd, in.Rn, op2())
	case OpAdd, OpSub, OpRsb, OpAnd, OpOrr, OpEor, OpBic, OpLsl, OpLsr, OpAsr:
		return fmt.Sprintf("%s %s, %s, %s", mn, in.Rd, in.Rn, op2())
	case OpLdr, OpStr:
		return fmt.Sprintf("%s %s, %s", mn, in.Rd, in.Mem)
	case OpB, OpBL:
		if in.Label != "" {
			return fmt.Sprintf("%s %s", mn, in.Label)
		}
		return fmt.Sprintf("%s %d", mn, in.Target)
	case OpBX:
		return fmt.Sprintf("%s %s", mn, in.Rn)
	case OpVld1, OpVst1:
		wb := ""
		if in.Mem.Writeback {
			wb = "!"
		}
		return fmt.Sprintf("%s %s, [%s]%s", mn, in.Qd, in.Mem.Base, wb)
	case OpVdup:
		return fmt.Sprintf("%s %s, %s", mn, in.Qd, in.Rn)
	case OpVmov:
		return fmt.Sprintf("%s %s, %s", mn, in.Qd, in.Qm)
	case OpVshl, OpVshr:
		return fmt.Sprintf("%s %s, %s, #%d", mn, in.Qd, in.Qn, in.Imm)
	default: // vector three-operand
		return fmt.Sprintf("%s %s, %s, %s", mn, in.Qd, in.Qn, in.Qm)
	}
}

// Validate checks structural well-formedness (register slots present
// where the opcode needs them). The CPU refuses to run invalid
// programs, so assembler and code generators are both covered.
func (in Instr) Validate() error {
	need := func(ok bool, what string) error {
		if !ok {
			return fmt.Errorf("armlite: %s: missing/invalid %s", in.Op, what)
		}
		return nil
	}
	switch in.Op {
	case OpNop, OpHalt:
		return nil
	case OpMov, OpMvn:
		if err := need(in.Rd.Valid(), "rd"); err != nil {
			return err
		}
		return need(in.HasImm || in.Rm.Valid(), "operand 2")
	case OpCmp, OpCmn, OpTst, OpFCmp:
		if err := need(in.Rn.Valid(), "rn"); err != nil {
			return err
		}
		return need(in.HasImm || in.Rm.Valid(), "operand 2")
	case OpMla:
		return need(in.Rd.Valid() && in.Rn.Valid() && in.Rm.Valid() && in.Ra.Valid(), "registers")
	case OpMul, OpSdiv, OpUdiv, OpFAdd, OpFSub, OpFMul, OpFDiv,
		OpAdd, OpSub, OpRsb, OpAnd, OpOrr, OpEor, OpBic, OpLsl, OpLsr, OpAsr:
		if err := need(in.Rd.Valid() && in.Rn.Valid(), "rd/rn"); err != nil {
			return err
		}
		return need(in.HasImm || in.Rm.Valid(), "operand 2")
	case OpLdr, OpStr:
		if err := need(in.Rd.Valid(), "rd"); err != nil {
			return err
		}
		if err := need(in.Mem.Base.Valid(), "base register"); err != nil {
			return err
		}
		if in.Mem.Kind == AddrRegOffset {
			if in.Mem.Writeback {
				return fmt.Errorf("armlite: %s: writeback is not supported with a register offset", in.Op)
			}
			return need(in.Mem.Index.Valid(), "index register")
		}
		return nil
	case OpB, OpBL:
		return need(in.Target >= 0 || in.Label != "", "branch target")
	case OpBX:
		return need(in.Rn.Valid(), "rn")
	case OpVld1, OpVst1:
		if err := need(in.Qd.Valid(), "qd"); err != nil {
			return err
		}
		if err := need(in.Mem.Base.Valid(), "base register"); err != nil {
			return err
		}
		switch in.Mem.Kind {
		case AddrRegOffset:
			if in.Mem.Writeback {
				return fmt.Errorf("armlite: %s: writeback is not supported with a register offset", in.Op)
			}
			return need(in.Mem.Index.Valid(), "index register")
		case AddrOffset:
			if in.Mem.Writeback && in.Mem.Offset != 0 {
				return fmt.Errorf("armlite: %s: writeback with a nonzero offset is ambiguous (the vector \"[rn]!\" form advances by %d)", in.Op, VectorBytes)
			}
		}
		return nil
	case OpVdup:
		return need(in.Qd.Valid() && in.Rn.Valid(), "qd/rn")
	case OpVmov:
		return need(in.Qd.Valid() && in.Qm.Valid(), "qd/qm")
	case OpVshl, OpVshr:
		return need(in.Qd.Valid() && in.Qn.Valid(), "qd/qn")
	case OpVadd, OpVsub, OpVmul, OpVand, OpVorr, OpVeor, OpVmin, OpVmax,
		OpVceq, OpVcgt, OpVbsl:
		return need(in.Qd.Valid() && in.Qn.Valid() && in.Qm.Valid(), "qd/qn/qm")
	default:
		return fmt.Errorf("armlite: unknown opcode %d", uint8(in.Op))
	}
}
