package armlite

import (
	"strings"
	"testing"
)

func sampleProgram() *Program {
	return &Program{
		Name: "sample",
		Code: []Instr{
			MovImm(R0, 0),
			LoadPost(Word, R3, R5, 4),
			ALUImm(OpAdd, R3, R3, 1),
			StorePost(Word, R3, R2, 4),
			ALUImm(OpAdd, R0, R0, 1),
			CmpImm(R0, 10),
			Branch(CondLT, 1),
			Halt(),
		},
		Labels: map[string]int{"loop": 1},
	}
}

func TestProgramString(t *testing.T) {
	p := sampleProgram()
	s := p.String()
	if !strings.Contains(s, "loop:") {
		t.Error("label missing from disassembly")
	}
	if !strings.Contains(s, "ldr r3, [r5], #4") {
		t.Errorf("post-index load missing:\n%s", s)
	}
	if !strings.Contains(s, "blt 1") {
		t.Errorf("branch missing:\n%s", s)
	}
}

func TestLabelAt(t *testing.T) {
	p := sampleProgram()
	if got := p.LabelAt(1); got != "loop" {
		t.Errorf("LabelAt(1) = %q", got)
	}
	if got := p.LabelAt(0); got != "" {
		t.Errorf("LabelAt(0) = %q, want empty", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := sampleProgram()
	q := p.Clone()
	q.Code[0].Imm = 99
	q.Labels["loop"] = 5
	if p.Code[0].Imm == 99 {
		t.Error("Clone shares code")
	}
	if p.Labels["loop"] == 5 {
		t.Error("Clone shares labels")
	}
}

func TestValidateBadInstr(t *testing.T) {
	p := sampleProgram()
	p.Code[2] = NewInstr(OpAdd) // empty registers
	if err := p.Validate(); err == nil {
		t.Error("bad instruction must fail validation")
	}
}

func TestInstrStringsAllOps(t *testing.T) {
	// Every opcode's String must be non-empty and panic-free.
	for op := OpNop; op < numOps; op++ {
		in := NewInstr(op)
		in.Rd, in.Rn, in.Rm, in.Ra = R0, R1, R2, R3
		in.Qd, in.Qn, in.Qm = 0, 1, 2
		in.Mem = Mem{Base: R4, Index: NoReg}
		in.Target = 0
		if s := in.String(); s == "" {
			t.Errorf("op %d prints empty", op)
		}
		if s := in.Mnemonic(); s == "" {
			t.Errorf("op %d mnemonic empty", op)
		}
	}
}

func TestMemString(t *testing.T) {
	cases := map[string]Mem{
		"[r1]":             {Base: R1, Index: NoReg},
		"[r1, #8]":         {Base: R1, Index: NoReg, Offset: 8},
		"[r1], #4":         {Base: R1, Index: NoReg, Offset: 4, Kind: AddrPostIndex, Writeback: true},
		"[r1, r2]":         {Base: R1, Index: R2, Kind: AddrRegOffset},
		"[r1, r2, lsl #2]": {Base: R1, Index: R2, Shift: 2, Kind: AddrRegOffset},
	}
	for want, m := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mem.String() = %q, want %q", got, want)
		}
	}
}
