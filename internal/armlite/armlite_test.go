package armlite

import "testing"

func TestCondHolds(t *testing.T) {
	cases := []struct {
		cond Cond
		f    Flags
		want bool
	}{
		{CondAL, Flags{}, true},
		{CondEQ, Flags{Z: true}, true},
		{CondEQ, Flags{}, false},
		{CondNE, Flags{Z: true}, false},
		{CondNE, Flags{}, true},
		{CondLT, Flags{N: true}, true},
		{CondLT, Flags{N: true, V: true}, false},
		{CondLE, Flags{Z: true}, true},
		{CondLE, Flags{N: true}, true},
		{CondGT, Flags{}, true},
		{CondGT, Flags{Z: true}, false},
		{CondGE, Flags{}, true},
		{CondGE, Flags{N: true}, false},
		{CondMI, Flags{N: true}, true},
		{CondPL, Flags{N: true}, false},
		{CondHS, Flags{C: true}, true},
		{CondLO, Flags{C: true}, false},
		{CondHI, Flags{C: true}, true},
		{CondHI, Flags{C: true, Z: true}, false},
		{CondLS, Flags{}, true},
		{CondLS, Flags{C: true}, false},
	}
	for _, c := range cases {
		if got := c.cond.Holds(c.f); got != c.want {
			t.Errorf("%v.Holds(%+v) = %v, want %v", c.cond, c.f, got, c.want)
		}
	}
}

func TestCondInverse(t *testing.T) {
	for _, c := range []Cond{CondEQ, CondNE, CondLT, CondLE, CondGT, CondGE,
		CondMI, CondPL, CondHS, CondLO, CondHI, CondLS} {
		inv := c.Inverse()
		if inv == c {
			t.Errorf("%v has no distinct inverse", c)
		}
		if inv.Inverse() != c {
			t.Errorf("Inverse not involutive for %v", c)
		}
		// A condition and its inverse must never both hold.
		for _, f := range []Flags{{}, {Z: true}, {N: true}, {C: true}, {V: true},
			{N: true, V: true}, {C: true, Z: true}, {N: true, Z: true}} {
			if c.Holds(f) && inv.Holds(f) {
				t.Errorf("%v and %v both hold under %+v", c, inv, f)
			}
			if !c.Holds(f) && !inv.Holds(f) {
				t.Errorf("neither %v nor %v holds under %+v", c, inv, f)
			}
		}
	}
}

func TestDataTypeLanes(t *testing.T) {
	// The parallelism degrees of dissertation Fig. 4.
	cases := map[DataType]int{I8: 16, I16: 8, I32: 4, VF32: 4, Byte: 16, Half: 8, Word: 4, F32: 4}
	for dt, want := range cases {
		if got := dt.Lanes(); got != want {
			t.Errorf("%v.Lanes() = %d, want %d", dt, got, want)
		}
		if dt.Size()*dt.Lanes() != VectorBytes {
			t.Errorf("%v: size*lanes != 16", dt)
		}
	}
}

func TestDataTypeVector(t *testing.T) {
	cases := map[DataType]DataType{Byte: I8, Half: I16, Word: I32, F32: VF32, I8: I8, VF32: VF32}
	for dt, want := range cases {
		if got := dt.Vector(); got != want {
			t.Errorf("%v.Vector() = %v, want %v", dt, got, want)
		}
	}
}

func TestVectorALUOp(t *testing.T) {
	cases := map[Op]Op{OpAdd: OpVadd, OpSub: OpVsub, OpMul: OpVmul,
		OpFAdd: OpVadd, OpFMul: OpVmul, OpAnd: OpVand, OpOrr: OpVorr,
		OpEor: OpVeor, OpLsr: OpVshr, OpLsl: OpVshl}
	for op, want := range cases {
		got, ok := VectorALUOp(op)
		if !ok || got != want {
			t.Errorf("VectorALUOp(%v) = %v,%v want %v", op, got, ok, want)
		}
	}
	for _, op := range []Op{OpSdiv, OpCmp, OpLdr, OpB, OpFDiv} {
		if _, ok := VectorALUOp(op); ok {
			t.Errorf("VectorALUOp(%v) unexpectedly ok", op)
		}
	}
}

func TestUsesDefs(t *testing.T) {
	add := ALUReg(OpAdd, R3, R3, R1)
	if !add.Uses().Has(R3) || !add.Uses().Has(R1) {
		t.Errorf("add uses wrong: %v", add.Uses().Regs())
	}
	if !add.Defs().Has(R3) || add.Defs().Count() != 1 {
		t.Errorf("add defs wrong: %v", add.Defs().Regs())
	}

	ld := LoadPost(Word, R3, R5, 4)
	if !ld.Uses().Has(R5) {
		t.Error("post-indexed load must use base")
	}
	if !ld.Defs().Has(R3) || !ld.Defs().Has(R5) {
		t.Errorf("post-indexed load must def rd and base, got %v", ld.Defs().Regs())
	}

	st := StorePost(Word, R3, R2, 4)
	if !st.Uses().Has(R3) || !st.Uses().Has(R2) {
		t.Errorf("store uses wrong: %v", st.Uses().Regs())
	}
	if !st.Defs().Has(R2) || st.Defs().Has(R3) {
		t.Errorf("store defs wrong: %v", st.Defs().Regs())
	}

	cmp := CmpReg(R0, R4)
	if cmp.Defs() != 0 {
		t.Error("cmp must not def registers")
	}

	bl := NewInstr(OpBL)
	if !bl.Defs().Has(LR) {
		t.Error("bl must def lr")
	}
}

func TestVUsesVDefs(t *testing.T) {
	vadd := VALU(OpVadd, Word, 9, 9, 8)
	if got := vadd.VDefs(); len(got) != 1 || got[0] != 9 {
		t.Errorf("vadd VDefs = %v", got)
	}
	if got := vadd.VUses(); len(got) != 2 {
		t.Errorf("vadd VUses = %v", got)
	}
	vst := VStore(Word, 9, R2, true)
	if got := vst.VUses(); len(got) != 1 || got[0] != 9 {
		t.Errorf("vst1 VUses = %v", got)
	}
	if got := vst.VDefs(); len(got) != 0 {
		t.Errorf("vst1 VDefs = %v", got)
	}
	vld := VLoad(Word, 8, R5, true)
	if got := vld.VDefs(); len(got) != 1 || got[0] != 8 {
		t.Errorf("vld1 VDefs = %v", got)
	}
}

func TestValidate(t *testing.T) {
	good := []Instr{
		MovImm(R0, 1), ALUReg(OpAdd, R1, R1, R0), CmpImm(R0, 4),
		LoadPost(Byte, R3, R5, 1), StoreOfs(Word, R3, R2, 8),
		Branch(CondLT, 0), Halt(), Nop(),
		VLoad(Word, 8, R5, true), VALU(OpVadd, Word, 9, 9, 8),
		VShiftImm(OpVshr, Word, 9, 9, 8), VDup(Word, 1, R0),
	}
	for _, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("Validate(%s): %v", in, err)
		}
	}
	bad := NewInstr(OpAdd) // no registers at all
	if err := bad.Validate(); err == nil {
		t.Error("expected validation failure for empty add")
	}
	badV := NewInstr(OpVadd)
	if err := badV.Validate(); err == nil {
		t.Error("expected validation failure for empty vadd")
	}
}

func TestProgramValidateBranchRange(t *testing.T) {
	p := &Program{Name: "t", Code: []Instr{Branch(CondAL, 5), Halt()}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range branch target must fail validation")
	}
	p.Code[0].Target = 1
	if err := p.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestRegSet(t *testing.T) {
	var s RegSet
	s.Add(R0)
	s.Add(R5)
	s.Add(NoReg) // must be ignored
	if !s.Has(R0) || !s.Has(R5) || s.Has(R1) {
		t.Errorf("membership wrong: %v", s.Regs())
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d", s.Count())
	}
	var tset RegSet
	tset.Add(R1)
	u := s.Union(tset)
	if u.Count() != 3 {
		t.Errorf("Union count = %d", u.Count())
	}
}

func TestMnemonicStrings(t *testing.T) {
	cases := map[string]Instr{
		"subs":     func() Instr { i := ALUImm(OpSub, R0, R0, 1); i.SetFlags = true; return i }(),
		"blt":      Branch(CondLT, 0),
		"vadd.i32": VALU(OpVadd, Word, 1, 2, 3),
		"vld1.f32": VLoad(F32, 1, R0, false),
		"ldrb":     LoadOfs(Byte, R0, R1, 0),
		"strh":     StoreOfs(Half, R0, R1, 0),
	}
	for want, in := range cases {
		if got := in.Mnemonic(); got != want {
			t.Errorf("Mnemonic = %q, want %q", got, want)
		}
	}
}
