package armlite

import (
	"fmt"
	"strings"
)

// Program is a fully resolved sequence of instructions. Instruction
// indices serve as "addresses"; the simulated program counter counts
// instructions, and the dissertation's instruction-address arithmetic
// (loop body ranges, condition-region gaps) maps directly onto indices.
type Program struct {
	Name   string
	Code   []Instr
	Labels map[string]int // label → instruction index
}

// Validate checks every instruction and every branch target.
func (p *Program) Validate() error {
	for i, in := range p.Code {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("%s@%d: %w", p.Name, i, err)
		}
		if in.Op == OpB || in.Op == OpBL {
			if in.Target < 0 || in.Target >= len(p.Code) {
				return fmt.Errorf("%s@%d: branch target %d out of range", p.Name, i, in.Target)
			}
		}
	}
	return nil
}

// LabelAt returns the label naming instruction index i, or "".
func (p *Program) LabelAt(i int) string {
	// Several labels may share an index (a label line directly above
	// another); pick the lexicographically smallest so the choice — and
	// everything derived from String(), like snapshot program
	// fingerprints — is deterministic across map iteration orders.
	best := ""
	for name, idx := range p.Labels {
		if idx == i && (best == "" || name < best) {
			best = name
		}
	}
	return best
}

// String disassembles the whole program with labels.
func (p *Program) String() string {
	var b strings.Builder
	for i, in := range p.Code {
		if l := p.LabelAt(i); l != "" {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "\t%s\n", in)
	}
	return b.String()
}

// Clone returns a deep copy, so rewriting passes (the auto-vectorizer)
// never mutate the scalar original.
func (p *Program) Clone() *Program {
	q := &Program{Name: p.Name, Code: make([]Instr, len(p.Code)), Labels: make(map[string]int, len(p.Labels))}
	copy(q.Code, p.Code)
	for k, v := range p.Labels {
		q.Labels[k] = v
	}
	return q
}

// RegSet is a small set of scalar registers.
type RegSet uint32

// Add inserts r.
func (s *RegSet) Add(r Reg) {
	if r.Valid() {
		*s |= 1 << r
	}
}

// Has reports membership.
func (s RegSet) Has(r Reg) bool { return r.Valid() && s&(1<<r) != 0 }

// Union merges two sets.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// Count returns the cardinality.
func (s RegSet) Count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

// Regs lists the members in ascending order.
func (s RegSet) Regs() []Reg {
	var out []Reg
	for r := Reg(0); r < NumRegs; r++ {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// Uses returns the scalar registers an instruction reads. It is the
// foundation of the DSA's backward slices (sentinel stop-condition
// extraction) and the auto-vectorizer's dependence checks.
func (in Instr) Uses() RegSet {
	var s RegSet
	addOp2 := func() {
		if !in.HasImm {
			s.Add(in.Rm)
		}
	}
	switch in.Op {
	case OpNop, OpHalt:
	case OpMov, OpMvn:
		addOp2()
	case OpCmp, OpCmn, OpTst, OpFCmp:
		s.Add(in.Rn)
		addOp2()
	case OpMla:
		s.Add(in.Rn)
		s.Add(in.Rm)
		s.Add(in.Ra)
	case OpMul, OpSdiv, OpUdiv, OpFAdd, OpFSub, OpFMul, OpFDiv,
		OpAdd, OpSub, OpRsb, OpAnd, OpOrr, OpEor, OpBic, OpLsl, OpLsr, OpAsr:
		s.Add(in.Rn)
		addOp2()
	case OpLdr:
		s.Add(in.Mem.Base)
		s.Add(in.Mem.Index)
	case OpStr:
		s.Add(in.Rd) // store reads the data register
		s.Add(in.Mem.Base)
		s.Add(in.Mem.Index)
	case OpBX:
		s.Add(in.Rn)
	case OpVld1, OpVst1:
		s.Add(in.Mem.Base)
	case OpVdup:
		s.Add(in.Rn)
	}
	return s
}

// Defs returns the scalar registers an instruction writes.
func (in Instr) Defs() RegSet {
	var s RegSet
	switch in.Op {
	case OpMov, OpMvn, OpMla, OpMul, OpSdiv, OpUdiv,
		OpFAdd, OpFSub, OpFMul, OpFDiv,
		OpAdd, OpSub, OpRsb, OpAnd, OpOrr, OpEor, OpBic, OpLsl, OpLsr, OpAsr:
		s.Add(in.Rd)
	case OpLdr:
		s.Add(in.Rd)
	case OpBL:
		s.Add(LR)
	}
	if in.Op.IsMem() && in.Mem.Writeback {
		s.Add(in.Mem.Base)
	}
	return s
}

// VUses returns the vector registers an instruction reads.
func (in Instr) VUses() []VReg {
	var out []VReg
	add := func(v VReg) {
		if v.Valid() {
			out = append(out, v)
		}
	}
	switch in.Op {
	case OpVst1:
		add(in.Qd)
	case OpVmov:
		add(in.Qm)
	case OpVshl, OpVshr:
		add(in.Qn)
	case OpVbsl:
		add(in.Qd)
		add(in.Qn)
		add(in.Qm)
	case OpVadd, OpVsub, OpVmul, OpVand, OpVorr, OpVeor, OpVmin, OpVmax,
		OpVceq, OpVcgt:
		add(in.Qn)
		add(in.Qm)
	}
	return out
}

// VDefs returns the vector registers an instruction writes.
func (in Instr) VDefs() []VReg {
	switch in.Op {
	case OpVld1, OpVadd, OpVsub, OpVmul, OpVand, OpVorr, OpVeor,
		OpVmin, OpVmax, OpVshl, OpVshr, OpVdup, OpVceq, OpVcgt,
		OpVbsl, OpVmov:
		if in.Qd.Valid() {
			return []VReg{in.Qd}
		}
	}
	return nil
}
