package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/snapshot"
	"repro/internal/vectorize"
	"repro/internal/workloads"
)

// The interrupt/resume differential oracle: for every golden workload
// × mode, kill the run at a pseudo-random step, snapshot at the kill
// point, resume a freshly built machine from the snapshot bytes, and
// require the resumed run's final memory digest, tick count, step
// count and DSA fallback attribution to be bit-identical to the
// uninterrupted run's. Any divergence means the snapshot misses state
// or restores it wrong.
//
// The kill step is derived from DSASIM_RESUME_SEED (default 1) and is
// printed on failure so a miss reproduces exactly. In -short mode (and
// via DSASIM_RESUME_WORKLOADS=a,b,c) the sweep runs on a subset.

// errKill is the sentinel the run hook aborts with at the kill point.
var errKill = errors.New("resume oracle: killed")

// runState is the comparable residue of one completed run.
type runState struct {
	memSum uint64
	ticks  int64
	steps  uint64
	stats  *dsa.Stats // nil for machine-only modes
}

// sim abstracts the two execution shapes (bare machine vs DSA system)
// behind the save/restore/run surface the oracle needs.
type sim struct {
	m   *cpu.Machine
	sys *dsa.System
}

func buildSim(w *workloads.Workload, mode Mode) (*sim, error) {
	switch mode {
	case ModeScalar:
		m := cpu.MustNew(w.Scalar(), cpu.DefaultConfig())
		w.Setup(m)
		return &sim{m: m}, nil
	case ModeAutoVec:
		prog, _, err := vectorize.AutoVectorize(w.Scalar(), vectorize.Options{NoAlias: w.NoAlias})
		if err != nil {
			return nil, err
		}
		m := cpu.MustNew(prog, cpu.DefaultConfig())
		w.Setup(m)
		return &sim{m: m}, nil
	case ModeHand:
		prog := w.Scalar()
		if w.Hand != nil {
			prog = w.Hand()
		}
		m := cpu.MustNew(prog, cpu.DefaultConfig())
		w.Setup(m)
		return &sim{m: m}, nil
	case ModeDSAOrig, ModeDSAExt, ModeDSAAdaptive:
		cfg := dsa.DefaultConfig()
		switch mode {
		case ModeDSAOrig:
			cfg = dsa.OriginalConfig()
		case ModeDSAAdaptive:
			cfg = dsa.AdaptiveConfig()
		}
		s, err := dsa.NewSystem(w.Scalar(), cpu.DefaultConfig(), cfg)
		if err != nil {
			return nil, err
		}
		w.Setup(s.M)
		return &sim{m: s.M, sys: s}, nil
	default:
		return nil, fmt.Errorf("unknown mode %q", mode)
	}
}

func (s *sim) setHook(fn func() error) {
	if s.sys != nil {
		s.sys.SetRunHook(fn)
	} else {
		s.m.SetRunHook(fn)
	}
}

func (s *sim) save(w *snapshot.Writer) error {
	if s.sys != nil {
		return s.sys.SaveState(w)
	}
	s.m.SaveState(w)
	return nil
}

func (s *sim) restore(r *snapshot.Reader) error {
	if s.sys != nil {
		return s.sys.RestoreState(r)
	}
	return s.m.RestoreState(r)
}

func (s *sim) run() error {
	if s.sys != nil {
		return s.sys.Run()
	}
	return s.m.Run(nil)
}

func (s *sim) state(w *workloads.Workload) (*runState, error) {
	if err := w.Check(s.m); err != nil {
		return nil, fmt.Errorf("output check: %w", err)
	}
	st := &runState{memSum: s.m.Mem.Sum64(), ticks: s.m.Ticks, steps: s.m.Steps}
	if s.sys != nil {
		st.stats = s.sys.Stats().Snapshot()
	}
	return st, nil
}

// resumeWorkloads picks the sweep set: the env override, a fast subset
// in -short mode, the whole suite otherwise.
func resumeWorkloads(t *testing.T) []*workloads.Workload {
	if env := os.Getenv("DSASIM_RESUME_WORKLOADS"); env != "" {
		var ws []*workloads.Workload
		for _, name := range strings.Split(env, ",") {
			w, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				t.Fatal(err)
			}
			ws = append(ws, w)
		}
		return ws
	}
	if testing.Short() {
		var ws []*workloads.Workload
		for _, name := range []string{"mm_32x32", "str_prep", "bit_count"} {
			w, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			ws = append(ws, w)
		}
		return ws
	}
	return workloads.All()
}

func resumeSeed() int64 {
	if env := os.Getenv("DSASIM_RESUME_SEED"); env != "" {
		var s int64
		if _, err := fmt.Sscan(env, &s); err == nil {
			return s
		}
	}
	return 1
}

func TestInterruptResumeOracle(t *testing.T) {
	seed := resumeSeed()
	modes := []Mode{ModeScalar, ModeAutoVec, ModeHand, ModeDSAOrig, ModeDSAExt, ModeDSAAdaptive}
	for _, w := range resumeWorkloads(t) {
		for _, mode := range modes {
			w, mode := w, mode
			t.Run(w.Name+"/"+string(mode), func(t *testing.T) {
				t.Parallel()
				testInterruptResume(t, w, mode, seed)
			})
		}
	}
}

// dumpFailedSnapshot preserves the kill-point snapshot for post-mortem
// when the oracle fails and DSASIM_RESUME_ARTIFACTS names a directory
// (CI uploads it as a build artifact).
func dumpFailedSnapshot(t *testing.T, w *workloads.Workload, mode Mode, snap []byte) {
	t.Cleanup(func() {
		dir := os.Getenv("DSASIM_RESUME_ARTIFACTS")
		if !t.Failed() || dir == "" || snap == nil {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("artifact dir: %v", err)
			return
		}
		path := filepath.Join(dir, w.Name+"_"+string(mode)+".dsnp")
		if err := os.WriteFile(path, snap, 0o644); err != nil {
			t.Logf("artifact write: %v", err)
			return
		}
		t.Logf("kill-point snapshot preserved at %s", path)
	})
}

func testInterruptResume(t *testing.T, w *workloads.Workload, mode Mode, seed int64) {
	// Reference: the uninterrupted run.
	ref, err := buildSim(w, mode)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.run(); err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	want, err := ref.state(w)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	// Pick the kill step inside the run, pseudo-randomly but
	// reproducibly per (seed, workload, mode).
	rng := rand.New(rand.NewSource(seed ^ int64(cpu.ProgramFingerprint(ref.m.Prog))))
	killStep := 1 + uint64(rng.Int63n(int64(want.steps)))

	// Interrupted run: snapshot at the first hook firing at or past the
	// kill step, then abort. DSA modes postpone the hook to the next
	// engine-quiescent point, so the actual kill step may trail the
	// requested one; both are legitimate interruption points.
	victim, err := buildSim(w, mode)
	if err != nil {
		t.Fatal(err)
	}
	var snap []byte
	victim.setHook(func() error {
		if victim.m.Steps < killStep {
			return nil
		}
		var sw snapshot.Writer
		if err := victim.save(&sw); err != nil {
			return fmt.Errorf("save at step %d: %w", victim.m.Steps, err)
		}
		snap = sw.Bytes()
		return errKill
	})
	err = victim.run()
	if err == nil {
		// The run halted before the hook could fire past killStep (a
		// kill point in the final stretch with no further quiescent
		// hook firing). The interruption never happened; the oracle's
		// equality claim is vacuous here, but the completed victim must
		// still match the reference.
		got, serr := victim.state(w)
		if serr != nil {
			t.Fatalf("seed=%d killStep=%d: uninterrupted victim: %v", seed, killStep, serr)
		}
		compareRunState(t, seed, killStep, want, got)
		return
	}
	if !errors.Is(err, errKill) {
		t.Fatalf("seed=%d killStep=%d: interrupted run died of the wrong cause: %v", seed, killStep, err)
	}
	if snap == nil {
		t.Fatalf("seed=%d killStep=%d: killed without a snapshot", seed, killStep)
	}
	dumpFailedSnapshot(t, w, mode, snap)

	// Resume a freshly built simulation from the snapshot bytes and run
	// it to completion.
	resumed, err := buildSim(w, mode)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := snapshot.Parse(snap)
	if err != nil {
		t.Fatalf("seed=%d killStep=%d: parse snapshot: %v", seed, killStep, err)
	}
	if err := resumed.restore(rd); err != nil {
		t.Fatalf("seed=%d killStep=%d: restore: %v", seed, killStep, err)
	}
	if err := resumed.run(); err != nil {
		t.Fatalf("seed=%d killStep=%d: resumed run: %v", seed, killStep, err)
	}
	got, err := resumed.state(w)
	if err != nil {
		t.Fatalf("seed=%d killStep=%d: resumed run: %v", seed, killStep, err)
	}
	compareRunState(t, seed, killStep, want, got)
}

func compareRunState(t *testing.T, seed int64, killStep uint64, want, got *runState) {
	t.Helper()
	if got.memSum != want.memSum {
		t.Errorf("seed=%d killStep=%d: memory digest %016x, want %016x", seed, killStep, got.memSum, want.memSum)
	}
	if got.ticks != want.ticks {
		t.Errorf("seed=%d killStep=%d: ticks %d, want %d", seed, killStep, got.ticks, want.ticks)
	}
	if got.steps != want.steps {
		t.Errorf("seed=%d killStep=%d: steps %d, want %d", seed, killStep, got.steps, want.steps)
	}
	if !reflect.DeepEqual(got.stats, want.stats) {
		t.Errorf("seed=%d killStep=%d: DSA stats diverged:\n got: %+v\nwant: %+v", seed, killStep, got.stats, want.stats)
	}
}
