package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/workloads"
)

// suite runs the full grid once per test binary.
var cachedSuite *Suite

func getSuite(t *testing.T) *Suite {
	t.Helper()
	if cachedSuite != nil {
		return cachedSuite
	}
	s, err := RunSuite([]Mode{ModeScalar, ModeAutoVec, ModeHand, ModeDSAOrig, ModeDSAExt})
	if err != nil {
		t.Fatal(err)
	}
	cachedSuite = s
	return s
}

// TestHeadlineClaims locks in the paper's qualitative results as
// regression assertions over the full suite.
func TestHeadlineClaims(t *testing.T) {
	s := getSuite(t)

	collect := func(mode Mode) []float64 {
		var out []float64
		for _, name := range s.Order {
			out = append(out, s.Speedup(name, mode))
		}
		return out
	}
	gAuto := stats.GeoMean(collect(ModeAutoVec))
	gHand := stats.GeoMean(collect(ModeHand))
	gOrig := stats.GeoMean(collect(ModeDSAOrig))
	gExt := stats.GeoMean(collect(ModeDSAExt))

	// Abstract claim 1: DSA outperforms the auto-vectorizer
	// (paper: +32 %; require at least +15 %).
	if gExt < gAuto*1.15 {
		t.Errorf("DSA (%.2f) must beat autovec (%.2f) by ≥15%%", gExt, gAuto)
	}
	// Abstract claim 2: DSA outperforms the hand-coded library
	// approach (paper: +26 %; require at least +15 %).
	if gExt < gHand*1.15 {
		t.Errorf("DSA (%.2f) must beat hand (%.2f) by ≥15%%", gExt, gHand)
	}
	// Article 2 claim: extended ≥ original everywhere, strictly better
	// on the dynamic-loop benchmarks.
	for _, name := range s.Order {
		o, e := s.Speedup(name, ModeDSAOrig), s.Speedup(name, ModeDSAExt)
		if e < o*0.999 {
			t.Errorf("%s: extended (%.2f) below original (%.2f)", name, e, o)
		}
	}
	for _, name := range []string{"bit_count", "dijkstra", "str_prep"} {
		if s.Speedup(name, ModeDSAExt) < s.Speedup(name, ModeDSAOrig)*1.05 {
			t.Errorf("%s: extended must clearly beat original", name)
		}
	}
	if gOrig >= gExt {
		t.Errorf("extended geomean (%.2f) must exceed original (%.2f)", gExt, gOrig)
	}

	// Abstract claim 3: substantial DSA energy savings on DLP-rich
	// workloads (paper: 45 % average).
	var savings []float64
	for _, name := range []string{"mm_32x32", "mm_64x64", "rgb_gray", "gaussian", "susan_e"} {
		savings = append(savings, s.EnergySavings(name, ModeDSAExt))
	}
	if m := stats.Mean(savings); m < 30 {
		t.Errorf("mean DLP energy savings %.1f%%, want ≥30%%", m)
	}

	// No-penalty claim: the DSA never slows a benchmark down by more
	// than 1 %.
	for _, name := range s.Order {
		if sp := s.Speedup(name, ModeDSAExt); sp < 0.99 {
			t.Errorf("%s: DSA slowdown (%.3f×) violates the no-penalty claim", name, sp)
		}
	}
}

// TestDetectionHidden: the DSA detection-latency metric is tracked but
// must never appear in wall-clock ticks — scalar-equal benchmarks run
// at parity under the DSA.
func TestDetectionHidden(t *testing.T) {
	s := getSuite(t)
	base := s.Results["q_sort"][ModeScalar].Ticks
	d := s.Results["q_sort"][ModeDSAExt].Ticks
	if d > base+base/100 {
		t.Errorf("qsort under DSA = %d ticks vs scalar %d: probing must be free", d, base)
	}
	if s.Results["q_sort"][ModeDSAExt].DSA.AnalysisTicks == 0 {
		t.Error("analysis ticks should be non-zero (the engine did probe)")
	}
}

// TestTablesRender: every printer produces non-empty output and the
// expected headers.
func TestTablesRender(t *testing.T) {
	s := getSuite(t)
	checks := []struct {
		name   string
		print  func(*bytes.Buffer)
		expect string
	}{
		{"fig12", func(b *bytes.Buffer) { s.Article1Fig12(b) }, "Article 1, Fig. 12"},
		{"table3", func(b *bytes.Buffer) { s.Article1Table3(b) }, "2.18%"},
		{"fig16", func(b *bytes.Buffer) { s.Article2Fig16(b) }, "dsa-ext"},
		{"latency", func(b *bytes.Buffer) { s.DetectionLatency(b, ModeDSAExt) }, "Detection Latency"},
		{"fig7", func(b *bytes.Buffer) { s.Article3Fig7(b) }, "sentinel"},
		{"fig8", func(b *bytes.Buffer) { s.Article3Fig8(b) }, "geomean"},
		{"fig9", func(b *bytes.Buffer) { s.Article3Fig9(b) }, "Energy savings"},
		{"table3b", func(b *bytes.Buffer) { s.Article3Table3(b) }, "DSA energy"},
		{"inhibitors", func(b *bytes.Buffer) { s.InhibitorsTable(b) }, "bit_count"},
		{"summary", func(b *bytes.Buffer) { s.Summary(b) }, "geomean"},
	}
	for _, c := range checks {
		var buf bytes.Buffer
		c.print(&buf)
		if !strings.Contains(buf.String(), c.expect) {
			t.Errorf("%s: output missing %q:\n%s", c.name, c.expect, buf.String())
		}
		lines := strings.Count(buf.String(), "\n")
		if lines < 3 {
			t.Errorf("%s: suspiciously short output (%d lines)", c.name, lines)
		}
	}
	var buf bytes.Buffer
	TechniquesTable(&buf)
	if !strings.Contains(buf.String(), "monitor task") {
		t.Error("techniques table missing JIT row")
	}
	buf.Reset()
	SystemsSetupTable(&buf)
	if !strings.Contains(buf.String(), "Q0–Q15") {
		t.Error("setup table missing NEON registers row")
	}
}

// TestEveryModeVerifies re-asserts that Run checks outputs: a result
// always implies bit-exact verification.
func TestEveryModeVerifies(t *testing.T) {
	w, err := workloads.ByName("rgb_gray")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeScalar, ModeAutoVec, ModeHand, ModeDSAOrig, ModeDSAExt} {
		if _, err := Run(w, mode); err != nil {
			t.Errorf("%s: %v", mode, err)
		}
	}
	if _, err := Run(w, Mode("bogus")); err == nil {
		t.Error("unknown mode must error")
	}
}

// TestWriteCSV: the CSV export has a header and one row per workload.
func TestWriteCSV(t *testing.T) {
	s := getSuite(t)
	var buf bytes.Buffer
	s.WriteCSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(s.Order)+1 {
		t.Fatalf("csv lines = %d, want %d", len(lines), len(s.Order)+1)
	}
	if !strings.HasPrefix(lines[0], "workload,scalar_ticks") {
		t.Errorf("bad header %q", lines[0])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != 6 {
			t.Errorf("bad row %q", l)
		}
	}
}
