// Package experiments reproduces every table and figure of the
// dissertation's evaluation: it runs each workload under the four
// system setups of Table 4 (ARM Original, NEON AutoVec, NEON
// Hand-coded, NEON DSA original/extended), verifies every run against
// the Go reference, and prints paper-shaped rows.
package experiments

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/energy"
	"repro/internal/mem"
	"repro/internal/vectorize"
	"repro/internal/workloads"
)

// Mode names one system setup.
type Mode string

// The system setups.
const (
	ModeScalar      Mode = "arm-original"
	ModeAutoVec     Mode = "neon-autovec"
	ModeHand        Mode = "neon-hand"
	ModeDSAOrig     Mode = "neon-dsa-original"
	ModeDSAExt      Mode = "neon-dsa-extended"
	ModeDSAAdaptive Mode = "neon-dsa-adaptive"
)

// Result is one verified run.
type Result struct {
	Workload string
	Mode     Mode
	Ticks    int64
	Counts   cpu.Counts
	L1, L2   mem.Stats
	Energy   energy.Breakdown

	// DSA-only.
	DSA *dsa.Stats
	// AutoVec-only.
	Report *vectorize.Report
}

// Run executes one workload under one mode and verifies the output.
func Run(w *workloads.Workload, mode Mode) (*Result, error) {
	res := &Result{Workload: w.Name, Mode: mode}
	var m *cpu.Machine
	var dsaEvents energy.DSAEvents

	switch mode {
	case ModeScalar:
		m = cpu.MustNew(w.Scalar(), cpu.DefaultConfig())
		w.Setup(m)
		if err := m.Run(nil); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", w.Name, mode, err)
		}

	case ModeAutoVec:
		prog, rep, err := vectorize.AutoVectorize(w.Scalar(), vectorize.Options{NoAlias: w.NoAlias})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", w.Name, mode, err)
		}
		res.Report = rep
		m = cpu.MustNew(prog, cpu.DefaultConfig())
		w.Setup(m)
		if err := m.Run(nil); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", w.Name, mode, err)
		}

	case ModeHand:
		prog := w.Scalar()
		if w.Hand != nil {
			prog = w.Hand()
		}
		m = cpu.MustNew(prog, cpu.DefaultConfig())
		w.Setup(m)
		if err := m.Run(nil); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", w.Name, mode, err)
		}

	case ModeDSAOrig, ModeDSAExt, ModeDSAAdaptive:
		cfg := dsa.DefaultConfig()
		switch mode {
		case ModeDSAOrig:
			cfg = dsa.OriginalConfig()
		case ModeDSAAdaptive:
			cfg = dsa.AdaptiveConfig()
		}
		s, err := dsa.NewSystem(w.Scalar(), cpu.DefaultConfig(), cfg)
		if err != nil {
			return nil, err
		}
		w.Setup(s.M)
		if err := s.Run(); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", w.Name, mode, err)
		}
		m = s.M
		res.DSA = s.Stats()
		dsaEvents = s.Stats().EnergyEvents()

	default:
		return nil, fmt.Errorf("unknown mode %q", mode)
	}

	if err := w.Check(m); err != nil {
		return nil, fmt.Errorf("%s/%s: verification failed: %w", w.Name, mode, err)
	}
	res.Ticks = m.Ticks
	res.Counts = m.Counts
	res.L1 = m.Caches.L1Stats()
	res.L2 = m.Caches.L2Stats()
	res.Energy = energy.Compute(energy.DefaultParams(), m.Counts, res.L1, res.L2, dsaEvents)
	return res, nil
}

// Suite runs every workload under every requested mode.
type Suite struct {
	Modes   []Mode
	Results map[string]map[Mode]*Result // workload → mode → result
	Order   []string
}

// RunSuite executes the full grid.
func RunSuite(modes []Mode) (*Suite, error) {
	s := &Suite{Modes: modes, Results: make(map[string]map[Mode]*Result)}
	for _, w := range workloads.All() {
		s.Order = append(s.Order, w.Name)
		s.Results[w.Name] = make(map[Mode]*Result)
		for _, mode := range modes {
			r, err := Run(w, mode)
			if err != nil {
				return nil, err
			}
			s.Results[w.Name][mode] = r
		}
	}
	return s, nil
}

// Speedup returns mode's speedup over the scalar baseline for one
// workload.
func (s *Suite) Speedup(name string, mode Mode) float64 {
	base := s.Results[name][ModeScalar]
	r := s.Results[name][mode]
	if base == nil || r == nil || r.Ticks == 0 {
		return 0
	}
	return float64(base.Ticks) / float64(r.Ticks)
}

// EnergySavings returns mode's energy savings (%) over scalar.
func (s *Suite) EnergySavings(name string, mode Mode) float64 {
	base := s.Results[name][ModeScalar]
	r := s.Results[name][mode]
	if base == nil || r == nil {
		return 0
	}
	return (1 - r.Energy.Total()/base.Energy.Total()) * 100
}
