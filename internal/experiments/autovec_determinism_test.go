package experiments

import (
	"testing"

	"repro/internal/vectorize"
	"repro/internal/workloads"
)

func TestAutoVecDeterministic(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p1, _, err := vectorize.AutoVectorize(w.Scalar(), vectorize.Options{NoAlias: w.NoAlias})
			if err != nil {
				t.Skipf("not vectorizable: %v", err)
			}
			s1 := p1.String()
			for i := 0; i < 10; i++ {
				p2, _, err := vectorize.AutoVectorize(w.Scalar(), vectorize.Options{NoAlias: w.NoAlias})
				if err != nil {
					t.Fatal(err)
				}
				if p2.String() != s1 {
					t.Fatalf("iter %d: emitted program differs between runs", i)
				}
			}
		})
	}
}
