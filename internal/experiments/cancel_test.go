package experiments

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/snapshot"
	"repro/internal/workloads"
)

// TestCancelMidTakeoverRollsBack: batch cancellation can land while a
// DSA takeover holds an open cpu.Checkpoint — takeover drivers call
// M.Step directly, so the cancel check fires inside the speculative
// region. guarded() must roll the machine back to the takeover-entry
// state *before* surfacing ErrCanceled, so a snapshot taken after the
// aborted run never captures half-applied speculative stores.
//
// str_prep is the probe workload on purpose: its sentinel takeovers
// write speculative windows *past* the real stop point. If rollback
// leaked those stores, the resumed scalar re-execution would exit at
// the sentinel without overwriting them and the final memory digest
// would diverge from the uninterrupted run's.
func TestCancelMidTakeoverRollsBack(t *testing.T) {
	w, err := workloads.ByName("str_prep")
	if err != nil {
		t.Fatal(err)
	}

	ref, err := buildSim(w, ModeDSAExt)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.run(); err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	want, err := ref.state(w)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	// Sweep cancel points densely across the run so some land inside
	// open takeovers (asserted below via the takeover-wrapped error).
	const points = 64
	stride := want.steps / points
	if stride == 0 {
		stride = 1
	}
	errShutdown := errors.New("batch shutdown")
	sawMidTakeover := false
	for cancelAt := stride; cancelAt < want.steps; cancelAt += stride {
		victim, err := buildSim(w, ModeDSAExt)
		if err != nil {
			t.Fatal(err)
		}
		victim.m.SetCancelCheck(func() error {
			if victim.m.Steps >= cancelAt {
				return errShutdown
			}
			return nil
		}, 1)
		err = victim.run()
		if err == nil {
			continue // canceled in the final halt stretch: nothing to resume
		}
		if !errors.Is(err, cpu.ErrCanceled) || !errors.Is(err, errShutdown) {
			t.Fatalf("cancelAt=%d: run died of the wrong cause: %v", cancelAt, err)
		}
		if strings.Contains(err.Error(), "dsa takeover") {
			sawMidTakeover = true // surfaced through guarded(): checkpoint was open
		}

		// The job snapshot the runner would take after this abort.
		var sw snapshot.Writer
		if err := victim.sys.SaveState(&sw); err != nil {
			t.Fatalf("cancelAt=%d: save after cancel: %v", cancelAt, err)
		}
		rd, err := snapshot.Parse(sw.Bytes())
		if err != nil {
			t.Fatalf("cancelAt=%d: parse: %v", cancelAt, err)
		}
		resumed, err := buildSim(w, ModeDSAExt)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.restore(rd); err != nil {
			t.Fatalf("cancelAt=%d: restore: %v", cancelAt, err)
		}
		if err := resumed.run(); err != nil {
			t.Fatalf("cancelAt=%d: resumed run: %v", cancelAt, err)
		}
		// Memory must land exactly on the uninterrupted image. (Engine
		// counters may legitimately differ: the aborted takeover's
		// analysis accounting is engine-side and the re-triggered
		// takeover repeats it, so only the architectural result is
		// compared here.)
		if err := w.Check(resumed.m); err != nil {
			t.Errorf("cancelAt=%d: resumed output check: %v", cancelAt, err)
		}
		if got := resumed.m.Mem.Sum64(); got != want.memSum {
			t.Errorf("cancelAt=%d: memory digest %016x, want %016x — rollback leaked speculative state",
				cancelAt, got, want.memSum)
		}
	}
	if !sawMidTakeover {
		t.Fatal("sweep never canceled inside an open takeover — widen the sweep")
	}
}
