package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/dsa"
	"repro/internal/stats"
)

// Article1Workloads is the benchmark set of Article 1 (SBCCI).
var Article1Workloads = []string{
	"mm_32x32", "mm_64x64", "rgb_gray", "gaussian", "susan_e", "q_sort", "dijkstra",
}

// Article2Workloads adds the dynamic-loop benchmarks of Article 2 (SBESC).
var Article2Workloads = []string{
	"mm_32x32", "mm_64x64", "rgb_gray", "gaussian", "susan_e", "q_sort", "dijkstra", "bit_count",
}

// Article3Workloads is the full DATE suite (the supplementary echo
// workload appears only in the summary and ablations).
var Article3Workloads = []string{
	"mm_32x32", "mm_64x64", "rgb_gray", "gaussian", "susan_e",
	"q_sort", "dijkstra", "bit_count", "str_prep",
}

// Article1Fig12 prints the Article 1 Fig. 12 rows: NEON
// auto-vectorization vs (original) DSA speedup over the ARM original
// execution.
func (s *Suite) Article1Fig12(w io.Writer) {
	fmt.Fprintln(w, "== Article 1, Fig. 12 — NEON Auto-Vectorization vs. DSA performance")
	fmt.Fprintln(w, "   (speedup over ARM Original Execution)")
	fmt.Fprintf(w, "%-12s %12s %12s\n", "benchmark", "autovec", "dsa")
	var av, dv []float64
	for _, name := range Article1Workloads {
		a := s.Speedup(name, ModeAutoVec)
		d := s.Speedup(name, ModeDSAOrig)
		av, dv = append(av, a), append(dv, d)
		fmt.Fprintf(w, "%-12s %11.2fx %11.2fx\n", name, a, d)
	}
	fmt.Fprintf(w, "%-12s %11.2fx %11.2fx   (paper: DSA outperforms autovec by ~6%% here)\n",
		"geomean", stats.GeoMean(av), stats.GeoMean(dv))
}

// Article1Table3 prints the DSA area-overhead table. Area was measured
// by RTL synthesis in the paper, not simulated — the published numbers
// are carried through verbatim (see DESIGN.md substitutions).
func (s *Suite) Article1Table3(w io.Writer) {
	fmt.Fprintln(w, "== Article 1, Table 3 — Area overhead of DSA (published RTL numbers)")
	fmt.Fprintf(w, "%-22s %12s %12s %12s\n", "", "cell (µm²)", "net (µm²)", "total (µm²)")
	fmt.Fprintf(w, "%-22s %12d %12d %12d\n", "ARM core", 391158, 219015, 610173)
	fmt.Fprintf(w, "%-22s %12d %12d %12d\n", "DSA logic", 8667, 4607, 13274)
	fmt.Fprintf(w, "%-22s %11.2f%% %11.2f%% %11.2f%%\n", "overhead", 2.22, 2.10, 2.18)
	fmt.Fprintf(w, "%-22s %12d %12d %12d\n", "ARM core + caches", 512912, 279801, 792713)
	fmt.Fprintf(w, "%-22s %12d %12d %12d\n", "DSA + caches", 53716, 28520, 82236)
	fmt.Fprintf(w, "%-22s %11.2f%% %11.2f%% %11.2f%%\n", "total overhead", 10.47, 10.19, 10.37)
}

// Article2Fig16 prints AutoVec vs Original DSA vs Extended DSA — the
// Article 2 headline: only the extended DSA covers conditional and
// dynamic-range loops.
func (s *Suite) Article2Fig16(w io.Writer) {
	fmt.Fprintln(w, "== Article 2, Fig. 16 — AutoVec vs Original DSA vs Extended DSA")
	fmt.Fprintln(w, "   (speedup over ARM Original Execution)")
	fmt.Fprintf(w, "%-12s %12s %12s %12s\n", "benchmark", "autovec", "dsa-orig", "dsa-ext")
	var av, ov, ev []float64
	for _, name := range Article2Workloads {
		a := s.Speedup(name, ModeAutoVec)
		o := s.Speedup(name, ModeDSAOrig)
		e := s.Speedup(name, ModeDSAExt)
		av, ov, ev = append(av, a), append(ov, o), append(ev, e)
		fmt.Fprintf(w, "%-12s %11.2fx %11.2fx %11.2fx\n", name, a, o, e)
	}
	fmt.Fprintf(w, "%-12s %11.2fx %11.2fx %11.2fx   (paper: extended beats autovec by ~12%%)\n",
		"geomean", stats.GeoMean(av), stats.GeoMean(ov), stats.GeoMean(ev))
}

// DetectionLatency prints the DSA detection-latency table (Article 2
// Table 3 / Article 3 Table 2): the share of execution time the DSA
// spent analyzing, which runs in parallel with the core.
func (s *Suite) DetectionLatency(w io.Writer, mode Mode) {
	fmt.Fprintf(w, "== DSA Detection Latency (%s) — Article 2 Table 3 / Article 3 Table 2\n", mode)
	fmt.Fprintf(w, "%-12s %16s %16s %14s\n", "benchmark", "analysis ticks", "exec ticks", "share")
	for _, name := range Article3Workloads {
		r := s.Results[name][mode]
		if r == nil || r.DSA == nil {
			continue
		}
		share := r.DSA.DetectionShare(r.Ticks)
		fmt.Fprintf(w, "%-12s %16d %16d %13.2f%%\n", name, r.DSA.AnalysisTicks, r.Ticks, share*100)
	}
	fmt.Fprintln(w, "   (analysis runs in parallel with the ARM pipeline: no wall-clock cost)")
}

// Article3Fig7 prints the loop-type census the DSA observed per
// application.
func (s *Suite) Article3Fig7(w io.Writer) {
	fmt.Fprintln(w, "== Article 3, Fig. 7 — Percentage of loop types in the selected applications")
	kinds := []dsa.LoopKind{dsa.KindCount, dsa.KindFunction, dsa.KindNested,
		dsa.KindConditional, dsa.KindSentinel, dsa.KindDynamicRange, dsa.KindNonVectorizable}
	fmt.Fprintf(w, "%-12s", "benchmark")
	for _, k := range kinds {
		fmt.Fprintf(w, " %16s", k)
	}
	fmt.Fprintln(w)
	for _, name := range Article3Workloads {
		r := s.Results[name][ModeDSAExt]
		if r == nil || r.DSA == nil {
			continue
		}
		var total uint64
		for _, k := range kinds {
			total += r.DSA.ByKind[k]
		}
		fmt.Fprintf(w, "%-12s", name)
		for _, k := range kinds {
			pct := 0.0
			if total > 0 {
				pct = float64(r.DSA.ByKind[k]) / float64(total) * 100
			}
			fmt.Fprintf(w, " %15.1f%%", pct)
		}
		fmt.Fprintln(w)
	}
}

// Article3Fig8 prints the DATE headline figure: AutoVec vs Hand vs
// Extended DSA speedups over the ARM original execution.
func (s *Suite) Article3Fig8(w io.Writer) {
	fmt.Fprintln(w, "== Article 3, Fig. 8 — Performance improvements over ARM Original Execution")
	fmt.Fprintf(w, "%-12s %12s %12s %12s\n", "benchmark", "autovec", "hand-coded", "dsa-ext")
	var av, hv, ev []float64
	for _, name := range Article3Workloads {
		a := s.Speedup(name, ModeAutoVec)
		h := s.Speedup(name, ModeHand)
		e := s.Speedup(name, ModeDSAExt)
		av, hv, ev = append(av, a), append(hv, h), append(ev, e)
		fmt.Fprintf(w, "%-12s %11.2fx %11.2fx %11.2fx\n", name, a, h, e)
	}
	ga, gh, ge := stats.GeoMean(av), stats.GeoMean(hv), stats.GeoMean(ev)
	fmt.Fprintf(w, "%-12s %11.2fx %11.2fx %11.2fx\n", "geomean", ga, gh, ge)
	fmt.Fprintf(w, "   DSA over autovec: +%.0f%% (paper: +32%%); DSA over hand: +%.0f%% (paper: +26%%)\n",
		(ge/ga-1)*100, (ge/gh-1)*100)
}

// Article3Fig9 prints energy savings over the ARM original execution.
// When the suite also ran the adaptive mode, a fourth column shows the
// policy-gated DSA.
func (s *Suite) Article3Fig9(w io.Writer) {
	adaptive := s.has(ModeDSAAdaptive)
	fmt.Fprintln(w, "== Article 3, Fig. 9 — Energy savings over ARM Original Execution")
	fmt.Fprintf(w, "%-12s %12s %12s %12s", "benchmark", "autovec", "hand-coded", "dsa-ext")
	if adaptive {
		fmt.Fprintf(w, " %12s", "dsa-adaptive")
	}
	fmt.Fprintln(w)
	var ev, pv []float64
	for _, name := range Article3Workloads {
		a := s.EnergySavings(name, ModeAutoVec)
		h := s.EnergySavings(name, ModeHand)
		e := s.EnergySavings(name, ModeDSAExt)
		ev = append(ev, e)
		fmt.Fprintf(w, "%-12s %11.1f%% %11.1f%% %11.1f%%", name, a, h, e)
		if adaptive {
			p := s.EnergySavings(name, ModeDSAAdaptive)
			pv = append(pv, p)
			fmt.Fprintf(w, " %11.1f%%", p)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-12s %24s %12.1f%%", "mean", "", stats.Mean(ev))
	if adaptive {
		fmt.Fprintf(w, " %11.1f%%", stats.Mean(pv))
	}
	fmt.Fprintln(w, "   (paper: 45% for DSA)")
}

// has reports whether every workload in the suite carries a result for
// the mode.
func (s *Suite) has(mode Mode) bool {
	for _, m := range s.Modes {
		if m == mode {
			return true
		}
	}
	return false
}

// AdaptivePolicyTable prints the adaptive-policy ledger per workload:
// how many takeovers the bandit kept, how many loops it benched after
// repeated losses, how many trials it granted, and the DSA detection
// energy under the extended vs adaptive configs. Suspended loops are
// still observed (the DSA must keep watching to know when to grant a
// trial — detection-preamble energy continues), but their tracks are
// never allocated and their windows never re-analyzed, so the Δdsa
// column stays within a few percent of the extended config while the
// policy removes the losing takeovers themselves.
func (s *Suite) AdaptivePolicyTable(w io.Writer) {
	fmt.Fprintln(w, "== Adaptive takeover policy — per-loop cost/benefit ledger")
	fmt.Fprintf(w, "%-12s %10s %6s %6s %6s %14s %14s %10s\n",
		"benchmark", "takeovers", "kept", "susp", "trial", "dsa-ext (nJ)", "adaptive (nJ)", "Δdsa")
	for _, name := range Article3Workloads {
		r := s.Results[name][ModeDSAAdaptive]
		ext := s.Results[name][ModeDSAExt]
		if r == nil || r.DSA == nil || ext == nil {
			continue
		}
		delta := 0.0
		if ext.Energy.DSA > 0 {
			delta = (r.Energy.DSA/ext.Energy.DSA - 1) * 100
		}
		fmt.Fprintf(w, "%-12s %10d %6d %6d %6d %14.1f %14.1f %+9.1f%%\n",
			name, r.DSA.Takeovers, r.DSA.PolicyKept, r.DSA.PolicySuspended, r.DSA.PolicyTrialed,
			ext.Energy.DSA, r.Energy.DSA, delta)
	}
	fmt.Fprintln(w, "   (susp: loops benched by the bandit — still observed, never re-analyzed;")
	fmt.Fprintln(w, "    trial: periodic probation entries that let a loop earn back)")
}

// Article3Table3 prints the DSA energy share: how much of the total
// energy the detection logic itself consumed.
func (s *Suite) Article3Table3(w io.Writer) {
	fmt.Fprintln(w, "== Article 3, Table 3 — DSA energy consumption (share of run total)")
	fmt.Fprintf(w, "%-12s %14s %14s %10s\n", "benchmark", "DSA (nJ)", "total (nJ)", "share")
	for _, name := range Article3Workloads {
		r := s.Results[name][ModeDSAExt]
		if r == nil {
			continue
		}
		share := 0.0
		if t := r.Energy.Total(); t > 0 {
			share = r.Energy.DSA / t * 100
		}
		fmt.Fprintf(w, "%-12s %14.1f %14.1f %9.2f%%\n", name, r.Energy.DSA, r.Energy.Total(), share)
	}
}

// InhibitorsTable prints the static compiler's Table 1 diagnostics per
// workload.
func (s *Suite) InhibitorsTable(w io.Writer) {
	fmt.Fprintln(w, "== Table 1 — Auto-vectorization inhibitors observed by the static compiler")
	for _, name := range Article3Workloads {
		r := s.Results[name][ModeAutoVec]
		if r == nil || r.Report == nil {
			continue
		}
		inh := r.Report.Inhibitors()
		keys := make([]string, 0, len(inh))
		for k := range inh {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "%-12s vectorized=%d", name, r.Report.VectorizedCount())
		for _, k := range keys {
			fmt.Fprintf(w, "  %s×%d", k, inh[k])
		}
		fmt.Fprintln(w)
	}
}

// TechniquesTable prints the qualitative comparison of dissertation
// Table 2 (Ch. 2).
func TechniquesTable(w io.Writer) {
	fmt.Fprintln(w, "== Dissertation Table 2 — Vectorization techniques comparison")
	fmt.Fprintf(w, "%-24s %-14s %-14s %-10s %-14s\n",
		"technique", "recompilation", "productivity", "analysis", "penalty")
	fmt.Fprintf(w, "%-24s %-14s %-14s %-10s %-14s\n",
		"hand-code programming", "yes", "affected", "static", "none")
	fmt.Fprintf(w, "%-24s %-14s %-14s %-10s %-14s\n",
		"auto-vectorization", "yes", "not affected", "static", "none")
	fmt.Fprintf(w, "%-24s %-14s %-14s %-10s %-14s\n",
		"just-in-time compiler", "no", "not affected", "dynamic", "monitor task")
	fmt.Fprintf(w, "%-24s %-14s %-14s %-10s %-14s\n",
		"DSA (this work)", "no", "not affected", "dynamic", "none")
}

// SystemsSetupTable prints the dissertation Table 4 configuration.
func SystemsSetupTable(w io.Writer) {
	fmt.Fprintln(w, "== Dissertation Table 4 — Systems setup")
	rows := [][2]string{
		{"Processor", "armlite model of gem5 O3CPU (ARMv7)"},
		{"Superscalar width", "2 wide"},
		{"CPU clock", "1 GHz (10 ticks/cycle)"},
		{"L1 cache", "64 kB, 4-way, LRU"},
		{"L2 cache", "512 kB, 8-way, LRU"},
		{"NEON parallelism", "type dependent, 128-bit wide"},
		{"NEON registers", "sixteen 128-bit (Q0–Q15)"},
		{"DSA cache", "8 kB"},
		{"Verification cache", "1 kB"},
		{"Array maps", "4 × 128-bit"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %s\n", r[0], r[1])
	}
}

// Summary prints the one-screen overview with the paper's headline
// comparisons.
func (s *Suite) Summary(w io.Writer) {
	fmt.Fprintln(w, "== Summary — speedups over ARM Original Execution")
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %10s | %s\n",
		"benchmark", "scalar", "autovec", "hand", "dsa-orig", "dsa-ext", "dsa-ext energy savings")
	var av, hv, ov, ev, en []float64
	for _, name := range s.Order {
		base := s.Results[name][ModeScalar]
		if base == nil {
			continue
		}
		a, h := s.Speedup(name, ModeAutoVec), s.Speedup(name, ModeHand)
		o, e := s.Speedup(name, ModeDSAOrig), s.Speedup(name, ModeDSAExt)
		sv := s.EnergySavings(name, ModeDSAExt)
		av, hv, ov, ev, en = append(av, a), append(hv, h), append(ov, o), append(ev, e), append(en, sv)
		fmt.Fprintf(w, "%-12s %10d %9.2fx %9.2fx %9.2fx %9.2fx | %6.1f%%\n",
			name, base.Ticks, a, h, o, e, sv)
	}
	fmt.Fprintf(w, "%-12s %10s %9.2fx %9.2fx %9.2fx %9.2fx | %6.1f%%\n",
		"geomean", "", stats.GeoMean(av), stats.GeoMean(hv), stats.GeoMean(ov), stats.GeoMean(ev), stats.Mean(en))
}

// WriteCSV emits the summary grid as CSV (one row per workload) for
// external plotting.
func (s *Suite) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "workload,scalar_ticks,autovec_speedup,hand_speedup,dsa_orig_speedup,dsa_ext_speedup,dsa_ext_energy_savings_pct")
	for _, name := range s.Order {
		base := s.Results[name][ModeScalar]
		if base == nil {
			continue
		}
		fmt.Fprintf(w, "%s,%d,%.4f,%.4f,%.4f,%.4f,%.2f\n",
			name, base.Ticks,
			s.Speedup(name, ModeAutoVec),
			s.Speedup(name, ModeHand),
			s.Speedup(name, ModeDSAOrig),
			s.Speedup(name, ModeDSAExt),
			s.EnergySavings(name, ModeDSAExt))
	}
}
