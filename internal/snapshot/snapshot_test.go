package snapshot

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func sample(t *testing.T) []byte {
	t.Helper()
	var w Writer
	w.Add("alpha", []byte("hello world"))
	w.Add("beta", make([]byte, 4096))
	var e Enc
	e.U32(7)
	e.I64(-42)
	e.Str("gamma-data")
	e.Bool(true)
	w.Add("gamma", e.Bytes())
	return w.Bytes()
}

func TestRoundTrip(t *testing.T) {
	b := sample(t)
	r, err := Parse(b)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := r.Names(); len(got) != 3 || got[0] != "alpha" || got[2] != "gamma" {
		t.Fatalf("Names = %v", got)
	}
	a, err := r.Section("alpha")
	if err != nil || string(a) != "hello world" {
		t.Fatalf("alpha = %q, %v", a, err)
	}
	g, _ := r.Section("gamma")
	d := NewDec(g)
	if v := d.U32(); v != 7 {
		t.Fatalf("U32 = %d", v)
	}
	if v := d.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := d.Str(); v != "gamma-data" {
		t.Fatalf("Str = %q", v)
	}
	if !d.Bool() {
		t.Fatal("Bool = false")
	}
	if err := d.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
	if _, err := r.Section("missing"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing section: %v", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.dsnp")
	var w Writer
	w.Add("s", []byte{1, 2, 3})
	if err := w.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	// No temp droppings left behind.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("dir has %d entries, want 1", len(ents))
	}
	r, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	s, _ := r.Section("s")
	if len(s) != 3 || s[2] != 3 {
		t.Fatalf("section = %v", s)
	}
}

func TestDetectsBadMagic(t *testing.T) {
	b := sample(t)
	b[0] = 'X'
	if _, err := Parse(b); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := Parse(nil); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("empty file: %v, want ErrBadMagic", err)
	}
}

func TestDetectsVersionSkew(t *testing.T) {
	b := sample(t)
	binary.LittleEndian.PutUint32(b[4:], Version+1)
	err := parseErr(t, b)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
	// Version skew must NOT be reported as corruption: the caller
	// messaging differs ("stale snapshot after upgrade" vs "damaged
	// file").
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("version skew misattributed as corruption: %v", err)
	}
}

func TestDetectsTruncation(t *testing.T) {
	b := sample(t)
	for _, n := range []int{len(b) - 1, len(b) / 2, len(magic) + 3, 10} {
		if _, err := Parse(b[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestDetectsBitFlips(t *testing.T) {
	orig := sample(t)
	// Flip one bit at a time across the whole body (skip the 4-byte
	// version word: flipping it is version skew by design, and the
	// magic which is its own class).
	for i := len(magic) + 4; i < len(orig); i++ {
		b := append([]byte(nil), orig...)
		b[i] ^= 0x40
		if _, err := Parse(b); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
}

func TestDetectsTrailingGarbage(t *testing.T) {
	b := append(sample(t), 0xAA, 0xBB)
	if _, err := Parse(b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestDetectsDuplicateSections(t *testing.T) {
	var w Writer
	w.Add("dup", []byte{1})
	w.Add("dup", []byte{2})
	if _, err := Parse(w.Bytes()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestDetectsHugeClaimedLengths(t *testing.T) {
	// A corrupted section count or length must not drive a huge
	// allocation; it should fail cleanly.
	b := []byte(magic)
	b = binary.LittleEndian.AppendUint32(b, Version)
	b = binary.LittleEndian.AppendUint64(b, 0)
	b = binary.LittleEndian.AppendUint32(b, epochCRC(0))
	b = binary.LittleEndian.AppendUint32(b, 1<<31)
	if _, err := Parse(b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge count: %v, want ErrCorrupt", err)
	}
}

func TestEpochRoundTrip(t *testing.T) {
	var w Writer
	w.Epoch = 7
	w.Add("s", []byte{1})
	r, err := Parse(w.Bytes())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if r.Epoch() != 7 {
		t.Fatalf("Epoch = %d, want 7", r.Epoch())
	}
	// Default writers stamp epoch 0 (non-cluster operation).
	r2, err := Parse(sample(t))
	if err != nil {
		t.Fatalf("Parse sample: %v", err)
	}
	if r2.Epoch() != 0 {
		t.Fatalf("default epoch = %d, want 0", r2.Epoch())
	}
}

func TestDetectsEpochWordCorruption(t *testing.T) {
	// The epoch word carries the fencing token a takeover's restore
	// trusts; a flip in it (or its CRC) must be corruption, never a
	// silently different epoch.
	var w Writer
	w.Epoch = 0x0102030405060708
	w.Add("s", []byte{1})
	orig := w.Bytes()
	for i := 8; i < 20; i++ {
		b := append([]byte(nil), orig...)
		b[i] ^= 0x04
		if _, err := Parse(b); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("epoch-area flip at byte %d: %v, want ErrCorrupt", i, err)
		}
	}
}

func TestDecStickyErrors(t *testing.T) {
	d := NewDec([]byte{1, 2})
	_ = d.U64() // overruns
	if d.Err() == nil {
		t.Fatal("overrun not detected")
	}
	if v := d.U32(); v != 0 {
		t.Fatalf("post-error read = %d, want 0", v)
	}
	if err := d.Done(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Done = %v, want ErrCorrupt", err)
	}
}

func TestDecTrailingBytes(t *testing.T) {
	d := NewDec([]byte{1, 0, 0, 0, 99})
	_ = d.U32()
	if err := d.Done(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Done = %v, want ErrCorrupt for trailing bytes", err)
	}
}

func parseErr(t *testing.T, b []byte) error {
	t.Helper()
	_, err := Parse(b)
	if err == nil {
		t.Fatal("Parse succeeded on damaged input")
	}
	return err
}
