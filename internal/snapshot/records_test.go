package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

func TestRecordStreamRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("first"),
		{}, // empty records are legal (replication heartbeats)
		bytes.Repeat([]byte{0xA5}, 4096),
		[]byte(`{"kind":"job","seq":7}`),
	}
	var b []byte
	for _, p := range payloads {
		b = AppendRecord(b, p)
	}
	got, err := SplitRecords(b)
	if err != nil {
		t.Fatalf("SplitRecords: %v", err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("got %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("record %d: got %q, want %q", i, got[i], payloads[i])
		}
	}
}

func TestRecordStreamEmpty(t *testing.T) {
	got, err := SplitRecords(nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: got %d records, err %v", len(got), err)
	}
}

// Every proper prefix of a valid stream that does not end on a record
// boundary must be rejected — a truncated batch is never half-applied.
func TestRecordStreamTruncation(t *testing.T) {
	var b []byte
	b = AppendRecord(b, []byte("hello"))
	b = AppendRecord(b, []byte("world, this is record two"))
	boundaries := map[int]bool{0: true, 4 + 5 + 4: true, len(b): true}
	for cut := 0; cut <= len(b); cut++ {
		_, err := SplitRecords(b[:cut])
		if boundaries[cut] {
			if err != nil {
				t.Errorf("cut %d (boundary): unexpected error %v", cut, err)
			}
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("cut %d: got %v, want ErrCorrupt", cut, err)
		}
	}
}

// Any single bit flip anywhere in the stream must be detected (either
// as a checksum mismatch or as framing damage).
func TestRecordStreamBitFlip(t *testing.T) {
	var orig []byte
	orig = AppendRecord(orig, []byte("payload A"))
	orig = AppendRecord(orig, []byte("payload B"))
	for i := 0; i < len(orig)*8; i++ {
		b := bytes.Clone(orig)
		b[i/8] ^= 1 << (i % 8)
		recs, err := SplitRecords(b)
		if err != nil {
			continue
		}
		// A flip in a length field can reframe the stream; the CRCs
		// must still refuse the altered payloads.
		if len(recs) == 2 && bytes.Equal(recs[0], []byte("payload A")) && bytes.Equal(recs[1], []byte("payload B")) {
			t.Fatalf("bit %d: flip accepted with payloads intact", i)
		}
		if err == nil {
			t.Fatalf("bit %d: corrupted stream accepted (%d records)", i, len(recs))
		}
	}
}

func TestRecordStreamOversizedClaim(t *testing.T) {
	b := AppendRecord(nil, []byte("x"))
	b[0], b[1], b[2], b[3] = 0xFF, 0xFF, 0xFF, 0x7F // claim ~2 GiB
	if _, err := SplitRecords(b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized claim: got %v, want ErrCorrupt", err)
	}
}
