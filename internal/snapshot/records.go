package snapshot

import (
	"encoding/binary"
	"fmt"
)

// Record streams.
//
// The replication stream between coordinators ships batches of state
// delta records over HTTP. The container format above is the wrong
// shape for that — sections are named and unique, records are ordered
// and repeated — so batches use a flat framing with the same
// corruption guarantees:
//
//	record := payLen u32 | payload [payLen]byte | crc u32
//
// where crc is CRC32-C over the payload alone. A stream is zero or
// more records back to back with nothing after the last one. Like the
// container, a framing or checksum failure surfaces as ErrCorrupt /
// ErrTruncated: a receiver can never half-apply a batch that was
// truncated or bit-flipped on the wire — it rejects the whole body and
// the sender retries.

// maxRecordBytes bounds what one record's length field can claim, so a
// corrupted length cannot drive a huge allocation.
const maxRecordBytes = 1 << 30

// AppendRecord appends one framed record holding payload to dst and
// returns the extended slice.
func AppendRecord(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, sectionCRC("", payload))
}

// SplitRecords validates b as a record stream and returns the payload
// of every record, in order. Payloads alias b. An empty stream is
// valid and returns nil.
func SplitRecords(b []byte) ([][]byte, error) {
	var out [][]byte
	off := 0
	for off < len(b) {
		rest := b[off:]
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: record %d header (%d bytes)", ErrTruncated, len(out), len(rest))
		}
		payLen := binary.LittleEndian.Uint32(rest)
		if payLen > maxRecordBytes || int(payLen) > len(rest)-8 {
			return nil, fmt.Errorf("%w: record %d payload (%d bytes claimed, %d available)",
				ErrTruncated, len(out), payLen, len(rest)-8)
		}
		payload := rest[4 : 4+int(payLen)]
		crc := binary.LittleEndian.Uint32(rest[4+int(payLen):])
		if got := sectionCRC("", payload); got != crc {
			return nil, fmt.Errorf("%w: record %d CRC32C %08x, want %08x", ErrCorrupt, len(out), got, crc)
		}
		out = append(out, payload)
		off += 8 + int(payLen)
	}
	return out, nil
}
