package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// File layout (all integers little-endian):
//
//	magic    [4]byte  "DSNP"
//	version  u32      — NOT covered by any CRC, so a version bump is
//	                    reported as ErrVersion, never as corruption
//	epoch    u64      — lease epoch (fencing token) stamped by the
//	                    writer's owner; 0 outside cluster operation
//	epochCRC u32      — CRC32-C over the epoch word alone, so a bit
//	                    flip in the epoch cannot silently promote a
//	                    stale snapshot during takeover
//	count    u32      — number of sections
//	count × section:
//	    nameLen u32
//	    name    [nameLen]byte
//	    payLen  u32
//	    payload [payLen]byte
//	    crc     u32  — CRC32-C over name ++ payload
//
// Nothing may follow the last section: trailing bytes are corruption
// (they usually mean a torn or doubled write).
const (
	// Version is the current snapshot format version. Bump on any
	// incompatible change to section encodings; old files then fail
	// restore with ErrVersion and the caller restarts from zero.
	// v2 added the lease-epoch word to the header.
	Version = 2

	// HeaderLen is the fixed byte length before the first section:
	// magic + version + epoch + epochCRC + count.
	HeaderLen = 4 + 4 + 8 + 4 + 4

	magic = "DSNP"

	// maxSections and maxSectionBytes bound what a header can claim,
	// so a corrupted length field cannot drive a huge allocation.
	maxSections     = 1 << 10
	maxSectionBytes = 1 << 30
)

// Typed restore errors. Callers use errors.Is to attribute the
// degradation cause; all of them mean "do not resume from this file".
var (
	// ErrBadMagic: the file is not a snapshot at all.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrVersion: a well-formed snapshot from an incompatible format
	// version (stale file after an upgrade, or a newer writer).
	ErrVersion = errors.New("snapshot: version mismatch")
	// ErrCorrupt: structural damage — bad lengths, CRC failure,
	// trailing garbage, or a section payload that does not decode.
	ErrCorrupt = errors.New("snapshot: corrupt")
	// ErrTruncated: the file ends before the header says it should
	// (classic torn write). ErrTruncated wraps ErrCorrupt so a single
	// errors.Is(err, ErrCorrupt) catches both.
	ErrTruncated = fmt.Errorf("%w: truncated", ErrCorrupt)
	// ErrMismatch: the snapshot is intact but belongs to a different
	// program or configuration than the one restoring it.
	ErrMismatch = errors.New("snapshot: program/config mismatch")
	// ErrEpochSkew: the snapshot's header epoch disagrees with the
	// epoch the caller expected (a checkpoint file renamed or replayed
	// across lease boundaries). Never resume from such a file.
	ErrEpochSkew = errors.New("snapshot: lease-epoch skew")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func sectionCRC(name string, payload []byte) uint32 {
	c := crc32.Update(0, castagnoli, []byte(name))
	return crc32.Update(c, castagnoli, payload)
}

func epochCRC(epoch uint64) uint32 {
	var eb [8]byte
	binary.LittleEndian.PutUint64(eb[:], epoch)
	return crc32.Update(0, castagnoli, eb[:])
}

// Writer accumulates named sections and writes them out atomically.
type Writer struct {
	// Epoch is the lease epoch (fencing token) stamped into the header.
	// Leave zero outside cluster operation.
	Epoch uint64

	names    []string
	payloads [][]byte
}

// Add appends a section. Names should be unique; the reader indexes by
// name and duplicate names would shadow each other.
func (w *Writer) Add(name string, payload []byte) {
	w.names = append(w.names, name)
	w.payloads = append(w.payloads, payload)
}

// Bytes serializes the snapshot container.
func (w *Writer) Bytes() []byte {
	n := HeaderLen
	for i, name := range w.names {
		n += 12 + len(name) + len(w.payloads[i])
	}
	b := make([]byte, 0, n)
	b = append(b, magic...)
	b = binary.LittleEndian.AppendUint32(b, Version)
	b = binary.LittleEndian.AppendUint64(b, w.Epoch)
	b = binary.LittleEndian.AppendUint32(b, epochCRC(w.Epoch))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(w.names)))
	for i, name := range w.names {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(name)))
		b = append(b, name...)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(w.payloads[i])))
		b = append(b, w.payloads[i]...)
		b = binary.LittleEndian.AppendUint32(b, sectionCRC(name, w.payloads[i]))
	}
	return b
}

// WriteFile writes the snapshot to path crash-consistently: the bytes
// land in a temp file in the same directory, are fsynced, then renamed
// over path, and the directory is fsynced so the rename itself is
// durable. A crash at any point leaves either the old file or the new
// one, never a hybrid.
func (w *Writer) WriteFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: create temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(w.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: fsync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("snapshot: rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		// Directory fsync is best-effort: some filesystems refuse it,
		// and the rename is already atomic w.r.t. crashes that matter
		// for correctness (old-or-new, never hybrid).
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Reader is a fully validated snapshot: construction verifies magic,
// version, framing and every section CRC, so by the time a Reader
// exists the container is structurally sound.
type Reader struct {
	epoch    uint64
	sections map[string][]byte
	order    []string
}

// Parse validates b as a snapshot container.
func Parse(b []byte) (*Reader, error) {
	if len(b) < HeaderLen {
		if len(b) >= len(magic) && string(b[:len(magic)]) == magic {
			return nil, fmt.Errorf("%w: %d-byte header", ErrTruncated, len(b))
		}
		return nil, fmt.Errorf("%w: %d-byte file", ErrBadMagic, len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, b[:len(magic)])
	}
	off := len(magic)
	ver := binary.LittleEndian.Uint32(b[off:])
	off += 4
	if ver != Version {
		return nil, fmt.Errorf("%w: file v%d, reader v%d", ErrVersion, ver, Version)
	}
	epoch := binary.LittleEndian.Uint64(b[off:])
	off += 8
	if got := binary.LittleEndian.Uint32(b[off:]); got != epochCRC(epoch) {
		return nil, fmt.Errorf("%w: epoch word CRC32C %08x, want %08x", ErrCorrupt, epochCRC(epoch), got)
	}
	off += 4
	count := binary.LittleEndian.Uint32(b[off:])
	off += 4
	if count > maxSections {
		return nil, fmt.Errorf("%w: %d sections claimed", ErrCorrupt, count)
	}
	r := &Reader{epoch: epoch, sections: make(map[string][]byte, count)}
	for i := uint32(0); i < count; i++ {
		name, payload, n, err := parseSection(b[off:], i)
		if err != nil {
			return nil, err
		}
		off += n
		if _, dup := r.sections[name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, name)
		}
		r.sections[name] = payload
		r.order = append(r.order, name)
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes after last section", ErrCorrupt, len(b)-off)
	}
	return r, nil
}

func parseSection(b []byte, idx uint32) (name string, payload []byte, n int, err error) {
	if len(b) < 4 {
		return "", nil, 0, fmt.Errorf("%w: section %d header", ErrTruncated, idx)
	}
	nameLen := binary.LittleEndian.Uint32(b)
	if nameLen > maxSectionBytes || int(nameLen) > len(b)-4 {
		return "", nil, 0, fmt.Errorf("%w: section %d name length %d", ErrTruncated, idx, nameLen)
	}
	off := 4 + int(nameLen)
	name = string(b[4:off])
	if len(b[off:]) < 4 {
		return "", nil, 0, fmt.Errorf("%w: section %q payload length", ErrTruncated, name)
	}
	payLen := binary.LittleEndian.Uint32(b[off:])
	off += 4
	if payLen > maxSectionBytes || int(payLen) > len(b[off:]) {
		return "", nil, 0, fmt.Errorf("%w: section %q payload (%d bytes claimed)", ErrTruncated, name, payLen)
	}
	payload = b[off : off+int(payLen)]
	off += int(payLen)
	if len(b[off:]) < 4 {
		return "", nil, 0, fmt.Errorf("%w: section %q checksum", ErrTruncated, name)
	}
	crc := binary.LittleEndian.Uint32(b[off:])
	off += 4
	if got := sectionCRC(name, payload); got != crc {
		return "", nil, 0, fmt.Errorf("%w: section %q CRC32C %08x, want %08x", ErrCorrupt, name, got, crc)
	}
	return name, payload, off, nil
}

// ReadFile reads and validates the snapshot at path.
func ReadFile(path string) (*Reader, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(b)
}

// Section returns the payload of the named section, or ErrCorrupt if
// the snapshot does not contain it (a writer/reader schema drift is a
// restore failure, not a silent default).
func (r *Reader) Section(name string) ([]byte, error) {
	p, ok := r.sections[name]
	if !ok {
		return nil, fmt.Errorf("%w: missing section %q", ErrCorrupt, name)
	}
	return p, nil
}

// Has reports whether the named section exists.
func (r *Reader) Has(name string) bool {
	_, ok := r.sections[name]
	return ok
}

// Names lists the sections in file order.
func (r *Reader) Names() []string { return r.order }

// Epoch returns the lease epoch stamped into the header (0 for
// snapshots written outside cluster operation).
func (r *Reader) Epoch() uint64 { return r.epoch }
