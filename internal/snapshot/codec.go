// Package snapshot implements the durable checkpoint file format the
// simulator uses to survive preemption: a versioned, checksummed
// container of named sections, written atomically (temp file + fsync +
// rename) so a crash mid-write can never leave a file that restores.
//
// The format is deliberately paranoid on the read side: a stale
// version, a torn write, a truncation or a flipped bit is *detected*
// and surfaces as a typed error, so callers degrade to
// restart-from-zero instead of resuming silently corrupted state.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Enc is an append-only little-endian encoder for section payloads.
// The zero value is ready to use.
type Enc struct {
	b []byte
}

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.b }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.b = append(e.b, v) }

// Bool appends a bool as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
}

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}

// I64 appends an int64 (two's complement).
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as an int64.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Enc) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.b = append(e.b, b...)
}

// Raw appends bytes with no length prefix (fixed-width fields).
func (e *Enc) Raw(b []byte) { e.b = append(e.b, b...) }

// Dec decodes a section payload written by Enc. Errors are sticky:
// after the first overrun every accessor returns zero values and Err
// reports what went wrong, so call sites read fields linearly and
// check once at the end.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec wraps payload b.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decoding error (nil when all reads were in
// bounds).
func (d *Dec) Err() error { return d.err }

// Done reports an error unless the payload was fully consumed — a
// length mismatch between writer and reader is corruption, not slack.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes in section", ErrCorrupt, len(d.b)-d.off)
	}
	return nil
}

func (d *Dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: section truncated at offset %d", ErrCorrupt, d.off)
	}
}

func (d *Dec) take(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte bool.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int written by Enc.Int.
func (d *Dec) Int() int {
	v := d.I64()
	if v > math.MaxInt || v < math.MinInt {
		d.fail()
		return 0
	}
	return int(v)
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := int(d.U32())
	return string(d.take(n))
}

// Blob reads a length-prefixed byte slice (aliasing the input buffer).
func (d *Dec) Blob() []byte {
	n := int(d.U32())
	return d.take(n)
}

// Raw reads n bytes with no length prefix.
func (d *Dec) Raw(n int) []byte { return d.take(n) }
