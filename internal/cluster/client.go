package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// clientAttempts is the submit/poll retry budget — same shape as the
// workers' complete budget: bounded, full-jitter backoff between
// attempts.
const clientAttempts = 8

// ErrNoJob is Job's answer for an ID the cluster does not know.
var ErrNoJob = errors.New("cluster: no such job")

// Client is the failover-aware job client: it submits and polls
// against a list of coordinator endpoints, rotating on connect
// failures and standby refusals (502/503) under a bounded full-jitter
// retry budget — the client half of coordinator failover. Submissions
// should carry an Idempotency-Key: a retry after an ambiguous failure
// (response lost on the wire, leader died after committing) then
// replays the job it already created instead of minting a twin;
// without a key, such a retry may duplicate.
type Client struct {
	endpoints []string
	hc        *http.Client
	logf      func(format string, args ...any)
	idx       atomic.Uint32
}

// NewClient builds a client for a comma-separated coordinator endpoint
// list. transport is the netchaos seam (nil = default); logf may be
// nil.
func NewClient(endpoints string, transport http.RoundTripper, logf func(format string, args ...any)) *Client {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Client{
		endpoints: splitEndpoints(endpoints),
		hc:        &http.Client{Transport: transport},
		logf:      logf,
	}
}

// rotate advances past a dead or standby endpoint (CAS: one step per
// observed failure generation).
func (cl *Client) rotate(from uint32) {
	if len(cl.endpoints) < 2 {
		return
	}
	cl.idx.CompareAndSwap(from, from+1)
}

// Submit admits spec under idemKey and returns the job view plus
// whether the cluster replayed an earlier submission with the same key
// (the Idempotency-Replayed header).
func (cl *Client) Submit(spec server.JobSpec, idemKey string) (*server.JobView, bool, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, false, err
	}
	hdr := map[string]string{"Content-Type": "application/json"}
	if idemKey != "" {
		hdr["Idempotency-Key"] = idemKey
	}
	var view server.JobView
	resp, err := cl.do(http.MethodPost, "/v1/jobs", body, hdr, &view)
	if err != nil {
		return nil, false, err
	}
	if resp.code != http.StatusAccepted {
		return nil, false, fmt.Errorf("cluster: submit: HTTP %d: %s", resp.code, resp.errMsg)
	}
	return &view, resp.replayed, nil
}

// Job fetches one job's view; ErrNoJob when the ID is unknown.
func (cl *Client) Job(id string) (*server.JobView, error) {
	var view server.JobView
	resp, err := cl.do(http.MethodGet, "/v1/jobs/"+id, nil, nil, &view)
	if err != nil {
		return nil, err
	}
	switch resp.code {
	case http.StatusOK:
		return &view, nil
	case http.StatusNotFound:
		return nil, ErrNoJob
	}
	return nil, fmt.Errorf("cluster: job %s: HTTP %d: %s", id, resp.code, resp.errMsg)
}

type clientResp struct {
	code     int
	replayed bool
	errMsg   string
}

// do runs one request under the rotation/retry policy: transport
// errors and 502/503 rotate and retry, 429 retries in place, anything
// else is the cluster's answer and returns as-is.
func (cl *Client) do(method, path string, body []byte, hdr map[string]string, out any) (clientResp, error) {
	backoff := 2 * backoffBase
	var lastErr error
	for attempt := 0; attempt < clientAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(fullJitter(backoff))
			if backoff < backoffCap {
				backoff *= 2
			}
		}
		idx := cl.idx.Load()
		base := cl.endpoints[int(idx%uint32(len(cl.endpoints)))]
		ctx, cancel := context.WithTimeout(context.Background(), rpcTimeout)
		req, err := http.NewRequestWithContext(ctx, method, base+path, bytes.NewReader(body))
		if err != nil {
			cancel()
			return clientResp{}, err
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := cl.hc.Do(req)
		if err != nil {
			cancel()
			lastErr = err
			cl.rotate(idx)
			cl.logf("dsasimd-client: %s %s: %v (rotating)", method, path, err)
			continue
		}
		switch resp.StatusCode {
		case http.StatusServiceUnavailable, http.StatusBadGateway:
			resp.Body.Close()
			cancel()
			lastErr = fmt.Errorf("HTTP %d from %s", resp.StatusCode, base)
			cl.rotate(idx)
			continue
		case http.StatusTooManyRequests:
			resp.Body.Close()
			cancel()
			lastErr = fmt.Errorf("HTTP 429 from %s", base)
			continue
		}
		out2 := clientResp{code: resp.StatusCode, replayed: resp.Header.Get("Idempotency-Replayed") == "true"}
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
			if out != nil {
				if derr := json.NewDecoder(resp.Body).Decode(out); derr != nil {
					resp.Body.Close()
					cancel()
					lastErr = fmt.Errorf("decoding %s response: %w", path, derr)
					continue // truncated response: ambiguous, retry (idem key dedups)
				}
			}
		} else {
			var em struct {
				Error string `json:"error"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&em)
			out2.errMsg = em.Error
		}
		resp.Body.Close()
		cancel()
		return out2, nil
	}
	return clientResp{}, fmt.Errorf("cluster: %s %s: retry budget exhausted: %w", method, path, lastErr)
}
