package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
)

// Coordinator high availability.
//
// A Node is one coordinator of a replicated set. Exactly one node is
// the leader — it runs a real Coordinator (job table, lease protocol,
// dispatch) and pushes the replication stream; the rest are warm
// standbys mirroring its state and answering 503 + X-Dsasimd-Role so
// workers and clients rotate to the leader.
//
// Leadership is arbitrated on the shared data directory the cluster
// already requires (workers hand checkpoints to each other through
// it): claiming term E means creating <claims>/claim.e<E> with
// O_EXCL, which the filesystem makes atomic — at most one node ever
// holds a given term, and terms only grow. Failure detection, by
// contrast, is network-based: the leader pushes a replication batch
// (possibly empty — the liveness signal) to every peer each heartbeat,
// and a standby that has gone unpushed past its jittered patience
// claims the next term and promotes from its mirror. A leader learns
// it was deposed two ways — it scans the claim directory each tick and
// finds a higher term, or one of its pushes comes back 409 from a peer
// that knows one — and steps down to standby either way. Everything it
// might still try to write is fenced: peers 409 its stale-term pushes,
// and the composed assignment epochs (term << 32 | counter) mean the
// new leader's assignments compare strictly above every epoch the old
// one ever minted, so the existing owner/epoch checks reject a deposed
// leader's era end to end, exactly like a zombie worker's.

// Role header and loop-protection header names.
const (
	roleHeader      = "X-Dsasimd-Role"
	forwardedHeader = "X-Dsasimd-Forwarded"
)

// HAConfig parameterizes one node of a replicated coordinator set.
type HAConfig struct {
	// Self is this node's advertised base URL — what its claims carry
	// and what peers and workers reach it at.
	Self string
	// Peers are the other coordinators' base URLs.
	Peers []string
	// ClaimDir is the shared leadership-claim directory (on the same
	// shared filesystem as the checkpoint directory).
	ClaimDir string
	// Standby starts the node as a warm standby even if no leader is
	// reachable; it still promotes itself if none ever appears.
	Standby bool
	// Transport, when set, replaces the HTTP transport for every peer
	// RPC — the netchaos seam. Nil uses http.DefaultTransport.
	Transport http.RoundTripper
}

// Node is one replicated coordinator: a state machine over two roles.
// As leader it owns a live Coordinator and the replication log; as
// standby it owns a mirror and a takeover detector.
type Node struct {
	cfg Config
	ha  HAConfig
	// metrics is shared across role flips (failover and fence counters
	// must not reset when the node changes hats).
	metrics *clusterMetrics
	logf    func(format string, args ...any)

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu          sync.Mutex
	leaderEpoch uint64        // current term: own when leading, followed when standby
	lead        *Coordinator  // non-nil iff leader
	repl        *replicator   // the leader's delta log
	term        chan struct{} // closed on step-down; ends this term's push loops
	peerAck     map[string]time.Time
	sb          *standby // non-nil iff standby
}

// NewNode builds the node, decides its starting role, and runs it.
// A non-standby node first looks for a live leader (highest claim
// whose URL answers readiness as leader) and follows it if found —
// so a restarted ex-leader rejoins as standby instead of fighting —
// and otherwise claims the next term itself.
func NewNode(cfg Config, ha HAConfig) (*Node, error) {
	if ha.Self == "" {
		return nil, fmt.Errorf("cluster: HA node needs a Self URL")
	}
	if ha.ClaimDir == "" {
		return nil, fmt.Errorf("cluster: HA node needs a ClaimDir")
	}
	if err := os.MkdirAll(ha.ClaimDir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: claim dir: %w", err)
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	peers := make([]string, 0, len(ha.Peers))
	for _, p := range ha.Peers {
		if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" && p != ha.Self {
			peers = append(peers, p)
		}
	}
	ha.Peers = peers

	n := &Node{
		cfg:     cfg,
		ha:      ha,
		metrics: newClusterMetrics(),
		logf:    cfg.Logf,
		stopCh:  make(chan struct{}),
	}

	top := readClaims(ha.ClaimDir)
	n.mu.Lock()
	if !ha.Standby && (top.epoch == 0 || top.leader == ha.Self || !n.leaderAlive(top.leader)) {
		if tryClaim(ha.ClaimDir, top.epoch+1, ha.Self) {
			if err := n.becomeLeaderLocked(top.epoch+1, false); err != nil {
				n.mu.Unlock()
				return nil, err
			}
		}
		// Losing the O_EXCL race means another node just claimed the
		// same term: follow it.
	}
	if n.lead == nil {
		n.becomeStandbyLocked(readClaims(ha.ClaimDir))
	}
	n.mu.Unlock()

	n.wg.Add(1)
	go n.run()
	return n, nil
}

// Close stops the node. A leader persists its final state (workers
// keep running; they rotate to whoever leads next).
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	n.wg.Wait()
	n.mu.Lock()
	c := n.lead
	var payload *clusterState
	var epoch, seq uint64
	if c == nil && n.sb != nil && n.sb.applied > 0 {
		payload, epoch, seq = n.sb.export(), n.sb.leaderEpoch, n.sb.lastSeq
	}
	n.mu.Unlock()
	if c != nil {
		c.Close()
	} else if payload != nil {
		if err := saveStandbyState(n.cfg.StateFile, payload, epoch, seq); err != nil {
			n.logf("dsasimd-ha: saving standby state: %v", err)
		}
	}
	n.logf("dsasimd-ha: node %s closed", n.ha.Self)
}

// Role reports "leader" or "standby".
func (n *Node) Role() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.lead != nil {
		return "leader"
	}
	return "standby"
}

// Leader returns the live Coordinator when this node leads.
func (n *Node) Leader() *Coordinator {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lead
}

// run is the role loop: each tick a leader checks it has not been
// superseded on the claim directory, and a standby follows new claims
// or — after its patience with an unheard-from leader runs out —
// attempts a takeover.
func (n *Node) run() {
	defer n.wg.Done()
	tick := n.cfg.LeaseTTL / 4
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-t.C:
			n.tick()
		}
	}
}

func (n *Node) tick() {
	top := readClaims(n.ha.ClaimDir)
	n.mu.Lock()
	if n.lead != nil {
		if top.epoch > n.leaderEpoch {
			n.stepDownLocked(top, "superseded on claim directory")
		}
		n.mu.Unlock()
		return
	}
	sb := n.sb
	if top.epoch > sb.leaderEpoch {
		// A newer term was claimed; follow its leader.
		n.logf("dsasimd-ha: %s following term %d (leader %s)", n.ha.Self, top.epoch, top.leader)
		sb.adopt(top.epoch, top.leader)
		n.leaderEpoch = top.epoch
		n.mu.Unlock()
		return
	}
	quiet := time.Since(sb.lastPush)
	n.mu.Unlock()
	if quiet > sb.threshold {
		n.tryTakeover()
	}
}

// tryTakeover claims the next term above everything on the claim
// directory and promotes. Losing the O_EXCL race is fine: the winner's
// claim is adopted on the next tick.
func (n *Node) tryTakeover() {
	top := readClaims(n.ha.ClaimDir)
	target := top.epoch + 1
	if !tryClaim(n.ha.ClaimDir, target, n.ha.Self) {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.lead != nil {
		return
	}
	n.logf("dsasimd-ha: %s lost its leader (term %d quiet %.1fs); taking over at term %d",
		n.ha.Self, n.sb.leaderEpoch, time.Since(n.sb.lastPush).Seconds(), target)
	if err := n.becomeLeaderLocked(target, true); err != nil {
		n.logf("dsasimd-ha: takeover at term %d failed: %v", target, err)
		n.becomeStandbyLocked(claim{epoch: target, leader: n.ha.Self})
	}
}

// becomeLeaderLocked promotes this node: build a Coordinator for term
// epoch from the best available state — the replicated mirror when it
// has one, else the node's own state file — and start a push loop per
// peer. The caller must hold n.mu.
func (n *Node) becomeLeaderLocked(epoch uint64, failover bool) error {
	var preload *clusterState
	src := "state file"
	if n.sb != nil && n.sb.applied > 0 {
		preload, src = n.sb.export(), fmt.Sprintf("replicated mirror (seq %d)", n.sb.lastSeq)
	}
	repl := newReplicator()
	cfg := n.cfg
	cfg.metrics = n.metrics
	cfg.leaderEpoch = epoch
	cfg.preload = preload
	cfg.repl = repl
	c, err := NewCoordinator(cfg)
	if err != nil {
		return err
	}
	n.lead, n.repl, n.leaderEpoch, n.sb = c, repl, epoch, nil
	n.term = make(chan struct{})
	n.peerAck = make(map[string]time.Time, len(n.ha.Peers))
	now := time.Now()
	for _, p := range n.ha.Peers {
		n.peerAck[p] = now
		n.wg.Add(1)
		go n.pushLoop(p, c, repl, n.term)
	}
	if failover {
		n.metrics.onFailover()
	}
	n.logf("dsasimd-ha: %s leading at term %d (from %s, %d peer(s))", n.ha.Self, epoch, src, len(n.ha.Peers))
	return nil
}

// becomeStandbyLocked (re)enters the standby role following cl.
func (n *Node) becomeStandbyLocked(cl claim) {
	n.sb = newStandby(cl.epoch, cl.leader, n.cfg.LeaseTTL)
	n.leaderEpoch = cl.epoch
	n.lead, n.repl = nil, nil
}

// stepDownLocked deposes this node's leadership in favor of cl: end
// the push loops, retire the coordinator (it persists its last state,
// every running attempt keeps going under workers that will simply
// rotate), and become a standby that resyncs from the new leader. The
// caller must hold n.mu.
func (n *Node) stepDownLocked(cl claim, why string) {
	c := n.lead
	close(n.term)
	n.becomeStandbyLocked(cl)
	n.logf("dsasimd-ha: %s deposed at term %d (%s); following term %d (leader %s)",
		n.ha.Self, n.leaderEpochOf(c), why, cl.epoch, cl.leader)
	// Close blocks on the coordinator's loop goroutine; do it off-lock.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		c.Close()
	}()
}

func (n *Node) leaderEpochOf(c *Coordinator) uint64 {
	if c == nil {
		return 0
	}
	return c.leaderEpoch
}

// leaderAlive probes whether url currently answers as a leader.
func (n *Node) leaderAlive(url string) bool {
	if url == "" {
		return false
	}
	hc := &http.Client{Transport: n.ha.Transport, Timeout: time.Second}
	resp, err := hc.Get(url + "/readyz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.Header.Get(roleHeader) == "leader"
}

// pushLoop replicates one term's stream to one peer: the unsent suffix
// of the delta log each heartbeat (instantly when the log wakes it,
// empty when there is nothing — the liveness push), or a full snapshot
// when the peer needs catch-up. A 409 means the peer knows a newer
// term: this leader is deposed and steps down.
func (n *Node) pushLoop(peer string, c *Coordinator, repl *replicator, term chan struct{}) {
	defer n.wg.Done()
	hc := &http.Client{Transport: n.ha.Transport}
	interval := c.cfg.LeaseTTL / 3
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	timeout := interval
	if timeout < 100*time.Millisecond {
		timeout = 100 * time.Millisecond
	}
	hdr := replicateHeader{LeaderEpoch: c.leaderEpoch, Leader: n.ha.Self}
	var acked uint64
	needSnap := true
	for {
		select {
		case <-term:
			return
		case <-n.stopCh:
			return
		case <-time.After(interval):
		case <-repl.wake():
		}

		var recs []repRecord
		if !needSnap {
			var ok bool
			recs, ok = repl.since(acked)
			if !ok {
				needSnap = true // fell off the bounded tail
			}
		}
		if needSnap {
			recs = []repRecord{c.replicaSnapshot()}
		}
		body, err := encodeReplicateBatch(hdr, recs)
		if err != nil {
			n.logf("dsasimd-ha: encoding batch for %s: %v", peer, err)
			continue
		}
		code, resp, err := postReplicateBody(hc, peer, body, timeout)
		switch {
		case err != nil:
			continue // unreachable peer: retry next heartbeat
		case code == http.StatusConflict:
			n.deposedByPeer(c, peer)
			return
		case code == http.StatusOK && resp != nil:
			acked = resp.LastSeq
			needSnap = resp.NeedSnapshot
			n.mu.Lock()
			if n.peerAck != nil {
				n.peerAck[peer] = time.Now()
			}
			n.mu.Unlock()
		}
	}
}

// deposedByPeer handles a 409 on the push path: some peer holds a
// newer term. The claim directory names it.
func (n *Node) deposedByPeer(c *Coordinator, peer string) {
	top := readClaims(n.ha.ClaimDir)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.lead != c {
		return // already stepped down (claim scan or another push)
	}
	if top.epoch <= c.leaderEpoch {
		// The peer knows a term the shared directory does not show yet;
		// follow an anonymous higher term and let pushes identify it.
		top = claim{epoch: c.leaderEpoch + 1}
	}
	n.stepDownLocked(top, fmt.Sprintf("push fenced by %s", peer))
}

// postReplicateBody ships one batch and decodes the ack.
func postReplicateBody(hc *http.Client, peer string, body []byte, timeout time.Duration) (int, *ReplicateResponse, error) {
	req, err := http.NewRequest(http.MethodPost, peer+"/cluster/v1/replicate", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	cl := *hc
	cl.Timeout = timeout
	resp, err := cl.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, nil
	}
	var ack ReplicateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, &ack, nil
}

// handleReplicate is the standby side of the stream — and the fence. A
// batch under a term older than this node's (or equal, while this node
// itself leads that term) is a deposed or forged leader writing: 409.
// A batch under a newer term deposes this node if it was leading.
func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading batch: "+err.Error())
		return
	}
	hdr, recs, err := decodeReplicateBatch(body)
	if err != nil {
		// Truncated or bit-flipped in flight: reject whole; the leader
		// resends from the unacknowledged watermark.
		httpError(w, http.StatusBadRequest, "bad batch: "+err.Error())
		return
	}
	n.mu.Lock()
	if hdr.LeaderEpoch < n.leaderEpoch || (n.lead != nil && hdr.LeaderEpoch == n.leaderEpoch) {
		cur := n.leaderEpoch
		n.mu.Unlock()
		n.metrics.onReplicationReject()
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": "stale leadership term: writes fenced", "term": cur,
		})
		return
	}
	if n.lead != nil {
		// A newer leader is speaking directly to us: deposed.
		n.stepDownLocked(claim{epoch: hdr.LeaderEpoch, leader: hdr.Leader}, "push from newer term")
	}
	sb := n.sb
	if hdr.LeaderEpoch > sb.leaderEpoch {
		sb.adopt(hdr.LeaderEpoch, hdr.Leader)
		n.leaderEpoch = hdr.LeaderEpoch
	}
	if sb.leader == "" {
		sb.leader = hdr.Leader
	}
	before := sb.applied
	sb.apply(recs)
	sb.lastPush = time.Now()
	resp := ReplicateResponse{LastSeq: sb.lastSeq, NeedSnapshot: !sb.synced}
	var payload *clusterState
	var epoch, seq uint64
	if sb.applied != before {
		payload, epoch, seq = sb.export(), sb.leaderEpoch, sb.lastSeq
	}
	n.mu.Unlock()

	if payload != nil {
		// Persist the mirror off-lock: it is the node's best restart
		// state, and failures only degrade cold-start freshness.
		if err := saveStandbyState(n.cfg.StateFile, payload, epoch, seq); err != nil {
			n.logf("dsasimd-ha: saving standby state: %v", err)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// Handler returns the node's HTTP surface: the public job API (served
// when leading, reverse-proxied to the leader when standing by), the
// worker lease protocol (leader only — standbys answer 503 so workers
// rotate), role-aware readiness, and the replication endpoint.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", n.public((*Coordinator).handleSubmit))
	mux.HandleFunc("GET /v1/jobs", n.public((*Coordinator).handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", n.public((*Coordinator).handleJob))
	mux.HandleFunc("GET /v1/jobs/{id}/events", n.public((*Coordinator).handleEvents))
	mux.HandleFunc("GET /metrics", n.handleMetrics)
	mux.HandleFunc("GET /healthz", n.handleHealth)
	mux.HandleFunc("GET /readyz", n.handleReady)

	mux.HandleFunc("POST /cluster/v1/join", n.workerEP((*Coordinator).handleJoin))
	mux.HandleFunc("POST /cluster/v1/heartbeat", n.workerEP((*Coordinator).handleHeartbeat))
	mux.HandleFunc("POST /cluster/v1/complete", n.workerEP((*Coordinator).handleComplete))
	mux.HandleFunc("POST /cluster/v1/progress", n.workerEP((*Coordinator).handleProgress))
	mux.HandleFunc("POST /cluster/v1/replicate", n.handleReplicate)
	return mux
}

// public serves a job-API handler from the live coordinator, or — on a
// standby — forwards to the known leader so clients that landed on the
// wrong node still get an answer.
func (n *Node) public(h func(*Coordinator, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if c := n.Leader(); c != nil {
			h(c, w, r)
			return
		}
		n.proxyToLeader(w, r)
	}
}

// workerEP serves a lease-protocol handler on the leader and refuses
// with 503 + role on a standby. 503 — not 409 — on purpose: 409 makes
// a worker self-fence (checkpoint, unwind, rejoin fresh), which would
// needlessly restart its jobs just because it polled the wrong node;
// 503 makes it rotate endpoints and carry on.
func (n *Node) workerEP(h func(*Coordinator, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if c := n.Leader(); c != nil {
			h(c, w, r)
			return
		}
		n.standbyRefuse(w)
	}
}

// proxyToLeader forwards one public request to the current leader,
// streaming (SSE flushes immediately) and loop-guarded: a request that
// already went through one standby is refused, not bounced again.
func (n *Node) proxyToLeader(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	target := ""
	if n.sb != nil {
		target = n.sb.leader
	}
	n.mu.Unlock()
	if target == "" || target == n.ha.Self || r.Header.Get(forwardedHeader) != "" {
		n.standbyRefuse(w)
		return
	}
	u, err := url.Parse(target)
	if err != nil {
		n.standbyRefuse(w)
		return
	}
	rp := httputil.NewSingleHostReverseProxy(u)
	rp.Transport = n.ha.Transport
	rp.FlushInterval = -1
	director := rp.Director
	rp.Director = func(req *http.Request) {
		director(req)
		req.Header.Set(forwardedHeader, n.ha.Self)
	}
	rp.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		n.standbyRefuse(w)
	}
	rp.ServeHTTP(w, r)
}

// standbyRefuse is the standby's answer on endpoints only a leader
// serves: 503 with the role header (and a leader hint when known), so
// callers rotate instead of treating it as a fence.
func (n *Node) standbyRefuse(w http.ResponseWriter) {
	n.mu.Lock()
	leader := ""
	if n.sb != nil {
		leader = n.sb.leader
	}
	n.mu.Unlock()
	w.Header().Set(roleHeader, "standby")
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"error": "standby: not leading", "leader": leader,
	})
}

// handleHealth is liveness only: a standby is every bit as alive as a
// leader. Readiness is where roles show.
func (n *Node) handleHealth(w http.ResponseWriter, r *http.Request) {
	if c := n.Leader(); c != nil {
		c.handleHealth(w, r)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady: a leader answers for the cluster (workers live?); a
// standby is never ready to take traffic — 503 with the role header
// and the leader's URL as the hint.
func (n *Node) handleReady(w http.ResponseWriter, r *http.Request) {
	if c := n.Leader(); c != nil {
		c.handleReady(w, r)
		return
	}
	n.mu.Lock()
	leader := ""
	if n.sb != nil {
		leader = n.sb.leader
	}
	n.mu.Unlock()
	w.Header().Set(roleHeader, "standby")
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"status": "unready", "reason": "standby", "leader": leader,
	})
}

func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, n.metricsText())
}

// metricsText renders the node's exposition: the coordinator's gauges
// with push-loop staleness when leading, the mirror's view when not.
func (n *Node) metricsText() string {
	n.mu.Lock()
	c := n.lead
	var g clusterGauges
	if c == nil {
		sb := n.sb
		pending := 0
		for _, id := range sb.order {
			if pj := sb.jobs[id]; pj.Status == server.StatusQueued && pj.Owner == "" {
				pending++
			}
		}
		g = clusterGauges{
			workersLive: len(sb.workers),
			jobsPending: pending,
			inflight:    map[string]int{},
			role:        0,
			replSeq:     sb.lastSeq,
			replLag:     time.Since(sb.lastPush).Seconds(),
		}
		n.mu.Unlock()
		return n.metrics.render(g)
	}
	var oldest time.Duration
	for _, at := range n.peerAck {
		if lag := time.Since(at); lag > oldest {
			oldest = lag
		}
	}
	n.mu.Unlock()
	g = c.gaugesSnapshot()
	g.replLag = oldest.Seconds()
	return n.metrics.render(g)
}

// claim is one leadership term on the shared directory.
type claim struct {
	epoch  uint64
	leader string
}

// claimBody is the claim file's JSON payload — a hint, not the truth:
// the term is authoritative from the *filename* (written atomically by
// O_EXCL create), so a reader racing the winner's body write sees an
// anonymous claim, never a wrong one.
type claimBody struct {
	Epoch  uint64 `json:"epoch"`
	Leader string `json:"leader"`
	At     string `json:"at"`
}

const claimPrefix = "claim.e"

func claimPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x", claimPrefix, epoch))
}

// tryClaim atomically claims leadership term epoch: O_EXCL creation
// means at most one node in the cluster ever wins a given term.
func tryClaim(dir string, epoch uint64, leader string) bool {
	f, err := os.OpenFile(claimPath(dir, epoch), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return false
	}
	_ = json.NewEncoder(f).Encode(claimBody{Epoch: epoch, Leader: leader, At: time.Now().UTC().Format(time.RFC3339Nano)})
	_ = f.Sync()
	_ = f.Close()
	return true
}

// readClaims returns the highest claim on dir (zero value when none).
func readClaims(dir string) claim {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return claim{}
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), claimPrefix) {
			names = append(names, e.Name())
		}
	}
	// Hex-padded names sort lexicographically by term.
	sort.Strings(names)
	for i := len(names) - 1; i >= 0; i-- {
		epoch, err := strconv.ParseUint(strings.TrimPrefix(names[i], claimPrefix), 16, 64)
		if err != nil {
			continue
		}
		best := claim{epoch: epoch}
		if b, err := os.ReadFile(filepath.Join(dir, names[i])); err == nil {
			var body claimBody
			if json.Unmarshal(b, &body) == nil {
				best.leader = body.Leader
			}
		}
		return best
	}
	return claim{}
}
