package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/server"
)

// longSource is the service tests' controllable-duration workload: a
// scalar loop retiring ~7n instructions whose 4 KiB-window digest
// depends on the whole execution history, so digest equality means
// two runs agree on the accumulator's entire orbit.
func longSource(n int) string {
	return fmt.Sprintf(`
        mov   r0, #0
        mov   r1, #%d
outer:  mov   r2, #65536
        mov   r4, #0
inner:  add   r0, r0, #1
        add   r5, r5, r0
        eor   r5, r5, r1
        str   r5, [r2], #4
        add   r4, r4, #1
        cmp   r4, #1024
        blt   inner
        cmp   r0, r1
        blt   outer
        halt
`, n)
}

// newTestCoordinator builds a coordinator plus its HTTP front end.
func newTestCoordinator(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	cfg.Logf = t.Logf
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		c.Close()
		ts.Close()
	})
	return c, ts
}

// startWorker runs a real in-process worker against the coordinator,
// closed (self-fencing) at test end. Register AFTER the coordinator so
// cleanup stops workers first.
func startWorker(t *testing.T, url, dir string, capacity int) *Worker {
	t.Helper()
	w := NewWorker(WorkerConfig{
		Coordinator: url,
		Capacity:    capacity,
		SnapshotDir: dir,
		Runner:      runner.Options{SnapshotEvery: 20_000, ProgressEvery: 10_000},
		Logf:        t.Logf,
	})
	done := make(chan struct{})
	go func() { w.Run(); close(done) }()
	t.Cleanup(func() {
		w.Close()
		<-done
	})
	return w
}

func submit(t *testing.T, ts *httptest.Server, spec server.JobSpec, wantCode int) *server.JobView {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var msg bytes.Buffer
		_, _ = msg.ReadFrom(resp.Body)
		t.Fatalf("POST /v1/jobs: code = %d, want %d (body %s)", resp.StatusCode, wantCode, msg.String())
	}
	if wantCode != http.StatusAccepted {
		return nil
	}
	var view server.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return &view
}

func getJob(t *testing.T, ts *httptest.Server, id string) server.JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: code = %d", id, resp.StatusCode)
	}
	var view server.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) server.JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := getJob(t, ts, id)
		if server.Terminal(v.Status) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s: timed out waiting for a terminal status (status %s)", id, v.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// referenceResult runs the spec directly on the runner — the
// single-process truth a cluster execution must reproduce bit for bit.
func referenceResult(t *testing.T, spec server.JobSpec) server.ResultJSON {
	t.Helper()
	job, err := spec.RunnerJob("ref")
	if err != nil {
		t.Fatal(err)
	}
	rep := runner.Run(context.Background(), []runner.Job{job}, runner.Options{Workers: 1})
	r := rep.Results[0]
	if r.Status != runner.StatusOK {
		t.Fatalf("reference run: %+v", r)
	}
	return server.ResultFromRunner(r)
}

// checkMatchesReference asserts the cluster result is bit-identical to
// the single-process reference: digest, ticks, and steps.
func checkMatchesReference(t *testing.T, v server.JobView, ref server.ResultJSON) {
	t.Helper()
	if v.Result == nil {
		t.Fatalf("job %s: no result", v.ID)
	}
	r := *v.Result
	if r.MemDigest != ref.MemDigest || r.Ticks != ref.Ticks || r.Steps != ref.Steps {
		t.Errorf("job %s diverged: digest %s ticks %d steps %d, want digest %s ticks %d steps %d",
			v.ID, r.MemDigest, r.Ticks, r.Steps, ref.MemDigest, ref.Ticks, ref.Steps)
	}
}

// fakeWorker drives the lease protocol over raw HTTP, so tests control
// exactly when it heartbeats, what it claims to run, and when it
// "dies" — the handle for crash, zombie, and fencing scenarios.
type fakeWorker struct {
	t       *testing.T
	url     string
	id      string
	session string
	seq     uint64
}

func joinFake(t *testing.T, url string, capacity int) *fakeWorker {
	t.Helper()
	f := &fakeWorker{t: t, url: url}
	var resp JoinResponse
	code := f.post("/cluster/v1/join", JoinRequest{Capacity: capacity}, &resp)
	if code != http.StatusOK || resp.Worker == "" {
		t.Fatalf("fake join: code %d, worker %q", code, resp.Worker)
	}
	if resp.Session == "" {
		t.Fatal("fake join: no session nonce")
	}
	f.id, f.session = resp.Worker, resp.Session
	return f
}

func (f *fakeWorker) post(path string, in, out any) int {
	f.t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		f.t.Fatal(err)
	}
	resp, err := http.Post(f.url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		f.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			f.t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

// heartbeat sends the next in-sequence renewal and requires 200.
func (f *fakeWorker) heartbeat(running ...RunningJob) HeartbeatResponse {
	f.t.Helper()
	f.seq++
	resp, code := f.heartbeatRaw(HeartbeatRequest{Worker: f.id, Session: f.session, Seq: f.seq, Running: running})
	if code != http.StatusOK {
		f.t.Fatalf("fake heartbeat: code %d", code)
	}
	return resp
}

// heartbeatRaw sends an arbitrary heartbeat — possibly a replay, a
// stale session, or a foreign identity — and reports the status code.
func (f *fakeWorker) heartbeatRaw(req HeartbeatRequest) (HeartbeatResponse, int) {
	f.t.Helper()
	var resp HeartbeatResponse
	code := f.post("/cluster/v1/heartbeat", req, &resp)
	return resp, code
}

func (f *fakeWorker) complete(job string, epoch uint64, res server.ResultJSON) int {
	f.t.Helper()
	return f.post("/cluster/v1/complete", CompleteRequest{Worker: f.id, Job: job, Epoch: epoch, Result: res}, nil)
}

func probe(t *testing.T, ts *httptest.Server, path string) (int, map[string]string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var body map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, body
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	_, _ = b.ReadFrom(resp.Body)
	return b.String()
}

// TestClusterEndToEnd: a coordinator with two real workers executes a
// batch of jobs to completion with results identical to single-process
// runs; readiness tracks worker liveness; the SSE stream delivers the
// terminal event.
func TestClusterEndToEnd(t *testing.T) {
	dir := t.TempDir()
	// Generous TTL: under -race on a small machine the interpreter loop
	// can starve the heartbeat goroutine for hundreds of milliseconds,
	// and a spurious lease lapse would only test robustness we exercise
	// deliberately elsewhere.
	_, ts := newTestCoordinator(t, Config{LeaseTTL: 3 * time.Second})

	// No workers yet: alive but not ready.
	if code, body := probe(t, ts, "/readyz"); code != http.StatusServiceUnavailable || body["reason"] != "no live workers" {
		t.Fatalf("readyz with no workers: code %d body %v", code, body)
	}
	if code, _ := probe(t, ts, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: code %d", code)
	}

	startWorker(t, ts.URL, dir, 2)
	startWorker(t, ts.URL, dir, 2)
	waitReady(t, ts, 5*time.Second)

	spec := server.JobSpec{Name: "e2e", Source: longSource(20_000)}
	ref := referenceResult(t, spec)
	var ids []string
	for i := 0; i < 4; i++ {
		ids = append(ids, submit(t, ts, spec, http.StatusAccepted).ID)
	}
	for _, id := range ids {
		v := waitTerminal(t, ts, id, 60*time.Second)
		if v.Status != "ok" {
			t.Fatalf("job %s: %+v", id, v)
		}
		checkMatchesReference(t, v, ref)
		if v.Epoch == 0 {
			t.Errorf("job %s: terminal view has epoch 0, want the assignment's fencing epoch", id)
		}
		if v.Owner != "" {
			t.Errorf("job %s: terminal view still owned by %q", id, v.Owner)
		}
	}

	// SSE after completion: the terminal event is replayed immediately.
	ev := readDoneEvent(t, ts, ids[0])
	if ev.Result == nil || ev.Result.MemDigest != ref.MemDigest {
		t.Errorf("SSE done event: %+v, want replayed result with reference digest", ev)
	}

	m := scrapeMetrics(t, ts)
	// Exactly-once is exact: 4 jobs, 4 ok completions, no matter how
	// many lease sessions it took. Live/granted counts are lower bounds
	// (a starved worker may legitimately re-fence and rejoin).
	if !strings.Contains(m, `dsasimd_cluster_jobs_completed_total{status="ok"} 4`) {
		t.Errorf("metrics: want exactly 4 ok completions, got:\n%s", grepLine(m, "jobs_completed"))
	}
	if v := metricValue(t, m, "dsasimd_cluster_workers_live"); v < 1 {
		t.Errorf("workers_live = %d, want >= 1", v)
	}
	if v := metricValue(t, m, "dsasimd_cluster_leases_granted_total"); v < 2 {
		t.Errorf("leases_granted_total = %d, want >= 2", v)
	}
}

// metricValue parses one unlabeled series' value from an exposition.
func metricValue(t *testing.T, m, name string) int64 {
	t.Helper()
	for _, l := range strings.Split(m, "\n") {
		var v int64
		if _, err := fmt.Sscanf(l, name+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s absent", name)
	return 0
}

func waitReady(t *testing.T, ts *httptest.Server, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if code, _ := probe(t, ts, "/readyz"); code == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// readDoneEvent reads the job's SSE stream until its "done" event.
func readDoneEvent(t *testing.T, ts *httptest.Server, id string) server.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev server.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		if ev.Type == "done" {
			return ev
		}
	}
	t.Fatalf("SSE stream ended without a done event: %v", sc.Err())
	return server.Event{}
}

// TestLeaseExpiryTakeover is the failure-detection story in-process: a
// worker checkpoints a job mid-run and dies (stops heartbeating); the
// coordinator expires its lease, requeues the job at a higher epoch,
// and a surviving worker resumes from the dead worker's checkpoint to
// the bit-identical single-process result.
func TestLeaseExpiryTakeover(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestCoordinator(t, Config{LeaseTTL: 1500 * time.Millisecond})

	// Reference first: it runs inline and must not eat into the fake
	// worker's lease.
	spec := server.JobSpec{Name: "takeover", Source: longSource(300_000)}
	ref := referenceResult(t, spec)
	f := joinFake(t, ts.URL, 1)
	id := submit(t, ts, spec, http.StatusAccepted).ID

	// The fake worker picks up its assignment...
	hb := f.heartbeat()
	if len(hb.Start) != 1 || hb.Start[0].Job != id || hb.Start[0].Epoch != 1 {
		t.Fatalf("fake heartbeat start = %+v, want [%s @ epoch 1]", hb.Start, id)
	}
	a := hb.Start[0]

	// ...runs it partway with checkpointing under its own identity and
	// epoch, leaves a mid-run checkpoint behind (as its periodic
	// cadence would), and dies without another heartbeat.
	var pool *runner.Pool
	pool = runner.NewPool(runner.Options{
		Workers: 1, SnapshotDir: dir, SnapshotOwner: f.id,
		SnapshotEvery: 5_000, ProgressEvery: 2_000,
		OnProgress: func(p runner.Progress) {
			if p.Steps > 100_000 {
				pool.Revoke(id)
			}
		},
	})
	job, err := a.Spec.RunnerJob(a.Job)
	if err != nil {
		t.Fatal(err)
	}
	job.Epoch = a.Epoch
	r := pool.Do(context.Background(), job)
	pool.Close()
	if r.Cause != runner.CauseRevoked {
		t.Fatalf("fake worker's run: %+v, want revoked with checkpoint kept", r)
	}

	// A healthy worker joins; the expiry loop declares the fake dead
	// and hands the job over.
	startWorker(t, ts.URL, dir, 1)
	v := waitTerminal(t, ts, id, 60*time.Second)
	if v.Status != "ok" {
		t.Fatalf("job after takeover: %+v", v)
	}
	if v.Epoch < 2 {
		t.Errorf("takeover epoch = %d, want >= 2 (reassignment must bump the fencing token)", v.Epoch)
	}
	if v.Result.ResumedFromStep == 0 {
		t.Error("takeover restarted from zero, want resume from the dead worker's checkpoint")
	}
	checkMatchesReference(t, v, ref)

	m := scrapeMetrics(t, ts)
	if n := metricValue(t, m, "dsasimd_cluster_leases_expired_total"); n < 1 {
		t.Errorf("leases_expired_total = %d, want >= 1", n)
	}
	if n := metricValue(t, m, "dsasimd_cluster_takeovers_total"); n < 1 {
		t.Errorf("takeovers_total = %d, want >= 1", n)
	}

	// The dead worker's heartbeat after expiry is fenced with 409.
	f.seq++
	if _, code := f.heartbeatRaw(HeartbeatRequest{Worker: f.id, Session: f.session, Seq: f.seq}); code != http.StatusConflict {
		t.Errorf("expired worker's heartbeat: code %d, want 409", code)
	}
}

// TestZombieFencing is the double-takeover race: a worker that lost
// its lease (but doesn't know it yet) must not be able to affect the
// job in any way — its completion and progress writes bounce off the
// epoch fence with 409, completion stays exactly-once, and its next
// heartbeat fences it for good.
func TestZombieFencing(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestCoordinator(t, Config{LeaseTTL: 1500 * time.Millisecond})

	spec := server.JobSpec{Name: "fenced", Source: longSource(20_000)}
	ref := referenceResult(t, spec)
	zombie := joinFake(t, ts.URL, 1)
	id := submit(t, ts, spec, http.StatusAccepted).ID
	hb := zombie.heartbeat()
	if len(hb.Start) != 1 {
		t.Fatalf("zombie never got the assignment: %+v", hb)
	}
	zombieEpoch := hb.Start[0].Epoch

	// The zombie sits on the assignment without heartbeating; a real
	// worker takes over and finishes the job.
	startWorker(t, ts.URL, dir, 1)
	v := waitTerminal(t, ts, id, 60*time.Second)
	if v.Status != "ok" {
		t.Fatalf("job: %+v", v)
	}
	checkMatchesReference(t, v, ref)

	// The zombie wakes up and tries to submit a conflicting result
	// under its stale epoch: fenced, and the stored result unchanged.
	forged := server.ResultJSON{Job: id, Status: "failed", Cause: "zombie"}
	if code := zombie.complete(id, zombieEpoch, forged); code != http.StatusConflict {
		t.Errorf("zombie completion: code %d, want 409", code)
	}
	if code := zombie.post("/cluster/v1/progress",
		ProgressRequest{Worker: zombie.id, Job: id, Epoch: zombieEpoch, Progress: server.ProgressJSON{Job: id, Steps: 1}}, nil); code != http.StatusConflict {
		t.Errorf("zombie progress: code %d, want 409", code)
	}
	// Exactly-once holds even for the *winning* lease: the job is
	// terminal, so any further completion is fenced too.
	if code := zombie.complete(id, v.Epoch, *v.Result); code != http.StatusConflict {
		t.Errorf("duplicate completion: code %d, want 409", code)
	}
	if after := getJob(t, ts, id); after.Result.MemDigest != ref.MemDigest || after.Status != "ok" {
		t.Errorf("zombie writes corrupted the stored result: %+v", after.Result)
	}

	zombie.seq++
	if _, code := zombie.heartbeatRaw(HeartbeatRequest{Worker: zombie.id, Session: zombie.session, Seq: zombie.seq}); code != http.StatusConflict {
		t.Errorf("zombie heartbeat: code %d, want 409", code)
	}
	if n := metricValue(t, scrapeMetrics(t, ts), "dsasimd_cluster_fenced_writes_total"); n < 3 {
		t.Errorf("fenced_writes_total = %d, want >= 3", n)
	}
}

// TestCoordinatorRestartRecovery: a restarted coordinator recovers the
// job table, the lease table, and — critically — the epoch counter
// from its CRC-validated state file: live workers keep their leases
// and epochs, stale epochs stay fenced, and new assignments continue
// the monotonic epoch sequence instead of reissuing old tokens.
func TestCoordinatorRestartRecovery(t *testing.T) {
	stateFile := filepath.Join(t.TempDir(), "cluster.state")
	cfg := Config{LeaseTTL: time.Second, StateFile: stateFile, Logf: t.Logf}

	c1, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(c1.Handler())
	f := joinFake(t, ts1.URL, 2)
	spec := server.JobSpec{Name: "restart", Source: longSource(20_000)}
	id := submit(t, ts1, spec, http.StatusAccepted).ID
	hb := f.heartbeat()
	if len(hb.Start) != 1 || hb.Start[0].Epoch != 1 {
		t.Fatalf("assignment before restart: %+v", hb.Start)
	}
	// Worker reports it running, then the coordinator goes down.
	f.heartbeat(RunningJob{Job: id, Epoch: 1})
	c1.Close()
	ts1.Close()

	c2, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(c2.Handler())
	t.Cleanup(func() { c2.Close(); ts2.Close() })
	f.url = ts2.URL

	// The lease — identity AND session nonce — survived: the heartbeat
	// is accepted, and the job is still ours at the same epoch (no
	// spurious start/stop).
	hb = f.heartbeat(RunningJob{Job: id, Epoch: 1})
	if len(hb.Stop) != 0 || len(hb.Start) != 0 {
		t.Fatalf("post-restart heartbeat: %+v, want lease continuity", hb)
	}
	v := getJob(t, ts2, id)
	if v.Owner != f.id || v.Epoch != 1 {
		t.Fatalf("restored job: owner %q epoch %d, want %q epoch 1", v.Owner, v.Epoch, f.id)
	}

	// A stale (never-issued or pre-restart) epoch is still fenced.
	if code := f.complete(id, 99, server.ResultJSON{Job: id, Status: "ok"}); code != http.StatusConflict {
		t.Errorf("stale-epoch completion after restart: code %d, want 409", code)
	}

	// The epoch counter continued: the next assignment's token is
	// strictly above every pre-restart one.
	id2 := submit(t, ts2, spec, http.StatusAccepted).ID
	v2 := getJob(t, ts2, id2)
	if v2.Epoch != 2 {
		t.Errorf("post-restart assignment epoch = %d, want 2 (monotonic across restart)", v2.Epoch)
	}

	// The real completion under the surviving lease is accepted,
	// exactly once.
	res := server.ResultJSON{Job: id, Status: "ok", MemDigest: "feedface00000000"}
	if code := f.complete(id, 1, res); code != http.StatusOK {
		t.Errorf("completion under surviving lease: code %d, want 200", code)
	}
	if code := f.complete(id, 1, res); code != http.StatusConflict {
		t.Errorf("second completion: code %d, want 409", code)
	}
}

// TestHeartbeatReplayFencing pins the session-nonce and sequence-number
// checks: a delayed or duplicated heartbeat — in particular one
// replayed from a fenced predecessor session — must be rejected with
// 409 and must never renew anyone's lease.
func TestHeartbeatReplayFencing(t *testing.T) {
	_, ts := newTestCoordinator(t, Config{LeaseTTL: 600 * time.Millisecond})

	f := joinFake(t, ts.URL, 1)
	f.heartbeat()

	// An exact duplicate of the last heartbeat (same session, same seq
	// — a retransmitted datagram) is rejected...
	if _, code := f.heartbeatRaw(HeartbeatRequest{Worker: f.id, Session: f.session, Seq: f.seq}); code != http.StatusConflict {
		t.Errorf("duplicated heartbeat: code %d, want 409", code)
	}
	// ...without harming the live session: the next in-sequence
	// renewal still lands.
	f.heartbeat()

	// Replayed heartbeats must not keep a silent worker alive: with
	// only replays of an already-accepted seq arriving for well past
	// the TTL, the lease expires on schedule...
	lastReal := f.seq
	deadline := time.Now().Add(3 * 600 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, code := f.heartbeatRaw(HeartbeatRequest{Worker: f.id, Session: f.session, Seq: lastReal}); code != http.StatusConflict {
			t.Fatal("replayed heartbeat was accepted")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// ...so even a fresh, in-sequence renewal now finds no lease.
	if _, code := f.heartbeatRaw(HeartbeatRequest{Worker: f.id, Session: f.session, Seq: lastReal + 1}); code != http.StatusConflict {
		t.Fatal("lease survived on replayed heartbeats alone")
	}

	// A successor takes over the cluster; the predecessor's delayed
	// duplicate — even aimed at the successor's worker ID — carries the
	// dead session's nonce and cannot extend the successor's lease.
	s := joinFake(t, ts.URL, 1)
	if _, code := f.heartbeatRaw(HeartbeatRequest{Worker: s.id, Session: f.session, Seq: 1}); code != http.StatusConflict {
		t.Errorf("predecessor-session heartbeat against successor lease: code %d, want 409", code)
	}
	if _, code := f.heartbeatRaw(HeartbeatRequest{Worker: f.id, Session: f.session, Seq: f.seq + 1}); code != http.StatusConflict {
		t.Errorf("fenced predecessor's own heartbeat: code %d, want 409", code)
	}
	s.heartbeat() // the successor is unaffected

	if n := metricValue(t, scrapeMetrics(t, ts), "dsasimd_cluster_heartbeats_rejected_total"); n < 3 {
		t.Errorf("heartbeats_rejected_total = %d, want >= 3", n)
	}
}

// submitIdem posts a spec under an Idempotency-Key and returns the
// decoded view plus whether the response was marked as a replay.
func submitIdem(t *testing.T, url string, spec server.JobSpec, key string) (server.JobView, bool) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs (key %q): code %d", key, resp.StatusCode)
	}
	var view server.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view, resp.Header.Get("Idempotency-Replayed") == "true"
}

// TestSubmitIdempotency: resubmitting under the same Idempotency-Key
// replays the original job instead of creating a twin — including
// across a coordinator restart, via the CRC state file — while
// distinct keys create distinct jobs.
func TestSubmitIdempotency(t *testing.T) {
	stateFile := filepath.Join(t.TempDir(), "cluster.state")
	cfg := Config{LeaseTTL: time.Second, StateFile: stateFile, Logf: t.Logf}

	c1, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(c1.Handler())
	spec := server.JobSpec{Name: "idem", Source: longSource(10_000)}

	first, replayed := submitIdem(t, ts1.URL, spec, "key-alpha")
	if replayed {
		t.Fatal("first submission marked as a replay")
	}
	second, replayed := submitIdem(t, ts1.URL, spec, "key-alpha")
	if second.ID != first.ID {
		t.Fatalf("same key produced two jobs: %s and %s", first.ID, second.ID)
	}
	if !replayed {
		t.Error("replayed submission not marked with Idempotency-Replayed")
	}
	other, replayed := submitIdem(t, ts1.URL, spec, "key-beta")
	if other.ID == first.ID || replayed {
		t.Fatalf("distinct key did not create a distinct job: %+v (replayed %v)", other, replayed)
	}
	// A keyless submission is never deduplicated.
	if v := submit(t, ts1, spec, http.StatusAccepted); v.ID == first.ID {
		t.Fatal("keyless submission replayed a keyed job")
	}

	c1.Close()
	ts1.Close()

	// The dedup table survives the restart: a retry of the original
	// request — the client never saw its response land, say — still
	// converges on the job it already created.
	c2, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(c2.Handler())
	t.Cleanup(func() { c2.Close(); ts2.Close() })
	again, replayed := submitIdem(t, ts2.URL, spec, "key-alpha")
	if again.ID != first.ID || !replayed {
		t.Fatalf("post-restart resubmission: id %s replayed %v, want %s true", again.ID, replayed, first.ID)
	}
	if n := metricValue(t, scrapeMetrics(t, ts2), "dsasimd_cluster_jobs_deduped_total"); n < 1 {
		t.Errorf("jobs_deduped_total = %d, want >= 1", n)
	}
}

func grepLine(s, needle string) string {
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, needle) && !strings.HasPrefix(l, "#") {
			return l
		}
	}
	return "(absent)"
}

// TestClusterMetricsNames pins the cluster metric names as API: panels
// and alerts depend on them, so renames must be deliberate.
func TestClusterMetricsNames(t *testing.T) {
	_, ts := newTestCoordinator(t, Config{LeaseTTL: time.Second})
	m := scrapeMetrics(t, ts)
	for _, name := range []string{
		"dsasimd_cluster_workers_live",
		"dsasimd_cluster_jobs_pending",
		"dsasimd_cluster_worker_inflight",
		"dsasimd_cluster_leases_granted_total",
		"dsasimd_cluster_leases_expired_total",
		"dsasimd_cluster_leases_revoked_total",
		"dsasimd_cluster_takeovers_total",
		"dsasimd_cluster_fenced_writes_total",
		"dsasimd_cluster_heartbeats_rejected_total",
		"dsasimd_cluster_jobs_submitted_total",
		"dsasimd_cluster_jobs_rejected_total",
		"dsasimd_cluster_jobs_deduped_total",
		"dsasimd_cluster_rpc_retries_total",
		"dsasimd_cluster_rpc_timeouts_total",
		"dsasimd_cluster_role",
		"dsasimd_cluster_failovers_total",
		"dsasimd_cluster_replication_seq",
		"dsasimd_cluster_replication_lag_seconds",
		"dsasimd_cluster_replication_rejected_total",
		`dsasimd_cluster_jobs_completed_total{status="ok"}`,
		`dsasimd_cluster_jobs_completed_total{status="degraded"}`,
		`dsasimd_cluster_jobs_completed_total{status="failed"}`,
	} {
		if !strings.Contains(m, name) {
			t.Errorf("metrics missing %q", name)
		}
	}
}
