package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// clusterMetrics is the coordinator's Prometheus registry, hand-rolled
// like the server's: counters under one mutex (lease-protocol cadence,
// not per step), gauges sampled at scrape time.
type clusterMetrics struct {
	mu            sync.Mutex
	submitted     uint64
	rejected      uint64
	completed     map[string]uint64 // terminal status → count
	leasesGranted uint64
	leasesExpired uint64
	leasesRevoked uint64
	takeovers     uint64
	fencedWrites  uint64
	hbRejected    uint64
	deduped       uint64
	rpcRetries    uint64
	rpcTimeouts   uint64
	// failovers counts this node's promotions from standby to leader;
	// replRejected counts replication pushes fenced with 409 (a deposed
	// or forged leader term). Both live here — not on the coordinator —
	// because they must survive the node's role flips.
	failovers    uint64
	replRejected uint64
}

func newClusterMetrics() *clusterMetrics {
	return &clusterMetrics{
		completed: map[string]uint64{"ok": 0, "degraded": 0, "failed": 0},
	}
}

func (m *clusterMetrics) inc(field *uint64) {
	m.mu.Lock()
	*field++
	m.mu.Unlock()
}

func (m *clusterMetrics) onSubmit()      { m.inc(&m.submitted) }
func (m *clusterMetrics) onReject()      { m.inc(&m.rejected) }
func (m *clusterMetrics) onLeaseGrant()  { m.inc(&m.leasesGranted) }
func (m *clusterMetrics) onLeaseExpire() { m.inc(&m.leasesExpired) }
func (m *clusterMetrics) onFencedWrite() { m.inc(&m.fencedWrites) }

func (m *clusterMetrics) onHeartbeatReject() { m.inc(&m.hbRejected) }
func (m *clusterMetrics) onDedup()           { m.inc(&m.deduped) }

func (m *clusterMetrics) onFailover()          { m.inc(&m.failovers) }
func (m *clusterMetrics) onReplicationReject() { m.inc(&m.replRejected) }

// onRPCReport folds one accepted heartbeat's client-side fault deltas
// into the registry (workers have no scrape endpoint of their own).
func (m *clusterMetrics) onRPCReport(retries, timeouts uint64) {
	if retries == 0 && timeouts == 0 {
		return
	}
	m.mu.Lock()
	m.rpcRetries += retries
	m.rpcTimeouts += timeouts
	m.mu.Unlock()
}

func (m *clusterMetrics) onRevoke(n int) {
	m.mu.Lock()
	m.leasesRevoked += uint64(n)
	m.mu.Unlock()
}

func (m *clusterMetrics) onTakeover(n int) {
	m.mu.Lock()
	m.takeovers += uint64(n)
	m.mu.Unlock()
}

func (m *clusterMetrics) onDone(status string) {
	m.mu.Lock()
	m.completed[status]++
	m.mu.Unlock()
}

// clusterGauges are point-in-time values sampled at scrape.
type clusterGauges struct {
	workersLive int
	jobsPending int
	// inflight maps live worker ID → leased job count.
	inflight map[string]int
	// role is 1 on the leader (a solo coordinator is its own leader),
	// 0 on a warm standby.
	role int
	// replSeq is the replication watermark: the leader's last appended
	// delta sequence, or a standby's last applied one.
	replSeq uint64
	// replLag is staleness in seconds: on a standby, time since the
	// leader's last accepted push; on a leader, its most lagging
	// standby's time since last acknowledgment (0 with no peers).
	replLag float64
}

// render writes the registry in Prometheus text exposition format,
// deterministically ordered.
func (m *clusterMetrics) render(g clusterGauges) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("dsasimd_cluster_role", "Coordinator role: 1 leader, 0 warm standby.", int64(g.role))
	gauge("dsasimd_cluster_workers_live", "Workers holding a current lease.", int64(g.workersLive))
	gauge("dsasimd_cluster_jobs_pending", "Jobs waiting for a worker assignment.", int64(g.jobsPending))
	gauge("dsasimd_cluster_replication_seq", "Replication watermark: last delta appended (leader) or applied (standby).", int64(g.replSeq))
	fmt.Fprintf(&b, "# HELP dsasimd_cluster_replication_lag_seconds Replication staleness: seconds since the last accepted push (standby) or the most lagging standby's last ack (leader).\n"+
		"# TYPE dsasimd_cluster_replication_lag_seconds gauge\ndsasimd_cluster_replication_lag_seconds %g\n", g.replLag)

	fmt.Fprintf(&b, "# HELP dsasimd_cluster_worker_inflight Jobs currently leased, per live worker.\n# TYPE dsasimd_cluster_worker_inflight gauge\n")
	workers := make([]string, 0, len(g.inflight))
	for w := range g.inflight {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	for _, w := range workers {
		fmt.Fprintf(&b, "dsasimd_cluster_worker_inflight{worker=%q} %d\n", w, g.inflight[w])
	}

	counter("dsasimd_cluster_leases_granted_total", "Worker leases granted at join.", m.leasesGranted)
	counter("dsasimd_cluster_leases_expired_total", "Worker leases that lapsed without renewal.", m.leasesExpired)
	counter("dsasimd_cluster_leases_revoked_total", "Job leases withdrawn from workers via heartbeat stop lists.", m.leasesRevoked)
	counter("dsasimd_cluster_takeovers_total", "Jobs reassigned after their owner's lease expired.", m.takeovers)
	counter("dsasimd_cluster_fenced_writes_total", "Stale-epoch completions and progress reports rejected with 409.", m.fencedWrites)
	counter("dsasimd_cluster_heartbeats_rejected_total", "Heartbeats rejected with 409: unknown worker, stale session nonce, or replayed sequence number.", m.hbRejected)
	counter("dsasimd_cluster_jobs_submitted_total", "Jobs accepted into the cluster job table.", m.submitted)
	counter("dsasimd_cluster_jobs_rejected_total", "Submissions refused (table full or draining).", m.rejected)
	counter("dsasimd_cluster_jobs_deduped_total", "Submissions replayed from an earlier job via Idempotency-Key.", m.deduped)
	counter("dsasimd_cluster_rpc_retries_total", "Failed worker RPC attempts (any cause), reported via heartbeats.", m.rpcRetries)
	counter("dsasimd_cluster_rpc_timeouts_total", "Worker RPC attempts that hit their context deadline, reported via heartbeats.", m.rpcTimeouts)
	counter("dsasimd_cluster_failovers_total", "Promotions of this node from standby to leader.", m.failovers)
	counter("dsasimd_cluster_replication_rejected_total", "Replication pushes fenced with 409: a deposed or forged leadership term.", m.replRejected)

	fmt.Fprintf(&b, "# HELP dsasimd_cluster_jobs_completed_total Jobs finished, by terminal status.\n# TYPE dsasimd_cluster_jobs_completed_total counter\n")
	statuses := make([]string, 0, len(m.completed))
	for s := range m.completed {
		statuses = append(statuses, s)
	}
	sort.Strings(statuses)
	for _, s := range statuses {
		fmt.Fprintf(&b, "dsasimd_cluster_jobs_completed_total{status=%q} %d\n", s, m.completed[s])
	}
	return b.String()
}
