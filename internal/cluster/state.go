package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/server"
	"repro/internal/snapshot"
)

// stateSection names the one section of the coordinator's state file —
// a snapshot-container file (CRC-validated, written atomically) whose
// JSON payload holds the job table, the lease table, and the counters.
// The epoch counter is the load-bearing part: fencing only works if a
// restarted coordinator never re-issues an epoch a zombie still holds.
const stateSection = "dsasimd.cluster"

// haSection is the extra section a standby's state file carries: which
// leadership term the mirror belongs to and its applied replication
// watermark, encoded with the snapshot codec.
const haSection = "dsasimd.cluster.ha"

type persistedJob struct {
	ID      string             `json:"id"`
	Spec    server.JobSpec     `json:"spec"`
	Status  string             `json:"status"`
	Owner   string             `json:"owner,omitempty"`
	Epoch   uint64             `json:"epoch,omitempty"`
	Resume  bool               `json:"resume,omitempty"`
	IdemKey string             `json:"idem_key,omitempty"`
	Queued  string             `json:"queued,omitempty"`
	Result  *server.ResultJSON `json:"result,omitempty"`
}

type persistedWorker struct {
	ID       string `json:"id"`
	Capacity int    `json:"capacity"`
	// Session is the lease's nonce: it must survive a coordinator
	// restart so a still-live worker's next heartbeat renews its lease
	// instead of being rejected as a replay. It is replicated for the
	// same reason: a worker must survive a *failover* without rejoining.
	Session string `json:"session,omitempty"`
}

type clusterState struct {
	NextJob    uint64            `json:"next_job"`
	NextWorker uint64            `json:"next_worker"`
	NextEpoch  uint64            `json:"next_epoch"`
	Jobs       []persistedJob    `json:"jobs"`
	Workers    []persistedWorker `json:"workers,omitempty"`
}

// persistJobLocked renders one job as its persisted (and replicated)
// form. The caller must hold c.mu.
func (c *Coordinator) persistJobLocked(j *cjob) persistedJob {
	return persistedJob{
		ID:      j.id,
		Spec:    j.spec,
		Status:  j.status,
		Owner:   j.owner,
		Epoch:   j.epoch,
		Resume:  j.resume,
		IdemKey: j.idemKey,
		Queued:  fmtTime(j.queued),
		Result:  j.result,
	}
}

// exportStateLocked renders the coordinator's whole persisted state —
// the payload of both the state file and replication snapshot records.
// The caller must hold c.mu.
func (c *Coordinator) exportStateLocked() clusterState {
	st := clusterState{NextJob: c.nextJob, NextWorker: c.nextWorker, NextEpoch: c.nextEpoch}
	for _, jid := range c.order {
		st.Jobs = append(st.Jobs, c.persistJobLocked(c.jobs[jid]))
	}
	for _, we := range c.workers {
		st.Workers = append(st.Workers, persistedWorker{ID: we.id, Capacity: we.capacity, Session: we.session})
	}
	return st
}

// saveStateLocked writes the coordinator's tables crash-consistently.
// The caller must hold c.mu. Failures are logged, never fatal.
func (c *Coordinator) saveStateLocked() {
	if c.cfg.StateFile == "" {
		return
	}
	st := c.exportStateLocked()
	payload, err := json.Marshal(st)
	if err != nil {
		c.cfg.Logf("dsasimd: saving cluster state: %v", err)
		return
	}
	w := snapshot.Writer{Epoch: c.leaderEpoch}
	w.Add(stateSection, payload)
	if err := w.WriteFile(c.cfg.StateFile); err != nil {
		c.cfg.Logf("dsasimd: saving cluster state: %v", err)
	}
}

// loadStateFile reads and decodes a coordinator state file. A missing
// file returns (nil, nil) — a fresh start. A corrupt one is renamed
// aside and reported.
func loadStateFile(path string) (*clusterState, error) {
	rd, err := snapshot.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		quarantine := path + ".bad"
		_ = os.Rename(path, quarantine)
		return nil, fmt.Errorf("cluster state %s unreadable (%w); moved to %s, starting fresh", path, err, quarantine)
	}
	payload, err := rd.Section(stateSection)
	if err != nil {
		return nil, fmt.Errorf("cluster state %s: %w", path, err)
	}
	var st clusterState
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, fmt.Errorf("cluster state %s: %w", path, err)
	}
	return &st, nil
}

// restore loads a previous coordinator's tables from the state file.
func (c *Coordinator) restore() error {
	if c.cfg.StateFile == "" {
		return nil
	}
	st, err := loadStateFile(c.cfg.StateFile)
	if err != nil || st == nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.adoptStateLocked(st)
	c.cfg.Logf("dsasimd: restored %d job(s), %d worker lease(s) from %s (epoch counter %d)",
		len(st.Jobs), len(st.Workers), c.cfg.StateFile, st.NextEpoch)
	return nil
}

// adoptStateLocked installs a persisted state wholesale — from the
// state file on restart, or from the replicated mirror on a standby's
// promotion. Restored workers get a fresh grace deadline: if they are
// still alive their next heartbeat renews the same lease (their
// in-flight epochs stay valid); if they died during the outage, the
// grace TTL expires and takeover proceeds normally. The caller must
// hold c.mu.
func (c *Coordinator) adoptStateLocked(st *clusterState) {
	c.nextJob, c.nextWorker, c.nextEpoch = st.NextJob, st.NextWorker, st.NextEpoch
	grace := time.Now().Add(c.cfg.LeaseTTL)
	for _, pw := range st.Workers {
		// The sequence watermark is deliberately NOT carried over: the
		// state is not written per heartbeat, so a restored watermark
		// would be stale anyway. Accepting one replayed renewal inside
		// the grace window is harmless — replay rejection matters for
		// *fenced* sessions, whose nonces are gone from the table
		// entirely.
		c.workers[pw.ID] = &workerEntry{
			id:       pw.ID,
			capacity: pw.Capacity,
			deadline: grace,
			session:  pw.Session,
			jobs:     map[string]struct{}{},
		}
	}
	for i := range st.Jobs {
		pj := st.Jobs[i]
		j := &cjob{
			id:      pj.ID,
			spec:    pj.Spec,
			status:  pj.Status,
			owner:   pj.Owner,
			epoch:   pj.Epoch,
			resume:  pj.Resume,
			idemKey: pj.IdemKey,
			result:  pj.Result,
			events:  server.NewBroadcaster(),
		}
		if t, terr := time.Parse(time.RFC3339Nano, pj.Queued); terr == nil {
			j.queued = t
		}
		c.jobs[j.id] = j
		c.order = append(c.order, j.id)
		if j.idemKey != "" {
			c.idem[j.idemKey] = j.id
		}
		if server.Terminal(j.status) {
			if j.result != nil {
				j.events.Publish(server.Event{Type: "done", Job: j.id, Status: j.status, Result: j.result})
			}
			continue
		}
		if j.owner != "" {
			if we := c.workers[j.owner]; we != nil {
				// The lease survives the restart; if the worker still
				// runs the job, its next heartbeat simply confirms it.
				we.jobs[j.id] = struct{}{}
				j.resume = true
			} else {
				// Owner not in the persisted lease table (crashed before
				// the last save): requeue for takeover.
				j.owner = ""
				j.resume = true
				j.status = server.StatusQueued
			}
		}
	}
}

// saveStandbyState persists a standby's mirror next to where the same
// node would keep its leader state, tagged with the term and watermark
// it reflects — the best available starting point if the whole cluster
// restarts cold.
func saveStandbyState(path string, st *clusterState, leaderEpoch, lastSeq uint64) error {
	if path == "" {
		return nil
	}
	payload, err := json.Marshal(st)
	if err != nil {
		return err
	}
	var e snapshot.Enc
	e.U64(leaderEpoch)
	e.U64(lastSeq)
	w := snapshot.Writer{Epoch: leaderEpoch}
	w.Add(stateSection, payload)
	w.Add(haSection, e.Bytes())
	return w.WriteFile(path)
}
