package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/server"
)

// haTestNode is one replicated coordinator under test: the Node, its
// real TCP listener (peers and workers dial it by URL), and a kill
// switch that takes both down the way a crash does.
type haTestNode struct {
	n   *Node
	url string
	hs  *http.Server
}

func (h *haTestNode) kill() {
	h.hs.Close()
	h.n.Close()
}

// startHANode boots one HA coordinator on ln. Listeners are reserved
// before any node exists because peer URLs go into every node's
// config up front — the replication stream is push-based, so a leader
// only ever reaches standbys it was told about.
func startHANode(t *testing.T, ln net.Listener, claimDir, stateFile string, peers []string, standby bool, ttl time.Duration) *haTestNode {
	t.Helper()
	self := "http://" + ln.Addr().String()
	n, err := NewNode(
		Config{LeaseTTL: ttl, StateFile: stateFile, Logf: t.Logf},
		HAConfig{Self: self, Peers: peers, ClaimDir: claimDir, Standby: standby},
	)
	if err != nil {
		t.Fatalf("NewNode(%s): %v", self, err)
	}
	hs := &http.Server{Handler: n.Handler()}
	go hs.Serve(ln)
	h := &haTestNode{n: n, url: self, hs: hs}
	t.Cleanup(h.kill)
	return h
}

func haListen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// haPair boots a leader plus a warm standby sharing one claim
// directory — what the README's 2-coordinator quickstart deploys.
func haPair(t *testing.T, ttl time.Duration) (leader, standby *haTestNode) {
	t.Helper()
	dir := t.TempDir()
	claims := filepath.Join(dir, "ha")
	lnA, lnB := haListen(t), haListen(t)
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()

	a := startHANode(t, lnA, claims, filepath.Join(dir, "a.dsnp"), []string{urlB}, false, ttl)
	b := startHANode(t, lnB, claims, filepath.Join(dir, "b.dsnp"), []string{urlA}, true, ttl)
	if got := a.n.Role(); got != "leader" {
		t.Fatalf("first node role = %s, want leader", got)
	}
	if got := b.n.Role(); got != "standby" {
		t.Fatalf("second node role = %s, want standby", got)
	}
	return a, b
}

func waitFor(t *testing.T, timeout time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(15 * time.Millisecond)
	}
}

func scrapeURL(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET %s/metrics: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s/metrics: %v", url, err)
	}
	return string(b)
}

// probeURL fetches one endpoint and returns the code, the role header,
// and the decoded JSON body.
func probeURL(t *testing.T, url, path string) (int, string, map[string]string) {
	t.Helper()
	resp, err := http.Get(url + path)
	if err != nil {
		t.Fatalf("GET %s%s: %v", url, path, err)
	}
	defer resp.Body.Close()
	var body map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, resp.Header.Get(roleHeader), body
}

// postJob submits a keyless job straight at one node's URL.
func postJob(t *testing.T, url string, spec server.JobSpec) server.JobView {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s/v1/jobs: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST %s/v1/jobs: code %d", url, resp.StatusCode)
	}
	var view server.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

// TestHAFailoverContinuity is the tentpole scenario in-process: a
// 2-coordinator pair with a real worker loses its leader mid-job. The
// standby promotes from its replicated mirror, the worker and the
// failover-aware client rotate to it, the interrupted job completes
// bit-identically to the single-process reference (exactly once —
// resumed from its checkpoint, never restarted blind), a replayed
// idempotent submission still deduplicates after the failover, new
// assignments carry the new term in their composed fencing epochs, and
// the deposed leader's term can never write again.
func TestHAFailoverContinuity(t *testing.T) {
	ttl := time.Second
	a, b := haPair(t, ttl)
	snaps := t.TempDir()

	spec := server.JobSpec{Name: "failover", Source: longSource(300_000)}
	ref := referenceResult(t, spec)

	startWorker(t, a.url+","+b.url, snaps, 1)
	cl := NewClient(a.url+","+b.url, nil, t.Logf)

	v, replayed, err := cl.Submit(spec, "failover-key")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if replayed {
		t.Fatal("first submission marked as a replay")
	}

	// Let the leader die only once the job is demonstrably mid-run.
	waitFor(t, 30*time.Second, "job running", func() bool {
		j, err := cl.Job(v.ID)
		return err == nil && j.Status == server.StatusRunning
	})
	a.kill()

	waitFor(t, 20*time.Second, "standby promotion", func() bool {
		return b.n.Role() == "leader"
	})

	// The idempotency index survived the failover: the retried
	// submission replays the existing job instead of minting a twin.
	again, replayed, err := cl.Submit(spec, "failover-key")
	if err != nil {
		t.Fatalf("resubmit after failover: %v", err)
	}
	if again.ID != v.ID || !replayed {
		t.Fatalf("post-failover resubmission: id %s replayed %v, want %s true", again.ID, replayed, v.ID)
	}

	var final server.JobView
	waitFor(t, 120*time.Second, "job terminal after failover", func() bool {
		j, err := cl.Job(v.ID)
		if err != nil || !server.Terminal(j.Status) {
			return false
		}
		final = *j
		return true
	})
	if final.Status != "ok" {
		t.Fatalf("job after failover: %+v", final)
	}
	checkMatchesReference(t, final, ref)

	// A fresh assignment under the new leader carries the composed
	// epoch: term 2 in the high half, so it compares strictly above
	// every epoch the deposed leader ever minted.
	v2, _, err := cl.Submit(server.JobSpec{Name: "post-failover", Source: longSource(20_000)}, "")
	if err != nil {
		t.Fatalf("submit after failover: %v", err)
	}
	var final2 server.JobView
	waitFor(t, 60*time.Second, "post-failover job terminal", func() bool {
		j, err := cl.Job(v2.ID)
		if err != nil || !server.Terminal(j.Status) {
			return false
		}
		final2 = *j
		return true
	})
	if final2.Status != "ok" {
		t.Fatalf("post-failover job: %+v", final2)
	}
	if term := final2.Epoch >> 32; term != 2 {
		t.Errorf("post-failover assignment epoch %#x carries term %d, want 2", final2.Epoch, term)
	}

	// The deposed leader's era is fenced: a replication write under its
	// term bounces off the new leader with 409.
	code, err := PostReplicate(nil, b.url, 1, a.url)
	if err != nil {
		t.Fatalf("stale replicate: %v", err)
	}
	if code != http.StatusConflict {
		t.Errorf("deposed leader's replication write: code %d, want 409", code)
	}

	m := scrapeURL(t, b.url)
	if got := metricValue(t, m, "dsasimd_cluster_role"); got != 1 {
		t.Errorf("new leader's role gauge = %d, want 1", got)
	}
	if got := metricValue(t, m, "dsasimd_cluster_failovers_total"); got < 1 {
		t.Errorf("failovers_total = %d, want >= 1", got)
	}
	if got := metricValue(t, m, "dsasimd_cluster_replication_rejected_total"); got < 1 {
		t.Errorf("replication_rejected_total = %d, want >= 1", got)
	}
}

// TestHARoleEndpoints pins the role surface: a standby is alive but
// never ready, labels itself via X-Dsasimd-Role, refuses the worker
// lease protocol with 503 (rotate — not 409, which would self-fence a
// healthy worker), and reverse-proxies the public job API to the
// leader so a client that landed on the wrong node still gets service.
func TestHARoleEndpoints(t *testing.T) {
	a, b := haPair(t, 5*time.Second) // generous TTL: no takeover mid-test

	if code, role, body := probeURL(t, b.url, "/readyz"); code != http.StatusServiceUnavailable || role != "standby" || body["leader"] != a.url {
		t.Errorf("standby readyz: code %d role %q leader %q, want 503/standby/%s", code, role, body["leader"], a.url)
	}
	if code, _, _ := probeURL(t, b.url, "/healthz"); code != http.StatusOK {
		t.Errorf("standby healthz: code %d, want 200 (liveness is role-blind)", code)
	}
	if _, role, _ := probeURL(t, a.url, "/readyz"); role != "leader" {
		t.Errorf("leader readyz role header = %q, want leader", role)
	}

	// The lease protocol on a standby: 503 + role, so workers rotate.
	resp, err := http.Post(b.url+"/cluster/v1/join", "application/json", nil)
	if err != nil {
		t.Fatalf("POST join to standby: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get(roleHeader) != "standby" {
		t.Errorf("standby join: code %d role %q, want 503 standby", resp.StatusCode, resp.Header.Get(roleHeader))
	}

	// Public API through the standby: proxied to the leader.
	v, replayed := submitIdem(t, b.url, server.JobSpec{Name: "proxied", Source: longSource(10_000)}, "proxy-key")
	if replayed {
		t.Fatal("proxied first submission marked as a replay")
	}
	direct, replayed := submitIdem(t, a.url, server.JobSpec{Name: "proxied", Source: longSource(10_000)}, "proxy-key")
	if direct.ID != v.ID || !replayed {
		t.Errorf("proxied submission did not land on the leader: %s vs %s (replayed %v)", v.ID, direct.ID, replayed)
	}
	cl := NewClient(b.url, nil, t.Logf)
	if _, err := cl.Job(v.ID); err != nil {
		t.Errorf("GET proxied job via standby: %v", err)
	}
}

// TestHADeposition drives the leader's deposition paths — a higher
// claim on the shared directory, and a successor term's fence — and
// checks a deposed term can never write again: the cluster converges
// on a single newer leader and 409s the old term's replication pushes.
func TestHADeposition(t *testing.T) {
	ttl := 400 * time.Millisecond
	a, b := haPair(t, ttl)

	// Forged stale writes are fenced on both roles before anything
	// fails over: term 0 is below everyone, and the leader's own term
	// presented by anyone else is a forgery too.
	if code, err := PostReplicate(nil, b.url, 0, "http://imposter.invalid"); err != nil || code != http.StatusConflict {
		t.Errorf("stale replicate to standby: code %d err %v, want 409", code, err)
	}
	if code, err := PostReplicate(nil, a.url, 1, "http://imposter.invalid"); err != nil || code != http.StatusConflict {
		t.Errorf("equal-term replicate to the leader itself: code %d err %v, want 409", code, err)
	}

	// A higher claim appears on the shared directory (an operator's
	// forced failover, say): the leader must notice and step down even
	// though its network is fine.
	if !tryClaim(a.n.ha.ClaimDir, 5, "http://imposter.invalid:1") {
		t.Fatal("forged claim lost the O_EXCL race in an empty term")
	}
	waitFor(t, 10*time.Second, "leader deposed by higher claim", func() bool {
		return a.n.Role() == "standby"
	})

	// The named leader never speaks, so a real node times out on it and
	// takes over at a yet-higher term.
	var winner *haTestNode
	waitFor(t, 15*time.Second, "a successor leader", func() bool {
		switch {
		case a.n.Role() == "leader":
			winner = a
		case b.n.Role() == "leader":
			winner = b
		}
		return winner != nil
	})
	if code, err := PostReplicate(nil, winner.url, 5, "http://imposter.invalid:1"); err != nil || code != http.StatusConflict {
		t.Errorf("imposter-term replicate after takeover: code %d err %v, want 409", code, err)
	}
	if got := metricValue(t, scrapeURL(t, winner.url), "dsasimd_cluster_replication_rejected_total"); got < 1 {
		t.Errorf("replication_rejected_total = %d, want >= 1", got)
	}
}

// TestHAWorkerEndpointRotation: a worker given a dead endpoint first in
// its -join list rotates onto the live coordinator under its normal
// retry budget and serves jobs — no error, no restart.
func TestHAWorkerEndpointRotation(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestCoordinator(t, Config{LeaseTTL: 3 * time.Second})

	// 127.0.0.1:1 refuses instantly; the worker's first join rotates.
	startWorker(t, "http://127.0.0.1:1,"+ts.URL, dir, 1)
	waitReady(t, ts, 10*time.Second)

	spec := server.JobSpec{Name: "rotated", Source: longSource(20_000)}
	ref := referenceResult(t, spec)
	id := submit(t, ts, spec, http.StatusAccepted).ID
	v := waitTerminal(t, ts, id, 60*time.Second)
	if v.Status != "ok" {
		t.Fatalf("job via rotated worker: %+v", v)
	}
	checkMatchesReference(t, v, ref)
}

// TestHAStandbyCatchUp: a standby that joins (well, boots) after the
// leader already accumulated state converges via a snapshot record —
// its mirror reaches the leader's replication watermark — and a
// promotion from that mirror serves every job the leader knew.
func TestHAStandbyCatchUp(t *testing.T) {
	ttl := time.Second
	a, b := haPairStaggered(t, ttl, func(leaderURL string) []server.JobView {
		// Backlog accrues while the standby does not exist yet.
		views := make([]server.JobView, 0, 8)
		for i := 0; i < 8; i++ {
			views = append(views, postJob(t, leaderURL, server.JobSpec{Name: "backlog", Source: longSource(10_000)}))
		}
		return views
	})
	backlog := a.pre

	// The late standby catches up: its mirror's watermark reaches the
	// leader's stream position.
	waitFor(t, 10*time.Second, "standby catch-up", func() bool {
		return metricValue(t, scrapeURL(t, b.url), "dsasimd_cluster_replication_seq") >= 1 &&
			metricValue(t, scrapeURL(t, b.url), "dsasimd_cluster_jobs_pending") == int64(len(backlog))
	})

	// Promote it and check nothing was lost in transit.
	a.kill()
	waitFor(t, 20*time.Second, "standby promotion", func() bool {
		return b.n.Role() == "leader"
	})
	cl := NewClient(b.url, nil, t.Logf)
	for _, v := range backlog {
		got, err := cl.Job(v.ID)
		if err != nil {
			t.Fatalf("job %s after promotion: %v", v.ID, err)
		}
		if got.Status != server.StatusQueued {
			t.Errorf("job %s after promotion: status %s, want queued", v.ID, got.Status)
		}
	}
}

// staggeredPair is haPairStaggered's leader handle plus whatever the
// between-boots callback produced.
type staggeredPair struct {
	*haTestNode
	pre []server.JobView
}

// haPairStaggered boots the leader, runs pre against it, and only then
// boots the standby — the late-joiner topology. Both nodes know each
// other's URL from birth (listeners are reserved up front).
func haPairStaggered(t *testing.T, ttl time.Duration, pre func(leaderURL string) []server.JobView) (*staggeredPair, *haTestNode) {
	t.Helper()
	dir := t.TempDir()
	claims := filepath.Join(dir, "ha")
	lnA, lnB := haListen(t), haListen(t)
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()

	a := startHANode(t, lnA, claims, filepath.Join(dir, "a.dsnp"), []string{urlB}, false, ttl)
	if got := a.n.Role(); got != "leader" {
		t.Fatalf("first node role = %s, want leader", got)
	}
	views := pre(a.url)
	b := startHANode(t, lnB, claims, filepath.Join(dir, "b.dsnp"), []string{urlA}, true, ttl)
	return &staggeredPair{haTestNode: a, pre: views}, b
}
