package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringVnodes is how many virtual nodes each worker contributes to the
// hash ring — enough to spread load evenly across a handful of
// workers without making ring construction expensive.
const ringVnodes = 64

// ring is a consistent-hash ring over worker IDs. Jobs map to workers
// by walking clockwise from the job's hash point, so adding or losing
// one worker only moves the jobs that hashed to it — a takeover
// reassigns the dead worker's jobs without reshuffling everyone
// else's.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash   uint64
	worker string
}

// newRing builds a ring over the given worker IDs. Construction cost
// is O(n·vnodes·log) and the coordinator rebuilds it per assignment
// pass; at the scales dsasimd runs (a handful of workers) that is
// cheaper than keeping an incrementally-updated structure correct.
func newRing(workers []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(workers)*ringVnodes)}
	for _, w := range workers {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", w, v)), worker: w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// owner walks the ring from key's hash point to the first worker that
// eligible() accepts (capacity filtering), wrapping once. It returns
// "" when no worker qualifies. Each distinct worker is tried at most
// once even though it owns many points.
func (r *ring) owner(key string, eligible func(worker string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	tried := map[string]struct{}{}
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, ok := tried[p.worker]; ok {
			continue
		}
		tried[p.worker] = struct{}{}
		if eligible(p.worker) {
			return p.worker
		}
	}
	return ""
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
