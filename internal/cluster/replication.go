package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/snapshot"
)

// Replication stream.
//
// The leader tees every state mutation — job admitted/assigned/
// finished, worker joined/expired, counters bumped — into a bounded
// in-memory delta log and pushes the unacknowledged suffix to every
// standby on the heartbeat cadence (an empty push doubles as the
// leader's liveness signal). Each record carries a sequence number; a
// standby applies a batch only if it extends its last applied sequence
// contiguously, and answers with that watermark so the leader knows
// where to resume. A standby that is behind the log's bounded tail —
// or freshly adopted a new leader — asks for a full snapshot record
// instead, which replaces its mirror wholesale. The wire format is the
// snapshot package's CRC-framed record stream: a batch that was
// truncated or bit-flipped in flight is rejected whole, never applied
// in part.

// Record kinds. Every record updates the standby's mirror of the
// coordinator's persisted state.
const (
	recJob       = "job"        // upsert one job (admission, assignment, completion)
	recWorker    = "worker"     // upsert one worker lease (join, restore)
	recWorkerDel = "worker_del" // drop one worker lease (expiry)
	recCounters  = "counters"   // the three monotonic counters
	recSnapshot  = "snapshot"   // full state replacing the mirror (catch-up)
)

// repCounters mirrors the coordinator's monotonic counters. NextEpoch
// is the per-term assignment counter — the low half of composed
// fencing epochs.
type repCounters struct {
	NextJob    uint64 `json:"next_job"`
	NextWorker uint64 `json:"next_worker"`
	NextEpoch  uint64 `json:"next_epoch"`
}

// repRecord is one replication stream entry.
type repRecord struct {
	Seq       uint64           `json:"seq"`
	Kind      string           `json:"kind"`
	Job       *persistedJob    `json:"job,omitempty"`
	Worker    *persistedWorker `json:"worker,omitempty"`
	WorkerDel string           `json:"worker_del,omitempty"`
	Counters  *repCounters     `json:"counters,omitempty"`
	State     *clusterState    `json:"state,omitempty"`
}

// replicateHeader is the first record of every batch: which leadership
// term is speaking. A receiver that knows a higher term answers 409 —
// the fence that stops a deposed leader's writes.
type replicateHeader struct {
	LeaderEpoch uint64 `json:"leader_epoch"`
	Leader      string `json:"leader"`
}

// ReplicateResponse acknowledges a batch.
type ReplicateResponse struct {
	// LastSeq is the standby's applied watermark; the leader resumes
	// the stream from LastSeq+1.
	LastSeq uint64 `json:"last_seq"`
	// NeedSnapshot asks the leader to send a full snapshot record next:
	// the standby has no consistent mirror of this term yet, or the
	// stream gapped past the leader's bounded tail.
	NeedSnapshot bool `json:"need_snapshot,omitempty"`
}

// replTailMax bounds the leader's in-memory delta log. A standby that
// falls further behind than this catches up via a snapshot record
// instead of deltas.
const replTailMax = 512

// replicator is the leader's delta log: sequence numbers, a bounded
// tail, and a wake channel the push loops select on so a mutation
// reaches the standbys at once instead of waiting out a heartbeat.
type replicator struct {
	mu   sync.Mutex
	seq  uint64
	tail []repRecord

	notify chan struct{}
}

func newReplicator() *replicator {
	return &replicator{notify: make(chan struct{}, 1)}
}

// append stamps rec with the next sequence number and wakes the push
// loops. Callers hold the coordinator's mutex, which is what makes the
// log's order the mutation order.
func (r *replicator) append(rec repRecord) {
	r.mu.Lock()
	r.seq++
	rec.Seq = r.seq
	r.tail = append(r.tail, rec)
	if len(r.tail) > replTailMax {
		// Drop the oldest half in one copy; laggards re-sync by snapshot.
		keep := r.tail[len(r.tail)-replTailMax/2:]
		r.tail = append(make([]repRecord, 0, replTailMax), keep...)
	}
	r.mu.Unlock()
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

// last returns the highest sequence number issued.
func (r *replicator) last() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// since returns the records after watermark acked, or ok=false when
// that suffix has fallen off the bounded tail (send a snapshot). An
// up-to-date follower gets (nil, true): the empty heartbeat batch.
func (r *replicator) since(acked uint64) ([]repRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if acked >= r.seq {
		return nil, true
	}
	if len(r.tail) == 0 || r.tail[0].Seq > acked+1 {
		return nil, false
	}
	idx := int(acked + 1 - r.tail[0].Seq)
	out := make([]repRecord, len(r.tail)-idx)
	copy(out, r.tail[idx:])
	return out, true
}

// wake is the channel append signals on.
func (r *replicator) wake() <-chan struct{} { return r.notify }

// encodeReplicateBatch frames a header plus records as a CRC-checked
// record stream.
func encodeReplicateBatch(h replicateHeader, recs []repRecord) ([]byte, error) {
	hb, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	b := snapshot.AppendRecord(nil, hb)
	for i := range recs {
		rb, err := json.Marshal(&recs[i])
		if err != nil {
			return nil, err
		}
		b = snapshot.AppendRecord(b, rb)
	}
	return b, nil
}

// decodeReplicateBatch validates and decodes one batch body.
func decodeReplicateBatch(b []byte) (replicateHeader, []repRecord, error) {
	var h replicateHeader
	frames, err := snapshot.SplitRecords(b)
	if err != nil {
		return h, nil, err
	}
	if len(frames) == 0 {
		return h, nil, fmt.Errorf("%w: batch without header record", snapshot.ErrCorrupt)
	}
	if err := json.Unmarshal(frames[0], &h); err != nil {
		return h, nil, fmt.Errorf("%w: batch header: %v", snapshot.ErrCorrupt, err)
	}
	recs := make([]repRecord, len(frames)-1)
	for i, f := range frames[1:] {
		if err := json.Unmarshal(f, &recs[i]); err != nil {
			return h, nil, fmt.Errorf("%w: record %d: %v", snapshot.ErrCorrupt, i, err)
		}
	}
	return h, recs, nil
}

// PostReplicate sends one empty replication batch (a leader liveness
// push) claiming leadership term leaderEpoch to a coordinator at base.
// Its main consumers are the HA tests: a batch under a superseded term
// must come back 409 — the fence that proves a deposed leader cannot
// write past a failover.
func PostReplicate(hc *http.Client, base string, leaderEpoch uint64, leader string) (int, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	body, err := encodeReplicateBatch(replicateHeader{LeaderEpoch: leaderEpoch, Leader: leader}, nil)
	if err != nil {
		return 0, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), rpcTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/cluster/v1/replicate", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// standby is a node's warm mirror of the leader's persisted state,
// maintained by applying the replication stream. Guarded by the node's
// mutex.
type standby struct {
	// leaderEpoch/leader identify the term being followed. leader may
	// be empty briefly (term learned from a claim file whose body was
	// not readable yet); the first push fills it in.
	leaderEpoch uint64
	leader      string
	// lastSeq is the applied watermark; synced reports whether the
	// mirror is consistent for this term (a snapshot record arrived, or
	// the term started from one).
	lastSeq uint64
	synced  bool
	// applied counts records folded into the mirror since this node
	// became a standby — the "is this mirror worth promoting" signal.
	applied uint64
	// lastPush is when the leader last proved liveness here; threshold
	// is this node's randomized takeover patience (jittered so rival
	// standbys don't race every failover).
	lastPush  time.Time
	threshold time.Duration

	jobs     map[string]*persistedJob
	order    []string
	workers  map[string]*persistedWorker
	counters repCounters
}

func newStandby(leaderEpoch uint64, leader string, ttl time.Duration) *standby {
	return &standby{
		leaderEpoch: leaderEpoch,
		leader:      leader,
		lastPush:    time.Now(),
		threshold:   ttl + fullJitter(ttl),
		jobs:        map[string]*persistedJob{},
		workers:     map[string]*persistedWorker{},
	}
}

// adopt resets the mirror onto a new leadership term.
func (sb *standby) adopt(leaderEpoch uint64, leader string) {
	sb.leaderEpoch = leaderEpoch
	if leader != "" {
		sb.leader = leader
	}
	sb.lastSeq, sb.synced, sb.applied = 0, false, 0
	sb.jobs = map[string]*persistedJob{}
	sb.order = nil
	sb.workers = map[string]*persistedWorker{}
	sb.counters = repCounters{}
	sb.lastPush = time.Now()
}

// install replaces the mirror with a full snapshot record.
func (sb *standby) install(st *clusterState, seq uint64) {
	sb.jobs = map[string]*persistedJob{}
	sb.order = nil
	sb.workers = map[string]*persistedWorker{}
	for i := range st.Jobs {
		sb.upsertJob(&st.Jobs[i])
	}
	for i := range st.Workers {
		pw := st.Workers[i]
		sb.workers[pw.ID] = &pw
	}
	sb.counters = repCounters{NextJob: st.NextJob, NextWorker: st.NextWorker, NextEpoch: st.NextEpoch}
	sb.lastSeq = seq
	sb.synced = true
	sb.applied++
}

func (sb *standby) upsertJob(pj *persistedJob) {
	cp := *pj
	if _, ok := sb.jobs[cp.ID]; !ok {
		sb.order = append(sb.order, cp.ID)
	}
	sb.jobs[cp.ID] = &cp
}

// apply folds one decoded batch into the mirror. Records must extend
// lastSeq contiguously; duplicates are skipped, a gap stops the batch
// (the response's watermark makes the leader resend or snapshot).
func (sb *standby) apply(recs []repRecord) {
	for i := range recs {
		rec := &recs[i]
		if rec.Kind == recSnapshot {
			if rec.State != nil {
				sb.install(rec.State, rec.Seq)
			}
			continue
		}
		if rec.Seq <= sb.lastSeq {
			continue // duplicate delivery
		}
		if rec.Seq != sb.lastSeq+1 || !sb.synced {
			return // gap, or deltas before any snapshot: wait for catch-up
		}
		switch rec.Kind {
		case recJob:
			if rec.Job != nil {
				sb.upsertJob(rec.Job)
			}
		case recWorker:
			if rec.Worker != nil {
				cp := *rec.Worker
				sb.workers[cp.ID] = &cp
			}
		case recWorkerDel:
			delete(sb.workers, rec.WorkerDel)
		case recCounters:
			if rec.Counters != nil {
				sb.counters = *rec.Counters
			}
		}
		sb.lastSeq = rec.Seq
		sb.applied++
	}
}

// export renders the mirror as a clusterState a promoted coordinator
// can adopt.
func (sb *standby) export() *clusterState {
	st := &clusterState{
		NextJob:    sb.counters.NextJob,
		NextWorker: sb.counters.NextWorker,
		NextEpoch:  sb.counters.NextEpoch,
	}
	for _, id := range sb.order {
		st.Jobs = append(st.Jobs, *sb.jobs[id])
	}
	for _, pw := range sb.workers {
		st.Workers = append(st.Workers, *pw)
	}
	return st
}
