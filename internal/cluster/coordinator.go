package cluster

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// Config parameterizes the coordinator.
type Config struct {
	// LeaseTTL is how long a worker lease lives without a heartbeat
	// renewal (0 = DefaultLeaseTTL). Workers learn it at join and
	// heartbeat at a third of it.
	LeaseTTL time.Duration
	// MaxJobs bounds the non-terminal job table (0 = DefaultMaxJobs).
	// A full table refuses submissions with 429 + Retry-After.
	MaxJobs int
	// RetryAfter is the backpressure hint base on 429 responses
	// (0 = server.DefaultRetryAfter); the advertised value is jittered.
	RetryAfter time.Duration
	// StateFile persists the job table, the lease table, and — load
	// bearing for fencing — the epoch counter across restarts. Empty
	// disables persistence.
	StateFile string
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)

	// The fields below are in-package seams the HA node threads through
	// when it runs a coordinator as the leader of a replicated set.
	// Solo mode leaves them zero.

	// metrics, when non-nil, is a shared registry: counters like
	// failovers must survive the node's role flips, so the node owns
	// one registry across every coordinator it promotes.
	metrics *clusterMetrics
	// leaderEpoch is the leadership term. Non-zero, it occupies the
	// high 32 bits of every assignment epoch this coordinator mints, so
	// a newer leader's assignments fence above everything any deposed
	// leader ever issued. Zero (solo mode) leaves assignment epochs as
	// the raw counter, bit-compatible with single-coordinator operation.
	leaderEpoch uint64
	// preload, when non-nil, replaces the state-file restore: the
	// replicated mirror a promoted standby adopts.
	preload *clusterState
	// repl, when non-nil, receives a delta record for every state
	// mutation — the feed the leader pushes to its standbys.
	repl *replicator
}

// Coordinator defaults.
const (
	DefaultLeaseTTL = 5 * time.Second
	DefaultMaxJobs  = 256
)

// cjob is one job's record in the coordinator's table. Guarded by
// Coordinator.mu; events has its own lock.
type cjob struct {
	id     string
	spec   server.JobSpec
	status string
	// owner/epoch are the current lease: which worker may write this
	// job's results, and the fencing token those writes must carry.
	// owner "" means unassigned (epoch then remembers the *last*
	// assignment, so reassignment always bumps past it).
	owner string
	epoch uint64
	// resume marks a requeued job (takeover or coordinator restart):
	// its next owner restores from the highest-epoch checkpoint.
	resume bool
	// idemKey, when set, is the Idempotency-Key the job was submitted
	// under: a later submission with the same key replays this job
	// instead of creating a twin.
	idemKey  string
	queued   time.Time
	started  time.Time
	finished time.Time
	progress *server.ProgressJSON
	result   *server.ResultJSON
	events   *server.Broadcaster
}

// workerEntry is one live worker's lease.
type workerEntry struct {
	id       string
	capacity int
	deadline time.Time
	// session is the nonce minted at join. A heartbeat renews this
	// lease only if it presents the nonce: a delayed duplicate from a
	// fenced predecessor that happened to reuse the ID cannot.
	session string
	// lastSeq is the highest heartbeat sequence number accepted this
	// session; replays (seq <= lastSeq) are rejected with 409.
	lastSeq uint64
	// jobs is the set of job IDs currently leased to this worker.
	jobs map[string]struct{}
}

// newSession mints an unguessable session nonce.
func newSession() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("cluster: reading session entropy: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// Coordinator owns the cluster's job table and lease table, serves the
// public job API (same shapes as the standalone daemon), and runs the
// lease protocol against worker processes. Failure detection is the
// expiry loop: a worker that misses its lease TTL is declared dead and
// its jobs are reassigned at higher epochs.
type Coordinator struct {
	cfg      Config
	metrics  *clusterMetrics
	stopCh   chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
	draining atomic.Bool

	// leaderEpoch/repl mirror Config: the leadership term composed into
	// assignment epochs, and the replication log fed on every mutation.
	leaderEpoch uint64
	repl        *replicator

	mu      sync.Mutex
	jobs    map[string]*cjob
	order   []string
	workers map[string]*workerEntry
	// idem maps Idempotency-Key → job ID for replaying duplicate
	// submissions. Persisted with the jobs (and replicated), so the
	// dedup survives a coordinator restart and a failover.
	idem map[string]string
	// nextEpoch is the fencing-token counter: every assignment gets
	// epoch stampEpochLocked() — ++nextEpoch composed under the
	// leadership term — globally monotonic across jobs, workers, and
	// (via the state file) coordinator restarts.
	nextJob, nextWorker, nextEpoch uint64
}

// NewCoordinator builds the coordinator, restores its tables from
// cfg.StateFile, and starts the expiry/assignment loop.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = DefaultMaxJobs
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = server.DefaultRetryAfter
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	metrics := cfg.metrics
	if metrics == nil {
		metrics = newClusterMetrics()
	}
	c := &Coordinator{
		cfg:         cfg,
		metrics:     metrics,
		leaderEpoch: cfg.leaderEpoch,
		repl:        cfg.repl,
		stopCh:      make(chan struct{}),
		jobs:        map[string]*cjob{},
		workers:     map[string]*workerEntry{},
		idem:        map[string]string{},
	}
	if cfg.preload != nil {
		// A promoted standby adopts its replicated mirror instead of
		// the state file — and persists it at once, so the file matches
		// the term it now leads.
		c.mu.Lock()
		c.adoptStateLocked(cfg.preload)
		c.saveStateLocked()
		c.mu.Unlock()
	} else if err := c.restore(); err != nil {
		// A bad state file is quarantined, not fatal — same policy as
		// the standalone daemon.
		cfg.Logf("dsasimd: %v", err)
	}

	// The expiry loop must notice a lapsed lease well before a whole
	// TTL passes again, but not burn a core on tiny test TTLs.
	tick := cfg.LeaseTTL / 4
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	c.wg.Add(1)
	go c.loop(tick)
	return c, nil
}

// loop is the failure detector: every tick it expires lapsed leases,
// requeues their jobs, and assigns pending work.
func (c *Coordinator) loop(tick time.Duration) {
	defer c.wg.Done()
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			c.mu.Lock()
			c.expireLocked(time.Now())
			c.assignLocked()
			c.mu.Unlock()
		}
	}
}

// expireLocked declares workers with lapsed leases dead and requeues
// their non-terminal jobs for takeover.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, w := range c.workers {
		if !now.After(w.deadline) {
			continue
		}
		delete(c.workers, id)
		c.repWorkerDelLocked(id)
		c.metrics.onLeaseExpire()
		released := 0
		for jid := range w.jobs {
			j := c.jobs[jid]
			if j == nil || server.Terminal(j.status) || j.owner != id {
				continue
			}
			j.owner = ""
			j.resume = true
			j.status = server.StatusQueued
			c.repJobLocked(j)
			released++
		}
		c.metrics.onTakeover(released)
		c.cfg.Logf("dsasimd: worker %s lease expired, %d job(s) requeued for takeover", id, released)
		c.saveStateLocked()
	}
}

// assignLocked hands every unassigned queued job to a worker with
// spare capacity, chosen by consistent hashing on the job ID, each
// assignment under a freshly bumped fencing epoch. Jobs that find no
// eligible worker stay pending for the next pass.
func (c *Coordinator) assignLocked() {
	if len(c.workers) == 0 {
		return
	}
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	r := newRing(ids)
	changed := false
	for _, jid := range c.order {
		j := c.jobs[jid]
		if j.status != server.StatusQueued || j.owner != "" {
			continue
		}
		w := r.owner(jid, func(wid string) bool {
			we := c.workers[wid]
			return len(we.jobs) < we.capacity
		})
		if w == "" {
			break // every worker is at capacity; later jobs can't do better
		}
		j.owner = w
		j.epoch = c.stampEpochLocked()
		c.workers[w].jobs[jid] = struct{}{}
		c.repJobLocked(j)
		changed = true
	}
	if changed {
		c.repCountersLocked()
		c.saveStateLocked()
	}
}

// stampEpochLocked mints the next assignment fencing epoch. Solo mode
// (leaderEpoch 0) issues the raw counter — bit-compatible with
// single-coordinator operation. Under HA the leadership term occupies
// the high 32 bits: every assignment minted by a newer leader compares
// strictly above every epoch any deposed leader ever issued, whatever
// their counters did, which is what keeps checkpoint preference
// (highest epoch ≤ the assignment's) and 409 write fencing correct
// across failovers.
func (c *Coordinator) stampEpochLocked() uint64 {
	c.nextEpoch++
	return c.leaderEpoch<<32 | c.nextEpoch
}

// repJobLocked / repWorkerLocked / repWorkerDelLocked / repCountersLocked
// tee one mutation into the replication log (no-ops without one). The
// caller must hold c.mu — that ordering is what makes the log replay
// deterministic.
func (c *Coordinator) repJobLocked(j *cjob) {
	if c.repl == nil {
		return
	}
	pj := c.persistJobLocked(j)
	c.repl.append(repRecord{Kind: recJob, Job: &pj})
}

func (c *Coordinator) repWorkerLocked(we *workerEntry) {
	if c.repl == nil {
		return
	}
	c.repl.append(repRecord{Kind: recWorker, Worker: &persistedWorker{ID: we.id, Capacity: we.capacity, Session: we.session}})
}

func (c *Coordinator) repWorkerDelLocked(id string) {
	if c.repl == nil {
		return
	}
	c.repl.append(repRecord{Kind: recWorkerDel, WorkerDel: id})
}

func (c *Coordinator) repCountersLocked() {
	if c.repl == nil {
		return
	}
	c.repl.append(repRecord{Kind: recCounters, Counters: &repCounters{NextJob: c.nextJob, NextWorker: c.nextWorker, NextEpoch: c.nextEpoch}})
}

// replicaSnapshot renders a full-state catch-up record, consistent
// with the log: appends happen under c.mu, so reading the sequence
// here pins exactly which deltas the snapshot subsumes.
func (c *Coordinator) replicaSnapshot() repRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.exportStateLocked()
	var seq uint64
	if c.repl != nil {
		seq = c.repl.last()
	}
	return repRecord{Seq: seq, Kind: recSnapshot, State: &st}
}

// Submit admits a job into the cluster table. Admission mirrors the
// standalone daemon: 400 invalid, 503 draining, 429 table full. A
// non-empty idemKey that matches an earlier submission replays that
// job (deduped=true) instead of creating a twin — checked before the
// draining and table-full refusals, so a client retrying after an
// ambiguous success (response lost on the wire) always converges on
// the job it already created, even if the table filled up meanwhile.
func (c *Coordinator) Submit(spec server.JobSpec, idemKey string) (view *server.JobView, deduped bool, err error) {
	c.mu.Lock()
	if idemKey != "" {
		if jid, ok := c.idem[idemKey]; ok {
			v := c.viewLocked(c.jobs[jid])
			c.mu.Unlock()
			c.metrics.onDedup()
			return &v, true, nil
		}
	}
	if verr := spec.Validate(); verr != nil {
		c.mu.Unlock()
		return nil, false, &admissionError{code: http.StatusBadRequest, msg: verr.Error()}
	}
	if c.draining.Load() {
		c.mu.Unlock()
		c.metrics.onReject()
		return nil, false, &admissionError{code: http.StatusServiceUnavailable, msg: "draining"}
	}
	open := 0
	for _, jid := range c.order {
		if !server.Terminal(c.jobs[jid].status) {
			open++
		}
	}
	if open >= c.cfg.MaxJobs {
		c.mu.Unlock()
		c.metrics.onReject()
		return nil, false, &admissionError{
			code:       http.StatusTooManyRequests,
			msg:        fmt.Sprintf("job table full (%d open jobs)", open),
			retryAfter: c.cfg.RetryAfter,
		}
	}
	c.nextJob++
	j := &cjob{
		id:      fmt.Sprintf("j%06d", c.nextJob),
		spec:    spec,
		status:  server.StatusQueued,
		idemKey: idemKey,
		queued:  time.Now(),
		events:  server.NewBroadcaster(),
	}
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	if idemKey != "" {
		c.idem[idemKey] = j.id
	}
	c.assignLocked()
	// Replicate the admission even when no worker could take it yet
	// (assignLocked only records jobs it assigned). The upsert is
	// idempotent on the standby, so the duplicate is harmless.
	c.repJobLocked(j)
	c.repCountersLocked()
	c.saveStateLocked()
	v := c.viewLocked(j)
	c.mu.Unlock()
	c.metrics.onSubmit()
	return &v, false, nil
}

// Job returns one job's current view.
func (c *Coordinator) Job(id string) (*server.JobView, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, false
	}
	v := c.viewLocked(j)
	return &v, true
}

// Jobs lists every job in submission order.
func (c *Coordinator) Jobs() []server.JobView {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]server.JobView, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.viewLocked(c.jobs[id]))
	}
	return out
}

func (c *Coordinator) viewLocked(j *cjob) server.JobView {
	return server.JobView{
		ID:       j.id,
		Status:   j.status,
		Spec:     j.spec,
		Queued:   fmtTime(j.queued),
		Started:  fmtTime(j.started),
		Finished: fmtTime(j.finished),
		Progress: j.progress,
		Result:   j.result,
		Owner:    j.owner,
		Epoch:    j.epoch,
	}
}

// gaugesSnapshot samples the point-in-time gauges. The HA node reuses
// it when it scrapes a leader, overriding the replication fields with
// its push-loop view.
func (c *Coordinator) gaugesSnapshot() clusterGauges {
	c.mu.Lock()
	inflight := make(map[string]int, len(c.workers))
	for id, w := range c.workers {
		inflight[id] = len(w.jobs)
	}
	pending := 0
	for _, jid := range c.order {
		j := c.jobs[jid]
		if j.status == server.StatusQueued && j.owner == "" {
			pending++
		}
	}
	g := clusterGauges{workersLive: len(c.workers), jobsPending: pending, inflight: inflight, role: 1}
	if c.repl != nil {
		g.replSeq = c.repl.last()
	}
	c.mu.Unlock()
	return g
}

// Metrics renders the Prometheus exposition. A solo coordinator is its
// own (only) leader: role 1, replication idle.
func (c *Coordinator) Metrics() string {
	return c.metrics.render(c.gaugesSnapshot())
}

// Close stops the expiry loop, marks the coordinator draining, and
// persists a final state snapshot. Workers keep running until their
// heartbeats fail; on the next coordinator start they either renew
// (restart within the grace TTL) or rejoin.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() {
		c.draining.Store(true)
		close(c.stopCh)
		c.wg.Wait()
		c.mu.Lock()
		c.saveStateLocked()
		c.mu.Unlock()
		c.cfg.Logf("dsasimd: coordinator closed")
	})
}

// admissionError mirrors the server's: the HTTP answer for a refusal.
type admissionError struct {
	code       int
	msg        string
	retryAfter time.Duration
}

func (e *admissionError) Error() string { return e.msg }

func fmtTime(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
