// Package cluster scales dsasimd out to many worker processes under
// one coordinator. The coordinator owns the job table and hands out
// time-bounded leases; workers execute jobs on their runner pools and
// keep their leases alive by heartbeat. Every assignment carries a
// globally monotonic fencing epoch, stamped into checkpoint files and
// result submissions, so a worker that lost its lease — however long
// it stalls — can never corrupt state the new owner has taken over.
//
// The protocol is pull-only: workers have no HTTP listener. A
// heartbeat request carries the worker's running set; the response
// carries the desired-state delta (assignments to start, leases to
// stop) and the worker reconciles. Failure detection is the absence
// of heartbeats: a lease that is not renewed within its TTL expires,
// and the dead worker's jobs are reassigned at higher epochs to the
// survivors, which resume from the highest-epoch checkpoint on the
// shared snapshot directory.
package cluster

import "repro/internal/server"

// JoinRequest is POST /cluster/v1/join: a new worker process asks for
// an identity and a lease. Rejoining after a fence means a fresh join
// — worker IDs are never reused.
type JoinRequest struct {
	// Capacity is how many jobs the worker runs concurrently.
	Capacity int `json:"capacity"`
}

// JoinResponse grants the lease.
type JoinResponse struct {
	// Worker is the coordinator-assigned identity; it namespaces the
	// worker's checkpoint files and authenticates its submissions.
	Worker string `json:"worker"`
	// Session is a nonce minted for this lease session. Every
	// heartbeat must present it: a heartbeat carrying a dead session's
	// nonce — a delayed duplicate from a fenced predecessor — is
	// rejected with 409 and can never renew a lease.
	Session string `json:"session"`
	// LeaseTTLMS is the lease duration; the worker must heartbeat
	// well within it (TTL/3 is the convention).
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
}

// RunningJob is one entry of a heartbeat's running set.
type RunningJob struct {
	Job   string `json:"job"`
	Epoch uint64 `json:"epoch"`
}

// HeartbeatRequest is POST /cluster/v1/heartbeat: renew the lease and
// report reality so the coordinator can compute the delta. A renewal
// is accepted only when (Worker, Session) name the current lease AND
// Seq is strictly above the last accepted one — the two checks that
// make delayed or duplicated heartbeats side-effect free.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	// Session is the join-time nonce of this lease session.
	Session string `json:"session"`
	// Seq increments on every heartbeat *send* (retries included), so
	// a network-duplicated or delayed copy of an already-processed
	// renewal is recognizable as a replay and rejected.
	Seq     uint64       `json:"seq"`
	Running []RunningJob `json:"running,omitempty"`
	// RPCRetries/RPCTimeouts carry the worker's client-side fault
	// tallies since its last *delivered* heartbeat. Workers have no
	// listener to scrape, so their RPC health rides the heartbeat and
	// the coordinator folds it into /metrics.
	RPCRetries  uint64 `json:"rpc_retries,omitempty"`
	RPCTimeouts uint64 `json:"rpc_timeouts,omitempty"`
}

// Assignment is one job the coordinator wants started, with everything
// the worker needs: the spec, the fencing epoch to stamp on writes,
// and whether to resume from a checkpoint.
type Assignment struct {
	Job   string         `json:"job"`
	Epoch uint64         `json:"epoch"`
	Spec  server.JobSpec `json:"spec"`
	// Resume marks a takeover or requeue: look for a checkpoint
	// (highest epoch at or below Epoch) before running from zero.
	Resume bool `json:"resume,omitempty"`
}

// HeartbeatResponse is the desired-state delta. A heartbeat the
// coordinator does not recognize — unknown worker, stale session
// nonce, or replayed sequence number — is answered 409 instead; the
// worker treats any 409 as a fence: self-revoke everything and join
// afresh under a new identity.
type HeartbeatResponse struct {
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// Start lists assignments the worker should be running but is not.
	Start []Assignment `json:"start,omitempty"`
	// Stop lists job IDs the worker is running without a current
	// lease on (fenced: reassigned or completed elsewhere). The worker
	// revokes them; their attempts unwind with a final checkpoint.
	Stop []string `json:"stop,omitempty"`
}

// CompleteRequest is POST /cluster/v1/complete: a terminal result. The
// coordinator accepts it only if (worker, epoch) still hold the job's
// current lease and the job is not already terminal; anything else is
// 409 — the fencing that makes completion exactly-once.
type CompleteRequest struct {
	Worker string            `json:"worker"`
	Job    string            `json:"job"`
	Epoch  uint64            `json:"epoch"`
	Result server.ResultJSON `json:"result"`
}

// ProgressRequest is POST /cluster/v1/progress: a live sample, fenced
// like a completion (a zombie's progress must not overwrite the new
// owner's).
type ProgressRequest struct {
	Worker   string              `json:"worker"`
	Job      string              `json:"job"`
	Epoch    uint64              `json:"epoch"`
	Progress server.ProgressJSON `json:"progress"`
}
