package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/server"
)

// Handler returns the coordinator's HTTP API: the public job surface
// (same shapes as the standalone daemon, so clients don't care which
// they talk to) plus the worker-facing lease protocol under
// /cluster/v1/.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", c.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleEvents)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /readyz", c.handleReady)

	mux.HandleFunc("POST /cluster/v1/join", c.handleJoin)
	mux.HandleFunc("POST /cluster/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /cluster/v1/complete", c.handleComplete)
	mux.HandleFunc("POST /cluster/v1/progress", c.handleProgress)
	return mux
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec server.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	view, deduped, err := c.Submit(spec, r.Header.Get("Idempotency-Key"))
	if err != nil {
		var ae *admissionError
		if !errors.As(err, &ae) {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if ae.retryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", server.JitterSeconds(ae.retryAfter)))
		}
		httpError(w, ae.code, ae.msg)
		return
	}
	if deduped {
		w.Header().Set("Idempotency-Replayed", "true")
	}
	writeJSON(w, http.StatusAccepted, view)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": c.Jobs()})
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := c.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	var status string
	var events *server.Broadcaster
	if ok {
		status, events = j.status, j.events
	}
	c.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	server.StreamEvents(w, r, events, r.PathValue("id"), status)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, c.Metrics())
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	state := "ok"
	if c.draining.Load() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": state})
}

// handleReady: the cluster can usefully accept a submission only when
// it is not draining and at least one worker holds a current lease.
func (c *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	// A coordinator answering readiness itself is the leader (the HA
	// node answers for its standbys); clients and probes key off this.
	w.Header().Set(roleHeader, "leader")
	reason := ""
	if c.draining.Load() {
		reason = "draining"
	} else {
		c.mu.Lock()
		if len(c.workers) == 0 {
			reason = "no live workers"
		}
		c.mu.Unlock()
	}
	if reason != "" {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "unready", "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// decodeBody decodes a protocol request, answering 400 on garbage.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if c.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if req.Capacity <= 0 {
		req.Capacity = 1
	}
	c.mu.Lock()
	c.nextWorker++
	we := &workerEntry{
		id:       fmt.Sprintf("w%04d", c.nextWorker),
		capacity: req.Capacity,
		deadline: time.Now().Add(c.cfg.LeaseTTL),
		session:  newSession(),
		jobs:     map[string]struct{}{},
	}
	c.workers[we.id] = we
	c.repWorkerLocked(we)
	c.assignLocked()
	c.repCountersLocked()
	c.saveStateLocked()
	c.mu.Unlock()
	c.metrics.onLeaseGrant()
	c.cfg.Logf("dsasimd: worker %s joined (capacity %d, session %s)", we.id, req.Capacity, we.session)
	writeJSON(w, http.StatusOK, JoinResponse{Worker: we.id, Session: we.session, LeaseTTLMS: c.cfg.LeaseTTL.Milliseconds()})
}

// handleHeartbeat renews the worker's lease and reconciles its running
// set against the coordinator's desired state.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp := HeartbeatResponse{LeaseTTLMS: c.cfg.LeaseTTL.Milliseconds()}
	var statusEvents []server.Event

	c.mu.Lock()
	we := c.workers[req.Worker]
	if we == nil {
		// Expired lease: the worker is a zombie until it self-fences
		// and rejoins under a fresh identity.
		c.mu.Unlock()
		c.metrics.onHeartbeatReject()
		httpError(w, http.StatusConflict, "no current lease: rejoin")
		return
	}
	if we.session != req.Session || req.Seq <= we.lastSeq {
		// Wrong session nonce, or a sequence number already accepted:
		// this is a delayed or duplicated heartbeat — possibly replayed
		// from a fenced predecessor session that reused the worker ID.
		// It must not renew the current lease, and it must not deliver
		// assignments to whoever sent it.
		c.mu.Unlock()
		c.metrics.onHeartbeatReject()
		c.cfg.Logf("dsasimd: heartbeat for %s rejected (session %q seq %d vs lease session %q seq %d)",
			req.Worker, req.Session, req.Seq, we.session, we.lastSeq)
		httpError(w, http.StatusConflict, "stale session or replayed heartbeat: rejoin")
		return
	}
	we.lastSeq = req.Seq
	we.deadline = time.Now().Add(c.cfg.LeaseTTL)
	// Fold the worker's client-side RPC fault tallies into /metrics.
	// This sits after the session/seq check on purpose: a duplicated
	// heartbeat must not double-count its deltas.
	c.metrics.onRPCReport(req.RPCRetries, req.RPCTimeouts)

	// The worker's reality: everything it runs without a current lease
	// gets a stop; everything leased that it isn't running gets a
	// start.
	running := make(map[string]uint64, len(req.Running))
	for _, rj := range req.Running {
		running[rj.Job] = rj.Epoch
		j := c.jobs[rj.Job]
		if j == nil || j.owner != req.Worker || j.epoch != rj.Epoch || server.Terminal(j.status) {
			resp.Stop = append(resp.Stop, rj.Job)
			continue
		}
		if j.status == server.StatusQueued {
			j.status = server.StatusRunning
			j.started = time.Now()
			c.repJobLocked(j)
			statusEvents = append(statusEvents,
				server.Event{Type: "status", Job: j.id, Status: server.StatusRunning})
		}
	}
	for jid := range we.jobs {
		j := c.jobs[jid]
		if j == nil || server.Terminal(j.status) || j.owner != req.Worker {
			delete(we.jobs, jid)
			continue
		}
		if ep, ok := running[jid]; ok && ep == j.epoch {
			continue
		}
		resp.Start = append(resp.Start, Assignment{Job: jid, Epoch: j.epoch, Spec: j.spec, Resume: j.resume})
	}
	c.mu.Unlock()

	if n := len(resp.Stop); n > 0 {
		c.metrics.onRevoke(n)
	}
	for _, ev := range statusEvents {
		c.publish(ev)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleComplete records a terminal result — exactly once. Any write
// that does not carry the job's current (owner, epoch) lease, or
// arrives after the job is already terminal, is fenced with 409.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.Lock()
	j := c.jobs[req.Job]
	if j == nil {
		c.mu.Unlock()
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if server.Terminal(j.status) || j.owner != req.Worker || j.epoch != req.Epoch {
		c.mu.Unlock()
		c.metrics.onFencedWrite()
		httpError(w, http.StatusConflict, "stale lease: result fenced")
		return
	}
	res := req.Result
	j.status = res.Status
	j.result = &res
	j.finished = time.Now()
	j.owner = ""
	if we := c.workers[req.Worker]; we != nil {
		delete(we.jobs, req.Job)
	}
	c.repJobLocked(j)
	c.assignLocked() // a capacity slot just freed
	c.saveStateLocked()
	c.mu.Unlock()

	c.metrics.onDone(res.Status)
	c.publish(server.Event{Type: "done", Job: req.Job, Status: res.Status, Result: &res})
	c.cfg.Logf("dsasimd: job %s %s (worker %s, epoch %d)", req.Job, res.Status, req.Worker, req.Epoch)
	writeJSON(w, http.StatusOK, map[string]string{"status": "accepted"})
}

// handleProgress records a live sample, fenced like a completion.
func (c *Coordinator) handleProgress(w http.ResponseWriter, r *http.Request) {
	var req ProgressRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.Lock()
	j := c.jobs[req.Job]
	if j == nil {
		c.mu.Unlock()
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if server.Terminal(j.status) || j.owner != req.Worker || j.epoch != req.Epoch {
		c.mu.Unlock()
		c.metrics.onFencedWrite()
		httpError(w, http.StatusConflict, "stale lease: progress fenced")
		return
	}
	p := req.Progress
	j.progress = &p
	c.mu.Unlock()
	c.publish(server.Event{Type: "progress", Job: req.Job, Status: server.StatusRunning, Progress: &p})
	writeJSON(w, http.StatusOK, map[string]string{"status": "accepted"})
}

// publish routes an event to its job's broadcaster.
func (c *Coordinator) publish(ev server.Event) {
	c.mu.Lock()
	j := c.jobs[ev.Job]
	c.mu.Unlock()
	if j != nil {
		j.events.Publish(ev)
	}
}
