package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runner"
	"repro/internal/server"
)

// Worker RPC knobs. Every cluster RPC carries its own context
// deadline: without one, a single hung request on a shared client
// timeout (10s, say) could burn most of a 5s lease and force a
// spurious self-fence. Heartbeats are capped tighter still — at the
// heartbeat interval — so a stalled renewal leaves room to retry
// before the lease runs out.
const (
	// rpcTimeout bounds join, complete, and progress RPCs.
	rpcTimeout = 2 * time.Second
	// completeAttempts is the retry budget for delivering a terminal
	// result before dropping it (the next owner's re-run converges to
	// the identical result, so delivery is an optimization).
	completeAttempts = 6
	// backoffBase/backoffCap bracket the full-jitter exponential
	// backoff used on every retried worker RPC.
	backoffBase = 25 * time.Millisecond
	backoffCap  = 2 * time.Second
)

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL — or a comma-separated
	// list of them under replicated-coordinator HA. The worker talks to
	// one endpoint at a time and rotates to the next on connect
	// failures and standby refusals (502/503), under the same jittered
	// retry budgets as before; fences (409) and refusals that mean the
	// *cluster* said no (400/404/429) never rotate.
	Coordinator string
	// Capacity is how many jobs to run concurrently (0 = 1).
	Capacity int
	// SnapshotDir is the checkpoint directory — shared with the other
	// workers; files are namespaced by worker ID and lease epoch, and
	// takeover resumes happen through it.
	SnapshotDir string
	// Runner carries execution knobs (snapshot cadence, retries,
	// timeout…). Workers, SnapshotDir, SnapshotOwner and OnProgress
	// are owned by the worker and overwritten.
	Runner runner.Options
	// Transport, when set, replaces the HTTP transport for every
	// coordinator RPC — the seam netchaos injects client-side faults
	// through. Nil uses http.DefaultTransport.
	Transport http.RoundTripper
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// assignment is one leased job the worker is running.
type assignment struct {
	job   string
	epoch uint64
}

// Worker executes leased jobs against a coordinator. It has no HTTP
// listener: it pulls desired state through its own heartbeats and
// pushes progress and results, every write stamped with its lease
// epoch. When its lease lapses — heartbeats failing long enough, or
// the coordinator fencing its session with 409 — it self-fences:
// every running attempt is revoked (checkpointing and unwinding), and
// the worker joins again under a fresh identity and pool.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client
	stopCh chan struct{}
	once   sync.Once
	jobWG  sync.WaitGroup

	// endpoints is the coordinator endpoint list; epIdx mod len is the
	// one currently in use (a monotonic index so concurrent failures
	// rotate once, not once each).
	endpoints []string
	epIdx     atomic.Uint32

	// rpcRetries/rpcTimeouts accumulate client-side RPC failures since
	// the last delivered heartbeat; the next accepted heartbeat ships
	// them to the coordinator's metrics and subtracts what it shipped.
	rpcRetries  atomic.Uint64
	rpcTimeouts atomic.Uint64

	mu      sync.Mutex
	id      string
	session string
	seq     uint64
	pool    *runner.Pool
	running map[string]assignment
}

// NewWorker builds a worker; Run starts it.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Worker{
		cfg:       cfg,
		client:    &http.Client{Transport: cfg.Transport},
		stopCh:    make(chan struct{}),
		running:   map[string]assignment{},
		endpoints: splitEndpoints(cfg.Coordinator),
	}
}

// splitEndpoints parses a comma-separated coordinator endpoint list.
func splitEndpoints(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimRight(strings.TrimSpace(e), "/"); e != "" {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		out = []string{""}
	}
	return out
}

// rotate advances to the next endpoint, if the caller's view (from) is
// still current — so a burst of failures against one endpoint moves
// one step, not past the live coordinator.
func (w *Worker) rotate(from uint32) {
	if len(w.endpoints) < 2 {
		return
	}
	if w.epIdx.CompareAndSwap(from, from+1) {
		w.cfg.Logf("dsasimd-worker: rotating coordinator endpoint to %s",
			w.endpoints[int((from+1)%uint32(len(w.endpoints)))])
	}
}

// Run joins the coordinator and serves leases until Close. Each fence
// (lease lapse or a 409 on heartbeat) ends one session — its pool and
// identity are discarded — and a fresh join starts the next.
func (w *Worker) Run() {
	for {
		id, session, ttl, ok := w.join()
		if !ok {
			return
		}
		if !w.serveSession(id, session, ttl) {
			return
		}
		w.cfg.Logf("dsasimd-worker: fenced as %s; rejoining", id)
	}
}

// Close stops the worker: running attempts are revoked (each leaves a
// checkpoint for its next owner) and Run returns.
func (w *Worker) Close() { w.once.Do(func() { close(w.stopCh) }) }

// countFailure classifies one failed RPC into the retry/timeout
// tallies the next heartbeat reports.
func (w *Worker) countFailure(err error) {
	w.rpcRetries.Add(1)
	var ne net.Error
	if errors.Is(err, context.DeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
		w.rpcTimeouts.Add(1)
	}
}

// fullJitter picks a uniformly random delay in (0, d] — the backoff
// shape that keeps a fenced fleet from reconverging in one wave when
// a coordinator restart drops every worker at once.
func fullJitter(d time.Duration) time.Duration {
	if d <= time.Millisecond {
		return time.Millisecond
	}
	return time.Millisecond + time.Duration(rand.Int63n(int64(d)))
}

// join obtains an identity and lease, retrying with full-jitter
// exponential backoff until it succeeds or the worker is closed.
func (w *Worker) join() (id, session string, ttl time.Duration, ok bool) {
	backoff := 2 * backoffBase
	for {
		var resp JoinResponse
		code, err := w.post(rpcTimeout, "/cluster/v1/join", JoinRequest{Capacity: w.cfg.Capacity}, &resp)
		if err == nil && code == http.StatusOK && resp.Worker != "" {
			return resp.Worker, resp.Session, time.Duration(resp.LeaseTTLMS) * time.Millisecond, true
		}
		if err != nil {
			w.countFailure(err)
			w.cfg.Logf("dsasimd-worker: join: %v (retrying)", err)
		} else {
			w.rpcRetries.Add(1)
			w.cfg.Logf("dsasimd-worker: join refused (%d, retrying)", code)
		}
		select {
		case <-w.stopCh:
			return "", "", 0, false
		case <-time.After(fullJitter(backoff)):
		}
		if backoff < backoffCap {
			backoff *= 2
		}
	}
}

// serveSession drives one lease lifetime: heartbeat at TTL/3 (sooner,
// with jittered backoff, after a failure), reconcile the response,
// self-fence at the end. Returns true to rejoin, false when the
// worker is closing.
func (w *Worker) serveSession(id, session string, ttl time.Duration) (rejoin bool) {
	ropts := w.cfg.Runner
	ropts.Workers = w.cfg.Capacity
	ropts.SnapshotDir = w.cfg.SnapshotDir
	ropts.SnapshotOwner = id
	ropts.OnProgress = w.onProgress
	pool := runner.NewPool(ropts)

	w.mu.Lock()
	w.id, w.session, w.seq = id, session, 0
	w.pool, w.running = pool, map[string]assignment{}
	w.mu.Unlock()
	defer w.fence(pool)

	w.cfg.Logf("dsasimd-worker: joined as %s (lease %s)", id, ttl)
	hb := ttl / 3
	if hb < 5*time.Millisecond {
		hb = 5 * time.Millisecond
	}
	// The lease clock runs from each heartbeat's *send* time: if the
	// coordinator saw the renewal any later than that, our view of the
	// deadline is only more conservative than its.
	leaseUntil := time.Now().Add(ttl)
	failures := 0
	for {
		sent := time.Now()
		resp, code, err := w.heartbeat(hb)
		sleep := hb
		switch {
		case err == nil && code == http.StatusConflict:
			// Fenced: the session nonce (or our whole lease) is dead on
			// the coordinator's side. Stop claiming anything and rejoin.
			w.cfg.Logf("dsasimd-worker: %s heartbeat fenced (409)", id)
			return true
		case err == nil && code == http.StatusOK:
			leaseUntil = sent.Add(ttl)
			failures = 0
			w.reconcile(id, pool, resp)
		case time.Now().After(leaseUntil):
			// Could not renew within our own TTL: the coordinator has
			// (or soon will have) expired us and reassigned our jobs.
			// Run nothing we cannot prove we still lease.
			w.cfg.Logf("dsasimd-worker: %s lease lapsed (%v)", id, err)
			return true
		default:
			// Transient failure: retry sooner than the normal cadence,
			// with full jitter so a partition heal doesn't synchronize
			// the fleet's renewals.
			if err != nil {
				w.countFailure(err)
				w.cfg.Logf("dsasimd-worker: heartbeat: %v", err)
			} else {
				w.rpcRetries.Add(1)
				w.cfg.Logf("dsasimd-worker: heartbeat: HTTP %d", code)
			}
			failures++
			d := backoffBase << uint(failures-1)
			if d > hb || d <= 0 {
				d = hb
			}
			sleep = fullJitter(d)
		}
		select {
		case <-w.stopCh:
			return false
		case <-time.After(sleep):
		}
	}
}

// heartbeat reports the running set and fetches the desired-state
// delta. Its RPC deadline is the heartbeat interval itself: a renewal
// that cannot complete within one cadence is worthless, and waiting
// longer only eats the lease.
func (w *Worker) heartbeat(interval time.Duration) (*HeartbeatResponse, int, error) {
	retries := w.rpcRetries.Load()
	timeouts := w.rpcTimeouts.Load()
	w.mu.Lock()
	w.seq++
	req := HeartbeatRequest{
		Worker:      w.id,
		Session:     w.session,
		Seq:         w.seq,
		RPCRetries:  retries,
		RPCTimeouts: timeouts,
	}
	for _, a := range w.running {
		req.Running = append(req.Running, RunningJob{Job: a.job, Epoch: a.epoch})
	}
	w.mu.Unlock()
	var resp HeartbeatResponse
	code, err := w.post(interval, "/cluster/v1/heartbeat", req, &resp)
	if err != nil {
		return nil, code, err
	}
	if code == http.StatusOK {
		// Delivered: retire the shipped tallies (new failures may have
		// accumulated concurrently; they ride the next heartbeat).
		w.rpcRetries.Add(^(retries - 1))
		w.rpcTimeouts.Add(^(timeouts - 1))
	}
	return &resp, code, nil
}

// reconcile applies a heartbeat's stop and start lists.
func (w *Worker) reconcile(id string, pool *runner.Pool, resp *HeartbeatResponse) {
	for _, job := range resp.Stop {
		w.cfg.Logf("dsasimd-worker: %s revoking %s (fenced)", id, job)
		pool.Revoke(job)
	}
	w.mu.Lock()
	var starts []Assignment
	for _, a := range resp.Start {
		// Never double-start: if the job is still unwinding from a
		// revocation (a stop and a re-start for the same job can ride
		// one response), wait for the next heartbeat to re-deliver.
		if _, ok := w.running[a.Job]; ok {
			continue
		}
		w.running[a.Job] = assignment{job: a.Job, epoch: a.Epoch}
		starts = append(starts, a)
	}
	w.mu.Unlock()
	for _, a := range starts {
		w.launch(id, pool, a)
	}
}

// launch runs one assignment on the pool in its own goroutine and
// reports the terminal result.
func (w *Worker) launch(id string, pool *runner.Pool, a Assignment) {
	w.jobWG.Add(1)
	go func() {
		defer w.jobWG.Done()
		defer func() {
			w.mu.Lock()
			delete(w.running, a.Job)
			w.mu.Unlock()
		}()
		job, err := a.Spec.RunnerJob(a.Job)
		if err != nil {
			w.report(id, a, server.ResultJSON{Job: a.Job, Status: string(runner.StatusFailed), Cause: "bad-spec", Error: err.Error()})
			return
		}
		job.Epoch = a.Epoch
		job.Resume = a.Resume
		res := pool.Do(context.Background(), job)
		if res.Status == runner.StatusFailed && (res.Cause == runner.CauseRevoked || res.Cause == runner.CauseDrained) {
			// Not a result: the lease went away mid-run. The checkpoint
			// stays for the next owner; nothing to report.
			return
		}
		if res.ResumedFromStep > 0 {
			w.cfg.Logf("dsasimd-worker: %s resumed %s from step %d (epoch %d)", id, a.Job, res.ResumedFromStep, a.Epoch)
		}
		w.report(id, a, server.ResultFromRunner(res))
	}()
}

// report posts a terminal result with a bounded full-jitter retry
// budget. A 409 means the write was fenced — the lease moved on — and
// a 404 that the job is gone; both are final. If the coordinator
// stays unreachable past the budget, the job is simply dropped from
// the running set: the next owner's re-run reproduces the same result
// (the simulation is deterministic), so convergence never depends on
// this one delivery.
func (w *Worker) report(id string, a Assignment, res server.ResultJSON) {
	req := CompleteRequest{Worker: id, Job: a.Job, Epoch: a.Epoch, Result: res}
	backoff := 2 * backoffBase
	for i := 0; i < completeAttempts; i++ {
		code, err := w.post(rpcTimeout, "/cluster/v1/complete", req, nil)
		if err == nil {
			switch code {
			case http.StatusOK:
				return
			case http.StatusConflict, http.StatusNotFound:
				w.cfg.Logf("dsasimd-worker: %s result for %s fenced (HTTP %d)", id, a.Job, code)
				return
			}
		}
		if err != nil {
			w.countFailure(err)
		} else {
			w.rpcRetries.Add(1)
		}
		select {
		case <-w.stopCh:
			return
		case <-time.After(fullJitter(backoff)):
		}
		if backoff < backoffCap {
			backoff *= 2
		}
	}
	w.cfg.Logf("dsasimd-worker: %s could not deliver result for %s; dropping (next owner re-runs)", id, a.Job)
}

// onProgress pushes a live sample under the job's lease epoch. Errors
// (including fencing) are ignored: progress is advisory, and a fenced
// job's revocation arrives with the next heartbeat.
func (w *Worker) onProgress(p runner.Progress) {
	w.mu.Lock()
	a, ok := w.running[p.Job]
	id := w.id
	w.mu.Unlock()
	if !ok {
		return
	}
	req := ProgressRequest{Worker: id, Job: p.Job, Epoch: a.epoch, Progress: server.ProgressJSON{
		Job: p.Job, Attempt: p.Attempt, DSAOff: p.DSAOff,
		Steps: p.Steps, Ticks: p.Ticks, Takeovers: p.Takeovers, Fallbacks: p.Fallbacks,
	}}
	if _, err := w.post(rpcTimeout, "/cluster/v1/progress", req, nil); err != nil {
		var ne net.Error
		if errors.Is(err, context.DeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
			w.rpcTimeouts.Add(1)
		}
	}
}

// fence ends a session: revoke every running attempt (each writes its
// final checkpoint and unwinds), wait for them, release the pool.
func (w *Worker) fence(pool *runner.Pool) {
	w.mu.Lock()
	for job := range w.running {
		pool.Revoke(job)
	}
	w.mu.Unlock()
	w.jobWG.Wait()
	pool.Close()
}

// post sends one JSON request under its own context deadline; out,
// when non-nil, receives a decoded 200 body. A decode failure (a
// truncated response, say) is reported as an error alongside the
// status code.
func (w *Worker) post(timeout time.Duration, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	idx := w.epIdx.Load()
	base := w.endpoints[int(idx%uint32(len(w.endpoints)))]
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		// Unreachable endpoint: the caller's existing backoff retries
		// the next one.
		w.rotate(idx)
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusBadGateway {
		// A standby (or a draining/booting coordinator): rotate. Never
		// on 409/404/400/429 — those are the cluster's answer, not the
		// wrong endpoint's.
		w.rotate(idx)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding %s response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}
