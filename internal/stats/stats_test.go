package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %v", got)
	}
	if got := GeoMean(nil); got != 1 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	// Non-positive entries skipped.
	if got := GeoMean([]float64{0, -3, 4}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean with junk = %v", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(1.31); math.Abs(got-31) > 1e-9 {
		t.Errorf("Pct = %v", got)
	}
}

func TestSavingsPct(t *testing.T) {
	if got := SavingsPct(55, 100); math.Abs(got-45) > 1e-9 {
		t.Errorf("SavingsPct = %v", got)
	}
	if got := SavingsPct(10, 0); got != 0 {
		t.Errorf("SavingsPct div0 = %v", got)
	}
}

// Property: the geomean of positive values lies between min and max.
func TestQuickGeoMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			x := float64(v%1000) + 1
			xs = append(xs, x)
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		if len(xs) == 0 {
			return GeoMean(xs) == 1
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
