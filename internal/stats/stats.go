// Package stats provides the small numeric helpers the experiment
// harness uses for aggregate rows (geometric means, percentages).
package stats

import "math"

// GeoMean returns the geometric mean of xs (1.0 for empty input).
// Non-positive entries are skipped, matching how speedup tables treat
// missing configurations.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Pct formats a ratio as a percentage improvement: 1.31 → 31.0.
func Pct(ratio float64) float64 { return (ratio - 1) * 100 }

// SavingsPct converts a cost ratio into savings: new/old = 0.55 → 45.0.
func SavingsPct(newCost, oldCost float64) float64 {
	if oldCost == 0 {
		return 0
	}
	return (1 - newCost/oldCost) * 100
}
