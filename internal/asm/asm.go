// Package asm assembles armlite assembly text into executable programs.
//
// The accepted syntax is the subset of ARM unified assembly the
// dissertation's figures use:
//
//	        mov   r4, #400        ; comments with ';', '@' or '//'
//	loop:   ldr   r3, [r5], #4    ; post-indexed load with writeback
//	        ldr   r1, [r10], #4
//	        add   r3, r3, r1
//	        str   r3, [r2], #4
//	        cmp   r5, r4
//	        blt   loop
//	        halt
//
// Vector forms: `vld1.32 q8, [r5]!`, `vadd.i32 q9, q9, q8`,
// `vst1.32 q9, [r2]!` (`vstr`/`vldr` are accepted as synonyms, matching
// the dissertation's Fig. 25 listing).
package asm

import (
	"fmt"
	"strings"

	"repro/internal/armlite"
)

// Parse parses src into a validated Program named name. This is the
// library's only entry point that external input should go through:
// every failure — lexical, structural, or validation — comes back as
// an error, never a panic.
func Parse(name, src string) (*armlite.Program, error) {
	a := &assembler{
		prog: &armlite.Program{Name: name, Labels: map[string]int{}},
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, lineNo+1, err)
		}
	}
	if err := a.resolve(); err != nil {
		return nil, err
	}
	if err := a.prog.Validate(); err != nil {
		return nil, err
	}
	return a.prog, nil
}

// Assemble is an alias of Parse kept for existing callers.
func Assemble(name, src string) (*armlite.Program, error) { return Parse(name, src) }

// MustParse is Parse for known-good embedded sources (tests and the
// built-in workload suite); it panics on error and must not be used
// on external input — commands parse through Parse and report errors.
func MustParse(name, src string) *armlite.Program {
	p, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

// MustAssemble is an alias of MustParse kept for existing callers.
func MustAssemble(name, src string) *armlite.Program { return MustParse(name, src) }

type assembler struct {
	prog *armlite.Program
}

func stripComment(s string) string {
	for _, marker := range []string{";", "@", "//"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return strings.TrimSpace(s)
}

func (a *assembler) line(raw string) error {
	s := stripComment(raw)
	if s == "" {
		return nil
	}
	// Leading labels (possibly several on one line).
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		label := strings.TrimSpace(s[:i])
		if !isIdent(label) {
			break // ':' inside an operand? not in this ISA, but be safe
		}
		if _, dup := a.prog.Labels[label]; dup {
			return fmt.Errorf("duplicate label %q", label)
		}
		a.prog.Labels[label] = len(a.prog.Code)
		s = strings.TrimSpace(s[i+1:])
	}
	if s == "" {
		return nil
	}
	in, err := parseInstr(s)
	if err != nil {
		return err
	}
	a.prog.Code = append(a.prog.Code, in)
	return nil
}

func (a *assembler) resolve() error {
	for i := range a.prog.Code {
		in := &a.prog.Code[i]
		if (in.Op == armlite.OpB || in.Op == armlite.OpBL) && in.Label != "" {
			t, ok := a.prog.Labels[in.Label]
			if !ok {
				return fmt.Errorf("%s@%d: undefined label %q", a.prog.Name, i, in.Label)
			}
			in.Target = t
		}
	}
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
