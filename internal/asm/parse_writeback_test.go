package asm

import (
	"strings"
	"testing"

	"repro/internal/armlite"
)

// TestPreIndexParseAndPrint pins the scalar pre-index form: "[rn, #off]!"
// must parse to AddrOffset+Writeback and print back identically.
func TestPreIndexParseAndPrint(t *testing.T) {
	p, err := Parse("t", "ldr r0, [r1, #4]!\nstr r2, [r3, #-8]!\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	ld := p.Code[0]
	if ld.Mem.Kind != armlite.AddrOffset || !ld.Mem.Writeback || ld.Mem.Offset != 4 {
		t.Errorf("ldr parsed wrong: %+v", ld.Mem)
	}
	st := p.Code[1]
	if st.Mem.Kind != armlite.AddrOffset || !st.Mem.Writeback || st.Mem.Offset != -8 {
		t.Errorf("str parsed wrong: %+v", st.Mem)
	}
	if got := ld.String(); got != "ldr r0, [r1, #4]!" {
		t.Errorf("ldr prints as %q", got)
	}
	if got := st.String(); got != "str r2, [r3, #-8]!" {
		t.Errorf("str prints as %q", got)
	}
	// The printed form must re-parse to the same instruction.
	p2, err := Parse("t2", ld.String()+"\nhalt")
	if err != nil {
		t.Fatalf("re-parse of %q: %v", ld.String(), err)
	}
	if p2.Code[0].Mem != ld.Mem {
		t.Errorf("round-trip changed the operand: %+v vs %+v", p2.Code[0].Mem, ld.Mem)
	}
}

// TestRegOffsetWritebackParseRejected pins the parser-level rejection
// of "[rn, rm]!": writeback with a register offset has no architected
// meaning in this ISA subset and used to be silently dropped.
func TestRegOffsetWritebackParseRejected(t *testing.T) {
	srcs := []string{
		"ldr r0, [r1, r2]!",
		"str r0, [r1, r2]!",
		"ldr r0, [r1, r2, lsl #2]!",
		"vld1.32 q0, [r1, r2]!",
		"vst1.32 q0, [r1, r2]!",
	}
	for _, src := range srcs {
		_, err := Parse("t", src+"\nhalt")
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want writeback rejection", src)
			continue
		}
		if !strings.Contains(err.Error(), "writeback") {
			t.Errorf("Parse(%q) error %q does not mention writeback", src, err)
		}
	}
}
