package asm

import (
	"strings"
	"testing"
)

// FuzzParse drives arbitrary text through the assembler. The contract
// under test is the one Parse documents: any input — however mangled —
// must come back as a program or an error, never a panic, and an
// accepted program must survive validation and round-trip through its
// own disassembly.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"halt",
		"mov r0, #1\nhalt",
		"loop: ldr r3, [r5], #4\nadd r3, r3, r1\nstr r3, [r2], #4\ncmp r0, r4\nblt loop\nhalt",
		"loop: ldrb r3, [r5], #1\ncmp r3, #0\nbeq done\nstrb r3, [r2], #1\nb loop\ndone: halt",
		"vld1.32 q8, [r5]!\nvadd.i32 q9, q9, q8\nvst1.32 q9, [r2]!",
		"ldr r3, [r5, r0, lsl #2]",
		"x: b x",
		"mov r0, #1 ; comment\n@ whole-line comment\n// another",
		"bl x\nx: bx lr",
		"label-without-colon r0",
		"mov r99, #1",
		"str r3, [r2, #-4]!",
		"\tmov\tr1, #0x7fffffff\n\thalt",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse("fuzz", src)
		if err != nil {
			return
		}
		if prog == nil {
			t.Fatal("Parse returned nil program and nil error")
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("accepted program fails validation: %v\ninput: %q", err, src)
		}
		// Accepted programs must disassemble to re-parseable text.
		out := prog.String()
		re, err := Parse("fuzz-roundtrip", out)
		if err != nil {
			t.Fatalf("disassembly does not re-parse: %v\ninput: %q\ndisasm:\n%s", err, src, out)
		}
		if len(re.Code) != len(prog.Code) {
			t.Fatalf("round trip changed length %d → %d\ninput: %q", len(prog.Code), len(re.Code), src)
		}
	})
}

// TestFuzzSeedsParse keeps the hand-picked valid seeds valid, so the
// fuzz corpus keeps exercising the accepting paths.
func TestFuzzSeedsParse(t *testing.T) {
	for _, src := range []string{
		"halt",
		"loop: ldr r3, [r5], #4\nadd r3, r3, r1\nstr r3, [r2], #4\ncmp r0, r4\nblt loop\nhalt",
	} {
		if _, err := Parse("seed", src); err != nil {
			t.Errorf("seed %q: %v", strings.Split(src, "\n")[0], err)
		}
	}
}
