package asm

import (
	"os"
	"path/filepath"
	"testing"
)

// TestExampleKernelsAssemble: every shipped .s sample must assemble,
// validate, and round-trip through the disassembler.
func TestExampleKernelsAssemble(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "kernels")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("no kernels directory: %v", err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".s" {
			continue
		}
		n++
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		p, err := Assemble(e.Name(), string(src))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if _, err := Assemble(e.Name()+"-rt", p.String()); err != nil {
			t.Errorf("%s: disassembly does not reassemble: %v", e.Name(), err)
		}
	}
	if n == 0 {
		t.Error("no sample kernels found")
	}
}
