package asm

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/armlite"
)

// vectorSum is the dissertation Fig. 25 loop shape.
const vectorSum = `
        mov   r5, #4096       ; &a
        mov   r10, #8192      ; &b
        mov   r2, #12288      ; &v
        mov   r4, #4192       ; stop address (24 words past &a)
loop:   ldr   r3, [r5], #4
        ldr   r1, [r10], #4
        add   r3, r3, r1
        str   r3, [r2], #4
        cmp   r5, r4
        ble   loop
        halt
`

func TestAssembleVectorSum(t *testing.T) {
	p, err := Assemble("vsum", vectorSum)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 11 {
		t.Fatalf("len(code) = %d, want 11", len(p.Code))
	}
	if p.Labels["loop"] != 4 {
		t.Errorf("label loop = %d, want 4", p.Labels["loop"])
	}
	ld := p.Code[4]
	if ld.Op != armlite.OpLdr || ld.Rd != armlite.R3 ||
		ld.Mem.Base != armlite.R5 || ld.Mem.Kind != armlite.AddrPostIndex ||
		ld.Mem.Offset != 4 || !ld.Mem.Writeback {
		t.Errorf("ldr parsed wrong: %+v", ld)
	}
	br := p.Code[9]
	if br.Op != armlite.OpB || br.Cond != armlite.CondLE || br.Target != 4 {
		t.Errorf("ble parsed wrong: %+v", br)
	}
}

func TestAssembleVector(t *testing.T) {
	src := `
        vld1.32 q8, [r5]!
        vld1.32 q9, [r10]!
        vadd.i32 q9, q9, q8
        vstr.32 q9, [r2]!
        vshr.i32 q9, q9, #8
        vdup.32 q1, r0
        vmax.f32 q2, q3, q4
        halt
`
	p, err := Assemble("vec", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Op != armlite.OpVld1 || p.Code[0].Qd != 8 || !p.Code[0].Mem.Writeback {
		t.Errorf("vld1 parsed wrong: %+v", p.Code[0])
	}
	if p.Code[2].Op != armlite.OpVadd || p.Code[2].DT != armlite.I32 {
		t.Errorf("vadd parsed wrong: %+v", p.Code[2])
	}
	if p.Code[3].Op != armlite.OpVst1 { // vstr synonym
		t.Errorf("vstr parsed wrong: %+v", p.Code[3])
	}
	if p.Code[4].Imm != 8 || !p.Code[4].HasImm {
		t.Errorf("vshr imm wrong: %+v", p.Code[4])
	}
	if p.Code[6].DT != armlite.VF32 {
		t.Errorf("vmax.f32 type wrong: %+v", p.Code[6])
	}
}

func TestMnemonicSuffixes(t *testing.T) {
	cases := []struct {
		src  string
		op   armlite.Op
		cond armlite.Cond
		s    bool
		dt   armlite.DataType
	}{
		{"bls somewhere", armlite.OpB, armlite.CondLS, false, armlite.Word},
		{"bl somewhere", armlite.OpBL, armlite.CondAL, false, armlite.Word},
		{"blt somewhere", armlite.OpB, armlite.CondLT, false, armlite.Word},
		{"ble somewhere", armlite.OpB, armlite.CondLE, false, armlite.Word},
		{"subs r0, r0, #1", armlite.OpSub, armlite.CondAL, true, armlite.Word},
		{"addne r0, r0, #1", armlite.OpAdd, armlite.CondNE, false, armlite.Word},
		{"ldrb r0, [r1]", armlite.OpLdr, armlite.CondAL, false, armlite.Byte},
		{"ldrh r0, [r1]", armlite.OpLdr, armlite.CondAL, false, armlite.Half},
		{"ldrf r0, [r1]", armlite.OpLdr, armlite.CondAL, false, armlite.F32},
		{"strb r0, [r1]", armlite.OpStr, armlite.CondAL, false, armlite.Byte},
		{"ldrbeq r0, [r1]", armlite.OpLdr, armlite.CondEQ, false, armlite.Byte},
		{"moveq r0, #1", armlite.OpMov, armlite.CondEQ, false, armlite.Word},
		{"bcs somewhere", armlite.OpB, armlite.CondHS, false, armlite.Word},
	}
	for _, c := range cases {
		src := c.src + "\nsomewhere: halt\n"
		p, err := Assemble("t", src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		in := p.Code[0]
		if in.Op != c.op || in.Cond != c.cond || in.SetFlags != c.s || in.DT != c.dt {
			t.Errorf("%q → op=%v cond=%v s=%v dt=%v; want op=%v cond=%v s=%v dt=%v",
				c.src, in.Op, in.Cond, in.SetFlags, in.DT, c.op, c.cond, c.s, c.dt)
		}
	}
}

func TestAddressingModes(t *testing.T) {
	src := `
        ldr r0, [r1]
        ldr r0, [r1, #8]
        ldr r0, [r1, r2]
        ldr r0, [r1, r2, lsl #2]
        ldr r0, [r1], #4
        str r0, [r1, #-4]
        halt
`
	p, err := Assemble("addr", src)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Code[0].Mem
	if m.Kind != armlite.AddrOffset || m.Offset != 0 {
		t.Errorf("[r1]: %+v", m)
	}
	m = p.Code[1].Mem
	if m.Kind != armlite.AddrOffset || m.Offset != 8 {
		t.Errorf("[r1,#8]: %+v", m)
	}
	m = p.Code[2].Mem
	if m.Kind != armlite.AddrRegOffset || m.Index != armlite.R2 || m.Shift != 0 {
		t.Errorf("[r1,r2]: %+v", m)
	}
	m = p.Code[3].Mem
	if m.Kind != armlite.AddrRegOffset || m.Shift != 2 {
		t.Errorf("[r1,r2,lsl#2]: %+v", m)
	}
	m = p.Code[4].Mem
	if m.Kind != armlite.AddrPostIndex || m.Offset != 4 || !m.Writeback {
		t.Errorf("[r1],#4: %+v", m)
	}
	m = p.Code[5].Mem
	if m.Offset != -4 {
		t.Errorf("[r1,#-4]: %+v", m)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r0, r1",
		"add r0, r1",           // missing operand
		"ldr r0, [r99]",        // bad register
		"b nowhere\nhalt",      // undefined label
		"x: halt\nx: halt",     // duplicate label
		"ldr r0, [r1, #4], #4", // post-index with pre-offset
		"vadd.q7 q0, q1, q2",   // bad vector type
		"mov r0, #zzz",         // bad immediate
		"ldr r0, [r1",          // unterminated bracket
	}
	for _, src := range cases {
		if _, err := Assemble("bad", src); err == nil {
			t.Errorf("Assemble(%q): expected error", src)
		}
	}
}

func TestComments(t *testing.T) {
	src := "mov r0, #1 ; semicolon\nmov r1, #2 @ at\nmov r2, #3 // slashes\nhalt"
	p, err := Assemble("c", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 4 {
		t.Fatalf("len = %d", len(p.Code))
	}
}

// TestRoundTrip checks that disassembly re-assembles to the identical
// program for a representative corpus.
func TestRoundTrip(t *testing.T) {
	srcs := []string{vectorSum, `
start:  mov r0, #0
        mov r1, #100
loop:   ldrb r2, [r3], #1
        cmp r2, #0
        beq done
        adds r0, r0, #1
        cmp r0, r1
        blt loop
done:   bl fn
        halt
fn:     sub r0, r0, #1
        bx lr
`, `
        vld1.8 q0, [r0]!
        vcgt.i8 q2, q0, q1
        vbsl.i8 q2, q0, q1
        vst1.8 q2, [r1]!
        vmov.i8 q3, q2
        vmin.i16 q4, q3, q2
        halt
`}
	for _, src := range srcs {
		p1, err := Assemble("rt", src)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := Assemble("rt2", p1.String())
		if err != nil {
			t.Fatalf("reassemble: %v\nsource was:\n%s", err, p1.String())
		}
		if len(p1.Code) != len(p2.Code) {
			t.Fatalf("length changed: %d vs %d", len(p1.Code), len(p2.Code))
		}
		for i := range p1.Code {
			a, b := p1.Code[i], p2.Code[i]
			a.Label, b.Label = "", "" // labels normalize to targets
			if a != b {
				t.Errorf("instr %d changed: %+v vs %+v", i, a, b)
			}
		}
	}
}

// Property: any immediate value round-trips through mov.
func TestQuickMovImmRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		src := "mov r0, #" + itoa(v) + "\nhalt"
		p, err := Assemble("q", src)
		if err != nil {
			return false
		}
		return p.Code[0].Imm == v && p.Code[0].HasImm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(v int32) string {
	var b strings.Builder
	if v < 0 {
		b.WriteByte('-')
		// careful with MinInt32
		u := uint32(-int64(v))
		writeUint(&b, u)
	} else {
		writeUint(&b, uint32(v))
	}
	return b.String()
}

func writeUint(b *strings.Builder, u uint32) {
	if u >= 10 {
		writeUint(b, u/10)
	}
	b.WriteByte(byte('0' + u%10))
}

// TestQuickInstrRoundTrip: random instructions built through the
// armlite constructors survive String → Assemble unchanged.
func TestQuickInstrRoundTrip(t *testing.T) {
	mk := []func(a, b, c uint8, imm int32) armlite.Instr{
		func(a, b, c uint8, imm int32) armlite.Instr {
			return armlite.MovImm(armlite.Reg(a%13), imm)
		},
		func(a, b, c uint8, imm int32) armlite.Instr {
			return armlite.ALUReg(armlite.OpAdd, armlite.Reg(a%13), armlite.Reg(b%13), armlite.Reg(c%13))
		},
		func(a, b, c uint8, imm int32) armlite.Instr {
			return armlite.ALUImm(armlite.OpEor, armlite.Reg(a%13), armlite.Reg(b%13), imm)
		},
		func(a, b, c uint8, imm int32) armlite.Instr {
			dts := []armlite.DataType{armlite.Word, armlite.Byte, armlite.Half}
			return armlite.LoadPost(dts[int(c)%3], armlite.Reg(a%13), armlite.Reg(b%13), imm%256)
		},
		func(a, b, c uint8, imm int32) armlite.Instr {
			return armlite.StoreOfs(armlite.Word, armlite.Reg(a%13), armlite.Reg(b%13), imm%4096)
		},
		func(a, b, c uint8, imm int32) armlite.Instr {
			return armlite.VALU(armlite.OpVadd, armlite.Word, armlite.VReg(a%16), armlite.VReg(b%16), armlite.VReg(c%16))
		},
		func(a, b, c uint8, imm int32) armlite.Instr {
			return armlite.VShiftImm(armlite.OpVshr, armlite.Byte, armlite.VReg(a%16), armlite.VReg(b%16), imm%8)
		},
		func(a, b, c uint8, imm int32) armlite.Instr {
			return armlite.CmpImm(armlite.Reg(a%13), imm)
		},
	}
	f := func(sel, a, b, c uint8, imm int32) bool {
		in := mk[int(sel)%len(mk)](a, b, c, imm)
		src := in.String() + "\nhalt"
		p, err := Assemble("rt", src)
		if err != nil {
			return false
		}
		got := p.Code[0]
		got.Label = ""
		want := in
		want.Label = ""
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
