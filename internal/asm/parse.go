package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/armlite"
)

// mnemonic table: base name → opcode. Condition, S and type suffixes
// are peeled off before lookup.
var baseOps = map[string]armlite.Op{
	"nop": armlite.OpNop, "halt": armlite.OpHalt,
	"mov": armlite.OpMov, "mvn": armlite.OpMvn,
	"add": armlite.OpAdd, "sub": armlite.OpSub, "rsb": armlite.OpRsb,
	"mul": armlite.OpMul, "mla": armlite.OpMla,
	"sdiv": armlite.OpSdiv, "udiv": armlite.OpUdiv,
	"and": armlite.OpAnd, "orr": armlite.OpOrr, "eor": armlite.OpEor,
	"bic": armlite.OpBic,
	"lsl": armlite.OpLsl, "lsr": armlite.OpLsr, "asr": armlite.OpAsr,
	"cmp": armlite.OpCmp, "cmn": armlite.OpCmn, "tst": armlite.OpTst,
	"fadd": armlite.OpFAdd, "fsub": armlite.OpFSub,
	"fmul": armlite.OpFMul, "fdiv": armlite.OpFDiv, "fcmp": armlite.OpFCmp,
	"ldr": armlite.OpLdr, "str": armlite.OpStr,
	"b": armlite.OpB, "bl": armlite.OpBL, "bx": armlite.OpBX,
	"vld1": armlite.OpVld1, "vldr": armlite.OpVld1,
	"vst1": armlite.OpVst1, "vstr": armlite.OpVst1,
	"vadd": armlite.OpVadd, "vsub": armlite.OpVsub, "vmul": armlite.OpVmul,
	"vand": armlite.OpVand, "vorr": armlite.OpVorr, "veor": armlite.OpVeor,
	"vmin": armlite.OpVmin, "vmax": armlite.OpVmax,
	"vshl": armlite.OpVshl, "vshr": armlite.OpVshr,
	"vdup": armlite.OpVdup, "vceq": armlite.OpVceq, "vcgt": armlite.OpVcgt,
	"vbsl": armlite.OpVbsl, "vmov": armlite.OpVmov,
}

var condSuffixes = map[string]armlite.Cond{
	"eq": armlite.CondEQ, "ne": armlite.CondNE,
	"lt": armlite.CondLT, "le": armlite.CondLE,
	"gt": armlite.CondGT, "ge": armlite.CondGE,
	"mi": armlite.CondMI, "pl": armlite.CondPL,
	"hs": armlite.CondHS, "lo": armlite.CondLO,
	"hi": armlite.CondHI, "ls": armlite.CondLS,
	"cs": armlite.CondHS, "cc": armlite.CondLO,
	"al": armlite.CondAL,
}

var vecTypes = map[string]armlite.DataType{
	"i8": armlite.I8, "8": armlite.I8, "u8": armlite.I8, "s8": armlite.I8,
	"i16": armlite.I16, "16": armlite.I16, "u16": armlite.I16, "s16": armlite.I16,
	"i32": armlite.I32, "32": armlite.I32, "u32": armlite.I32, "s32": armlite.I32,
	"f32": armlite.VF32,
}

// parseInstr parses one instruction line (label already stripped).
func parseInstr(s string) (armlite.Instr, error) {
	mn := s
	rest := ""
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mn, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	mn = strings.ToLower(mn)

	// Vector type suffix: "vadd.i32" → ("vadd", I32).
	var dt armlite.DataType
	var hasVT bool
	if dot := strings.Index(mn, "."); dot >= 0 {
		t, ok := vecTypes[mn[dot+1:]]
		if !ok {
			return armlite.Instr{}, fmt.Errorf("unknown vector type %q", mn[dot+1:])
		}
		dt, hasVT = t, true
		mn = mn[:dot]
	}

	op, cond, setFlags, memDT, err := decodeMnemonic(mn)
	if err != nil {
		return armlite.Instr{}, err
	}
	in := armlite.NewInstr(op)
	in.Cond = cond
	in.SetFlags = setFlags
	if hasVT {
		in.DT = dt
	} else {
		in.DT = memDT
	}
	if err := parseOperands(&in, rest); err != nil {
		return armlite.Instr{}, fmt.Errorf("%s: %w", mn, err)
	}
	return in, nil
}

// decodeBase resolves a mnemonic with condition suffix already removed:
// exact opcode, ldr/str with a size letter, or an S-suffixed
// data-processing op. Branches never take an S suffix, which keeps
// "bls" unambiguous (b + LS, resolved by the caller).
func decodeBase(name string) (op armlite.Op, setFlags bool, dt armlite.DataType, ok bool) {
	if o, found := baseOps[name]; found {
		return o, false, armlite.Word, true
	}
	if strings.HasPrefix(name, "ldr") || strings.HasPrefix(name, "str") {
		if o, found := baseOps[name[:3]]; found && len(name) == 4 {
			switch name[3] {
			case 'b':
				return o, false, armlite.Byte, true
			case 'h':
				return o, false, armlite.Half, true
			case 'f':
				return o, false, armlite.F32, true
			}
		}
	}
	if strings.HasSuffix(name, "s") {
		if o, found := baseOps[name[:len(name)-1]]; found &&
			!o.SetsFlagsAlways() && !o.IsBranch() && o.IsALU() {
			return o, true, armlite.Word, true
		}
	}
	return 0, false, armlite.Word, false
}

// decodeMnemonic peels an optional condition suffix and resolves the
// base mnemonic. Condition-free interpretation wins when both parse
// ("bls" → b+LS because branches reject the S path; "movs" → mov+S
// because "vs" is not a supported condition here).
func decodeMnemonic(mn string) (op armlite.Op, cond armlite.Cond, setFlags bool, dt armlite.DataType, err error) {
	if o, s, d, ok := decodeBase(mn); ok {
		return o, armlite.CondAL, s, d, nil
	}
	if len(mn) > 2 {
		if c, isCond := condSuffixes[mn[len(mn)-2:]]; isCond {
			if o, s, d, ok := decodeBase(mn[:len(mn)-2]); ok {
				return o, c, s, d, nil
			}
		}
	}
	return 0, 0, false, 0, fmt.Errorf("unknown mnemonic %q", mn)
}

// splitOperands splits on commas not inside brackets:
// "r3, [r5, #4]" → ["r3", "[r5, #4]"].
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, c := range s {
		switch c {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}

func parseReg(s string) (armlite.Reg, error) {
	switch strings.ToLower(s) {
	case "sp", "r13":
		return armlite.SP, nil
	case "lr", "r14":
		return armlite.LR, nil
	case "pc", "r15":
		return armlite.PC, nil
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'R') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < int(armlite.NumRegs) {
			return armlite.Reg(n), nil
		}
	}
	return armlite.NoReg, fmt.Errorf("bad register %q", s)
}

func parseVReg(s string) (armlite.VReg, error) {
	if len(s) >= 2 && (s[0] == 'q' || s[0] == 'Q') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < armlite.NumVRegs {
			return armlite.VReg(n), nil
		}
	}
	return armlite.NoVReg, fmt.Errorf("bad vector register %q", s)
}

func parseImm(s string) (int32, error) {
	s = strings.TrimPrefix(s, "#")
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return int32(v), nil
}

// parseOp2 fills the flexible second operand: register or immediate.
func parseOp2(in *armlite.Instr, s string) error {
	if strings.HasPrefix(s, "#") {
		v, err := parseImm(s)
		if err != nil {
			return err
		}
		in.Imm, in.HasImm = v, true
		return nil
	}
	r, err := parseReg(s)
	if err != nil {
		return err
	}
	in.Rm = r
	return nil
}

// parseMem parses "[rn]", "[rn, #off]", "[rn, rm]", "[rn, rm, lsl #s]",
// "[rn], #off" (post-index), the scalar pre-index "[rn, #off]!" form
// and the vector "[rn]!" writeback form. Register-offset operands
// reject writeback here (the ISA has no such form) so the mismatch is
// a parse error instead of silently dropped at execution time.
func parseMem(s string) (armlite.Mem, error) {
	m := armlite.Mem{Base: armlite.NoReg, Index: armlite.NoReg}
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") {
		return m, fmt.Errorf("bad memory operand %q", s)
	}
	close := strings.Index(s, "]")
	if close < 0 {
		return m, fmt.Errorf("unterminated memory operand %q", s)
	}
	inner := splitOperands(s[1:close])
	after := strings.TrimSpace(s[close+1:])
	if len(inner) == 0 {
		return m, fmt.Errorf("empty memory operand %q", s)
	}
	base, err := parseReg(inner[0])
	if err != nil {
		return m, err
	}
	m.Base = base
	switch len(inner) {
	case 1:
	case 2:
		if strings.HasPrefix(inner[1], "#") {
			off, err := parseImm(inner[1])
			if err != nil {
				return m, err
			}
			m.Offset = off
		} else {
			idx, err := parseReg(inner[1])
			if err != nil {
				return m, err
			}
			m.Index = idx
			m.Kind = armlite.AddrRegOffset
		}
	case 3:
		idx, err := parseReg(inner[1])
		if err != nil {
			return m, err
		}
		sh := strings.Fields(strings.ToLower(inner[2]))
		if len(sh) != 2 || sh[0] != "lsl" {
			return m, fmt.Errorf("bad shift %q", inner[2])
		}
		amt, err := parseImm(sh[1])
		if err != nil {
			return m, err
		}
		m.Index = idx
		m.Shift = uint8(amt)
		m.Kind = armlite.AddrRegOffset
	default:
		return m, fmt.Errorf("too many fields in %q", s)
	}
	switch {
	case after == "":
	case after == "!":
		if m.Kind == armlite.AddrRegOffset {
			return m, fmt.Errorf("writeback is not supported with a register offset in %q", s)
		}
		m.Writeback = true
	case strings.HasPrefix(after, ","):
		off, err := parseImm(strings.TrimSpace(after[1:]))
		if err != nil {
			return m, err
		}
		if m.Kind != armlite.AddrOffset || m.Offset != 0 {
			return m, fmt.Errorf("post-index with pre-offset in %q", s)
		}
		m.Offset = off
		m.Kind = armlite.AddrPostIndex
		m.Writeback = true
	default:
		return m, fmt.Errorf("trailing junk %q", after)
	}
	return m, nil
}

func parseOperands(in *armlite.Instr, rest string) error {
	ops := splitOperands(rest)
	wantN := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("want %d operands, got %d", n, len(ops))
		}
		return nil
	}
	var err error
	switch in.Op {
	case armlite.OpNop, armlite.OpHalt:
		return wantN(0)

	case armlite.OpMov, armlite.OpMvn:
		if err = wantN(2); err != nil {
			return err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		return parseOp2(in, ops[1])

	case armlite.OpCmp, armlite.OpCmn, armlite.OpTst, armlite.OpFCmp:
		if err = wantN(2); err != nil {
			return err
		}
		if in.Rn, err = parseReg(ops[0]); err != nil {
			return err
		}
		return parseOp2(in, ops[1])

	case armlite.OpMla:
		if err = wantN(4); err != nil {
			return err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		if in.Rn, err = parseReg(ops[1]); err != nil {
			return err
		}
		if in.Rm, err = parseReg(ops[2]); err != nil {
			return err
		}
		in.Ra, err = parseReg(ops[3])
		return err

	case armlite.OpAdd, armlite.OpSub, armlite.OpRsb, armlite.OpMul,
		armlite.OpSdiv, armlite.OpUdiv, armlite.OpAnd, armlite.OpOrr,
		armlite.OpEor, armlite.OpBic, armlite.OpLsl, armlite.OpLsr,
		armlite.OpAsr, armlite.OpFAdd, armlite.OpFSub, armlite.OpFMul,
		armlite.OpFDiv:
		if err = wantN(3); err != nil {
			return err
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		if in.Rn, err = parseReg(ops[1]); err != nil {
			return err
		}
		return parseOp2(in, ops[2])

	case armlite.OpLdr, armlite.OpStr:
		// Post-indexed "[rn], #imm" splits at the top-level comma;
		// rejoin everything after the data register.
		if len(ops) < 2 || len(ops) > 3 {
			return fmt.Errorf("want 2 operands, got %d", len(ops))
		}
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return err
		}
		in.Mem, err = parseMem(strings.Join(ops[1:], ", "))
		return err

	case armlite.OpB, armlite.OpBL:
		if err = wantN(1); err != nil {
			return err
		}
		if n, convErr := strconv.Atoi(ops[0]); convErr == nil {
			in.Target = n
			return nil
		}
		in.Label = ops[0]
		in.Target = -1
		return nil

	case armlite.OpBX:
		if err = wantN(1); err != nil {
			return err
		}
		in.Rn, err = parseReg(ops[0])
		return err

	case armlite.OpVld1, armlite.OpVst1:
		if err = wantN(2); err != nil {
			return err
		}
		if in.Qd, err = parseVReg(ops[0]); err != nil {
			return err
		}
		in.Mem, err = parseMem(ops[1])
		return err

	case armlite.OpVdup:
		if err = wantN(2); err != nil {
			return err
		}
		if in.Qd, err = parseVReg(ops[0]); err != nil {
			return err
		}
		in.Rn, err = parseReg(ops[1])
		return err

	case armlite.OpVmov:
		if err = wantN(2); err != nil {
			return err
		}
		if in.Qd, err = parseVReg(ops[0]); err != nil {
			return err
		}
		in.Qm, err = parseVReg(ops[1])
		return err

	case armlite.OpVshl, armlite.OpVshr:
		if err = wantN(3); err != nil {
			return err
		}
		if in.Qd, err = parseVReg(ops[0]); err != nil {
			return err
		}
		if in.Qn, err = parseVReg(ops[1]); err != nil {
			return err
		}
		in.Imm, err = parseImm(ops[2])
		in.HasImm = true
		return err

	default: // remaining vector three-operand forms
		if err = wantN(3); err != nil {
			return err
		}
		if in.Qd, err = parseVReg(ops[0]); err != nil {
			return err
		}
		if in.Qn, err = parseVReg(ops[1]); err != nil {
			return err
		}
		in.Qm, err = parseVReg(ops[2])
		return err
	}
}
