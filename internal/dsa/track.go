package dsa

import (
	"repro/internal/armlite"
)

// LoopKind classifies a detected loop — the taxonomy of Fig. 11 and
// the loop-type census of Article 3 Fig. 7.
type LoopKind int

// Loop kinds.
const (
	KindUnknown      LoopKind = iota
	KindCount                 // fixed range known at the loop entry
	KindFunction              // count loop containing a function call
	KindNested                // outer loop containing inner loops
	KindConditional           // loop with conditional code regions
	KindSentinel              // stop condition computed inside the body
	KindDynamicRange          // range recomputed between executions (type A)
	KindNonVectorizable
)

func (k LoopKind) String() string {
	switch k {
	case KindCount:
		return "count"
	case KindFunction:
		return "function"
	case KindNested:
		return "nested"
	case KindConditional:
		return "conditional"
	case KindSentinel:
		return "sentinel"
	case KindDynamicRange:
		return "dynamic-range"
	case KindNonVectorizable:
		return "non-vectorizable"
	default:
		return "unknown"
	}
}

// stage is the per-loop position in the DSA state machine (Fig. 12).
type stage int

const (
	stDetected  stage = iota // loop seen once; collecting iteration 2
	stCollected              // iteration 2 captured; analyzing iteration 3
	stMapping                // conditional loops: discovering conditions
	stDecided                // verdict reached (takeover requested or rejected)
)

func (s stage) String() string {
	switch s {
	case stDetected:
		return "loop-detection"
	case stCollected:
		return "data-collection"
	case stMapping:
		return "mapping"
	default:
		return "decided"
	}
}

// StepRec is one retired instruction inside a tracked iteration.
// Instr aliases the machine's program (see cpu.Record): the program
// is immutable while a machine runs, so retained records stay valid
// across iterations and takeovers.
type StepRec struct {
	PC       int
	Instr    *armlite.Instr
	Taken    bool
	HasMem   bool
	MemAddr  uint32
	MemSize  int
	MemStore bool
}

// maxIterRecords bounds how many instructions per iteration the DSA
// hardware can buffer; longer iterations are not analyzable.
const maxIterRecords = 8192

// memKey identifies one memory access site within an iteration:
// instruction address plus occurrence number (a function called twice
// per iteration executes the same load PC twice).
type memKey struct {
	pc  int
	occ int
}

// memObs is an address observation for a memory site at an iteration.
type memObs struct {
	iter int
	addr uint32
}

// pathInfo captures one control path through a conditional loop's
// body: the set of executed PCs (its signature) and the first two
// iterations observed taking it.
type pathInfo struct {
	sig      string // canonical signature of executed body PCs
	pcs      map[int]bool
	firstIt  int
	secondIt int
	recsA    []StepRec // records of the first observation
	memA     map[memKey]uint32
	memB     map[memKey]uint32
	analyzed bool
}

// track is the DSA's per-loop analysis state.
type track struct {
	id       int // loop ID = start PC (the back-branch target)
	branchPC int // the back-branch instruction address
	iter     int // completed iterations
	stage    stage
	kind     LoopKind

	inIteration bool
	callDepth   int // >0 while inside a function called from the body
	sawCall     bool
	hasInnerVec bool // an inner loop was vectorized inside this body
	innerLoops  bool // back-branches of other loops observed inside
	tooBig      bool
	exited      bool
	rejected    string // non-empty: rejection reason

	cur []StepRec // current iteration's records

	// Saved iterations for simple analysis (2 and 3).
	it2, it3 []StepRec

	// Register file snapshots at iteration ends.
	snapPrev, snapCur [armlite.NumRegs]uint32
	haveSnapPrev      bool

	// Per-register deltas between consecutive iteration ends; deltaOK
	// marks registers whose delta was identical across the observed
	// iterations (induction candidates).
	delta   [armlite.NumRegs]int64
	deltaOK [armlite.NumRegs]bool

	// Memory observations by site. memFree recycles the per-site
	// observation slices across reuses of a pooled track: clear(t.mem)
	// in reset would otherwise drop the slice backing with the map
	// entries, making every re-tracked loop (e.g. an outer loop
	// re-marked nested on each entry) allocate per site per entry.
	mem     map[memKey][]memObs
	memFree [][]memObs

	// Conditional-loop discovery.
	condSeen  bool
	paths     map[string]*pathInfo
	coverage  map[int]bool // body PCs executed by any iteration
	exitSeen  bool         // mid-body exit branch observed (sentinel hint)
	exitPC    int
	exitTaken bool

	// occ counts per-PC memory-site occurrences within the current
	// iteration (reset every iteration).
	occ map[int]int

	// Adaptive-policy baseline marks: machine ticks and modeled energy
	// at track creation (= the end of iteration 1), so iteration 2's
	// deltas sample the loop's scalar per-iteration cost. Zero outside
	// adaptive mode; set by the engine's takeTrack.
	tickMark   int64
	energyMark float64

	// trip is the derived range mechanism.
	trip *TripInfo

	// analysis is the final artifact on success.
	analysis *Analysis
}

func newTrack(id, branchPC int) *track {
	return &track{
		id:       id,
		branchPC: branchPC,
		iter:     1, // created at the end of the first iteration
		stage:    stDetected,
		mem:      make(map[memKey][]memObs),
		paths:    make(map[string]*pathInfo),
		coverage: make(map[int]bool),
	}
}

// reset reinitializes a pooled track for a new loop, retaining map and
// slice backing storage. Everything a decision could retain (analysis
// artifacts, path records) is copied out before a track is decided, so
// reuse cannot alias live state — see the engine's free list.
func (t *track) reset(id, branchPC int) {
	memFree := t.memFree
	for k, v := range t.mem {
		if cap(v) > 0 {
			memFree = append(memFree, v[:0])
		}
		delete(t.mem, k)
	}
	clear(t.paths)
	clear(t.coverage)
	if t.occ != nil {
		clear(t.occ)
	}
	mem, paths, coverage, occ := t.mem, t.paths, t.coverage, t.occ
	cur, it2, it3 := t.cur[:0], t.it2[:0], t.it3[:0]
	*t = track{
		id:       id,
		branchPC: branchPC,
		iter:     1,
		stage:    stDetected,
		mem:      mem,
		memFree:  memFree,
		paths:    paths,
		coverage: coverage,
		occ:      occ,
		cur:      cur,
		it2:      it2,
		it3:      it3,
	}
}

// bodyLen returns the static body size in instructions.
func (t *track) bodyLen() int { return t.branchPC - t.id + 1 }

// inBody reports whether pc lies in the loop's static body range.
func (t *track) inBody(pc int) bool { return pc >= t.id && pc <= t.branchPC }

// reject marks the loop non-vectorizable.
func (t *track) reject(reason string) {
	if t.rejected == "" {
		t.rejected = reason
	}
	t.kind = KindNonVectorizable
	t.stage = stDecided
}

// beginIteration starts collecting a new iteration.
func (t *track) beginIteration() {
	t.inIteration = true
	t.cur = t.cur[:0]
	t.callDepth = 0
}

// observe appends one record to the active iteration.
func (t *track) observe(r *StepRec, occCount map[int]int) {
	if !t.inIteration || t.stage == stDecided {
		return
	}
	if len(t.cur) >= maxIterRecords {
		t.tooBig = true
		t.reject("iteration-too-long")
		return
	}
	t.cur = append(t.cur, *r)
	if t.inBody(r.PC) {
		t.coverage[r.PC] = true
	}
	// Function-call bookkeeping: a BL leaving the body opens a call.
	switch r.Instr.Op {
	case armlite.OpBL:
		if r.Taken && !t.inBody(r.Instr.Target) {
			t.callDepth++
			t.sawCall = true
		}
	case armlite.OpBX:
		if t.callDepth > 0 {
			t.callDepth--
		}
	case armlite.OpB:
		if r.Taken && !t.inBody(r.Instr.Target) && t.callDepth == 0 && r.PC != t.branchPC {
			// Mid-body exit (sentinel break).
			t.exitSeen = true
			t.exitPC = r.PC
			t.exitTaken = true
		} else if !r.Taken && r.Instr.Cond != armlite.CondAL &&
			t.inBody(r.PC) && !t.inBody(r.Instr.Target) && t.callDepth == 0 && r.PC != t.branchPC {
			// A not-taken branch whose target leaves the body is a
			// sentinel exit check.
			t.exitSeen = true
			t.exitPC = r.PC
		} else if r.Taken && t.inBody(r.Instr.Target) && r.Instr.Cond != armlite.CondAL &&
			r.PC != t.branchPC && r.Instr.Target > r.PC {
			// Conditional forward branch within the body: conditional
			// code (an "instruction addressing gap", §4.6.4.1).
			t.condSeen = true
		} else if !r.Taken && r.Instr.Cond != armlite.CondAL &&
			t.inBody(r.PC) && t.inBody(r.Instr.Target) && r.PC != t.branchPC && r.Instr.Target > r.PC {
			// Even when not taken, a forward conditional branch marks
			// a potential condition region.
			t.condSeen = true
		}
	}
	// Memory observation. New sites take a recycled slice from the
	// pooled-track free list before falling back to append's growth.
	if r.HasMem {
		occ := occCount[r.PC]
		occCount[r.PC] = occ + 1
		k := memKey{pc: r.PC, occ: occ}
		s, ok := t.mem[k]
		if !ok {
			if n := len(t.memFree); n > 0 {
				s = t.memFree[n-1]
				t.memFree = t.memFree[:n-1]
			}
		}
		t.mem[k] = append(s, memObs{iter: t.iter + 1, addr: r.MemAddr})
	}
}

// signature canonicalizes the set of body PCs executed this iteration.
func (t *track) signature() (string, map[int]bool) {
	pcs := make(map[int]bool)
	buf := make([]byte, 0, t.bodyLen())
	for pc := t.id; pc <= t.branchPC; pc++ {
		hit := false
		for _, r := range t.cur {
			if r.PC == pc {
				hit = true
				break
			}
		}
		if hit {
			pcs[pc] = true
			buf = append(buf, '1')
		} else {
			buf = append(buf, '0')
		}
	}
	return string(buf), pcs
}

// covered reports whether every body PC has been executed by some
// observed iteration — the paper's "no pending conditions" test.
func (t *track) coveredAll() bool {
	for pc := t.id; pc <= t.branchPC; pc++ {
		if !t.coverage[pc] {
			return false
		}
	}
	return true
}
