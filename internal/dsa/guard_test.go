package dsa

import (
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
)

// verifyConfig returns the extended DSA with the differential oracle
// in the given mode.
func verifyConfig(fallback bool) Config {
	cfg := DefaultConfig()
	cfg.Verify = VerifyConfig{Enabled: true, Fallback: fallback}
	return cfg
}

// TestVerifyCleanTakeovers: with the oracle on, healthy takeovers are
// cross-checked, none diverge, and the result (state and speedup) is
// the same as an unverified DSA run.
func TestVerifyCleanTakeovers(t *testing.T) {
	prog := asm.MustAssemble("vsum", vectorSumSrc)
	ref := runScalar(t, prog, seedVectorSum)
	s := runDSA(t, prog, verifyConfig(false), seedVectorSum)

	checkWords(t, ref, s.M, 0x3000, 100, "v")
	st := s.Stats()
	if st.Takeovers == 0 {
		t.Fatal("no takeovers under verification")
	}
	if st.VerifiedTakeovers != st.Takeovers {
		t.Errorf("verified %d of %d takeovers", st.VerifiedTakeovers, st.Takeovers)
	}
	if st.Divergences != 0 || st.Fallbacks != 0 {
		t.Errorf("clean run reported divergences=%d fallbacks=%d", st.Divergences, st.Fallbacks)
	}

	// The confirmed speculative outcome must keep its SIMD timing: a
	// verified run reports the same wall clock as an unverified one
	// (the oracle is measurement-invisible hardware).
	plain := runDSA(t, prog, DefaultConfig(), seedVectorSum)
	if s.M.Ticks != plain.M.Ticks {
		t.Errorf("verified run ticks = %d, unverified = %d", s.M.Ticks, plain.M.Ticks)
	}
	if s.M.R != plain.M.R {
		t.Errorf("verified run registers differ from unverified run")
	}
}

// TestVerifySentinelAndConditional runs the oracle over the
// speculative takeover kinds.
func TestVerifySentinelAndConditional(t *testing.T) {
	prog := asm.MustAssemble("sentinel", sentinelSrc)
	setup := seedSentinel(100)
	ref := runScalar(t, prog, setup)
	s := runDSA(t, prog, verifyConfig(false), setup)
	if st := s.Stats(); st.VerifiedTakeovers == 0 || st.Divergences != 0 {
		t.Errorf("sentinel: verified=%d divergences=%d", st.VerifiedTakeovers, st.Divergences)
	}
	if s.M.R != ref.R {
		t.Errorf("sentinel: registers differ from scalar reference")
	}
}

// TestStepBudgetFallback: an absurdly small takeover budget trips the
// in-loop driver guard; the takeover unwinds and the loop re-runs
// scalar with a step-budget fallback recorded — the exact final state
// of a scalar run.
func TestStepBudgetFallback(t *testing.T) {
	prog := asm.MustAssemble("sentinel", sentinelSrc)
	setup := seedSentinel(100)
	ref := runScalar(t, prog, setup)

	cfg := DefaultConfig()
	cfg.TakeoverStepBudget = 3
	s := runDSA(t, prog, cfg, setup)
	st := s.Stats()
	if st.Fallbacks == 0 || st.FallbackReasons["step-budget"] == 0 {
		t.Fatalf("no step-budget fallback: fallbacks=%d reasons=%v", st.Fallbacks, st.FallbackReasons)
	}
	if s.M.R != ref.R || s.M.Ticks == 0 {
		t.Errorf("fallback run did not land in the scalar final state")
	}
	checkWords(t, ref, s.M, 0x2000, 32, "out")
}

// TestFaultExecutorErrorFallsBack: a hard executor fault mid-takeover
// rolls back precisely, blacklists the loop, and the program still
// produces the scalar result.
func TestFaultExecutorErrorFallsBack(t *testing.T) {
	prog := asm.MustAssemble("vsum", vectorSumSrc)
	ref := runScalar(t, prog, seedVectorSum)

	cfg := DefaultConfig()
	cfg.Fault = FaultConfig{Kind: FaultExecutorError}
	s := runDSA(t, prog, cfg, seedVectorSum)
	st := s.Stats()
	if st.FallbackReasons["fault:executor-error"] == 0 {
		t.Fatalf("fallback reasons = %v", st.FallbackReasons)
	}
	checkWords(t, ref, s.M, 0x3000, 100, "v")
	if s.M.R != ref.R {
		t.Errorf("registers differ from scalar reference after fallback")
	}
	if s.Faults().Fired == 0 {
		t.Error("injector never fired")
	}
	// The blacklisted loop must not be offered again.
	entry, ok := s.E.Cache.Lookup(5)
	if !ok || entry.Vectorizable || entry.Reason != "fallback:fault:executor-error" {
		t.Errorf("blacklist entry = %+v", entry)
	}
}

// TestFaultSilentCorruptionCaughtByOracle: corrupt-cache and
// truncated-range faults are silent — no executor error — and only
// the differential oracle notices. In fallback mode the scalar
// oracle's state wins and the loop is pinned scalar.
func TestFaultSilentCorruptionCaughtByOracle(t *testing.T) {
	for _, kind := range []FaultKind{FaultCorruptCache, FaultSkewCIDP, FaultTruncateRange} {
		t.Run(kind.String(), func(t *testing.T) {
			prog := asm.MustAssemble("vsum", vectorSumSrc)
			ref := runScalar(t, prog, seedVectorSum)

			cfg := verifyConfig(true)
			cfg.Fault = FaultConfig{Kind: kind}
			s := runDSA(t, prog, cfg, seedVectorSum)
			st := s.Stats()
			if st.FallbackReasons["fault:"+kind.String()] == 0 {
				t.Fatalf("fallback reasons = %v", st.FallbackReasons)
			}
			checkWords(t, ref, s.M, 0x3000, 100, "v")
			if s.M.R != ref.R {
				t.Errorf("registers differ from scalar reference after oracle fallback")
			}
		})
	}
}

// TestVerifyHardModeSurfacesDivergence: without Fallback, the oracle
// reports the first divergence as a hard error naming the loop.
func TestVerifyHardModeSurfacesDivergence(t *testing.T) {
	prog := asm.MustAssemble("vsum", vectorSumSrc)
	s, err := NewSystem(prog, cpu.DefaultConfig(), func() Config {
		cfg := verifyConfig(false)
		cfg.Fault = FaultConfig{Kind: FaultTruncateRange}
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	seedVectorSum(s.M)
	err = s.Run()
	var div *Divergence
	if !errors.As(err, &div) {
		t.Fatalf("Run() = %v, want *Divergence", err)
	}
	if div.LoopID != 5 {
		t.Errorf("divergence loop = %d, want 5", div.LoopID)
	}
	if s.Stats().Divergences == 0 {
		t.Error("divergence not counted")
	}
}

// TestFaultEveryN: only every Nth takeover is faulted; the others
// commit normally.
func TestFaultEveryN(t *testing.T) {
	prog := asm.MustAssemble("vsum", vectorSumSrc)
	cfg := DefaultConfig()
	cfg.Fault = FaultConfig{Kind: FaultExecutorError, EveryN: 2}
	s := runDSA(t, prog, cfg, seedVectorSum)
	f := s.Faults()
	if f.Seen == 0 || f.Fired != f.Seen/2 {
		t.Errorf("seen=%d fired=%d, want fired=seen/2", f.Seen, f.Fired)
	}
}

func TestParseFaultKind(t *testing.T) {
	for _, k := range []FaultKind{FaultNone, FaultCorruptCache, FaultSkewCIDP, FaultTruncateRange, FaultExecutorError} {
		got, err := ParseFaultKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseFaultKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseFaultKind("bitrot"); err == nil {
		t.Error("ParseFaultKind accepted an unknown kind")
	}
}
