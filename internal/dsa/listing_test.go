package dsa

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
)

// TestListingExecutesEquivalently proves the DSA's generated SIMD
// statements are real code: the Fig. 25 listing, wrapped in a chunk
// loop and executed by the plain machine decoder, produces exactly the
// bytes the DSA's internal executor produced.
func TestListingExecutesEquivalently(t *testing.T) {
	prog := asm.MustAssemble("vsum", vectorSumSrc)

	// DSA run to obtain the generated listing and the reference output.
	s := runDSA(t, prog, DefaultConfig(), seedVectorSum)
	entry, ok := s.E.Cache.Lookup(prog.Labels["loop"])
	if !ok {
		t.Fatal("loop not cached")
	}
	listing := entry.Analysis.Plan().Listing
	want, _ := s.M.Mem.ReadWords(0x3000, 100)

	// Wrap the listing in a driver: bases at the loop's start state,
	// 25 chunks of 4 iterations cover the full 100.
	var b strings.Builder
	b.WriteString("        mov   r5, #0x1000\n")
	b.WriteString("        mov   r10, #0x2000\n")
	b.WriteString("        mov   r2, #0x3000\n")
	b.WriteString("        mov   r6, #25\n")
	b.WriteString("chunk:\n")
	for _, in := range listing {
		fmt.Fprintf(&b, "        %s\n", in.String())
	}
	b.WriteString("        subs  r6, r6, #1\n")
	b.WriteString("        bne   chunk\n")
	b.WriteString("        halt\n")

	driver, err := asm.Assemble("driver", b.String())
	if err != nil {
		t.Fatalf("listing does not assemble: %v\n%s", err, b.String())
	}
	m := cpu.MustNew(driver, cpu.DefaultConfig())
	seedVectorSum(m)
	if err := m.Run(nil); err != nil {
		t.Fatalf("listing driver failed: %v", err)
	}
	got, _ := m.Mem.ReadWords(0x3000, 100)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("word %d = %d, want %d (listing/executor divergence)", i, got[i], want[i])
		}
	}
	if m.Counts.VecOps == 0 {
		t.Fatal("driver ran no vector ops")
	}
}
