package dsa

import (
	"testing"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
)

// TestConditionalMappedFallback exercises the per-iteration mapped
// execution mode (the paper's literal Fig. 21/22 mechanism): the guard
// uses TST, which the full-speculation extractor does not model, so the
// system falls back to scalar guards + array-map commits.
func TestConditionalMappedFallback(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
        mov   r4, #128
loop:   ldrb  r3, [r5, r0]
        tst   r3, #1
        beq   evenL
        add   r6, r3, #111
        mul   r6, r6, r3
        strb  r6, [r2, r0]
        b     endif
evenL:  sub   r6, r3, #7
        eor   r6, r6, #222
        strb  r6, [r2, r0]
endif:  add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`
	prog := asm.MustAssemble("mapped", src)
	setup := func(m *cpu.Machine) {
		vals := make([]byte, 160)
		for i := range vals {
			vals[i] = byte(i*3 + 1)
		}
		m.Mem.WriteBytes(0x1000, vals)
	}
	ref := runScalar(t, prog, setup)
	s := runDSA(t, prog, DefaultConfig(), setup)
	wantB, _ := ref.Mem.ReadBytes(0x3000, 128)
	gotB, _ := s.M.Mem.ReadBytes(0x3000, 128)
	for i := range wantB {
		if wantB[i] != gotB[i] {
			t.Fatalf("mapped conditional byte %d = %d, want %d", i, gotB[i], wantB[i])
		}
	}
	st := s.Stats()
	if st.ByKind[KindConditional] != 1 {
		t.Fatalf("census=%v rejections=%v", st.ByKind, st.RejectedReasons)
	}
	entry, _ := s.E.Cache.Lookup(prog.Labels["loop"])
	if entry.Analysis.Cond.Vec != nil {
		t.Fatal("tst guard must not be full-speculation vectorizable")
	}
	if st.ArrayMapAccesses == 0 {
		t.Error("mapped mode must exercise the array maps")
	}
}

// TestConditionalVecMode confirms the full-speculation mode engages for
// a cmp-guarded conditional and reports the vectorized guard plan.
func TestConditionalVecMode(t *testing.T) {
	prog := asm.MustAssemble("cond", conditionalSrc)
	s := runDSA(t, prog, DefaultConfig(), seedConditional)
	entry, ok := s.E.Cache.Lookup(prog.Labels["loop"])
	if !ok {
		t.Fatal("not cached")
	}
	cv := entry.Analysis.Cond.Vec
	if cv == nil {
		t.Fatal("cmp guard should enable full speculation")
	}
	if cv.Taken == nil || cv.Fall == nil {
		t.Fatal("both arms should be present for if/else")
	}
	if cv.Cond != armlite.CondLE {
		t.Errorf("taken condition = %v, want le", cv.Cond)
	}
}

// TestCountDownLoop: subs/bne loop closing (the flag-setter is the
// induction update itself).
func TestCountDownLoop(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #77
loop:   ldr   r3, [r5], #4
        add   r3, r3, #9
        str   r3, [r2], #4
        subs  r0, r0, #1
        bne   loop
        halt
`
	prog := asm.MustAssemble("countdown", src)
	ref := runScalar(t, prog, seedVectorSum)
	s := runDSA(t, prog, DefaultConfig(), seedVectorSum)
	checkWords(t, ref, s.M, 0x3000, 77, "countdown out")
	if s.M.R[armlite.R0] != 0 {
		t.Errorf("counter = %d, want 0", s.M.R[armlite.R0])
	}
	if s.Stats().Takeovers != 1 {
		t.Fatalf("takeovers=%d rejections=%v", s.Stats().Takeovers, s.Stats().RejectedReasons)
	}
}

// TestUnsignedLoopBound: unsigned compare conditions (blo) derive trip
// counts too.
func TestUnsignedLoopBound(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
        mov   r4, #60
loop:   ldr   r3, [r5], #4
        eor   r3, r3, #0xFF
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r4
        blo   loop
        halt
`
	prog := asm.MustAssemble("unsigned", src)
	ref := runScalar(t, prog, seedVectorSum)
	s := runDSA(t, prog, DefaultConfig(), seedVectorSum)
	checkWords(t, ref, s.M, 0x3000, 60, "unsigned out")
	if s.Stats().Takeovers != 1 {
		t.Fatalf("takeovers=%d rejections=%v", s.Stats().Takeovers, s.Stats().RejectedReasons)
	}
}

// TestMixedWidthRejected: byte loads feeding word stores must reject
// with the Table 1 line 9 reason.
func TestMixedWidthRejected(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
loop:   ldrb  r3, [r5], #1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #40
        blt   loop
        halt
`
	prog := asm.MustAssemble("mixed", src)
	ref := runScalar(t, prog, seedVectorSum)
	s := runDSA(t, prog, DefaultConfig(), seedVectorSum)
	checkWords(t, ref, s.M, 0x3000, 40, "mixed out")
	if s.Stats().Takeovers != 0 {
		t.Error("mixed widths must not vectorize")
	}
	if s.Stats().RejectedReasons["mixed-element-widths"] == 0 {
		t.Errorf("rejections = %v", s.Stats().RejectedReasons)
	}
}

// TestCarryAroundScalarRejected: an accumulator register carried across
// iterations (Table 1 line 5).
func TestCarryAroundScalarRejected(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
        mov   r7, #0
loop:   ldr   r3, [r5], #4
        add   r7, r7, r3
        str   r7, [r2], #4
        add   r0, r0, #1
        cmp   r0, #50
        blt   loop
        halt
`
	prog := asm.MustAssemble("carry", src)
	ref := runScalar(t, prog, seedVectorSum)
	s := runDSA(t, prog, DefaultConfig(), seedVectorSum)
	checkWords(t, ref, s.M, 0x3000, 50, "carry out")
	if s.Stats().Takeovers != 0 {
		t.Error("prefix-sum must not vectorize")
	}
}

// TestNonContiguousRejected: stride-8 access (every other element) is
// the paper's "indirect addressing / no NEON pattern" case.
func TestNonContiguousRejected(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
loop:   ldr   r3, [r5], #8
        add   r3, r3, #1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #30
        blt   loop
        halt
`
	prog := asm.MustAssemble("stride", src)
	ref := runScalar(t, prog, seedVectorSum)
	s := runDSA(t, prog, DefaultConfig(), seedVectorSum)
	checkWords(t, ref, s.M, 0x3000, 30, "stride out")
	if s.Stats().Takeovers != 0 {
		t.Error("non-unit stride must not vectorize")
	}
	if s.Stats().RejectedReasons["non-contiguous-access"] == 0 {
		t.Errorf("rejections = %v", s.Stats().RejectedReasons)
	}
}

// TestVCacheOverflowRejected: an iteration touching more addresses than
// the 1 kB verification cache holds.
func TestVCacheOverflowRejected(t *testing.T) {
	// One iteration performs 8 memory accesses; shrink the V-cache to
	// 4 entries to force the overflow.
	src := `
        mov   r5, #0x1000
        mov   r6, #0x2000
        mov   r7, #0x3000
        mov   r8, #0x4000
        mov   r2, #0x5000
        mov   r0, #0
loop:   ldr   r3, [r5], #4
        ldr   r4, [r6], #4
        add   r3, r3, r4
        ldr   r4, [r7], #4
        add   r3, r3, r4
        ldr   r4, [r8], #4
        add   r3, r3, r4
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #40
        blt   loop
        halt
`
	prog := asm.MustAssemble("vcache", src)
	cfg := DefaultConfig()
	cfg.VCacheBytes = 4 * vcacheEntrySize
	ref := runScalar(t, prog, seedVectorSum)
	s := runDSA(t, prog, cfg, seedVectorSum)
	checkWords(t, ref, s.M, 0x5000, 40, "vcache out")
	if s.Stats().Takeovers != 0 {
		t.Error("overflowing loop must not vectorize")
	}
	if s.Stats().VCacheOverflows == 0 {
		t.Errorf("rejections = %v", s.Stats().RejectedReasons)
	}
	// With the paper's 1 kB V-cache the same loop fits and vectorizes.
	s2 := runDSA(t, prog, DefaultConfig(), seedVectorSum)
	checkWords(t, ref, s2.M, 0x5000, 40, "vcache ok out")
	if s2.Stats().Takeovers != 1 {
		t.Errorf("takeovers=%d rejections=%v", s2.Stats().Takeovers, s2.Stats().RejectedReasons)
	}
}

// TestPredicatedBodyRejected: conditionally executed data processing
// inside the body (no branch, cond suffix) is not extractable.
func TestPredicatedBodyRejected(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
loop:   ldr   r3, [r5], #4
        cmp   r3, #50
        addge r3, r3, #5
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #40
        blt   loop
        halt
`
	prog := asm.MustAssemble("pred", src)
	ref := runScalar(t, prog, seedVectorSum)
	s := runDSA(t, prog, DefaultConfig(), seedVectorSum)
	checkWords(t, ref, s.M, 0x3000, 40, "pred out")
	if s.Stats().Takeovers != 0 {
		t.Errorf("predicated body must not vectorize; rejections=%v", s.Stats().RejectedReasons)
	}
}

// TestInvariantLoadBroadcast: a loop-invariant load (stride 0) becomes
// a broadcast, like the paper's function-loop scaling constants.
func TestInvariantLoadBroadcast(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r7, #0x2000    ; &scale (same address every iteration)
        mov   r0, #0
loop:   ldr   r3, [r5], #4
        ldr   r4, [r7]
        mul   r3, r3, r4
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #50
        blt   loop
        halt
`
	prog := asm.MustAssemble("invload", src)
	setup := func(m *cpu.Machine) {
		seedVectorSum(m)
		m.Mem.Store(0x2000, 4, 7)
	}
	ref := runScalar(t, prog, setup)
	s := runDSA(t, prog, DefaultConfig(), setup)
	checkWords(t, ref, s.M, 0x3000, 50, "invariant load out")
	if s.Stats().Takeovers != 1 {
		t.Fatalf("takeovers=%d rejections=%v", s.Stats().Takeovers, s.Stats().RejectedReasons)
	}
}

// TestSentinelExitFirstIteration: the terminator is the very first
// element — the loop exits before any analysis completes.
func TestSentinelExitFirstIteration(t *testing.T) {
	prog := asm.MustAssemble("sentinel", sentinelSrc)
	setup := seedSentinel(0)
	ref := runScalar(t, prog, setup)
	s := runDSA(t, prog, DefaultConfig(), setup)
	if s.M.R[armlite.R2] != ref.R[armlite.R2] {
		t.Errorf("dst cursor = %#x, want %#x", s.M.R[armlite.R2], ref.R[armlite.R2])
	}
	if s.Stats().Takeovers != 0 {
		t.Error("no takeover possible on a zero-length string")
	}
}

// TestNestedLoopsInnerVectorizedEachEntry: the MM-style pattern — the
// inner loop re-vectorizes on every outer iteration through the cache.
func TestNestedLoopsInnerVectorizedEachEntry(t *testing.T) {
	src := `
        mov   r8, #0
        mov   r2, #0x3000
outer:  mov   r5, #0x1000
        mov   r0, #0
inner:  ldr   r3, [r5], #4
        add   r3, r3, r8
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #24
        blt   inner
        add   r8, r8, #1
        cmp   r8, #5
        blt   outer
        halt
`
	prog := asm.MustAssemble("nested", src)
	ref := runScalar(t, prog, seedVectorSum)
	s := runDSA(t, prog, DefaultConfig(), seedVectorSum)
	checkWords(t, ref, s.M, 0x3000, 24*5, "nested out")
	st := s.Stats()
	if st.Takeovers != 5 {
		t.Errorf("takeovers = %d, want 5 (one per outer iteration)", st.Takeovers)
	}
	if st.ByKind[KindNested] != 1 || st.ByKind[KindCount] != 1 {
		t.Errorf("census = %v", st.ByKind)
	}
	// r8 is loop-variant across entries but invariant within one entry:
	// the broadcast must be refreshed per entry.
	if st.DSACacheHits < 4 {
		t.Errorf("cache hits = %d, want ≥4", st.DSACacheHits)
	}
}

// TestIterationTooLongRejected: bodies beyond the DSA's record buffer.
func TestIterationTooLongRejected(t *testing.T) {
	// A function loop whose callee loops many times per iteration,
	// overflowing the per-iteration record budget.
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
loop:   ldr   r3, [r5], #4
        bl    busy
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #6
        blt   loop
        halt
busy:   mov   r7, #5000
bloop:  subs  r7, r7, #1
        bne   bloop
        bx    lr
`
	prog := asm.MustAssemble("toolong", src)
	ref := runScalar(t, prog, seedVectorSum)
	s := runDSA(t, prog, DefaultConfig(), seedVectorSum)
	checkWords(t, ref, s.M, 0x3000, 6, "toolong out")
	st := s.Stats()
	if st.RejectedReasons["iteration-too-long"] == 0 {
		t.Errorf("rejections = %v", st.RejectedReasons)
	}
}

// TestFloatConditionalVec: float compare guards full speculation.
func TestFloatConditionalVec(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r10, #0x2000
        mov   r2, #0x3000
        mov   r0, #0
        mov   r4, #40
loop:   ldrf  r3, [r5, r0, lsl #2]
        ldrf  r1, [r10, r0, lsl #2]
        fcmp  r3, r1
        ble   elseL
        strf  r3, [r2, r0, lsl #2]
        b     endif
elseL:  strf  r1, [r2, r0, lsl #2]
endif:  add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`
	prog := asm.MustAssemble("fcond", src)
	setup := func(m *cpu.Machine) {
		a := make([]float32, 48)
		b := make([]float32, 48)
		for i := range a {
			a[i] = float32(i%7) - 2.5
			b[i] = float32(i%5) - 1.25
		}
		m.Mem.WriteFloats(0x1000, a)
		m.Mem.WriteFloats(0x2000, b)
	}
	ref := runScalar(t, prog, setup)
	s := runDSA(t, prog, DefaultConfig(), setup)
	wantF, _ := ref.Mem.ReadFloats(0x3000, 40)
	gotF, _ := s.M.Mem.ReadFloats(0x3000, 40)
	for i := range wantF {
		if wantF[i] != gotF[i] {
			t.Fatalf("float %d = %v, want %v", i, gotF[i], wantF[i])
		}
	}
	if s.Stats().ByKind[KindConditional] != 1 {
		t.Fatalf("census=%v rejections=%v", s.Stats().ByKind, s.Stats().RejectedReasons)
	}
}

// TestGeneratedListingReassembles: the DSA's generated SIMD statements
// are legal armlite (they parse and validate).
func TestGeneratedListingReassembles(t *testing.T) {
	prog := asm.MustAssemble("vsum", vectorSumSrc)
	s := runDSA(t, prog, DefaultConfig(), seedVectorSum)
	entry, ok := s.E.Cache.Lookup(prog.Labels["loop"])
	if !ok {
		t.Fatal("not cached")
	}
	for _, in := range entry.Analysis.Plan().Listing {
		if err := in.Validate(); err != nil {
			t.Errorf("generated %q: %v", in.String(), err)
		}
	}
}

// TestElifChain: if/elif/else ladders (Fig. 22's multi-condition
// loops) vectorize in the mapped mode — the chain compares keep
// executing scalar while each arm's action is vectorized per window
// and committed through the array maps.
func TestElifChain(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
        mov   r4, #160
loop:   ldrb  r3, [r5, r0]
        cmp   r3, #80
        blt   caseA
        cmp   r3, #160
        blt   caseB
        add   r6, r3, #3
        mul   r6, r6, r3
        strb  r6, [r2, r0]
        b     endif
caseA:  add   r6, r3, #1
        mul   r6, r6, r3
        strb  r6, [r2, r0]
        b     endif
caseB:  add   r6, r3, #2
        mul   r6, r6, r3
        strb  r6, [r2, r0]
endif:  add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`
	prog := asm.MustAssemble("elif", src)
	setup := func(m *cpu.Machine) {
		vals := make([]byte, 200)
		for i := range vals {
			vals[i] = byte(i*7 + 5)
		}
		m.Mem.WriteBytes(0x1000, vals)
	}
	ref := runScalar(t, prog, setup)
	s := runDSA(t, prog, DefaultConfig(), setup)
	wantB, _ := ref.Mem.ReadBytes(0x3000, 160)
	gotB, _ := s.M.Mem.ReadBytes(0x3000, 160)
	for i := range wantB {
		if wantB[i] != gotB[i] {
			t.Fatalf("elif byte %d = %d, want %d", i, gotB[i], wantB[i])
		}
	}
	st := s.Stats()
	if st.ByKind[KindConditional] != 1 {
		t.Fatalf("census=%v rejections=%v", st.ByKind, st.RejectedReasons)
	}
	if st.Takeovers == 0 {
		t.Fatal("elif chain should vectorize in mapped mode")
	}
	entry, _ := s.E.Cache.Lookup(prog.Labels["loop"])
	if got := len(entry.Analysis.Cond.Paths); got != 3 {
		t.Errorf("paths = %d, want 3 (A, B, else)", got)
	}
	if entry.Analysis.Cond.Vec != nil {
		t.Error("3-arm chains must use the mapped mode, not guard vectorization")
	}
	if s.M.Ticks >= ref.Ticks {
		t.Errorf("no speedup: %d vs %d", s.M.Ticks, ref.Ticks)
	}
}

// TestConditionalGuardVecDisabled: with EnableGuardVec off, the mapped
// mode must carry a cmp-guarded conditional correctly (byte lanes and
// multi-instruction arms keep it above the profitability gate).
func TestConditionalGuardVecDisabled(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
        mov   r4, #144
loop:   ldrb  r3, [r5, r0]
        cmp   r3, #100
        ble   lowV
        add   r6, r3, #9
        mul   r6, r6, r3
        strb  r6, [r2, r0]
        b     endif
lowV:   sub   r6, r3, #5
        eor   r6, r6, #77
        strb  r6, [r2, r0]
endif:  add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`
	prog := asm.MustAssemble("gvoff", src)
	setup := func(m *cpu.Machine) {
		vals := make([]byte, 176)
		for i := range vals {
			vals[i] = byte(i*5 + 2)
		}
		m.Mem.WriteBytes(0x1000, vals)
	}
	ref := runScalar(t, prog, setup)
	cfg := DefaultConfig()
	cfg.EnableGuardVec = false
	s := runDSA(t, prog, cfg, setup)
	wantB, _ := ref.Mem.ReadBytes(0x3000, 144)
	gotB, _ := s.M.Mem.ReadBytes(0x3000, 144)
	for i := range wantB {
		if wantB[i] != gotB[i] {
			t.Fatalf("byte %d = %d, want %d", i, gotB[i], wantB[i])
		}
	}
	entry, ok := s.E.Cache.Lookup(prog.Labels["loop"])
	if !ok {
		t.Fatal("not cached")
	}
	if entry.Analysis.Cond.Vec != nil {
		t.Error("guard vectorization must be disabled")
	}
	if s.Stats().Takeovers == 0 {
		t.Error("mapped mode should still take over")
	}
	// The same kernel with guard vectorization on must also be exact.
	s2 := runDSA(t, prog, DefaultConfig(), setup)
	gotB2, _ := s2.M.Mem.ReadBytes(0x3000, 144)
	for i := range wantB {
		if wantB[i] != gotB2[i] {
			t.Fatalf("guardvec byte %d = %d, want %d", i, gotB2[i], wantB[i])
		}
	}
}

// TestArrayMapOverflowRejected: more conditional store slots than
// array maps (and free registers) — the §4.6.4.3 limitation.
func TestArrayMapOverflowRejected(t *testing.T) {
	// Each path stores to 3 distinct streams: 6 slots > 4 array maps
	// with zero spare registers configured.
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r7, #0x5000
        mov   r8, #0x7000
        mov   r0, #0
        mov   r4, #32
loop:   ldr   r3, [r5, r0, lsl #2]
        cmp   r3, #50
        ble   elseL
        str   r3, [r2, r0, lsl #2]
        str   r3, [r7, r0, lsl #2]
        str   r3, [r8, r0, lsl #2]
        b     endif
elseL:  str   r3, [r2, r0, lsl #2]
        str   r3, [r7, r0, lsl #2]
        str   r3, [r8, r0, lsl #2]
endif:  add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`
	prog := asm.MustAssemble("maps", src)
	ref := runScalar(t, prog, seedConditional)
	cfg := DefaultConfig()
	cfg.EnableGuardVec = false // force the array-map path
	cfg.ArrayMaps = 4
	s := runDSA(t, prog, cfg, seedConditional)
	checkWords(t, ref, s.M, 0x3000, 32, "maps out")
	// 6 slots vs 4 maps + free NEON registers: per §4.6.4.3 unused Q
	// registers may absorb the overflow, so this configuration still
	// vectorizes; shrinking the effective budget rejects it.
	cfg2 := cfg
	cfg2.ArrayMaps = -20 // leave no budget even with 16 free regs
	s2 := runDSA(t, prog, cfg2, seedConditional)
	checkWords(t, ref, s2.M, 0x3000, 32, "maps out 2")
	if s2.Stats().RejectedReasons["array-map-overflow"] == 0 {
		t.Errorf("rejections = %v", s2.Stats().RejectedReasons)
	}
	_ = s
}

// TestMultiOccurrenceFunctionLoop: a function called twice per
// iteration produces multi-occurrence memory sites whose per-stream
// stride (8) exceeds the element size — pairwise access is genuinely
// not NEON-contiguous, so the DSA must reject it and stay exact.
func TestMultiOccurrenceFunctionLoop(t *testing.T) {
	src := `
        mov   r9, #0
outer:  mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
loop:   bl    fetch          ; r3 = *r5++
        mov   r7, r3
        bl    fetch          ; r3 = *r5++ (same load PC, occurrence 2)
        add   r3, r3, r7
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #30
        blt   loop
        add   r9, r9, #1
        cmp   r9, #2
        blt   outer
        halt
fetch:  ldr   r3, [r5], #4
        bx    lr
`
	prog := asm.MustAssemble("multiocc", src)
	setup := func(m *cpu.Machine) {
		vals := make([]int32, 128)
		for i := range vals {
			vals[i] = int32(i*11 - 40)
		}
		m.Mem.WriteWords(0x1000, vals)
	}
	ref := runScalar(t, prog, setup)
	s := runDSA(t, prog, DefaultConfig(), setup)
	checkWords(t, ref, s.M, 0x3000, 30, "multiocc out")
	st := s.Stats()
	if st.Takeovers != 0 {
		t.Errorf("interleaved pairwise loop must not vectorize; takeovers=%d", st.Takeovers)
	}
	if st.RejectedReasons["non-contiguous-access"] == 0 {
		t.Errorf("rejections = %v", st.RejectedReasons)
	}
}

// TestPartialDisabledOnHitRevalidation: a cached loop whose new range
// introduces a dependency must be caught by the hit-path CID
// revalidation.
func TestPartialDisabledOnHitRevalidation(t *testing.T) {
	// First entry: short range, streams don't collide. Second entry:
	// the (dynamic) range extends into the store stream.
	src := `
        mov   r9, #12         ; first range: loads stay clear
        mov   r8, #0
outer:  mov   r5, #0x1000
        mov   r2, #0x1030     ; stores 12 words ahead
        mov   r0, #0
loop:   ldr   r3, [r5], #4
        add   r3, r3, #2
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r9
        blt   loop
        mov   r9, #40         ; second range: loads reach the stores
        add   r8, r8, #1
        cmp   r8, #2
        blt   outer
        halt
`
	prog := asm.MustAssemble("revalidate", src)
	setup := func(m *cpu.Machine) {
		vals := make([]int32, 80)
		for i := range vals {
			vals[i] = int32(i)
		}
		m.Mem.WriteWords(0x1000, vals)
	}
	ref := runScalar(t, prog, setup)
	cfg := DefaultConfig()
	cfg.EnablePartial = false
	s := runDSA(t, prog, cfg, setup)
	checkWords(t, ref, s.M, 0x1000, 80, "revalidate memory")
}

// TestEngineReport: the cache report lists verdicts and listings.
func TestEngineReport(t *testing.T) {
	prog := asm.MustAssemble("vsum", vectorSumSrc)
	s := runDSA(t, prog, DefaultConfig(), seedVectorSum)
	rep := s.E.Report()
	if len(rep) != 1 {
		t.Fatalf("report entries = %d, want 1", len(rep))
	}
	r := rep[0]
	if !r.Vectorizable || r.Kind != KindCount || r.Lanes != 4 || r.ElemDT != "i32" {
		t.Errorf("report = %+v", r)
	}
	if len(r.Listing) != 4 {
		t.Errorf("listing = %v", r.Listing)
	}
}
