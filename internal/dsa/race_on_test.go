//go:build race

package dsa

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation allocates and breaks AllocsPerRun
// expectations.
const raceEnabled = true
