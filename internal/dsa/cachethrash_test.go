package dsa

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
)

// TestDSACacheThrash drives 32 distinct hot loops through the DSA
// cache: a 1 kB cache (16 entries) thrashes and never hits, while the
// paper's 8 kB configuration serves every re-entry.
func TestDSACacheThrash(t *testing.T) {
	var src string
	src += "        mov   r8, #0\nouter:\n"
	for l := 0; l < 32; l++ {
		src += fmt.Sprintf(`
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
loop%d:  ldr   r3, [r5], #4
        add   r3, r3, #1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #32
        blt   loop%d
`, l, l)
	}
	src += "\n        add   r8, r8, #1\n        cmp   r8, #4\n        blt   outer\n        halt\n"
	prog := asm.MustAssemble("many", src)
	for _, kb := range []int{1, 8} {
		cfg := DefaultConfig()
		cfg.DSACacheBytes = kb << 10
		s, err := NewSystem(prog, cpu.DefaultConfig(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.M.Mem.WriteWords(0x1000, make([]int32, 64))
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		switch kb {
		case 1:
			if st.DSACacheHits != 0 {
				t.Errorf("1 kB cache: hits = %d, want 0 (thrash)", st.DSACacheHits)
			}
		case 8:
			if st.DSACacheHits != 96 {
				t.Errorf("8 kB cache: hits = %d, want 96 (3 re-entry passes × 32 loops)", st.DSACacheHits)
			}
		}
		if st.Takeovers != 128 {
			t.Errorf("%d kB: takeovers = %d, want 128", kb, st.Takeovers)
		}
		got, err := s.M.Mem.ReadWords(0x3000, 32)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != 1 { // every pass writes out[i] = in[i] + 1 over zeroed input
				t.Fatalf("%d kB: out[%d] = %d, want 1", kb, i, v)
			}
		}
	}
}
