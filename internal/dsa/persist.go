package dsa

import (
	"fmt"
	"sort"

	"repro/internal/armlite"
	"repro/internal/snapshot"
)

// Snapshot section names owned by the dsa layer (the cpu layer owns
// meta/cpu/neon/mem/caches).
const (
	secEngine = "dsa.engine"
	secStats  = "dsa.stats"
	secCache  = "dsa.cache"
	secFaults = "dsa.faults"
	secPolicy = "dsa.policy"
)

// Quiescent reports whether the engine is between analyses: no live
// loop tracks and no pending takeover offer. Tracks hold pointers into
// the record stream and decide within a few iterations, so rather than
// serializing them a snapshot simply waits for the next quiescent
// point (System.Run checks after every step).
func (e *Engine) Quiescent() bool { return len(e.live) == 0 && e.pending == nil }

// SetRunHook installs fn to run between steps of System.Run, only at
// engine-quiescent points — the periodic-checkpoint tap. A non-nil
// return aborts the run with that error. Takeovers are atomic with
// respect to the hook: it can never observe an open cpu.Checkpoint or
// a half-applied speculative window.
func (s *System) SetRunHook(fn func() error) { s.runHook = fn }

// SaveState appends the full system state — machine plus engine — to
// w. It may only be called at a quiescent point (between System.Run
// steps with no live analysis; the run hook guarantees this).
func (s *System) SaveState(w *snapshot.Writer) error {
	if !s.E.Quiescent() {
		return fmt.Errorf("dsa: snapshot at non-quiescent point (%d live tracks, pending=%v)",
			len(s.E.live), s.E.pending != nil)
	}
	s.M.SaveState(w)
	e := s.E

	var eng snapshot.Enc
	encodeDSAConfig(&eng, &e.cfg)
	kinds := make([]int, 0, len(e.kindOf))
	for id := range e.kindOf {
		kinds = append(kinds, id)
	}
	sort.Ints(kinds)
	eng.U32(uint32(len(kinds)))
	for _, id := range kinds {
		eng.Int(id)
		eng.Int(int(e.kindOf[id]))
	}
	w.Add(secEngine, eng.Bytes())

	var st snapshot.Enc
	encodeStats(&st, e.stats)
	w.Add(secStats, st.Bytes())

	var ca snapshot.Enc
	encodeDSACache(&ca, e.Cache)
	w.Add(secCache, ca.Bytes())

	if s.faults != nil {
		var fa snapshot.Enc
		fa.U64(s.faults.Seen)
		fa.U64(s.faults.Fired)
		w.Add(secFaults, fa.Bytes())
	}

	if e.policy != nil {
		var po snapshot.Enc
		e.policy.Encode(&po)
		w.Add(secPolicy, po.Bytes())
	}
	return nil
}

// RestoreState rebuilds the full system state from r. The snapshot
// must come from a system running the same program under the same cpu
// and dsa configuration (ErrMismatch otherwise). On any error the
// system must be considered unusable — callers rebuild a fresh system
// and restart from zero.
func (s *System) RestoreState(r *snapshot.Reader) error {
	if err := s.M.RestoreState(r); err != nil {
		return err
	}
	e := s.E

	eng, err := dsaSection(r, secEngine)
	if err != nil {
		return err
	}
	if err := checkDSAConfig(eng, &e.cfg); err != nil {
		return err
	}
	e.kindOf = make(map[int]LoopKind)
	nKinds := int(eng.U32())
	for i := 0; i < nKinds && eng.Err() == nil; i++ {
		id := eng.Int()
		e.kindOf[id] = LoopKind(eng.Int())
	}
	if err := eng.Done(); err != nil {
		return err
	}

	st, err := dsaSection(r, secStats)
	if err != nil {
		return err
	}
	// Decoded in place: the Executor shares this *Stats, so the pointer
	// must survive the restore.
	if err := decodeStats(st, e.stats); err != nil {
		return err
	}
	if err := st.Done(); err != nil {
		return err
	}

	ca, err := dsaSection(r, secCache)
	if err != nil {
		return err
	}
	if err := decodeDSACache(ca, e.Cache); err != nil {
		return err
	}
	if err := ca.Done(); err != nil {
		return err
	}

	if s.faults != nil {
		fa, err := dsaSection(r, secFaults)
		if err != nil {
			return err
		}
		s.faults.Seen = fa.U64()
		s.faults.Fired = fa.U64()
		s.faults.label, s.faults.truncate, s.faults.errOnce = "", false, false
		if err := fa.Done(); err != nil {
			return err
		}
	} else if r.Has(secFaults) {
		return fmt.Errorf("%w: snapshot from a fault-injection run restored without fault config", snapshot.ErrMismatch)
	}

	if e.policy != nil {
		po, err := dsaSection(r, secPolicy)
		if err != nil {
			return err
		}
		if err := e.policy.Decode(po); err != nil {
			return err
		}
		if err := po.Done(); err != nil {
			return err
		}
	} else if r.Has(secPolicy) {
		return fmt.Errorf("%w: snapshot from an adaptive-policy run restored without policy config", snapshot.ErrMismatch)
	}

	// Analysis and probing state restart clean: live tracks and the
	// pending request were empty at save time (quiescence), and the
	// verification cache is reset per analysis.
	e.live = nil
	e.pending = nil
	e.VCache.Reset()
	return nil
}

func dsaSection(r *snapshot.Reader, name string) (*snapshot.Dec, error) {
	p, err := r.Section(name)
	if err != nil {
		return nil, err
	}
	return snapshot.NewDec(p), nil
}

// encodeDSAConfig serializes the behavior-determining configuration so
// a resumed run cannot silently continue under different mechanisms
// (which would break bit-identity with the uninterrupted run).
func encodeDSAConfig(e *snapshot.Enc, c *Config) {
	e.Int(c.DSACacheBytes)
	e.Int(c.VCacheBytes)
	e.Int(c.ArrayMaps)
	e.Int(int(c.Leftover))
	e.Bool(c.EnableConditional)
	e.Bool(c.EnableSentinel)
	e.Bool(c.EnableDynamicRange)
	e.Bool(c.EnablePartial)
	e.Bool(c.EnableGuardVec)
	e.U64(c.TakeoverStepBudget)
	e.Bool(c.Verify.Enabled)
	e.Bool(c.Verify.Fallback)
	e.U64(c.Verify.MaxReplaySteps)
	e.Int(int(c.Fault.Kind))
	e.U64(c.Fault.EveryN)
	e.I64(c.Fault.SkewBytes)
	e.Bool(c.EnablePolicy)
	e.Int(c.Policy.SuspendAfter)
	e.Int(c.Policy.TrialEvery)
	e.Int(c.Policy.TrialBackoffMax)
	e.I64(c.Policy.MinTickGain)
	l := &c.Latencies
	for _, v := range []int64{l.ObservePerInstr, l.DSACacheAccess, l.VCacheAccess,
		l.ArrayMapAccess, l.CIDPCompare, l.PartialReanalysis,
		l.PipelineFlush, l.PlanSetup, l.LeftoverElement} {
		e.I64(v)
	}
}

func checkDSAConfig(d *snapshot.Dec, c *Config) error {
	var got snapshot.Enc
	encodeDSAConfig(&got, c)
	want := d.Raw(len(got.Bytes()))
	if d.Err() != nil {
		return d.Err()
	}
	if string(want) != string(got.Bytes()) {
		return fmt.Errorf("%w: snapshot taken under a different DSA configuration", snapshot.ErrMismatch)
	}
	return nil
}

// --- stats ---

func encodeStats(e *snapshot.Enc, s *Stats) {
	e.I64(s.AnalysisTicks)
	e.U64(s.StateTransitions)
	e.U64(s.Observations)
	e.U64(s.DSACacheAccesses)
	e.U64(s.DSACacheHits)
	e.U64(s.VCacheAccesses)
	e.U64(s.VCacheOverflows)
	e.U64(s.ArrayMapAccesses)
	e.U64(s.CIDPCompares)
	e.U64(s.Takeovers)
	e.U64(s.VectorizedIters)
	e.U64(s.LeftoverElements)
	e.I64(s.OverheadTicks)
	e.U64(s.LoopsDetected)
	e.U64(s.Fallbacks)
	e.U64(s.VerifiedTakeovers)
	e.U64(s.Divergences)
	e.U64(s.DroppedRequests)
	e.U64(s.PolicyKept)
	e.U64(s.PolicySuspended)
	e.U64(s.PolicyTrialed)

	kinds := make([]int, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	e.U32(uint32(len(kinds)))
	for _, k := range kinds {
		e.Int(k)
		e.U64(s.ByKind[LoopKind(k)])
	}
	encodeCounters(e, s.RejectedReasons)
	encodeCounters(e, s.FallbackReasons)
}

func decodeStats(d *snapshot.Dec, s *Stats) error {
	s.AnalysisTicks = d.I64()
	s.StateTransitions = d.U64()
	s.Observations = d.U64()
	s.DSACacheAccesses = d.U64()
	s.DSACacheHits = d.U64()
	s.VCacheAccesses = d.U64()
	s.VCacheOverflows = d.U64()
	s.ArrayMapAccesses = d.U64()
	s.CIDPCompares = d.U64()
	s.Takeovers = d.U64()
	s.VectorizedIters = d.U64()
	s.LeftoverElements = d.U64()
	s.OverheadTicks = d.I64()
	s.LoopsDetected = d.U64()
	s.Fallbacks = d.U64()
	s.VerifiedTakeovers = d.U64()
	s.Divergences = d.U64()
	s.DroppedRequests = d.U64()
	s.PolicyKept = d.U64()
	s.PolicySuspended = d.U64()
	s.PolicyTrialed = d.U64()

	s.ByKind = make(map[LoopKind]uint64)
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		k := LoopKind(d.Int())
		s.ByKind[k] = d.U64()
	}
	var err error
	if s.RejectedReasons, err = decodeCounters(d); err != nil {
		return err
	}
	if s.FallbackReasons, err = decodeCounters(d); err != nil {
		return err
	}
	return d.Err()
}

func encodeCounters(e *snapshot.Enc, m map[string]uint64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.Str(k)
		e.U64(m[k])
	}
}

func decodeCounters(d *snapshot.Dec) (map[string]uint64, error) {
	out := make(map[string]uint64)
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		k := d.Str()
		out[k] = d.U64()
	}
	return out, d.Err()
}

// --- DSA cache ---

// encodeDSACache writes the learned-loop cache in LRU order (least
// recent first), so decoding can rebuild it through Insert and end up
// with an identical replacement order.
func encodeDSACache(e *snapshot.Enc, c *DSACache) {
	e.U32(uint32(len(c.order)))
	for i := len(c.order) - 1; i >= 0; i-- {
		encodeCachedLoop(e, c.entries[c.order[i]])
	}
}

func decodeDSACache(d *snapshot.Dec, c *DSACache) error {
	n := int(d.U32())
	if n > c.capacity {
		return fmt.Errorf("%w: %d cached loops, cache holds %d", snapshot.ErrMismatch, n, c.capacity)
	}
	c.entries = make(map[int]*CachedLoop, n)
	c.order = nil
	for i := 0; i < n; i++ {
		cl, err := decodeCachedLoop(d)
		if err != nil {
			return err
		}
		if _, dup := c.entries[cl.LoopID]; dup {
			return fmt.Errorf("%w: duplicate cached loop %d", snapshot.ErrCorrupt, cl.LoopID)
		}
		c.Insert(cl)
	}
	return d.Err()
}

func encodeCachedLoop(e *snapshot.Enc, cl *CachedLoop) {
	e.Int(cl.LoopID)
	e.Int(int(cl.Kind))
	e.Bool(cl.Vectorizable)
	e.Str(cl.Reason)
	e.Int(cl.SentinelRange)
	e.U32(cl.LimitValue)
	e.Bool(cl.LimitIsImm)
	e.Bool(cl.Analysis != nil)
	if cl.Analysis != nil {
		encodeAnalysis(e, cl.Analysis)
	}
}

func decodeCachedLoop(d *snapshot.Dec) (*CachedLoop, error) {
	cl := &CachedLoop{
		LoopID:       d.Int(),
		Kind:         LoopKind(d.Int()),
		Vectorizable: d.Bool(),
		Reason:       d.Str(),
	}
	cl.SentinelRange = d.Int()
	cl.LimitValue = d.U32()
	cl.LimitIsImm = d.Bool()
	if d.Bool() {
		a, err := decodeAnalysis(d)
		if err != nil {
			return nil, err
		}
		cl.Analysis = a
	}
	return cl, d.Err()
}

// --- analysis: node table, DAGs, plans ---

// nodeTable assigns dense indices to every payload-DAG node reachable
// from an Analysis, deduplicating shared nodes (the sentinel RegOut
// map and the guard-compare operands point into their DAGs' node
// lists) and registering operands before users so decode can resolve
// A/B references in one pass.
type nodeTable struct {
	idx   map[*Node]int
	nodes []*Node
}

func (nt *nodeTable) add(n *Node) int {
	if n == nil {
		return -1
	}
	if i, ok := nt.idx[n]; ok {
		return i
	}
	nt.add(n.A)
	nt.add(n.B)
	i := len(nt.nodes)
	nt.idx[n] = i
	nt.nodes = append(nt.nodes, n)
	return i
}

func (nt *nodeTable) addDAG(dag *PayloadDAG) {
	if dag == nil {
		return
	}
	for _, n := range dag.Nodes {
		nt.add(n)
	}
	for i := range dag.Stores {
		nt.add(dag.Stores[i].Value)
	}
}

// guardDAG reconstructs the guard payload DAG from the guard plan
// (which retains the DAG's node and store lists).
func guardDAG(v *CondVec) *PayloadDAG {
	return &PayloadDAG{Nodes: v.GuardPlan.nodes, Stores: v.GuardPlan.stores}
}

// armPathIndex finds which conditional path an arm's plan was built
// from, by node-list identity — CondArm shares its DAG and pattern
// table with the path, and that sharing must survive a round trip
// (cache-hit rebasing mutates the path's patterns in place and the
// arm must observe it).
func armPathIndex(c *CondAnalysis, arm *CondArm) int {
	if arm == nil {
		return -1
	}
	for i := range c.Paths {
		p := &c.Paths[i]
		if p.Payload != nil && len(p.Payload.Nodes) > 0 && len(arm.Plan.nodes) > 0 &&
			&p.Payload.Nodes[0] == &arm.Plan.nodes[0] {
			return i
		}
	}
	return -1
}

// guardPatternsPath finds the conditional path whose pattern table
// backs v.GuardPatterns (tryGuardVectorization reuses the first
// analyzed path's table), or -1 when the guard table is independent.
func guardPatternsPath(c *CondAnalysis, v *CondVec) int {
	if len(v.GuardPatterns) == 0 {
		return -1
	}
	for i := range c.Paths {
		p := &c.Paths[i]
		if len(p.patterns) == len(v.GuardPatterns) && &p.patterns[0] == &v.GuardPatterns[0] {
			return i
		}
	}
	return -1
}

func encodeAnalysis(e *snapshot.Enc, a *Analysis) {
	nt := &nodeTable{idx: make(map[*Node]int)}
	nt.addDAG(a.Payload)
	if a.Sent != nil {
		nt.addDAG(a.Sent.Payload)
		for _, n := range a.Sent.RegOut {
			nt.add(n)
		}
	}
	if a.Cond != nil {
		for i := range a.Cond.Paths {
			nt.addDAG(a.Cond.Paths[i].Payload)
		}
		if v := a.Cond.Vec; v != nil {
			nt.addDAG(guardDAG(v))
			nt.add(v.A)
			nt.add(v.B)
		}
	}

	e.U32(uint32(len(nt.nodes)))
	for _, n := range nt.nodes {
		e.U8(uint8(n.Kind))
		e.Int(n.Pattern)
		e.U8(uint8(n.Reg))
		e.U32(uint32(n.Imm))
		e.U8(uint8(n.Op))
		e.Int(nodeRef(nt, n.A)) // operands registered before users
		e.Int(nodeRef(nt, n.B))
	}

	e.Int(a.LoopID)
	e.Int(a.BranchPC)
	e.Int(int(a.Kind))
	encodeTrip(e, &a.Trip)
	encodeInduction(e, a.Induction)
	encodePatterns(e, a.Patterns)
	e.U8(uint8(a.ElemDT))
	encodeDAGRef(e, nt, a.Payload)
	e.Bool(a.CID.HasCID)
	e.Int(a.CID.ConflictIter)
	e.Int(a.CID.Distance)
	e.Int(a.CID.Compares)
	e.Bool(a.Partial)

	e.Bool(a.Cond != nil)
	if c := a.Cond; c != nil {
		encodePCSet(e, c.ActionPCs)
		e.Int(c.StoreSlots)
		e.U32(uint32(len(c.Paths)))
		for i := range c.Paths {
			p := &c.Paths[i]
			e.Int(p.ID)
			encodePCSet(e, p.PCs)
			encodeDAGRef(e, nt, p.Payload)
			encodePatterns(e, p.patterns)
		}
		e.Bool(c.Vec != nil)
		if v := c.Vec; v != nil {
			encodeDAGRef(e, nt, guardDAG(v))
			// GuardPatterns aliases the first analyzed path's pattern
			// table (tryGuardVectorization passes that table through),
			// and rebase updates guard stream bases *via* that sharing.
			// Encode the alias as a path index so restore reproduces
			// the same backing array; a copy here would freeze the
			// guard's addresses at snapshot time.
			e.Int(guardPatternsPath(c, v))
			if guardPatternsPath(c, v) == -1 {
				encodePatterns(e, v.GuardPatterns)
			}
			e.Int(nodeRef(nt, v.A))
			e.Int(nodeRef(nt, v.B))
			e.U8(uint8(v.Cond))
			e.Bool(v.Float)
			e.Bool(v.Unsigned)
			e.Int(armPathIndex(c, v.Taken))
			e.Int(armPathIndex(c, v.Fall))
		}
	}

	e.Bool(a.Sent != nil)
	if sn := a.Sent; sn != nil {
		encodePCSet(e, sn.StopPCs)
		encodePCSet(e, sn.ActionPCs)
		e.Int(sn.ExitPC)
		// Sent.Payload aliases Analysis.Payload today; the flag keeps
		// the format honest if that ever changes.
		e.Bool(sn.Payload == a.Payload)
		if sn.Payload != a.Payload {
			encodeDAGRef(e, nt, sn.Payload)
		}
		regs := make([]int, 0, len(sn.RegOut))
		for r := range sn.RegOut {
			regs = append(regs, int(r))
		}
		sort.Ints(regs)
		e.U32(uint32(len(regs)))
		for _, r := range regs {
			e.U8(uint8(r))
			e.Int(nodeRef(nt, sn.RegOut[armlite.Reg(r)]))
		}
	}
}

func nodeRef(nt *nodeTable, n *Node) int {
	if n == nil {
		return -1
	}
	return nt.idx[n]
}

func decodeAnalysis(d *snapshot.Dec) (*Analysis, error) {
	nNodes := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if nNodes > 1<<20 {
		return nil, fmt.Errorf("%w: %d payload nodes claimed", snapshot.ErrCorrupt, nNodes)
	}
	nodes := make([]*Node, nNodes)
	for i := range nodes {
		n := &Node{
			Kind:    NodeKind(d.U8()),
			Pattern: d.Int(),
			Reg:     armlite.Reg(d.U8()),
			Imm:     int32(d.U32()),
			Op:      armlite.Op(d.U8()),
		}
		var err error
		if n.A, err = resolveNode(d, nodes, i); err != nil {
			return nil, err
		}
		if n.B, err = resolveNode(d, nodes, i); err != nil {
			return nil, err
		}
		nodes[i] = n
	}

	a := &Analysis{
		LoopID:   d.Int(),
		BranchPC: d.Int(),
		Kind:     LoopKind(d.Int()),
	}
	if err := decodeTrip(d, &a.Trip); err != nil {
		return nil, err
	}
	var err error
	if a.Induction, err = decodeInduction(d); err != nil {
		return nil, err
	}
	if a.Patterns, err = decodePatterns(d); err != nil {
		return nil, err
	}
	a.ElemDT = armlite.DataType(d.U8())
	if a.Payload, err = decodeDAGRef(d, nodes); err != nil {
		return nil, err
	}
	a.CID.HasCID = d.Bool()
	a.CID.ConflictIter = d.Int()
	a.CID.Distance = d.Int()
	a.CID.Compares = d.Int()
	a.Partial = d.Bool()

	var gdag *PayloadDAG
	takenPath, fallPath := -1, -1
	if d.Bool() { // Cond
		c := &CondAnalysis{}
		if c.ActionPCs, err = decodePCSet(d); err != nil {
			return nil, err
		}
		c.StoreSlots = d.Int()
		nPaths := int(d.U32())
		if d.Err() != nil {
			return nil, d.Err()
		}
		if nPaths > 1<<16 {
			return nil, fmt.Errorf("%w: %d conditional paths claimed", snapshot.ErrCorrupt, nPaths)
		}
		c.Paths = make([]CondPath, nPaths)
		for i := range c.Paths {
			p := &c.Paths[i]
			p.ID = d.Int()
			if p.PCs, err = decodePCSet(d); err != nil {
				return nil, err
			}
			if p.Payload, err = decodeDAGRef(d, nodes); err != nil {
				return nil, err
			}
			if p.patterns, err = decodePatterns(d); err != nil {
				return nil, err
			}
		}
		if d.Bool() { // Vec
			v := &CondVec{}
			if gdag, err = decodeDAGRef(d, nodes); err != nil {
				return nil, err
			}
			if gi := d.Int(); gi >= 0 {
				if gi >= len(c.Paths) || len(c.Paths[gi].patterns) == 0 {
					return nil, fmt.Errorf("%w: guard patterns alias path %d", snapshot.ErrCorrupt, gi)
				}
				v.GuardPatterns = c.Paths[gi].patterns
			} else if v.GuardPatterns, err = decodePatterns(d); err != nil {
				return nil, err
			}
			if v.A, err = lookupNode(d, nodes); err != nil {
				return nil, err
			}
			if v.B, err = lookupNode(d, nodes); err != nil {
				return nil, err
			}
			v.Cond = armlite.Cond(d.U8())
			v.Float = d.Bool()
			v.Unsigned = d.Bool()
			takenPath = d.Int()
			fallPath = d.Int()
			if err := pathInRange(takenPath, nPaths); err != nil {
				return nil, err
			}
			if err := pathInRange(fallPath, nPaths); err != nil {
				return nil, err
			}
			c.Vec = v
		}
		a.Cond = c
	}

	if d.Bool() { // Sent
		sn := &SentAnalysis{}
		if sn.StopPCs, err = decodePCSet(d); err != nil {
			return nil, err
		}
		if sn.ActionPCs, err = decodePCSet(d); err != nil {
			return nil, err
		}
		sn.ExitPC = d.Int()
		if d.Bool() {
			sn.Payload = a.Payload
		} else if sn.Payload, err = decodeDAGRef(d, nodes); err != nil {
			return nil, err
		}
		sn.RegOut = make(map[armlite.Reg]*Node)
		nOut := int(d.U32())
		for i := 0; i < nOut && d.Err() == nil; i++ {
			r := armlite.Reg(d.U8())
			n, err := lookupNode(d, nodes)
			if err != nil {
				return nil, err
			}
			sn.RegOut[r] = n
		}
		a.Sent = sn
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := rebuildPlans(a, gdag, takenPath, fallPath); err != nil {
		return nil, err
	}
	return a, nil
}

func resolveNode(d *snapshot.Dec, nodes []*Node, before int) (*Node, error) {
	i := d.Int()
	if i == -1 {
		return nil, nil
	}
	if i < 0 || i >= before {
		return nil, fmt.Errorf("%w: node operand reference %d (must precede node %d)", snapshot.ErrCorrupt, i, before)
	}
	return nodes[i], nil
}

func lookupNode(d *snapshot.Dec, nodes []*Node) (*Node, error) {
	i := d.Int()
	if i == -1 {
		return nil, nil
	}
	if i < 0 || i >= len(nodes) {
		return nil, fmt.Errorf("%w: node reference %d of %d", snapshot.ErrCorrupt, i, len(nodes))
	}
	return nodes[i], nil
}

func pathInRange(i, n int) error {
	if i < -1 || i >= n {
		return fmt.Errorf("%w: conditional arm path %d of %d", snapshot.ErrCorrupt, i, n)
	}
	return nil
}

// rebuildPlans regenerates every SIMD plan from the decoded DAGs.
// Plans are deterministic functions of (DAG, patterns, element type,
// base register) — see BuildPlanAt — so rebuilding them reproduces the
// original register assignment exactly, and the snapshot never has to
// serialize planner internals.
func rebuildPlans(a *Analysis, gdag *PayloadDAG, takenPath, fallPath int) error {
	if a.Cond != nil {
		for i := range a.Cond.Paths {
			p := &a.Cond.Paths[i]
			if p.Payload == nil {
				continue
			}
			if err := checkDAG(p.Payload, len(p.patterns)); err != nil {
				return err
			}
			plan, err := BuildPlan(p.Payload, p.patterns, a.ElemDT)
			if err != nil {
				return fmt.Errorf("%w: rebuilding path %d plan: %v", snapshot.ErrCorrupt, i, err)
			}
			p.plan = plan
		}
		if v := a.Cond.Vec; v != nil {
			if gdag == nil {
				return fmt.Errorf("%w: guard-vectorized conditional without guard DAG", snapshot.ErrCorrupt)
			}
			if err := checkDAG(gdag, len(v.GuardPatterns)); err != nil {
				return err
			}
			gplan, err := BuildPlanAt(gdag, v.GuardPatterns, a.ElemDT, 0, v.A, v.B)
			if err != nil {
				return fmt.Errorf("%w: rebuilding guard plan: %v", snapshot.ErrCorrupt, err)
			}
			v.GuardPlan = gplan
			// Arms allocate registers above the guard in taken-then-fall
			// order, mirroring the original construction.
			base := armlite.VReg(len(gdag.Nodes))
			mkArm := func(idx int) (*CondArm, error) {
				if idx < 0 {
					return nil, nil
				}
				p := &a.Cond.Paths[idx]
				if p.Payload == nil {
					return nil, fmt.Errorf("%w: conditional arm points at empty path %d", snapshot.ErrCorrupt, idx)
				}
				plan, err := BuildPlanAt(p.Payload, p.patterns, a.ElemDT, base)
				if err != nil {
					return nil, fmt.Errorf("%w: rebuilding arm plan: %v", snapshot.ErrCorrupt, err)
				}
				base += armlite.VReg(len(p.Payload.Nodes))
				return &CondArm{Plan: plan, Patterns: p.patterns}, nil
			}
			if v.Taken, err = mkArm(takenPath); err != nil {
				return err
			}
			if v.Fall, err = mkArm(fallPath); err != nil {
				return err
			}
		}
		return nil
	}
	if a.Payload != nil {
		if err := checkDAG(a.Payload, len(a.Patterns)); err != nil {
			return err
		}
		plan, err := BuildPlan(a.Payload, a.Patterns, a.ElemDT)
		if err != nil {
			return fmt.Errorf("%w: rebuilding plan: %v", snapshot.ErrCorrupt, err)
		}
		a.plan = plan
	}
	return nil
}

// checkDAG bounds-checks every pattern index before the planner (which
// trusts them) runs over a decoded DAG.
func checkDAG(dag *PayloadDAG, nPatterns int) error {
	for _, n := range dag.Nodes {
		if (n.Kind == NodeLoad || n.Kind == NodeConstMem) && (n.Pattern < 0 || n.Pattern >= nPatterns) {
			return fmt.Errorf("%w: node pattern index %d of %d", snapshot.ErrCorrupt, n.Pattern, nPatterns)
		}
	}
	for i := range dag.Stores {
		if p := dag.Stores[i].Pattern; p < 0 || p >= nPatterns {
			return fmt.Errorf("%w: store pattern index %d of %d", snapshot.ErrCorrupt, p, nPatterns)
		}
		if dag.Stores[i].Value == nil {
			return fmt.Errorf("%w: store slot %d without a value node", snapshot.ErrCorrupt, i)
		}
	}
	return nil
}

func encodeDAGRef(e *snapshot.Enc, nt *nodeTable, dag *PayloadDAG) {
	e.Bool(dag != nil)
	if dag == nil {
		return
	}
	e.U32(uint32(len(dag.Nodes)))
	for _, n := range dag.Nodes {
		e.Int(nodeRef(nt, n))
	}
	e.U32(uint32(len(dag.Stores)))
	for i := range dag.Stores {
		e.Int(dag.Stores[i].Pattern)
		e.Int(nodeRef(nt, dag.Stores[i].Value))
	}
}

func decodeDAGRef(d *snapshot.Dec, nodes []*Node) (*PayloadDAG, error) {
	if !d.Bool() {
		return nil, d.Err()
	}
	dag := &PayloadDAG{}
	n := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n > len(nodes) {
		return nil, fmt.Errorf("%w: DAG claims %d of %d nodes", snapshot.ErrCorrupt, n, len(nodes))
	}
	dag.Nodes = make([]*Node, n)
	for i := range dag.Nodes {
		nd, err := lookupNode(d, nodes)
		if err != nil {
			return nil, err
		}
		if nd == nil {
			return nil, fmt.Errorf("%w: nil node in DAG node list", snapshot.ErrCorrupt)
		}
		dag.Nodes[i] = nd
	}
	nStores := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if nStores > 1<<16 {
		return nil, fmt.Errorf("%w: %d store slots claimed", snapshot.ErrCorrupt, nStores)
	}
	dag.Stores = make([]StoreSlot, nStores)
	for i := range dag.Stores {
		dag.Stores[i].Pattern = d.Int()
		v, err := lookupNode(d, nodes)
		if err != nil {
			return nil, err
		}
		dag.Stores[i].Value = v
	}
	return dag, d.Err()
}

func encodeTrip(e *snapshot.Enc, t *TripInfo) {
	e.U8(uint8(t.CounterReg))
	e.I64(t.Delta)
	e.U8(uint8(t.LimitReg))
	e.U32(uint32(t.LimitImm))
	e.Bool(t.LimitIsImm)
	e.U8(uint8(t.Cond))
	e.Int(t.CmpPC)
	e.Bool(t.CounterIsRn)
	e.Bool(t.Unsigned)
}

func decodeTrip(d *snapshot.Dec, t *TripInfo) error {
	t.CounterReg = armlite.Reg(d.U8())
	t.Delta = d.I64()
	t.LimitReg = armlite.Reg(d.U8())
	t.LimitImm = int32(d.U32())
	t.LimitIsImm = d.Bool()
	t.Cond = armlite.Cond(d.U8())
	t.CmpPC = d.Int()
	t.CounterIsRn = d.Bool()
	t.Unsigned = d.Bool()
	return d.Err()
}

func encodeInduction(e *snapshot.Enc, ind map[armlite.Reg]int64) {
	regs := make([]int, 0, len(ind))
	for r := range ind {
		regs = append(regs, int(r))
	}
	sort.Ints(regs)
	e.U32(uint32(len(regs)))
	for _, r := range regs {
		e.U8(uint8(r))
		e.I64(ind[armlite.Reg(r)])
	}
}

func decodeInduction(d *snapshot.Dec) (map[armlite.Reg]int64, error) {
	out := make(map[armlite.Reg]int64)
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		r := armlite.Reg(d.U8())
		out[r] = d.I64()
	}
	return out, d.Err()
}

func encodePatterns(e *snapshot.Enc, ps []MemPattern) {
	e.U32(uint32(len(ps)))
	for i := range ps {
		p := &ps[i]
		e.Int(p.PC)
		e.Bool(p.Store)
		e.U8(uint8(p.DT))
		e.Int(p.Size)
		e.U8(uint8(p.BaseReg))
		e.U8(uint8(p.Mem.Base))
		e.U8(uint8(p.Mem.Index))
		e.U32(uint32(p.Mem.Offset))
		e.U8(p.Mem.Shift)
		e.U8(uint8(p.Mem.Kind))
		e.Bool(p.Mem.Writeback)
		e.Bool(p.MultiOcc)
		e.Int(p.RefIterA)
		e.Int(p.RefIterB)
		e.U32(p.AddrA)
		e.U32(p.AddrB)
		e.I64(p.Stride)
	}
}

func decodePatterns(d *snapshot.Dec) ([]MemPattern, error) {
	n := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("%w: %d memory patterns claimed", snapshot.ErrCorrupt, n)
	}
	ps := make([]MemPattern, n)
	for i := range ps {
		p := &ps[i]
		p.PC = d.Int()
		p.Store = d.Bool()
		p.DT = armlite.DataType(d.U8())
		p.Size = d.Int()
		p.BaseReg = armlite.Reg(d.U8())
		p.Mem.Base = armlite.Reg(d.U8())
		p.Mem.Index = armlite.Reg(d.U8())
		p.Mem.Offset = int32(d.U32())
		p.Mem.Shift = d.U8()
		p.Mem.Kind = armlite.AddrKind(d.U8())
		p.Mem.Writeback = d.Bool()
		p.MultiOcc = d.Bool()
		p.RefIterA = d.Int()
		p.RefIterB = d.Int()
		p.AddrA = d.U32()
		p.AddrB = d.U32()
		p.Stride = d.I64()
	}
	return ps, d.Err()
}

func encodePCSet(e *snapshot.Enc, s map[int]bool) {
	pcs := make([]int, 0, len(s))
	for pc, on := range s {
		if on {
			pcs = append(pcs, pc)
		}
	}
	sort.Ints(pcs)
	e.U32(uint32(len(pcs)))
	for _, pc := range pcs {
		e.Int(pc)
	}
}

func decodePCSet(d *snapshot.Dec) (map[int]bool, error) {
	out := make(map[int]bool)
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		out[d.Int()] = true
	}
	return out, d.Err()
}
