package dsa

import (
	"fmt"

	"repro/internal/armlite"
)

// MemPattern is the per-memory-instruction access pattern the Data
// Collection stage derives: the addresses observed in two reference
// iterations and the per-iteration stride between them.
type MemPattern struct {
	PC      int // instruction address of the load/store
	Store   bool
	DT      armlite.DataType
	Size    int         // access width in bytes
	BaseReg armlite.Reg // base register of the source instruction (for listings)
	Mem     armlite.Mem // full memory operand (for cache-hit rebasing)
	// MultiOcc marks sites executed more than once per iteration
	// (e.g. a function called twice); such streams cannot be rebased
	// from the register file on a DSA-cache hit.
	MultiOcc bool

	RefIterA int    // iteration number of the first observation
	RefIterB int    // iteration number of the second observation
	AddrA    uint32 // address at RefIterA
	AddrB    uint32 // address at RefIterB
	Stride   int64  // per-iteration stride: (AddrB-AddrA)/(RefIterB-RefIterA)
}

// NewMemPattern derives the stride from two observations. It reports
// an error when the address delta does not divide evenly across the
// iteration gap (a non-linear access — not vectorizable).
func NewMemPattern(pc int, store bool, dt armlite.DataType, size int,
	iterA, iterB int, addrA, addrB uint32) (MemPattern, error) {
	p := MemPattern{PC: pc, Store: store, DT: dt, Size: size,
		RefIterA: iterA, RefIterB: iterB, AddrA: addrA, AddrB: addrB}
	gap := iterB - iterA
	if gap <= 0 {
		return p, fmt.Errorf("dsa: bad iteration gap %d..%d", iterA, iterB)
	}
	delta := int64(addrB) - int64(addrA)
	if delta%int64(gap) != 0 {
		return p, fmt.Errorf("dsa: non-linear access at pc %d (%#x→%#x over %d iters)",
			pc, addrA, addrB, gap)
	}
	p.Stride = delta / int64(gap)
	return p, nil
}

// AddrAt predicts the access address at iteration i (Eq. 4.4
// generalized: MRead[i] = MRead[refA] + stride·(i−refA)). Pointer
// receiver: the struct is ~90 bytes and AddrAt sits on the executor's
// per-chunk path, so a value receiver would duffcopy it per call.
func (p *MemPattern) AddrAt(i int) uint32 {
	return uint32(int64(p.AddrA) + p.Stride*int64(i-p.RefIterA))
}

// Range returns the inclusive byte range the pattern touches over
// iterations [first, last].
func (p *MemPattern) Range(first, last int) (lo, hi uint32) {
	a, b := p.AddrAt(first), p.AddrAt(last)
	if a > b {
		a, b = b, a
	}
	return a, b + uint32(p.Size) - 1
}

// Overlaps reports whether two byte ranges intersect.
func rangesOverlap(lo1, hi1, lo2, hi2 uint32) bool {
	return lo1 <= hi2 && lo2 <= hi1
}

// CIDResult is the outcome of the Cross-Iteration Dependency
// Prediction (§4.4).
type CIDResult struct {
	HasCID bool
	// ConflictIter is the earliest iteration whose load would read an
	// address some earlier iteration stores (the "11th iteration" of
	// Fig. 14). Valid only when HasCID.
	ConflictIter int
	// Distance is the dependency distance in iterations: a window of
	// fewer than Distance iterations is safe to vectorize (partial
	// vectorization, §4.5). Valid only when HasCID.
	Distance int
	// Compares counts predictor evaluations (for the energy model).
	Compares int
}

// PredictCID applies the dissertation's equations 4.1–4.5 to every
// (store, load) pair over iterations [firstIter, lastIter]:
//
//	MGap            = |MRead[B] − MRead[A]| / gap        (4.5)
//	MRead[last]     = MRead[A] + MGap·(last − A)         (4.4)
//	window          = [MRead[B] .. MRead[last]]          (4.1)
//	MWrite[A] ∈ window → CID, else NCID                  (4.2, 4.3)
//
// It additionally reports the earliest conflicting iteration so the
// partial-vectorization stage can size its windows.
func PredictCID(patterns []MemPattern, firstIter, lastIter int) CIDResult {
	res := CIDResult{ConflictIter: lastIter + 1}
	for si := range patterns {
		s := &patterns[si]
		if !s.Store {
			continue
		}
		for li := range patterns {
			l := &patterns[li]
			if l.Store {
				continue
			}
			res.Compares++
			if conflict, iter := pairConflict(s, l, firstIter, lastIter); conflict {
				res.HasCID = true
				if iter < res.ConflictIter {
					res.ConflictIter = iter
					res.Distance = iter - firstIter
				}
			}
		}
	}
	if !res.HasCID {
		res.ConflictIter = 0
		res.Distance = 0
	}
	return res
}

// pairConflict checks whether load l at some iteration j in
// (firstIter, lastIter] reads bytes that store s wrote at an earlier
// iteration i ≥ firstIter. It returns the earliest such j.
func pairConflict(s, l *MemPattern, firstIter, lastIter int) (bool, int) {
	// Fast reject: the store's full range never meets the load's.
	sLo, sHi := s.Range(firstIter, lastIter)
	lLo, lHi := l.Range(firstIter, lastIter)
	if !rangesOverlap(sLo, sHi, lLo, lHi) {
		return false, 0
	}
	// Same-iteration accesses to the same address (v[i] read-then-
	// write) are not cross-iteration dependencies; conflicts require
	// load-iteration > store-iteration. Walk load iterations and ask
	// whether any earlier store iteration covers the loaded bytes.
	// Linear patterns make this a closed form per pair, but the
	// iteration count here is bounded by the paper's loop sizes, so a
	// windowed scan keeps the logic auditable; guard very long loops
	// with the closed form below.
	if span := lastIter - firstIter; span > 4096 {
		return pairConflictClosed(s, l, firstIter, lastIter)
	}
	// Equal strides admit an exact closed form (conflict depends only on
	// the iteration distance j−i). It is bit-identical to the scan below
	// for wrap-free streams — TestPairConflictExactMatchesScan pins
	// this — and turns the dominant steady-state NCID case (parallel
	// load/store streams, e.g. c[i] = c[i] + x) from O(span²) into O(1).
	if s.Stride == l.Stride &&
		patternBounded(s, firstIter, lastIter) && patternBounded(l, firstIter, lastIter) {
		return pairConflictExact(s, l, firstIter, lastIter)
	}
	for j := firstIter + 1; j <= lastIter; j++ {
		jLo := l.AddrAt(j)
		jHi := jLo + uint32(l.Size) - 1
		for i := firstIter; i < j; i++ {
			iLo := s.AddrAt(i)
			iHi := iLo + uint32(s.Size) - 1
			if rangesOverlap(iLo, iHi, jLo, jHi) {
				return true, j
			}
		}
	}
	return false, 0
}

// pairConflictExact solves the equal-stride pair analytically. With a
// common stride st, store iteration i and load iteration j conflict iff
// the start-address difference D = (l0−s0) + st·(j−i) satisfies
// −(lSize−1) ≤ D ≤ sSize−1, so conflicts depend only on m = j−i ≥ 1.
// The earliest conflicting j is firstIter + m_min (take i = firstIter).
// Exact int64 arithmetic requires wrap-free streams; the caller checks
// patternBounded first.
func pairConflictExact(s, l *MemPattern, firstIter, lastIter int) (bool, int) {
	span := int64(lastIter - firstIter)
	if span < 1 {
		return false, 0
	}
	d := (int64(l.AddrA) + l.Stride*int64(firstIter-l.RefIterA)) -
		(int64(s.AddrA) + s.Stride*int64(firstIter-s.RefIterA))
	lo := -int64(l.Size-1) - d // need st·m ≥ lo
	hi := int64(s.Size-1) - d  // need st·m ≤ hi
	st := s.Stride
	if st == 0 {
		if lo <= 0 && 0 <= hi {
			return true, firstIter + 1
		}
		return false, 0
	}
	if st < 0 {
		st = -st
		lo, hi = -hi, -lo
	}
	mMin := int64(1)
	if lo > 0 {
		mMin = (lo + st - 1) / st // ceil(lo/st)
	}
	if mMin < 1 {
		mMin = 1
	}
	if mMin*st > hi || mMin > span {
		return false, 0
	}
	return true, firstIter + int(mMin)
}

// patternBounded reports whether every byte p touches over iterations
// [firstIter, lastIter] has an exact int64 address inside [0, 2^32) —
// no uint32 wrap, so closed-form address arithmetic is exact.
func patternBounded(p *MemPattern, firstIter, lastIter int) bool {
	a := int64(p.AddrA) + p.Stride*int64(firstIter-p.RefIterA)
	b := int64(p.AddrA) + p.Stride*int64(lastIter-p.RefIterA)
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo >= 0 && hi+int64(p.Size) <= int64(1)<<32
}

// pairConflictClosed solves the conflict iteration analytically for
// equal-stride patterns (the common case); for unequal strides it
// falls back to a conservative answer (assume conflict at the earliest
// possible iteration), matching what fixed-latency hardware would do.
func pairConflictClosed(s, l *MemPattern, firstIter, lastIter int) (bool, int) {
	if s.Stride == l.Stride {
		// Offset between the streams is constant: d = lAddr - sAddr.
		d := int64(l.AddrAt(firstIter)) - int64(s.AddrAt(firstIter))
		if s.Stride == 0 {
			if rangesOverlap(s.AddrAt(firstIter), s.AddrAt(firstIter)+uint32(s.Size)-1,
				l.AddrAt(firstIter), l.AddrAt(firstIter)+uint32(l.Size)-1) {
				return true, firstIter + 1
			}
			return false, 0
		}
		// Load at iteration j reads sAddr(i) when
		// l0 + st·j = s0 + st·i ⇒ j - i = (s0-l0)/st = -d/st.
		k := -d
		st := s.Stride
		if k%st != 0 {
			// Ranges may still graze via widths; approximate with the
			// nearest distance.
			k = k - k%st
		}
		dist := k / st
		if dist <= 0 {
			return false, 0
		}
		j := firstIter + int(dist)
		if j <= lastIter {
			return true, j
		}
		return false, 0
	}
	// Unequal strides with overlapping ranges: conservative.
	return true, firstIter + 1
}

// StoresDisjointFromLoads reports whether every store stream is
// disjoint from every load stream over the window — the legality
// condition for the Overlapping leftover technique (§4.8.2: re-running
// trailing operations must not change results).
func StoresDisjointFromLoads(patterns []MemPattern, firstIter, lastIter int) bool {
	for si := range patterns {
		s := &patterns[si]
		if !s.Store {
			continue
		}
		sLo, sHi := s.Range(firstIter, lastIter)
		for li := range patterns {
			l := &patterns[li]
			if l.Store {
				continue
			}
			lLo, lHi := l.Range(firstIter, lastIter)
			if rangesOverlap(sLo, sHi, lLo, lHi) {
				return false
			}
		}
	}
	return true
}
