package dsa

import (
	"testing"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
)

// runScalar executes the program without DSA for a reference.
func runScalar(t *testing.T, prog *armlite.Program, setup func(*cpu.Machine)) *cpu.Machine {
	t.Helper()
	m := cpu.MustNew(prog, cpu.DefaultConfig())
	if setup != nil {
		setup(m)
	}
	if err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	return m
}

// runDSA executes under the DSA system.
func runDSA(t *testing.T, prog *armlite.Program, cfg Config, setup func(*cpu.Machine)) *System {
	t.Helper()
	s, err := NewSystem(prog, cpu.DefaultConfig(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(s.M)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

// checkWords compares a memory region between two machines.
func checkWords(t *testing.T, ref, got *cpu.Machine, addr uint32, n int, what string) {
	t.Helper()
	want, err := ref.Mem.ReadWords(addr, n)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Mem.ReadWords(addr, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("%s: word %d = %d, want %d", what, i, have[i], want[i])
		}
	}
}

// vectorSumSrc is the Fig. 25 vector-sum loop: v[i] = a[i] + b[i],
// with a register trip limit (the counting idiom of the figure).
const vectorSumSrc = `
        mov   r5, #0x1000     ; &a
        mov   r10, #0x2000    ; &b
        mov   r2, #0x3000     ; &v
        mov   r0, #0          ; i
        mov   r4, #100        ; n
loop:   ldr   r3, [r5], #4
        ldr   r1, [r10], #4
        add   r3, r3, r1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`

func seedVectorSum(m *cpu.Machine) {
	a := make([]int32, 128)
	b := make([]int32, 128)
	for i := range a {
		a[i] = int32(i * 3)
		b[i] = int32(1000 - i)
	}
	m.Mem.WriteWords(0x1000, a)
	m.Mem.WriteWords(0x2000, b)
}

func TestCountLoopVectorSum(t *testing.T) {
	prog := asm.MustAssemble("vsum", vectorSumSrc)
	ref := runScalar(t, prog, seedVectorSum)
	s := runDSA(t, prog, DefaultConfig(), seedVectorSum)

	checkWords(t, ref, s.M, 0x3000, 100, "v")
	if s.M.R[armlite.R0] != 100 {
		t.Errorf("final counter = %d, want 100", s.M.R[armlite.R0])
	}
	if s.M.R[armlite.R5] != 0x1000+400 {
		t.Errorf("final base r5 = %#x", s.M.R[armlite.R5])
	}
	st := s.Stats()
	if st.Takeovers != 1 {
		t.Errorf("takeovers = %d, want 1", st.Takeovers)
	}
	if st.ByKind[KindCount] != 1 {
		t.Errorf("count-loop census = %v", st.ByKind)
	}
	if st.VectorizedIters < 90 {
		t.Errorf("vectorized iterations = %d, want ≈96", st.VectorizedIters)
	}
	if s.M.Ticks >= ref.Ticks {
		t.Errorf("DSA ticks %d not faster than scalar %d", s.M.Ticks, ref.Ticks)
	}
	if s.M.Counts.VecOps == 0 || s.M.Counts.VecLoads == 0 {
		t.Error("no NEON activity recorded")
	}
}

// TestSIMDGenerationPaperExample checks the generated statements for
// the Fig. 25 loop: two vector loads, one vadd.i32, one vector store.
func TestSIMDGenerationPaperExample(t *testing.T) {
	prog := asm.MustAssemble("vsum", vectorSumSrc)
	s := runDSA(t, prog, DefaultConfig(), seedVectorSum)
	entry, ok := s.E.Cache.Lookup(5)
	if !ok || !entry.Vectorizable {
		t.Fatalf("loop not cached as vectorizable: %+v", entry)
	}
	a := entry.Analysis
	if a.ElemDT != armlite.I32 {
		t.Errorf("element type = %v, want i32", a.ElemDT)
	}
	if a.Lanes() != 4 {
		t.Errorf("lanes = %d, want 4", a.Lanes())
	}
	var loads, adds, stores int
	for _, in := range a.plan.Listing {
		switch in.Op {
		case armlite.OpVld1:
			loads++
		case armlite.OpVadd:
			adds++
		case armlite.OpVst1:
			stores++
		default:
			t.Errorf("unexpected generated op %v", in.Op)
		}
	}
	if loads != 2 || adds != 1 || stores != 1 {
		t.Errorf("generated %d loads, %d adds, %d stores; want 2/1/1\n%v",
			loads, adds, stores, a.plan.Listing)
	}
}

// TestLeftoverHandling: 21 elements (Fig. 26's non-multiple case)
// under each leftover policy.
func TestLeftoverHandling(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r10, #0x2000
        mov   r2, #0x3000
        mov   r0, #0
        mov   r4, #21
loop:   ldr   r3, [r5], #4
        ldr   r1, [r10], #4
        add   r3, r3, r1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`
	prog := asm.MustAssemble("leftover", src)
	ref := runScalar(t, prog, seedVectorSum)
	for _, pol := range []LeftoverPolicy{LeftoverAuto, LeftoverSingle, LeftoverOverlap, LeftoverScalar, LeftoverLarger} {
		cfg := DefaultConfig()
		cfg.Leftover = pol
		s := runDSA(t, prog, cfg, seedVectorSum)
		checkWords(t, ref, s.M, 0x3000, 21, "v/"+pol.String())
		if s.M.R[armlite.R0] != 21 {
			t.Errorf("%v: final counter = %d", pol, s.M.R[armlite.R0])
		}
	}
}

// TestFunctionLoop: the loop body calls a function (Fig. 16).
func TestFunctionLoop(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
        mov   r4, #50
loop:   ldr   r3, [r5], #4
        bl    scale
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
scale:  mul   r3, r3, r6
        add   r3, r3, r7
        bx    lr
`
	prog := asm.MustAssemble("funloop", src)
	setup := func(m *cpu.Machine) {
		seedVectorSum(m)
		m.R[armlite.R6] = 3
		m.R[armlite.R7] = 11
	}
	ref := runScalar(t, prog, setup)
	s := runDSA(t, prog, DefaultConfig(), setup)
	checkWords(t, ref, s.M, 0x3000, 50, "function loop out")
	st := s.Stats()
	if st.ByKind[KindFunction] != 1 {
		t.Errorf("function-loop census = %v (rejections %v)", st.ByKind, st.RejectedReasons)
	}
	if st.Takeovers != 1 {
		t.Errorf("takeovers = %d", st.Takeovers)
	}
	if s.M.Ticks >= ref.Ticks {
		t.Errorf("DSA %d ticks not faster than scalar %d", s.M.Ticks, ref.Ticks)
	}
}

// TestCrossIterationDependencyRejected: v[i] = v[i-1] + b[i] must not
// be vectorized (Fig. 8.b) when partial vectorization is off, and the
// result must stay correct either way.
func TestCrossIterationDependencyRejected(t *testing.T) {
	src := `
        mov   r5, #0x1000     ; &v[0] (reads v[i-1])
        mov   r2, #0x1004     ; &v[1] (writes v[i])
        mov   r10, #0x2000    ; &b
        mov   r0, #0
        mov   r4, #50
loop:   ldr   r3, [r5], #4
        ldr   r1, [r10], #4
        add   r3, r3, r1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`
	prog := asm.MustAssemble("recurrence", src)
	ref := runScalar(t, prog, seedVectorSum)
	cfg := DefaultConfig()
	cfg.EnablePartial = false
	s := runDSA(t, prog, cfg, seedVectorSum)
	checkWords(t, ref, s.M, 0x1000, 51, "recurrence v")
	st := s.Stats()
	if st.Takeovers != 0 {
		t.Errorf("recurrence must not take over; got %d", st.Takeovers)
	}
	if st.RejectedReasons["cross-iteration-dependency"] == 0 {
		t.Errorf("rejection census = %v", st.RejectedReasons)
	}
}

// TestPartialVectorization: a distance-8 dependency loop vectorizes in
// windows when partial vectorization is on.
func TestPartialVectorization(t *testing.T) {
	// v[i+8] = v[i] + 1 for i in 0..39 (writes depend on reads 8 back).
	src := `
        mov   r5, #0x1000     ; read cursor v[i]
        mov   r2, #0x1020     ; write cursor v[i+8]
        mov   r0, #0
        mov   r4, #40
loop:   ldr   r3, [r5], #4
        add   r3, r3, #1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`
	prog := asm.MustAssemble("partial", src)
	setup := func(m *cpu.Machine) {
		vals := make([]int32, 64)
		for i := range vals {
			vals[i] = int32(i)
		}
		m.Mem.WriteWords(0x1000, vals)
	}
	ref := runScalar(t, prog, setup)
	s := runDSA(t, prog, DefaultConfig(), setup)
	checkWords(t, ref, s.M, 0x1000, 64, "partial v")
	st := s.Stats()
	if st.Takeovers != 1 {
		t.Fatalf("takeovers = %d, rejections = %v", st.Takeovers, st.RejectedReasons)
	}
	entry, _ := s.E.Cache.Lookup(4)
	if entry == nil || !entry.Analysis.Partial {
		t.Error("loop should be marked partial")
	}
	if entry.Analysis.CID.Distance != 8 {
		t.Errorf("distance = %d, want 8", entry.Analysis.CID.Distance)
	}

	// Ablation: partial disabled rejects.
	cfg := OriginalConfig()
	s2 := runDSA(t, prog, cfg, setup)
	if s2.Stats().Takeovers != 0 {
		t.Error("original DSA must not vectorize dependent loops")
	}
	checkWords(t, ref, s2.M, 0x1000, 64, "partial-off v")
}

// TestDSACacheHit: a loop executed twice hits the DSA cache and
// vectorizes from its second iteration on re-entry.
func TestDSACacheHit(t *testing.T) {
	src := `
        mov   r8, #0          ; outer counter
outer:  mov   r5, #0x1000
        mov   r10, #0x2000
        mov   r2, #0x3000
        mov   r0, #0
        mov   r4, #40
loop:   ldr   r3, [r5], #4
        ldr   r1, [r10], #4
        add   r3, r3, r1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        add   r8, r8, #1
        cmp   r8, #3
        blt   outer
        halt
`
	prog := asm.MustAssemble("cachehit", src)
	ref := runScalar(t, prog, seedVectorSum)
	s := runDSA(t, prog, DefaultConfig(), seedVectorSum)
	checkWords(t, ref, s.M, 0x3000, 40, "cache-hit v")
	st := s.Stats()
	if st.DSACacheHits < 2 {
		t.Errorf("cache hits = %d, want ≥2", st.DSACacheHits)
	}
	if st.Takeovers != 3 {
		t.Errorf("takeovers = %d, want 3 (one per entry)", st.Takeovers)
	}
	// Outer loop must be classified nested, not conditional.
	if st.ByKind[KindNested] == 0 {
		t.Errorf("census = %v", st.ByKind)
	}
}

// TestDynamicRangePaperExample (Fig. 24): the same loop runs twice
// with different ranges; the DSA re-analyzes on the limit change and
// a range-dependent dependency flips the verdict.
func TestDynamicRangeReanalysis(t *testing.T) {
	// First entry: 5 iterations (no dependency in range).
	// Second entry: 20 iterations (store stream reaches the loads).
	src := `
        mov   r9, #5          ; first range
        mov   r8, #0          ; entry counter
outer:  mov   r5, #0x1000     ; load cursor
        mov   r2, #0x1040     ; store cursor: 16 words ahead
        mov   r0, #0
loop:   ldr   r3, [r5], #4
        add   r3, r3, #7
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r9
        blt   loop
        mov   r9, #20         ; second range is larger
        add   r8, r8, #1
        cmp   r8, #2
        blt   outer
        halt
`
	prog := asm.MustAssemble("dynrange", src)
	setup := func(m *cpu.Machine) {
		vals := make([]int32, 64)
		for i := range vals {
			vals[i] = int32(i * 5)
		}
		m.Mem.WriteWords(0x1000, vals)
	}
	ref := runScalar(t, prog, setup)
	s := runDSA(t, prog, DefaultConfig(), setup)
	checkWords(t, ref, s.M, 0x1000, 64, "dynrange v")
	st := s.Stats()
	if st.ByKind[KindDynamicRange] == 0 {
		t.Errorf("dynamic-range census = %v", st.ByKind)
	}
}

// TestTooShortLoopNotTakenOver: loops with fewer than five iterations
// have nothing left to vectorize after analysis.
func TestTooShortLoopNotTakenOver(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
loop:   ldr   r3, [r5], #4
        add   r3, r3, #1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #4
        blt   loop
        halt
`
	prog := asm.MustAssemble("short", src)
	ref := runScalar(t, prog, seedVectorSum)
	s := runDSA(t, prog, DefaultConfig(), seedVectorSum)
	checkWords(t, ref, s.M, 0x3000, 4, "short v")
	if s.Stats().Takeovers != 0 {
		t.Errorf("takeovers = %d, want 0", s.Stats().Takeovers)
	}
}

// TestNonVectorizableOps: division in the body rejects vectorization
// but execution stays correct.
func TestNonVectorizableOps(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
        mov   r6, #3
loop:   ldr   r3, [r5], #4
        sdiv  r3, r3, r6
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #30
        blt   loop
        halt
`
	prog := asm.MustAssemble("div", src)
	ref := runScalar(t, prog, seedVectorSum)
	s := runDSA(t, prog, DefaultConfig(), seedVectorSum)
	checkWords(t, ref, s.M, 0x3000, 30, "div out")
	st := s.Stats()
	if st.Takeovers != 0 {
		t.Error("division loop must not be vectorized")
	}
	if st.RejectedReasons["division-in-payload"] == 0 {
		t.Errorf("rejections = %v", st.RejectedReasons)
	}
}

// TestFloatLoop: float32 elementwise multiply-add.
func TestFloatLoop(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r10, #0x2000
        mov   r2, #0x3000
        mov   r0, #0
loop:   ldrf  r3, [r5], #4
        ldrf  r1, [r10], #4
        fmul  r3, r3, r1
        fadd  r3, r3, r1
        strf  r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #37
        blt   loop
        halt
`
	prog := asm.MustAssemble("float", src)
	setup := func(m *cpu.Machine) {
		a := make([]float32, 64)
		b := make([]float32, 64)
		for i := range a {
			a[i] = float32(i) * 0.5
			b[i] = 2.25 - float32(i)*0.125
		}
		m.Mem.WriteFloats(0x1000, a)
		m.Mem.WriteFloats(0x2000, b)
	}
	prog2 := prog.Clone()
	ref := runScalar(t, prog, setup)
	s := runDSA(t, prog2, DefaultConfig(), setup)
	st := s.Stats()
	if st.Takeovers != 1 {
		t.Fatalf("float loop not taken over; rejections = %v", st.RejectedReasons)
	}
	wantF, _ := ref.Mem.ReadFloats(0x3000, 37)
	gotF, _ := s.M.Mem.ReadFloats(0x3000, 37)
	for i := range wantF {
		if wantF[i] != gotF[i] {
			t.Fatalf("float %d = %v, want %v", i, gotF[i], wantF[i])
		}
	}
}

// TestByteLoop: 8-bit elements give 16-way parallelism.
func TestByteLoop(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r10, #0x2000
        mov   r2, #0x3000
        mov   r0, #0
loop:   ldrb  r3, [r5], #1
        ldrb  r1, [r10], #1
        add   r3, r3, r1
        strb  r3, [r2], #1
        add   r0, r0, #1
        cmp   r0, #200
        blt   loop
        halt
`
	prog := asm.MustAssemble("bytes", src)
	setup := func(m *cpu.Machine) {
		a := make([]byte, 256)
		b := make([]byte, 256)
		for i := range a {
			a[i] = byte(i)
			b[i] = byte(255 - i)
		}
		m.Mem.WriteBytes(0x1000, a)
		m.Mem.WriteBytes(0x2000, b)
	}
	ref := runScalar(t, prog, setup)
	s := runDSA(t, prog, DefaultConfig(), setup)
	st := s.Stats()
	if st.Takeovers != 1 {
		t.Fatalf("byte loop not taken over; rejections = %v", st.RejectedReasons)
	}
	wantB, _ := ref.Mem.ReadBytes(0x3000, 200)
	gotB, _ := s.M.Mem.ReadBytes(0x3000, 200)
	for i := range wantB {
		if wantB[i] != gotB[i] {
			t.Fatalf("byte %d = %d, want %d", i, gotB[i], wantB[i])
		}
	}
	entry, _ := s.E.Cache.Lookup(4)
	if entry.Analysis.Lanes() != 16 {
		t.Errorf("lanes = %d, want 16", entry.Analysis.Lanes())
	}
	if s.M.Ticks >= ref.Ticks/2 {
		t.Errorf("byte loop speedup too small: %d vs %d", s.M.Ticks, ref.Ticks)
	}
}
