package dsa

import (
	"fmt"

	"repro/internal/armlite"
)

// TripInfo is the loop-range mechanism the Data Collection stage
// derives from the exit compare (Fig. 25: "Detecting Index and Stop
// Condition"). The loop's back-branch is taken while Cond holds for
// (counter, limit); the counter advances by Delta per iteration.
type TripInfo struct {
	CounterReg armlite.Reg
	Delta      int64
	LimitReg   armlite.Reg // NoReg when the limit is an immediate
	LimitImm   int32
	LimitIsImm bool
	Cond       armlite.Cond // continue-condition of the back-branch
	CmpPC      int
	// CounterIsRn records whether the counter is the Rn operand of
	// the compare (cmp counter, limit) or the flexible operand.
	CounterIsRn bool
	Unsigned    bool
}

// Remaining computes how many more iterations will run given the
// counter value at the end of the current iteration and the limit
// value (Eq. of §4.6.1 generalized to every branch condition).
// ok is false when the mechanism cannot bound the loop (e.g. NE with a
// stride that skips the limit).
func (t TripInfo) Remaining(counter, limit uint32) (int, bool) {
	d := t.Delta
	if d == 0 {
		return 0, false
	}
	// The continue condition compares (counter, limit) in the operand
	// order of the original cmp.
	a, b := int64(int32(counter)), int64(int32(limit))
	if t.Unsigned {
		a, b = int64(counter), int64(limit)
	}
	var m int
	var ok bool
	if !t.CounterIsRn {
		// Condition applies to (limit, counter); flip to counter-
		// centric form by inverting the comparison direction.
		m, ok = remainingFlipped(t.Cond, b, a, d)
	} else {
		m, ok = remaining(t.Cond, a, b, d)
	}
	if !ok {
		return 0, false
	}
	// Boundedness: the predicted exit value must be representable in
	// the register without wrapping — an unsigned count-down through
	// zero (or a signed overflow) never reaches the predicted exit,
	// so the loop cannot be bounded this way.
	landing := a + int64(m)*d
	if t.Unsigned {
		if landing < 0 || landing > int64(^uint32(0)) {
			return 0, false
		}
	} else if landing < -(1<<31) || landing >= 1<<31 {
		return 0, false
	}
	return m, true
}

// remaining solves: count of j ≥ 1 with cond(c + (j-1)·d, L) true,
// where cond is evaluated as cmp(c', L).
func remaining(cond armlite.Cond, c, l, d int64) (int, bool) {
	// A condition that already fails means zero further iterations,
	// whatever the stride direction.
	if !condHoldsInt(cond, c, l) {
		return 0, true
	}
	switch cond {
	case armlite.CondLT, armlite.CondLO:
		if d <= 0 {
			return 0, false
		}
		if c >= l {
			return 0, true
		}
		return int(ceilDiv(l-c, d)), true
	case armlite.CondLE, armlite.CondLS:
		if d <= 0 {
			return 0, false
		}
		if c > l {
			return 0, true
		}
		return int((l-c)/d + 1), true
	case armlite.CondGT, armlite.CondHI:
		if d >= 0 {
			return 0, false
		}
		if c <= l {
			return 0, true
		}
		return int(ceilDiv(c-l, -d)), true
	case armlite.CondGE, armlite.CondHS:
		if d >= 0 {
			return 0, false
		}
		if c < l {
			return 0, true
		}
		return int((c-l)/(-d) + 1), true
	case armlite.CondNE:
		diff := l - c
		if d == 0 || diff%d != 0 || diff/d < 0 {
			return 0, false
		}
		return int(diff / d), true
	default:
		return 0, false
	}
}

// remainingFlipped handles cmp(limit, counter): cond(L, c') continues.
func remainingFlipped(cond armlite.Cond, l, c, d int64) (int, bool) {
	// cmp L, c with condition X is equivalent to cmp c, L with the
	// swapped condition.
	var sw armlite.Cond
	switch cond {
	case armlite.CondLT:
		sw = armlite.CondGT
	case armlite.CondLE:
		sw = armlite.CondGE
	case armlite.CondGT:
		sw = armlite.CondLT
	case armlite.CondGE:
		sw = armlite.CondLE
	case armlite.CondLO:
		sw = armlite.CondHI
	case armlite.CondLS:
		sw = armlite.CondHS
	case armlite.CondHI:
		sw = armlite.CondLO
	case armlite.CondHS:
		sw = armlite.CondLS
	case armlite.CondNE, armlite.CondEQ:
		sw = cond
	default:
		return 0, false
	}
	return remaining(sw, c, l, d)
}

// condHoldsInt evaluates a compare condition over already sign/zero-
// adjusted operand values.
func condHoldsInt(cond armlite.Cond, c, l int64) bool {
	switch cond {
	case armlite.CondEQ:
		return c == l
	case armlite.CondNE:
		return c != l
	case armlite.CondLT, armlite.CondLO:
		return c < l
	case armlite.CondLE, armlite.CondLS:
		return c <= l
	case armlite.CondGT, armlite.CondHI:
		return c > l
	case armlite.CondGE, armlite.CondHS:
		return c >= l
	default:
		return true
	}
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// NodeKind classifies a payload dataflow node.
type NodeKind int

// Node kinds.
const (
	NodeLoad     NodeKind = iota // one vector element stream (vld1)
	NodeConstReg                 // loop-invariant register (vdup)
	NodeConstMem                 // loop-invariant load (scalar load + vdup)
	NodeImm                      // immediate operand (vdup of a constant)
	NodeExpr                     // lane-wise operation
)

// Node is one vertex of the payload dataflow DAG (Fig. 25's
// "Vectorizable Instructions and their operands").
type Node struct {
	Kind NodeKind
	// NodeLoad: index into Analysis.Patterns.
	Pattern int
	// NodeConstReg: register to broadcast at execution time.
	Reg armlite.Reg
	// NodeImm / NodeExpr shift amount.
	Imm int32
	// NodeExpr.
	Op   armlite.Op // scalar opcode; vectorized via VectorALUOp
	A, B *Node

	// vreg is the NEON register assigned by the planner.
	vreg armlite.VReg
	// ord is the node's position in its plan's topological node list,
	// assigned by the executor's element path each call (plans decoded
	// from snapshots arrive with zero ords).
	ord int
}

// StoreSlot is one vector store site: the pattern it writes through
// and the node producing its value.
type StoreSlot struct {
	Pattern int
	Value   *Node
}

// RegOut is the final symbolic binding of a scalar register within
// one iteration: which DAG node holds its value and which instruction
// produced it. Speculative execution uses it to rematerialize payload
// temporaries the skipped iterations never computed architecturally.
type RegOut struct {
	Node *Node
	PC   int
}

// PayloadDAG is the extracted vectorizable computation of one loop
// iteration (or of one conditional path's action region).
type PayloadDAG struct {
	Nodes  []*Node // topological order (operands precede users)
	Stores []StoreSlot

	// regOut maps registers written during the iteration to their
	// final values (see RegOut).
	regOut map[armlite.Reg]RegOut
}

// Analysis is the complete artifact of a successful DSA loop analysis
// — everything needed to generate SIMD statements and take over
// execution. It is what the DSA cache conceptually stores.
type Analysis struct {
	LoopID   int
	BranchPC int
	Kind     LoopKind

	Trip      TripInfo
	Induction map[armlite.Reg]int64 // per-iteration register deltas
	Patterns  []MemPattern
	ElemDT    armlite.DataType // lane element type
	Payload   *PayloadDAG      // simple loops

	CID     CIDResult
	Partial bool // vectorization must proceed in dependency windows

	Cond *CondAnalysis // conditional loops
	Sent *SentAnalysis // sentinel loops

	// plan is the generated SIMD program (built at decision time so
	// generation failures reject the loop before any takeover).
	plan *Plan
}

// CondAnalysis describes a vectorizable conditional loop.
type CondAnalysis struct {
	// ActionPCs is the union of all paths' action-region PCs — the
	// instructions skipped (idle) during mapped SIMD execution.
	ActionPCs map[int]bool
	// Paths are the discovered conditions, each with its own DAG.
	Paths []CondPath
	// StoreSlots counts total vector store sites across paths (array-
	// map budget check).
	StoreSlots int
	// Vec is the full-speculation plan (guard compare evaluated as a
	// SIMD mask, both arms executed masked); nil when only the
	// scalar-mapped mode is possible.
	Vec *CondVec
}

// CondVec is the fully speculative execution plan for a two-arm
// conditional loop: the guard computation is itself vectorized and the
// branch outcome becomes a per-lane mask selecting which arm's stores
// commit (the Array-Map / Vector-Map selection of Fig. 21–22 performed
// at vector width).
type CondVec struct {
	GuardPlan     *Plan
	GuardPatterns []MemPattern
	A, B          *Node        // compare operands
	Cond          armlite.Cond // branch-taken condition over (A-B)
	Float         bool
	// Unsigned forces unsigned lane comparison: sub-word scalar
	// operands are zero-extended loads, so the scalar's signed 32-bit
	// compare equals an unsigned lane compare.
	Unsigned bool

	Taken *CondArm // arm reached when the branch is taken (nil: empty)
	Fall  *CondArm // fall-through arm (nil: empty)
}

// CondArm is one executable arm of a CondVec.
type CondArm struct {
	Plan     *Plan
	Patterns []MemPattern
}

// CondPath is one condition: its identifying action PCs and payload.
type CondPath struct {
	ID      int // first action PC (the paper's condition index); -1 for an empty path
	PCs     map[int]bool
	Payload *PayloadDAG
	plan    *Plan
	// patterns are the path's own pattern table (its plan's indices
	// refer to this slice, not to Analysis.Patterns).
	patterns []MemPattern
}

// SentAnalysis describes a vectorizable sentinel loop.
type SentAnalysis struct {
	// StopPCs is the backward slice of the exit checks — executed
	// scalar every iteration.
	StopPCs map[int]bool
	// ActionPCs are the payload instructions — skipped while the
	// speculative window covers the iteration.
	ActionPCs map[int]bool
	Payload   *PayloadDAG
	ExitPC    int
	// RegOut lists payload-defined registers whose architectural
	// values must be rematerialized when speculation skips the scalar
	// instructions that would have produced them.
	RegOut map[armlite.Reg]*Node
}

// Lanes returns the SIMD parallelism of the analyzed element type.
func (a *Analysis) Lanes() int { return a.ElemDT.Lanes() }

// extractError carries a rejection reason.
type extractError struct{ reason string }

func (e *extractError) Error() string { return "dsa: " + e.reason }

func rejectf(format string, args ...any) error {
	return &extractError{reason: fmt.Sprintf(format, args...)}
}

// reasonOf unwraps the rejection reason for the census.
func reasonOf(err error) string {
	if e, ok := err.(*extractError); ok {
		return e.reason
	}
	return err.Error()
}

// Plan returns the generated SIMD program (the DSA cache's "built
// SIMD statements"), nil before a successful decision.
func (a *Analysis) Plan() *Plan { return a.plan }
