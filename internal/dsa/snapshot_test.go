package dsa

import (
	"sync"
	"testing"
)

func TestStatsSnapshotDeepCopies(t *testing.T) {
	st := newStats()
	st.Takeovers = 7
	st.Fallbacks = 2
	st.ByKind[KindCount] = 3
	st.RejectedReasons["aliasing"] = 1
	st.FallbackReasons["step-budget"] = 2

	snap := st.Snapshot()
	if snap == st {
		t.Fatal("Snapshot returned the receiver")
	}

	// Mutate the original after snapshotting: scalars and every map.
	st.Takeovers = 100
	st.ByKind[KindCount] = 99
	st.ByKind[KindSentinel] = 1
	st.RejectedReasons["aliasing"] = 50
	st.FallbackReasons["fault:executor-error"] = 9

	if snap.Takeovers != 7 || snap.Fallbacks != 2 {
		t.Errorf("scalar fields not copied: %+v", snap)
	}
	if snap.ByKind[KindCount] != 3 || len(snap.ByKind) != 1 {
		t.Errorf("ByKind aliases the original: %v", snap.ByKind)
	}
	if snap.RejectedReasons["aliasing"] != 1 {
		t.Errorf("RejectedReasons aliases the original: %v", snap.RejectedReasons)
	}
	if len(snap.FallbackReasons) != 1 || snap.FallbackReasons["step-budget"] != 2 {
		t.Errorf("FallbackReasons aliases the original: %v", snap.FallbackReasons)
	}
}

func TestStatsSnapshotNil(t *testing.T) {
	var st *Stats
	if st.Snapshot() != nil {
		t.Error("nil Stats must snapshot to nil")
	}
}

// TestStatsSnapshotConcurrentReads exercises the supervisor's pattern
// under the race detector: one goroutine owns and mutates the live
// stats, snapshots are handed to concurrent readers. Only the snapshot
// crosses the goroutine boundary — that handoff must be race-free.
func TestStatsSnapshotConcurrentReads(t *testing.T) {
	st := newStats()
	snaps := make(chan *Stats, 64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := range snaps {
			total := s.Takeovers + s.FallbackReasons["fault:executor-error"]
			_ = total
		}
	}()
	for i := 0; i < 1000; i++ {
		st.Takeovers++
		st.FallbackReasons["fault:executor-error"]++
		st.ByKind[KindCount]++
		snaps <- st.Snapshot()
	}
	close(snaps)
	wg.Wait()
}
