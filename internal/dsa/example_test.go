package dsa_test

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/dsa"
)

// ExampleNewSystem runs the dissertation's Fig. 25 vector-sum loop
// under the DSA and prints what the engine detected and generated.
func ExampleNewSystem() {
	prog, err := asm.Assemble("vector_sum", `
        mov   r5, #0x1000     ; &a
        mov   r10, #0x2000    ; &b
        mov   r2, #0x3000     ; &v
        mov   r0, #0
        mov   r4, #64
loop:   ldr   r3, [r5], #4
        ldr   r1, [r10], #4
        add   r3, r3, r1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt`)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := dsa.NewSystem(prog, cpu.DefaultConfig(), dsa.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	a := make([]int32, 64)
	b := make([]int32, 64)
	for i := range a {
		a[i], b[i] = int32(i), int32(100-i)
	}
	sys.M.Mem.WriteWords(0x1000, a)
	sys.M.Mem.WriteWords(0x2000, b)
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	v, _ := sys.M.Mem.ReadWords(0x3000, 3)
	st := sys.Stats()
	entry, _ := sys.E.Cache.Lookup(prog.Labels["loop"])
	fmt.Println("first results:", v)
	fmt.Println("loop kind:", entry.Kind)
	fmt.Println("SIMD iterations:", st.VectorizedIters)
	for _, in := range entry.Analysis.Plan().Listing {
		fmt.Println("generated:", in.String())
	}
	// Output:
	// first results: [100 100 100]
	// loop kind: count
	// SIMD iterations: 60
	// generated: vld1.i32 q0, [r5]!
	// generated: vld1.i32 q1, [r10]!
	// generated: vadd.i32 q0, q0, q1
	// generated: vst1.i32 q0, [r2]!
}

// ExampleOriginalConfig contrasts the Article 1 DSA with the extended
// one on a sentinel loop: only the extension speculates through it.
func ExampleOriginalConfig() {
	prog, err := asm.Assemble("sentinel", `
        mov   r5, #0x1000
        mov   r2, #0x2000
loop:   ldrb  r3, [r5], #1
        cmp   r3, #0
        beq   done
        add   r4, r3, #1
        strb  r4, [r2], #1
        b     loop
done:   halt`)
	if err != nil {
		log.Fatal(err)
	}
	for _, cfg := range []dsa.Config{dsa.OriginalConfig(), dsa.DefaultConfig()} {
		sys, err := dsa.NewSystem(prog, cpu.DefaultConfig(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		data := make([]byte, 65)
		for i := 0; i < 64; i++ {
			data[i] = byte(i + 1)
		}
		sys.M.Mem.WriteBytes(0x1000, data)
		if err := sys.Run(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sentinel=%v takeovers=%d\n", cfg.EnableSentinel, sys.Stats().Takeovers)
	}
	// Output:
	// sentinel=false takeovers=0
	// sentinel=true takeovers=1
}
