package dsa

import (
	"repro/internal/armlite"
)

// Register classification for extraction: how a register's value
// behaves across iterations when read as an incoming operand.
type regClass int

const (
	clInvariant regClass = iota // identical every iteration → vdup
	clInduction                 // constant nonzero delta → structural
	clVarying                   // data-dependent → not vectorizable
)

// regEnv captures the per-register behaviour the Data Collection stage
// measured (end-of-iteration snapshots) plus the *roles* Fig. 25
// assigns: a register is induction only when it advances by a constant
// delta AND serves as an address base/index or the trip counter —
// data registers whose values merely happen to form an arithmetic
// progression must not be mistaken for indexes.
type regEnv struct {
	delta   [armlite.NumRegs]int64
	deltaOK [armlite.NumRegs]bool
	ind     armlite.RegSet // address/index/counter roles
}

func (e *regEnv) class(r armlite.Reg) regClass {
	if !r.Valid() || !e.deltaOK[r] {
		return clVarying
	}
	if e.delta[r] == 0 {
		return clInvariant
	}
	if e.ind.Has(r) {
		return clInduction
	}
	return clVarying
}

// extractor builds a PayloadDAG from one iteration's record sequence.
type extractor struct {
	env        *regEnv
	patterns   []MemPattern
	patIdx     map[memKey]int // memory site → pattern index
	structural map[int]bool   // PCs executed scalar (trip glue, slices)

	// Guard-compare capture (conditional-loop full speculation): the
	// compare at guardPC has its operands resolved into nodes instead
	// of rejecting the extraction.
	guardPC   int // -1 when unused
	guardA    *Node
	guardB    *Node
	guardWasF bool

	sym      [armlite.NumRegs]*Node
	symPC    [armlite.NumRegs]int
	nodes    []*Node
	stores   []StoreSlot
	elemSize int
	elemDT   armlite.DataType
	isFloat  bool

	// CSE tables.
	loadNodes map[int]*Node
	constRegs map[armlite.Reg]*Node
	immNodes  map[int32]*Node

	// In-iteration aliasing guard: ranges stored so far.
	storedPatterns []int

	occ map[int]int
}

// extractPayload walks recs (one representative iteration) and builds
// the vectorizable dataflow. structural PCs are skipped; everything
// else must map onto the NEON subset or the loop is rejected.
func extractPayload(recs []StepRec, env *regEnv, patterns []MemPattern,
	patIdx map[memKey]int, structural map[int]bool) (*PayloadDAG, armlite.DataType, error) {
	x := &extractor{
		env:        env,
		patterns:   patterns,
		patIdx:     patIdx,
		structural: structural,
		guardPC:    -1,
		loadNodes:  make(map[int]*Node),
		constRegs:  make(map[armlite.Reg]*Node),
		immNodes:   make(map[int32]*Node),
		occ:        make(map[int]int),
	}
	for i := range x.symPC {
		x.symPC[i] = -1
	}
	for i := range recs {
		if err := x.step(&recs[i]); err != nil {
			return nil, 0, err
		}
	}
	if len(x.stores) == 0 {
		return nil, 0, rejectf("no-vector-store")
	}
	if x.elemDT == 0 {
		return nil, 0, rejectf("no-memory-traffic")
	}
	return &PayloadDAG{Nodes: x.nodes, Stores: x.stores, regOut: x.regOuts()}, x.elemDT, nil
}

// regOuts snapshots the final symbolic register bindings with the
// instruction address that produced each — used to rematerialize
// payload temporaries after speculative (skipped) execution.
func (x *extractor) regOuts() map[armlite.Reg]RegOut {
	out := make(map[armlite.Reg]RegOut)
	for r := armlite.Reg(0); r < armlite.NumRegs; r++ {
		if x.sym[r] != nil && x.symPC[r] >= 0 {
			out[r] = RegOut{Node: x.sym[r], PC: x.symPC[r]}
		}
	}
	return out
}

// bind records a symbolic register definition.
func (x *extractor) bind(r armlite.Reg, pc int, n *Node) {
	x.sym[r] = n
	x.symPC[r] = pc
}

// extractGuard builds the dataflow of a conditional loop's guard: the
// header computation feeding the compare at cmpPC. The compare's
// operands become lane-valued nodes so the branch outcome can be
// evaluated as a SIMD mask (full conditional speculation). Returns the
// node DAG (no stores), the two compare operands, whether the compare
// is a float compare, and the element type.
func extractGuard(recs []StepRec, env *regEnv, patterns []MemPattern,
	patIdx map[memKey]int, structural map[int]bool, cmpPC int) (*PayloadDAG, *Node, *Node, bool, armlite.DataType, error) {
	x := &extractor{
		env:        env,
		patterns:   patterns,
		patIdx:     patIdx,
		structural: structural,
		guardPC:    cmpPC,
		loadNodes:  make(map[int]*Node),
		constRegs:  make(map[armlite.Reg]*Node),
		immNodes:   make(map[int32]*Node),
		occ:        make(map[int]int),
	}
	for i := range recs {
		if err := x.step(&recs[i]); err != nil {
			return nil, nil, nil, false, 0, err
		}
	}
	if x.guardA == nil {
		return nil, nil, nil, false, 0, rejectf("guard-compare-not-found")
	}
	if x.elemDT == 0 {
		// Mask would be iteration-invariant; nothing to select on.
		return nil, nil, nil, false, 0, rejectf("guard-not-lane-varying")
	}
	return &PayloadDAG{Nodes: x.nodes}, x.guardA, x.guardB, x.guardWasF, x.elemDT, nil
}

func (x *extractor) addNode(n *Node) *Node {
	x.nodes = append(x.nodes, n)
	return n
}

// operand resolves a register read to a DAG node.
func (x *extractor) operand(r armlite.Reg) (*Node, error) {
	if n := x.sym[r]; n != nil {
		return n, nil
	}
	switch x.env.class(r) {
	case clInvariant:
		if n := x.constRegs[r]; n != nil {
			return n, nil
		}
		n := x.addNode(&Node{Kind: NodeConstReg, Reg: r})
		x.constRegs[r] = n
		return n, nil
	case clInduction:
		return nil, rejectf("induction-value-used-as-data")
	default:
		return nil, rejectf("loop-varying-scalar-operand")
	}
}

func (x *extractor) immNode(v int32) *Node {
	if n := x.immNodes[v]; n != nil {
		return n
	}
	n := x.addNode(&Node{Kind: NodeImm, Imm: v})
	x.immNodes[v] = n
	return n
}

// setElem fixes the element type from the first streaming access and
// enforces the paper's "inconsistent length of members" inhibitor.
func (x *extractor) setElem(dt armlite.DataType) error {
	if x.elemDT == 0 {
		x.elemDT = dt.Vector()
		x.elemSize = dt.Size()
		x.isFloat = dt.IsFloat()
		return nil
	}
	if dt.Size() != x.elemSize || dt.IsFloat() != x.isFloat {
		return rejectf("mixed-element-widths")
	}
	return nil
}

func (x *extractor) step(r *StepRec) error {
	in := r.Instr
	// Memory-site occurrence numbering must advance even for skipped
	// instructions so patIdx keys stay aligned.
	var site memKey
	if r.HasMem {
		o := x.occ[r.PC]
		x.occ[r.PC] = o + 1
		site = memKey{pc: r.PC, occ: o}
	}
	if x.structural[r.PC] {
		return nil
	}
	switch in.Op {
	case armlite.OpNop, armlite.OpBL, armlite.OpBX:
		// Call/return glue of function loops.
		return nil
	case armlite.OpB:
		if in.Cond == armlite.CondAL {
			return nil // unconditional control glue (if/else joins)
		}
		return rejectf("unhandled-conditional-branch")
	case armlite.OpHalt:
		return rejectf("halt-inside-loop")
	}
	if in.Cond != armlite.CondAL {
		return rejectf("predicated-instruction")
	}

	switch in.Op {
	case armlite.OpLdr:
		pi, ok := x.patIdx[site]
		if !ok {
			return rejectf("unmatched-memory-site")
		}
		p := x.patterns[pi]
		if p.Stride == 0 {
			// Loop-invariant load → broadcast.
			if n := x.loadNodes[pi]; n != nil {
				x.bind(in.Rd, r.PC, n)
			} else {
				n = x.addNode(&Node{Kind: NodeConstMem, Pattern: pi})
				x.loadNodes[pi] = n
				x.bind(in.Rd, r.PC, n)
			}
			x.afterDef(in)
			return nil
		}
		if p.Stride != int64(p.Size) {
			return rejectf("non-contiguous-access")
		}
		if err := x.setElem(in.DT); err != nil {
			return err
		}
		if x.aliasesStored(pi) {
			return rejectf("in-iteration-aliasing")
		}
		if n := x.loadNodes[pi]; n != nil {
			x.bind(in.Rd, r.PC, n)
		} else {
			n = x.addNode(&Node{Kind: NodeLoad, Pattern: pi})
			x.loadNodes[pi] = n
			x.bind(in.Rd, r.PC, n)
		}
		x.afterDef(in)
		return nil

	case armlite.OpStr:
		pi, ok := x.patIdx[site]
		if !ok {
			return rejectf("unmatched-memory-site")
		}
		p := x.patterns[pi]
		if p.Stride != int64(p.Size) {
			return rejectf("non-contiguous-access")
		}
		if err := x.setElem(in.DT); err != nil {
			return err
		}
		v, err := x.operand(in.Rd)
		if err != nil {
			return err
		}
		x.stores = append(x.stores, StoreSlot{Pattern: pi, Value: v})
		x.storedPatterns = append(x.storedPatterns, pi)
		x.afterDef(in)
		return nil

	case armlite.OpMov:
		if in.HasImm {
			x.bind(in.Rd, r.PC, x.immNode(in.Imm))
		} else {
			n, err := x.operand(in.Rm)
			if err != nil {
				return err
			}
			x.bind(in.Rd, r.PC, n)
		}
		return nil

	case armlite.OpAdd, armlite.OpSub, armlite.OpRsb, armlite.OpMul,
		armlite.OpAnd, armlite.OpOrr, armlite.OpEor,
		armlite.OpFAdd, armlite.OpFSub, armlite.OpFMul:
		return x.binOp(in, r.PC)

	case armlite.OpMla:
		a, err := x.operand(in.Rn)
		if err != nil {
			return err
		}
		b, err := x.operand(in.Rm)
		if err != nil {
			return err
		}
		c, err := x.operand(in.Ra)
		if err != nil {
			return err
		}
		mul := x.addNode(&Node{Kind: NodeExpr, Op: armlite.OpMul, A: a, B: b})
		x.bind(in.Rd, r.PC, x.addNode(&Node{Kind: NodeExpr, Op: armlite.OpAdd, A: mul, B: c}))
		return nil

	case armlite.OpLsl, armlite.OpLsr, armlite.OpAsr:
		if !in.HasImm {
			return rejectf("register-shift-amount")
		}
		if x.elemDT != 0 && x.elemSize != 4 {
			// Lane shifts on narrow elements diverge from the
			// scalar's 32-bit semantics; reject to stay exact.
			return rejectf("shift-on-narrow-elements")
		}
		if in.Op == armlite.OpLsr {
			// vshr is arithmetic in our vector subset; logical right
			// shift only matches on non-negative values, which we
			// cannot prove — compilers emit asr for the signed case.
			return rejectf("logical-shift-unsupported")
		}
		a, err := x.operand(in.Rn)
		if err != nil {
			return err
		}
		x.bind(in.Rd, r.PC, x.addNode(&Node{Kind: NodeExpr, Op: in.Op, A: a, Imm: in.Imm}))
		return nil

	case armlite.OpCmp, armlite.OpCmn, armlite.OpTst, armlite.OpFCmp:
		if r.PC == x.guardPC && x.guardA == nil &&
			(in.Op == armlite.OpCmp || in.Op == armlite.OpFCmp) {
			a, err := x.operand(in.Rn)
			if err != nil {
				return err
			}
			var b *Node
			if in.HasImm {
				b = x.immNode(in.Imm)
			} else {
				if b, err = x.operand(in.Rm); err != nil {
					return err
				}
			}
			x.guardA, x.guardB = a, b
			x.guardWasF = in.Op == armlite.OpFCmp
			return nil
		}
		return rejectf("compare-in-payload")

	case armlite.OpSdiv, armlite.OpUdiv, armlite.OpFDiv:
		return rejectf("division-in-payload")

	default:
		return rejectf("unsupported-op-%s", in.Op)
	}
}

// binOp handles two-operand data processing.
func (x *extractor) binOp(in *armlite.Instr, pc int) error {
	if in.Op.IsALU() && x.isFloatOp(in.Op) != x.isFloat && x.elemDT != 0 {
		return rejectf("int-float-mix")
	}
	a, err := x.operand(in.Rn)
	if err != nil {
		return err
	}
	var b *Node
	if in.HasImm {
		b = x.immNode(in.Imm)
	} else {
		if b, err = x.operand(in.Rm); err != nil {
			return err
		}
	}
	op := in.Op
	if op == armlite.OpRsb {
		op = armlite.OpSub
		a, b = b, a
	}
	if _, ok := armlite.VectorALUOp(op); !ok {
		return rejectf("unsupported-op-%s", op)
	}
	x.bind(in.Rd, pc, x.addNode(&Node{Kind: NodeExpr, Op: op, A: a, B: b}))
	return nil
}

func (x *extractor) isFloatOp(op armlite.Op) bool {
	return op == armlite.OpFAdd || op == armlite.OpFSub || op == armlite.OpFMul || op == armlite.OpFDiv
}

// afterDef invalidates CSE'd symbols when a memory instruction writes
// back its base register (the base is induction; handled by deltas).
func (x *extractor) afterDef(in *armlite.Instr) {
	// Post-index writeback updates an induction register; nothing to
	// do for the dataflow, but a destination register that doubles as
	// a previously CSE'd symbol must be refreshed — handled because
	// sym[rd] is overwritten at the definition site.
	_ = in
}

// aliasesStored reports whether loading stream pi could read bytes an
// earlier store in the same iteration wrote (store-to-load forwarding
// would be needed — rejected, keeping vector execution exact).
func (x *extractor) aliasesStored(pi int) bool {
	lp := x.patterns[pi]
	lLo, lHi := lp.Range(lp.RefIterA, lp.RefIterB+64)
	for _, si := range x.storedPatterns {
		sp := x.patterns[si]
		sLo, sHi := sp.Range(sp.RefIterA, sp.RefIterB+64)
		if rangesOverlap(sLo, sHi, lLo, lHi) {
			return true
		}
	}
	return false
}
