package dsa

import "testing"

// TestDSACacheRoundRobinThrash: 32 loops through a 16-entry cache in
// round-robin order must never hit (true LRU behaviour).
func TestDSACacheRoundRobinThrash(t *testing.T) {
	c := NewDSACache(1 << 10) // 16 entries
	hits := 0
	for pass := 0; pass < 4; pass++ {
		for id := 0; id < 32; id++ {
			if _, ok := c.Lookup(id); ok {
				hits++
			} else {
				c.Insert(&CachedLoop{LoopID: id})
			}
		}
	}
	if hits != 0 {
		t.Errorf("hits = %d, want 0 (len %d)", hits, c.Len())
	}
}
