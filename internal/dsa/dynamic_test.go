package dsa

import (
	"testing"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
)

// sentinelSrc scans a zero-terminated byte string, writing c+1 for
// each character — the §4.6.5 sentinel shape: the stop check precedes
// the payload, and the range is unknown until the terminator loads.
const sentinelSrc = `
        mov   r5, #0x1000     ; src cursor
        mov   r2, #0x2000     ; dst cursor
loop:   ldrb  r3, [r5], #1
        cmp   r3, #0
        beq   done
        add   r4, r3, #1
        strb  r4, [r2], #1
        b     loop
done:   halt
`

func seedSentinel(n int) func(*cpu.Machine) {
	return func(m *cpu.Machine) {
		buf := make([]byte, n+1)
		for i := 0; i < n; i++ {
			buf[i] = byte(1 + (i*7)%200)
		}
		buf[n] = 0
		m.Mem.WriteBytes(0x1000, buf)
	}
}

// TestSentinelPaperExample reproduces the Fig. 23 flow: speculative
// range, idle payload during the window, discarded results past the
// real range.
func TestSentinelPaperExample(t *testing.T) {
	prog := asm.MustAssemble("sentinel", sentinelSrc)
	for _, n := range []int{10, 16, 18, 40, 100} {
		setup := seedSentinel(n)
		ref := runScalar(t, prog, setup)
		s := runDSA(t, prog, DefaultConfig(), setup)
		wantB, _ := ref.Mem.ReadBytes(0x2000, n+2)
		gotB, _ := s.M.Mem.ReadBytes(0x2000, n+2)
		for i := range wantB {
			if wantB[i] != gotB[i] {
				t.Fatalf("n=%d: byte %d = %d, want %d", n, i, gotB[i], wantB[i])
			}
		}
		if s.M.R[armlite.R2] != ref.R[armlite.R2] {
			t.Fatalf("n=%d: dst cursor = %#x, want %#x", n, s.M.R[armlite.R2], ref.R[armlite.R2])
		}
		if s.M.R[armlite.R5] != ref.R[armlite.R5] {
			t.Fatalf("n=%d: src cursor = %#x, want %#x", n, s.M.R[armlite.R5], ref.R[armlite.R5])
		}
		st := s.Stats()
		if n >= 16 && st.Takeovers == 0 {
			t.Fatalf("n=%d: sentinel not taken over; rejections=%v", n, st.RejectedReasons)
		}
		if st.ByKind[KindSentinel] == 0 {
			t.Fatalf("n=%d: census=%v rejections=%v", n, st.ByKind, st.RejectedReasons)
		}
	}
}

// TestSentinelRangeLearning: on re-entry the speculative range adapts
// to the last observed real range (Fig. 23's second execution).
func TestSentinelRangeLearning(t *testing.T) {
	src := `
        mov   r8, #0
outer:  mov   r5, #0x1000
        mov   r2, #0x2000
loop:   ldrb  r3, [r5], #1
        cmp   r3, #0
        beq   done
        add   r4, r3, #1
        strb  r4, [r2], #1
        b     loop
done:   add   r8, r8, #1
        cmp   r8, #3
        blt   outer
        halt
`
	prog := asm.MustAssemble("sentinel2", src)
	const n = 100
	setup := seedSentinel(n)
	ref := runScalar(t, prog, setup)
	s := runDSA(t, prog, DefaultConfig(), setup)
	wantB, _ := ref.Mem.ReadBytes(0x2000, n+1)
	gotB, _ := s.M.Mem.ReadBytes(0x2000, n+1)
	for i := range wantB {
		if wantB[i] != gotB[i] {
			t.Fatalf("byte %d = %d, want %d", i, gotB[i], wantB[i])
		}
	}
	st := s.Stats()
	if st.Takeovers < 2 {
		t.Errorf("takeovers = %d, want one per entry after analysis", st.Takeovers)
	}
	entry, ok := s.E.Cache.Lookup(prog.Labels["loop"])
	if !ok {
		t.Fatal("sentinel loop not cached")
	}
	if entry.SentinelRange < 90 {
		t.Errorf("learned sentinel range = %d, want ≈100", entry.SentinelRange)
	}
	if st.DSACacheHits == 0 {
		t.Error("expected DSA cache hits on re-entry")
	}
}

// TestSentinelDisabled: the Original DSA rejects sentinel loops but
// execution stays correct.
func TestSentinelDisabled(t *testing.T) {
	prog := asm.MustAssemble("sentinel", sentinelSrc)
	setup := seedSentinel(50)
	ref := runScalar(t, prog, setup)
	s := runDSA(t, prog, OriginalConfig(), setup)
	wantB, _ := ref.Mem.ReadBytes(0x2000, 51)
	gotB, _ := s.M.Mem.ReadBytes(0x2000, 51)
	for i := range wantB {
		if wantB[i] != gotB[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
	if s.Stats().Takeovers != 0 {
		t.Error("original DSA must not vectorize sentinel loops")
	}
	if s.Stats().RejectedReasons["sentinel-disabled"] == 0 {
		t.Errorf("rejections = %v", s.Stats().RejectedReasons)
	}
}

// conditionalSrc is the Fig. 19 shape: out[i] = a[i] > b[i] ? a[i]-b[i]
// : b[i]-a[i], compiled as an if/else with index addressing.
const conditionalSrc = `
        mov   r5, #0x1000     ; &a
        mov   r10, #0x2000    ; &b
        mov   r2, #0x3000     ; &out
        mov   r0, #0          ; i
        mov   r4, #64         ; n
loop:   ldr   r3, [r5, r0, lsl #2]
        ldr   r1, [r10, r0, lsl #2]
        cmp   r3, r1
        ble   elseL
        sub   r6, r3, r1
        str   r6, [r2, r0, lsl #2]
        b     endif
elseL:  sub   r6, r1, r3
        str   r6, [r2, r0, lsl #2]
endif:  add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`

func seedConditional(m *cpu.Machine) {
	a := make([]int32, 80)
	b := make([]int32, 80)
	for i := range a {
		a[i] = int32((i * 13) % 97)
		b[i] = int32((i * 31) % 89)
	}
	m.Mem.WriteWords(0x1000, a)
	m.Mem.WriteWords(0x2000, b)
}

// TestConditionalLoop reproduces the §4.6.4 flow: condition discovery
// through path signatures, per-condition vectorization, vector-map
// masked commits.
func TestConditionalLoop(t *testing.T) {
	prog := asm.MustAssemble("cond", conditionalSrc)
	ref := runScalar(t, prog, seedConditional)
	s := runDSA(t, prog, DefaultConfig(), seedConditional)
	checkWords(t, ref, s.M, 0x3000, 64, "conditional out")
	st := s.Stats()
	if st.ByKind[KindConditional] != 1 {
		t.Fatalf("census = %v, rejections = %v", st.ByKind, st.RejectedReasons)
	}
	if st.Takeovers != 1 {
		t.Fatalf("takeovers = %d", st.Takeovers)
	}
	if st.ArrayMapAccesses == 0 {
		t.Error("no array-map activity recorded")
	}
	entry, ok := s.E.Cache.Lookup(prog.Labels["loop"])
	if !ok || entry.Kind != KindConditional {
		t.Fatalf("cache entry: %+v", entry)
	}
	if len(entry.Analysis.Cond.Paths) != 2 {
		t.Errorf("paths = %d, want 2", len(entry.Analysis.Cond.Paths))
	}
}

// TestConditionalIfOnly: an if without else (one empty path).
func TestConditionalIfOnly(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
        mov   r4, #48
loop:   ldr   r3, [r5, r0, lsl #2]
        cmp   r3, #50
        blt   skip
        add   r6, r3, #100
        str   r6, [r2, r0, lsl #2]
skip:   add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`
	prog := asm.MustAssemble("ifonly", src)
	ref := runScalar(t, prog, seedConditional)
	s := runDSA(t, prog, DefaultConfig(), seedConditional)
	checkWords(t, ref, s.M, 0x3000, 48, "if-only out")
	st := s.Stats()
	if st.ByKind[KindConditional] != 1 {
		t.Fatalf("census = %v, rejections = %v", st.ByKind, st.RejectedReasons)
	}
	entry, _ := s.E.Cache.Lookup(prog.Labels["loop"])
	var empty, nonEmpty int
	for _, p := range entry.Analysis.Cond.Paths {
		if p.ID == -1 {
			empty++
		} else {
			nonEmpty++
		}
	}
	if empty != 1 || nonEmpty != 1 {
		t.Errorf("paths: %d empty, %d non-empty", empty, nonEmpty)
	}
}

// TestConditionalDisabled: the Original DSA rejects conditional loops.
func TestConditionalDisabled(t *testing.T) {
	prog := asm.MustAssemble("cond", conditionalSrc)
	ref := runScalar(t, prog, seedConditional)
	s := runDSA(t, prog, OriginalConfig(), seedConditional)
	checkWords(t, ref, s.M, 0x3000, 64, "conditional out")
	if s.Stats().Takeovers != 0 {
		t.Error("original DSA must not vectorize conditional loops")
	}
	if s.Stats().RejectedReasons["conditional-disabled"] == 0 {
		t.Errorf("rejections = %v", s.Stats().RejectedReasons)
	}
}

// TestConditionalCacheHit: the conditional loop vectorizes from
// iteration 2 on re-entry.
func TestConditionalCacheHit(t *testing.T) {
	src := `
        mov   r8, #0
outer:  mov   r5, #0x1000
        mov   r10, #0x2000
        mov   r2, #0x3000
        mov   r0, #0
        mov   r4, #64
loop:   ldr   r3, [r5, r0, lsl #2]
        ldr   r1, [r10, r0, lsl #2]
        cmp   r3, r1
        ble   elseL
        sub   r6, r3, r1
        str   r6, [r2, r0, lsl #2]
        b     endif
elseL:  sub   r6, r1, r3
        str   r6, [r2, r0, lsl #2]
endif:  add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        add   r8, r8, #1
        cmp   r8, #2
        blt   outer
        halt
`
	prog := asm.MustAssemble("condcache", src)
	ref := runScalar(t, prog, seedConditional)
	s := runDSA(t, prog, DefaultConfig(), seedConditional)
	checkWords(t, ref, s.M, 0x3000, 64, "conditional cache-hit out")
	st := s.Stats()
	if st.Takeovers != 2 {
		t.Errorf("takeovers = %d, want 2", st.Takeovers)
	}
	if st.DSACacheHits == 0 {
		t.Error("expected a cache hit on the second entry")
	}
}

// TestConditionalRegisterLiveOut: a condition accumulating into a
// register used across iterations must be rejected, with correct
// scalar results.
func TestConditionalRegisterLiveOut(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r0, #0
        mov   r7, #0          ; accumulator (live across iterations)
        mov   r4, #40
loop:   ldr   r3, [r5, r0, lsl #2]
        cmp   r3, #50
        blt   skip
        add   r7, r7, #1      ; conditional count — not vectorizable here
skip:   add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`
	prog := asm.MustAssemble("liveout", src)
	ref := runScalar(t, prog, seedConditional)
	s := runDSA(t, prog, DefaultConfig(), seedConditional)
	if s.M.R[armlite.R7] != ref.R[armlite.R7] {
		t.Fatalf("accumulator = %d, want %d", s.M.R[armlite.R7], ref.R[armlite.R7])
	}
	if s.Stats().Takeovers != 0 {
		t.Errorf("live-out conditional must not be vectorized; rejections=%v",
			s.Stats().RejectedReasons)
	}
}

// TestConditionalByteElements: 16-lane conditional execution.
func TestConditionalByteElements(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
        mov   r4, #100
loop:   ldrb  r3, [r5, r0]
        cmp   r3, #128
        blt   lowV
        sub   r6, r3, #128
        strb  r6, [r2, r0]
        b     endif
lowV:   add   r6, r3, #64
        strb  r6, [r2, r0]
endif:  add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`
	prog := asm.MustAssemble("condbyte", src)
	setup := func(m *cpu.Machine) {
		buf := make([]byte, 128)
		for i := range buf {
			buf[i] = byte(i * 5)
		}
		m.Mem.WriteBytes(0x1000, buf)
	}
	ref := runScalar(t, prog, setup)
	s := runDSA(t, prog, DefaultConfig(), setup)
	wantB, _ := ref.Mem.ReadBytes(0x3000, 100)
	gotB, _ := s.M.Mem.ReadBytes(0x3000, 100)
	for i := range wantB {
		if wantB[i] != gotB[i] {
			t.Fatalf("byte %d = %d, want %d", i, gotB[i], wantB[i])
		}
	}
	if s.Stats().ByKind[KindConditional] != 1 {
		t.Fatalf("census=%v rejections=%v", s.Stats().ByKind, s.Stats().RejectedReasons)
	}
}
