package dsa

import (
	"repro/internal/armlite"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/policy"
)

// ReqKind discriminates takeover requests the engine hands the system.
type ReqKind int

// Request kinds.
const (
	ReqVector      ReqKind = iota // count/function/dynamic-range: full window takeover
	ReqConditional                // mapped/speculative conditional execution
	ReqSentinel                   // speculative-range sentinel execution
)

// Request asks the system to switch execution onto the NEON engine.
type Request struct {
	Kind     ReqKind
	Analysis *Analysis
	// StartIter is the first loop iteration to execute as SIMD
	// (iterations are 1-based; the request fires at the end of
	// iteration StartIter-1).
	StartIter int
	// TotalIters is the predicted total trip count (0 for sentinel).
	TotalIters int
	// SpecRange is the sentinel speculative window in iterations.
	SpecRange int
	// Cached is the DSA-cache entry backing this request (for
	// sentinel range updates).
	Cached *CachedLoop
}

// Engine is the DSA detection hardware: it owns the DSA cache and the
// verification cache, tracks every live loop, and raises Requests.
type Engine struct {
	cfg    Config
	m      *cpu.Machine
	Cache  *DSACache
	VCache *VCache
	stats  *Stats

	live    []*track
	pending *Request

	// policy is the adaptive takeover controller (nil unless
	// Config.EnablePolicy). It gates loop entries at both decision
	// points — analysis on a cache miss, takeover on a cache hit — and
	// accumulates measured win/loss outcomes per loop PC.
	policy *policy.Controller

	// kindOf deduplicates the loop-type census by static loop ID.
	kindOf map[int]LoopKind

	// free and reqFree recycle decided tracks and consumed takeover
	// requests so the steady-state watch path allocates nothing. A
	// request returns to the pool only via ReleaseRequest, after its
	// takeover fully completes — requests raised while another is in
	// flight (e.g. during verification replays) are distinct objects,
	// so an in-flight request can never be handed out twice.
	free    []*track
	reqFree []*Request
}

// NewEngine builds the detection engine observing machine m.
func NewEngine(m *cpu.Machine, cfg Config) *Engine {
	if cfg.DSACacheBytes == 0 {
		cfg = DefaultConfig()
	}
	e := &Engine{
		cfg:    cfg,
		m:      m,
		Cache:  NewDSACache(cfg.DSACacheBytes),
		VCache: NewVCache(cfg.VCacheBytes),
		stats:  newStats(),
		kindOf: make(map[int]LoopKind),
	}
	if cfg.EnablePolicy {
		e.policy = policy.New(cfg.Policy)
	}
	return e
}

// Policy returns the adaptive takeover controller, or nil when the
// engine runs without one.
func (e *Engine) Policy() *policy.Controller { return e.policy }

// energyNow evaluates the energy model over the cumulative counters —
// two calls bracket an interval, and their difference is that
// interval's energy. Pure integer-derived float arithmetic, so it is
// bit-deterministic and safe for policy decisions.
func (e *Engine) energyNow() float64 {
	return energy.Compute(energy.DefaultParams(), e.m.Counts,
		e.m.Caches.L1Stats(), e.m.Caches.L2Stats(), e.stats.EnergyEvents()).Total()
}

// policyEntry consults the controller for one entry of loop id and
// counts granted trials.
func (e *Engine) policyEntry(id int) policy.Decision {
	d := e.policy.OnEntry(id)
	if d == policy.AllowTrial {
		e.stats.PolicyTrialed++
	}
	return d
}

// policyLoss charges one non-takeover loss (rejected analysis or a
// declined cache-hit takeover) to loop id.
func (e *Engine) policyLoss(id int) {
	if e.policy == nil {
		return
	}
	if e.policy.RecordLoss(id) {
		e.stats.PolicySuspended++
	}
}

// Stats returns the accumulated counters.
func (e *Engine) Stats() *Stats { return e.stats }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// TakeRequest returns and clears the pending takeover request.
func (e *Engine) TakeRequest() *Request {
	r := e.pending
	e.pending = nil
	return r
}

// newRequest takes a request object from the pool (or allocates one)
// and fills it.
func (e *Engine) newRequest(r Request) *Request {
	if n := len(e.reqFree); n > 0 {
		p := e.reqFree[n-1]
		e.reqFree = e.reqFree[:n-1]
		*p = r
		return p
	}
	p := new(Request)
	*p = r
	return p
}

// ReleaseRequest returns a consumed request to the pool. Callers must
// hold no references to r afterwards.
func (e *Engine) ReleaseRequest(r *Request) {
	if r == nil {
		return
	}
	*r = Request{}
	e.reqFree = append(e.reqFree, r)
}

// takeTrack recycles a decided track (or allocates a fresh one).
func (e *Engine) takeTrack(id, branchPC int) *track {
	var t *track
	if n := len(e.free); n > 0 {
		t = e.free[n-1]
		e.free = e.free[:n-1]
		t.reset(id, branchPC)
	} else {
		t = newTrack(id, branchPC)
	}
	if e.policy != nil {
		// Mark the end of iteration 1: iteration 2's tick and energy
		// deltas sample the loop's own scalar per-iteration cost.
		t.tickMark = e.m.Ticks
		t.energyMark = e.energyNow()
	}
	return t
}

// Observe feeds one retired instruction to the detection logic.
func (e *Engine) Observe(rec *cpu.Record) {
	e.stats.Observations++
	if len(e.live) == 0 {
		// Fast path: no analysis in flight. Only a taken backward
		// branch can start one; everything below (the per-instruction
		// analysis tick, track stepping, justDecided) is a no-op with
		// no live tracks.
		if rec.Instr.Op == armlite.OpB && rec.Taken && rec.Instr.Target < rec.PC {
			e.detectLoop(rec.Instr.Target, rec.PC)
		}
		return
	}
	e.stats.AnalysisTicks += e.cfg.Latencies.ObservePerInstr
	s := StepRec{PC: rec.PC, Instr: rec.Instr, Taken: rec.Taken}
	if rec.Nmem > 0 {
		s.HasMem = true
		s.MemAddr = rec.Mem[0].Addr
		s.MemSize = rec.Mem[0].Size
		s.MemStore = rec.Mem[0].Store
	}

	// Existing tracks first: the record may close their iteration.
	justDecided := false
	for _, t := range e.live {
		before := t.stage
		e.trackStep(t, &s)
		if t.id == rec.Instr.Target && t.branchPC == rec.PC &&
			before != stDecided && t.stage == stDecided {
			justDecided = true
		}
	}
	e.prune()

	// New-loop detection: a taken backward branch ends iteration 1.
	// A loop whose own track reached a verdict on this very record
	// must not be re-detected (it would immediately hit the entry its
	// decision just inserted and double-raise the takeover).
	if rec.Instr.Op == armlite.OpB && rec.Taken && rec.Instr.Target < rec.PC && !justDecided {
		if e.findTrack(rec.Instr.Target, rec.PC) == nil {
			e.detectLoop(rec.Instr.Target, rec.PC)
		}
	}
}

func (e *Engine) findTrack(id, branchPC int) *track {
	for _, t := range e.live {
		if t.id == id && t.branchPC == branchPC {
			return t
		}
	}
	return nil
}

// setKind files loop id under kind in the census, reclassifying (and
// keeping one entry per static loop) on change.
func (e *Engine) setKind(id int, k LoopKind) {
	if old, ok := e.kindOf[id]; ok {
		if old == k {
			return
		}
		if e.stats.ByKind[old] > 0 {
			e.stats.ByKind[old]--
		}
	}
	e.kindOf[id] = k
	e.stats.ByKind[k]++
}

// prune drops decided tracks, returning them to the free list.
func (e *Engine) prune() {
	out := e.live[:0]
	for _, t := range e.live {
		if t.stage != stDecided {
			out = append(out, t)
		} else {
			e.free = append(e.free, t)
		}
	}
	e.live = out
}

// detectLoop is the Loop Detection stage: consult the DSA cache, then
// either raise an immediate takeover (hit) or begin tracking (miss).
func (e *Engine) detectLoop(id, branchPC int) {
	e.stats.LoopsDetected++
	e.stats.StateTransitions++
	e.stats.DSACacheAccesses++
	e.stats.AnalysisTicks += e.cfg.Latencies.DSACacheAccess

	// Any live outer track now contains an inner loop.
	for _, t := range e.live {
		if t.inBody(id) || t.inBody(branchPC) {
			t.innerLoops = true
			t.kind = KindNested
			e.setKind(t.id, KindNested)
			t.stage = stDecided
		}
	}
	e.prune()

	if cached, ok := e.Cache.Lookup(id); ok {
		e.stats.DSACacheHits++
		e.onCacheHit(cached, branchPC)
		return
	}
	// Adaptive gate (analysis level): a suspended loop is observed —
	// the detection hardware cannot help seeing its back branch — but
	// no track is opened, so no analysis energy or host time is spent.
	if e.policy != nil && e.policyEntry(id) == policy.Deny {
		return
	}
	t := e.takeTrack(id, branchPC)
	t.snapCur = e.m.R
	e.live = append(e.live, t)
}

// onCacheHit handles a previously verified loop: re-raise its
// takeover, or re-analyze when the range mechanism shows a new limit
// (dynamic-range type A, Fig. 24).
func (e *Engine) onCacheHit(c *CachedLoop, branchPC int) {
	if !c.Vectorizable {
		// Known non-vectorizable: skip all analysis.
		return
	}
	if e.pending != nil {
		// One takeover request at a time; this entry runs scalar and
		// the next entry will hit again.
		return
	}
	// Adaptive gate (takeover level): suspended loops stay scalar.
	if e.policy != nil && e.policyEntry(c.LoopID) == policy.Deny {
		return
	}
	a := c.Analysis
	limitNow, limitKnown := e.currentLimit(a)
	if limitKnown && !c.LimitIsImm && limitNow != c.LimitValue {
		// Range changed since the verdict: dynamic-range loop.
		if !e.cfg.EnableDynamicRange {
			e.stats.RejectedReasons["dynamic-range-disabled"]++
			return
		}
		e.setKind(c.LoopID, KindDynamicRange)
		c.LimitValue = limitNow
		t := e.takeTrack(c.LoopID, branchPC)
		t.kind = KindDynamicRange
		t.snapCur = e.m.R
		e.live = append(e.live, t)
		e.stats.AnalysisTicks += e.cfg.Latencies.PartialReanalysis
		return
	}
	if !e.rebase(a) {
		// Cannot recompute stream bases from the register file;
		// re-analyze from scratch.
		t := e.takeTrack(c.LoopID, branchPC)
		t.snapCur = e.m.R
		e.live = append(e.live, t)
		return
	}
	switch a.Kind {
	case KindSentinel:
		e.pending = e.newRequest(Request{Kind: ReqSentinel, Analysis: a, StartIter: 2,
			SpecRange: specRangeFor(c.SentinelRange, a.Lanes()), Cached: c})
	case KindConditional:
		n := e.predictTotal(a, 1)
		if n-2 < 2*a.Lanes() {
			// Declining a cached loop costs one cache lookup — too cheap
			// to count as a policy loss (a loop with variable trip counts
			// would otherwise get benched for its short entries even when
			// its long entries win).
			return // too short to pay for the switch this entry
		}
		e.pending = e.newRequest(Request{Kind: ReqConditional, Analysis: a, StartIter: 2, TotalIters: n, Cached: c})
	default:
		n := e.predictTotal(a, 1)
		if n-2 < 2*a.Lanes() {
			// Cheap cached decline — not a policy loss (see above).
			return // too short to pay for the switch this entry
		}
		// Re-validate the dependency prediction under the new range.
		// The memo replays the last verdict when the rebased geometry
		// is provably equivalent (memo.go); the stats charge is the
		// same either way — the hardware still runs its comparators,
		// the simulator just skips recomputing a known answer.
		res, ok := c.memoPredict(a.Patterns, n)
		if !ok {
			res = PredictCID(a.Patterns, 2, n)
			c.memoStore(a.Patterns, n, res)
		}
		e.stats.CIDPCompares += uint64(res.Compares)
		e.stats.AnalysisTicks += int64(res.Compares) * e.cfg.Latencies.CIDPCompare
		if res.HasCID && !a.Partial {
			if !e.cfg.EnablePartial || res.Distance < 2 {
				// Cheap cached decline — not a policy loss (see above).
				return
			}
		}
		a.CID = res
		a.Partial = res.HasCID
		e.pending = e.newRequest(Request{Kind: ReqVector, Analysis: a, StartIter: 2, TotalIters: n, Cached: c})
	}
}

// currentLimit reads the trip-limit value from the live register file.
func (e *Engine) currentLimit(a *Analysis) (uint32, bool) {
	if a.Trip.CounterReg == armlite.NoReg {
		return 0, false
	}
	if a.Trip.LimitIsImm {
		return uint32(a.Trip.LimitImm), true
	}
	if a.Trip.LimitReg.Valid() {
		return e.m.R[a.Trip.LimitReg], true
	}
	return 0, false
}

// predictTotal computes the total trip count given that doneIters
// iterations have completed, reading live register values.
func (e *Engine) predictTotal(a *Analysis, doneIters int) int {
	limit, ok := e.currentLimit(a)
	if !ok {
		return 0
	}
	rem, ok := a.Trip.Remaining(e.m.R[a.Trip.CounterReg], limit)
	if !ok {
		return 0
	}
	return doneIters + rem
}

// rebase recomputes every pattern's reference address from the live
// register file — the state at the end of iteration k is exactly the
// state entering iteration k+1, so each post-index stream restarts at
// its base register's current value. Multi-occurrence sites cannot be
// rebased this way.
func (e *Engine) rebase(a *Analysis) bool {
	for i := range a.Patterns {
		p := &a.Patterns[i]
		if p.MultiOcc {
			return false
		}
	}
	rebaseSlice := func(ps []MemPattern) bool {
		for i := range ps {
			p := &ps[i]
			addr, ok := evalMemOperand(&p.Mem, &e.m.R)
			if !ok {
				return false
			}
			// The register file at the end of iteration k holds the
			// state entering iteration k+1; takeovers on a cache hit
			// start at iteration 2, so anchor the stream there.
			p.AddrA = addr
			p.AddrB = addr + uint32(p.Stride)
			p.RefIterA = 2
			p.RefIterB = 3
		}
		return true
	}
	if !rebaseSlice(a.Patterns) {
		return false
	}
	if a.Cond != nil {
		for pi := range a.Cond.Paths {
			if !rebaseSlice(a.Cond.Paths[pi].patterns) {
				return false
			}
		}
	}
	return true
}

// evalMemOperand computes the effective address of a memory operand
// under the given register file (pre-execution semantics).
func evalMemOperand(mo *armlite.Mem, r *[armlite.NumRegs]uint32) (uint32, bool) {
	if !mo.Base.Valid() {
		return 0, false
	}
	base := r[mo.Base]
	switch mo.Kind {
	case armlite.AddrPostIndex:
		return base, true
	case armlite.AddrRegOffset:
		if !mo.Index.Valid() {
			return 0, false
		}
		return base + (r[mo.Index] << mo.Shift), true
	default:
		if mo.Writeback {
			return base, true
		}
		return base + uint32(mo.Offset), true
	}
}

// specRangeFor picks the sentinel speculative window: the smallest
// multiple of the lane count covering the last observed range
// (§4.6.5), or one full vector when nothing is known yet.
func specRangeFor(lastRange, lanes int) int {
	if lastRange <= 0 {
		return lanes
	}
	return ((lastRange + lanes - 1) / lanes) * lanes
}

// trackStep advances one live track with one record.
func (e *Engine) trackStep(t *track, s *StepRec) {
	if t.stage == stDecided {
		return
	}
	if !t.inIteration {
		if s.PC == t.id {
			t.beginIteration()
		} else {
			return
		}
	}
	if t.occ == nil {
		t.occ = make(map[int]int)
	}
	t.observe(s, t.occ)
	if t.stage == stDecided {
		// observe() itself can reject (record-buffer overflow).
		e.recordVerdict(t, false)
		return
	}

	// Mid-body exit taken: the loop ended inside an iteration.
	if t.exitTaken {
		t.exited = true
		e.finalize(t)
		return
	}
	if s.PC == t.branchPC && s.Instr.Op == armlite.OpB {
		if s.Taken {
			e.endIteration(t)
		} else {
			t.exited = true
			e.finalize(t)
		}
	}
}

// finalize closes a track whose loop exited before a verdict.
func (e *Engine) finalize(t *track) {
	if t.stage != stDecided {
		if t.rejected == "" {
			t.rejected = "exited-before-analysis"
		}
		t.stage = stDecided
	}
	e.recordVerdict(t, false)
}

// recordVerdict updates the census and (for definitive rejections)
// the DSA cache.
func (e *Engine) recordVerdict(t *track, vectorizable bool) {
	if vectorizable {
		// Dynamic-range reclassifications keep their census slot.
		if e.kindOf[t.id] != KindDynamicRange || t.kind == KindDynamicRange {
			e.setKind(t.id, t.kind)
		}
		return
	}
	if t.rejected != "" {
		e.stats.RejectedReasons[t.rejected]++
	}
	// Every rejected analysis spent detection work for nothing — a loss
	// in the adaptive ledger (including data-dependent rejections that
	// are NOT cached and would otherwise re-analyze on every entry).
	e.policyLoss(t.id)
	// Data-dependent verdicts (the path mix or coverage may differ on
	// the next entry) are not cached; structural ones are.
	if t.kind == KindNonVectorizable && t.rejected != "exited-before-analysis" &&
		t.rejected != "coverage-incomplete" && t.rejected != "conditional-single-path" {
		// Definitive structural rejections are cached so re-entries
		// skip analysis (the paper stores non-vectorizable IDs too).
		e.setKind(t.id, KindNonVectorizable)
		e.Cache.Insert(&CachedLoop{LoopID: t.id, Kind: KindNonVectorizable, Reason: t.rejected})
		e.stats.DSACacheAccesses++
		e.stats.AnalysisTicks += e.cfg.Latencies.DSACacheAccess
	}
}

// Blacklist pins loopID in the DSA cache as non-vectorizable after a
// rolled-back takeover, so every future entry of the loop skips
// analysis and runs scalar — the paper's safety guarantee (anything
// unverifiable stays on the ARM core) enforced at run time.
func (e *Engine) Blacklist(loopID int, cause string) {
	e.setKind(loopID, KindNonVectorizable)
	e.Cache.Insert(&CachedLoop{LoopID: loopID, Kind: KindNonVectorizable, Reason: "fallback:" + cause})
	e.stats.DSACacheAccesses++
	e.stats.AnalysisTicks += e.cfg.Latencies.DSACacheAccess
	// Any pending offer is stale once its loop (or a sibling) failed.
	if e.pending != nil {
		e.ReleaseRequest(e.pending)
		e.pending = nil
	}
}

// NoteVectorized informs outer tracks that an inner region executed
// as SIMD (their record stream has a gap there).
func (e *Engine) NoteVectorized(bodyStart, bodyEnd int) {
	for _, t := range e.live {
		if t.inBody(bodyStart) || t.inBody(bodyEnd) {
			t.hasInnerVec = true
			t.kind = KindNested
			t.stage = stDecided
			e.setKind(t.id, KindNested)
		}
	}
	e.prune()
}

// endIteration processes a completed iteration — the per-iteration
// state-machine transition of Fig. 12.
func (e *Engine) endIteration(t *track) {
	t.iter++
	t.inIteration = false
	if t.occ != nil {
		clear(t.occ) // retain the map for the next iteration
	}
	e.stats.StateTransitions++

	// Register snapshots and cumulative delta verification.
	t.snapPrev = t.snapCur
	t.snapCur = e.m.R
	if t.iter >= 2 {
		for r := 0; r < armlite.NumRegs; r++ {
			d := int64(int32(t.snapCur[r] - t.snapPrev[r]))
			if t.iter == 2 {
				t.delta[r] = d
				t.deltaOK[r] = true
			} else if t.deltaOK[r] && t.delta[r] != d {
				t.deltaOK[r] = false
			}
		}
	}

	switch {
	case t.iter == 2:
		if e.policy != nil {
			// Iteration 2 ran fully scalar between the marks: its cost
			// is the per-iteration baseline a takeover must beat.
			e.policy.SetBaseline(t.id, e.m.Ticks-t.tickMark, e.energyNow()-t.energyMark)
		}
		e.dataCollection(t)
	case t.iter == 3 && !t.condSeen:
		e.dependencyAnalysis(t)
	default:
		if t.condSeen {
			e.mappingStage(t)
		} else if t.stage != stDecided {
			// Simple loops decide at iteration 3; reaching here means
			// an earlier stage rejected but kept tracking — close.
			e.finalize(t)
		}
	}
}

// dataCollection is the iteration-2 stage: store the iteration's
// records and its data-memory addresses in the verification cache.
func (e *Engine) dataCollection(t *track) {
	t.stage = stCollected
	e.stats.StateTransitions++
	t.it2 = append(t.it2[:0], t.cur...)

	e.VCache.Reset()
	for i := range t.cur {
		r := &t.cur[i]
		if !r.HasMem {
			continue
		}
		e.stats.VCacheAccesses++
		e.stats.AnalysisTicks += e.cfg.Latencies.VCacheAccess
		if !e.VCache.Record(r.PC, r.MemAddr, r.MemSize, r.MemStore, r.Instr.DT) {
			e.stats.VCacheOverflows++
			t.reject("vcache-overflow")
			e.recordVerdict(t, false)
			return
		}
	}
	if t.condSeen {
		t.stage = stMapping
		e.recordPath(t)
	}
}

// dependencyAnalysis is the iteration-3 stage for non-conditional
// loops: derive the trip mechanism and memory patterns, run the CIDP,
// extract the payload and decide.
func (e *Engine) dependencyAnalysis(t *track) {
	e.stats.StateTransitions++
	t.it3 = append(t.it3[:0], t.cur...)
	if t.exitSeen || e.deriveTrip(t) == nil {
		// Data-dependent exit: sentinel path.
		e.decideSentinel(t)
		return
	}
	e.decideSimple(t)
}
