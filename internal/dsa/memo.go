package dsa

// CID memoization for DSA-cache hits.
//
// On every re-entry of a cached loop the engine re-validates the
// dependency prediction under the new trip count (onCacheHit calls
// PredictCID over the rebased patterns). For the steady state — the
// same loop re-entered thousands of times with the same shape — that
// recomputation dominates the whole watch path, yet its outcome is a
// pure function of (trip count, relative stream geometry):
//
// PredictCID compares addresses of the form
//
//	addr(i) = uint32(base + stride·(i − refIter))
//
// and every comparison it makes (rangesOverlap over [lo, hi] pairs) is
// invariant under adding a common offset to every base — PROVIDED no
// uint32 wrap occurs, i.e. every exact int64 address over the window
// stays inside [0, 2^32). So a cached verdict can be replayed when:
//
//  1. the trip count n is the same,
//  2. every pattern's base address has the same offset relative to
//     pattern 0's base (same relative geometry), and the strides,
//     sizes and store flags are unchanged, and
//  3. either the absolute base is identical (addresses are literally
//     the same), or BOTH the memoized run and the current run are
//     wrap-free over the window (shift invariance applies).
//
// Compares (the energy-model counter) depends only on the store/load
// pair count, which condition 2 fixes, so the replayed stats charge is
// exact. The golden suite pins all of this: a memo that replayed a
// wrong verdict or mis-charged a counter diverges from the v2 digests.
type cidMemo struct {
	valid   bool
	n       int     // trip count the verdict was computed for
	base0   int64   // patterns[0].AddrA at memo time
	rel     []int64 // per-pattern AddrA − base0
	stride  []int64 // per-pattern stride (guards condition 2)
	size    []int   // per-pattern access width
	store   []bool  // per-pattern store flag
	bounded bool    // memo run was wrap-free over [2, n]
	res     CIDResult
}

// cidBounded reports whether every byte the patterns touch over
// iterations [firstIter, lastIter] has an exact int64 address inside
// [0, 2^32) — the no-wrap precondition for shift invariance.
func cidBounded(patterns []MemPattern, firstIter, lastIter int) bool {
	for i := range patterns {
		if !patternBounded(&patterns[i], firstIter, lastIter) {
			return false
		}
	}
	return true
}

// memoPredict replays the memoized PredictCID verdict when the current
// rebased patterns satisfy the invariance conditions above. The second
// return is false when the memo cannot be used and the caller must run
// the predictor for real.
func (c *CachedLoop) memoPredict(patterns []MemPattern, n int) (CIDResult, bool) {
	m := &c.memo
	if !m.valid || m.n != n || len(patterns) == 0 || len(m.rel) != len(patterns) {
		return CIDResult{}, false
	}
	base := int64(patterns[0].AddrA)
	for i := range patterns {
		p := &patterns[i]
		if int64(p.AddrA)-base != m.rel[i] ||
			p.Stride != m.stride[i] || p.Size != m.size[i] || p.Store != m.store[i] {
			return CIDResult{}, false
		}
	}
	if base == m.base0 {
		return m.res, true // identical absolute addresses
	}
	if m.bounded && cidBounded(patterns, 2, n) {
		return m.res, true // same relative geometry, both runs wrap-free
	}
	return CIDResult{}, false
}

// memoStore records a freshly computed verdict for future re-entries.
func (c *CachedLoop) memoStore(patterns []MemPattern, n int, res CIDResult) {
	m := &c.memo
	if len(patterns) == 0 {
		m.valid = false
		return
	}
	if cap(m.rel) < len(patterns) {
		m.rel = make([]int64, len(patterns))
		m.stride = make([]int64, len(patterns))
		m.size = make([]int, len(patterns))
		m.store = make([]bool, len(patterns))
	}
	m.rel = m.rel[:len(patterns)]
	m.stride = m.stride[:len(patterns)]
	m.size = m.size[:len(patterns)]
	m.store = m.store[:len(patterns)]
	base := int64(patterns[0].AddrA)
	for i := range patterns {
		p := &patterns[i]
		m.rel[i] = int64(p.AddrA) - base
		m.stride[i] = p.Stride
		m.size[i] = p.Size
		m.store[i] = p.Store
	}
	m.base0 = base
	m.n = n
	m.res = res
	m.bounded = cidBounded(patterns, 2, n)
	m.valid = true
}
