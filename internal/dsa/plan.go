package dsa

import (
	"fmt"
	"math"

	"repro/internal/armlite"
	"repro/internal/cpu"
	"repro/internal/neon"
)

// Plan is a generated SIMD program for one loop payload — the
// dissertation's "built SIMD statements" stored in the DSA cache.
// Setup steps (vdup of invariants) run once per takeover; chunk steps
// run once per group of Lanes iterations.
type Plan struct {
	DT    armlite.DataType
	Lanes int

	setup []planStep
	chunk []planStep

	// Listing is the human-readable generated code for one chunk
	// (Fig. 25's "Generating SIMD Instructions" output).
	Listing []armlite.Instr

	nodes  []*Node
	stores []StoreSlot
}

type stepKind int

const (
	stepDupReg stepKind = iota
	stepDupImm
	stepConstMem
	stepLoad
	stepALU
	stepStore
)

type planStep struct {
	kind    stepKind
	node    *Node // producing node (or store value for stepStore)
	pattern int   // memory pattern index for load/store/constmem
	dst     armlite.VReg
	a, b    armlite.VReg
	op      armlite.Op
	imm     int32
	reg     armlite.Reg
}

// BuildPlan allocates NEON registers for the DAG and lays out the
// generated instruction sequence. It fails when the dataflow needs
// more than the sixteen Q registers.
func BuildPlan(dag *PayloadDAG, patterns []MemPattern, dt armlite.DataType) (*Plan, error) {
	return BuildPlanAt(dag, patterns, dt, 0)
}

// BuildPlanAt is BuildPlan with register allocation starting at base —
// used when several plans (guard + conditional arms) must coexist in
// the register file. Registers of chunk-local values (loads and
// expressions) are reused once dead; setup values (broadcast
// invariants) stay live for the whole window.
func BuildPlanAt(dag *PayloadDAG, patterns []MemPattern, dt armlite.DataType, base armlite.VReg, pinned ...*Node) (*Plan, error) {
	p := &Plan{DT: dt, Lanes: dt.Lanes(), nodes: dag.Nodes, stores: dag.Stores}

	// Liveness: last position each node is consumed. Positions index
	// dag.Nodes; store values and pinned nodes (guard-compare
	// operands read after the chunk) stay live past every node.
	lastUse := make(map[*Node]int, len(dag.Nodes))
	for i, n := range dag.Nodes {
		if n.A != nil {
			lastUse[n.A] = i
		}
		if n.B != nil {
			lastUse[n.B] = i
		}
	}
	for _, s := range dag.Stores {
		lastUse[s.Value] = len(dag.Nodes)
	}
	for _, n := range pinned {
		if n != nil {
			lastUse[n] = len(dag.Nodes)
		}
	}

	used := make([]bool, armlite.NumVRegs)
	for i := 0; i < int(base) && i < len(used); i++ {
		used[i] = true
	}
	alloc := func() (armlite.VReg, error) {
		for i := int(base); i < armlite.NumVRegs; i++ {
			if !used[i] {
				used[i] = true
				return armlite.VReg(i), nil
			}
		}
		return 0, rejectf("vector-register-pressure")
	}
	isSetup := func(n *Node) bool {
		return n.Kind == NodeConstReg || n.Kind == NodeImm || n.Kind == NodeConstMem
	}
	// Phase 1: setup values run once per window and live through every
	// chunk — allocate them first and never recycle their registers.
	for _, n := range dag.Nodes {
		if !isSetup(n) {
			continue
		}
		v, err := alloc()
		if err != nil {
			return nil, err
		}
		n.vreg = v
		switch n.Kind {
		case NodeConstReg:
			p.setup = append(p.setup, planStep{kind: stepDupReg, node: n, dst: v, reg: n.Reg})
		case NodeImm:
			p.setup = append(p.setup, planStep{kind: stepDupImm, node: n, dst: v, imm: n.Imm})
		case NodeConstMem:
			p.setup = append(p.setup, planStep{kind: stepConstMem, node: n, dst: v, pattern: n.Pattern})
		}
	}
	// Phase 2: chunk-local values with linear-scan reuse.
	release := func(pos int, n *Node) {
		if isSetup(n) {
			return
		}
		if lastUse[n] == pos {
			used[n.vreg] = false
		}
	}
	for i, n := range dag.Nodes {
		if isSetup(n) {
			continue
		}
		// Operands dying here free their register before the result
		// allocates (a = op(a, b) style reuse).
		if n.A != nil {
			release(i, n.A)
		}
		if n.B != nil && n.B != n.A {
			release(i, n.B)
		}
		v, err := alloc()
		if err != nil {
			return nil, err
		}
		n.vreg = v
		switch n.Kind {
		case NodeLoad:
			p.chunk = append(p.chunk, planStep{kind: stepLoad, node: n, dst: v, pattern: n.Pattern})
		case NodeExpr:
			st := planStep{kind: stepALU, node: n, dst: v, op: n.Op, imm: n.Imm}
			st.a = n.A.vreg
			if n.B != nil {
				st.b = n.B.vreg
			}
			p.chunk = append(p.chunk, st)
		}
	}
	for _, s := range dag.Stores {
		p.chunk = append(p.chunk, planStep{kind: stepStore, node: s.Value, pattern: s.Pattern, dst: s.Value.vreg})
	}
	p.buildListing(patterns)
	return p, nil
}

// buildListing renders the generated NEON statements for one chunk.
func (p *Plan) buildListing(patterns []MemPattern) {
	add := func(in armlite.Instr) { p.Listing = append(p.Listing, in) }
	for _, s := range p.setup {
		switch s.kind {
		case stepDupReg:
			add(armlite.VDup(p.DT, s.dst, s.reg))
		case stepDupImm:
			// Rendered as a dup through a scratch core register.
			add(armlite.VDup(p.DT, s.dst, armlite.R12))
		case stepConstMem:
			add(armlite.VDup(p.DT, s.dst, patterns[s.pattern].BaseReg))
		}
	}
	for _, s := range p.chunk {
		switch s.kind {
		case stepLoad:
			add(armlite.VLoad(p.DT, s.dst, patterns[s.pattern].BaseReg, true))
		case stepStore:
			add(armlite.VStore(p.DT, s.dst, patterns[s.pattern].BaseReg, true))
		case stepALU:
			vop, _ := armlite.VectorALUOp(s.op)
			if vop == armlite.OpVshl || vop == armlite.OpVshr {
				add(armlite.VShiftImm(vop, p.DT, s.dst, s.a, s.imm))
			} else {
				add(armlite.VALU(vop, p.DT, s.dst, s.a, s.b))
			}
		}
	}
}

// SpecEntry is one buffered speculative store.
type SpecEntry struct {
	Addr  uint32
	Size  int
	Value uint32
	Iter  int // iteration the store belongs to
	Tag   int // conditional path ID (0 otherwise)
}

// SpecBuffer holds speculative stores until the Speculative Execution
// stage selects which to commit (sentinel ranges, conditional masks).
type SpecBuffer struct {
	Entries []SpecEntry
}

// Add buffers one store.
func (b *SpecBuffer) Add(e SpecEntry) { b.Entries = append(b.Entries, e) }

// Commit writes every entry accepted by keep to memory through the
// executor, preserving buffer order, then clears the buffer. Timing
// models the array-map writeback hardware: contiguous runs of lanes
// retire as masked vector stores (one issue + cache access per 16-byte
// span), isolated lanes as element stores.
func (b *SpecBuffer) Commit(e *Executor, keep func(iter, tag int) bool) error {
	nt := e.M.Config().NEON
	runBytes := 0
	var runAddr uint32
	prevEnd := uint32(0)
	flush := func() {
		for off := 0; off < runBytes; off += armlite.VectorBytes {
			e.M.Ticks += nt.MemIssueTicks + e.M.Caches.AccessWrite(runAddr+uint32(off), min(armlite.VectorBytes, runBytes-off))
			e.M.Counts.VecStores++
		}
		runBytes = 0
	}
	for _, s := range b.Entries {
		if !keep(s.Iter, s.Tag) {
			continue
		}
		if err := e.M.Mem.Store(s.Addr, s.Size, s.Value); err != nil {
			return err
		}
		if runBytes > 0 && s.Addr == prevEnd {
			runBytes += s.Size
		} else {
			flush()
			runAddr, runBytes = s.Addr, s.Size
		}
		prevEnd = s.Addr + uint32(s.Size)
	}
	flush()
	b.Entries = b.Entries[:0]
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Discard drops all buffered stores.
func (b *SpecBuffer) Discard() { b.Entries = b.Entries[:0] }

// Executor runs generated plans against a machine: it performs the
// real vector computation on machine memory (so results are exact) and
// charges NEON-engine time.
type Executor struct {
	M     *cpu.Machine
	Lat   Latencies
	Stats *Stats

	// faults is the active fault injector (nil in production); its
	// armed state is consumed at window boundaries.
	faults *FaultInjector

	patterns []MemPattern
	vals     [armlite.NumVRegs]neon.Vec

	// Reusable scratch for the steady-state paths (leftover element
	// values, conditional guard masks) — retained across windows so the
	// per-chunk work allocates nothing.
	elemVals []uint32
	maskBuf  []bool
	invBuf   []bool
}

// NewExecutor builds an executor over machine m.
func NewExecutor(m *cpu.Machine, lat Latencies, stats *Stats) *Executor {
	return &Executor{M: m, Lat: lat, Stats: stats}
}

// Begin charges the takeover overhead (pipeline flush + plan routing)
// and sets the pattern table generated plans index into.
func (e *Executor) Begin(patterns []MemPattern) {
	e.patterns = patterns
	over := e.Lat.PipelineFlush + e.Lat.PlanSetup
	e.M.Ticks += over
	if e.Stats != nil {
		e.Stats.OverheadTicks += over
		e.Stats.Takeovers++
	}
}

// SetPatterns switches the pattern table (conditional paths carry
// their own tables).
func (e *Executor) SetPatterns(patterns []MemPattern) { e.patterns = patterns }

func (e *Executor) runSetup(p *Plan) error {
	nt := e.M.Config().NEON
	for _, s := range p.setup {
		switch s.kind {
		case stepDupReg:
			e.vals[s.dst] = neon.Splat(p.DT, e.M.R[s.reg])
			e.M.Ticks += nt.DupTicks
			e.M.Counts.VecDups++
		case stepDupImm:
			e.vals[s.dst] = neon.Splat(p.DT, uint32(s.imm))
			e.M.Ticks += nt.DupTicks
			e.M.Counts.VecDups++
		case stepConstMem:
			pat := &e.patterns[s.pattern]
			v, err := e.M.Mem.Load(pat.AddrA, pat.Size)
			if err != nil {
				return err
			}
			e.vals[s.dst] = neon.Splat(p.DT, v)
			e.M.Ticks += nt.DupTicks + e.M.Caches.Access(pat.AddrA, pat.Size)
			e.M.Counts.VecDups++
			e.M.Counts.Loads++
		}
	}
	return nil
}

// RunWindow executes iterations [firstIter, lastIter] of the payload
// as SIMD: full chunks of p.Lanes iterations, then the leftover
// strategy. Stores go to spec when non-nil (tagged tag), else commit
// directly. disjoint reports whether store streams are disjoint from
// load streams (Overlapping legality). It returns how many iterations
// (from firstIter) were executed — fewer than the window only under
// LeftoverScalar, whose remainder the caller resumes on the ARM core.
func (e *Executor) RunWindow(p *Plan, firstIter, lastIter int,
	policy LeftoverPolicy, disjoint bool, spec *SpecBuffer, tag int) (int, error) {
	if lastIter < firstIter {
		return 0, nil
	}
	if err := e.faults.takeError(); err != nil {
		return 0, err
	}
	if e.faults.truncated() {
		// Injected fault: do none of the work but claim full coverage.
		return lastIter - firstIter + 1, nil
	}
	if err := e.runSetup(p); err != nil {
		return 0, err
	}
	total := lastIter - firstIter + 1
	chunks := total / p.Lanes
	rem := total % p.Lanes

	it := firstIter
	for c := 0; c < chunks; c++ {
		if err := e.runChunk(p, it, p.Lanes, spec, tag, nil); err != nil {
			return 0, err
		}
		it += p.Lanes
	}
	if e.Stats != nil {
		e.Stats.VectorizedIters += uint64(chunks * p.Lanes)
	}
	if rem == 0 {
		return total, nil
	}
	if policy == LeftoverAuto {
		if disjoint && total >= p.Lanes && spec == nil {
			policy = LeftoverOverlap
		} else {
			policy = LeftoverSingle
		}
	}
	switch policy {
	case LeftoverOverlap:
		if !disjoint || total < p.Lanes {
			policy = LeftoverSingle
			break
		}
		// Re-run the final full vector ending exactly at lastIter.
		if err := e.runChunk(p, lastIter-p.Lanes+1, p.Lanes, spec, tag, nil); err != nil {
			return 0, err
		}
		if e.Stats != nil {
			e.Stats.VectorizedIters += uint64(rem)
		}
		return total, nil
	case LeftoverLarger:
		// Round up: process a full chunk beyond the logical end —
		// the caller guarantees padded arrays.
		if err := e.runChunk(p, it, p.Lanes, spec, tag, nil); err != nil {
			return 0, err
		}
		if e.Stats != nil {
			e.Stats.VectorizedIters += uint64(rem)
		}
		return total, nil
	case LeftoverScalar:
		// Caller resumes these iterations on the ARM core.
		return chunks * p.Lanes, nil
	}
	// Single elements.
	for i := it; i <= lastIter; i++ {
		if err := e.runElement(p, i, spec, tag); err != nil {
			return 0, err
		}
	}
	if e.Stats != nil {
		e.Stats.VectorizedIters += uint64(rem)
		e.Stats.LeftoverElements += uint64(rem)
	}
	return total, nil
}

// runChunk executes one group of `lanes` consecutive iterations
// starting at iteration it. With a non-nil mask, stores commit only
// the selected lanes (conditional full speculation); otherwise stores
// go to spec when non-nil or straight to memory.
func (e *Executor) runChunk(p *Plan, it, lanes int, spec *SpecBuffer, tag int, mask []bool) error {
	nt := e.M.Config().NEON
	for _, s := range p.chunk {
		switch s.kind {
		case stepLoad:
			pat := &e.patterns[s.pattern]
			addr := pat.AddrAt(it)
			if err := neon.ReadVec(e.M.Mem, addr, &e.vals[s.dst]); err != nil {
				return err
			}
			e.M.Ticks += nt.MemIssueTicks + e.M.Caches.Access(addr, armlite.VectorBytes)
			e.M.Counts.VecLoads++
			e.M.NEON.Loads++
		case stepALU:
			vop, ok := armlite.VectorALUOp(s.op)
			if !ok {
				return fmt.Errorf("dsa: plan contains unvectorizable op %v", s.op)
			}
			if err := neon.ALUInto(vop, p.DT, &e.vals[s.dst], &e.vals[s.a], &e.vals[s.b], s.imm); err != nil {
				return err
			}
			e.M.Ticks += nt.OpIssueTicks
			e.M.Counts.VecOps++
			e.M.NEON.Ops++
		case stepStore:
			pat := &e.patterns[s.pattern]
			addr := pat.AddrAt(it)
			if mask != nil {
				// Masked retirement: one vector store issue plus a
				// blend op; unselected lanes keep their memory bytes.
				v := e.vals[s.dst]
				for l := 0; l < p.Lanes; l++ {
					if !mask[l] {
						continue
					}
					la := addr + uint32(l*pat.Size)
					if err := e.M.Mem.Store(la, pat.Size, v.LaneU(p.DT, l)); err != nil {
						return err
					}
				}
				e.M.Ticks += nt.MemIssueTicks + nt.OpIssueTicks + e.M.Caches.AccessWrite(addr, armlite.VectorBytes)
				e.M.Counts.VecStores++
				e.M.Counts.VecOps++ // the select/blend
				e.M.NEON.Stores++
				break
			}
			if spec != nil {
				// Buffer lane by lane so partial commits can select
				// individual iterations.
				v := e.vals[s.dst]
				for l := 0; l < p.Lanes; l++ {
					spec.Add(SpecEntry{
						Addr:  addr + uint32(l*pat.Size),
						Size:  pat.Size,
						Value: v.LaneU(p.DT, l),
						Iter:  it + l,
						Tag:   tag,
					})
				}
				e.M.Ticks += nt.MemIssueTicks
				if e.Stats != nil {
					e.Stats.ArrayMapAccesses++
				}
			} else {
				if err := neon.StoreVec(e.M.Mem, addr, e.vals[s.dst]); err != nil {
					return err
				}
				e.M.Ticks += nt.MemIssueTicks + e.M.Caches.AccessWrite(addr, armlite.VectorBytes)
				e.M.Counts.VecStores++
				e.M.NEON.Stores++
			}
		}
	}
	return nil
}

// runElement executes one iteration through the single-element path
// (NEON element loads/stores, §4.8.1).
func (e *Executor) runElement(p *Plan, it int, spec *SpecBuffer, tag int) error {
	if cap(e.elemVals) < len(p.nodes) {
		e.elemVals = make([]uint32, len(p.nodes))
	}
	vals := e.elemVals[:len(p.nodes)]
	for i, n := range p.nodes {
		// p.nodes is topological, so operands already carry this call's
		// ordinals when an expression reads them.
		n.ord = i
		v, err := e.evalElemAt(n, it, vals)
		if err != nil {
			return err
		}
		vals[i] = v
		if n.Kind == NodeLoad {
			pat := &e.patterns[n.Pattern]
			e.M.Ticks += e.Lat.LeftoverElement + e.M.Caches.Access(pat.AddrAt(it), pat.Size)
			e.M.Counts.VecLoads++
		} else if n.Kind == NodeExpr {
			e.M.Ticks += e.M.Config().NEON.OpIssueTicks
			e.M.Counts.VecOps++
		}
	}
	for _, s := range p.stores {
		pat := &e.patterns[s.Pattern]
		addr := pat.AddrAt(it)
		v := vals[s.Value.ord]
		if spec != nil {
			spec.Add(SpecEntry{Addr: addr, Size: pat.Size, Value: v, Iter: it, Tag: tag})
			e.M.Ticks += e.Lat.LeftoverElement
		} else {
			if err := e.M.Mem.Store(addr, pat.Size, v); err != nil {
				return err
			}
			e.M.Ticks += e.Lat.LeftoverElement + e.M.Caches.AccessWrite(addr, pat.Size)
			e.M.Counts.VecStores++
		}
	}
	return nil
}

// evalElemAt is evalElement over the executor's ordinal-indexed value
// scratch — the allocation-free form the leftover loop runs.
func (e *Executor) evalElemAt(n *Node, it int, vals []uint32) (uint32, error) {
	switch n.Kind {
	case NodeLoad:
		pat := &e.patterns[n.Pattern]
		return e.M.Mem.Load(pat.AddrAt(it), pat.Size)
	case NodeConstReg:
		return e.M.R[n.Reg], nil
	case NodeConstMem:
		pat := &e.patterns[n.Pattern]
		return e.M.Mem.Load(pat.AddrA, pat.Size)
	case NodeImm:
		return uint32(n.Imm), nil
	case NodeExpr:
		a := vals[n.A.ord]
		var b uint32
		if n.B != nil {
			b = vals[n.B.ord]
		}
		return evalScalarOp(n.Op, e.elemIsFloat(n), a, b, n.Imm)
	default:
		return 0, fmt.Errorf("dsa: bad node kind %d", n.Kind)
	}
}

// evalElement computes one node for a single iteration with exactly
// the lane semantics of the vector path.
func (e *Executor) evalElement(n *Node, it int, vals map[*Node]uint32) (uint32, error) {
	switch n.Kind {
	case NodeLoad:
		pat := &e.patterns[n.Pattern]
		return e.M.Mem.Load(pat.AddrAt(it), pat.Size)
	case NodeConstReg:
		return e.M.R[n.Reg], nil
	case NodeConstMem:
		pat := &e.patterns[n.Pattern]
		return e.M.Mem.Load(pat.AddrA, pat.Size)
	case NodeImm:
		return uint32(n.Imm), nil
	case NodeExpr:
		a := vals[n.A]
		var b uint32
		if n.B != nil {
			b = vals[n.B]
		}
		return evalScalarOp(n.Op, e.elemIsFloat(n), a, b, n.Imm)
	default:
		return 0, fmt.Errorf("dsa: bad node kind %d", n.Kind)
	}
}

func (e *Executor) elemIsFloat(n *Node) bool {
	return n.Op == armlite.OpFAdd || n.Op == armlite.OpFSub || n.Op == armlite.OpFMul
}

func evalScalarOp(op armlite.Op, isFloat bool, a, b uint32, imm int32) (uint32, error) {
	if isFloat {
		fa, fb := math.Float32frombits(a), math.Float32frombits(b)
		switch op {
		case armlite.OpFAdd:
			return math.Float32bits(fa + fb), nil
		case armlite.OpFSub:
			return math.Float32bits(fa - fb), nil
		case armlite.OpFMul:
			return math.Float32bits(fa * fb), nil
		}
		return 0, fmt.Errorf("dsa: bad float op %v", op)
	}
	switch op {
	case armlite.OpAdd:
		return a + b, nil
	case armlite.OpSub:
		return a - b, nil
	case armlite.OpMul:
		return a * b, nil
	case armlite.OpAnd:
		return a & b, nil
	case armlite.OpOrr:
		return a | b, nil
	case armlite.OpEor:
		return a ^ b, nil
	case armlite.OpVshl, armlite.OpLsl:
		return a << (uint32(imm) & 31), nil
	case armlite.OpVshr, armlite.OpAsr:
		return uint32(int32(a) >> (uint32(imm) & 31)), nil
	default:
		return 0, fmt.Errorf("dsa: bad scalar op %v", op)
	}
}

// maskOf evaluates the guard condition per lane over the compare
// operand vectors, filling dst with the "branch taken" lanes (dst must
// hold dt.Lanes() entries; the caller owns the buffer).
func maskOf(dst []bool, cond armlite.Cond, dt armlite.DataType, isFloat, forceUnsigned bool, a, b neon.Vec) []bool {
	lanes := dt.Lanes()
	out := dst[:lanes]
	for l := 0; l < lanes; l++ {
		if isFloat {
			fa, fb := a.LaneF(l), b.LaneF(l)
			out[l] = floatCondHolds(cond, fa, fb)
			continue
		}
		sa, sb := int64(a.LaneS(dt, l)), int64(b.LaneS(dt, l))
		ua, ub := uint64(a.LaneU(dt, l)), uint64(b.LaneU(dt, l))
		if forceUnsigned {
			sa, sb = int64(ua), int64(ub)
		}
		switch cond {
		case armlite.CondEQ:
			out[l] = sa == sb
		case armlite.CondNE:
			out[l] = sa != sb
		case armlite.CondLT:
			out[l] = sa < sb
		case armlite.CondLE:
			out[l] = sa <= sb
		case armlite.CondGT:
			out[l] = sa > sb
		case armlite.CondGE:
			out[l] = sa >= sb
		case armlite.CondLO:
			out[l] = ua < ub
		case armlite.CondLS:
			out[l] = ua <= ub
		case armlite.CondHI:
			out[l] = ua > ub
		case armlite.CondHS:
			out[l] = ua >= ub
		default:
			out[l] = true
		}
	}
	return out
}

func floatCondHolds(cond armlite.Cond, a, b float32) bool {
	switch cond {
	case armlite.CondEQ:
		return a == b
	case armlite.CondNE:
		return a != b
	case armlite.CondLT, armlite.CondLO, armlite.CondMI:
		return a < b
	case armlite.CondLE, armlite.CondLS:
		return a <= b
	case armlite.CondGT, armlite.CondHI:
		return a > b
	case armlite.CondGE, armlite.CondHS:
		return a >= b
	default:
		return true
	}
}

// RunCondWindow executes a fully speculative conditional window: per
// chunk it vectorizes the guard, derives the taken mask (one vector
// compare), and retires each arm's stores under its mask. Only whole
// chunks execute; the caller resumes the remainder on the ARM core.
// Returns the number of iterations executed.
func (e *Executor) RunCondWindow(cv *CondVec, firstIter, lastIter int) (int, error) {
	lanes := cv.GuardPlan.Lanes
	total := lastIter - firstIter + 1
	chunks := total / lanes
	if chunks < 1 {
		return 0, nil
	}
	if err := e.faults.takeError(); err != nil {
		return 0, err
	}
	if e.faults.truncated() {
		return chunks * lanes, nil
	}
	nt := e.M.Config().NEON

	// Register allocations are disjoint across the three plans, so
	// one setup pass per window suffices.
	e.SetPatterns(cv.GuardPatterns)
	if err := e.runSetup(cv.GuardPlan); err != nil {
		return 0, err
	}
	for _, arm := range []*CondArm{cv.Taken, cv.Fall} {
		if arm == nil {
			continue
		}
		e.SetPatterns(arm.Patterns)
		if err := e.runSetup(arm.Plan); err != nil {
			return 0, err
		}
	}

	if cap(e.maskBuf) < lanes {
		e.maskBuf = make([]bool, lanes)
		e.invBuf = make([]bool, lanes)
	}
	for c := 0; c < chunks; c++ {
		it := firstIter + c*lanes
		e.SetPatterns(cv.GuardPatterns)
		if err := e.runChunk(cv.GuardPlan, it, lanes, nil, 0, nil); err != nil {
			return 0, err
		}
		// The mask compare itself (vcgt/vceq-class operation).
		taken := maskOf(e.maskBuf, cv.Cond, cv.GuardPlan.DT, cv.Float, cv.Unsigned, e.vals[cv.A.vreg], e.vals[cv.B.vreg])
		e.M.Ticks += nt.OpIssueTicks
		e.M.Counts.VecOps++
		if e.Stats != nil {
			e.Stats.ArrayMapAccesses++
		}
		if cv.Taken != nil {
			e.SetPatterns(cv.Taken.Patterns)
			if err := e.runChunk(cv.Taken.Plan, it, lanes, nil, 0, taken); err != nil {
				return 0, err
			}
		}
		if cv.Fall != nil {
			inv := e.invBuf[:len(taken)]
			for i, t := range taken {
				inv[i] = !t
			}
			e.SetPatterns(cv.Fall.Patterns)
			if err := e.runChunk(cv.Fall.Plan, it, lanes, nil, 0, inv); err != nil {
				return 0, err
			}
		}
	}
	if e.Stats != nil {
		e.Stats.VectorizedIters += uint64(chunks * lanes)
	}
	return chunks * lanes, nil
}

// EvalElement computes one DAG node for a single iteration with lane
// semantics against the current pattern table (exported for the
// system's temporary-register rematerialization).
func (e *Executor) EvalElement(n *Node, it int) (uint32, error) {
	vals := make(map[*Node]uint32)
	var walk func(n *Node) (uint32, error)
	walk = func(n *Node) (uint32, error) {
		if v, ok := vals[n]; ok {
			return v, nil
		}
		if n.A != nil {
			if _, err := walk(n.A); err != nil {
				return 0, err
			}
		}
		if n.B != nil {
			if _, err := walk(n.B); err != nil {
				return 0, err
			}
		}
		v, err := e.evalElement(n, it, vals)
		if err != nil {
			return 0, err
		}
		vals[n] = v
		return v, nil
	}
	return walk(n)
}
