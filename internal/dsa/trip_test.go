package dsa

import (
	"testing"
	"testing/quick"

	"repro/internal/armlite"
)

func trip(cond armlite.Cond, delta int64, counterIsRn bool) TripInfo {
	return TripInfo{
		CounterReg:  armlite.R0,
		Delta:       delta,
		Cond:        cond,
		CounterIsRn: counterIsRn,
		Unsigned: cond == armlite.CondHS || cond == armlite.CondLO ||
			cond == armlite.CondHI || cond == armlite.CondLS,
	}
}

func TestRemainingLT(t *testing.T) {
	ti := trip(armlite.CondLT, 1, true)
	cases := []struct {
		counter, limit uint32
		want           int
	}{
		{0, 10, 10}, {9, 10, 1}, {10, 10, 0}, {11, 10, 0}, {3, 10, 7},
	}
	for _, c := range cases {
		got, ok := ti.Remaining(c.counter, c.limit)
		if !ok || got != c.want {
			t.Errorf("LT Remaining(%d,%d) = %d,%v want %d", c.counter, c.limit, got, ok, c.want)
		}
	}
}

func TestRemainingLE(t *testing.T) {
	ti := trip(armlite.CondLE, 1, true)
	got, ok := ti.Remaining(0, 10)
	if !ok || got != 11 {
		t.Errorf("LE Remaining(0,10) = %d,%v want 11", got, ok)
	}
	got, _ = ti.Remaining(10, 10)
	if got != 1 {
		t.Errorf("LE Remaining(10,10) = %d want 1", got)
	}
	got, _ = ti.Remaining(11, 10)
	if got != 0 {
		t.Errorf("LE Remaining(11,10) = %d want 0", got)
	}
}

func TestRemainingCountDown(t *testing.T) {
	ti := trip(armlite.CondGT, -1, true)
	got, ok := ti.Remaining(10, 0)
	if !ok || got != 10 {
		t.Errorf("GT Remaining(10,0) = %d,%v want 10", got, ok)
	}
	ti = trip(armlite.CondGE, -2, true)
	got, ok = ti.Remaining(10, 0)
	if !ok || got != 6 {
		t.Errorf("GE Remaining(10,0,-2) = %d,%v want 6", got, ok)
	}
}

func TestRemainingNE(t *testing.T) {
	ti := trip(armlite.CondNE, 1, true)
	got, ok := ti.Remaining(3, 10)
	if !ok || got != 7 {
		t.Errorf("NE Remaining = %d,%v", got, ok)
	}
	// Non-divisible stride would never terminate: not derivable.
	ti = trip(armlite.CondNE, 3, true)
	if _, ok := ti.Remaining(0, 10); ok {
		t.Error("NE with skipping stride must not be derivable")
	}
}

func TestRemainingFlippedOperands(t *testing.T) {
	// cmp limit, counter with GT: continue while limit > counter.
	ti := trip(armlite.CondGT, 1, false)
	got, ok := ti.Remaining(0, 10)
	if !ok || got != 10 {
		t.Errorf("flipped GT Remaining = %d,%v want 10", got, ok)
	}
}

func TestRemainingUnsigned(t *testing.T) {
	ti := trip(armlite.CondLO, 4, true)
	got, ok := ti.Remaining(0x100, 0x120)
	if !ok || got != 8 {
		t.Errorf("LO Remaining = %d,%v want 8", got, ok)
	}
}

func TestRemainingNegativeSignedCounter(t *testing.T) {
	ti := trip(armlite.CondLT, 1, true)
	neg := uint32(0xFFFFFFFE) // -2 signed
	got, ok := ti.Remaining(neg, 3)
	if !ok || got != 5 {
		t.Errorf("LT from -2 to 3 = %d,%v want 5", got, ok)
	}
}

// Property: Remaining agrees with direct simulation of the exit
// condition for random parameters.
func TestQuickRemainingMatchesSimulation(t *testing.T) {
	conds := []armlite.Cond{armlite.CondLT, armlite.CondLE, armlite.CondGT,
		armlite.CondGE, armlite.CondLO, armlite.CondHS}
	f := func(c0 uint8, limit8 uint8, dsel, csel uint8) bool {
		cond := conds[int(csel)%len(conds)]
		deltas := []int64{1, 2, 3, 4, -1, -2}
		d := deltas[int(dsel)%len(deltas)]
		ti := trip(cond, d, true)
		counter := uint32(c0)
		limit := uint32(limit8)
		got, ok := ti.Remaining(counter, limit)

		// Simulate: count j ≥ 1 while cond(counter + (j-1)d, limit).
		holds := func(c uint32) bool {
			var fl armlite.Flags
			r := c - limit
			fl.N = int32(r) < 0
			fl.Z = r == 0
			fl.C = c >= limit
			fl.V = (int32(c) >= 0) != (int32(limit) >= 0) && (int32(r) >= 0) != (int32(c) >= 0)
			return cond.Holds(fl)
		}
		want, wok := 0, false
		c := counter
		for j := 0; j < 1000; j++ {
			if !holds(c) {
				want, wok = j, true
				break
			}
			c = uint32(int64(c) + d)
		}
		// Soundness contract: declining (!ok) is always allowed — the
		// DSA just will not vectorize — but a claimed count must match
		// the machine's actual behaviour exactly.
		if !ok {
			return true
		}
		if !wok {
			return got >= 1000
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDSACacheLRU(t *testing.T) {
	c := NewDSACache(3 * dsaCacheEntrySize) // capacity 3
	for i := 1; i <= 3; i++ {
		c.Insert(&CachedLoop{LoopID: i})
	}
	c.Lookup(1) // refresh 1
	c.Insert(&CachedLoop{LoopID: 4})
	if _, ok := c.Lookup(2); ok {
		t.Error("LRU victim should have been loop 2")
	}
	for _, id := range []int{1, 3, 4} {
		if _, ok := c.Lookup(id); !ok {
			t.Errorf("loop %d should still be cached", id)
		}
	}
	if c.Len() != 3 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestDSACacheUpdateInPlace(t *testing.T) {
	c := NewDSACache(2 * dsaCacheEntrySize)
	c.Insert(&CachedLoop{LoopID: 7, SentinelRange: 10})
	c.Insert(&CachedLoop{LoopID: 7, SentinelRange: 20})
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	e, _ := c.Lookup(7)
	if e.SentinelRange != 20 {
		t.Errorf("entry not replaced: %d", e.SentinelRange)
	}
}

func TestVCacheOverflow(t *testing.T) {
	v := NewVCache(4 * vcacheEntrySize)
	for i := 0; i < 4; i++ {
		if !v.Record(i, uint32(i*4), 4, false, armlite.Word) {
			t.Fatalf("record %d should fit", i)
		}
	}
	if v.Record(5, 20, 4, false, armlite.Word) {
		t.Error("5th record should overflow a 4-entry cache")
	}
	v.Reset()
	if !v.Record(0, 0, 4, false, armlite.Word) {
		t.Error("reset should clear capacity")
	}
}

func TestSpecRangeFor(t *testing.T) {
	cases := []struct{ last, lanes, want int }{
		{0, 16, 16}, {10, 16, 16}, {16, 16, 16}, {17, 16, 32}, {100, 16, 112},
		{5, 4, 8}, {0, 4, 4},
	}
	for _, c := range cases {
		if got := specRangeFor(c.last, c.lanes); got != c.want {
			t.Errorf("specRangeFor(%d,%d) = %d, want %d", c.last, c.lanes, got, c.want)
		}
	}
}
