package dsa

import (
	"repro/internal/armlite"
)

// maxMappingIters bounds how long the Mapping stage keeps waiting for
// condition coverage before giving up.
const maxMappingIters = 40

// recordPath files the just-completed iteration under its control-path
// signature (the paper's condition indexing by instruction address,
// §4.6.4.1, generalized to executed-PC signatures).
func (e *Engine) recordPath(t *track) {
	sig, pcs := t.signature()
	p := t.paths[sig]
	if p == nil {
		p = &pathInfo{sig: sig, pcs: pcs, firstIt: t.iter}
		p.recsA = append([]StepRec(nil), t.cur...)
		t.paths[sig] = p
		return
	}
	if p.secondIt == 0 {
		p.secondIt = t.iter
	}
}

// mappingStage runs at the end of every iteration of a conditional
// loop until all conditions are discovered and verified.
func (e *Engine) mappingStage(t *track) {
	e.stats.StateTransitions++
	if !e.cfg.EnableConditional {
		t.reject("conditional-disabled")
		e.recordVerdict(t, false)
		return
	}
	if t.exitSeen {
		t.reject("conditional-sentinel-mix")
		e.recordVerdict(t, false)
		return
	}
	if t.sawCall {
		t.reject("conditional-function-mix")
		e.recordVerdict(t, false)
		return
	}
	e.recordPath(t)
	if t.iter > maxMappingIters {
		t.reject("coverage-incomplete")
		e.recordVerdict(t, false)
		return
	}
	if !t.coveredAll() {
		return // pending conditions (§4.6.4: keep looking)
	}
	for _, p := range t.paths {
		if p.secondIt == 0 {
			return // a condition needs a second observation for strides
		}
	}
	if e.deriveTrip(t) == nil {
		t.reject("trip-underivable")
		e.recordVerdict(t, false)
		return
	}
	e.decideConditional(t)
}

// bodySeq extracts the ordered body-PC sequence of one iteration.
func bodySeq(t *track, recs []StepRec) []int {
	var seq []int
	for i := range recs {
		if t.inBody(recs[i].PC) {
			seq = append(seq, recs[i].PC)
		}
	}
	return seq
}

// commonPrefixSuffix splits the paths' PC sequences into shared
// header, per-path middles, and shared tail.
func commonPrefixSuffix(seqs [][]int) (prefix, suffix int) {
	if len(seqs) == 0 {
		return 0, 0
	}
	minLen := len(seqs[0])
	for _, s := range seqs {
		if len(s) < minLen {
			minLen = len(s)
		}
	}
	prefix = 0
	for prefix < minLen {
		v := seqs[0][prefix]
		same := true
		for _, s := range seqs[1:] {
			if s[prefix] != v {
				same = false
				break
			}
		}
		if !same {
			break
		}
		prefix++
	}
	suffix = 0
	for suffix < minLen-prefix {
		v := seqs[0][len(seqs[0])-1-suffix]
		same := true
		for _, s := range seqs[1:] {
			if s[len(s)-1-suffix] != v {
				same = false
				break
			}
		}
		if !same {
			break
		}
		suffix++
	}
	return prefix, suffix
}

// decideConditional verifies and vectorizes a conditional loop
// (§4.6.4): per-condition dataflow, cross-condition dependency checks
// and the array-map budget.
func (e *Engine) decideConditional(t *track) {
	t.stage = stDecided
	e.stats.StateTransitions++
	fail := func(reason string) {
		t.reject(reason)
		e.recordVerdict(t, false)
	}

	paths := make([]*pathInfo, 0, len(t.paths))
	for _, p := range t.paths {
		paths = append(paths, p)
	}
	// Deterministic order: by first-iteration observation.
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			if paths[j].firstIt < paths[i].firstIt {
				paths[i], paths[j] = paths[j], paths[i]
			}
		}
	}

	if len(paths) < 2 {
		// Every analysis iteration took the same path: the condition
		// never varied, so per-path speculation has nothing to select
		// between — and a later flip would take an unverified path.
		fail("conditional-single-path")
		return
	}
	seqs := make([][]int, len(paths))
	for i, p := range paths {
		seqs[i] = bodySeq(t, p.recsA)
	}
	nPrefix, nSuffix := commonPrefixSuffix(seqs)
	if nPrefix == 0 {
		fail("no-common-header")
		return
	}

	env := e.buildRegEnv(t, t.cur)
	trip := t.trip
	rem, ok := trip.Remaining(t.snapCur[trip.CounterReg], t.tripLimitValue())
	if !ok {
		fail("trip-underivable")
		return
	}
	n := t.iter + rem

	// Header flag-setters and branches are structural (guards); the
	// trip compare and induction updates too.
	structural := t.structuralPCs(env, t.cur)

	var (
		allPatterns []MemPattern
		condPaths   []CondPath
		actionPCs   = make(map[int]bool)
		elemDT      armlite.DataType
		totalStores int
		maxNodes    int
		actionDefs  armlite.RegSet
		guardUses   armlite.RegSet

		// Saved context of the first non-empty path for guard
		// vectorization.
		guardFeed   []StepRec
		guardPats   []MemPattern
		guardPatIdx map[memKey]int
	)

	for pi, p := range paths {
		seq := seqs[pi]
		middleLo, middleHi := nPrefix, len(seq)-nSuffix // [lo, hi) in seq index space

		if middleLo >= middleHi {
			// Empty middle: the not-taken arm of an if-only loop.
			condPaths = append(condPaths, CondPath{ID: -1, PCs: map[int]bool{}})
			continue
		}

		// Split the path's records into header+middle (fed to the
		// extractor) and tail (structural only). Guard instructions —
		// flag setters and branches anywhere in the path, including
		// the chained compares of if/elif/else ladders (Fig. 22's
		// multi-condition loops) — keep executing scalar; only the
		// remaining action instructions are skipped and vectorized.
		var feed []StepRec
		bodyIdx := 0
		middlePCs := make(map[int]bool)
		guardPCs := make(map[int]bool)
		for i := range p.recsA {
			r := p.recsA[i]
			if !t.inBody(r.PC) {
				fail("record-outside-body")
				return
			}
			isGuard := r.Instr.Op.SetsFlagsAlways() || r.Instr.SetFlags || r.Instr.Op.IsBranch()
			if bodyIdx < middleHi {
				feed = append(feed, r)
				if isGuard {
					guardPCs[r.PC] = true
				}
				if bodyIdx >= middleLo {
					middlePCs[r.PC] = true
				}
			} else {
				// Tail: must be structural glue.
				in := r.Instr
				isGlue := structural[r.PC] ||
					(in.Op == armlite.OpB) || in.Op == armlite.OpNop
				if !isGlue {
					fail("payload-in-tail")
					return
				}
			}
			bodyIdx++
		}

		// Structural set for extraction: loop glue plus every guard.
		pstruct := make(map[int]bool, len(structural)+len(guardPCs))
		for pc := range structural {
			pstruct[pc] = true
		}
		for pc := range guardPCs {
			pstruct[pc] = true
		}

		// Patterns for this path: header sites observed every
		// iteration (use iterations 2 and 3); middle sites observed at
		// the path's own two iterations.
		pats, patIdx, err := e.buildPathPatterns(t, p, middlePCs)
		if err != nil {
			fail(reasonOf(err))
			return
		}
		// Header stores cannot be buffered per path — reject.
		for _, mp := range pats {
			if mp.Store && !middlePCs[mp.PC] && !structural[mp.PC] {
				fail("store-in-header")
				return
			}
		}

		// The path's action: middle instructions minus the guards.
		actionSet := make(map[int]bool, len(middlePCs))
		for pc := range middlePCs {
			if !guardPCs[pc] && !structural[pc] {
				actionSet[pc] = true
			}
		}
		if len(actionSet) == 0 {
			// Chain arm with no payload of its own.
			condPaths = append(condPaths, CondPath{ID: -1, PCs: map[int]bool{}})
			continue
		}

		dag, dt, err := extractPayload(feed, env, pats, patIdx, pstruct)
		if err != nil {
			fail(reasonOf(err))
			return
		}
		// Only middle stores belong to the condition's action.
		for _, s := range dag.Stores {
			if !middlePCs[pats[s.Pattern].PC] {
				fail("store-in-header")
				return
			}
		}
		if elemDT == 0 {
			elemDT = dt
		} else if elemDT != dt {
			fail("mixed-element-widths")
			return
		}
		plan, err := BuildPlan(dag, pats, dt)
		if err != nil {
			fail(reasonOf(err))
			return
		}

		id := -1
		for pc := range actionSet {
			if id == -1 || pc < id {
				id = pc
			}
		}
		for pc := range actionSet {
			if actionPCs[pc] {
				// Two conditions sharing action instructions cannot
				// be told apart at run time.
				fail("ambiguous-conditional")
				return
			}
		}
		cp := CondPath{ID: id, PCs: actionSet, Payload: dag, plan: plan, patterns: pats}
		condPaths = append(condPaths, cp)
		if guardFeed == nil {
			guardFeed = feed[:middleLo]
			guardPats = pats
			guardPatIdx = patIdx
		}
		for pc := range actionSet {
			actionPCs[pc] = true
			actionDefs = actionDefs.Union(e.m.Prog.Code[pc].Defs())
		}
		totalStores += len(dag.Stores)
		if len(dag.Nodes) > maxNodes {
			maxNodes = len(dag.Nodes)
		}
		// Base the global CID check on every pattern.
		base := len(allPatterns)
		_ = base
		allPatterns = append(allPatterns, pats...)
	}

	// An induction (address/index) register updated inside a
	// condition's action only advances on iterations taking that
	// path; its measured per-iteration delta is then an artifact of
	// the analysis window, and predicted store addresses would be
	// wrong the moment the path mix changes. Reject (the qsort
	// partition's swap index is the canonical case).
	for _, r := range actionDefs.Regs() {
		if env.class(r) == clInduction {
			fail("action-updates-induction")
			return
		}
	}
	// Guard/tail uses must not depend on action-defined registers.
	for pc := t.id; pc <= t.branchPC; pc++ {
		if !actionPCs[pc] {
			guardUses = guardUses.Union(e.m.Prog.Code[pc].Uses())
		}
	}
	for _, r := range actionDefs.Regs() {
		if guardUses.Has(r) {
			fail("condition-live-out")
			return
		}
	}

	cid := PredictCID(allPatterns, 2, n)
	e.stats.CIDPCompares += uint64(cid.Compares)
	e.stats.AnalysisTicks += int64(cid.Compares) * e.cfg.Latencies.CIDPCompare
	if cid.HasCID {
		fail("cross-iteration-dependency")
		return
	}

	freeRegs := armlite.NumVRegs - maxNodes
	if freeRegs < 0 {
		freeRegs = 0
	}
	if totalStores > e.cfg.ArrayMaps+freeRegs {
		fail("array-map-overflow")
		return
	}

	ca := &CondAnalysis{ActionPCs: actionPCs, Paths: condPaths, StoreSlots: totalStores}
	ca.Vec = e.tryGuardVectorization(t, env, seqs, nPrefix, condPaths, elemDT,
		guardFeed, guardPats, guardPatIdx)

	if ca.Vec == nil {
		// Mapped-mode profitability: per window, every condition's
		// action is vectorized once and committed through the array
		// maps while the guards still run scalar each iteration. That
		// only pays when the skipped scalar work (lanes × average
		// action size) outweighs the per-path vector work.
		nonEmpty, actionInstrs, vecWork := 0, 0, 0
		for i := range condPaths {
			p := &condPaths[i]
			if len(p.PCs) == 0 {
				continue
			}
			nonEmpty++
			actionInstrs += len(p.PCs)
			vecWork += 15*(len(p.Payload.Nodes)+len(p.Payload.Stores)) + 25
		}
		if nonEmpty == 0 {
			fail("conditional-unprofitable")
			return
		}
		lanes := elemDT.Lanes()
		benefit := lanes * (actionInstrs / nonEmpty) * 10
		if benefit <= vecWork {
			fail("conditional-unprofitable")
			return
		}
	}

	a := &Analysis{
		LoopID:    t.id,
		BranchPC:  t.branchPC,
		Kind:      KindConditional,
		Trip:      *trip,
		Induction: inductionMap(env),
		Patterns:  allPatterns,
		ElemDT:    elemDT,
		Cond:      ca,
	}
	t.kind = KindConditional
	t.analysis = a

	entry := &CachedLoop{
		LoopID:       t.id,
		Kind:         KindConditional,
		Vectorizable: true,
		Analysis:     a,
		LimitValue:   t.tripLimitValue(),
		LimitIsImm:   trip.LimitIsImm,
	}
	e.Cache.Insert(entry)
	e.stats.DSACacheAccesses++
	e.stats.AnalysisTicks += e.cfg.Latencies.DSACacheAccess
	e.recordVerdict(t, true)

	if n-t.iter < a.Lanes() {
		e.policyLoss(t.id) // analysis paid, nothing taken over
		return
	}
	if e.pending == nil {
		e.pending = e.newRequest(Request{Kind: ReqConditional, Analysis: a, StartIter: t.iter + 1, TotalIters: n, Cached: entry})
	}
}

// buildPathPatterns derives patterns for one condition path: shared
// (header/tail) sites from iterations 2 and 3, middle sites from the
// path's two observations.
func (e *Engine) buildPathPatterns(t *track, p *pathInfo, middlePCs map[int]bool) ([]MemPattern, map[memKey]int, error) {
	var patterns []MemPattern
	patIdx := make(map[memKey]int)
	occ := make(map[int]int)
	for i := range p.recsA {
		r := &p.recsA[i]
		if !r.HasMem {
			continue
		}
		o := occ[r.PC]
		occ[r.PC] = o + 1
		if o > 0 {
			return nil, nil, rejectf("multi-occurrence-in-conditional")
		}
		k := memKey{pc: r.PC, occ: 0}
		iterA, iterB := p.firstIt, p.secondIt
		if !middlePCs[r.PC] {
			// Shared site: every iteration observes it; use the first
			// two recorded observations.
			obs := t.mem[k]
			if len(obs) < 2 {
				return nil, nil, rejectf("irregular-memory-site")
			}
			iterA, iterB = obs[0].iter, obs[1].iter
		}
		var a, b *memObs
		for j := range t.mem[k] {
			if t.mem[k][j].iter == iterA {
				a = &t.mem[k][j]
			}
			if t.mem[k][j].iter == iterB {
				b = &t.mem[k][j]
			}
		}
		if a == nil || b == nil {
			return nil, nil, rejectf("irregular-memory-site")
		}
		mp, err := NewMemPattern(r.PC, r.MemStore, r.Instr.DT, r.MemSize, iterA, iterB, a.addr, b.addr)
		if err != nil {
			return nil, nil, rejectf("non-linear-access")
		}
		mp.BaseReg = r.Instr.Mem.Base
		mp.Mem = r.Instr.Mem
		patterns = append(patterns, mp)
		patIdx[k] = len(patterns) - 1
	}
	return patterns, patIdx, nil
}

// tryGuardVectorization attempts the full-speculation plan (§4.6.4.2
// at vector width): the guard computation feeding the diverging branch
// is itself extracted as lane values, so the branch outcome becomes a
// SIMD mask and no per-iteration scalar work remains. Returns nil when
// the mapped (per-iteration) mode must be used instead.
func (e *Engine) tryGuardVectorization(t *track, env *regEnv,
	seqs [][]int, nPrefix int, condPaths []CondPath, elemDT armlite.DataType,
	guardFeed []StepRec, guardPats []MemPattern, guardPatIdx map[memKey]int) *CondVec {
	if !e.cfg.EnableGuardVec {
		return nil
	}
	if len(condPaths) != 2 || guardFeed == nil || nPrefix < 1 {
		return nil
	}
	divergePC := seqs[0][nPrefix-1]
	code := e.m.Prog.Code
	br := code[divergePC]
	if br.Op != armlite.OpB || br.Cond == armlite.CondAL {
		return nil
	}
	// The guard compare: last flag setter in the header feed.
	cmpPC := -1
	for i := len(guardFeed) - 1; i >= 0; i-- {
		in := guardFeed[i].Instr
		if in.Op.SetsFlagsAlways() || in.SetFlags {
			cmpPC = guardFeed[i].PC
			break
		}
	}
	if cmpPC < 0 {
		return nil
	}
	structural := map[int]bool{divergePC: true, t.branchPC: true}
	gdag, aN, bN, isF, gdt, err := extractGuard(guardFeed, env, guardPats, guardPatIdx, structural, cmpPC)
	if err != nil || gdt != elemDT {
		return nil
	}

	// Sub-word lanes: the scalar compare sees zero-extended 32-bit
	// values, which equals an unsigned lane compare — but only when
	// both operands are raw loads or in-range constants (arithmetic
	// could have left the 32-bit value outside the lane's range).
	unsigned := false
	if elemDT.Size() < 4 && !isF {
		limit := int64(1) << uint(8*elemDT.Size())
		for _, n := range []*Node{aN, bN} {
			switch n.Kind {
			case NodeLoad, NodeConstMem:
			case NodeImm:
				if int64(n.Imm) < 0 || int64(n.Imm) >= limit {
					return nil
				}
			default:
				return nil
			}
		}
		unsigned = true
	}

	// Which arm does the taken branch reach?
	target := br.Target
	takenIdx, fallIdx := -1, -1
	for i := range condPaths {
		if condPaths[i].PCs[target] {
			takenIdx = i
		}
	}
	for i := range condPaths {
		if i != takenIdx {
			fallIdx = i
		}
	}
	if takenIdx == -1 {
		// Branch jumps straight to the tail: the taken arm is the
		// empty path.
		for i := range condPaths {
			if len(condPaths[i].PCs) == 0 {
				takenIdx = i
			} else {
				fallIdx = i
			}
		}
	}
	if takenIdx == -1 || fallIdx == -1 {
		return nil
	}

	// Disjoint register allocation: guard at 0, arms above it.
	base := armlite.VReg(len(gdag.Nodes))
	gplan, err := BuildPlanAt(gdag, guardPats, elemDT, 0, aN, bN)
	if err != nil {
		return nil
	}
	mkArm := func(idx int) (*CondArm, bool) {
		p := &condPaths[idx]
		if len(p.PCs) == 0 || p.Payload == nil {
			return nil, true
		}
		plan, err := BuildPlanAt(p.Payload, p.patterns, elemDT, base)
		if err != nil {
			return nil, false
		}
		base += armlite.VReg(len(p.Payload.Nodes))
		return &CondArm{Plan: plan, Patterns: p.patterns}, true
	}
	taken, ok := mkArm(takenIdx)
	if !ok {
		return nil
	}
	fall, ok := mkArm(fallIdx)
	if !ok {
		return nil
	}
	if taken == nil && fall == nil {
		return nil
	}
	return &CondVec{
		GuardPlan:     gplan,
		GuardPatterns: guardPats,
		A:             aN,
		B:             bN,
		Cond:          br.Cond,
		Float:         isF,
		Unsigned:      unsigned,
		Taken:         taken,
		Fall:          fall,
	}
}
