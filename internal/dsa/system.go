package dsa

import (
	"errors"
	"fmt"

	"repro/internal/armlite"
	"repro/internal/cpu"
	"repro/internal/mem"
)

// ErrStepBudget marks a takeover whose in-loop driver exceeded the
// per-takeover step budget (e.g. a corrupted action-PC map keeping a
// sentinel loop from ever reaching its stop condition). The guarded
// path turns it into a rollback-to-scalar, never a fatal error.
var ErrStepBudget = errors.New("dsa: takeover step budget exceeded")

// System couples a scalar machine with the DSA engine: Scenario 1 of
// Fig. 10 (parallel probing) while stepping normally, Scenario 2
// (NEON execution) when the engine raises a takeover request. Every
// takeover runs under a checkpoint: executor errors, speculation
// overruns and budget blowouts roll the machine back precisely and
// re-run the loop on the ARM core instead of killing the simulation.
type System struct {
	M *cpu.Machine
	E *Engine
	X *Executor

	cfg    Config
	faults *FaultInjector

	// spec is the reusable speculative-store buffer: one takeover runs
	// at a time, and Commit/Discard leave Entries reset, so sentinel
	// and conditional windows share it without allocating per takeover.
	spec SpecBuffer

	// runHook (SetRunHook) fires between steps at engine-quiescent
	// points only — the periodic snapshot tap.
	runHook func() error
}

// NewSystem builds a DSA-equipped machine for prog.
func NewSystem(prog *armlite.Program, cpuCfg cpu.Config, dsaCfg Config) (*System, error) {
	m, err := cpu.New(prog, cpuCfg)
	if err != nil {
		return nil, err
	}
	e := NewEngine(m, dsaCfg)
	s := &System{M: m, E: e, X: NewExecutor(m, e.cfg.Latencies, e.stats), cfg: e.cfg}
	if e.cfg.Fault.Kind != FaultNone {
		s.faults = newFaultInjector(e.cfg.Fault)
		s.X.faults = s.faults
	}
	return s, nil
}

// Run executes the program to completion with DSA detection active.
//
// Two driving regimes, bit-identical in every counter and decision:
//
//   - Watch mode (no analysis in flight): the engine's Observe is a
//     no-op for every record except a taken backward branch, so the
//     machine runs its quiescent fast loop (cpu.RunToBackBranch) and
//     only surfaces those branches. The skipped observations are
//     accounted in bulk from the step delta; detection fires through
//     the same detectLoop the step path uses.
//   - Step mode (live tracks): every retired instruction is fed to
//     Observe so the per-loop state machines see the full stream.
func (s *System) Run() error {
	var rec cpu.Record
	for !s.M.Halted {
		if len(s.E.live) == 0 {
			before := s.M.Steps
			target, bpc, hit, err := s.M.RunToBackBranch()
			s.E.stats.Observations += s.M.Steps - before
			if err != nil {
				return err
			}
			if hit {
				s.E.detectLoop(target, bpc)
			}
		} else {
			if err := s.M.Step(&rec); err != nil {
				return err
			}
			s.E.Observe(&rec)
		}
		if req := s.E.TakeRequest(); req != nil {
			if err := s.guarded(req); err != nil {
				return fmt.Errorf("dsa takeover at loop %d: %w", req.Analysis.LoopID, err)
			}
			s.E.ReleaseRequest(req)
		}
		// Snapshot tap: only between steps, only with no analysis in
		// flight. A hook due mid-analysis simply fires at the next
		// quiescent point (tracks decide within ~3 iterations).
		if s.runHook != nil && s.E.Quiescent() {
			if err := s.runHook(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats returns the engine's counters.
func (s *System) Stats() *Stats { return s.E.Stats() }

// Faults returns the active fault injector (nil outside fault runs).
func (s *System) Faults() *FaultInjector { return s.faults }

// guarded runs one takeover under a checkpoint. A takeover can only
// end two ways: committed with exactly the scalar architectural
// result, or fully unwound with the loop blacklisted and re-executed
// scalar. Errors escape only for faults of the simulation itself
// (e.g. the scalar oracle replay failing, or a divergence in
// hard-verify mode).
func (s *System) guarded(req *Request) error {
	label := s.faults.Arm(req)
	mark := s.policyBegin()
	cp := s.M.Checkpoint()
	err := s.handle(req)
	if err == nil {
		if !s.cfg.Verify.Enabled {
			s.M.Release(cp)
			s.policySettle(req, mark)
			return nil
		}
		div, verr := s.verify(req, cp)
		if verr != nil {
			return verr
		}
		if div == nil {
			// Oracle agreed; the speculative outcome (ticks, steps,
			// counters) is architecturally in place, so the deltas
			// across the takeover are the takeover's own cost.
			s.policySettle(req, mark)
			return nil
		}
		// The oracle's scalar state is already architecturally in
		// place; record the divergence and pin the loop scalar.
		s.fallbackTo(req, fallbackCause(div, label))
		return nil
	}
	// Executor error, speculation overrun or budget blowout: unwind
	// the takeover precisely and resume scalar at the loop head.
	s.M.Rollback(cp)
	if errors.Is(err, cpu.ErrCanceled) || errors.Is(err, cpu.ErrMaxSteps) {
		// Simulation-level aborts (deadline, batch shutdown, global
		// runaway guard) are not the loop's fault: re-running it scalar
		// would hit the same wall. Surface them to the supervisor.
		return err
	}
	s.M.Ticks += s.cfg.Latencies.PipelineFlush // squash cost of the aborted switch
	s.E.stats.OverheadTicks += s.cfg.Latencies.PipelineFlush
	s.fallbackTo(req, errorCause(err, label))
	return nil
}

// policyMark captures the cumulative counters entering a takeover so
// policySettle can measure what the takeover actually cost.
type policyMark struct {
	on       bool
	ticks    int64
	vecIters uint64
	energyNJ float64
}

func (s *System) policyBegin() policyMark {
	if s.E.policy == nil {
		return policyMark{}
	}
	return policyMark{
		on:       true,
		ticks:    s.M.Ticks,
		vecIters: s.E.stats.VectorizedIters,
		energyNJ: s.E.energyNow(),
	}
}

// policySettle folds one committed takeover's measured outcome into the
// adaptive ledger: estimated scalar cost (the loop's own sampled
// per-iteration baseline × iterations vectorized) minus the measured
// takeover cost. Rolled-back takeovers never settle — the loop is
// blacklisted structurally, which removes the arm from play entirely.
func (s *System) policySettle(req *Request, mark policyMark) {
	if !mark.on {
		return
	}
	pc := req.Analysis.LoopID
	baseTicks, baseEnergy, ok := s.E.policy.Baseline(pc)
	if !ok {
		return // no sampled baseline (nothing to compare against)
	}
	iters := int64(s.E.stats.VectorizedIters - mark.vecIters)
	tickGain := baseTicks*iters - (s.M.Ticks - mark.ticks)
	energyGain := baseEnergy*float64(iters) - (s.E.energyNow() - mark.energyNJ)
	win, suspended := s.E.policy.RecordTakeover(pc, tickGain, energyGain)
	if win {
		s.E.stats.PolicyKept++
	}
	if suspended {
		s.E.stats.PolicySuspended++
	}
}

// fallbackTo blacklists the loop and counts the fallback.
func (s *System) fallbackTo(req *Request, cause string) {
	s.E.Blacklist(req.Analysis.LoopID, cause)
	s.E.stats.Fallbacks++
	s.E.stats.FallbackReasons[cause]++
}

// errorCause classifies a takeover failure for the fallback counters,
// entirely through typed sentinels (errors.Is) — never message text.
// An armed injected fault claims the takeover's failure regardless of
// which guard tripped, so the harness can attribute every fallback.
func errorCause(err error, faultLabel string) string {
	switch {
	case faultLabel != "":
		return faultLabel
	case errors.Is(err, ErrStepBudget):
		return "step-budget"
	case errors.Is(err, mem.ErrOutOfRange):
		return "out-of-range"
	case errors.Is(err, cpu.ErrInvalidPC):
		return "invalid-pc"
	case errors.Is(err, cpu.ErrUnimplemented):
		return "unimplemented"
	default:
		return "executor-error"
	}
}

// fallbackCause classifies an oracle divergence.
func fallbackCause(_ *Divergence, faultLabel string) string {
	if faultLabel != "" {
		return faultLabel
	}
	return "divergence"
}

func (s *System) handle(req *Request) error {
	a := req.Analysis
	defer s.E.NoteVectorized(a.LoopID, a.BranchPC)
	switch req.Kind {
	case ReqVector:
		return s.runVector(req)
	case ReqSentinel:
		return s.runSentinel(req)
	case ReqConditional:
		return s.runConditional(req)
	default:
		return fmt.Errorf("unknown request kind %d", req.Kind)
	}
}

// stepBudget returns the per-takeover driver budget.
func (s *System) stepBudget() uint64 {
	if s.cfg.TakeoverStepBudget > 0 {
		return s.cfg.TakeoverStepBudget
	}
	return DefaultTakeoverStepBudget
}

// advanceInduction moves every induction register forward by iters
// iterations.
func (s *System) advanceInduction(ind map[armlite.Reg]int64, iters int) {
	for r, d := range ind {
		s.M.R[r] += uint32(d * int64(iters))
	}
}

// runVector handles count/function/dynamic-range loops: vectorize
// iterations [StartIter, N-1], leave the final iteration (plus any
// scalar leftover) to the ARM core so flags and exit state stay exact.
func (s *System) runVector(req *Request) error {
	a := req.Analysis
	start, n := req.StartIter, req.TotalIters
	last := n - 1
	if last < start {
		return nil
	}
	s.X.Begin(a.Patterns)
	disjoint := StoresDisjointFromLoads(a.Patterns, start, last)

	var executed int
	if a.Partial {
		// Dependency windows (§4.5): each window is shorter than the
		// dependency distance, so its loads only read data earlier
		// windows already committed.
		d := a.CID.Distance
		if d < 1 {
			return fmt.Errorf("partial vectorization with distance %d", d)
		}
		for w := start; w <= last; w += d {
			end := w + d - 1
			if end > last {
				end = last
			}
			done, err := s.X.RunWindow(a.plan, w, end, LeftoverSingle, disjoint, nil, 0)
			if err != nil {
				return err
			}
			executed += done
			s.E.stats.AnalysisTicks += s.cfg.Latencies.PartialReanalysis
		}
	} else {
		done, err := s.X.RunWindow(a.plan, start, last, s.cfg.Leftover, disjoint, nil, 0)
		if err != nil {
			return err
		}
		executed = done
	}
	// Resume scalar execution at the first unexecuted iteration.
	s.advanceInduction(a.Induction, executed)
	s.M.PC = a.LoopID
	return nil
}

// runSentinel handles sentinel loops (§4.6.5): the stop-condition
// slice keeps executing scalar while the payload is computed
// speculatively over the speculative range; results past the real
// range are discarded at commit time.
func (s *System) runSentinel(req *Request) error {
	a := req.Analysis
	sent := a.Sent
	start, spec := req.StartIter, req.SpecRange

	s.X.Begin(a.Patterns)
	buf := &s.spec
	buf.Discard() // drop residue from a takeover unwound mid-window
	windowEnd := start + spec - 1
	skipping := true
	if _, err := s.X.RunWindow(a.plan, start, windowEnd, LeftoverSingle, false, buf, 0); err != nil {
		if !errors.Is(err, mem.ErrOutOfRange) {
			return err
		}
		// The speculative window ran past addressable memory; give up
		// on speculation and stay scalar for this entry.
		buf.Discard()
		skipping = false
	}

	// Action-only induction registers (payload pointers) are frozen
	// while iterations are skipped; remember the takeover values.
	actionInd := s.actionInduction(a.Induction, sent.ActionPCs, a.LoopID, a.BranchPC)
	takeoverVals := make(map[armlite.Reg]uint32, len(actionInd))
	for r := range actionInd {
		takeoverVals[r] = s.M.R[r]
	}
	restoreActionRegs := func(itersDone int) {
		for r, d := range actionInd {
			s.M.R[r] = takeoverVals[r] + uint32(d*int64(itersDone))
		}
	}
	// Rematerialize payload temporaries as of the last iteration whose
	// action ran (scalar semantics: the exiting iteration's stop check
	// leaves the previous iteration's temporaries in the registers).
	materializeTemps := func(lastActionIter int) error {
		if lastActionIter < start {
			return nil // every action iteration ran scalar pre-takeover
		}
		s.X.SetPatterns(a.Patterns)
		for r, node := range sent.RegOut {
			v, err := s.X.EvalElement(node, lastActionIter)
			if err != nil {
				return err
			}
			s.M.R[r] = v
		}
		return nil
	}

	iter := start
	var rec cpu.Record
	var spent uint64
	budget := s.stepBudget()
	for {
		if spent++; spent > budget {
			return fmt.Errorf("sentinel loop after %d driver steps: %w", spent-1, ErrStepBudget)
		}
		if s.M.Halted {
			return fmt.Errorf("halt inside sentinel loop")
		}
		if skipping && sent.ActionPCs[s.M.PC] {
			s.skipRun(sent.ActionPCs)
			continue
		}
		if err := s.M.Step(&rec); err != nil {
			return err
		}
		isBack := rec.PC == a.BranchPC && rec.Instr.Op == armlite.OpB
		exitMid := rec.Instr.Op == armlite.OpB && rec.Taken &&
			(rec.Instr.Target < a.LoopID || rec.Instr.Target > a.BranchPC) &&
			rec.PC != a.BranchPC

		if exitMid {
			// The exiting iteration's action never runs (the stop
			// check precedes the action; verified at analysis).
			if err := buf.Commit(s.X, func(it, _ int) bool { return it < iter }); err != nil {
				return err
			}
			if skipping {
				restoreActionRegs(iter - start)
				if err := materializeTemps(iter - 1); err != nil {
					return err
				}
			}
			s.updateSentinelRange(req, iter-1)
			return nil
		}
		if isBack {
			if rec.Taken {
				iter++
				if skipping && iter > windowEnd {
					// Window exhausted but the loop keeps going:
					// commit what speculation produced so far and
					// open the next speculative window (§4.6.5's
					// partial vectorization of sentinel loops).
					if err := buf.Commit(s.X, func(int, int) bool { return true }); err != nil {
						return err
					}
					windowEnd = iter + spec - 1
					s.E.stats.AnalysisTicks += s.cfg.Latencies.PartialReanalysis
					if _, err := s.X.RunWindow(a.plan, iter, windowEnd, LeftoverSingle, false, buf, 0); err != nil {
						if !errors.Is(err, mem.ErrOutOfRange) {
							return err
						}
						// Out of addressable range: finish scalar.
						buf.Discard()
						skipping = false
						restoreActionRegs(iter - start)
						if err := materializeTemps(iter - 1); err != nil {
							return err
						}
					}
				}
			} else {
				// Natural exit after completing iteration `iter`.
				if err := buf.Commit(s.X, func(it, _ int) bool { return it <= iter }); err != nil {
					return err
				}
				if skipping {
					restoreActionRegs(iter - start + 1)
					if err := materializeTemps(iter); err != nil {
						return err
					}
				}
				s.updateSentinelRange(req, iter)
				return nil
			}
		}
	}
}

// actionInduction filters induction registers to those only updated
// inside the skipped action region — their architectural values
// freeze while iterations are skipped and must be fixed up from the
// measured deltas. The scan covers the loop body only (bodyLo..bodyHi).
func (s *System) actionInduction(ind map[armlite.Reg]int64, actionPCs map[int]bool, bodyLo, bodyHi int) map[armlite.Reg]int64 {
	out := make(map[armlite.Reg]int64)
	code := s.M.Prog.Code
	for r, d := range ind {
		updatedOutside := false
		updatedInside := false
		for pc := bodyLo; pc <= bodyHi && pc < len(code); pc++ {
			if !code[pc].Defs().Has(r) {
				continue
			}
			if actionPCs[pc] {
				updatedInside = true
			} else {
				updatedOutside = true
			}
		}
		if updatedInside && !updatedOutside {
			out[r] = d
		}
	}
	return out
}

// skipRun jumps over a contiguous run of skippable instructions. The
// DSA steers the fetch unit directly (it knows the resume address), so
// the cost is a fraction of a branch redirect.
func (s *System) skipRun(skip map[int]bool) {
	pc := s.M.PC
	for pc < len(s.M.Prog.Code) && skip[pc] {
		pc++
	}
	s.M.PC = pc
	s.M.Ticks += 2
}

func (s *System) updateSentinelRange(req *Request, realRange int) {
	if req.Cached != nil {
		req.Cached.SentinelRange = realRange
	}
}

// runCondVector executes a conditional loop under full speculation:
// guard, mask and both arms all run at vector width; the remainder
// (plus the final iteration) stays scalar.
func (s *System) runCondVector(req *Request) error {
	a := req.Analysis
	start, n := req.StartIter, req.TotalIters
	last := n - 1
	if last < start {
		return nil
	}
	s.X.Begin(a.Patterns)
	done, err := s.X.RunCondWindow(a.Cond.Vec, start, last)
	if err != nil {
		return err
	}
	s.advanceInduction(a.Induction, done)
	s.M.PC = a.LoopID
	return nil
}

// runConditional handles conditional loops (§4.6.4.2). When the guard
// itself vectorizes, the whole loop runs speculatively (runCondVector);
// otherwise scalar guards decide each iteration's condition, each
// condition's action is vectorized once per window into array-map
// storage, and the Speculative stage commits the mapped lanes at
// window end.
func (s *System) runConditional(req *Request) error {
	a := req.Analysis
	cond := a.Cond
	if cond.Vec != nil {
		return s.runCondVector(req)
	}
	lanes := a.Lanes()
	start, n := req.StartIter, req.TotalIters
	numWindows := (n - start) / lanes
	lastVec := start + numWindows*lanes - 1
	if numWindows < 1 {
		return nil
	}

	s.X.Begin(a.Patterns)
	buf := &s.spec
	buf.Discard() // drop residue from a takeover unwound mid-window

	pathOf := make(map[int]int) // action PC → path index
	for pi := range cond.Paths {
		for pc := range cond.Paths[pi].PCs {
			pathOf[pc] = pi
		}
	}
	emptyPath := -1
	for pi := range cond.Paths {
		if len(cond.Paths[pi].PCs) == 0 {
			emptyPath = pi
		}
	}

	// Action-only induction registers (frozen during skipping).
	actionInd := s.actionInduction(a.Induction, cond.ActionPCs, a.LoopID, a.BranchPC)
	takeoverVals := make(map[armlite.Reg]uint32, len(actionInd))
	for r := range actionInd {
		takeoverVals[r] = s.M.R[r]
	}

	iter := start
	windowStart := start
	iterPath := make(map[int]int)
	vectorized := make(map[int]bool)
	sawAction := false
	skipping := true
	var rec cpu.Record
	var spent uint64
	budget := s.stepBudget()

	commitWindow := func(wStart, wEnd int) error {
		if s.E.stats != nil {
			s.E.stats.ArrayMapAccesses += uint64(wEnd - wStart + 1)
		}
		return buf.Commit(s.X, func(it, tag int) bool {
			p, ok := iterPath[it]
			return ok && p == tag && it >= wStart && it <= wEnd
		})
	}

	for {
		if spent++; spent > budget {
			return fmt.Errorf("conditional loop after %d driver steps: %w", spent-1, ErrStepBudget)
		}
		if s.M.Halted {
			return fmt.Errorf("halt inside conditional loop")
		}
		if skipping && cond.ActionPCs[s.M.PC] {
			pi := pathOf[s.M.PC]
			if !vectorized[pi] {
				p := &cond.Paths[pi]
				s.X.SetPatterns(p.patterns)
				if _, err := s.X.RunWindow(p.plan, windowStart, windowStart+lanes-1,
					LeftoverSingle, false, buf, pi); err != nil {
					return err
				}
				vectorized[pi] = true
			}
			iterPath[iter] = pi
			sawAction = true
			s.skipRun(cond.ActionPCs)
			continue
		}
		if err := s.M.Step(&rec); err != nil {
			return err
		}
		if rec.PC == a.BranchPC && rec.Instr.Op == armlite.OpB {
			if !sawAction && skipping {
				if emptyPath < 0 {
					return fmt.Errorf("iteration %d took an unmapped empty path", iter)
				}
				iterPath[iter] = emptyPath
			}
			sawAction = false
			if rec.Taken {
				iter++
				if skipping && iter > windowStart+lanes-1 {
					if err := commitWindow(windowStart, iter-1); err != nil {
						return err
					}
					windowStart = iter
					vectorized = make(map[int]bool)
					if iter > lastVec {
						skipping = false
						for r, d := range actionInd {
							s.M.R[r] = takeoverVals[r] + uint32(d*int64(iter-start))
						}
					}
				}
			} else {
				// Loop exit. Any residue (early exit mid-window) is
				// committed for fully mapped iterations.
				if skipping {
					if err := commitWindow(windowStart, iter); err != nil {
						return err
					}
					for r, d := range actionInd {
						s.M.R[r] = takeoverVals[r] + uint32(d*int64(iter-start+1))
					}
				}
				return nil
			}
		}
	}
}
