//go:build !race

package dsa

const raceEnabled = false
