package dsa

import (
	"math/rand"
	"testing"

	"repro/internal/armlite"
)

// scanPairConflict is the windowed O(span²) reference the closed form
// must match exactly — a verbatim copy of pairConflict's scan loop.
func scanPairConflict(s, l *MemPattern, firstIter, lastIter int) (bool, int) {
	for j := firstIter + 1; j <= lastIter; j++ {
		jLo := l.AddrAt(j)
		jHi := jLo + uint32(l.Size) - 1
		for i := firstIter; i < j; i++ {
			iLo := s.AddrAt(i)
			iHi := iLo + uint32(s.Size) - 1
			if rangesOverlap(iLo, iHi, jLo, jHi) {
				return true, j
			}
		}
	}
	return false, 0
}

// TestPairConflictExactMatchesScan pins the equal-stride closed form
// bit-identical to the windowed scan across randomized geometries:
// every stride sign, width mix, base offset (including grazing widths
// that are not stride multiples), and window length.
func TestPairConflictExactMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := []int{1, 2, 4}
	strides := []int64{-16, -8, -4, -3, -1, 0, 1, 2, 3, 4, 8, 256}
	trials := 0
	for _, st := range strides {
		for _, ss := range sizes {
			for _, ls := range sizes {
				for rep := 0; rep < 200; rep++ {
					base := uint32(0x10000 + rng.Intn(1<<16))
					off := int64(rng.Intn(64) - 32)
					first := 2
					last := first + rng.Intn(80)
					s := &MemPattern{Store: true, Size: ss, RefIterA: first,
						AddrA: base, Stride: st, DT: armlite.Word}
					l := &MemPattern{Store: false, Size: ls, RefIterA: first,
						AddrA: uint32(int64(base) + off), Stride: st, DT: armlite.Word}
					if !patternBounded(s, first, last) || !patternBounded(l, first, last) {
						continue
					}
					wantC, wantJ := scanPairConflict(s, l, first, last)
					gotC, gotJ := pairConflictExact(s, l, first, last)
					if wantC != gotC || wantJ != gotJ {
						t.Fatalf("st=%d ss=%d ls=%d off=%d window=[%d,%d]: scan=(%v,%d) exact=(%v,%d)",
							st, ss, ls, off, first, last, wantC, wantJ, gotC, gotJ)
					}
					trials++
				}
			}
		}
	}
	if trials < 10000 {
		t.Fatalf("only %d comparable trials ran", trials)
	}
}

// TestPairConflictWrapFallsBackToScan: a stream whose window wraps the
// 32-bit address space must not take the closed form (its arithmetic
// is exact-int64 only) — pairConflict must agree with the scan there
// too, via the fallback.
func TestPairConflictWrapFallsBackToScan(t *testing.T) {
	s := &MemPattern{Store: true, Size: 4, RefIterA: 2, AddrA: 0xFFFFFFF0, Stride: 8, DT: armlite.Word}
	l := &MemPattern{Store: false, Size: 4, RefIterA: 2, AddrA: 0x00000004, Stride: 8, DT: armlite.Word}
	if patternBounded(s, 2, 40) {
		t.Fatal("store stream should be unbounded (wraps)")
	}
	wantC, wantJ := scanPairConflict(s, l, 2, 40)
	gotC, gotJ := pairConflict(s, l, 2, 40)
	if wantC != gotC || wantJ != gotJ {
		t.Fatalf("wrap case: scan=(%v,%d) pairConflict=(%v,%d)", wantC, wantJ, gotC, gotJ)
	}
}

// TestCIDMemoReplay: the memoized verdict replays only under the
// invariance conditions (same trip count, same relative geometry,
// wrap-free shift) and is refused otherwise.
func TestCIDMemoReplay(t *testing.T) {
	mk := func(base uint32) []MemPattern {
		return []MemPattern{
			{Store: false, Size: 4, RefIterA: 2, AddrA: base, Stride: 4, DT: armlite.Word},
			{Store: true, Size: 4, RefIterA: 2, AddrA: base + 0x1000, Stride: 4, DT: armlite.Word},
		}
	}
	c := &CachedLoop{}
	pats := mk(0x4000)
	res := PredictCID(pats, 2, 64)
	c.memoStore(pats, 64, res)

	if got, ok := c.memoPredict(mk(0x4000), 64); !ok || got != res {
		t.Fatalf("identical re-entry: memo miss (ok=%v)", ok)
	}
	// Shifted base, same relative geometry, wrap-free: replays.
	if got, ok := c.memoPredict(mk(0x9000), 64); !ok || got != res {
		t.Fatalf("shifted re-entry: memo miss (ok=%v)", ok)
	}
	// Verify the replayed verdict equals a fresh computation.
	if fresh := PredictCID(mk(0x9000), 2, 64); fresh != res {
		t.Fatalf("shift invariance violated: fresh=%+v memo=%+v", fresh, res)
	}
	// Different trip count: refuse.
	if _, ok := c.memoPredict(mk(0x4000), 32); ok {
		t.Fatal("trip-count change must refuse the memo")
	}
	// Different relative geometry: refuse.
	moved := mk(0x4000)
	moved[1].AddrA += 8
	if _, ok := c.memoPredict(moved, 64); ok {
		t.Fatal("relative-geometry change must refuse the memo")
	}
	// Stride change: refuse.
	strided := mk(0x4000)
	strided[1].Stride = 8
	if _, ok := c.memoPredict(strided, 64); ok {
		t.Fatal("stride change must refuse the memo")
	}
	// Wrapping shift: refuse (shift invariance does not apply).
	if _, ok := c.memoPredict(mk(0xFFFFFF00), 64); ok {
		t.Fatal("wrapping re-entry must refuse the memo")
	}
}
