package dsa

import (
	"bytes"
	"fmt"

	"repro/internal/armlite"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/neon"
)

// VerifyConfig configures the differential oracle. When enabled,
// every takeover that commits is shadowed by a scalar replay of the
// same loop from the takeover checkpoint, and the two executions are
// diffed — registers, flags, exit PC and every touched memory page —
// at the loop's exit. The replay runs on the machine itself through
// the checkpoint journal (an undo-log fork), so no second memory
// image is needed.
type VerifyConfig struct {
	// Enabled turns the oracle on.
	Enabled bool
	// Fallback selects the production safety-net behavior: on a
	// divergence, keep the scalar oracle's (ground-truth) state,
	// blacklist the loop and count a fallback. When false, a
	// divergence is a hard error carrying the full report — the
	// debugging-oracle mode of cmd/dsasim -verify.
	Fallback bool
	// MaxReplaySteps bounds each phase of the per-takeover replay
	// (0 = the takeover step budget).
	MaxReplaySteps uint64
}

// Divergence is the oracle's report of the first observed mismatch
// between a takeover and its scalar replay.
type Divergence struct {
	LoopID    int
	Kind      LoopKind
	StartIter int    // first iteration the takeover executed as SIMD
	Iters     int    // loop iterations the scalar replay completed
	What      string // first mismatching register / flag / address
}

// Error makes a Divergence usable as a hard error in oracle mode.
func (d *Divergence) Error() string {
	return fmt.Sprintf("dsa verify: loop %d (%s, takeover at iteration %d) diverged from scalar replay after %d iterations: %s",
		d.LoopID, d.Kind, d.StartIter, d.Iters, d.What)
}

// vecOutcome snapshots the speculative execution's result so it can
// be re-applied after the scalar replay confirms it.
type vecOutcome struct {
	r      [armlite.NumRegs]uint32
	f      armlite.Flags
	pc     int
	halted bool
	ticks  int64
	steps  uint64
	counts cpu.Counts

	neonQ      [armlite.NumVRegs]neon.Vec
	neonOps    uint64
	neonLoads  uint64
	neonStores uint64

	pages map[uint32][]byte // page base → bytes after the takeover
}

// verify cross-checks a committed takeover against scalar semantics.
// On entry the takeover has succeeded and cp (with its live journal)
// is still open; verify closes it. Return values:
//
//   - (nil, nil): the replay matched; the speculative outcome —
//     including its timing — is in place.
//   - (div, nil): divergence under VerifyConfig.Fallback; the scalar
//     oracle's state is in place and the caller blacklists the loop.
//   - (div, div) / (nil, err): hard failure (divergence in oracle
//     mode, or the replay itself could not run).
func (s *System) verify(req *Request, cp *cpu.Checkpoint) (*Divergence, error) {
	a := req.Analysis
	s.E.stats.VerifiedTakeovers++
	budget := s.cfg.Verify.MaxReplaySteps
	if budget == 0 {
		budget = s.stepBudget()
	}
	lo, hi := a.LoopID, a.BranchPC

	// Phase 1: finish the loop on the ARM core under the takeover's
	// journal (the final iteration plus any scalar leftover), so both
	// executions are compared at the loop's architectural exit. The
	// engine observes these records exactly as it would outside
	// verification; takeover offers raised here are dropped (a second
	// speculation nested inside a verification would be unverifiable).
	if _, err := s.runLoopToExit(lo, hi, budget, true); err != nil {
		s.M.Rollback(cp)
		return nil, fmt.Errorf("dsa verify: completing loop %d: %w", lo, err)
	}

	vec := &vecOutcome{
		r: s.M.R, f: s.M.F, pc: s.M.PC, halted: s.M.Halted,
		ticks: s.M.Ticks, steps: s.M.Steps, counts: s.M.Counts,
		neonQ: s.M.NEON.Q, neonOps: s.M.NEON.Ops,
		neonLoads: s.M.NEON.Loads, neonStores: s.M.NEON.Stores,
		pages: make(map[uint32][]byte),
	}
	for _, p := range cp.Journal.Pages() {
		vec.pages[p] = s.M.Mem.SnapshotPage(p)
	}

	// Phase 2: unwind to the checkpoint and replay the loop scalar.
	// The replay is the ground truth — the engine does not observe it
	// (the oracle is invisible hardware).
	s.M.Rollback(cp)
	j := s.M.Mem.BeginJournal()
	iters, err := s.runLoopToExit(lo, hi, budget, false)
	if err != nil {
		j.Rollback()
		return nil, fmt.Errorf("dsa verify: scalar replay of loop %d: %w", lo, err)
	}

	// Phase 3: diff the two executions.
	if what := s.diffOutcome(vec, j.Pages(), j); what != "" {
		d := &Divergence{LoopID: lo, Kind: a.Kind, StartIter: req.StartIter, Iters: iters, What: what}
		s.E.stats.Divergences++
		j.Commit() // keep the scalar oracle's state either way
		if s.cfg.Verify.Fallback {
			return d, nil
		}
		return d, d
	}

	// Match: reinstate the speculative outcome, which carries the
	// takeover's timing and instruction accounting. State is
	// byte-identical to the scalar replay by construction.
	j.Rollback()
	for p, bytes := range vec.pages {
		if err := s.M.Mem.StoreBlock(p, bytes); err != nil {
			return nil, fmt.Errorf("dsa verify: restoring page %#x: %w", p, err)
		}
	}
	s.M.R, s.M.F, s.M.PC, s.M.Halted = vec.r, vec.f, vec.pc, vec.halted
	s.M.Ticks, s.M.Steps, s.M.Counts = vec.ticks, vec.steps, vec.counts
	s.M.NEON.Q = vec.neonQ
	s.M.NEON.Ops, s.M.NEON.Loads, s.M.NEON.Stores = vec.neonOps, vec.neonLoads, vec.neonStores
	return nil, nil
}

// runLoopToExit steps the machine scalar until the loop [lo, hi] is
// architecturally exited, returning the number of completed back-edge
// iterations. A BL inside the body (function loops) leaves the PC
// range without leaving the loop, so exit is PC-out-of-range at call
// depth zero. With observe set the engine sees every record (takeover
// offers raised along the way are dropped and counted).
func (s *System) runLoopToExit(lo, hi int, budget uint64, observe bool) (int, error) {
	var rec cpu.Record
	var spent uint64
	iters, depth := 0, 0
	for !s.M.Halted && (depth > 0 || (s.M.PC >= lo && s.M.PC <= hi)) {
		if spent++; spent > budget {
			return iters, fmt.Errorf("loop did not exit within %d steps", budget)
		}
		if err := s.M.Step(&rec); err != nil {
			return iters, err
		}
		switch rec.Instr.Op {
		case armlite.OpBL:
			depth++
		case armlite.OpBX:
			if depth > 0 {
				depth--
			}
		case armlite.OpB:
			if depth == 0 && rec.Taken && rec.Instr.Target == lo {
				iters++
			}
		}
		if observe {
			s.E.Observe(&rec)
			if r := s.E.TakeRequest(); r != nil {
				s.E.stats.DroppedRequests++
				s.E.ReleaseRequest(r)
			}
		}
	}
	return iters, nil
}

// diffOutcome compares the speculative outcome against the machine's
// current (scalar replay) state and returns a description of the
// first mismatch, or "" when the executions agree. Memory is compared
// over the union of both executions' touched pages: for a page the
// takeover wrote, its snapshot must equal the replay's bytes; for a
// page only the replay wrote, the takeover's content is the
// checkpoint image, which the replay journal saved.
func (s *System) diffOutcome(vec *vecOutcome, scalarPages []uint32, j *mem.Journal) string {
	if vec.pc != s.M.PC {
		return fmt.Sprintf("exit pc = %d (scalar %d)", vec.pc, s.M.PC)
	}
	if vec.halted != s.M.Halted {
		return fmt.Sprintf("halted = %v (scalar %v)", vec.halted, s.M.Halted)
	}
	for r := 0; r < armlite.NumRegs; r++ {
		if vec.r[r] != s.M.R[r] {
			return fmt.Sprintf("r%d = %#x (scalar %#x)", r, vec.r[r], s.M.R[r])
		}
	}
	if vec.f != s.M.F {
		return fmt.Sprintf("flags = %+v (scalar %+v)", vec.f, s.M.F)
	}

	seen := make(map[uint32]bool, len(vec.pages)+len(scalarPages))
	var union []uint32
	for p := range vec.pages {
		seen[p] = true
		union = append(union, p)
	}
	for _, p := range scalarPages {
		if !seen[p] {
			union = append(union, p)
		}
	}
	sortU32(union)
	// Precompute the takeover's written-page bounds: pages outside
	// [vecLo, vecHi] cannot be in vec.pages, so the common disjoint case
	// skips the map lookup entirely (the replay journal's saved image is
	// authoritative there).
	var vecLo, vecHi uint32
	haveVec := len(vec.pages) > 0
	if haveVec {
		first := true
		for p := range vec.pages {
			if first || p < vecLo {
				vecLo = p
			}
			if first || p > vecHi {
				vecHi = p
			}
			first = false
		}
	}
	for _, p := range union {
		var vecBytes []byte
		ok := false
		if haveVec && p >= vecLo && p <= vecHi {
			vecBytes, ok = vec.pages[p]
		}
		if !ok {
			// The takeover never wrote this page: its content there is
			// the checkpoint image the replay journal preserved.
			vecBytes = j.SavedPage(p)
		}
		scalarBytes := s.M.Mem.PageView(p)
		if len(scalarBytes) >= len(vecBytes) && bytes.Equal(vecBytes, scalarBytes[:len(vecBytes)]) {
			continue // fast path: page agrees byte-for-byte
		}
		for i := range vecBytes {
			if vecBytes[i] != scalarBytes[i] {
				return fmt.Sprintf("mem[%#x] = %#02x (scalar %#02x)", p+uint32(i), vecBytes[i], scalarBytes[i])
			}
		}
	}
	return ""
}

func sortU32(v []uint32) {
	for i := 1; i < len(v); i++ {
		for k := i; k > 0 && v[k] < v[k-1]; k-- {
			v[k], v[k-1] = v[k-1], v[k]
		}
	}
}
