package dsa

import (
	"sort"

	"repro/internal/energy"
)

// EnergyEvents converts the DSA counters into the energy model's
// event vector.
func (s *Stats) EnergyEvents() energy.DSAEvents {
	return energy.DSAEvents{
		StateTransitions: s.StateTransitions,
		Observations:     s.Observations,
		DSACacheAccesses: s.DSACacheAccesses,
		VCacheAccesses:   s.VCacheAccesses,
		ArrayMapAccesses: s.ArrayMapAccesses,
		CIDPCompares:     s.CIDPCompares,
	}
}

// Snapshot returns a deep copy of the counters — map fields included —
// safe to retain after the owning Engine (and its machine) are
// released. The batch supervisor snapshots each finished job's stats
// into its Result so a large batch holds per-job counters, not per-job
// machines, and so later reads never alias an engine another goroutine
// still owns.
func (s *Stats) Snapshot() *Stats {
	if s == nil {
		return nil
	}
	c := *s
	c.ByKind = make(map[LoopKind]uint64, len(s.ByKind))
	for k, v := range s.ByKind {
		c.ByKind[k] = v
	}
	c.RejectedReasons = make(map[string]uint64, len(s.RejectedReasons))
	for k, v := range s.RejectedReasons {
		c.RejectedReasons[k] = v
	}
	c.FallbackReasons = make(map[string]uint64, len(s.FallbackReasons))
	for k, v := range s.FallbackReasons {
		c.FallbackReasons[k] = v
	}
	return &c
}

// DetectionShare returns the fraction of total execution time the DSA
// spent analyzing (probing mode) — the "DSA Latency" metric of
// Article 2 Table 3 / Article 3 Table 2. The analysis runs in
// parallel with the core, so this is a utilization figure, not a
// wall-clock penalty.
func (s *Stats) DetectionShare(totalTicks int64) float64 {
	if totalTicks <= 0 {
		return 0
	}
	f := float64(s.AnalysisTicks) / float64(totalTicks)
	if f > 1 {
		f = 1
	}
	return f
}

// LoopReport is one cached loop in a human-readable form.
type LoopReport struct {
	LoopID       int
	Kind         LoopKind
	Vectorizable bool
	Reason       string // rejection reason when not vectorizable
	ElemDT       string
	Lanes        int
	Listing      []string // generated SIMD statements (one chunk)
}

// Report lists every loop the DSA cache currently holds, ordered by
// loop ID — the contents of the paper's DSA cache after a run.
func (e *Engine) Report() []LoopReport {
	ids := make([]int, 0, len(e.Cache.entries))
	for id := range e.Cache.entries {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]LoopReport, 0, len(ids))
	for _, id := range ids {
		c := e.Cache.entries[id]
		r := LoopReport{LoopID: id, Kind: c.Kind, Vectorizable: c.Vectorizable, Reason: c.Reason}
		if a := c.Analysis; a != nil {
			r.ElemDT = a.ElemDT.String()
			r.Lanes = a.Lanes()
			if a.plan != nil {
				for _, in := range a.plan.Listing {
					r.Listing = append(r.Listing, in.String())
				}
			}
			if a.Cond != nil {
				for _, p := range a.Cond.Paths {
					if p.plan != nil {
						for _, in := range p.plan.Listing {
							r.Listing = append(r.Listing, in.String())
						}
					}
				}
			}
		}
		out = append(out, r)
	}
	return out
}
