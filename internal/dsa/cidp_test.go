package dsa

import (
	"testing"
	"testing/quick"

	"repro/internal/armlite"
)

// TestCIDPPaperExample reproduces the worked example of Fig. 13
// (dissertation §4.4): loads at 0x100, 0x104 in iterations 2 and 3, a
// store at 0x108 in iteration 2, 10 total iterations. MGap = 4,
// MRead[last] = 0x120, and MWrite[2] = 0x108 falls inside the window,
// producing a cross-iteration dependency.
func TestCIDPPaperExample(t *testing.T) {
	load, err := NewMemPattern(0, false, armlite.Word, 4, 2, 3, 0x100, 0x104)
	if err != nil {
		t.Fatal(err)
	}
	if load.Stride != 4 {
		t.Fatalf("MGap = %d, want 4", load.Stride)
	}
	if got := load.AddrAt(10); got != 0x120 {
		t.Fatalf("MRead[last] = %#x, want 0x120", got)
	}
	store, err := NewMemPattern(1, true, armlite.Word, 4, 2, 3, 0x108, 0x10C)
	if err != nil {
		t.Fatal(err)
	}
	res := PredictCID([]MemPattern{load, store}, 2, 10)
	if !res.HasCID {
		t.Fatal("expected a cross-iteration dependency (paper Fig. 13)")
	}
}

// TestCIDPNoDependency: disjoint streams (v[i] = a[i] + b[i]).
func TestCIDPNoDependency(t *testing.T) {
	a, _ := NewMemPattern(0, false, armlite.Word, 4, 2, 3, 0x1000, 0x1004)
	b, _ := NewMemPattern(1, false, armlite.Word, 4, 2, 3, 0x2000, 0x2004)
	v, _ := NewMemPattern(2, true, armlite.Word, 4, 2, 3, 0x3000, 0x3004)
	res := PredictCID([]MemPattern{a, b, v}, 2, 400)
	if res.HasCID {
		t.Fatal("independent streams must be NCID")
	}
}

// TestCIDPInPlaceUpdate: v[i] = v[i] + 1 — same address read then
// written within one iteration is NOT a cross-iteration dependency.
func TestCIDPInPlaceUpdate(t *testing.T) {
	ld, _ := NewMemPattern(0, false, armlite.Word, 4, 2, 3, 0x1004, 0x1008)
	st, _ := NewMemPattern(1, true, armlite.Word, 4, 2, 3, 0x1004, 0x1008)
	res := PredictCID([]MemPattern{ld, st}, 2, 100)
	if res.HasCID {
		t.Fatal("in-place elementwise update must be vectorizable")
	}
}

// TestCIDPRecurrence: v[i] = v[i-1] + b[i] — a true loop-carried
// dependency at distance 1.
func TestCIDPRecurrence(t *testing.T) {
	// iteration 2 loads v[1]=0x1004, stores v[2]=0x1008.
	ld, _ := NewMemPattern(0, false, armlite.Word, 4, 2, 3, 0x1004, 0x1008)
	st, _ := NewMemPattern(1, true, armlite.Word, 4, 2, 3, 0x1008, 0x100C)
	res := PredictCID([]MemPattern{ld, st}, 2, 100)
	if !res.HasCID {
		t.Fatal("recurrence must be CID")
	}
	if res.Distance != 1 {
		t.Fatalf("distance = %d, want 1", res.Distance)
	}
}

// TestPartialVectorizationPaperExample reproduces Fig. 14: the store
// of iteration 2 is re-read at iteration 11, so windows of up to 9
// iterations are safe.
func TestPartialVectorizationPaperExample(t *testing.T) {
	// Load stride 4 from 0x100 at iter 2; store at 0x124 at iter 2.
	// Load addresses: iter i → 0x100 + 4(i-2); 0x124 reached at
	// i = 2 + 9 = 11.
	ld, _ := NewMemPattern(0, false, armlite.Word, 4, 2, 3, 0x100, 0x104)
	st, _ := NewMemPattern(1, true, armlite.Word, 4, 2, 3, 0x124, 0x128)
	res := PredictCID([]MemPattern{ld, st}, 2, 19)
	if !res.HasCID {
		t.Fatal("expected CID")
	}
	if res.ConflictIter != 11 {
		t.Fatalf("conflict iteration = %d, want 11", res.ConflictIter)
	}
	if res.Distance != 9 {
		t.Fatalf("dependency distance = %d, want 9", res.Distance)
	}
}

func TestNewMemPatternNonLinear(t *testing.T) {
	if _, err := NewMemPattern(0, false, armlite.Word, 4, 2, 5, 0x100, 0x105); err == nil {
		t.Fatal("5-byte delta over 3 iterations must be rejected")
	}
	if _, err := NewMemPattern(0, false, armlite.Word, 4, 3, 2, 0x100, 0x104); err == nil {
		t.Fatal("reversed iteration order must be rejected")
	}
}

func TestMemPatternRange(t *testing.T) {
	p, _ := NewMemPattern(0, false, armlite.Word, 4, 2, 3, 0x100, 0x104)
	lo, hi := p.Range(2, 5)
	if lo != 0x100 || hi != 0x10F {
		t.Fatalf("range = [%#x,%#x]", lo, hi)
	}
	// Negative stride.
	q, _ := NewMemPattern(0, false, armlite.Word, 4, 2, 3, 0x104, 0x100)
	lo, hi = q.Range(2, 3)
	if lo != 0x100 || hi != 0x107 {
		t.Fatalf("negative-stride range = [%#x,%#x]", lo, hi)
	}
}

func TestStoresDisjointFromLoads(t *testing.T) {
	ld, _ := NewMemPattern(0, false, armlite.Word, 4, 2, 3, 0x1000, 0x1004)
	stFar, _ := NewMemPattern(1, true, armlite.Word, 4, 2, 3, 0x2000, 0x2004)
	stSame, _ := NewMemPattern(1, true, armlite.Word, 4, 2, 3, 0x1000, 0x1004)
	if !StoresDisjointFromLoads([]MemPattern{ld, stFar}, 2, 100) {
		t.Error("far store must be disjoint")
	}
	if StoresDisjointFromLoads([]MemPattern{ld, stSame}, 2, 100) {
		t.Error("in-place store must not be disjoint")
	}
}

// Property: CIDP agrees with a brute-force byte-level simulation of
// the access streams for random linear patterns.
func TestQuickCIDPMatchesBruteForce(t *testing.T) {
	f := func(loadBase, storeBase uint16, strideSel, lastSel uint8) bool {
		strides := []int64{1, 2, 4, 8}
		stride := strides[int(strideSel)%len(strides)]
		last := 4 + int(lastSel)%40
		size := int(stride)
		lb := 0x1000 + uint32(loadBase)%256*16
		sb := 0x1000 + uint32(storeBase)%256*16
		ld, err1 := NewMemPattern(0, false, armlite.Word, size, 2, 3, lb, lb+uint32(stride))
		st, err2 := NewMemPattern(1, true, armlite.Word, size, 2, 3, sb, sb+uint32(stride))
		if err1 != nil || err2 != nil {
			return false
		}
		got := PredictCID([]MemPattern{ld, st}, 2, last)

		// Brute force: does any load at iteration j read a byte some
		// earlier iteration's store wrote?
		want := false
		wantIter := 0
	outer:
		for j := 3; j <= last; j++ {
			jl := ld.AddrAt(j)
			for i := 2; i < j; i++ {
				is := st.AddrAt(i)
				if rangesOverlap(is, is+uint32(size)-1, jl, jl+uint32(size)-1) {
					want = true
					wantIter = j
					break outer
				}
			}
		}
		if got.HasCID != want {
			return false
		}
		if want && got.ConflictIter != wantIter {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
