// Package dsa implements the Dynamic SIMD Assembler — the
// dissertation's contribution: a hardware engine coupled to the scalar
// core that watches the retired-instruction stream, detects
// vectorizable loops at run time through a six-state machine
// (Loop Detection → Data Collection → Dependency Analysis → Store
// ID/Execution, plus Mapping and Speculative Execution for conditional
// and sentinel loops), builds NEON SIMD instructions for them, and
// switches execution onto the vector engine.
//
// The package is split along the paper's structure:
//
//	config.go   — configuration, latency model, hardware caches
//	track.go    — per-loop state machines and iteration collection
//	cidp.go     — cross-iteration dependency prediction (Eq. 4.1–4.5)
//	extract.go  — vectorizable-operation extraction (Fig. 25 analysis)
//	plan.go     — SIMD instruction generation and leftover strategies
//	engine.go   — the observer: drives the state machines
//	system.go   — couples a cpu.Machine with the engine; performs
//	              takeovers, conditional mapping/speculation and
//	              sentinel speculative execution
package dsa

import (
	"repro/internal/armlite"
	"repro/internal/policy"
)

// LeftoverPolicy selects how iterations that do not fill a full vector
// are executed (dissertation §4.8).
type LeftoverPolicy int

// Leftover policies.
const (
	// LeftoverAuto uses Overlapping when legal (outputs disjoint from
	// inputs, at least one full vector) and Single Elements otherwise.
	LeftoverAuto LeftoverPolicy = iota
	// LeftoverSingle processes remaining elements one lane at a time.
	LeftoverSingle
	// LeftoverOverlap re-processes trailing elements so the final
	// vector operation is full-width.
	LeftoverOverlap
	// LeftoverLarger rounds the range up to the next vector multiple,
	// touching (pre-padded) memory past the logical end.
	LeftoverLarger
	// LeftoverScalar leaves the remainder to the ARM core.
	LeftoverScalar
)

func (p LeftoverPolicy) String() string {
	switch p {
	case LeftoverSingle:
		return "single-elements"
	case LeftoverOverlap:
		return "overlapping"
	case LeftoverLarger:
		return "larger-arrays"
	case LeftoverScalar:
		return "scalar"
	default:
		return "auto"
	}
}

// Latencies holds the DSA timing constants in ticks (10 = one core
// cycle), covering every latency the methodology chapter lists for the
// Analysis and Execution stages.
type Latencies struct {
	// Analysis-side (tracked separately; the DSA analyzes in parallel
	// with the core, so these do not extend wall-clock time — they
	// feed the "DSA Latency" tables).
	ObservePerInstr   int64 // tap one retired instruction
	DSACacheAccess    int64
	VCacheAccess      int64
	ArrayMapAccess    int64
	CIDPCompare       int64
	PartialReanalysis int64 // extra pass per partial-vectorization window

	// Execution-side (added to wall-clock time at takeover).
	PipelineFlush   int64 // drain the O3 pipeline before SIMD issue
	PlanSetup       int64 // route generated statements to the NEON queue
	LeftoverElement int64 // per single-element lane insert/extract
}

// DefaultLatencies returns the model used by all experiments.
func DefaultLatencies() Latencies {
	return Latencies{
		ObservePerInstr:   1,
		DSACacheAccess:    20, // 2 cycles
		VCacheAccess:      10, // 1 cycle
		ArrayMapAccess:    10,
		CIDPCompare:       10,
		PartialReanalysis: 40,
		PipelineFlush:     100, // 10 cycles: drain in-flight instructions
		PlanSetup:         40,
		LeftoverElement:   10,
	}
}

// Config parameterizes the DSA hardware, defaulting to the
// dissertation's setup: 8 KB DSA cache, 1 KB verification cache, four
// 128-bit array maps.
type Config struct {
	DSACacheBytes int
	VCacheBytes   int
	ArrayMaps     int
	Leftover      LeftoverPolicy
	Latencies     Latencies

	// Feature switches (the "Original DSA" of Article 1 vs the
	// "Extended DSA" of Articles 2/3; also used by ablations).
	EnableConditional  bool
	EnableSentinel     bool
	EnableDynamicRange bool
	EnablePartial      bool
	// EnableGuardVec selects the full-speculation conditional mode
	// (guard compare evaluated as a SIMD mask). When false the DSA
	// uses only the per-iteration mapped mode of Fig. 21/22 — the
	// conservative reading of the paper; see DESIGN.md.
	EnableGuardVec bool

	// TakeoverStepBudget bounds the scalar steps (and fetch skips) a
	// single takeover's in-loop driver may spend inside the sentinel
	// and conditional execution loops before the takeover is rolled
	// back and the loop re-run scalar (0 = DefaultTakeoverStepBudget).
	// A corrupted action-PC map or a wedged stop slice hits this
	// budget instead of burning the machine's global MaxSteps.
	TakeoverStepBudget uint64

	// EnablePolicy turns on the adaptive takeover policy (the
	// dsa-adaptive mode): a per-loop cost/benefit bandit that suspends
	// analysis and takeovers for loops that repeatedly lose against
	// their own measured scalar baseline. See internal/policy.
	EnablePolicy bool
	// Policy tunes the adaptive controller (zero value = defaults).
	Policy policy.Params

	// Verify enables the differential oracle: every committed takeover
	// is shadowed by a scalar replay and diffed (see VerifyConfig).
	Verify VerifyConfig

	// Fault configures the fault-injection harness (FaultNone in
	// production; see faultinject.go).
	Fault FaultConfig
}

// DefaultTakeoverStepBudget is the per-takeover scalar step budget
// used when Config.TakeoverStepBudget is zero — far above any real
// loop's residual scalar work, far below the global MaxSteps guard.
const DefaultTakeoverStepBudget = 1 << 22

// DefaultConfig returns the Extended DSA (all mechanisms on).
func DefaultConfig() Config {
	return Config{
		DSACacheBytes:      8 << 10,
		VCacheBytes:        1 << 10,
		ArrayMaps:          4,
		Leftover:           LeftoverAuto,
		Latencies:          DefaultLatencies(),
		EnableConditional:  true,
		EnableSentinel:     true,
		EnableDynamicRange: true,
		EnablePartial:      true,
		EnableGuardVec:     true,
	}
}

// AdaptiveConfig returns the Extended DSA with the adaptive takeover
// policy on: every mechanism of DefaultConfig, plus the per-loop
// cost/benefit bandit that suspends losing loops.
func AdaptiveConfig() Config {
	c := DefaultConfig()
	c.EnablePolicy = true
	return c
}

// OriginalConfig returns the Article 1 DSA: count, function and
// inner/outer loops only.
func OriginalConfig() Config {
	c := DefaultConfig()
	c.EnableConditional = false
	c.EnableSentinel = false
	c.EnableDynamicRange = false
	c.EnablePartial = false
	return c
}

// dsaCacheEntrySize is the modelled size of one DSA cache entry in
// bytes: loop ID, size, mechanism descriptor and the generated SIMD
// statements.
const dsaCacheEntrySize = 64

// vcacheEntrySize is the modelled size of one verification-cache
// entry: one data-memory address plus tag bits.
const vcacheEntrySize = 8

// Stats aggregates DSA activity for the latency tables and the energy
// model.
type Stats struct {
	// Analysis accounting.
	AnalysisTicks    int64 // time spent in probing-mode analysis
	StateTransitions uint64
	Observations     uint64
	DSACacheAccesses uint64
	DSACacheHits     uint64
	VCacheAccesses   uint64
	VCacheOverflows  uint64
	ArrayMapAccesses uint64
	CIDPCompares     uint64

	// Execution accounting.
	Takeovers        uint64 // times execution switched to the NEON engine
	VectorizedIters  uint64 // loop iterations executed as SIMD lanes
	LeftoverElements uint64
	OverheadTicks    int64 // wall-clock cost of switching (flush+setup)

	// Classification census (Fig. 7 of Article 3).
	LoopsDetected   uint64
	ByKind          map[LoopKind]uint64
	RejectedReasons map[string]uint64

	// Robustness accounting (guarded takeovers).
	Fallbacks         uint64            // takeovers unwound and re-run scalar
	FallbackReasons   map[string]uint64 // fallback cause → count
	VerifiedTakeovers uint64            // takeovers cross-checked by the oracle
	Divergences       uint64            // oracle mismatches detected
	DroppedRequests   uint64            // takeover offers discarded mid-verification

	// Adaptive-policy accounting (zero outside dsa-adaptive mode).
	PolicyKept      uint64 // takeovers whose measured outcome was a win
	PolicySuspended uint64 // transitions into suspension (incl. failed trials)
	PolicyTrialed   uint64 // trial entries granted to suspended loops
}

func newStats() *Stats {
	return &Stats{
		ByKind:          make(map[LoopKind]uint64),
		RejectedReasons: make(map[string]uint64),
		FallbackReasons: make(map[string]uint64),
	}
}

// DSACache models the 8 KB loop cache: loop ID (start PC) → verified
// loop information, LRU replacement.
type DSACache struct {
	capacity int // entries
	entries  map[int]*CachedLoop
	order    []int // LRU order, most recent first
}

// CachedLoop is one DSA cache entry — the information the paper stores
// for a verified loop (§4.6.4.1): loop ID, size, condition IDs, plus
// the analysis artifacts needed to regenerate SIMD statements.
type CachedLoop struct {
	LoopID       int
	Kind         LoopKind
	Vectorizable bool
	Reason       string // rejection reason when !Vectorizable
	Analysis     *Analysis
	// SentinelRange is the speculative range learned from the last
	// execution (sentinel loops only).
	SentinelRange int
	// LimitValue is the trip-limit register value the analysis was
	// made under; a differing value on re-entry marks the loop as a
	// dynamic-range (type A) loop and forces re-analysis.
	LimitValue uint32
	LimitIsImm bool

	// memo caches the last PredictCID verdict for steady-state
	// re-entries (see memo.go). Transient: snapshots do not persist it
	// and a restored entry simply recomputes on its first hit.
	memo cidMemo
}

// NewDSACache builds the cache from a byte budget.
func NewDSACache(bytes int) *DSACache {
	n := bytes / dsaCacheEntrySize
	if n < 1 {
		n = 1
	}
	return &DSACache{capacity: n, entries: make(map[int]*CachedLoop)}
}

// Lookup returns the entry for loopID and refreshes its LRU position.
func (c *DSACache) Lookup(loopID int) (*CachedLoop, bool) {
	e, ok := c.entries[loopID]
	if ok {
		c.touch(loopID)
	}
	return e, ok
}

// Insert stores an entry, evicting the LRU victim if full.
func (c *DSACache) Insert(e *CachedLoop) {
	if _, exists := c.entries[e.LoopID]; !exists && len(c.entries) >= c.capacity {
		victim := c.order[len(c.order)-1]
		c.order = c.order[:len(c.order)-1]
		delete(c.entries, victim)
	}
	c.entries[e.LoopID] = e
	c.touch(e.LoopID)
}

// Len returns the number of cached loops.
func (c *DSACache) Len() int { return len(c.entries) }

func (c *DSACache) touch(loopID int) {
	for i, id := range c.order {
		if id == loopID {
			copy(c.order[1:i+1], c.order[:i])
			c.order[0] = loopID
			return
		}
	}
	c.order = append(c.order, 0)
	copy(c.order[1:], c.order)
	c.order[0] = loopID
}

// VCache models the 1 KB verification cache holding the data-memory
// addresses of one iteration under analysis.
type VCache struct {
	capacity int
	addrs    []vcEntry
}

type vcEntry struct {
	pc    int // memory instruction address
	addr  uint32
	store bool
	size  int
	dt    armlite.DataType
}

// NewVCache builds the cache from a byte budget.
func NewVCache(bytes int) *VCache {
	n := bytes / vcacheEntrySize
	if n < 1 {
		n = 1
	}
	return &VCache{capacity: n}
}

// Reset clears the cache for a new iteration.
func (v *VCache) Reset() { v.addrs = v.addrs[:0] }

// Record stores one access; it reports false on capacity overflow
// (the loop touches more addresses per iteration than the hardware
// can verify — such loops are classified non-vectorizable).
func (v *VCache) Record(pc int, addr uint32, size int, store bool, dt armlite.DataType) bool {
	if len(v.addrs) >= v.capacity {
		return false
	}
	v.addrs = append(v.addrs, vcEntry{pc: pc, addr: addr, store: store, size: size, dt: dt})
	return true
}

// Entries returns the recorded accesses.
func (v *VCache) Entries() []vcEntry { return v.addrs }

// Capacity returns the entry capacity.
func (v *VCache) Capacity() int { return v.capacity }
