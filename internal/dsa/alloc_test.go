package dsa

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
)

// TestDSAStepZeroAlloc is the allocation-regression gate for the DSA
// watch path, mirroring the interpreter's TestStepZeroAlloc: once the
// loop cache is warm, a steady-state pass over a vectorizable loop —
// detection tap, cache hit, CID re-validation, checkpointed takeover,
// batched NEON chunks, single-element leftovers, commit — must not
// allocate. Every structure on that path (tracks, requests, journals,
// checkpoints, page buffers, element scratch, CID memo) is pooled; a
// stray allocation per loop entry would drag GC work into exactly the
// per-entry cost the paper claims is negligible.
func TestDSAStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	// An outer loop re-entering the Fig. 25 vector-sum loop: the inner
	// loop is detected once, cached, and every later entry is the
	// steady-state watch path. n=37 is not a lane multiple, so each
	// takeover also runs the single-element leftover path. The program
	// is idempotent (v is fully rewritten per pass), so re-running it
	// from PC 0 measures the same work every time.
	prog, err := asm.Parse("dsa-hot", `
        mov   r8, #0          ; outer counter
outer:  mov   r5, #0x1000     ; &a
        mov   r10, #0x2000    ; &b
        mov   r2, #0x3000     ; &v
        mov   r0, #0          ; i
        mov   r4, #37         ; n (leftover remainder of 1 at 4 lanes)
loop:   ldr   r3, [r5], #4
        ldr   r1, [r10], #4
        add   r3, r3, r1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        add   r8, r8, #1
        cmp   r8, #8
        blt   outer
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(prog, cpu.DefaultConfig(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seedVectorSum(s.M)

	rerun := func() {
		s.M.Halted = false
		s.M.PC = 0
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: populate the DSA cache, CID memo, and every pool (track,
	// request, checkpoint, journal pages, executor scratch).
	for i := 0; i < 5; i++ {
		rerun()
	}
	if s.Stats().Takeovers == 0 {
		t.Fatal("warmup produced no takeovers; the test is not exercising the watch path")
	}
	before := s.Stats().Takeovers
	avg := testing.AllocsPerRun(20, rerun)
	if s.Stats().Takeovers == before {
		t.Fatal("measured runs produced no takeovers")
	}
	if avg != 0 {
		t.Fatalf("steady-state DSA pass allocates: %v allocs per run, want 0", avg)
	}
}

// TestDSACacheHitSkipsDetection pins the memoized watch path's counter
// behavior: once a loop's verdict is cached, every later entry is a
// DSA-cache hit that re-raises the takeover WITHOUT re-running the
// detection state machine — no verification-cache traffic, no new
// rejections — while the CIDP comparator charge (the energy model's
// honest cost: the hardware still runs its comparators even when the
// simulator replays a memoized verdict) keeps accruing per entry.
func TestDSACacheHitSkipsDetection(t *testing.T) {
	prog := asm.MustAssemble("vsum-steady", vectorSumSrc)
	s, err := NewSystem(prog, cpu.DefaultConfig(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seedVectorSum(s.M)
	rerun := func() {
		s.M.Halted = false
		s.M.PC = 0
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Stats embeds maps, so a struct copy would alias live state; snap
	// reduces everything compared below to scalars at snapshot time.
	type counters struct {
		hits, takeovers, vcache, rejections, compares uint64
		ticks                                         int64
	}
	snap := func() counters {
		st := s.Stats()
		var rej uint64
		for _, c := range st.RejectedReasons {
			rej += c
		}
		return counters{
			hits:       st.DSACacheHits,
			takeovers:  st.Takeovers,
			vcache:     st.VCacheAccesses,
			rejections: rej,
			compares:   st.CIDPCompares,
			ticks:      st.AnalysisTicks,
		}
	}
	rerun() // cold: full detection, analysis, verification
	warm := snap()
	if warm.takeovers == 0 {
		t.Fatal("cold run produced no takeover")
	}
	rerun() // first steady-state pass
	a := snap()
	rerun() // second steady-state pass
	b := snap()

	if a.hits <= warm.hits || b.hits <= a.hits {
		t.Errorf("cache hits must grow per entry: %d → %d → %d", warm.hits, a.hits, b.hits)
	}
	if a.takeovers <= warm.takeovers || b.takeovers <= a.takeovers {
		t.Errorf("takeovers must grow per entry: %d → %d → %d",
			warm.takeovers, a.takeovers, b.takeovers)
	}
	// Detection machinery is fully skipped: the verification cache is
	// only touched by the data-collection stage of a tracked loop.
	if a.vcache != warm.vcache || b.vcache != a.vcache {
		t.Errorf("steady-state entries must not touch the verification cache: %d → %d → %d",
			warm.vcache, a.vcache, b.vcache)
	}
	if a.rejections != warm.rejections || b.rejections != a.rejections {
		t.Errorf("steady-state entries must not produce rejections: %d → %d → %d",
			warm.rejections, a.rejections, b.rejections)
	}
	// The comparator charge still accrues per entry (memo replays the
	// verdict, not the energy bill), and at exactly the steady-state
	// period: both warm passes charge the same deltas everywhere.
	if a.compares <= warm.compares {
		t.Errorf("CIDP compares must keep accruing on cache hits: %d → %d",
			warm.compares, a.compares)
	}
	if d1, d2 := a.compares-warm.compares, b.compares-a.compares; d1 != d2 {
		t.Errorf("steady-state CIDP charge not periodic: +%d then +%d", d1, d2)
	}
	if d1, d2 := a.ticks-warm.ticks, b.ticks-a.ticks; d1 != d2 {
		t.Errorf("steady-state analysis ticks not periodic: +%d then +%d", d1, d2)
	}
}
