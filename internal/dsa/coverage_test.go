package dsa

import (
	"testing"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
)

// TestPairConflictClosedForm exercises the analytical long-loop path
// of the dependency predictor (>4096 iterations) against the windowed
// scan on matching short cases.
func TestPairConflictClosedForm(t *testing.T) {
	// Distance-100 RAW over 10000 iterations.
	ld, _ := NewMemPattern(0, false, armlite.Word, 4, 2, 3, 0x1000, 0x1004)
	st, _ := NewMemPattern(1, true, armlite.Word, 4, 2, 3, 0x1000+400, 0x1404+0)
	st.Stride = 4
	res := PredictCID([]MemPattern{ld, st}, 2, 10000)
	if !res.HasCID {
		t.Fatal("long-range RAW must be detected")
	}
	if res.Distance != 100 {
		t.Errorf("distance = %d, want 100", res.Distance)
	}
	// Disjoint streams over a long range: NCID through the fast path.
	far, _ := NewMemPattern(1, true, armlite.Word, 4, 2, 3, 0x900000, 0x900004)
	res = PredictCID([]MemPattern{ld, far}, 2, 10000)
	if res.HasCID {
		t.Error("disjoint long-range streams must be NCID")
	}
	// Invariant store aliasing the load stream.
	inv, _ := NewMemPattern(1, true, armlite.Word, 4, 2, 3, 0x1800, 0x1800)
	res = PredictCID([]MemPattern{ld, inv}, 2, 10000)
	if !res.HasCID {
		t.Error("stride-0 store inside the load stream must be CID")
	}
	// Unequal strides with overlapping ranges: conservative CID.
	st2, _ := NewMemPattern(1, true, armlite.Word, 4, 2, 3, 0x1100, 0x1108)
	res = PredictCID([]MemPattern{ld, st2}, 2, 10000)
	if !res.HasCID {
		t.Error("unequal overlapping strides must be conservatively CID")
	}
}

// TestEvalMemOperandForms covers every addressing form the cache-hit
// rebase can see.
func TestEvalMemOperandForms(t *testing.T) {
	var r [armlite.NumRegs]uint32
	r[armlite.R1] = 0x1000
	r[armlite.R2] = 4

	post := armlite.Mem{Base: armlite.R1, Index: armlite.NoReg, Offset: 4, Kind: armlite.AddrPostIndex}
	if a, ok := evalMemOperand(&post, &r); !ok || a != 0x1000 {
		t.Errorf("post-index = %#x,%v", a, ok)
	}
	rof := armlite.Mem{Base: armlite.R1, Index: armlite.R2, Shift: 2, Kind: armlite.AddrRegOffset}
	if a, ok := evalMemOperand(&rof, &r); !ok || a != 0x1010 {
		t.Errorf("reg-offset = %#x,%v", a, ok)
	}
	ofs := armlite.Mem{Base: armlite.R1, Index: armlite.NoReg, Offset: 8, Kind: armlite.AddrOffset}
	if a, ok := evalMemOperand(&ofs, &r); !ok || a != 0x1008 {
		t.Errorf("offset = %#x,%v", a, ok)
	}
	wb := armlite.Mem{Base: armlite.R1, Index: armlite.NoReg, Kind: armlite.AddrOffset, Writeback: true}
	if a, ok := evalMemOperand(&wb, &r); !ok || a != 0x1000 {
		t.Errorf("writeback = %#x,%v", a, ok)
	}
	bad := armlite.Mem{Base: armlite.NoReg}
	if _, ok := evalMemOperand(&bad, &r); ok {
		t.Error("invalid base must fail")
	}
	noIdx := armlite.Mem{Base: armlite.R1, Index: armlite.NoReg, Kind: armlite.AddrRegOffset}
	if _, ok := evalMemOperand(&noIdx, &r); ok {
		t.Error("missing index must fail")
	}
}

// TestStageAndKindStrings: diagnostic strings for every enum value.
func TestStageAndKindStrings(t *testing.T) {
	for k := KindUnknown; k <= KindNonVectorizable; k++ {
		if k.String() == "" {
			t.Errorf("kind %d prints empty", k)
		}
	}
	for _, st := range []stage{stDetected, stCollected, stMapping, stDecided} {
		if st.String() == "" {
			t.Errorf("stage %d prints empty", st)
		}
	}
	for _, p := range []LeftoverPolicy{LeftoverAuto, LeftoverSingle, LeftoverOverlap, LeftoverLarger, LeftoverScalar} {
		if p.String() == "" {
			t.Errorf("policy %d prints empty", p)
		}
	}
}

// TestRemainingFlippedAll covers every flipped compare direction.
func TestRemainingFlippedAll(t *testing.T) {
	// cmp limit, counter — continue while cond(limit, counter).
	cases := []struct {
		cond  armlite.Cond
		delta int64
		c, l  uint32
		want  int
	}{
		{armlite.CondGT, 1, 0, 10, 10},  // while 10 > c
		{armlite.CondGE, 1, 0, 10, 11},  // while 10 ≥ c
		{armlite.CondLT, -1, 10, 0, 10}, // while 0 < c (counting down)
		{armlite.CondLE, -1, 10, 0, 11}, // while 0 ≤ c
		{armlite.CondHI, 1, 0, 10, 10},  // unsigned while 10 > c
		{armlite.CondHS, 1, 0, 10, 11},  // unsigned while 10 ≥ c
		{armlite.CondNE, 1, 0, 10, 10},  // while 10 ≠ c
	}
	for _, c := range cases {
		ti := TripInfo{CounterReg: armlite.R0, Delta: c.delta, Cond: c.cond,
			CounterIsRn: false,
			Unsigned:    c.cond == armlite.CondHI || c.cond == armlite.CondHS}
		got, ok := ti.Remaining(c.c, c.l)
		if !ok || got != c.want {
			t.Errorf("flipped %v d=%d: Remaining(%d,%d) = %d,%v want %d",
				c.cond, c.delta, c.c, c.l, got, ok, c.want)
		}
	}
}

// TestSentinelInsideOuterLoop: a sentinel takeover inside a tracked
// outer loop must mark the outer nested (NoteVectorized path).
func TestSentinelInsideOuterLoop(t *testing.T) {
	src := `
        mov   r8, #0
outer:  mov   r5, #0x1000
        mov   r2, #0x2000
inner:  ldrb  r3, [r5], #1
        cmp   r3, #0
        beq   iend
        add   r4, r3, #1
        strb  r4, [r2], #1
        b     inner
iend:   add   r8, r8, #1
        cmp   r8, #3
        blt   outer
        halt
`
	prog := asm.MustAssemble("sentnest", src)
	setup := seedSentinel(60)
	ref := runScalar(t, prog, setup)
	s := runDSA(t, prog, DefaultConfig(), setup)
	wantB, _ := ref.Mem.ReadBytes(0x2000, 61)
	gotB, _ := s.M.Mem.ReadBytes(0x2000, 61)
	for i := range wantB {
		if wantB[i] != gotB[i] {
			t.Fatalf("byte %d = %d, want %d", i, gotB[i], wantB[i])
		}
	}
	st := s.Stats()
	if st.ByKind[KindNested] != 1 || st.ByKind[KindSentinel] != 1 {
		t.Errorf("census = %v", st.ByKind)
	}
	if st.Takeovers != 3 {
		t.Errorf("takeovers = %d, want 3 (one per outer entry)", st.Takeovers)
	}
}

// TestVCacheAccessors: entry/capacity plumbing.
func TestVCacheAccessors(t *testing.T) {
	v := NewVCache(64)
	if v.Capacity() != 8 {
		t.Errorf("capacity = %d", v.Capacity())
	}
	v.Record(1, 0x10, 4, true, armlite.Word)
	if len(v.Entries()) != 1 || !v.Entries()[0].store {
		t.Errorf("entries = %+v", v.Entries())
	}
}

// TestRejectReasonError: the rejection error type formats its reason.
func TestRejectReasonError(t *testing.T) {
	err := rejectf("some-%s", "reason")
	if err.Error() != "dsa: some-reason" {
		t.Errorf("Error() = %q", err.Error())
	}
	if reasonOf(err) != "some-reason" {
		t.Errorf("reasonOf = %q", reasonOf(err))
	}
	if got := reasonOf(cpuErr()); got == "" {
		t.Error("foreign errors must still yield a reason string")
	}
}

func cpuErr() error {
	_, err := cpu.New(&armlite.Program{Name: "bad", Code: []armlite.Instr{armlite.NewInstr(armlite.OpAdd)}}, cpu.DefaultConfig())
	return err
}
