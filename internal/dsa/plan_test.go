package dsa

import (
	"testing"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
)

// mkPattern builds a contiguous word pattern starting at base.
func mkPattern(pc int, store bool, base uint32) MemPattern {
	p, err := NewMemPattern(pc, store, armlite.Word, 4, 2, 3, base, base+4)
	if err != nil {
		panic(err)
	}
	return p
}

// chainDAG builds: load → (+imm)×n → store, returning the DAG.
func chainDAG(n int) (*PayloadDAG, []MemPattern) {
	patterns := []MemPattern{mkPattern(0, false, 0x1000), mkPattern(1, true, 0x2000)}
	load := &Node{Kind: NodeLoad, Pattern: 0}
	nodes := []*Node{load}
	cur := load
	for i := 0; i < n; i++ {
		imm := &Node{Kind: NodeImm, Imm: int32(i + 1)}
		expr := &Node{Kind: NodeExpr, Op: armlite.OpAdd, A: cur, B: imm}
		nodes = append(nodes, imm, expr)
		cur = expr
	}
	return &PayloadDAG{
		Nodes:  nodes,
		Stores: []StoreSlot{{Pattern: 1, Value: cur}},
	}, patterns
}

// TestBuildPlanSetupChunkDisjoint is the regression test for the
// register-allocation bug where window-lived broadcast registers were
// recycled by chunk-local values.
func TestBuildPlanSetupChunkDisjoint(t *testing.T) {
	dag, patterns := chainDAG(6)
	plan, err := BuildPlan(dag, patterns, armlite.Word)
	if err != nil {
		t.Fatal(err)
	}
	setupRegs := map[armlite.VReg]bool{}
	for _, n := range dag.Nodes {
		if n.Kind == NodeImm || n.Kind == NodeConstReg || n.Kind == NodeConstMem {
			setupRegs[n.vreg] = true
		}
	}
	for _, n := range dag.Nodes {
		if n.Kind == NodeExpr || n.Kind == NodeLoad {
			if setupRegs[n.vreg] {
				t.Fatalf("chunk node reuses setup register %v", n.vreg)
			}
		}
	}
	_ = plan
}

// TestBuildPlanRegisterReuse: a long dependency chain must fit in the
// register file through reuse (each expr kills its operand).
func TestBuildPlanRegisterReuse(t *testing.T) {
	// 12 chained ops + 12 distinct imms: 25 nodes — without reuse this
	// exceeds 16 registers; with reuse the chain needs ~2 plus one per
	// live imm.
	dag, patterns := chainDAG(11)
	if len(dag.Nodes) <= armlite.NumVRegs {
		t.Fatalf("test needs >16 nodes, has %d", len(dag.Nodes))
	}
	if _, err := BuildPlan(dag, patterns, armlite.Word); err != nil {
		t.Fatalf("reuse should make this fit: %v", err)
	}
}

// TestBuildPlanPressure: too many simultaneously-live setup values
// exhaust the file.
func TestBuildPlanPressure(t *testing.T) {
	patterns := []MemPattern{mkPattern(0, true, 0x2000)}
	var nodes []*Node
	var cur *Node
	// 17 distinct immediates summed pairwise keep all imms live.
	for i := 0; i < 17; i++ {
		imm := &Node{Kind: NodeImm, Imm: int32(i)}
		nodes = append(nodes, imm)
		if cur == nil {
			cur = imm
		} else {
			e := &Node{Kind: NodeExpr, Op: armlite.OpAdd, A: cur, B: imm}
			nodes = append(nodes, e)
			cur = e
		}
	}
	dag := &PayloadDAG{Nodes: nodes, Stores: []StoreSlot{{Pattern: 0, Value: cur}}}
	if _, err := BuildPlan(dag, patterns, armlite.Word); err == nil {
		t.Fatal("17 live broadcasts must exceed the register file")
	}
}

// TestBuildPlanAtBase: allocation respects the base offset.
func TestBuildPlanAtBase(t *testing.T) {
	dag, patterns := chainDAG(1)
	if _, err := BuildPlanAt(dag, patterns, armlite.Word, 10); err != nil {
		t.Fatal(err)
	}
	for _, n := range dag.Nodes {
		if n.vreg < 10 {
			t.Fatalf("node allocated below base: %v", n.vreg)
		}
	}
}

// TestBuildPlanPinned: pinned nodes keep their registers even when
// otherwise dead.
func TestBuildPlanPinned(t *testing.T) {
	patterns := []MemPattern{mkPattern(0, false, 0x1000), mkPattern(1, true, 0x2000)}
	load := &Node{Kind: NodeLoad, Pattern: 0}
	e1 := &Node{Kind: NodeExpr, Op: armlite.OpAdd, A: load, B: load}
	e2 := &Node{Kind: NodeExpr, Op: armlite.OpAdd, A: e1, B: e1}
	dag := &PayloadDAG{Nodes: []*Node{load, e1, e2}, Stores: []StoreSlot{{Pattern: 1, Value: e2}}}
	if _, err := BuildPlanAt(dag, patterns, armlite.Word, 0, load); err != nil {
		t.Fatal(err)
	}
	// With load pinned, e1 and e2 may not take its register.
	if e1.vreg == load.vreg || e2.vreg == load.vreg {
		t.Fatalf("pinned register recycled: load=%v e1=%v e2=%v", load.vreg, e1.vreg, e2.vreg)
	}
}

// TestPlanListingMatchesChunk: the listing contains exactly the chunk's
// loads/ops/stores plus the setup dups.
func TestPlanListingMatchesChunk(t *testing.T) {
	dag, patterns := chainDAG(2)
	plan, err := BuildPlan(dag, patterns, armlite.Word)
	if err != nil {
		t.Fatal(err)
	}
	var loads, stores, ops, dups int
	for _, in := range plan.Listing {
		switch in.Op {
		case armlite.OpVld1:
			loads++
		case armlite.OpVst1:
			stores++
		case armlite.OpVdup:
			dups++
		default:
			ops++
		}
	}
	if loads != 1 || stores != 1 || ops != 2 || dups != 2 {
		t.Errorf("listing: %d loads %d stores %d ops %d dups\n%v",
			loads, stores, ops, dups, plan.Listing)
	}
}

// execEnv builds an executor over a trivial halted machine.
func execEnv(t *testing.T) *Executor {
	t.Helper()
	prog := asm.MustAssemble("x", "halt")
	m := cpu.MustNew(prog, cpu.DefaultConfig())
	return NewExecutor(m, DefaultLatencies(), newStats())
}

// TestRunWindowCounts: RunWindow returns the executed iteration count
// per leftover policy.
func TestRunWindowCounts(t *testing.T) {
	dag, patterns := chainDAG(1)
	plan, err := BuildPlan(dag, patterns, armlite.Word)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		policy LeftoverPolicy
		first  int
		last   int
		want   int
	}{
		{LeftoverSingle, 2, 22, 21},
		{LeftoverOverlap, 2, 22, 21},
		{LeftoverScalar, 2, 22, 20}, // 5 chunks of 4, remainder left scalar
		{LeftoverSingle, 2, 9, 8},
		{LeftoverScalar, 2, 4, 0}, // below one chunk
	}
	for _, c := range cases {
		e := execEnv(t)
		e.Begin(patterns)
		got, err := e.RunWindow(plan, c.first, c.last, c.policy, true, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%v window [%d,%d]: executed %d, want %d", c.policy, c.first, c.last, got, c.want)
		}
	}
}

// TestSpecBufferCommitFiltering: only accepted entries reach memory,
// in order.
func TestSpecBufferCommitFiltering(t *testing.T) {
	e := execEnv(t)
	buf := &SpecBuffer{}
	for i := 0; i < 8; i++ {
		buf.Add(SpecEntry{Addr: uint32(0x100 + 4*i), Size: 4, Value: uint32(i + 1), Iter: i, Tag: i % 2})
	}
	if err := buf.Commit(e, func(iter, tag int) bool { return tag == 0 && iter < 6 }); err != nil {
		t.Fatal(err)
	}
	want := []int32{1, 0, 3, 0, 5, 0, 0, 0}
	got, _ := e.M.Mem.ReadWords(0x100, 8)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("word %d = %d, want %d", i, got[i], want[i])
		}
	}
	if len(buf.Entries) != 0 {
		t.Error("commit must clear the buffer")
	}
}

// TestSpecBufferGroupedCost: contiguous committed lanes retire as
// vector stores, not per-lane element stores.
func TestSpecBufferGroupedCost(t *testing.T) {
	e := execEnv(t)
	buf := &SpecBuffer{}
	for i := 0; i < 16; i++ {
		buf.Add(SpecEntry{Addr: uint32(0x200 + i), Size: 1, Value: 7, Iter: i})
	}
	before := e.M.Counts.VecStores
	if err := buf.Commit(e, func(int, int) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if got := e.M.Counts.VecStores - before; got != 1 {
		t.Errorf("16 contiguous bytes committed as %d stores, want 1", got)
	}
}

// TestEvalElement: scalar DAG evaluation matches the lane math.
func TestEvalElement(t *testing.T) {
	e := execEnv(t)
	patterns := []MemPattern{mkPattern(0, false, 0x1000)}
	e.SetPatterns(patterns)
	e.M.Mem.WriteWords(0x1000, []int32{10, 20, 30, 40})
	load := &Node{Kind: NodeLoad, Pattern: 0}
	imm := &Node{Kind: NodeImm, Imm: 5}
	expr := &Node{Kind: NodeExpr, Op: armlite.OpMul, A: load, B: imm}
	// Pattern anchored at iteration 2 → iteration 3 reads word 1 (20).
	v, err := e.EvalElement(expr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 100 {
		t.Errorf("EvalElement = %d, want 100", v)
	}
}
