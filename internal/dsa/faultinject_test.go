package dsa_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/workloads"
)

// runWorkloadScalar produces the ground-truth machine for a workload.
func runWorkloadScalar(t *testing.T, w *workloads.Workload) *cpu.Machine {
	t.Helper()
	m := cpu.MustNew(w.Scalar(), cpu.DefaultConfig())
	w.Setup(m)
	if err := m.Run(nil); err != nil {
		t.Fatalf("%s scalar: %v", w.Name, err)
	}
	return m
}

func runWorkloadDSA(t *testing.T, w *workloads.Workload, cfg dsa.Config) *dsa.System {
	t.Helper()
	s, err := dsa.NewSystem(w.Scalar(), cpu.DefaultConfig(), cfg)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	w.Setup(s.M)
	if err := s.Run(); err != nil {
		t.Fatalf("%s: DSA run: %v", w.Name, err)
	}
	return s
}

// requireIdenticalState asserts the full architectural state — every
// byte of memory and every core register — matches the scalar
// reference machine.
func requireIdenticalState(t *testing.T, ref, got *cpu.Machine, what string) {
	t.Helper()
	if got.R != ref.R {
		t.Errorf("%s: final registers %v, want %v", what, got.R, ref.R)
	}
	want, err := ref.Mem.ReadBytes(0, ref.Mem.Size())
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Mem.ReadBytes(0, got.Mem.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, have) {
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("%s: memory[%#x] = %#02x, want %#02x (first of %d-byte image)",
					what, i, have[i], want[i], len(want))
			}
		}
	}
}

// TestFaultMatrix is the robustness acceptance suite: every fault
// class injected into every workload kernel, with the differential
// oracle as the safety net for silent corruptions. Each run must
// complete through graceful scalar fallback with a final state
// byte-identical to a DSA-off execution, and each fallback must be
// attributed to the injected fault.
func TestFaultMatrix(t *testing.T) {
	kinds := []dsa.FaultKind{
		dsa.FaultCorruptCache,
		dsa.FaultSkewCIDP,
		dsa.FaultTruncateRange,
		dsa.FaultExecutorError,
	}
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			ref := runWorkloadScalar(t, w)
			clean := runWorkloadDSA(t, w, dsa.DefaultConfig())
			takeovers := clean.Stats().Takeovers

			for _, kind := range kinds {
				kind := kind
				t.Run(kind.String(), func(t *testing.T) {
					cfg := dsa.DefaultConfig()
					cfg.Fault = dsa.FaultConfig{Kind: kind}
					cfg.Verify = dsa.VerifyConfig{Enabled: true, Fallback: true}
					s := runWorkloadDSA(t, w, cfg)

					if err := w.Check(s.M); err != nil {
						t.Errorf("reference check after faults: %v", err)
					}
					requireIdenticalState(t, ref, s.M, fmt.Sprintf("%s/%s", w.Name, kind))

					st := s.Stats()
					if takeovers > 0 {
						if st.Fallbacks == 0 {
							t.Errorf("no fallbacks despite %d clean-run takeovers", takeovers)
						}
						if st.FallbackReasons["fault:"+kind.String()] == 0 {
							t.Errorf("fallbacks not attributed: %v", st.FallbackReasons)
						}
					}
				})
			}
		})
	}
}

// TestVerifyAllWorkloads is the oracle acceptance suite: the hard
// (non-fallback) differential oracle over every workload must run to
// completion without a single divergence, and still produce the
// scalar-identical state.
func TestVerifyAllWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			ref := runWorkloadScalar(t, w)
			cfg := dsa.DefaultConfig()
			cfg.Verify = dsa.VerifyConfig{Enabled: true}
			s := runWorkloadDSA(t, w, cfg)
			if err := w.Check(s.M); err != nil {
				t.Errorf("reference check: %v", err)
			}
			requireIdenticalState(t, ref, s.M, w.Name)
			st := s.Stats()
			if st.Takeovers > 0 && st.VerifiedTakeovers != st.Takeovers {
				t.Errorf("verified %d of %d takeovers", st.VerifiedTakeovers, st.Takeovers)
			}
			if st.Divergences != 0 {
				t.Errorf("clean run diverged %d times", st.Divergences)
			}
		})
	}
}
