package dsa

import (
	"sort"

	"repro/internal/armlite"
)

// deriveTrip implements Fig. 25's "Detecting Index and Stop
// Condition": find the flag-setter feeding the back-branch, classify
// its operands into counter (induction) and limit (invariant).
func (e *Engine) deriveTrip(t *track) *TripInfo {
	if t.trip != nil {
		return t.trip
	}
	recs := t.cur
	if len(t.it3) > 0 {
		recs = t.it3
	}
	if len(recs) < 2 {
		return nil
	}
	br := recs[len(recs)-1]
	if br.PC != t.branchPC || br.Instr.Cond == armlite.CondAL {
		return nil
	}
	var fs *StepRec
	for i := len(recs) - 2; i >= 0; i-- {
		in := recs[i].Instr
		if in.Op.SetsFlagsAlways() || in.SetFlags {
			fs = &recs[i]
			break
		}
	}
	if fs == nil || !t.inBody(fs.PC) {
		return nil
	}
	// Counter/limit roles from raw deltas (the counter need not be an
	// address register).
	isCtr := func(r armlite.Reg) bool {
		return r.Valid() && t.deltaOK[r] && t.delta[r] != 0
	}
	isInv := func(r armlite.Reg) bool {
		return r.Valid() && t.deltaOK[r] && t.delta[r] == 0
	}
	cond := br.Instr.Cond
	unsigned := cond == armlite.CondHS || cond == armlite.CondLO ||
		cond == armlite.CondHI || cond == armlite.CondLS

	ti := &TripInfo{Cond: cond, CmpPC: fs.PC, Unsigned: unsigned}
	in := fs.Instr
	switch {
	case in.Op == armlite.OpCmp && in.HasImm:
		if !isCtr(in.Rn) {
			return nil
		}
		ti.CounterReg, ti.Delta = in.Rn, t.delta[in.Rn]
		ti.LimitReg, ti.LimitImm, ti.LimitIsImm = armlite.NoReg, in.Imm, true
		ti.CounterIsRn = true
	case in.Op == armlite.OpCmp:
		switch {
		case isCtr(in.Rn) && isInv(in.Rm):
			ti.CounterReg, ti.Delta = in.Rn, t.delta[in.Rn]
			ti.LimitReg = in.Rm
			ti.CounterIsRn = true
		case isCtr(in.Rm) && isInv(in.Rn):
			ti.CounterReg, ti.Delta = in.Rm, t.delta[in.Rm]
			ti.LimitReg = in.Rn
			ti.CounterIsRn = false
		default:
			return nil
		}
	case (in.Op == armlite.OpSub || in.Op == armlite.OpAdd) && in.SetFlags:
		// subs/adds counter: flags compare the updated counter to 0.
		if !isCtr(in.Rd) {
			return nil
		}
		ti.CounterReg, ti.Delta = in.Rd, t.delta[in.Rd]
		ti.LimitReg, ti.LimitImm, ti.LimitIsImm = armlite.NoReg, 0, true
		ti.CounterIsRn = true
	default:
		return nil
	}
	t.trip = ti
	return ti
}

// buildRegEnv derives the register-role environment for extraction:
// deltas from the snapshots, induction roles from address usage and
// the trip counter.
func (e *Engine) buildRegEnv(t *track, recs []StepRec) *regEnv {
	env := &regEnv{delta: t.delta, deltaOK: t.deltaOK}
	for i := range recs {
		in := recs[i].Instr
		if in.Op.IsMem() {
			env.ind.Add(in.Mem.Base)
			env.ind.Add(in.Mem.Index)
		}
	}
	if t.trip != nil {
		env.ind.Add(t.trip.CounterReg)
	}
	return env
}

// tripLimitValue reads the limit under the end-of-iteration snapshot.
func (t *track) tripLimitValue() uint32 {
	if t.trip.LimitIsImm {
		return uint32(t.trip.LimitImm)
	}
	return t.snapCur[t.trip.LimitReg]
}

// buildPatterns pairs the memory observations of two iterations into
// linear access patterns. Sites must appear in both iterations with
// matching occurrence counts.
func (e *Engine) buildPatterns(t *track, recs []StepRec, iterA, iterB int) ([]MemPattern, map[memKey]int, error) {
	// Instruction metadata per site, from the representative records.
	type siteInfo struct {
		instr *armlite.Instr
		store bool
		size  int
	}
	sites := make(map[memKey]siteInfo)
	occ := make(map[int]int)
	var order []memKey
	for i := range recs {
		r := &recs[i]
		if !r.HasMem {
			continue
		}
		o := occ[r.PC]
		occ[r.PC] = o + 1
		k := memKey{pc: r.PC, occ: o}
		if _, dup := sites[k]; !dup {
			sites[k] = siteInfo{instr: r.Instr, store: r.MemStore, size: r.MemSize}
			order = append(order, k)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].pc != order[j].pc {
			return order[i].pc < order[j].pc
		}
		return order[i].occ < order[j].occ
	})
	patterns := make([]MemPattern, 0, len(order))
	patIdx := make(map[memKey]int, len(order))
	for _, k := range order {
		obs := t.mem[k]
		var a, b *memObs
		for i := range obs {
			if obs[i].iter == iterA {
				a = &obs[i]
			}
			if obs[i].iter == iterB {
				b = &obs[i]
			}
		}
		if a == nil || b == nil {
			return nil, nil, rejectf("irregular-memory-site")
		}
		si := sites[k]
		p, err := NewMemPattern(k.pc, si.store, si.instr.DT, si.size, iterA, iterB, a.addr, b.addr)
		if err != nil {
			return nil, nil, rejectf("non-linear-access")
		}
		p.BaseReg = si.instr.Mem.Base
		p.Mem = si.instr.Mem
		p.MultiOcc = k.occ > 0 || occ[k.pc] > 1
		patterns = append(patterns, p)
		patIdx[k] = len(patterns) - 1
	}
	return patterns, patIdx, nil
}

// structuralPCs computes the instruction addresses executed as scalar
// glue for simple loops: the trip compare, the back-branch, and pure
// induction updates.
func (t *track) structuralPCs(env *regEnv, recs []StepRec) map[int]bool {
	s := map[int]bool{t.branchPC: true}
	if t.trip != nil {
		s[t.trip.CmpPC] = true
	}
	induction := func(r armlite.Reg) bool { return env.class(r) == clInduction }
	for i := range recs {
		in := recs[i].Instr
		if in.Op.IsMem() || in.Op.IsBranch() || !in.Op.IsALU() {
			continue
		}
		defs := in.Defs()
		if defs.Count() == 0 {
			continue
		}
		allInd := true
		for _, r := range defs.Regs() {
			if !induction(r) {
				allInd = false
				break
			}
		}
		if !allInd {
			continue
		}
		usesOK := true
		for _, r := range in.Uses().Regs() {
			if !induction(r) {
				usesOK = false
				break
			}
		}
		if usesOK {
			s[recs[i].PC] = true
		}
	}
	return s
}

// decideSimple is the Dependency Analysis + Store ID decision for
// count, function and dynamic-range loops.
func (e *Engine) decideSimple(t *track) {
	t.stage = stDecided
	e.stats.StateTransitions++
	fail := func(reason string) {
		t.reject(reason)
		e.recordVerdict(t, false)
	}
	trip := e.deriveTrip(t)
	if trip == nil {
		fail("trip-underivable")
		return
	}
	rem, ok := trip.Remaining(t.snapCur[trip.CounterReg], t.tripLimitValue())
	if !ok {
		fail("trip-underivable")
		return
	}
	n := 3 + rem

	patterns, patIdx, err := e.buildPatterns(t, t.it3, 2, 3)
	if err != nil {
		fail(reasonOf(err))
		return
	}
	cid := PredictCID(patterns, 2, n)
	e.stats.CIDPCompares += uint64(cid.Compares)
	e.stats.AnalysisTicks += int64(cid.Compares) * e.cfg.Latencies.CIDPCompare
	partial := false
	if cid.HasCID {
		if !e.cfg.EnablePartial || cid.Distance < 2 {
			fail("cross-iteration-dependency")
			return
		}
		partial = true
	}

	env := e.buildRegEnv(t, t.it3)
	structural := t.structuralPCs(env, t.it3)
	dag, dt, err := extractPayload(t.it3, env, patterns, patIdx, structural)
	if err != nil {
		fail(reasonOf(err))
		return
	}
	plan, err := BuildPlan(dag, patterns, dt)
	if err != nil {
		fail(reasonOf(err))
		return
	}

	kind := KindCount
	if t.sawCall {
		kind = KindFunction
	}
	if t.kind == KindDynamicRange {
		kind = KindDynamicRange
	}
	a := &Analysis{
		LoopID:    t.id,
		BranchPC:  t.branchPC,
		Kind:      kind,
		Trip:      *trip,
		Induction: inductionMap(env),
		Patterns:  patterns,
		ElemDT:    dt,
		Payload:   dag,
		CID:       cid,
		Partial:   partial,
		plan:      plan,
	}
	t.kind = kind
	t.analysis = a

	entry := &CachedLoop{
		LoopID:       t.id,
		Kind:         kind,
		Vectorizable: true,
		Analysis:     a,
		LimitValue:   t.tripLimitValue(),
		LimitIsImm:   trip.LimitIsImm,
	}
	e.Cache.Insert(entry)
	e.stats.DSACacheAccesses++
	e.stats.AnalysisTicks += e.cfg.Latencies.DSACacheAccess
	e.recordVerdict(t, true)

	// Profitability guard: switching to the NEON engine costs a
	// pipeline flush, so the remaining window must cover at least two
	// full vectors to pay for itself.
	if n-4 < 2*dt.Lanes() {
		e.policyLoss(t.id) // analysis paid, nothing taken over
		return // too few iterations left this entry; cached for later
	}
	if e.pending == nil {
		e.pending = e.newRequest(Request{Kind: ReqVector, Analysis: a, StartIter: 4, TotalIters: n, Cached: entry})
	}
}

func inductionMap(env *regEnv) map[armlite.Reg]int64 {
	m := make(map[armlite.Reg]int64)
	for r := armlite.Reg(0); r < armlite.NumRegs; r++ {
		if env.class(r) == clInduction {
			m[r] = env.delta[r]
		}
	}
	return m
}

// decideSentinel analyzes a loop whose exit depends on data computed
// inside the body (§4.6.5).
func (e *Engine) decideSentinel(t *track) {
	t.stage = stDecided
	e.stats.StateTransitions++
	fail := func(reason string) {
		t.reject(reason)
		e.recordVerdict(t, false)
	}
	if !e.cfg.EnableSentinel {
		fail("sentinel-disabled")
		return
	}
	if t.sawCall {
		fail("sentinel-function-mix")
		return
	}
	if t.condSeen {
		fail("conditional-sentinel-mix")
		return
	}
	stop := e.stopSlice(t)
	if stop == nil {
		fail("stop-slice-underivable")
		return
	}

	patterns, patIdx, err := e.buildPatterns(t, t.it3, 2, 3)
	if err != nil {
		fail(reasonOf(err))
		return
	}
	// Stop-slice stores would need per-iteration side effects — reject.
	for _, p := range patterns {
		if p.Store && stop[p.PC] {
			fail("store-in-stop-slice")
			return
		}
	}
	// The payload (action) is everything outside the stop slice;
	// stop-slice loads stay visible so their values seed the dataflow.
	structural := make(map[int]bool, len(stop))
	for pc := range stop {
		structural[pc] = true
	}
	for _, p := range patterns {
		if !p.Store && structural[p.PC] {
			delete(structural, p.PC)
		}
	}
	env := e.buildRegEnv(t, t.it3)
	// Induction updates and the back-branch are structural too.
	for pc := range t.structuralPCs(env, t.it3) {
		structural[pc] = true
	}
	dag, dt, err := extractPayload(t.it3, env, patterns, patIdx, structural)
	if err != nil {
		fail(reasonOf(err))
		return
	}
	plan, err := BuildPlan(dag, patterns, dt)
	if err != nil {
		fail(reasonOf(err))
		return
	}
	// Action instructions must follow the exit check in program order
	// so an exiting iteration has not yet run its (skipped) action.
	actionPCs := make(map[int]bool)
	minAction := t.branchPC + 1
	for pc := t.id; pc <= t.branchPC; pc++ {
		if !stop[pc] {
			actionPCs[pc] = true
			if pc < minAction {
				minAction = pc
			}
		}
	}
	if t.exitSeen && minAction < t.exitPC {
		fail("action-before-exit-check")
		return
	}

	spec := specRangeFor(0, dt.Lanes())
	cid := PredictCID(patterns, 2, 3+spec+1)
	e.stats.CIDPCompares += uint64(cid.Compares)
	e.stats.AnalysisTicks += int64(cid.Compares) * e.cfg.Latencies.CIDPCompare
	if cid.HasCID {
		fail("cross-iteration-dependency")
		return
	}

	// Payload temporaries that survive the loop must be recomputable
	// at commit time (the skipped iterations never produce them
	// architecturally).
	regOut := make(map[armlite.Reg]*Node)
	for r, ro := range dag.regOut {
		if actionPCs[ro.PC] {
			regOut[r] = ro.Node
		}
	}

	a := &Analysis{
		LoopID:    t.id,
		BranchPC:  t.branchPC,
		Kind:      KindSentinel,
		Induction: inductionMap(env),
		Patterns:  patterns,
		ElemDT:    dt,
		Payload:   dag,
		Sent:      &SentAnalysis{StopPCs: stop, ActionPCs: actionPCs, Payload: dag, ExitPC: t.exitPC, RegOut: regOut},
		plan:      plan,
	}
	if t.trip != nil {
		a.Trip = *t.trip
	} else {
		a.Trip.CounterReg = armlite.NoReg
		a.Trip.LimitReg = armlite.NoReg
	}
	t.kind = KindSentinel
	t.analysis = a

	entry := &CachedLoop{LoopID: t.id, Kind: KindSentinel, Vectorizable: true, Analysis: a}
	e.Cache.Insert(entry)
	e.stats.DSACacheAccesses++
	e.stats.AnalysisTicks += e.cfg.Latencies.DSACacheAccess
	e.recordVerdict(t, true)

	if e.pending == nil {
		e.pending = e.newRequest(Request{Kind: ReqSentinel, Analysis: a, StartIter: 4, SpecRange: spec, Cached: entry})
	}
}

// stopSlice computes the backward slice of every exit check over the
// static body: the instructions that must keep executing scalar so the
// stop condition is evaluated each iteration.
func (e *Engine) stopSlice(t *track) map[int]bool {
	code := e.m.Prog.Code
	if t.branchPC >= len(code) {
		return nil
	}
	slice := make(map[int]bool)
	// Seeds: every branch that can leave the body, the back-branch,
	// and every flag-setting instruction (payloads reject compares, so
	// flag setters belong to control).
	for pc := t.id; pc <= t.branchPC; pc++ {
		in := code[pc]
		switch {
		case in.Op == armlite.OpB && pc == t.branchPC:
			slice[pc] = true
		case in.Op == armlite.OpB && (in.Target < t.id || in.Target > t.branchPC):
			slice[pc] = true
		case in.Op == armlite.OpB && in.Cond == armlite.CondAL:
			slice[pc] = true // control glue
		case in.Op.SetsFlagsAlways() || in.SetFlags:
			slice[pc] = true
		case in.Op == armlite.OpBL || in.Op == armlite.OpBX || in.Op == armlite.OpHalt:
			return nil // calls inside a sentinel body: unsupported
		}
	}
	// Transitive closure over register dataflow (body treated as a
	// cycle, so iterate to a fixed point).
	for changed := true; changed; {
		changed = false
		var needed armlite.RegSet
		for pc := range slice {
			needed = needed.Union(code[pc].Uses())
		}
		for pc := t.id; pc <= t.branchPC; pc++ {
			if slice[pc] {
				continue
			}
			for _, r := range code[pc].Defs().Regs() {
				if needed.Has(r) {
					slice[pc] = true
					changed = true
					break
				}
			}
		}
	}
	return slice
}
