package dsa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"

	"repro/internal/snapshot"
)

// ErrInjected is the error an armed FaultExecutorError surfaces from
// the executor — a stand-in for any hard execution fault (ECC trap,
// NEON queue wedge) the real hardware could hit mid-takeover.
var ErrInjected = errors.New("dsa: injected executor fault")

// FaultKind selects the class of hardware fault the harness injects
// into the DSA. Each class targets a different structure the guarded
// takeover must survive: the DSA cache, the CIDP predictor, and the
// execution engine itself.
type FaultKind int

// Fault classes.
const (
	// FaultNone disables injection (production).
	FaultNone FaultKind = iota
	// FaultCorruptCache models a corrupted DSA-cache entry: the cached
	// pattern table's base addresses are shifted, so the takeover
	// loads and stores the wrong memory. Detected either by an
	// out-of-range access (rollback) or by the differential oracle
	// (silent corruption).
	FaultCorruptCache
	// FaultSkewCIDP models a wrong CIDP stride prediction: every
	// strided pattern's stride grows by one element, fanning accesses
	// away from their true streams as iterations advance.
	FaultSkewCIDP
	// FaultTruncateRange models a speculative range that silently
	// collapses: the executor performs none of the window's work but
	// still claims full coverage. Purely silent — only the oracle
	// can see it.
	FaultTruncateRange
	// FaultExecutorError models a hard executor fault: the first
	// window of the takeover fails with ErrInjected.
	FaultExecutorError
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultCorruptCache:
		return "corrupt-cache"
	case FaultSkewCIDP:
		return "cidp-skew"
	case FaultTruncateRange:
		return "truncated-range"
	case FaultExecutorError:
		return "executor-error"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// ParseFaultKind maps a -fault flag value to its kind.
func ParseFaultKind(s string) (FaultKind, error) {
	for _, k := range []FaultKind{FaultNone, FaultCorruptCache, FaultSkewCIDP, FaultTruncateRange, FaultExecutorError} {
		if s == k.String() {
			return k, nil
		}
	}
	return FaultNone, fmt.Errorf("unknown fault kind %q (want none, corrupt-cache, cidp-skew, truncated-range or executor-error)", s)
}

// FaultConfig configures the harness.
type FaultConfig struct {
	Kind FaultKind
	// EveryN arms the fault on every Nth takeover (≤1 = every one).
	EveryN uint64
	// SkewBytes is the address shift FaultCorruptCache applies to the
	// cached pattern table (0 = 64, one cache line).
	SkewBytes int64
}

// FaultInjector arms one fault per selected takeover and lets the
// executor consume the armed state. All methods are nil-receiver safe
// so production paths carry no injection branches beyond a nil check.
type FaultInjector struct {
	cfg FaultConfig

	// Seen counts takeovers observed, Fired the ones faulted.
	Seen  uint64
	Fired uint64

	label    string // "fault:<kind>" while the current takeover is faulted
	truncate bool
	errOnce  bool
}

func newFaultInjector(cfg FaultConfig) *FaultInjector {
	return &FaultInjector{cfg: cfg}
}

// Arm prepares the fault for one takeover and returns its attribution
// label ("" when this takeover is not selected). Cache and CIDP
// faults mutate the request's analysis in place — exactly what a
// corrupted cache entry or predictor would hand the executor.
func (f *FaultInjector) Arm(req *Request) string {
	if f == nil {
		return ""
	}
	f.label, f.truncate, f.errOnce = "", false, false
	f.Seen++
	n := f.cfg.EveryN
	if n < 1 {
		n = 1
	}
	if f.cfg.Kind == FaultNone || f.Seen%n != 0 {
		return ""
	}
	f.Fired++
	f.label = "fault:" + f.cfg.Kind.String()
	switch f.cfg.Kind {
	case FaultCorruptCache:
		skew := f.cfg.SkewBytes
		if skew == 0 {
			skew = 64
		}
		forEachPatternTable(req.Analysis, func(pats []MemPattern) {
			for i := range pats {
				pats[i].AddrA = uint32(int64(pats[i].AddrA) + skew)
				pats[i].AddrB = uint32(int64(pats[i].AddrB) + skew)
			}
		})
	case FaultSkewCIDP:
		forEachPatternTable(req.Analysis, func(pats []MemPattern) {
			for i := range pats {
				p := &pats[i]
				if p.Stride == 0 {
					continue
				}
				p.Stride += int64(p.Size)
				p.AddrB = uint32(int64(p.AddrA) + p.Stride*int64(p.RefIterB-p.RefIterA))
			}
		})
		// A skewed predictor no longer supports the dependency-window
		// legality argument; take the plain path so the skew expresses
		// itself as wrong addresses, not a window-math crash.
		req.Analysis.Partial = false
	case FaultTruncateRange:
		f.truncate = true
	case FaultExecutorError:
		f.errOnce = true
	}
	return f.label
}

// forEachPatternTable visits every pattern table a takeover can
// execute from: the payload's own, each conditional path's, and the
// fully speculative conditional's guard and arm tables.
func forEachPatternTable(a *Analysis, fn func([]MemPattern)) {
	fn(a.Patterns)
	if a.Cond == nil {
		return
	}
	for i := range a.Cond.Paths {
		fn(a.Cond.Paths[i].patterns)
	}
	if cv := a.Cond.Vec; cv != nil {
		fn(cv.GuardPatterns)
		if cv.Taken != nil {
			fn(cv.Taken.Patterns)
		}
		if cv.Fall != nil {
			fn(cv.Fall.Patterns)
		}
	}
}

// SnapshotFault is a fault class applied to a snapshot *file* rather
// than to a live takeover: the ways a checkpoint on disk goes bad
// between the write and the resume. Each class must be detected at
// restore time — by the container's checksums or version gate — and
// degrade to an attributed restart-from-zero, never to resuming
// silently corrupted state.
type SnapshotFault int

// Snapshot-file fault classes.
const (
	// SnapTruncate cuts the file short — a torn write or a filesystem
	// that lost the tail on power failure.
	SnapTruncate SnapshotFault = iota
	// SnapBitFlip flips one bit inside a section — media corruption.
	SnapBitFlip
	// SnapVersionSkew rewrites the header version word — a checkpoint
	// left behind by a different simulator build.
	SnapVersionSkew
)

func (k SnapshotFault) String() string {
	switch k {
	case SnapTruncate:
		return "snap-truncate"
	case SnapBitFlip:
		return "snap-bitflip"
	case SnapVersionSkew:
		return "snap-version-skew"
	default:
		return fmt.Sprintf("SnapshotFault(%d)", int(k))
	}
}

// SnapshotFaults lists every snapshot-file fault class, for harnesses
// that sweep them all.
var SnapshotFaults = []SnapshotFault{SnapTruncate, SnapBitFlip, SnapVersionSkew}

// InjectSnapshotFault corrupts the snapshot file at path in place
// according to kind. The file must be a valid snapshot container
// (magic + version header) large enough to damage meaningfully.
func InjectSnapshotFault(path string, kind SnapshotFault) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	// Header layout (see internal/snapshot): magic [0,4) + version
	// [4,8) + epoch word and its CRC [8,20) + section count [20,24).
	const headerLen = snapshot.HeaderLen
	if len(raw) < headerLen+8 {
		return fmt.Errorf("snapshot %s too small (%d bytes) to fault", path, len(raw))
	}
	switch kind {
	case SnapTruncate:
		raw = raw[:len(raw)*2/3]
	case SnapBitFlip:
		// Flip a bit in the middle of the body: well past the header, so
		// detection must come from a section CRC, not the magic check.
		raw[headerLen+(len(raw)-headerLen)/2] ^= 0x10
	case SnapVersionSkew:
		binary.LittleEndian.PutUint32(raw[4:8], binary.LittleEndian.Uint32(raw[4:8])+1)
	default:
		return fmt.Errorf("unknown snapshot fault %v", kind)
	}
	return os.WriteFile(path, raw, 0o644)
}

// truncated reports whether the current takeover's windows should be
// silently dropped.
func (f *FaultInjector) truncated() bool { return f != nil && f.truncate }

// takeError fires the armed executor error exactly once.
func (f *FaultInjector) takeError() error {
	if f == nil || !f.errOnce {
		return nil
	}
	f.errOnce = false
	return ErrInjected
}
