package cpu

import (
	"reflect"
	"testing"

	"repro/internal/armlite"
	"repro/internal/asm"
)

// TestRunToBackBranchEquivalence proves the watch-mode loop retires the
// same instruction stream as the observed Run loop: identical final
// architectural state and the identical sequence of taken backward
// branches, surfaced at the same step counts.
func TestRunToBackBranchEquivalence(t *testing.T) {
	src := `
        mov r0, #0
        mov r1, #0
    outer:
        mov r2, #0
    inner:
        add r0, r0, r2
        add r2, r2, #1
        cmp r2, #5
        blt inner
        add r1, r1, #1
        cmp r1, #4
        blt outer
        b done
    done:
        halt`
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}

	type hit struct {
		target, pc int
		steps      uint64
	}

	// Reference: observed run, recording taken backward branches.
	ref := MustNew(p, DefaultConfig())
	var want []hit
	err = ref.Run(ObserverFunc(func(r *Record) {
		if r.Instr.Op == armlite.OpB && r.Taken && r.Instr.Target < r.PC {
			want = append(want, hit{r.Instr.Target, r.PC, ref.Steps})
		}
	}))
	if err != nil {
		t.Fatal(err)
	}

	// Watch mode: same program, surfacing branches directly.
	m := MustNew(p, DefaultConfig())
	var got []hit
	for {
		target, bpc, ok, err := m.RunToBackBranch()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, hit{target, bpc, m.Steps})
	}

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("branch streams differ:\n got %v\nwant %v", got, want)
	}
	if len(got) == 0 {
		t.Fatal("test program surfaced no backward branches")
	}
	if m.Steps != ref.Steps || m.Ticks != ref.Ticks {
		t.Fatalf("steps/ticks diverged: watch %d/%d, observed %d/%d",
			m.Steps, m.Ticks, ref.Steps, ref.Ticks)
	}
	if m.R != ref.R || m.Counts != ref.Counts {
		t.Fatalf("architectural state diverged")
	}
	if !m.Halted {
		t.Fatal("watch machine did not halt")
	}
}
