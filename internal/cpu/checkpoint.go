package cpu

import (
	"repro/internal/armlite"
	"repro/internal/mem"
	"repro/internal/neon"
)

// Checkpoint is a precise restore point for speculative execution: the
// full architectural register state, the timing/accounting counters,
// and a copy-on-write undo journal covering every memory store made
// while the checkpoint is open. The DSA takes one checkpoint per
// takeover so a failed or diverging takeover can be unwound and the
// loop re-run scalar.
type Checkpoint struct {
	R      [armlite.NumRegs]uint32
	F      armlite.Flags
	PC     int
	Halted bool

	Ticks  int64
	Steps  uint64
	Counts Counts

	NeonQ      [armlite.NumVRegs]neon.Vec
	NeonOps    uint64
	NeonLoads  uint64
	NeonStores uint64

	Journal *mem.Journal
}

// Checkpoint opens a restore point. Exactly one checkpoint may be open
// at a time (the underlying memory journal enforces this); close it
// with Rollback or Release, after which the object returns to the
// machine's free slot and must not be referenced again.
func (m *Machine) Checkpoint() *Checkpoint {
	cp := m.cpFree
	if cp == nil {
		cp = &Checkpoint{}
	} else {
		m.cpFree = nil
	}
	*cp = Checkpoint{
		R:          m.R,
		F:          m.F,
		PC:         m.PC,
		Halted:     m.Halted,
		Ticks:      m.Ticks,
		Steps:      m.Steps,
		Counts:     m.Counts,
		NeonQ:      m.NEON.Q,
		NeonOps:    m.NEON.Ops,
		NeonLoads:  m.NEON.Loads,
		NeonStores: m.NEON.Stores,
		Journal:    m.Mem.BeginJournal(),
	}
	return cp
}

// Rollback restores the machine to the checkpointed state: registers,
// flags, PC, time and event counters, NEON state, and every memory
// byte written since the checkpoint. The checkpoint is closed.
func (m *Machine) Rollback(cp *Checkpoint) {
	cp.Journal.Rollback()
	m.R = cp.R
	m.F = cp.F
	m.PC = cp.PC
	m.Halted = cp.Halted
	m.Ticks = cp.Ticks
	m.Steps = cp.Steps
	m.Counts = cp.Counts
	m.NEON.Q = cp.NeonQ
	m.NEON.Ops = cp.NeonOps
	m.NEON.Loads = cp.NeonLoads
	m.NEON.Stores = cp.NeonStores
	m.recycle(cp)
}

// Release commits the work done since the checkpoint and closes it;
// the undo log is dropped.
func (m *Machine) Release(cp *Checkpoint) {
	cp.Journal.Commit()
	m.recycle(cp)
}

func (m *Machine) recycle(cp *Checkpoint) {
	if m.cpFree == nil {
		m.cpFree = cp
	}
}
