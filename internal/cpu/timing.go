package cpu

import "repro/internal/armlite"

// Scalar pipeline cost constants in ticks (10 ticks = 1 cycle).
// They approximate the Cortex-A-class O3CPU the dissertation models:
// simple operations sustain the full issue width, multiplies and
// divides occupy the long-latency units, and taken branches cost a
// front-end redirect.
const (
	mulTicks         = 20  // 2 cycles
	divTicks         = 120 // 12 cycles
	fpAddTicks       = 20  // 2 cycles in the VFP unit
	fpMulTicks       = 30
	fpDivTicks       = 150
	branchTakenTicks = 20 // 2 cycles: redirect bubble (predictor-amortized)
)

// The cost of one simple operation at the configured superscalar
// width (1 cycle / width) is precomputed into Machine.issue at
// construction so the step loop never divides.

func fpTicks(op armlite.Op) int64 {
	switch op {
	case armlite.OpFMul:
		return fpMulTicks
	case armlite.OpFDiv:
		return fpDivTicks
	default:
		return fpAddTicks
	}
}

// Cycles converts the machine's tick counter to core cycles.
func (m *Machine) Cycles() float64 { return float64(m.Ticks) / TicksPerCycle }
