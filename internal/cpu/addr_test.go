package cpu

import (
	"strings"
	"testing"

	"repro/internal/armlite"
	"repro/internal/asm"
)

// The writeback addressing modes each have distinct semantics:
//
//	ldr r0, [r1, #4]    offset:     addr = r1+4, r1 unchanged
//	ldr r0, [r1, #4]!   pre-index:  addr = r1+4, r1 = r1+4
//	ldr r0, [r1], #4    post-index: addr = r1,   r1 = r1+4
//	vld1.32 q0, [r1]!   vector:     addr = r1,   r1 = r1+16
//
// A regression once conflated the scalar pre-index form with the
// vector advance (address unbumped, base advanced by 16); these tests
// pin each form independently.

func runAddr(t *testing.T, src string, setup func(m *Machine)) *Machine {
	t.Helper()
	prog, err := asm.Parse("addr", src)
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(prog, tinyConfig())
	if setup != nil {
		setup(m)
	}
	if err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPreIndexLoad(t *testing.T) {
	m := runAddr(t, `
        mov r1, #0x100
        ldr r0, [r1, #4]!
        halt
`, func(m *Machine) {
		if err := m.Mem.Store(0x104, 4, 0xdeadbeef); err != nil {
			t.Fatal(err)
		}
	})
	if got := m.R[armlite.R0]; got != 0xdeadbeef {
		t.Errorf("r0 = %#x, want %#x (loaded from base+offset)", got, uint32(0xdeadbeef))
	}
	if got := m.R[armlite.R1]; got != 0x104 {
		t.Errorf("r1 = %#x, want 0x104 (base written back to effective address)", got)
	}
}

func TestPreIndexStore(t *testing.T) {
	m := runAddr(t, `
        mov r1, #0x100
        mov r0, #42
        str r0, [r1, #8]!
        halt
`, nil)
	v, err := m.Mem.Load(0x108, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("mem[0x108] = %d, want 42", v)
	}
	if got := m.R[armlite.R1]; got != 0x108 {
		t.Errorf("r1 = %#x, want 0x108", got)
	}
}

func TestPreIndexNegativeOffset(t *testing.T) {
	m := runAddr(t, `
        mov r1, #0x110
        ldr r0, [r1, #-16]!
        halt
`, func(m *Machine) {
		if err := m.Mem.Store(0x100, 4, 7); err != nil {
			t.Fatal(err)
		}
	})
	if got := m.R[armlite.R0]; got != 7 {
		t.Errorf("r0 = %d, want 7", got)
	}
	if got := m.R[armlite.R1]; got != 0x100 {
		t.Errorf("r1 = %#x, want 0x100", got)
	}
}

func TestPostIndex(t *testing.T) {
	m := runAddr(t, `
        mov r1, #0x100
        mov r2, #0x200
        mov r0, #9
        str r0, [r1], #4
        ldr r3, [r2], #-8
        halt
`, func(m *Machine) {
		if err := m.Mem.Store(0x200, 4, 13); err != nil {
			t.Fatal(err)
		}
	})
	v, err := m.Mem.Load(0x100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 9 {
		t.Errorf("mem[0x100] = %d, want 9 (post-index stores at the unbumped base)", v)
	}
	if got := m.R[armlite.R1]; got != 0x104 {
		t.Errorf("r1 = %#x, want 0x104", got)
	}
	if got := m.R[armlite.R3]; got != 13 {
		t.Errorf("r3 = %d, want 13", got)
	}
	if got := m.R[armlite.R2]; got != 0x1f8 {
		t.Errorf("r2 = %#x, want 0x1f8", got)
	}
}

func TestVectorWritebackAdvance(t *testing.T) {
	m := runAddr(t, `
        mov r1, #0x100
        vld1.32 q0, [r1]!
        vst1.32 q0, [r1]!
        halt
`, func(m *Machine) {
		for i := uint32(0); i < 4; i++ {
			if err := m.Mem.Store(0x100+4*i, 4, i+1); err != nil {
				t.Fatal(err)
			}
		}
	})
	if got := m.R[armlite.R1]; got != 0x120 {
		t.Errorf("r1 = %#x, want 0x120 (two 16-byte advances)", got)
	}
	for i := uint32(0); i < 4; i++ {
		v, err := m.Mem.Load(0x110+4*i, 4)
		if err != nil {
			t.Fatal(err)
		}
		if v != i+1 {
			t.Errorf("copied lane %d = %d, want %d", i, v, i+1)
		}
	}
}

// regWritebackInstr builds the structurally invalid reg-offset +
// writeback form directly, bypassing the parser's rejection.
func regWritebackInstr(op armlite.Op) armlite.Instr {
	in := armlite.NewInstr(op)
	in.Rd = armlite.R0
	in.Mem = armlite.Mem{
		Kind:      armlite.AddrRegOffset,
		Base:      armlite.R1,
		Index:     armlite.R2,
		Writeback: true,
	}
	if op == armlite.OpVld1 || op == armlite.OpVst1 {
		in.Rd = armlite.NoReg
		in.Qd = armlite.VReg(0)
		in.DT = armlite.I32
	}
	return in
}

func TestRegOffsetWritebackRejectedByValidate(t *testing.T) {
	for _, op := range []armlite.Op{armlite.OpLdr, armlite.OpStr, armlite.OpVld1, armlite.OpVst1} {
		prog := &armlite.Program{Code: []armlite.Instr{regWritebackInstr(op)}}
		err := prog.Validate()
		if err == nil || !strings.Contains(err.Error(), "writeback") {
			t.Errorf("%v: Validate() = %v, want writeback rejection", op, err)
		}
		if _, err := New(prog, tinyConfig()); err == nil {
			t.Errorf("%v: cpu.New accepted a reg-offset writeback instruction", op)
		}
	}
}

func TestVectorOffsetWritebackRejected(t *testing.T) {
	// The vector "[rn]!" form advances by the vector width; a nonzero
	// offset combined with writeback has no defined meaning and must
	// not validate.
	in := armlite.NewInstr(armlite.OpVld1)
	in.Qd = armlite.VReg(0)
	in.DT = armlite.I32
	in.Mem = armlite.Mem{Kind: armlite.AddrOffset, Base: armlite.R1, Offset: 4, Writeback: true}
	prog := &armlite.Program{Code: []armlite.Instr{in}}
	if err := prog.Validate(); err == nil {
		t.Error("Validate() accepted vld1 with offset+writeback")
	}
}
