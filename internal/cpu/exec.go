package cpu

import (
	"fmt"
	"math"

	"repro/internal/armlite"
	"repro/internal/neon"
)

// op2 resolves the flexible second operand.
func (m *Machine) op2(in *armlite.Instr) uint32 {
	if in.HasImm {
		return uint32(in.Imm)
	}
	return m.R[in.Rm]
}

// setNZ updates N and Z from a result.
func (m *Machine) setNZ(v uint32) {
	m.F.N = int32(v) < 0
	m.F.Z = v == 0
}

// subFlags sets full NZCV for a-b (the cmp/subs semantics).
func (m *Machine) subFlags(a, b uint32) {
	r := a - b
	m.setNZ(r)
	m.F.C = a >= b // no borrow
	m.F.V = (int32(a) >= 0) != (int32(b) >= 0) && (int32(r) >= 0) != (int32(a) >= 0)
}

// addFlags sets full NZCV for a+b (the cmn/adds semantics).
func (m *Machine) addFlags(a, b uint32) {
	r := a + b
	m.setNZ(r)
	m.F.C = r < a
	m.F.V = (int32(a) >= 0) == (int32(b) >= 0) && (int32(r) >= 0) != (int32(a) >= 0)
}

// effAddr computes the effective address of a memory operand and the
// post-execution base value (writeback).
func (m *Machine) effAddr(mo *armlite.Mem) (addr, newBase uint32, wb bool) {
	base := m.R[mo.Base]
	switch mo.Kind {
	case armlite.AddrPostIndex:
		return base, base + uint32(mo.Offset), true
	case armlite.AddrRegOffset:
		return base + (m.R[mo.Index] << mo.Shift), base, false
	default: // AddrOffset
		if mo.Writeback { // vector "[rn]!" form: advance by 16
			return base, base + armlite.VectorBytes, true
		}
		return base + uint32(mo.Offset), base, false
	}
}

func (m *Machine) exec(in *armlite.Instr, rec *Record) error {
	// Condition check: a skipped instruction still occupies an issue
	// slot (it is fetched and squashed).
	if !in.Cond.Holds(m.F) && in.Op != armlite.OpB {
		m.Ticks += m.issueTicks()
		m.Counts.Total++
		m.Counts.Nops++
		m.PC++
		return nil
	}

	switch in.Op {
	case armlite.OpNop:
		m.Ticks += m.issueTicks()
		m.Counts.Nops++

	case armlite.OpHalt:
		m.Halted = true
		m.Ticks += m.issueTicks()

	case armlite.OpMov:
		m.R[in.Rd] = m.op2(in)
		if in.SetFlags {
			m.setNZ(m.R[in.Rd])
		}
		m.Ticks += m.issueTicks()
		m.Counts.ALU++

	case armlite.OpMvn:
		m.R[in.Rd] = ^m.op2(in)
		if in.SetFlags {
			m.setNZ(m.R[in.Rd])
		}
		m.Ticks += m.issueTicks()
		m.Counts.ALU++

	case armlite.OpAdd, armlite.OpSub, armlite.OpRsb, armlite.OpAnd,
		armlite.OpOrr, armlite.OpEor, armlite.OpBic,
		armlite.OpLsl, armlite.OpLsr, armlite.OpAsr:
		a, b := m.R[in.Rn], m.op2(in)
		var r uint32
		switch in.Op {
		case armlite.OpAdd:
			r = a + b
		case armlite.OpSub:
			r = a - b
		case armlite.OpRsb:
			r = b - a
		case armlite.OpAnd:
			r = a & b
		case armlite.OpOrr:
			r = a | b
		case armlite.OpEor:
			r = a ^ b
		case armlite.OpBic:
			r = a &^ b
		case armlite.OpLsl:
			r = a << (b & 31)
		case armlite.OpLsr:
			r = a >> (b & 31)
		case armlite.OpAsr:
			r = uint32(int32(a) >> (b & 31))
		}
		m.R[in.Rd] = r
		if in.SetFlags {
			switch in.Op {
			case armlite.OpAdd:
				m.addFlags(a, b)
			case armlite.OpSub:
				m.subFlags(a, b)
			case armlite.OpRsb:
				m.subFlags(b, a)
			default:
				m.setNZ(r)
			}
		}
		m.Ticks += m.issueTicks()
		m.Counts.ALU++

	case armlite.OpMul:
		m.R[in.Rd] = m.R[in.Rn] * m.op2(in)
		if in.SetFlags {
			m.setNZ(m.R[in.Rd])
		}
		m.Ticks += mulTicks
		m.Counts.Mul++

	case armlite.OpMla:
		m.R[in.Rd] = m.R[in.Rn]*m.R[in.Rm] + m.R[in.Ra]
		m.Ticks += mulTicks
		m.Counts.Mul++

	case armlite.OpSdiv:
		d := int32(m.op2(in))
		if d == 0 {
			m.R[in.Rd] = 0
		} else {
			m.R[in.Rd] = uint32(int32(m.R[in.Rn]) / d)
		}
		m.Ticks += divTicks
		m.Counts.Div++

	case armlite.OpUdiv:
		d := m.op2(in)
		if d == 0 {
			m.R[in.Rd] = 0
		} else {
			m.R[in.Rd] = m.R[in.Rn] / d
		}
		m.Ticks += divTicks
		m.Counts.Div++

	case armlite.OpCmp:
		m.subFlags(m.R[in.Rn], m.op2(in))
		m.Ticks += m.issueTicks()
		m.Counts.ALU++

	case armlite.OpCmn:
		m.addFlags(m.R[in.Rn], m.op2(in))
		m.Ticks += m.issueTicks()
		m.Counts.ALU++

	case armlite.OpTst:
		m.setNZ(m.R[in.Rn] & m.op2(in))
		m.Ticks += m.issueTicks()
		m.Counts.ALU++

	case armlite.OpFAdd, armlite.OpFSub, armlite.OpFMul, armlite.OpFDiv:
		a := math.Float32frombits(m.R[in.Rn])
		b := math.Float32frombits(m.op2(in))
		var r float32
		switch in.Op {
		case armlite.OpFAdd:
			r = a + b
		case armlite.OpFSub:
			r = a - b
		case armlite.OpFMul:
			r = a * b
		case armlite.OpFDiv:
			if b == 0 {
				r = float32(math.Inf(1))
				if a < 0 {
					r = float32(math.Inf(-1))
				} else if a == 0 {
					r = float32(math.NaN())
				}
			} else {
				r = a / b
			}
		}
		m.R[in.Rd] = math.Float32bits(r)
		m.Ticks += fpTicks(in.Op)
		m.Counts.FP++

	case armlite.OpFCmp:
		a := math.Float32frombits(m.R[in.Rn])
		b := math.Float32frombits(m.op2(in))
		m.F.N = a < b
		m.F.Z = a == b
		m.F.C = a >= b
		m.F.V = a != a || b != b // unordered
		m.Ticks += fpTicks(in.Op)
		m.Counts.FP++

	case armlite.OpLdr:
		addr, newBase, wb := m.effAddr(&in.Mem)
		v, err := m.Mem.Load(addr, in.DT.Size())
		if err != nil {
			return err
		}
		m.R[in.Rd] = v
		if wb {
			m.R[in.Mem.Base] = newBase
		}
		m.Ticks += m.issueTicks() + m.Caches.Access(addr, in.DT.Size())
		m.Counts.Loads++
		rec.addMem(addr, in.DT.Size(), false)

	case armlite.OpStr:
		addr, newBase, wb := m.effAddr(&in.Mem)
		if err := m.Mem.Store(addr, in.DT.Size(), m.R[in.Rd]); err != nil {
			return err
		}
		if wb {
			m.R[in.Mem.Base] = newBase
		}
		m.Ticks += m.issueTicks() + m.Caches.AccessWrite(addr, in.DT.Size())
		m.Counts.Stores++
		rec.addMem(addr, in.DT.Size(), true)
		if m.StoreHook != nil {
			m.StoreHook(addr, in.DT.Size())
		}

	case armlite.OpB:
		m.Counts.Branches++
		m.Counts.Total++
		if in.Cond.Holds(m.F) {
			rec.Taken = true
			m.PC = in.Target
			m.Ticks += branchTakenTicks
		} else {
			m.PC++
			m.Ticks += m.issueTicks()
		}
		return nil

	case armlite.OpBL:
		m.R[armlite.LR] = uint32(m.PC + 1)
		rec.Taken = true
		m.PC = in.Target
		m.Ticks += branchTakenTicks
		m.Counts.Branches++
		m.Counts.Total++
		return nil

	case armlite.OpBX:
		rec.Taken = true
		m.PC = int(m.R[in.Rn])
		m.Ticks += branchTakenTicks
		m.Counts.Branches++
		m.Counts.Total++
		if m.PC < 0 || m.PC > len(m.Prog.Code) {
			return fmt.Errorf("%w: bx to %d", ErrInvalidPC, m.PC)
		}
		return nil

	default:
		if in.Op.IsVector() {
			return m.execVector(in, rec)
		}
		return fmt.Errorf("%w: %v", ErrUnimplemented, in.Op)
	}

	m.Counts.Total++
	m.PC++
	return nil
}

// execVector executes one NEON instruction on the vector unit.
func (m *Machine) execVector(in *armlite.Instr, rec *Record) error {
	u := m.NEON
	switch in.Op {
	case armlite.OpVld1:
		addr, newBase, wb := m.effAddr(&in.Mem)
		v, err := neon.LoadVec(m.Mem, addr)
		if err != nil {
			return err
		}
		u.Q[in.Qd] = v
		if wb {
			m.R[in.Mem.Base] = newBase
		}
		m.Ticks += m.cfg.NEON.MemIssueTicks + m.Caches.Access(addr, armlite.VectorBytes)
		u.Loads++
		m.Counts.VecLoads++
		rec.addMem(addr, armlite.VectorBytes, false)

	case armlite.OpVst1:
		addr, newBase, wb := m.effAddr(&in.Mem)
		if err := neon.StoreVec(m.Mem, addr, u.Q[in.Qd]); err != nil {
			return err
		}
		if wb {
			m.R[in.Mem.Base] = newBase
		}
		m.Ticks += m.cfg.NEON.MemIssueTicks + m.Caches.AccessWrite(addr, armlite.VectorBytes)
		u.Stores++
		m.Counts.VecStores++
		rec.addMem(addr, armlite.VectorBytes, true)
		if m.StoreHook != nil {
			m.StoreHook(addr, armlite.VectorBytes)
		}

	case armlite.OpVdup:
		u.Q[in.Qd] = neon.Splat(in.DT, m.R[in.Rn])
		m.Ticks += m.cfg.NEON.DupTicks
		m.Counts.VecDups++

	default:
		// Not every vector form has all three register operands
		// (shifts have no Qm, vmov no Qn); absent slots read as zero.
		reg := func(v armlite.VReg) neon.Vec {
			if v.Valid() {
				return u.Q[v]
			}
			return neon.Vec{}
		}
		out, err := neon.ALU(in.Op, in.DT, reg(in.Qd), reg(in.Qn), reg(in.Qm), in.Imm)
		if err != nil {
			return err
		}
		u.Q[in.Qd] = out
		m.Ticks += m.cfg.NEON.OpIssueTicks
		u.Ops++
		m.Counts.VecOps++
	}
	m.Counts.Total++
	m.PC++
	return nil
}

func (r *Record) addMem(addr uint32, size int, store bool) {
	if r.Nmem < len(r.Mem) {
		r.Mem[r.Nmem] = MemAccess{Addr: addr, Size: size, Store: store}
		r.Nmem++
	}
}
