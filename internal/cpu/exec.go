package cpu

import (
	"fmt"
	"math"

	"repro/internal/armlite"
	"repro/internal/neon"
)

// setNZ updates N and Z from a result.
func (m *Machine) setNZ(v uint32) {
	m.F.N = int32(v) < 0
	m.F.Z = v == 0
}

// subFlags sets full NZCV for a-b (the cmp/subs semantics).
func (m *Machine) subFlags(a, b uint32) {
	r := a - b
	m.setNZ(r)
	m.F.C = a >= b // no borrow
	m.F.V = (int32(a) >= 0) != (int32(b) >= 0) && (int32(r) >= 0) != (int32(a) >= 0)
}

// addFlags sets full NZCV for a+b (the cmn/adds semantics).
func (m *Machine) addFlags(a, b uint32) {
	r := a + b
	m.setNZ(r)
	m.F.C = r < a
	m.F.V = (int32(a) >= 0) == (int32(b) >= 0) && (int32(r) >= 0) != (int32(a) >= 0)
}

// op2p resolves the flexible second operand of a kind that keeps the
// imm/reg choice in flImm (long-latency and float ops).
func (m *Machine) op2p(u *pInstr) uint32 {
	if u.fl&flImm != 0 {
		return uint32(u.imm)
	}
	return m.R[u.rm]
}

// exec retires one predecoded instruction. The switch is over the
// dense pKind space, so it compiles to a single indirect jump; every
// case reads only the pInstr fields it needs and updates timing and
// class counters exactly as the pre-predecode interpreter did.
func (m *Machine) exec(u *pInstr, rec *Record) error {
	// Condition squash: a skipped instruction still occupies an issue
	// slot (it is fetched and squashed). flCond is only set on
	// conditional non-branch instructions, so the hot path pays one
	// bit test. pB evaluates its own condition.
	if u.fl&flCond != 0 && !u.cond.Holds(m.F) {
		m.Ticks += m.issue
		m.Counts.Total++
		m.Counts.Nops++
		m.PC++
		return nil
	}

	switch u.kind {
	case pNop:
		m.Ticks += m.issue
		m.Counts.Nops++

	case pHalt:
		m.Halted = true
		m.Ticks += m.issue

	case pMovImm:
		m.R[u.rd] = uint32(u.imm)
		if u.fl&flSet != 0 {
			m.setNZ(uint32(u.imm))
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pMovReg:
		v := m.R[u.rm]
		m.R[u.rd] = v
		if u.fl&flSet != 0 {
			m.setNZ(v)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pMvnImm:
		v := ^uint32(u.imm)
		m.R[u.rd] = v
		if u.fl&flSet != 0 {
			m.setNZ(v)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pMvnReg:
		v := ^m.R[u.rm]
		m.R[u.rd] = v
		if u.fl&flSet != 0 {
			m.setNZ(v)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pAddImm:
		a, b := m.R[u.rn], uint32(u.imm)
		m.R[u.rd] = a + b
		if u.fl&flSet != 0 {
			m.addFlags(a, b)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pAddReg:
		a, b := m.R[u.rn], m.R[u.rm]
		m.R[u.rd] = a + b
		if u.fl&flSet != 0 {
			m.addFlags(a, b)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pSubImm:
		a, b := m.R[u.rn], uint32(u.imm)
		m.R[u.rd] = a - b
		if u.fl&flSet != 0 {
			m.subFlags(a, b)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pSubReg:
		a, b := m.R[u.rn], m.R[u.rm]
		m.R[u.rd] = a - b
		if u.fl&flSet != 0 {
			m.subFlags(a, b)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pRsbImm:
		a, b := m.R[u.rn], uint32(u.imm)
		m.R[u.rd] = b - a
		if u.fl&flSet != 0 {
			m.subFlags(b, a)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pRsbReg:
		a, b := m.R[u.rn], m.R[u.rm]
		m.R[u.rd] = b - a
		if u.fl&flSet != 0 {
			m.subFlags(b, a)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pAndImm:
		r := m.R[u.rn] & uint32(u.imm)
		m.R[u.rd] = r
		if u.fl&flSet != 0 {
			m.setNZ(r)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pAndReg:
		r := m.R[u.rn] & m.R[u.rm]
		m.R[u.rd] = r
		if u.fl&flSet != 0 {
			m.setNZ(r)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pOrrImm:
		r := m.R[u.rn] | uint32(u.imm)
		m.R[u.rd] = r
		if u.fl&flSet != 0 {
			m.setNZ(r)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pOrrReg:
		r := m.R[u.rn] | m.R[u.rm]
		m.R[u.rd] = r
		if u.fl&flSet != 0 {
			m.setNZ(r)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pEorImm:
		r := m.R[u.rn] ^ uint32(u.imm)
		m.R[u.rd] = r
		if u.fl&flSet != 0 {
			m.setNZ(r)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pEorReg:
		r := m.R[u.rn] ^ m.R[u.rm]
		m.R[u.rd] = r
		if u.fl&flSet != 0 {
			m.setNZ(r)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pBicImm:
		r := m.R[u.rn] &^ uint32(u.imm)
		m.R[u.rd] = r
		if u.fl&flSet != 0 {
			m.setNZ(r)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pBicReg:
		r := m.R[u.rn] &^ m.R[u.rm]
		m.R[u.rd] = r
		if u.fl&flSet != 0 {
			m.setNZ(r)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pLslImm:
		r := m.R[u.rn] << (uint32(u.imm) & 31)
		m.R[u.rd] = r
		if u.fl&flSet != 0 {
			m.setNZ(r)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pLslReg:
		r := m.R[u.rn] << (m.R[u.rm] & 31)
		m.R[u.rd] = r
		if u.fl&flSet != 0 {
			m.setNZ(r)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pLsrImm:
		r := m.R[u.rn] >> (uint32(u.imm) & 31)
		m.R[u.rd] = r
		if u.fl&flSet != 0 {
			m.setNZ(r)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pLsrReg:
		r := m.R[u.rn] >> (m.R[u.rm] & 31)
		m.R[u.rd] = r
		if u.fl&flSet != 0 {
			m.setNZ(r)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pAsrImm:
		r := uint32(int32(m.R[u.rn]) >> (uint32(u.imm) & 31))
		m.R[u.rd] = r
		if u.fl&flSet != 0 {
			m.setNZ(r)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pAsrReg:
		r := uint32(int32(m.R[u.rn]) >> (m.R[u.rm] & 31))
		m.R[u.rd] = r
		if u.fl&flSet != 0 {
			m.setNZ(r)
		}
		m.Ticks += m.issue
		m.Counts.ALU++

	case pMul:
		r := m.R[u.rn] * m.op2p(u)
		m.R[u.rd] = r
		if u.fl&flSet != 0 {
			m.setNZ(r)
		}
		m.Ticks += mulTicks
		m.Counts.Mul++

	case pMla:
		m.R[u.rd] = m.R[u.rn]*m.R[u.rm] + m.R[u.ra]
		m.Ticks += mulTicks
		m.Counts.Mul++

	case pSdiv:
		d := int32(m.op2p(u))
		if d == 0 {
			m.R[u.rd] = 0
		} else {
			m.R[u.rd] = uint32(int32(m.R[u.rn]) / d)
		}
		m.Ticks += divTicks
		m.Counts.Div++

	case pUdiv:
		d := m.op2p(u)
		if d == 0 {
			m.R[u.rd] = 0
		} else {
			m.R[u.rd] = m.R[u.rn] / d
		}
		m.Ticks += divTicks
		m.Counts.Div++

	case pCmpImm:
		m.subFlags(m.R[u.rn], uint32(u.imm))
		m.Ticks += m.issue
		m.Counts.ALU++

	case pCmpReg:
		m.subFlags(m.R[u.rn], m.R[u.rm])
		m.Ticks += m.issue
		m.Counts.ALU++

	case pCmnImm:
		m.addFlags(m.R[u.rn], uint32(u.imm))
		m.Ticks += m.issue
		m.Counts.ALU++

	case pCmnReg:
		m.addFlags(m.R[u.rn], m.R[u.rm])
		m.Ticks += m.issue
		m.Counts.ALU++

	case pTstImm:
		m.setNZ(m.R[u.rn] & uint32(u.imm))
		m.Ticks += m.issue
		m.Counts.ALU++

	case pTstReg:
		m.setNZ(m.R[u.rn] & m.R[u.rm])
		m.Ticks += m.issue
		m.Counts.ALU++

	case pFAdd, pFSub, pFMul, pFDiv:
		a := math.Float32frombits(m.R[u.rn])
		b := math.Float32frombits(m.op2p(u))
		var r float32
		switch u.kind {
		case pFAdd:
			r = a + b
		case pFSub:
			r = a - b
		case pFMul:
			r = a * b
		case pFDiv:
			if b == 0 {
				r = float32(math.Inf(1))
				if a < 0 {
					r = float32(math.Inf(-1))
				} else if a == 0 {
					r = float32(math.NaN())
				}
			} else {
				r = a / b
			}
		}
		m.R[u.rd] = math.Float32bits(r)
		m.Ticks += fpTicks(u.op)
		m.Counts.FP++

	case pFCmp:
		a := math.Float32frombits(m.R[u.rn])
		b := math.Float32frombits(m.op2p(u))
		m.F.N = a < b
		m.F.Z = a == b
		m.F.C = a >= b
		m.F.V = a != a || b != b // unordered
		m.Ticks += fpTicks(u.op)
		m.Counts.FP++

	case pLdrOff:
		return m.load(u, rec, m.R[u.rn]+uint32(u.imm), noWriteback, 0)
	case pLdrPre:
		addr := m.R[u.rn] + uint32(u.imm)
		return m.load(u, rec, addr, u.rn, addr)
	case pLdrPost:
		addr := m.R[u.rn]
		return m.load(u, rec, addr, u.rn, addr+uint32(u.imm))
	case pLdrRegOff:
		return m.load(u, rec, m.R[u.rn]+(m.R[u.rm]<<u.reshift()), noWriteback, 0)

	case pStrOff:
		return m.store(u, rec, m.R[u.rn]+uint32(u.imm), noWriteback, 0)
	case pStrPre:
		addr := m.R[u.rn] + uint32(u.imm)
		return m.store(u, rec, addr, u.rn, addr)
	case pStrPost:
		addr := m.R[u.rn]
		return m.store(u, rec, addr, u.rn, addr+uint32(u.imm))
	case pStrRegOff:
		return m.store(u, rec, m.R[u.rn]+(m.R[u.rm]<<u.reshift()), noWriteback, 0)

	case pB:
		m.Counts.Branches++
		m.Counts.Total++
		if u.cond.Holds(m.F) {
			rec.Taken = true
			m.PC = int(u.target)
			m.Ticks += branchTakenTicks
		} else {
			m.PC++
			m.Ticks += m.issue
		}
		return nil

	case pBL:
		m.R[armlite.LR] = uint32(m.PC + 1)
		rec.Taken = true
		m.PC = int(u.target)
		m.Ticks += branchTakenTicks
		m.Counts.Branches++
		m.Counts.Total++
		return nil

	case pBX:
		rec.Taken = true
		m.PC = int(m.R[u.rn])
		m.Ticks += branchTakenTicks
		m.Counts.Branches++
		m.Counts.Total++
		if m.PC < 0 || m.PC > len(m.Prog.Code) {
			return fmt.Errorf("%w: bx to %d", ErrInvalidPC, m.PC)
		}
		return nil

	case pVld1, pVst1, pVdup, pVALU:
		return m.execVector(u, rec)

	default:
		return fmt.Errorf("%w: %v", ErrUnimplemented, u.op)
	}

	m.Counts.Total++
	m.PC++
	return nil
}

// noWriteback marks a memory access with no base-register update.
const noWriteback = 0xFF

// load retires a scalar load: memory read, optional base writeback,
// cache timing, counters and the observation record.
func (m *Machine) load(u *pInstr, rec *Record, addr uint32, wbReg uint8, wbVal uint32) error {
	size := int(u.size)
	v, err := m.Mem.Load(addr, size)
	if err != nil {
		return err
	}
	m.R[u.rd] = v
	if wbReg != noWriteback {
		m.R[wbReg] = wbVal
	}
	m.Ticks += m.issue + m.Caches.Access(addr, size)
	m.Counts.Loads++
	rec.addMem(addr, size, false)
	m.Counts.Total++
	m.PC++
	return nil
}

// store retires a scalar store.
func (m *Machine) store(u *pInstr, rec *Record, addr uint32, wbReg uint8, wbVal uint32) error {
	size := int(u.size)
	if err := m.Mem.Store(addr, size, m.R[u.rd]); err != nil {
		return err
	}
	if wbReg != noWriteback {
		m.R[wbReg] = wbVal
	}
	m.Ticks += m.issue + m.Caches.AccessWrite(addr, size)
	m.Counts.Stores++
	rec.addMem(addr, size, true)
	if m.StoreHook != nil {
		m.StoreHook(addr, size)
	}
	m.Counts.Total++
	m.PC++
	return nil
}

// vecAddr resolves a vector memory operand's effective address and
// applies base writeback.
func (m *Machine) vecAddr(u *pInstr) uint32 {
	base := m.R[u.rn]
	switch u.am {
	case amAdv:
		m.R[u.rn] = base + armlite.VectorBytes
		return base
	case amPost:
		m.R[u.rn] = base + uint32(u.imm)
		return base
	case amRegOff:
		return base + (m.R[u.rm] << u.reshift())
	default:
		return base + uint32(u.imm)
	}
}

// execVector executes one NEON instruction on the vector unit.
func (m *Machine) execVector(u *pInstr, rec *Record) error {
	nu := m.NEON
	switch u.kind {
	case pVld1:
		addr := m.vecAddr(u)
		v, err := neon.LoadVec(m.Mem, addr)
		if err != nil {
			return err
		}
		nu.Q[u.qd] = v
		m.Ticks += m.cfg.NEON.MemIssueTicks + m.Caches.Access(addr, armlite.VectorBytes)
		nu.Loads++
		m.Counts.VecLoads++
		rec.addMem(addr, armlite.VectorBytes, false)

	case pVst1:
		addr := m.vecAddr(u)
		if err := neon.StoreVec(m.Mem, addr, nu.Q[u.qd]); err != nil {
			return err
		}
		m.Ticks += m.cfg.NEON.MemIssueTicks + m.Caches.AccessWrite(addr, armlite.VectorBytes)
		nu.Stores++
		m.Counts.VecStores++
		rec.addMem(addr, armlite.VectorBytes, true)
		if m.StoreHook != nil {
			m.StoreHook(addr, armlite.VectorBytes)
		}

	case pVdup:
		nu.Q[u.qd] = neon.Splat(u.dt, m.R[u.rn])
		m.Ticks += m.cfg.NEON.DupTicks
		m.Counts.VecDups++

	default:
		if !u.op.IsVector() {
			return fmt.Errorf("%w: %v", ErrUnimplemented, u.op)
		}
		// Not every vector form has all three register operands
		// (shifts have no Qm, vmov no Qn); absent slots read as zero.
		var qd, qn, qm neon.Vec
		if u.qd != uint8(armlite.NoVReg) {
			qd = nu.Q[u.qd]
		}
		if u.qn != uint8(armlite.NoVReg) {
			qn = nu.Q[u.qn]
		}
		if u.qm != uint8(armlite.NoVReg) {
			qm = nu.Q[u.qm]
		}
		out, err := neon.ALU(u.op, u.dt, qd, qn, qm, u.imm)
		if err != nil {
			return err
		}
		nu.Q[u.qd] = out
		m.Ticks += m.cfg.NEON.OpIssueTicks
		nu.Ops++
		m.Counts.VecOps++
	}
	m.Counts.Total++
	m.PC++
	return nil
}

func (r *Record) addMem(addr uint32, size int, store bool) {
	if r.Nmem < len(r.Mem) {
		r.Mem[r.Nmem] = MemAccess{Addr: addr, Size: size, Store: store}
		r.Nmem++
	}
}
