package cpu

import (
	"testing"

	"repro/internal/asm"
)

func TestCheckpointRollbackRestoresMachine(t *testing.T) {
	prog := asm.MustParse("ckpt", `
        mov   r5, #0x1000
        mov   r0, #0
loop:   str   r0, [r5], #4
        add   r0, r0, #1
        cmp   r0, #8
        blt   loop
        halt
`)
	m := MustNew(prog, DefaultConfig())

	// Run two steps, checkpoint, run to completion, roll back.
	var rec Record
	for i := 0; i < 2; i++ {
		if err := m.Step(&rec); err != nil {
			t.Fatal(err)
		}
	}
	cp := m.Checkpoint()
	want := *cp
	for !m.Halted {
		if err := m.Step(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := m.Mem.Load(0x1000, 4); v != 0 {
		t.Fatalf("pre-rollback mem[0x1000] = %d, want 0", v)
	}
	m.Rollback(cp)

	if m.R != want.R || m.F != want.F || m.PC != want.PC || m.Halted != want.Halted {
		t.Errorf("architectural state not restored: pc=%d r0=%d", m.PC, m.R[0])
	}
	if m.Ticks != want.Ticks || m.Steps != want.Steps || m.Counts != want.Counts {
		t.Errorf("accounting not restored: ticks=%d steps=%d", m.Ticks, m.Steps)
	}
	for a := uint32(0x1000); a < 0x1020; a += 4 {
		if v, _ := m.Mem.Load(a, 4); v != 0 {
			t.Errorf("mem[%#x] = %d, want 0 after rollback", a, v)
		}
	}

	// The machine must re-execute to the same final state.
	if err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 8; i++ {
		if v, _ := m.Mem.Load(0x1000+4*i, 4); v != i {
			t.Errorf("mem word %d = %d, want %d", i, v, i)
		}
	}
}

func TestCheckpointReleaseKeepsState(t *testing.T) {
	prog := asm.MustParse("rel", `
        mov   r5, #0x1000
        mov   r0, #7
        str   r0, [r5]
        halt
`)
	m := MustNew(prog, DefaultConfig())
	cp := m.Checkpoint()
	if err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	m.Release(cp)
	if v, _ := m.Mem.Load(0x1000, 4); v != 7 {
		t.Errorf("mem = %d, want 7", v)
	}
	// A new checkpoint can open after release.
	m.Release(m.Checkpoint())
}

func TestStoreHookSeesScalarStores(t *testing.T) {
	prog := asm.MustParse("hook", `
        mov   r5, #0x2000
        mov   r0, #1
        str   r0, [r5], #4
        strb  r0, [r5]
        halt
`)
	m := MustNew(prog, DefaultConfig())
	var got []uint32
	m.StoreHook = func(addr uint32, size int) { got = append(got, addr, uint32(size)) }
	if err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	want := []uint32{0x2000, 4, 0x2004, 1}
	if len(got) != len(want) {
		t.Fatalf("hook calls = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hook calls = %v, want %v", got, want)
		}
	}
}
