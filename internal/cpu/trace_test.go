package cpu

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/asm"
)

func TestTracer(t *testing.T) {
	prog := asm.MustAssemble("t", `
        mov  r1, #0x100
        str  r1, [r1]
        ldr  r2, [r1]
        cmp  r2, #0
        bne  end
        nop
end:    halt`)
	m := MustNew(prog, tinyConfig())
	var buf bytes.Buffer
	tr := &Tracer{W: &buf}
	if err := m.Run(tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "W[0x100:4]") {
		t.Errorf("store access missing:\n%s", out)
	}
	if !strings.Contains(out, "R[0x100:4]") {
		t.Errorf("load access missing:\n%s", out)
	}
	if !strings.Contains(out, "taken→6") {
		t.Errorf("branch annotation missing:\n%s", out)
	}
	if tr.Count() != m.Steps {
		t.Errorf("count = %d, steps = %d", tr.Count(), m.Steps)
	}
}

func TestTracerLimit(t *testing.T) {
	prog := asm.MustAssemble("t", "nop\nnop\nnop\nnop\nhalt")
	m := MustNew(prog, tinyConfig())
	var buf bytes.Buffer
	tr := &Tracer{W: &buf, Limit: 2}
	if err := m.Run(tr); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Errorf("printed %d lines, want 2", got)
	}
}
