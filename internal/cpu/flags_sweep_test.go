package cpu

import (
	"testing"

	"repro/internal/armlite"
	"repro/internal/asm"
)

// flagCorners are the operand values where NZCV computations break
// first: zero, the sign boundary, both extremes, and values adjacent
// to each.
var flagCorners = []uint32{
	0, 1, 2,
	0x7ffffffe, 0x7fffffff,
	0x80000000, 0x80000001,
	0xfffffffe, 0xffffffff,
	0x40000000, 0xc0000000,
}

// refSubFlags is an independent formulation of the ARM ARM's SUBS
// flag semantics: borrow from the 64-bit unsigned difference, overflow
// from the 64-bit signed difference leaving int32 range.
func refSubFlags(a, b uint32) (n, z, c, v bool) {
	r := a - b
	n = int32(r) < 0
	z = r == 0
	c = uint64(a) >= uint64(b)
	wide := int64(int32(a)) - int64(int32(b))
	v = wide != int64(int32(r))
	return
}

// refAddFlags is the same for ADDS/CMN: carry out of bit 31, overflow
// when the signed 64-bit sum leaves int32 range.
func refAddFlags(a, b uint32) (n, z, c, v bool) {
	r := a + b
	n = int32(r) < 0
	z = r == 0
	c = uint64(a)+uint64(b) > 0xffffffff
	wide := int64(int32(a)) + int64(int32(b))
	v = wide != int64(int32(r))
	return
}

func checkFlags(t *testing.T, what string, a, b uint32, f armlite.Flags, n, z, c, v bool) {
	t.Helper()
	if f.N != n || f.Z != z || f.C != c || f.V != v {
		t.Errorf("%s a=%#x b=%#x: NZCV = %v%v%v%v, want %v%v%v%v",
			what, a, b, f.N, f.Z, f.C, f.V, n, z, c, v)
	}
}

// TestFlagsCornerSweep drives cmp and cmn through the interpreter over
// the full cross product of corner operands, checking all four flags
// against wide-integer references — the audit the ISSUE asks for on
// subFlags/addFlags.
func TestFlagsCornerSweep(t *testing.T) {
	cmp := asm.MustAssemble("cmp", "cmp r0, r1\nhalt")
	cmn := asm.MustAssemble("cmn", "cmn r0, r1\nhalt")
	for _, a := range flagCorners {
		for _, b := range flagCorners {
			m := MustNew(cmp, tinyConfig())
			m.R[armlite.R0], m.R[armlite.R1] = a, b
			if err := m.Run(nil); err != nil {
				t.Fatal(err)
			}
			n, z, c, v := refSubFlags(a, b)
			checkFlags(t, "cmp", a, b, m.F, n, z, c, v)

			m = MustNew(cmn, tinyConfig())
			m.R[armlite.R0], m.R[armlite.R1] = a, b
			if err := m.Run(nil); err != nil {
				t.Fatal(err)
			}
			n, z, c, v = refAddFlags(a, b)
			checkFlags(t, "cmn", a, b, m.F, n, z, c, v)
		}
	}
}

// TestFlagsSubsRsbsCorners checks the writing forms (subs, rsbs, adds)
// agree with their comparing counterparts on the corner set, and that
// rsbs computes b-a flags, not a-b.
func TestFlagsSubsRsbsCorners(t *testing.T) {
	subs := asm.MustAssemble("subs", "subs r2, r0, r1\nhalt")
	rsbs := asm.MustAssemble("rsbs", "rsbs r2, r0, r1\nhalt")
	adds := asm.MustAssemble("adds", "adds r2, r0, r1\nhalt")
	for _, a := range flagCorners {
		for _, b := range flagCorners {
			m := MustNew(subs, tinyConfig())
			m.R[armlite.R0], m.R[armlite.R1] = a, b
			if err := m.Run(nil); err != nil {
				t.Fatal(err)
			}
			n, z, c, v := refSubFlags(a, b)
			checkFlags(t, "subs", a, b, m.F, n, z, c, v)
			if m.R[armlite.R2] != a-b {
				t.Errorf("subs result = %#x, want %#x", m.R[armlite.R2], a-b)
			}

			m = MustNew(rsbs, tinyConfig())
			m.R[armlite.R0], m.R[armlite.R1] = a, b
			if err := m.Run(nil); err != nil {
				t.Fatal(err)
			}
			n, z, c, v = refSubFlags(b, a)
			checkFlags(t, "rsbs", a, b, m.F, n, z, c, v)

			m = MustNew(adds, tinyConfig())
			m.R[armlite.R0], m.R[armlite.R1] = a, b
			if err := m.Run(nil); err != nil {
				t.Fatal(err)
			}
			n, z, c, v = refAddFlags(a, b)
			checkFlags(t, "adds", a, b, m.F, n, z, c, v)
		}
	}
}
