package cpu

import (
	"testing"

	"repro/internal/asm"
)

// TestStepZeroAlloc is the allocation-regression gate for the
// interpreter hot path: once a machine is built, stepping it must not
// allocate — not for the predecoded dispatch, not for the Record fill,
// not for cache accesses. A single stray allocation per step costs
// more than the instruction it models and drags GC pauses into the
// simulated timing, so this is pinned to exactly zero.
func TestStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	// An endless loop over every hot instruction class: loads and
	// stores in all scalar addressing modes, ALU ops, compares,
	// conditional and unconditional branches.
	prog, err := asm.Parse("hot", `
start:  mov   r0, #0x100
        mov   r4, #7
loop:   ldr   r2, [r0]
        add   r2, r2, r4
        str   r2, [r0], #4
        ldr   r3, [r0, #4]!
        sub   r3, r3, #1
        str   r3, [r0, #-4]
        cmp   r0, #0x200
        blt   loop
        b     start
`)
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(prog, tinyConfig())
	m.cfg.MaxSteps = 1 << 40
	var rec Record
	// Warm up so lazy state (nothing today; insurance for tomorrow)
	// is populated before measuring.
	for i := 0; i < 1000; i++ {
		if err := m.Step(&rec); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 1000; i++ {
			if err := m.Step(&rec); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("Step allocates: %v allocs per 1000 steps, want 0", avg)
	}
}

// TestRunQuietZeroAlloc pins the observer-free Run loop the scalar
// benchmarks and goldens use: beyond the one Record on Run's frame,
// running a built machine to completion must not allocate.
func TestRunQuietZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	prog, err := asm.Parse("sum", `
        mov   r0, #0x100
        mov   r1, #0
        mov   r2, #0
loop:   ldr   r3, [r0], #4
        add   r1, r1, r3
        add   r2, r2, #1
        cmp   r2, #64
        blt   loop
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(prog, tinyConfig())
	avg := testing.AllocsPerRun(20, func() {
		m.Halted = false
		m.PC = 0
		if err := m.Run(nil); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("Run(nil) allocates: %v allocs per run, want 0", avg)
	}
}
