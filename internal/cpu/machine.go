// Package cpu implements the scalar processor model the DSA couples
// to: an ARMv7-flavoured core executing armlite programs functionally,
// with a trace-level timing model standing in for the dissertation's
// gem5 O3CPU (2-wide superscalar, 1 GHz, 64 KB L1 / 512 KB L2 LRU).
//
// The machine exposes exactly what the DSA hardware taps in Fig. 31:
// the stream of retired instructions with their program-counter values
// and data-memory addresses. External drivers step the machine and feed
// each Record to observers; the dsa package intervenes between steps to
// switch execution onto the NEON engine.
package cpu

import (
	"fmt"

	"repro/internal/armlite"
	"repro/internal/mem"
	"repro/internal/neon"
)

// TicksPerCycle is the tick granularity: 10 ticks = 1 core cycle at
// 1 GHz. Sub-cycle costs (2-wide issue) stay integral this way.
const TicksPerCycle = 10

// Config parameterizes the machine.
type Config struct {
	// Superscalar issue width; the effective issue cost of simple
	// operations is one cycle divided by this width. Default 2,
	// matching the dissertation's "Superscalar Width: 2 wide".
	Width int
	// Hierarchy configures the data-cache timing model.
	Hierarchy mem.HierarchyConfig
	// NEON configures the vector engine timing.
	NEON neon.Timing
	// MaxSteps guards against runaway programs (0 = 500M).
	MaxSteps uint64
	// MemBytes sizes the flat memory (0 = mem.DefaultSize).
	MemBytes int
}

// DefaultConfig returns the paper's system setup.
func DefaultConfig() Config {
	return Config{
		Width:     2,
		Hierarchy: mem.DefaultHierarchy(),
		NEON:      neon.DefaultTiming(),
		MaxSteps:  500_000_000,
	}
}

// MemAccess is one data-memory reference made by an instruction.
type MemAccess struct {
	Addr  uint32
	Size  int
	Store bool
}

// Record describes one retired instruction — the DSA's observation
// feed. PC values are instruction indices (the dissertation's
// "instruction addresses").
//
// Instr points into the machine's program, so filling a Record per
// step costs one pointer write instead of a ~100-byte struct copy.
// The pointer is stable for the lifetime of the machine: the program
// is immutable once a Machine is built (rewriting passes like the
// auto-vectorizer clone before mutating), so observers may retain it
// across Step calls.
type Record struct {
	Seq    uint64 // dynamic instruction number
	PC     int
	Instr  *armlite.Instr
	Taken  bool // branch outcome (false for non-branches)
	NextPC int
	Mem    [2]MemAccess // capacity for straddling ops; Nmem used
	Nmem   int
}

// Counts aggregates retired-instruction classes; the energy model
// consumes these.
type Counts struct {
	Total     uint64
	ALU       uint64 // integer data processing incl. compares
	Mul       uint64
	Div       uint64
	FP        uint64
	Loads     uint64
	Stores    uint64
	Branches  uint64
	Nops      uint64
	VecOps    uint64
	VecLoads  uint64
	VecStores uint64
	VecDups   uint64
}

// Machine is the simulated processor.
type Machine struct {
	Prog   *armlite.Program
	Mem    *mem.Memory
	Caches *mem.Hierarchy
	NEON   *neon.Unit

	R      [armlite.NumRegs]uint32
	F      armlite.Flags
	PC     int
	Halted bool

	Ticks  int64 // wall-clock time in ticks
	Steps  uint64
	Counts Counts

	// StoreHook, when set, is called after every committed data-memory
	// store (scalar str and vector vst1) with its address and width —
	// the tap the differential oracle uses to learn a scalar replay's
	// touched-memory footprint.
	StoreHook func(addr uint32, size int)

	cfg Config

	// cpFree is the single recycled Checkpoint (at most one can be
	// open, so one slot suffices); see checkpoint.go.
	cpFree *Checkpoint

	// Hot-path state, fixed at construction: the predecoded program
	// (see predecode.go) and the per-issue tick cost (TicksPerCycle /
	// Width, precomputed so the step loop doesn't divide).
	pcode []pInstr
	issue int64

	// Cancellation hook (SetCancelCheck). cancelLeft counts down per
	// Step so the hook itself — typically context.Context.Err — runs
	// only once every cancelEvery instructions; the steady-state cost
	// is one decrement and compare.
	cancelFn    func() error
	cancelEvery uint64
	cancelLeft  uint64

	// runHook (SetRunHook) fires between retired instructions in the
	// Run/runQuiet loops only — never inside Step — so snapshot writers
	// observe the machine exclusively at step boundaries.
	runHook func() error
}

// New builds a machine for prog. The program must validate.
func New(prog *armlite.Program, cfg Config) (*Machine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if cfg.Width <= 0 {
		cfg.Width = 2
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 500_000_000
	}
	if cfg.Hierarchy.L1.SizeBytes == 0 {
		cfg.Hierarchy = mem.DefaultHierarchy()
	}
	if cfg.NEON.OpIssueTicks == 0 {
		cfg.NEON = neon.DefaultTiming()
	}
	m := &Machine{
		Prog:   prog,
		Mem:    mem.New(cfg.MemBytes),
		Caches: mem.NewHierarchy(cfg.Hierarchy),
		NEON:   neon.New(),
		cfg:    cfg,
		pcode:  predecode(prog),
		issue:  int64(TicksPerCycle / cfg.Width),
	}
	return m, nil
}

// MustNew is New for known-good programs; panics on error.
func MustNew(prog *armlite.Program, cfg Config) *Machine {
	m, err := New(prog, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// DefaultCancelEvery is the step interval between cancellation checks
// when SetCancelCheck is called with every == 0 — frequent enough that
// a deadline stops a runaway loop within microseconds, rare enough
// that the hot path only pays a counter decrement.
const DefaultCancelEvery = 4096

// SetCancelCheck installs a cancellation hook: every `every` retired
// instructions Step calls check, and a non-nil result aborts the run
// with an error wrapping both ErrCanceled and check's error. Pass a
// context's Err method to plumb deadlines and batch shutdown into the
// step loop; pass nil to remove the hook. The countdown is independent
// of Steps, so checkpoint rollbacks (which restore Steps) cannot
// starve or double-fire the check.
func (m *Machine) SetCancelCheck(check func() error, every uint64) {
	if every == 0 {
		every = DefaultCancelEvery
	}
	m.cancelFn = check
	m.cancelEvery = every
	m.cancelLeft = every
}

// Observer receives each retired instruction.
type Observer interface {
	Observe(r *Record)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(r *Record)

// Observe implements Observer.
func (f ObserverFunc) Observe(r *Record) { f(r) }

// Run steps the machine to completion, feeding each record to obs
// (which may be nil).
func (m *Machine) Run(obs Observer) error {
	if obs == nil {
		return m.runQuiet()
	}
	var rec Record
	for !m.Halted {
		if m.runHook != nil {
			if err := m.runHook(); err != nil {
				return err
			}
		}
		if err := m.Step(&rec); err != nil {
			return err
		}
		obs.Observe(&rec)
	}
	return nil
}

// runQuiet is the observer-free run loop. With nobody reading the
// Record, the per-step fill (in particular the Instr pointer store,
// which drags a GC write barrier into the loop) is dead work, so this
// loop skips it; architectural state, timing and counters advance
// exactly as Step does.
func (m *Machine) runQuiet() error {
	var rec Record
	for !m.Halted {
		if m.runHook != nil {
			if err := m.runHook(); err != nil {
				return err
			}
		}
		if m.cancelFn != nil {
			if m.cancelLeft--; m.cancelLeft == 0 {
				m.cancelLeft = m.cancelEvery
				if err := m.cancelFn(); err != nil {
					return fmt.Errorf("%w at pc=%d after %d steps: %w", ErrCanceled, m.PC, m.Steps, err)
				}
			}
		}
		if m.Steps >= m.cfg.MaxSteps {
			return fmt.Errorf("%w: %d steps at pc=%d (runaway loop?)", ErrMaxSteps, m.cfg.MaxSteps, m.PC)
		}
		pc := m.PC
		if uint(pc) >= uint(len(m.pcode)) {
			return fmt.Errorf("%w: pc %d outside program", ErrInvalidPC, pc)
		}
		m.Steps++
		if err := m.exec(&m.pcode[pc], &rec); err != nil {
			return fmt.Errorf("cpu: pc=%d %q: %w", pc, m.Prog.Code[pc].String(), err)
		}
	}
	return nil
}

// RunToBackBranch runs the machine until a taken backward branch (a
// conditional or unconditional B whose target precedes it) is about to
// retire; it retires that branch and returns its target and address
// with hit=true. The machine halting first returns hit=false.
//
// This is the DSA watch-mode fast path: with no analysis in flight the
// engine's Observe is a no-op for every record except a taken backward
// branch (the only event that can start a loop detection), so the
// driver can skip per-step record filling and the observer call
// entirely. Architectural state, timing and counters advance exactly
// as Step does; callers account the skipped observations in bulk from
// the Steps delta. The branch test reads the predecoded form and the
// current flags before execution — semantically identical to checking
// Record.Taken after retirement, since a B never modifies flags.
func (m *Machine) RunToBackBranch() (target, branchPC int, hit bool, err error) {
	var rec Record
	for !m.Halted {
		if m.runHook != nil {
			if err := m.runHook(); err != nil {
				return 0, 0, false, err
			}
		}
		if m.cancelFn != nil {
			if m.cancelLeft--; m.cancelLeft == 0 {
				m.cancelLeft = m.cancelEvery
				if err := m.cancelFn(); err != nil {
					return 0, 0, false, fmt.Errorf("%w at pc=%d after %d steps: %w", ErrCanceled, m.PC, m.Steps, err)
				}
			}
		}
		if m.Steps >= m.cfg.MaxSteps {
			return 0, 0, false, fmt.Errorf("%w: %d steps at pc=%d (runaway loop?)", ErrMaxSteps, m.cfg.MaxSteps, m.PC)
		}
		pc := m.PC
		if uint(pc) >= uint(len(m.pcode)) {
			return 0, 0, false, fmt.Errorf("%w: pc %d outside program", ErrInvalidPC, pc)
		}
		u := &m.pcode[pc]
		surface := u.kind == pB && int(u.target) < pc && u.cond.Holds(m.F)
		m.Steps++
		if err := m.exec(u, &rec); err != nil {
			return 0, 0, false, fmt.Errorf("cpu: pc=%d %q: %w", pc, m.Prog.Code[pc].String(), err)
		}
		if surface {
			return int(u.target), pc, true, nil
		}
	}
	return 0, 0, false, nil
}

// Step retires one instruction, filling rec in place (to avoid a
// per-instruction allocation on the hot path). Dispatch runs over the
// predecoded program; rec.Instr points at the armlite source of the
// retired instruction.
func (m *Machine) Step(rec *Record) error {
	if m.Halted {
		return fmt.Errorf("cpu: machine is halted")
	}
	if m.cancelFn != nil {
		if m.cancelLeft--; m.cancelLeft == 0 {
			m.cancelLeft = m.cancelEvery
			if err := m.cancelFn(); err != nil {
				return fmt.Errorf("%w at pc=%d after %d steps: %w", ErrCanceled, m.PC, m.Steps, err)
			}
		}
	}
	if m.Steps >= m.cfg.MaxSteps {
		return fmt.Errorf("%w: %d steps at pc=%d (runaway loop?)", ErrMaxSteps, m.cfg.MaxSteps, m.PC)
	}
	pc := m.PC
	if uint(pc) >= uint(len(m.pcode)) {
		return fmt.Errorf("%w: pc %d outside program", ErrInvalidPC, pc)
	}
	u := &m.pcode[pc]
	rec.Seq = m.Steps
	rec.PC = pc
	rec.Instr = &m.Prog.Code[pc]
	rec.Taken = false
	rec.Nmem = 0
	m.Steps++

	if err := m.exec(u, rec); err != nil {
		return fmt.Errorf("cpu: pc=%d %q: %w", rec.PC, m.Prog.Code[pc].String(), err)
	}
	rec.NextPC = m.PC
	return nil
}
