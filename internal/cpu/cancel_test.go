package cpu

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/asm"
)

// spinProg is an infinite loop — the shape every guard in this file
// exists to stop.
func spinProg(t *testing.T) *Machine {
	t.Helper()
	prog, err := asm.Parse("spin", "x: b x")
	if err != nil {
		t.Fatal(err)
	}
	return MustNew(prog, Config{MaxSteps: 1 << 30})
}

func TestCancelCheckStopsRunawayLoop(t *testing.T) {
	m := spinProg(t)
	ctx, cancel := context.WithCancel(context.Background())
	m.SetCancelCheck(ctx.Err, 64)
	cancel()
	err := m.Run(nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, should also wrap context.Canceled", err)
	}
	// The check fires on the countdown interval, so an already-canceled
	// context stops the machine within one interval.
	if m.Steps > 64 {
		t.Errorf("machine ran %d steps past an already-canceled context", m.Steps)
	}
}

func TestCancelCheckDeadline(t *testing.T) {
	m := spinProg(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	m.SetCancelCheck(ctx.Err, 0) // 0 = DefaultCancelEvery
	err := m.Run(nil)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

func TestCancelCheckRemovable(t *testing.T) {
	m := spinProg(t)
	m.cfg.MaxSteps = 1000
	m.SetCancelCheck(func() error { return errors.New("boom") }, 1)
	m.SetCancelCheck(nil, 0)
	if err := m.Run(nil); !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("err = %v, want ErrMaxSteps after hook removal", err)
	}
}

func TestCancelCheckOverheadCounter(t *testing.T) {
	m := spinProg(t)
	m.cfg.MaxSteps = 10_000
	calls := 0
	m.SetCancelCheck(func() error { calls++; return nil }, 1000)
	if err := m.Run(nil); !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("err = %v, want ErrMaxSteps", err)
	}
	if calls != 10 {
		t.Errorf("hook ran %d times over 10k steps at every=1000, want 10", calls)
	}
}

func TestTypedSentinels(t *testing.T) {
	// Runaway guard.
	m := spinProg(t)
	m.cfg.MaxSteps = 5
	if err := m.Run(nil); !errors.Is(err, ErrMaxSteps) {
		t.Errorf("MaxSteps: err = %v, want ErrMaxSteps", err)
	}

	// Fall-through past the program without halt.
	prog, err := asm.Parse("fall", "mov r0, #1")
	if err != nil {
		t.Fatal(err)
	}
	m2 := MustNew(prog, DefaultConfig())
	if err := m2.Run(nil); !errors.Is(err, ErrInvalidPC) {
		t.Errorf("fall-through: err = %v, want ErrInvalidPC", err)
	}

	// Wild indirect branch.
	prog3, err := asm.Parse("wild", "mov r0, #400\nbx r0\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	m3 := MustNew(prog3, DefaultConfig())
	if err := m3.Run(nil); !errors.Is(err, ErrInvalidPC) {
		t.Errorf("bx wild: err = %v, want ErrInvalidPC", err)
	}
}
