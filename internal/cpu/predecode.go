package cpu

import (
	"fmt"

	"repro/internal/armlite"
)

// The predecoded instruction form. armlite.Instr is a convenient
// assembler-facing representation, but it is a poor one to interpret:
// every Step would re-branch on HasImm, re-resolve the addressing mode
// and re-read fields scattered over ~100 bytes (including a string).
// predecode lowers each program once into a dense array of pInstr
// entries whose kind fuses the opcode with its resolved operand form
// (add-immediate vs add-register, offset vs pre-index vs post-index
// load, ...), so the step loop dispatches through one jump table and
// touches exactly the fields the instruction needs.
//
// The lowering is purely mechanical — no reordering, no fusion across
// instructions — so PCs, timing and architectural side effects are
// bit-identical to interpreting armlite.Instr directly (pinned by the
// golden differential test in internal/experiments).

// pKind is a fused opcode + operand-form tag. The constants must stay
// dense: the interpreter's switch relies on that to compile into a
// jump table.
type pKind uint8

const (
	pNop pKind = iota
	pHalt

	// Moves, split by operand form.
	pMovImm
	pMovReg
	pMvnImm
	pMvnReg

	// Two-source ALU ops, split by operand form.
	pAddImm
	pAddReg
	pSubImm
	pSubReg
	pRsbImm
	pRsbReg
	pAndImm
	pAndReg
	pOrrImm
	pOrrReg
	pEorImm
	pEorReg
	pBicImm
	pBicReg
	pLslImm
	pLslReg
	pLsrImm
	pLsrReg
	pAsrImm
	pAsrReg

	// Long-latency integer ops (operand form resolved via flImm).
	pMul
	pMla
	pSdiv
	pUdiv

	// Compares, split by operand form.
	pCmpImm
	pCmpReg
	pCmnImm
	pCmnReg
	pTstImm
	pTstReg

	// Float ops (operand form resolved via flImm; cold next to the
	// integer loop bodies the DSA targets).
	pFAdd
	pFSub
	pFMul
	pFDiv
	pFCmp

	// Scalar memory, split by resolved addressing mode.
	pLdrOff    // addr = R[rn] + imm
	pLdrPre    // addr = R[rn] + imm, R[rn] = addr
	pLdrPost   // addr = R[rn],       R[rn] = addr + imm
	pLdrRegOff // addr = R[rn] + R[rm] << shift
	pStrOff
	pStrPre
	pStrPost
	pStrRegOff

	// Control.
	pB
	pBL
	pBX

	// Vector. The addressing mode of vector memory ops lives in the am
	// field (they are off the scalar hot path).
	pVld1
	pVst1
	pVdup
	pVALU // everything neon.ALU handles: arithmetic, shifts, vmov, vbsl

	numPKinds
)

// pInstr flag bits.
const (
	flSet  uint8 = 1 << 0 // SetFlags (the S suffix)
	flCond uint8 = 1 << 1 // cond != AL on a non-pB instruction (squash check)
	flImm  uint8 = 1 << 2 // operand 2 is an immediate (pMul/pSdiv/pUdiv/float)
)

// Vector-memory addressing modes (pInstr.am).
const (
	amOff    uint8 = iota // addr = R[rn] + imm
	amAdv                 // addr = R[rn], R[rn] += VectorBytes ("[rn]!")
	amPost                // addr = R[rn], R[rn] += imm
	amRegOff              // addr = R[rn] + R[rm] << shift
)

// pInstr is one predecoded instruction: 16 bytes of scalar fields plus
// two 32-bit immediates, dense enough that a loop body stays in one or
// two cache lines.
type pInstr struct {
	kind pKind
	cond armlite.Cond
	fl   uint8
	size uint8 // memory element size in bytes
	dt   armlite.DataType
	am   uint8 // vector addressing mode
	rd   uint8
	rn   uint8
	rm   uint8 // also the reg-offset index register
	ra   uint8
	qd   uint8 // 0xFF = unused slot (reads as the zero vector)
	qn   uint8
	qm   uint8
	op   armlite.Op // original opcode (vector ALU dispatch, errors)

	imm    int32 // operand-2 immediate / memory offset / vector shift
	target int32 // branch target
}

// lowerALU maps a two-source ALU opcode to its (imm, reg) kind pair.
func lowerALU(op armlite.Op) (immK, regK pKind, ok bool) {
	switch op {
	case armlite.OpAdd:
		return pAddImm, pAddReg, true
	case armlite.OpSub:
		return pSubImm, pSubReg, true
	case armlite.OpRsb:
		return pRsbImm, pRsbReg, true
	case armlite.OpAnd:
		return pAndImm, pAndReg, true
	case armlite.OpOrr:
		return pOrrImm, pOrrReg, true
	case armlite.OpEor:
		return pEorImm, pEorReg, true
	case armlite.OpBic:
		return pBicImm, pBicReg, true
	case armlite.OpLsl:
		return pLslImm, pLslReg, true
	case armlite.OpLsr:
		return pLsrImm, pLsrReg, true
	case armlite.OpAsr:
		return pAsrImm, pAsrReg, true
	}
	return 0, 0, false
}

// pick returns immK when the instruction's operand 2 is an immediate,
// regK otherwise.
func pick(in *armlite.Instr, immK, regK pKind) pKind {
	if in.HasImm {
		return immK
	}
	return regK
}

// lowerMem resolves a scalar load/store addressing mode to its fused
// kind. The base kind (off/pre/post/regoff) is offset from ldrBase.
func lowerMem(in *armlite.Instr, ldrBase pKind) pKind {
	switch in.Mem.Kind {
	case armlite.AddrPostIndex:
		return ldrBase + (pLdrPost - pLdrOff)
	case armlite.AddrRegOffset:
		return ldrBase + (pLdrRegOff - pLdrOff)
	default: // AddrOffset
		if in.Mem.Writeback {
			return ldrBase + (pLdrPre - pLdrOff)
		}
		return ldrBase
	}
}

// lowerVecAM resolves a vector load/store addressing mode.
func lowerVecAM(in *armlite.Instr) uint8 {
	switch in.Mem.Kind {
	case armlite.AddrPostIndex:
		return amPost
	case armlite.AddrRegOffset:
		return amRegOff
	default:
		if in.Mem.Writeback {
			return amAdv
		}
		return amOff
	}
}

// predecode lowers a validated program. It never fails on a program
// that passed armlite validation; an unknown opcode is lowered to a
// trapping entry that reports ErrUnimplemented when reached (matching
// the interpreter's old late-binding behaviour).
func predecode(prog *armlite.Program) []pInstr {
	out := make([]pInstr, len(prog.Code))
	for i := range prog.Code {
		out[i] = lower(&prog.Code[i])
	}
	return out
}

// lower translates one instruction.
func lower(in *armlite.Instr) pInstr {
	u := pInstr{
		cond: in.Cond,
		dt:   in.DT,
		size: uint8(in.DT.Size()),
		rd:   uint8(in.Rd),
		rn:   uint8(in.Rn),
		rm:   uint8(in.Rm),
		ra:   uint8(in.Ra),
		qd:   uint8(in.Qd),
		qn:   uint8(in.Qn),
		qm:   uint8(in.Qm),
		op:   in.Op,
		imm:  in.Imm,
	}
	if in.SetFlags {
		u.fl |= flSet
	}
	if in.Cond != armlite.CondAL && in.Op != armlite.OpB {
		u.fl |= flCond
	}
	if in.HasImm {
		u.fl |= flImm
	}

	switch in.Op {
	case armlite.OpNop:
		u.kind = pNop
	case armlite.OpHalt:
		u.kind = pHalt
	case armlite.OpMov:
		u.kind = pick(in, pMovImm, pMovReg)
	case armlite.OpMvn:
		u.kind = pick(in, pMvnImm, pMvnReg)
	case armlite.OpMul:
		u.kind = pMul
	case armlite.OpMla:
		u.kind = pMla
	case armlite.OpSdiv:
		u.kind = pSdiv
	case armlite.OpUdiv:
		u.kind = pUdiv
	case armlite.OpCmp:
		u.kind = pick(in, pCmpImm, pCmpReg)
	case armlite.OpCmn:
		u.kind = pick(in, pCmnImm, pCmnReg)
	case armlite.OpTst:
		u.kind = pick(in, pTstImm, pTstReg)
	case armlite.OpFAdd:
		u.kind = pFAdd
	case armlite.OpFSub:
		u.kind = pFSub
	case armlite.OpFMul:
		u.kind = pFMul
	case armlite.OpFDiv:
		u.kind = pFDiv
	case armlite.OpFCmp:
		u.kind = pFCmp
	case armlite.OpLdr:
		u.kind = lowerMem(in, pLdrOff)
		u.rn = uint8(in.Mem.Base)
		u.rm = uint8(in.Mem.Index)
		u.imm = in.Mem.Offset
		u.am = in.Mem.Shift
	case armlite.OpStr:
		u.kind = lowerMem(in, pStrOff)
		u.rn = uint8(in.Mem.Base)
		u.rm = uint8(in.Mem.Index)
		u.imm = in.Mem.Offset
		u.am = in.Mem.Shift
	case armlite.OpB:
		u.kind = pB
		u.target = int32(in.Target)
	case armlite.OpBL:
		u.kind = pBL
		u.target = int32(in.Target)
	case armlite.OpBX:
		u.kind = pBX
	case armlite.OpVld1:
		u.kind = pVld1
		u.rn = uint8(in.Mem.Base)
		u.rm = uint8(in.Mem.Index)
		u.imm = in.Mem.Offset
		u.am = lowerVecAM(in)
	case armlite.OpVst1:
		u.kind = pVst1
		u.rn = uint8(in.Mem.Base)
		u.rm = uint8(in.Mem.Index)
		u.imm = in.Mem.Offset
		u.am = lowerVecAM(in)
	case armlite.OpVdup:
		u.kind = pVdup
	default:
		if immK, regK, ok := lowerALU(in.Op); ok {
			u.kind = pick(in, immK, regK)
		} else if in.Op.IsVector() {
			u.kind = pVALU
		} else {
			// Unknown opcode: keep the entry trapping. pVALU rejects
			// non-vector opcodes with ErrUnimplemented at execution
			// time, preserving the old interpreter's behaviour for
			// structurally valid but unexecutable instructions.
			u.kind = pVALU
		}
	}
	return u
}

// reshift recovers the reg-offset shift amount (stashed in am for
// scalar memory kinds, where the vector addressing mode is unused).
func (u *pInstr) reshift() uint8 { return u.am }

// String aids debugging of the predecoded form.
func (u *pInstr) String() string {
	return fmt.Sprintf("pInstr{kind=%d op=%s cond=%v fl=%#x rd=%d rn=%d rm=%d imm=%d target=%d}",
		u.kind, u.op, u.cond, u.fl, u.rd, u.rn, u.rm, u.imm, u.target)
}
