package cpu

import (
	"fmt"
	"hash/fnv"

	"repro/internal/armlite"
	"repro/internal/neon"
	"repro/internal/snapshot"
)

// Snapshot section names owned by the cpu layer. The dsa layer adds
// its own "dsa.*" sections on top of these.
const (
	secMeta   = "meta"
	secCPU    = "cpu"
	secNEON   = "neon"
	secMem    = "mem"
	secCaches = "caches"
)

// ProgramFingerprint hashes the program text; a snapshot restores only
// into a machine running the identical program (register and PC state
// is meaningless otherwise).
func ProgramFingerprint(p *armlite.Program) uint64 {
	h := fnv.New64a()
	fmt.Fprint(h, p.String())
	return h.Sum64()
}

// SetRunHook installs fn to run between retired instructions in Run
// and runQuiet — the periodic-checkpoint tap. A non-nil return aborts
// the run with that error. The hook fires only in the machine's own
// run loops, never inside Step, so takeover drivers that step the
// machine directly (the DSA's sentinel and conditional loops) can
// never observe it mid-takeover.
func (m *Machine) SetRunHook(fn func() error) { m.runHook = fn }

// SaveState appends the machine's full execution state to w as the
// meta/cpu/neon/mem/caches sections. The machine must be between
// steps with no speculative journal open.
func (m *Machine) SaveState(w *snapshot.Writer) {
	var meta snapshot.Enc
	meta.U64(ProgramFingerprint(m.Prog))
	meta.Int(m.cfg.Width)
	meta.U64(m.cfg.MaxSteps)
	w.Add(secMeta, meta.Bytes())

	var e snapshot.Enc
	for _, r := range m.R {
		e.U32(r)
	}
	e.Bool(m.F.N)
	e.Bool(m.F.Z)
	e.Bool(m.F.C)
	e.Bool(m.F.V)
	e.Int(m.PC)
	e.Bool(m.Halted)
	e.I64(m.Ticks)
	e.U64(m.Steps)
	encodeCounts(&e, &m.Counts)
	e.U64(m.cancelLeft)
	w.Add(secCPU, e.Bytes())

	var n snapshot.Enc
	for i := range m.NEON.Q {
		n.Raw(m.NEON.Q[i][:])
	}
	n.U64(m.NEON.Ops)
	n.U64(m.NEON.Loads)
	n.U64(m.NEON.Stores)
	w.Add(secNEON, n.Bytes())

	var mm snapshot.Enc
	m.Mem.SaveState(&mm)
	w.Add(secMem, mm.Bytes())

	var cc snapshot.Enc
	m.Caches.SaveState(&cc)
	w.Add(secCaches, cc.Bytes())
}

// RestoreState rebuilds the machine's execution state from r. The
// snapshot must have been taken from a machine running the same
// program under the same configuration (ErrMismatch otherwise); any
// structural damage surfaces as ErrCorrupt. Install hooks
// (SetCancelCheck, SetRunHook) before calling RestoreState so the
// restored cancel countdown is not clobbered by SetCancelCheck's
// reset.
func (m *Machine) RestoreState(r *snapshot.Reader) error {
	meta, err := section(r, secMeta)
	if err != nil {
		return err
	}
	if fp := meta.U64(); fp != ProgramFingerprint(m.Prog) {
		return fmt.Errorf("%w: snapshot of a different program (fingerprint %#x)", snapshot.ErrMismatch, fp)
	}
	if wd := meta.Int(); wd != m.cfg.Width {
		return fmt.Errorf("%w: snapshot under width %d, machine has %d", snapshot.ErrMismatch, wd, m.cfg.Width)
	}
	if ms := meta.U64(); ms != m.cfg.MaxSteps {
		return fmt.Errorf("%w: snapshot under max-steps %d, machine has %d", snapshot.ErrMismatch, ms, m.cfg.MaxSteps)
	}
	if err := meta.Done(); err != nil {
		return err
	}

	c, err := section(r, secCPU)
	if err != nil {
		return err
	}
	for i := range m.R {
		m.R[i] = c.U32()
	}
	m.F.N = c.Bool()
	m.F.Z = c.Bool()
	m.F.C = c.Bool()
	m.F.V = c.Bool()
	m.PC = c.Int()
	m.Halted = c.Bool()
	m.Ticks = c.I64()
	m.Steps = c.U64()
	decodeCounts(c, &m.Counts)
	if left := c.U64(); left != 0 {
		// Restore the cancel countdown only when the saving machine had
		// one armed: writing 0 into a hooked machine would wrap the
		// decrement-then-compare countdown on the next step.
		m.cancelLeft = left
	}
	if err := c.Done(); err != nil {
		return err
	}
	if m.PC < 0 || m.PC > len(m.pcode) {
		return fmt.Errorf("%w: restored pc %d outside program (%d instructions)", snapshot.ErrCorrupt, m.PC, len(m.pcode))
	}

	n, err := section(r, secNEON)
	if err != nil {
		return err
	}
	for i := range m.NEON.Q {
		var q neon.Vec
		copy(q[:], n.Raw(len(q)))
		m.NEON.Q[i] = q
	}
	m.NEON.Ops = n.U64()
	m.NEON.Loads = n.U64()
	m.NEON.Stores = n.U64()
	if err := n.Done(); err != nil {
		return err
	}

	mm, err := section(r, secMem)
	if err != nil {
		return err
	}
	if err := m.Mem.RestoreState(mm); err != nil {
		return err
	}
	if err := mm.Done(); err != nil {
		return err
	}

	cc, err := section(r, secCaches)
	if err != nil {
		return err
	}
	if err := m.Caches.RestoreState(cc); err != nil {
		return err
	}
	return cc.Done()
}

func section(r *snapshot.Reader, name string) (*snapshot.Dec, error) {
	p, err := r.Section(name)
	if err != nil {
		return nil, err
	}
	return snapshot.NewDec(p), nil
}

func encodeCounts(e *snapshot.Enc, c *Counts) {
	e.U64(c.Total)
	e.U64(c.ALU)
	e.U64(c.Mul)
	e.U64(c.Div)
	e.U64(c.FP)
	e.U64(c.Loads)
	e.U64(c.Stores)
	e.U64(c.Branches)
	e.U64(c.Nops)
	e.U64(c.VecOps)
	e.U64(c.VecLoads)
	e.U64(c.VecStores)
	e.U64(c.VecDups)
}

func decodeCounts(d *snapshot.Dec, c *Counts) {
	c.Total = d.U64()
	c.ALU = d.U64()
	c.Mul = d.U64()
	c.Div = d.U64()
	c.FP = d.U64()
	c.Loads = d.U64()
	c.Stores = d.U64()
	c.Branches = d.U64()
	c.Nops = d.U64()
	c.VecOps = d.U64()
	c.VecLoads = d.U64()
	c.VecStores = d.U64()
	c.VecDups = d.U64()
}
