package cpu

import (
	"testing"
	"testing/quick"

	"repro/internal/armlite"
	"repro/internal/asm"
)

// tinyConfig avoids allocating the full 16 MiB memory per property
// iteration.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.MemBytes = 4096
	return cfg
}

// TestQuickFlagSemantics checks the NZCV computation of cmp against a
// wide-integer reference for every condition code, over random
// operands — the foundation of every trip-count and branch decision in
// the repository.
func TestQuickFlagSemantics(t *testing.T) {
	prog := asm.MustAssemble("f", "cmp r0, r1\nhalt")
	conds := []armlite.Cond{armlite.CondEQ, armlite.CondNE, armlite.CondLT,
		armlite.CondLE, armlite.CondGT, armlite.CondGE, armlite.CondMI,
		armlite.CondPL, armlite.CondHS, armlite.CondLO, armlite.CondHI, armlite.CondLS}

	f := func(a, b uint32) bool {
		m := MustNew(prog, tinyConfig())
		m.R[armlite.R0], m.R[armlite.R1] = a, b
		if err := m.Run(nil); err != nil {
			return false
		}
		sa, sb := int64(int32(a)), int64(int32(b))
		ua, ub := uint64(a), uint64(b)
		for _, c := range conds {
			var want bool
			switch c {
			case armlite.CondEQ:
				want = a == b
			case armlite.CondNE:
				want = a != b
			case armlite.CondLT:
				want = sa < sb
			case armlite.CondLE:
				want = sa <= sb
			case armlite.CondGT:
				want = sa > sb
			case armlite.CondGE:
				want = sa >= sb
			case armlite.CondMI:
				want = int32(a-b) < 0
			case armlite.CondPL:
				want = int32(a-b) >= 0
			case armlite.CondHS:
				want = ua >= ub
			case armlite.CondLO:
				want = ua < ub
			case armlite.CondHI:
				want = ua > ub
			case armlite.CondLS:
				want = ua <= ub
			}
			if c.Holds(m.F) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickAddsFlagSemantics does the same for adds (cmn-style flags).
func TestQuickAddsFlagSemantics(t *testing.T) {
	prog := asm.MustAssemble("f", "adds r2, r0, r1\nhalt")
	f := func(a, b uint32) bool {
		m := MustNew(prog, tinyConfig())
		m.R[armlite.R0], m.R[armlite.R1] = a, b
		if err := m.Run(nil); err != nil {
			return false
		}
		r := a + b
		wantN := int32(r) < 0
		wantZ := r == 0
		wantC := uint64(a)+uint64(b) > 0xFFFFFFFF
		wantV := (int64(int32(a))+int64(int32(b)) != int64(int32(r)))
		return m.F.N == wantN && m.F.Z == wantZ && m.F.C == wantC && m.F.V == wantV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickSubsFlagSemantics: subs flags against the wide reference.
func TestQuickSubsFlagSemantics(t *testing.T) {
	prog := asm.MustAssemble("f", "subs r2, r0, r1\nhalt")
	f := func(a, b uint32) bool {
		m := MustNew(prog, tinyConfig())
		m.R[armlite.R0], m.R[armlite.R1] = a, b
		if err := m.Run(nil); err != nil {
			return false
		}
		r := a - b
		wantN := int32(r) < 0
		wantZ := r == 0
		wantC := a >= b
		wantV := int64(int32(a))-int64(int32(b)) != int64(int32(r))
		return m.F.N == wantN && m.F.Z == wantZ && m.F.C == wantC && m.F.V == wantV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickALUMatchesGo: data-processing results equal Go's 32-bit
// arithmetic for random operands.
func TestQuickALUMatchesGo(t *testing.T) {
	ops := []struct {
		src string
		ref func(a, b uint32) uint32
	}{
		{"add r2, r0, r1", func(a, b uint32) uint32 { return a + b }},
		{"sub r2, r0, r1", func(a, b uint32) uint32 { return a - b }},
		{"rsb r2, r0, r1", func(a, b uint32) uint32 { return b - a }},
		{"mul r2, r0, r1", func(a, b uint32) uint32 { return a * b }},
		{"and r2, r0, r1", func(a, b uint32) uint32 { return a & b }},
		{"orr r2, r0, r1", func(a, b uint32) uint32 { return a | b }},
		{"eor r2, r0, r1", func(a, b uint32) uint32 { return a ^ b }},
		{"bic r2, r0, r1", func(a, b uint32) uint32 { return a &^ b }},
		{"lsl r2, r0, r1", func(a, b uint32) uint32 { return a << (b & 31) }},
		{"lsr r2, r0, r1", func(a, b uint32) uint32 { return a >> (b & 31) }},
		{"asr r2, r0, r1", func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) }},
	}
	for _, op := range ops {
		prog := asm.MustAssemble("q", op.src+"\nhalt")
		f := func(a, b uint32) bool {
			m := MustNew(prog, tinyConfig())
			m.R[armlite.R0], m.R[armlite.R1] = a, b
			if err := m.Run(nil); err != nil {
				return false
			}
			return m.R[armlite.R2] == op.ref(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", op.src, err)
		}
	}
}
