package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/armlite"
	"repro/internal/asm"
)

func run(t *testing.T, src string, setup func(*Machine)) *Machine {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(p, DefaultConfig())
	if setup != nil {
		setup(m)
	}
	if err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestArithmetic(t *testing.T) {
	m := run(t, `
        mov r0, #10
        mov r1, #3
        add r2, r0, r1
        sub r3, r0, r1
        mul r4, r0, r1
        sdiv r5, r0, r1
        and r6, r0, r1
        orr r7, r0, r1
        eor r8, r0, r1
        rsb r9, r1, #20
        halt`, nil)
	want := map[armlite.Reg]uint32{
		armlite.R2: 13, armlite.R3: 7, armlite.R4: 30, armlite.R5: 3,
		armlite.R6: 2, armlite.R7: 11, armlite.R8: 9, armlite.R9: 17,
	}
	for r, w := range want {
		if m.R[r] != w {
			t.Errorf("%v = %d, want %d", r, m.R[r], w)
		}
	}
}

func TestShifts(t *testing.T) {
	m := run(t, `
        mov r0, #-16
        asr r1, r0, #2
        lsr r2, r0, #28
        mov r3, #3
        lsl r4, r3, #4
        halt`, nil)
	if int32(m.R[armlite.R1]) != -4 {
		t.Errorf("asr = %d", int32(m.R[armlite.R1]))
	}
	if m.R[armlite.R2] != 0xF {
		t.Errorf("lsr = %#x", m.R[armlite.R2])
	}
	if m.R[armlite.R4] != 48 {
		t.Errorf("lsl = %d", m.R[armlite.R4])
	}
}

func TestDivByZero(t *testing.T) {
	m := run(t, `
        mov r0, #5
        mov r1, #0
        sdiv r2, r0, r1
        udiv r3, r0, r1
        halt`, nil)
	if m.R[armlite.R2] != 0 || m.R[armlite.R3] != 0 {
		t.Error("division by zero must yield 0 (ARM semantics)")
	}
}

func TestLoopAndFlags(t *testing.T) {
	// Sum 1..10 via a count loop.
	m := run(t, `
        mov r0, #0
        mov r1, #1
loop:   add r0, r0, r1
        add r1, r1, #1
        cmp r1, #10
        ble loop
        halt`, nil)
	if m.R[armlite.R0] != 55 {
		t.Errorf("sum = %d, want 55", m.R[armlite.R0])
	}
}

func TestConditionalExecution(t *testing.T) {
	m := run(t, `
        mov r0, #5
        cmp r0, #5
        moveq r1, #1
        movne r2, #1
        halt`, nil)
	if m.R[armlite.R1] != 1 {
		t.Error("moveq should have executed")
	}
	if m.R[armlite.R2] != 0 {
		t.Error("movne should have been skipped")
	}
}

func TestSignedUnsignedBranches(t *testing.T) {
	m := run(t, `
        mov r0, #-1
        cmp r0, #1
        movlt r1, #1    ; signed: -1 < 1
        cmp r0, #1
        movhs r2, #1    ; unsigned: 0xFFFFFFFF >= 1
        halt`, nil)
	if m.R[armlite.R1] != 1 {
		t.Error("signed lt failed")
	}
	if m.R[armlite.R2] != 1 {
		t.Error("unsigned hs failed")
	}
}

func TestOverflowFlag(t *testing.T) {
	m := run(t, `
        mov  r0, #0x7FFFFFFF
        adds r1, r0, #1
        movmi r2, #1     ; result is negative
        halt`, nil)
	if m.R[armlite.R2] != 1 {
		t.Error("adds overflow should set N")
	}
	if !m.F.V {
		t.Error("adds 0x7FFFFFFF+1 must set V")
	}
}

func TestMemoryAndAddressing(t *testing.T) {
	m := run(t, `
        mov  r1, #0x100
        mov  r0, #42
        str  r0, [r1]
        ldr  r2, [r1]
        strb r0, [r1, #8]
        ldrb r3, [r1, #8]
        mov  r4, #2
        str  r0, [r1, r4, lsl #2]  ; 0x100 + 8
        ldr  r5, [r1, #8]          ; overwrote the byte slot
        mov  r6, #0x200
        str  r0, [r6], #4
        halt`, nil)
	if m.R[armlite.R2] != 42 || m.R[armlite.R3] != 42 {
		t.Errorf("plain/byte load: r2=%d r3=%d", m.R[armlite.R2], m.R[armlite.R3])
	}
	if m.R[armlite.R5] != 42 {
		t.Errorf("reg-offset store: r5=%d", m.R[armlite.R5])
	}
	if m.R[armlite.R6] != 0x204 {
		t.Errorf("post-index writeback: r6=%#x", m.R[armlite.R6])
	}
	v, _ := m.Mem.Load(0x200, 4)
	if v != 42 {
		t.Errorf("post-index stored at wrong address: %d", v)
	}
}

func TestHalfwordAccess(t *testing.T) {
	m := run(t, `
        mov r1, #0x300
        mov r0, #0x1ABCD
        strh r0, [r1]
        ldrh r2, [r1]
        halt`, nil)
	if m.R[armlite.R2] != 0xABCD {
		t.Errorf("halfword = %#x", m.R[armlite.R2])
	}
}

func TestFunctionCall(t *testing.T) {
	m := run(t, `
        mov r0, #7
        bl  double
        add r0, r0, #1
        halt
double: add r0, r0, r0
        bx lr`, nil)
	if m.R[armlite.R0] != 15 {
		t.Errorf("r0 = %d, want 15", m.R[armlite.R0])
	}
}

func TestFloatOps(t *testing.T) {
	m := run(t, `
        fadd r2, r0, r1
        fmul r3, r0, r1
        fsub r4, r0, r1
        fdiv r5, r0, r1
        fcmp r0, r1
        movgt r6, #1
        halt`, func(m *Machine) {
		m.R[armlite.R0] = math.Float32bits(6.0)
		m.R[armlite.R1] = math.Float32bits(1.5)
	})
	checks := map[armlite.Reg]float32{armlite.R2: 7.5, armlite.R3: 9, armlite.R4: 4.5, armlite.R5: 4}
	for r, w := range checks {
		if got := math.Float32frombits(m.R[r]); got != w {
			t.Errorf("%v = %v, want %v", r, got, w)
		}
	}
	if m.R[armlite.R6] != 1 {
		t.Error("fcmp gt failed")
	}
}

func TestVectorExecution(t *testing.T) {
	m := run(t, `
        mov r5, #0x400
        mov r6, #0x440
        mov r7, #0x480
        vld1.32 q0, [r5]!
        vld1.32 q1, [r6]!
        vadd.i32 q2, q0, q1
        vst1.32 q2, [r7]!
        halt`, func(m *Machine) {
		m.Mem.WriteWords(0x400, []int32{1, 2, 3, 4})
		m.Mem.WriteWords(0x440, []int32{10, 20, 30, 40})
	})
	got, _ := m.Mem.ReadWords(0x480, 4)
	want := []int32{11, 22, 33, 44}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("lane %d = %d, want %d", i, got[i], want[i])
		}
	}
	if m.R[armlite.R5] != 0x410 || m.R[armlite.R7] != 0x490 {
		t.Error("vector writeback failed")
	}
	if m.Counts.VecOps != 1 || m.Counts.VecLoads != 2 || m.Counts.VecStores != 1 {
		t.Errorf("vector counts wrong: %+v", m.Counts)
	}
}

func TestVdupAndVbsl(t *testing.T) {
	m := run(t, `
        mov r0, #9
        vdup.32 q0, r0
        mov r1, #5
        vdup.32 q1, r1
        vcgt.i32 q2, q0, q1
        vbsl.i32 q2, q0, q1
        halt`, nil)
	for i := 0; i < 4; i++ {
		if got := m.NEON.Q[2].LaneS(armlite.I32, i); got != 9 {
			t.Errorf("vbsl lane %d = %d, want 9", i, got)
		}
	}
}

func TestTicksAdvance(t *testing.T) {
	m := run(t, "mov r0, #1\nadd r0, r0, #1\nhalt", nil)
	if m.Ticks <= 0 {
		t.Error("ticks did not advance")
	}
	if m.Counts.Total != 3 {
		t.Errorf("retired = %d, want 3", m.Counts.Total)
	}
}

func TestBranchCountsAndTicks(t *testing.T) {
	m := run(t, `
        mov r0, #0
loop:   add r0, r0, #1
        cmp r0, #3
        blt loop
        halt`, nil)
	if m.Counts.Branches != 3 {
		t.Errorf("branches = %d, want 3", m.Counts.Branches)
	}
}

func TestObserverSeesRecords(t *testing.T) {
	p := asm.MustAssemble("t", "mov r0, #1\nmov r1, #2\nhalt")
	m := MustNew(p, DefaultConfig())
	var pcs []int
	err := m.Run(ObserverFunc(func(r *Record) { pcs = append(pcs, r.PC) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(pcs) != 3 || pcs[0] != 0 || pcs[2] != 2 {
		t.Errorf("observed pcs = %v", pcs)
	}
}

func TestObserverMemAccess(t *testing.T) {
	p := asm.MustAssemble("t", "mov r1, #0x100\nstr r1, [r1]\nldr r2, [r1]\nhalt")
	m := MustNew(p, DefaultConfig())
	var accs []MemAccess
	m.Run(ObserverFunc(func(r *Record) {
		for i := 0; i < r.Nmem; i++ {
			accs = append(accs, r.Mem[i])
		}
	}))
	if len(accs) != 2 {
		t.Fatalf("accesses = %v", accs)
	}
	if !accs[0].Store || accs[0].Addr != 0x100 {
		t.Errorf("store access wrong: %+v", accs[0])
	}
	if accs[1].Store || accs[1].Addr != 0x100 {
		t.Errorf("load access wrong: %+v", accs[1])
	}
}

func TestRunawayGuard(t *testing.T) {
	p := asm.MustAssemble("t", "loop: b loop")
	cfg := DefaultConfig()
	cfg.MaxSteps = 100
	m := MustNew(p, cfg)
	if err := m.Run(nil); err == nil {
		t.Error("expected runaway-loop error")
	}
}

func TestMemFaultReported(t *testing.T) {
	p := asm.MustAssemble("t", "mvn r1, #0\nldr r0, [r1]\nhalt")
	m := MustNew(p, DefaultConfig())
	if err := m.Run(nil); err == nil {
		t.Error("expected out-of-range load error")
	}
}

// Property: the machine computes the same sum as Go for arbitrary
// small arrays (scalar loop semantics).
func TestQuickArraySum(t *testing.T) {
	const base, dst = 0x1000, 0x2000
	src := `
        mov r5, #0x1000
        mov r2, #0
        mov r0, #0
loop:   ldr r3, [r5], #4
        add r2, r2, r3
        add r0, r0, #1
        cmp r0, r4
        blt loop
        str r2, [r6]
        halt`
	p := asm.MustAssemble("q", src)
	f := func(vals []int32) bool {
		n := len(vals)
		if n == 0 || n > 64 {
			return true
		}
		m := MustNew(p, DefaultConfig())
		m.R[armlite.R4] = uint32(n)
		m.R[armlite.R6] = dst
		m.Mem.WriteWords(base, vals)
		if err := m.Run(nil); err != nil {
			return false
		}
		var want int32
		for _, v := range vals {
			want += v
		}
		got, err := m.Mem.ReadWords(dst, 1)
		return err == nil && got[0] == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
