package cpu

import "errors"

// Typed sentinel errors for the machine's failure modes. Callers — the
// DSA's guarded-takeover layer and the batch supervisor — classify
// failures with errors.Is instead of matching message text, so cause
// attribution survives message rewording.
var (
	// ErrMaxSteps marks a run that exceeded Config.MaxSteps — the
	// global runaway-loop guard. Deterministic: retrying the same
	// program hits it again.
	ErrMaxSteps = errors.New("cpu: step limit exceeded")

	// ErrInvalidPC marks a fetch or branch to a program counter outside
	// the program (a wild jump or a fall-through past the last
	// instruction without halt).
	ErrInvalidPC = errors.New("cpu: invalid pc")

	// ErrUnimplemented marks an opcode the execution core does not
	// model.
	ErrUnimplemented = errors.New("cpu: unimplemented opcode")

	// ErrCanceled marks a step aborted by the machine's cancellation
	// hook (deadline or batch shutdown). The wrapped chain also carries
	// the hook's own error (typically context.DeadlineExceeded or
	// context.Canceled) so supervisors can tell the two apart.
	ErrCanceled = errors.New("cpu: run canceled")
)
