package cpu

import (
	"fmt"
	"io"
)

// Tracer is an Observer that writes a human-readable line per retired
// instruction — the dynamic stream the DSA hardware taps (Fig. 30's
// trace-level simulation), useful for debugging kernels with
// `dsasim -trace`.
type Tracer struct {
	W io.Writer
	// Limit stops printing after this many records (0 = unlimited).
	Limit uint64

	n uint64
}

// Observe implements Observer.
func (t *Tracer) Observe(r *Record) {
	if t.Limit > 0 && t.n >= t.Limit {
		return
	}
	t.n++
	line := fmt.Sprintf("%8d  pc=%-4d %-28s", r.Seq, r.PC, r.Instr.String())
	for i := 0; i < r.Nmem; i++ {
		kind := "R"
		if r.Mem[i].Store {
			kind = "W"
		}
		line += fmt.Sprintf("  %s[%#x:%d]", kind, r.Mem[i].Addr, r.Mem[i].Size)
	}
	if r.Instr.Op.IsBranch() {
		if r.Taken {
			line += fmt.Sprintf("  taken→%d", r.NextPC)
		} else {
			line += "  not-taken"
		}
	}
	fmt.Fprintln(t.W, line)
}

// Count returns how many records were printed.
func (t *Tracer) Count() uint64 { return t.n }
