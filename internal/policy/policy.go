// Package policy implements the adaptive takeover policy: a per-loop
// cost/benefit ledger and a deterministic bandit-style controller that
// decides, per loop PC, whether the DSA should analyze and take over a
// loop or leave it on the ARM core.
//
// The paper's headline is *energy-efficient* detection, but a DSA that
// takes over every loop that verifies still pays detection energy (and
// host time) on loops that never win — q_sort's data-dependent loops
// re-analyze on every entry and never vectorize; dijkstra's conditional
// loop takes over and loses. The controller turns the learned-loop
// cache from a correctness cache into a performance policy:
//
//   - Every arm (loop PC) starts in StateKeep: analyses and takeovers
//     proceed exactly as in dsa-extended mode.
//   - Each measured outcome feeds the arm's ledger. A takeover whose
//     measured tick cost beats the scalar estimate (sampled from the
//     loop's own analysis iterations) is a win; a takeover that loses,
//     an analysis that rejects, or a cache-hit entry that declines to
//     take over is a loss.
//   - SuspendAfter consecutive losses move the arm to StateSuspended:
//     the DSA observes the loop (the detection hardware cannot help
//     seeing its back branch) but spends nothing on analysis or
//     takeover.
//   - Every TrialInterval suspended entries the arm gets one trial
//     (StateTrial): the next analysis/takeover runs for real. A winning
//     trial returns the arm to StateKeep; a losing trial re-suspends it
//     and doubles the interval (capped), so hopeless loops cost O(log)
//     trials over a run while genuinely phase-changing loops earn their
//     way back.
//
// Decisions are functions of the arm state and the simulated outcome
// stream only — no wall clock, no randomness — so runs replay
// bit-identically and the controller state serializes through
// internal/snapshot for the resume oracle.
package policy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/snapshot"
)

// Params tunes the controller. The zero value is replaced by defaults
// field-by-field, so a partially specified Params is usable.
type Params struct {
	// SuspendAfter is the consecutive-loss streak that suspends an arm.
	SuspendAfter int
	// TrialEvery is the initial number of suspended entries between
	// trial takeovers.
	TrialEvery int
	// TrialBackoffMax caps the doubling trial interval.
	TrialBackoffMax int
	// MinTickGain is the minimum measured simulated-tick saving for a
	// takeover to count as a win. One tick keeps break-even takeovers
	// alive; raise it to demand a real margin.
	MinTickGain int64
}

// DefaultParams returns the calibrated controller setup.
func DefaultParams() Params {
	return Params{
		SuspendAfter:    3,
		TrialEvery:      32,
		TrialBackoffMax: 256,
		MinTickGain:     1,
	}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.SuspendAfter <= 0 {
		p.SuspendAfter = d.SuspendAfter
	}
	if p.TrialEvery <= 0 {
		p.TrialEvery = d.TrialEvery
	}
	if p.TrialBackoffMax < p.TrialEvery {
		p.TrialBackoffMax = d.TrialBackoffMax
	}
	if p.TrialBackoffMax < p.TrialEvery {
		p.TrialBackoffMax = p.TrialEvery
	}
	if p.MinTickGain <= 0 {
		p.MinTickGain = d.MinTickGain
	}
	return p
}

// State is an arm's position in the bandit state machine.
type State uint8

// Arm states.
const (
	// StateKeep: analyses and takeovers proceed normally.
	StateKeep State = iota
	// StateTrial: a suspended arm's trial is in flight; the next
	// outcome resolves it to Keep (win) or Suspended (loss).
	StateTrial
	// StateSuspended: the DSA observes but neither analyzes nor takes
	// over; entries count toward the next trial.
	StateSuspended
)

func (s State) String() string {
	switch s {
	case StateTrial:
		return "trial"
	case StateSuspended:
		return "suspended"
	default:
		return "keep"
	}
}

// Decision is the controller's answer for one loop entry.
type Decision uint8

// Entry decisions.
const (
	// Allow: proceed (arm is kept, unknown, or mid-trial).
	Allow Decision = iota
	// AllowTrial: proceed, and this entry opened a new trial.
	AllowTrial
	// Deny: stay scalar; spend nothing on this loop.
	Deny
)

// Arm is one loop PC's ledger and bandit state.
type Arm struct {
	State      State
	LossStreak int
	Wins       uint64
	Losses     uint64
	Trials     uint64

	// SinceTrial counts suspended entries since the last trial;
	// TrialInterval is the current (backed-off) trial period.
	SinceTrial    int
	TrialInterval int

	// Ledger: cumulative measured savings (positive = the DSA helped).
	TickGain     int64
	EnergyGainNJ float64

	// Scalar cost estimate per iteration, sampled between the ends of
	// the loop's first two analysis iterations.
	BaselineTicks    int64
	BaselineEnergyNJ float64
	HasBaseline      bool
}

// Controller owns every arm. It is not safe for concurrent use; the
// engine drives it from the single simulation goroutine.
type Controller struct {
	params Params
	arms   map[int]*Arm
}

// New builds a controller.
func New(p Params) *Controller {
	return &Controller{params: p.withDefaults(), arms: make(map[int]*Arm)}
}

// Params returns the effective (defaulted) parameters.
func (c *Controller) Params() Params { return c.params }

// Arm returns pc's arm, or nil if the loop was never recorded.
func (c *Controller) Arm(pc int) *Arm { return c.arms[pc] }

// Arms returns the number of tracked loops.
func (c *Controller) Arms() int { return len(c.arms) }

func (c *Controller) arm(pc int) *Arm {
	a, ok := c.arms[pc]
	if !ok {
		a = &Arm{State: StateKeep, TrialInterval: c.params.TrialEvery}
		c.arms[pc] = a
	}
	return a
}

// OnEntry decides one loop entry: the gate consulted both when a cache
// miss would start an analysis and when a cache hit would raise a
// takeover. Suspended arms count the entry toward their trial schedule.
func (c *Controller) OnEntry(pc int) Decision {
	a, ok := c.arms[pc]
	if !ok || a.State == StateKeep || a.State == StateTrial {
		return Allow
	}
	a.SinceTrial++
	if a.SinceTrial >= a.TrialInterval {
		a.SinceTrial = 0
		a.State = StateTrial
		a.Trials++
		return AllowTrial
	}
	return Deny
}

// SetBaseline records the scalar per-iteration cost sampled from the
// loop's own analysis iterations. Re-analyses overwrite it — the most
// recent sample reflects the current phase.
func (c *Controller) SetBaseline(pc int, ticks int64, energyNJ float64) {
	a := c.arm(pc)
	a.BaselineTicks = ticks
	a.BaselineEnergyNJ = energyNJ
	a.HasBaseline = true
}

// Baseline returns the sampled per-iteration scalar cost.
func (c *Controller) Baseline(pc int) (ticks int64, energyNJ float64, ok bool) {
	a, found := c.arms[pc]
	if !found || !a.HasBaseline {
		return 0, 0, false
	}
	return a.BaselineTicks, a.BaselineEnergyNJ, true
}

// RecordTakeover folds one committed takeover's measured outcome into
// pc's ledger. tickGain and energyGain are estimated-scalar-cost minus
// measured-takeover-cost (positive = the DSA saved time/energy). It
// reports whether the outcome was a win and whether the arm just
// transitioned into suspension.
func (c *Controller) RecordTakeover(pc int, tickGain int64, energyGainNJ float64) (win, suspended bool) {
	a := c.arm(pc)
	a.TickGain += tickGain
	a.EnergyGainNJ += energyGainNJ
	if tickGain >= c.params.MinTickGain {
		c.recordWin(a)
		return true, false
	}
	return false, c.recordLoss(a)
}

// RecordLoss folds one non-takeover loss — a rejected analysis or a
// cache-hit entry that declined to take over — into pc's ledger. It
// reports whether the arm just transitioned into suspension.
func (c *Controller) RecordLoss(pc int) (suspended bool) {
	return c.recordLoss(c.arm(pc))
}

func (c *Controller) recordWin(a *Arm) {
	a.Wins++
	a.LossStreak = 0
	a.State = StateKeep
	a.TrialInterval = c.params.TrialEvery
	a.SinceTrial = 0
}

func (c *Controller) recordLoss(a *Arm) (suspended bool) {
	a.Losses++
	if a.State == StateTrial {
		// Failed trial: re-suspend with a doubled interval.
		a.State = StateSuspended
		a.SinceTrial = 0
		a.LossStreak = 0
		if a.TrialInterval < c.params.TrialBackoffMax {
			a.TrialInterval *= 2
			if a.TrialInterval > c.params.TrialBackoffMax {
				a.TrialInterval = c.params.TrialBackoffMax
			}
		}
		return true
	}
	if a.State == StateSuspended {
		return false
	}
	a.LossStreak++
	if a.LossStreak >= c.params.SuspendAfter {
		a.State = StateSuspended
		a.SinceTrial = 0
		a.TrialInterval = c.params.TrialEvery
		return true
	}
	return false
}

// Ledger aggregates the controller's cumulative measured savings.
type Ledger struct {
	TickGain     int64
	EnergyGainNJ float64
	Wins, Losses uint64
	Suspended    int // arms currently suspended or mid-trial
}

// Totals sums every arm's ledger.
func (c *Controller) Totals() Ledger {
	var l Ledger
	for _, a := range c.arms {
		l.TickGain += a.TickGain
		l.EnergyGainNJ += a.EnergyGainNJ
		l.Wins += a.Wins
		l.Losses += a.Losses
		if a.State != StateKeep {
			l.Suspended++
		}
	}
	return l
}

// --- snapshot codec ---

// Encode serializes the controller's arms (sorted by PC, so equal
// states produce identical bytes). Params are not included: the owning
// configuration fingerprints them.
func (c *Controller) Encode(e *snapshot.Enc) {
	pcs := make([]int, 0, len(c.arms))
	for pc := range c.arms {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	e.U32(uint32(len(pcs)))
	for _, pc := range pcs {
		a := c.arms[pc]
		e.Int(pc)
		e.U8(uint8(a.State))
		e.Int(a.LossStreak)
		e.U64(a.Wins)
		e.U64(a.Losses)
		e.U64(a.Trials)
		e.Int(a.SinceTrial)
		e.Int(a.TrialInterval)
		e.I64(a.TickGain)
		e.U64(math.Float64bits(a.EnergyGainNJ))
		e.I64(a.BaselineTicks)
		e.U64(math.Float64bits(a.BaselineEnergyNJ))
		e.Bool(a.HasBaseline)
	}
}

// Decode rebuilds the controller's arms from a snapshot section.
func (c *Controller) Decode(d *snapshot.Dec) error {
	n := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	if n > 1<<20 {
		return fmt.Errorf("%w: %d policy arms claimed", snapshot.ErrCorrupt, n)
	}
	c.arms = make(map[int]*Arm, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		pc := d.Int()
		a := &Arm{
			State:      State(d.U8()),
			LossStreak: d.Int(),
			Wins:       d.U64(),
			Losses:     d.U64(),
			Trials:     d.U64(),
			SinceTrial: d.Int(),
		}
		a.TrialInterval = d.Int()
		a.TickGain = d.I64()
		a.EnergyGainNJ = math.Float64frombits(d.U64())
		a.BaselineTicks = d.I64()
		a.BaselineEnergyNJ = math.Float64frombits(d.U64())
		a.HasBaseline = d.Bool()
		if a.State > StateSuspended {
			return fmt.Errorf("%w: policy arm %d state %d", snapshot.ErrCorrupt, pc, a.State)
		}
		if _, dup := c.arms[pc]; dup {
			return fmt.Errorf("%w: duplicate policy arm %d", snapshot.ErrCorrupt, pc)
		}
		c.arms[pc] = a
	}
	return d.Err()
}
