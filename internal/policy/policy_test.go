package policy

import (
	"testing"

	"repro/internal/snapshot"
)

func TestSuspendAfterLosses(t *testing.T) {
	c := New(Params{SuspendAfter: 3, TrialEvery: 4})
	pc := 100
	if d := c.OnEntry(pc); d != Allow {
		t.Fatalf("unknown arm: got %v, want Allow", d)
	}
	for i := 0; i < 2; i++ {
		if susp := c.RecordLoss(pc); susp {
			t.Fatalf("suspended after %d losses (SuspendAfter=3)", i+1)
		}
		if d := c.OnEntry(pc); d != Allow {
			t.Fatalf("loss %d: got %v, want Allow", i+1, d)
		}
	}
	if susp := c.RecordLoss(pc); !susp {
		t.Fatalf("third loss did not suspend")
	}
	if got := c.Arm(pc).State; got != StateSuspended {
		t.Fatalf("state = %v, want suspended", got)
	}
	for i := 0; i < 3; i++ {
		if d := c.OnEntry(pc); d != Deny {
			t.Fatalf("suspended entry %d: got %v, want Deny", i+1, d)
		}
	}
}

func TestTrialReentryAndBackoff(t *testing.T) {
	c := New(Params{SuspendAfter: 1, TrialEvery: 2, TrialBackoffMax: 8})
	pc := 7
	c.RecordLoss(pc) // suspends immediately

	// Entry 1 denied, entry 2 opens a trial.
	if d := c.OnEntry(pc); d != Deny {
		t.Fatalf("entry 1: got %v, want Deny", d)
	}
	if d := c.OnEntry(pc); d != AllowTrial {
		t.Fatalf("entry 2: got %v, want AllowTrial", d)
	}
	// Mid-trial entries proceed until the outcome lands.
	if d := c.OnEntry(pc); d != Allow {
		t.Fatalf("mid-trial: got %v, want Allow", d)
	}
	// Failed trial doubles the interval.
	c.RecordLoss(pc)
	a := c.Arm(pc)
	if a.State != StateSuspended || a.TrialInterval != 4 {
		t.Fatalf("after failed trial: state=%v interval=%d, want suspended/4", a.State, a.TrialInterval)
	}
	for i := 0; i < 3; i++ {
		if d := c.OnEntry(pc); d != Deny {
			t.Fatalf("backoff entry %d: got %v, want Deny", i+1, d)
		}
	}
	if d := c.OnEntry(pc); d != AllowTrial {
		t.Fatalf("backoff entry 4: want AllowTrial")
	}
	// Winning trial restores Keep and resets the interval.
	if win, _ := c.RecordTakeover(pc, 500, 12.5); !win {
		t.Fatalf("gain 500 not a win")
	}
	a = c.Arm(pc)
	if a.State != StateKeep || a.TrialInterval != 2 || a.LossStreak != 0 {
		t.Fatalf("after winning trial: %+v", a)
	}
	if a.TickGain != 500 || a.EnergyGainNJ != 12.5 {
		t.Fatalf("ledger: gain=%d energy=%v", a.TickGain, a.EnergyGainNJ)
	}
}

func TestBackoffCap(t *testing.T) {
	c := New(Params{SuspendAfter: 1, TrialEvery: 2, TrialBackoffMax: 4})
	pc := 1
	c.RecordLoss(pc)
	for trial := 0; trial < 5; trial++ {
		for c.OnEntry(pc) == Deny {
		}
		c.RecordLoss(pc) // fail every trial
	}
	if got := c.Arm(pc).TrialInterval; got != 4 {
		t.Fatalf("interval = %d, want capped at 4", got)
	}
}

func TestLosingTakeoverSuspends(t *testing.T) {
	c := New(Params{SuspendAfter: 2, MinTickGain: 10})
	pc := 42
	c.SetBaseline(pc, 100, 3.0)
	if win, susp := c.RecordTakeover(pc, 9, -1); win || susp {
		t.Fatalf("gain 9 < MinTickGain 10: win=%v susp=%v", win, susp)
	}
	if win, susp := c.RecordTakeover(pc, -50, -2); win || !susp {
		t.Fatalf("second loss should suspend: win=%v susp=%v", win, susp)
	}
	l := c.Totals()
	if l.Wins != 0 || l.Losses != 2 || l.TickGain != -41 || l.Suspended != 1 {
		t.Fatalf("totals: %+v", l)
	}
}

func TestWinResetsStreak(t *testing.T) {
	c := New(Params{SuspendAfter: 2, MinTickGain: 1})
	pc := 5
	c.RecordLoss(pc)
	c.RecordTakeover(pc, 100, 1)
	c.RecordLoss(pc)
	if a := c.Arm(pc); a.State != StateKeep {
		t.Fatalf("one loss after a win must not suspend (streak reset): %+v", a)
	}
}

// TestSnapshotRoundTrip proves decision replay from a snapshot: a
// controller restored mid-run makes byte-for-byte the same decisions as
// the original on the same subsequent outcome stream.
func TestSnapshotRoundTrip(t *testing.T) {
	c := New(DefaultParams())
	c.SetBaseline(10, 120, 4.5)
	c.RecordTakeover(10, 300, 9.25)
	for i := 0; i < 4; i++ {
		c.RecordLoss(20)
	}
	for i := 0; i < 7; i++ {
		c.OnEntry(20)
	}
	c.RecordLoss(30)

	var enc snapshot.Enc
	c.Encode(&enc)

	r := New(DefaultParams())
	d := snapshot.NewDec(enc.Bytes())
	if err := r.Decode(d); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}

	// Same state bytes...
	var enc2 snapshot.Enc
	r.Encode(&enc2)
	if string(enc.Bytes()) != string(enc2.Bytes()) {
		t.Fatalf("re-encode differs from original")
	}
	// ...and the same decisions on the same future.
	for step := 0; step < 200; step++ {
		for _, pc := range []int{10, 20, 30, 40} {
			want := c.OnEntry(pc)
			got := r.OnEntry(pc)
			if want != got {
				t.Fatalf("step %d pc %d: original %v, restored %v", step, pc, want, got)
			}
			if step%17 == 3 && want != Deny {
				w1, s1 := c.RecordTakeover(pc, int64(step%5)-2, 0.5)
				w2, s2 := r.RecordTakeover(pc, int64(step%5)-2, 0.5)
				if w1 != w2 || s1 != s2 {
					t.Fatalf("step %d pc %d outcome diverged", step, pc)
				}
			}
		}
	}
	var endA, endB snapshot.Enc
	c.Encode(&endA)
	r.Encode(&endB)
	if string(endA.Bytes()) != string(endB.Bytes()) {
		t.Fatalf("final states diverged after identical outcome streams")
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	// Duplicate arm.
	var e snapshot.Enc
	e.U32(2)
	for i := 0; i < 2; i++ {
		e.Int(9)
		e.U8(0)
		e.Int(0)
		e.U64(0)
		e.U64(0)
		e.U64(0)
		e.Int(0)
		e.Int(2)
		e.I64(0)
		e.U64(0)
		e.I64(0)
		e.U64(0)
		e.Bool(false)
	}
	if err := New(DefaultParams()).Decode(snapshot.NewDec(e.Bytes())); err == nil {
		t.Fatalf("duplicate arm decoded without error")
	}
}
