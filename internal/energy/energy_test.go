package energy

import (
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/mem"
)

func TestComputeComponents(t *testing.T) {
	p := DefaultParams()
	c := cpu.Counts{Total: 100, ALU: 50, Loads: 20, Stores: 10, Branches: 20}
	l1 := mem.Stats{Hits: 25, Misses: 5}
	l2 := mem.Stats{Hits: 4, Misses: 1}
	b := Compute(p, c, l1, l2, DSAEvents{})
	if b.FrontEnd != 100*p.FrontEnd {
		t.Errorf("frontend = %v", b.FrontEnd)
	}
	wantScalar := 50*p.ALU + 30*p.LdSt + 20*p.Branch
	if b.Scalar != wantScalar {
		t.Errorf("scalar = %v, want %v", b.Scalar, wantScalar)
	}
	wantCaches := 30*p.L1 + 5*p.L2 + 1*p.DRAM
	if b.Caches != wantCaches {
		t.Errorf("caches = %v, want %v", b.Caches, wantCaches)
	}
	if b.NEON != 0 || b.DSA != 0 {
		t.Error("unused components must be zero")
	}
	if b.Total() != b.FrontEnd+b.Scalar+b.Caches {
		t.Error("total mismatch")
	}
}

func TestComputeDSAEvents(t *testing.T) {
	p := DefaultParams()
	d := DSAEvents{StateTransitions: 10, Observations: 100, DSACacheAccesses: 5,
		VCacheAccesses: 20, ArrayMapAccesses: 3, CIDPCompares: 7}
	b := Compute(p, cpu.Counts{}, mem.Stats{}, mem.Stats{}, d)
	want := 10*p.DSAState + 100*p.DSAObserve + 5*p.DSACache + 20*p.VCache +
		3*p.ArrayMap + 7*p.CIDPCompare
	if b.DSA != want {
		t.Errorf("dsa = %v, want %v", b.DSA, want)
	}
}

// TestVectorReplacesScalarEnergy: replacing 4 scalar adds + their
// front-end slots with one vector op must cost less energy — the core
// mechanism behind the paper's 45 % savings.
func TestVectorReplacesScalarEnergy(t *testing.T) {
	p := DefaultParams()
	scalar := Compute(p, cpu.Counts{Total: 4, ALU: 4}, mem.Stats{}, mem.Stats{}, DSAEvents{})
	vector := Compute(p, cpu.Counts{Total: 1, VecOps: 1}, mem.Stats{}, mem.Stats{}, DSAEvents{})
	if vector.Total() >= scalar.Total() {
		t.Errorf("vector %v must be cheaper than scalar %v", vector.Total(), scalar.Total())
	}
}

// Property: energy is monotone in every counter.
func TestQuickEnergyMonotone(t *testing.T) {
	p := DefaultParams()
	f := func(total, alu, loads uint16, l1h, l1m uint16) bool {
		c1 := cpu.Counts{Total: uint64(total), ALU: uint64(alu), Loads: uint64(loads)}
		c2 := c1
		c2.Total++
		c2.ALU++
		s1 := mem.Stats{Hits: uint64(l1h), Misses: uint64(l1m)}
		b1 := Compute(p, c1, s1, mem.Stats{}, DSAEvents{})
		b2 := Compute(p, c2, s1, mem.Stats{}, DSAEvents{})
		return b2.Total() > b1.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
