// Package energy provides the event-driven energy model standing in
// for the dissertation's McPAT (core) + Cadence RTL (DSA logic)
// methodology. Every retired event — scalar instruction by class,
// cache access by level, NEON operation, DSA state-machine transition
// and DSA-internal cache access — is charged a fixed per-event energy;
// totals are reported in nanojoules.
//
// The constants are calibrated so the *relative* results reproduce the
// paper's shape: vectorized execution retires far fewer instructions
// (and therefore far less front-end energy), so DLP-rich workloads
// save substantial energy under DSA (the paper's headline is 45 % over
// the ARM original execution), while the DSA detection logic itself
// adds only a small fraction (Article 3, Table 3).
package energy

import (
	"repro/internal/cpu"
	"repro/internal/mem"
)

// Params holds per-event energies in nanojoules.
type Params struct {
	// Front end: fetch+decode+rename+commit per retired instruction.
	// This is the dominant per-instruction cost on an O3 core and the
	// main reason SIMD execution saves energy.
	FrontEnd float64

	// Scalar back-end per operation class.
	ALU    float64
	Mul    float64
	Div    float64
	FP     float64
	LdSt   float64 // address generation + LSQ, excluding caches
	Branch float64
	Nop    float64 // squashed/predicated-off slot

	// Cache hierarchy per access.
	L1   float64
	L2   float64
	DRAM float64

	// NEON engine.
	VecOp  float64 // 128-bit ALU operation
	VecMem float64 // vector load/store (excluding caches)
	VecDup float64 // ARM→NEON transfer

	// DSA detection logic (RTL-derived in the paper).
	DSAState    float64 // one state-machine transition
	DSAObserve  float64 // tap of one retired instruction while probing
	DSACache    float64 // DSA cache access
	VCache      float64 // verification cache access
	ArrayMap    float64 // array-map register file access
	CIDPCompare float64 // one cross-iteration predictor evaluation
}

// DefaultParams returns the calibrated model.
func DefaultParams() Params {
	return Params{
		FrontEnd: 0.30,
		ALU:      0.08,
		Mul:      0.20,
		Div:      0.90,
		FP:       0.25,
		LdSt:     0.10,
		Branch:   0.10,
		Nop:      0.05,
		L1:       0.12,
		L2:       0.45,
		DRAM:     6.0,
		// A 128-bit lane array costs ~2.5× a scalar ALU op but
		// replaces 4–16 scalar operations plus their front-end work.
		VecOp:  0.28,
		VecMem: 0.30,
		VecDup: 0.15,
		// DSA logic is 2.18 % of the core area (Article 1 Table 3);
		// its per-event energies are correspondingly small.
		DSAState:    0.02,
		DSAObserve:  0.004,
		DSACache:    0.03,
		VCache:      0.015,
		ArrayMap:    0.01,
		CIDPCompare: 0.008,
	}
}

// DSAEvents counts the DSA-internal activity the detection logic
// performed during a run (see dsa.Stats; duplicated here to avoid an
// import cycle — the dsa package converts).
type DSAEvents struct {
	StateTransitions uint64
	Observations     uint64
	DSACacheAccesses uint64
	VCacheAccesses   uint64
	ArrayMapAccesses uint64
	CIDPCompares     uint64
}

// Breakdown is the energy report for one run.
type Breakdown struct {
	FrontEnd float64
	Scalar   float64
	Caches   float64
	NEON     float64
	DSA      float64
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 {
	return b.FrontEnd + b.Scalar + b.Caches + b.NEON + b.DSA
}

// Compute derives the energy breakdown from run counters.
func Compute(p Params, c cpu.Counts, l1, l2 mem.Stats, d DSAEvents) Breakdown {
	var b Breakdown
	b.FrontEnd = float64(c.Total) * p.FrontEnd
	b.Scalar = float64(c.ALU)*p.ALU +
		float64(c.Mul)*p.Mul +
		float64(c.Div)*p.Div +
		float64(c.FP)*p.FP +
		float64(c.Loads+c.Stores)*p.LdSt +
		float64(c.Branches)*p.Branch +
		float64(c.Nops)*p.Nop
	// Every L1 access (hit or miss) energizes L1; misses additionally
	// energize L2, and L2 misses energize DRAM.
	b.Caches = float64(l1.Hits+l1.Misses)*p.L1 +
		float64(l2.Hits+l2.Misses)*p.L2 +
		float64(l2.Misses)*p.DRAM
	b.NEON = float64(c.VecOps)*p.VecOp +
		float64(c.VecLoads+c.VecStores)*p.VecMem +
		float64(c.VecDups)*p.VecDup
	b.DSA = float64(d.StateTransitions)*p.DSAState +
		float64(d.Observations)*p.DSAObserve +
		float64(d.DSACacheAccesses)*p.DSACache +
		float64(d.VCacheAccesses)*p.VCache +
		float64(d.ArrayMapAccesses)*p.ArrayMap +
		float64(d.CIDPCompares)*p.CIDPCompare
	return b
}
