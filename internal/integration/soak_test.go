package integration

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/runner"
	"repro/internal/workloads"
)

// soakSeed makes the chaos soak reproducible: it seeds the job-order
// shuffle and the per-job RNGs that pick sparse fault arming. Set via
// -soak-seed or DSASIM_SOAK_SEED; the default (1) keeps CI
// deterministic, and any failure prints the seed to replay it.
var soakSeed = flag.Int64("soak-seed", 0, "chaos soak seed (0 = $DSASIM_SOAK_SEED, else 1)")

func chaosSeed() int64 {
	if *soakSeed != 0 {
		return *soakSeed
	}
	if env := os.Getenv("DSASIM_SOAK_SEED"); env != "" {
		var s int64
		if _, err := fmt.Sscan(env, &s); err == nil && s != 0 {
			return s
		}
	}
	return 1
}

// jobRNG derives an independent deterministic stream per job name, so
// adding or reordering jobs does not perturb the others' draws.
func jobRNG(seed int64, name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
}

// TestChaosSoak is the batch-level acceptance gate (`make soak-short`):
// the full workload library runs concurrently under the supervisor
// with every fault class injected, plus synthetic panic and runaway
// jobs, under the race detector in CI. The batch must lose nothing:
//
//   - every job ends ok, degraded, or failed with a classified cause;
//   - no panic escapes a worker (the test process surviving the
//     crasher job is the proof);
//   - every ok/degraded workload job's final memory image digest
//     equals the DSA-off scalar reference.
func TestChaosSoak(t *testing.T) {
	seed := chaosSeed()
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("reproduce with: go test ./internal/integration -run TestChaosSoak -soak-seed=%d", seed)
		}
	})
	ws := workloads.All()
	kinds := []dsa.FaultKind{
		dsa.FaultCorruptCache,
		dsa.FaultSkewCIDP,
		dsa.FaultTruncateRange,
		dsa.FaultExecutorError,
	}

	// Scalar reference digests, one DSA-off run per workload.
	ref := make(map[string]uint64, len(ws))
	for _, w := range ws {
		m := cpu.MustNew(w.Scalar(), cpu.DefaultConfig())
		w.Setup(m)
		if err := m.Run(nil); err != nil {
			t.Fatalf("%s scalar reference: %v", w.Name, err)
		}
		ref[w.Name] = m.Mem.Sum64()
	}

	var jobs []runner.Job
	addDSAJob := func(w *workloads.Workload, label string, cfg dsa.Config) {
		jobs = append(jobs, runner.Job{
			Name:     w.Name + "/" + label,
			Workload: w,
			CPU:      cpu.DefaultConfig(),
			DSA:      cfg,
		})
	}

	for _, w := range ws {
		// Clean run under the hard oracle: any divergence would surface.
		clean := dsa.DefaultConfig()
		clean.Verify = dsa.VerifyConfig{Enabled: true}
		addDSAJob(w, "clean", clean)

		// Every fault class with the oracle as in-run safety net.
		for _, kind := range kinds {
			cfg := dsa.DefaultConfig()
			cfg.Fault = dsa.FaultConfig{Kind: kind, EveryN: 1}
			cfg.Verify = dsa.VerifyConfig{Enabled: true, Fallback: true}
			addDSAJob(w, "fault-"+kind.String(), cfg)
		}

		// Hard-oracle fault runs: divergences become job errors, so
		// these exercise the retry → degradation ladder.
		hard := dsa.DefaultConfig()
		hard.Fault = dsa.FaultConfig{Kind: dsa.FaultTruncateRange, EveryN: 1}
		hard.Verify = dsa.VerifyConfig{Enabled: true}
		addDSAJob(w, "hard-truncated", hard)

		if !testing.Short() {
			// Sparse arming (every 2nd..4th takeover) mixes committed and
			// faulted takeovers within one job; the cadence is drawn from
			// the job's seeded RNG so each soak seed probes a different
			// interleaving, reproducibly.
			for _, kind := range kinds {
				name := fmt.Sprintf("%s/sparse-%s", w.Name, kind.String())
				cfg := dsa.DefaultConfig()
				cfg.Fault = dsa.FaultConfig{Kind: kind, EveryN: 2 + jobRNG(seed, name).Uint64()%3}
				cfg.Verify = dsa.VerifyConfig{Enabled: true, Fallback: true}
				addDSAJob(w, fmt.Sprintf("sparse-%s", kind.String()), cfg)
			}
		}
	}

	// Synthetic chaos: a job that panics on every rung, and a runaway
	// loop that only a deadline can stop.
	jobs = append(jobs, runner.Job{
		Name: "synthetic/crasher",
		Workload: &workloads.Workload{
			Name:   "crasher",
			Scalar: mustProg(t, "crasher", "halt"),
			Setup:  func(*cpu.Machine) { panic("chaos: synthetic crash") },
			Check:  func(*cpu.Machine) error { return nil },
		},
		CPU: smallCPUCfg(),
		DSA: dsa.DefaultConfig(),
	}, runner.Job{
		Name: "synthetic/runaway",
		Workload: &workloads.Workload{
			Name:   "runaway",
			Scalar: mustProg(t, "runaway", "x: b x"),
			Setup:  func(*cpu.Machine) {},
			Check:  func(*cpu.Machine) error { return nil },
		},
		CPU:     smallCPUCfg(),
		DSA:     dsa.DefaultConfig(),
		Timeout: 200 * time.Millisecond,
	})

	// Seeded shuffle: vary which jobs contend for workers together
	// without losing the ability to replay a given schedule shape.
	rand.New(rand.NewSource(seed)).Shuffle(len(jobs), func(i, j int) {
		jobs[i], jobs[j] = jobs[j], jobs[i]
	})

	rep := runner.Run(context.Background(), jobs, runner.Options{
		Workers:        runtime.GOMAXPROCS(0),
		Timeout:        2 * time.Minute,
		Retries:        1,
		Backoff:        time.Millisecond,
		MemBudgetBytes: 12 * (16 << 20),
	})

	if len(rep.Results) != len(jobs) {
		t.Fatalf("batch lost jobs: %d results for %d jobs", len(rep.Results), len(jobs))
	}
	for _, r := range rep.Results {
		switch r.Status {
		case runner.StatusOK, runner.StatusDegraded, runner.StatusFailed:
		default:
			t.Errorf("%s: unterminated status %q", r.Job, r.Status)
			continue
		}
		if r.Status == runner.StatusFailed {
			if r.Cause == "" || r.Err == nil {
				t.Errorf("%s: failed without attributed cause (cause=%q err=%v)", r.Job, r.Cause, r.Err)
			}
			switch r.Job {
			case "synthetic/crasher":
				if r.Cause != "panic" {
					t.Errorf("crasher: cause = %q, want panic", r.Cause)
				}
			case "synthetic/runaway":
				if r.Cause != "deadline" {
					t.Errorf("runaway: cause = %q, want deadline", r.Cause)
				}
			default:
				t.Errorf("workload job %s failed: %v", r.Job, r.Err)
			}
			continue
		}
		if r.Status == runner.StatusDegraded && (!r.Degraded || r.Cause == "") {
			t.Errorf("%s: degraded without cause attribution (%+v)", r.Job, r)
		}
		// Memory correctness: ok and degraded workload jobs must land
		// on the scalar reference image, fault injection or not.
		wname, _, _ := strings.Cut(r.Job, "/")
		if wref, ok := ref[wname]; ok && r.MemSum != wref {
			t.Errorf("%s: final memory digest %#x != scalar reference %#x", r.Job, r.MemSum, wref)
		}
	}

	okCount, degraded, failed := rep.OK, rep.Degrade, rep.Failed
	t.Logf("soak: %d jobs — %d ok, %d degraded, %d failed, %d retries, wall %s",
		len(jobs), okCount, degraded, failed, rep.Retries, rep.Wall)
	// The hard-truncated jobs guarantee the degradation rung actually
	// ran in this soak (workloads with takeovers cannot pass hard
	// verification under a truncating executor).
	if degraded == 0 {
		t.Error("soak exercised no degradation — hard-oracle fault jobs should degrade")
	}
	if failed != 2 {
		t.Errorf("failed = %d, want exactly the 2 synthetic chaos jobs", failed)
	}
}

func mustProg(t *testing.T, name, src string) func() *armlite.Program {
	t.Helper()
	prog, err := asm.Parse(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return func() *armlite.Program { return prog }
}

func smallCPUCfg() cpu.Config {
	c := cpu.DefaultConfig()
	c.MemBytes = 1 << 20
	return c
}
