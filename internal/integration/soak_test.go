package integration

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/runner"
	"repro/internal/workloads"
)

// TestChaosSoak is the batch-level acceptance gate (`make soak-short`):
// the full workload library runs concurrently under the supervisor
// with every fault class injected, plus synthetic panic and runaway
// jobs, under the race detector in CI. The batch must lose nothing:
//
//   - every job ends ok, degraded, or failed with a classified cause;
//   - no panic escapes a worker (the test process surviving the
//     crasher job is the proof);
//   - every ok/degraded workload job's final memory image digest
//     equals the DSA-off scalar reference.
func TestChaosSoak(t *testing.T) {
	ws := workloads.All()
	kinds := []dsa.FaultKind{
		dsa.FaultCorruptCache,
		dsa.FaultSkewCIDP,
		dsa.FaultTruncateRange,
		dsa.FaultExecutorError,
	}

	// Scalar reference digests, one DSA-off run per workload.
	ref := make(map[string]uint64, len(ws))
	for _, w := range ws {
		m := cpu.MustNew(w.Scalar(), cpu.DefaultConfig())
		w.Setup(m)
		if err := m.Run(nil); err != nil {
			t.Fatalf("%s scalar reference: %v", w.Name, err)
		}
		ref[w.Name] = m.Mem.Sum64()
	}

	var jobs []runner.Job
	addDSAJob := func(w *workloads.Workload, label string, cfg dsa.Config) {
		jobs = append(jobs, runner.Job{
			Name:     w.Name + "/" + label,
			Workload: w,
			CPU:      cpu.DefaultConfig(),
			DSA:      cfg,
		})
	}

	for _, w := range ws {
		// Clean run under the hard oracle: any divergence would surface.
		clean := dsa.DefaultConfig()
		clean.Verify = dsa.VerifyConfig{Enabled: true}
		addDSAJob(w, "clean", clean)

		// Every fault class with the oracle as in-run safety net.
		for _, kind := range kinds {
			cfg := dsa.DefaultConfig()
			cfg.Fault = dsa.FaultConfig{Kind: kind, EveryN: 1}
			cfg.Verify = dsa.VerifyConfig{Enabled: true, Fallback: true}
			addDSAJob(w, "fault-"+kind.String(), cfg)
		}

		// Hard-oracle fault runs: divergences become job errors, so
		// these exercise the retry → degradation ladder.
		hard := dsa.DefaultConfig()
		hard.Fault = dsa.FaultConfig{Kind: dsa.FaultTruncateRange, EveryN: 1}
		hard.Verify = dsa.VerifyConfig{Enabled: true}
		addDSAJob(w, "hard-truncated", hard)

		if !testing.Short() {
			// Sparse arming (every 2nd/3rd takeover) mixes committed and
			// faulted takeovers within one job.
			for i, kind := range kinds {
				cfg := dsa.DefaultConfig()
				cfg.Fault = dsa.FaultConfig{Kind: kind, EveryN: uint64(2 + i%2)}
				cfg.Verify = dsa.VerifyConfig{Enabled: true, Fallback: true}
				addDSAJob(w, fmt.Sprintf("sparse-%s", kind.String()), cfg)
			}
		}
	}

	// Synthetic chaos: a job that panics on every rung, and a runaway
	// loop that only a deadline can stop.
	jobs = append(jobs, runner.Job{
		Name: "synthetic/crasher",
		Workload: &workloads.Workload{
			Name:   "crasher",
			Scalar: mustProg(t, "crasher", "halt"),
			Setup:  func(*cpu.Machine) { panic("chaos: synthetic crash") },
			Check:  func(*cpu.Machine) error { return nil },
		},
		CPU: smallCPUCfg(),
		DSA: dsa.DefaultConfig(),
	}, runner.Job{
		Name: "synthetic/runaway",
		Workload: &workloads.Workload{
			Name:   "runaway",
			Scalar: mustProg(t, "runaway", "x: b x"),
			Setup:  func(*cpu.Machine) {},
			Check:  func(*cpu.Machine) error { return nil },
		},
		CPU:     smallCPUCfg(),
		DSA:     dsa.DefaultConfig(),
		Timeout: 200 * time.Millisecond,
	})

	rep := runner.Run(context.Background(), jobs, runner.Options{
		Workers:        runtime.GOMAXPROCS(0),
		Timeout:        2 * time.Minute,
		Retries:        1,
		Backoff:        time.Millisecond,
		MemBudgetBytes: 12 * (16 << 20),
	})

	if len(rep.Results) != len(jobs) {
		t.Fatalf("batch lost jobs: %d results for %d jobs", len(rep.Results), len(jobs))
	}
	for _, r := range rep.Results {
		switch r.Status {
		case runner.StatusOK, runner.StatusDegraded, runner.StatusFailed:
		default:
			t.Errorf("%s: unterminated status %q", r.Job, r.Status)
			continue
		}
		if r.Status == runner.StatusFailed {
			if r.Cause == "" || r.Err == nil {
				t.Errorf("%s: failed without attributed cause (cause=%q err=%v)", r.Job, r.Cause, r.Err)
			}
			switch r.Job {
			case "synthetic/crasher":
				if r.Cause != "panic" {
					t.Errorf("crasher: cause = %q, want panic", r.Cause)
				}
			case "synthetic/runaway":
				if r.Cause != "deadline" {
					t.Errorf("runaway: cause = %q, want deadline", r.Cause)
				}
			default:
				t.Errorf("workload job %s failed: %v", r.Job, r.Err)
			}
			continue
		}
		if r.Status == runner.StatusDegraded && (!r.Degraded || r.Cause == "") {
			t.Errorf("%s: degraded without cause attribution (%+v)", r.Job, r)
		}
		// Memory correctness: ok and degraded workload jobs must land
		// on the scalar reference image, fault injection or not.
		wname, _, _ := strings.Cut(r.Job, "/")
		if wref, ok := ref[wname]; ok && r.MemSum != wref {
			t.Errorf("%s: final memory digest %#x != scalar reference %#x", r.Job, r.MemSum, wref)
		}
	}

	okCount, degraded, failed := rep.OK, rep.Degrade, rep.Failed
	t.Logf("soak: %d jobs — %d ok, %d degraded, %d failed, %d retries, wall %s",
		len(jobs), okCount, degraded, failed, rep.Retries, rep.Wall)
	// The hard-truncated jobs guarantee the degradation rung actually
	// ran in this soak (workloads with takeovers cannot pass hard
	// verification under a truncating executor).
	if degraded == 0 {
		t.Error("soak exercised no degradation — hard-oracle fault jobs should degrade")
	}
	if failed != 2 {
		t.Errorf("failed = %d, want exactly the 2 synthetic chaos jobs", failed)
	}
}

func mustProg(t *testing.T, name, src string) func() *armlite.Program {
	t.Helper()
	prog, err := asm.Parse(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return func() *armlite.Program { return prog }
}

func smallCPUCfg() cpu.Config {
	c := cpu.DefaultConfig()
	c.MemBytes = 1 << 20
	return c
}
