package integration

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/vectorize"
)

// randomLoop generates a random elementwise kernel: 1–4 chained ALU
// operations over up to two input streams plus immediates, a random
// element width and a random (often non-multiple) trip count; sometimes
// wrapped in an if/else on a compare.
type randomLoop struct {
	src   string
	trip  int
	word  bool
	outSz int
}

func genRandomLoop(r *rand.Rand) randomLoop {
	word := r.Intn(3) > 0 // 2/3 word, 1/3 byte
	suffix, step := "", 4
	if !word {
		suffix, step = "b", 1
	}
	trip := 5 + r.Intn(120)
	shape := r.Intn(6) // 0-2 plain, 3-4 conditional, 5 sentinel
	conditional := shape == 3 || shape == 4
	sentinel := shape == 5 && !word // sentinel scans bytes

	ops := []string{"add", "sub", "and", "orr", "eor"}
	if word {
		ops = append(ops, "mul")
	}

	body := ""
	// Value chain on r3, inputs r3 (stream A) and r1 (stream B).
	nOps := 1 + r.Intn(4)
	for i := 0; i < nOps; i++ {
		op := ops[r.Intn(len(ops))]
		if r.Intn(2) == 0 {
			body += fmt.Sprintf("        %s   r3, r3, r1\n", op)
		} else {
			body += fmt.Sprintf("        %s   r3, r3, #%d\n", op, 1+r.Intn(100))
		}
	}

	var src string
	if sentinel {
		// Zero-terminated scan: stop check first, payload after.
		body = ""
		for i := 0; i < nOps; i++ {
			op := ops[r.Intn(len(ops))]
			body += fmt.Sprintf("        %s   r4, r4, #%d\n", op, 1+r.Intn(100))
		}
		src = fmt.Sprintf(`
        mov   r5, #0x10000
        mov   r2, #0x30000
loop:   ldrb  r3, [r5], #1
        cmp   r3, #0
        beq   done
        mov   r4, r3
%s        strb  r4, [r2], #1
        b     loop
done:   halt
`, body)
		return randomLoop{src: src, trip: trip, word: word, outSz: 1024}
	}
	if conditional {
		src = fmt.Sprintf(`
        mov   r5, #0x10000
        mov   r10, #0x20000
        mov   r2, #0x30000
        mov   r0, #0
        mov   r4, #%d
loop:   ldr%s  r3, [r5, r0%s]
        ldr%s  r1, [r10, r0%s]
        cmp   r3, r1
        ble   elseL
%s        str%s  r3, [r2, r0%s]
        b     endif
elseL:  str%s  r1, [r2, r0%s]
endif:  add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`, trip,
			suffix, idxSuffix(word), suffix, idxSuffix(word),
			body, suffix, idxSuffix(word), suffix, idxSuffix(word))
	} else {
		src = fmt.Sprintf(`
        mov   r5, #0x10000
        mov   r10, #0x20000
        mov   r2, #0x30000
        mov   r0, #0
        mov   r4, #%d
loop:   ldr%s  r3, [r5], #%d
        ldr%s  r1, [r10], #%d
%s        str%s  r3, [r2], #%d
        add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`, trip, suffix, step, suffix, step, body, suffix, step)
	}
	return randomLoop{src: src, trip: trip, word: word, outSz: trip * step}
}

func idxSuffix(word bool) string {
	if word {
		return ", lsl #2"
	}
	return ""
}

func seedRandom(r *rand.Rand) func(*cpu.Machine) {
	a := make([]byte, 1024)
	b := make([]byte, 1024)
	r.Read(a)
	r.Read(b)
	return func(m *cpu.Machine) {
		m.Mem.WriteBytes(0x10000, a)
		m.Mem.WriteBytes(0x20000, b)
	}
}

// TestRandomLoopsDifferential cross-checks 200 random kernels: the DSA
// run and the statically vectorized run must both produce memory
// byte-identical to the scalar run.
func TestRandomLoopsDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(20190222)) // the dissertation's defense date
	for i := 0; i < 200; i++ {
		lp := genRandomLoop(r)
		prog, err := asm.Assemble(fmt.Sprintf("rand%d", i), lp.src)
		if err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, lp.src)
		}
		setup := seedRandom(r)

		scalar := cpu.MustNew(prog, cpu.DefaultConfig())
		setup(scalar)
		if err := scalar.Run(nil); err != nil {
			t.Fatalf("case %d scalar: %v\n%s", i, err, lp.src)
		}
		want, _ := scalar.Mem.ReadBytes(0x30000, lp.outSz)

		// DSA run.
		sys, err := dsa.NewSystem(prog, cpu.DefaultConfig(), dsa.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		setup(sys.M)
		if err := sys.Run(); err != nil {
			t.Fatalf("case %d dsa: %v\n%s", i, err, lp.src)
		}
		got, _ := sys.M.Mem.ReadBytes(0x30000, lp.outSz)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("case %d: DSA byte %d = %d, want %d\nkinds=%v rejections=%v\n%s",
					i, j, got[j], want[j], sys.Stats().ByKind, sys.Stats().RejectedReasons, lp.src)
			}
		}
		// Scalar register state must match too (resume correctness).
		for reg := 0; reg < 13; reg++ {
			if sys.M.R[reg] != scalar.R[reg] {
				t.Fatalf("case %d: DSA r%d = %#x, want %#x\n%s",
					i, reg, sys.M.R[reg], scalar.R[reg], lp.src)
			}
		}

		// AutoVec run.
		vprog, _, err := vectorize.AutoVectorize(prog, vectorize.Options{NoAlias: true})
		if err != nil {
			t.Fatalf("case %d autovec: %v", i, err)
		}
		vm := cpu.MustNew(vprog, cpu.DefaultConfig())
		setup(vm)
		if err := vm.Run(nil); err != nil {
			t.Fatalf("case %d autovec run: %v\n%s", i, err, vprog)
		}
		vgot, _ := vm.Mem.ReadBytes(0x30000, lp.outSz)
		for j := range want {
			if want[j] != vgot[j] {
				t.Fatalf("case %d: autovec byte %d = %d, want %d\n%s\n--- compiled:\n%s",
					i, j, vgot[j], want[j], lp.src, vprog)
			}
		}
	}
}

// TestRandomLoopsNeverSlower: across the random corpus the DSA must
// never lose meaningfully to scalar (the no-penalty claim under fuzz).
func TestRandomLoopsNeverSlower(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 60; i++ {
		lp := genRandomLoop(r)
		prog, err := asm.Assemble(fmt.Sprintf("perf%d", i), lp.src)
		if err != nil {
			t.Fatal(err)
		}
		setup := seedRandom(r)
		scalar := cpu.MustNew(prog, cpu.DefaultConfig())
		setup(scalar)
		if err := scalar.Run(nil); err != nil {
			t.Fatal(err)
		}
		sys, err := dsa.NewSystem(prog, cpu.DefaultConfig(), dsa.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		setup(sys.M)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		if float64(sys.M.Ticks) > float64(scalar.Ticks)*1.02 {
			t.Errorf("case %d: DSA %d ticks vs scalar %d (>2%% penalty)\n%s",
				i, sys.M.Ticks, scalar.Ticks, lp.src)
		}
	}
}

// TestDSAOnCompiledBinary: running the DSA over an already
// auto-vectorized binary must stay correct and neutral — the vector
// loops are not re-vectorizable (they contain NEON ops) and the scalar
// remainders are below the profitability guard.
func TestDSAOnCompiledBinary(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		lp := genRandomLoop(r)
		prog, err := asm.Assemble(fmt.Sprintf("c%d", i), lp.src)
		if err != nil {
			t.Fatal(err)
		}
		compiled, _, err := vectorize.AutoVectorize(prog, vectorize.Options{NoAlias: true})
		if err != nil {
			t.Fatal(err)
		}
		setup := seedRandom(r)

		ref := cpu.MustNew(prog, cpu.DefaultConfig())
		setup(ref)
		if err := ref.Run(nil); err != nil {
			t.Fatal(err)
		}
		want, _ := ref.Mem.ReadBytes(0x30000, lp.outSz)

		sys, err := dsa.NewSystem(compiled, cpu.DefaultConfig(), dsa.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		setup(sys.M)
		if err := sys.Run(); err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, compiled)
		}
		got, _ := sys.M.Mem.ReadBytes(0x30000, lp.outSz)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("case %d: byte %d = %d, want %d", i, j, got[j], want[j])
			}
		}
	}
}

// TestTwoLoopsOneProgram: independent vectorizable loops in sequence
// both get detected, cached and taken over.
func TestTwoLoopsOneProgram(t *testing.T) {
	const src = `
        mov   r5, #0x10000
        mov   r2, #0x30000
        mov   r0, #0
l1:     ldr   r3, [r5], #4
        add   r3, r3, #5
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #40
        blt   l1
        mov   r5, #0x20000
        mov   r2, #0x40000
        mov   r0, #0
l2:     ldrb  r3, [r5], #1
        eor   r3, r3, #0x5A
        strb  r3, [r2], #1
        add   r0, r0, #1
        cmp   r0, #100
        blt   l2
        halt
`
	prog, err := asm.Assemble("two", src)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	setup := seedRandom(r)

	ref := cpu.MustNew(prog, cpu.DefaultConfig())
	setup(ref)
	if err := ref.Run(nil); err != nil {
		t.Fatal(err)
	}
	sys, err := dsa.NewSystem(prog, cpu.DefaultConfig(), dsa.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	setup(sys.M)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for _, region := range []struct {
		addr uint32
		n    int
	}{{0x30000, 160}, {0x40000, 100}} {
		w, _ := ref.Mem.ReadBytes(region.addr, region.n)
		g, _ := sys.M.Mem.ReadBytes(region.addr, region.n)
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("region %#x byte %d = %d, want %d", region.addr, j, g[j], w[j])
			}
		}
	}
	st := sys.Stats()
	if st.Takeovers != 2 {
		t.Errorf("takeovers = %d, want 2", st.Takeovers)
	}
	if len(sys.E.Report()) != 2 {
		t.Errorf("cached loops = %d, want 2", len(sys.E.Report()))
	}
}
