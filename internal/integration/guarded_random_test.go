package integration

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/dsa"
)

// runGuardedCase cross-checks one random kernel under cfg against its
// scalar run: output region and the low registers must match exactly.
func runGuardedCase(t *testing.T, i int, lp randomLoop, cfg dsa.Config, setup func(*cpu.Machine)) *dsa.System {
	t.Helper()
	prog, err := asm.Parse(fmt.Sprintf("g%d", i), lp.src)
	if err != nil {
		t.Fatalf("case %d: %v\n%s", i, err, lp.src)
	}
	scalar := cpu.MustNew(prog, cpu.DefaultConfig())
	setup(scalar)
	if err := scalar.Run(nil); err != nil {
		t.Fatalf("case %d scalar: %v\n%s", i, err, lp.src)
	}
	want, _ := scalar.Mem.ReadBytes(0x30000, lp.outSz)

	sys, err := dsa.NewSystem(prog, cpu.DefaultConfig(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	setup(sys.M)
	if err := sys.Run(); err != nil {
		t.Fatalf("case %d guarded dsa: %v\n%s", i, err, lp.src)
	}
	got, _ := sys.M.Mem.ReadBytes(0x30000, lp.outSz)
	for j := range want {
		if want[j] != got[j] {
			t.Fatalf("case %d: byte %d = %d, want %d\nfallbacks=%v\n%s",
				i, j, got[j], want[j], sys.Stats().FallbackReasons, lp.src)
		}
	}
	for reg := 0; reg < 13; reg++ {
		if sys.M.R[reg] != scalar.R[reg] {
			t.Fatalf("case %d: r%d = %#x, want %#x\n%s",
				i, reg, sys.M.R[reg], scalar.R[reg], lp.src)
		}
	}
	return sys
}

// TestRandomLoopsVerified runs the random corpus under the hard
// differential oracle: every takeover is shadowed by a scalar replay
// and any divergence is a test failure — the oracle must agree with
// the DSA on arbitrary generated kernels, and its presence must not
// change architectural results.
func TestRandomLoopsVerified(t *testing.T) {
	r := rand.New(rand.NewSource(20190222))
	cfg := dsa.DefaultConfig()
	cfg.Verify = dsa.VerifyConfig{Enabled: true}
	divergences := uint64(0)
	for i := 0; i < 120; i++ {
		lp := genRandomLoop(r)
		sys := runGuardedCase(t, i, lp, cfg, seedRandom(r))
		divergences += sys.Stats().Divergences
	}
	if divergences != 0 {
		t.Errorf("oracle reported %d divergences over clean corpus", divergences)
	}
}

// TestRandomLoopsFaulted injects a rotating fault class into the
// random corpus with the oracle as a safety net: whatever the fault
// does, the run must complete with scalar-identical state.
func TestRandomLoopsFaulted(t *testing.T) {
	kinds := []dsa.FaultKind{
		dsa.FaultCorruptCache,
		dsa.FaultSkewCIDP,
		dsa.FaultTruncateRange,
		dsa.FaultExecutorError,
	}
	r := rand.New(rand.NewSource(424242))
	for i := 0; i < 120; i++ {
		lp := genRandomLoop(r)
		cfg := dsa.DefaultConfig()
		cfg.Fault = dsa.FaultConfig{Kind: kinds[i%len(kinds)], EveryN: uint64(1 + r.Intn(3))}
		cfg.Verify = dsa.VerifyConfig{Enabled: true, Fallback: true}
		runGuardedCase(t, i, lp, cfg, seedRandom(r))
	}
}
