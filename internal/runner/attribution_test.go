package runner

import (
	"context"
	"testing"

	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/workloads"
)

// faultKinds is the full injectable fault taxonomy of dsa/faultinject.go.
var faultKinds = []dsa.FaultKind{
	dsa.FaultCorruptCache,
	dsa.FaultSkewCIDP,
	dsa.FaultTruncateRange,
	dsa.FaultExecutorError,
}

// faultedConfig arms kind on every takeover with the oracle as the
// fallback safety net — the production posture for a faulty part.
func faultedConfig(kind dsa.FaultKind) dsa.Config {
	cfg := dsa.DefaultConfig()
	cfg.Fault = dsa.FaultConfig{Kind: kind, EveryN: 1}
	cfg.Verify = dsa.VerifyConfig{Enabled: true, Fallback: true}
	return cfg
}

// requireSoleAttribution asserts the run fell back at least once and
// that every fallback carries exactly the injected fault's label — the
// contract that lets an operator read a batch report and name the
// broken hardware structure.
func requireSoleAttribution(t *testing.T, st *dsa.Stats, kind dsa.FaultKind) {
	t.Helper()
	want := "fault:" + kind.String()
	if st.Fallbacks == 0 {
		t.Fatalf("no fallbacks despite %s armed on every takeover (takeovers=%d)", kind, st.Takeovers)
	}
	if len(st.FallbackReasons) != 1 {
		t.Fatalf("FallbackReasons = %v, want exactly one key %q", st.FallbackReasons, want)
	}
	if st.FallbackReasons[want] != st.Fallbacks {
		t.Fatalf("FallbackReasons = %v, want all %d fallbacks under %q",
			st.FallbackReasons, st.Fallbacks, want)
	}
}

// TestFaultAttributionSerial maps each fault class to its
// FallbackReasons key through a direct (unsupervised) system run.
func TestFaultAttributionSerial(t *testing.T) {
	w, err := workloads.ByName("rgb_gray")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range faultKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			sys, err := dsa.NewSystem(w.Scalar(), cpu.DefaultConfig(), faultedConfig(kind))
			if err != nil {
				t.Fatal(err)
			}
			w.Setup(sys.M)
			if err := sys.Run(); err != nil {
				t.Fatalf("faulted run must complete via fallback: %v", err)
			}
			if err := w.Check(sys.M); err != nil {
				t.Fatalf("output after fallback: %v", err)
			}
			requireSoleAttribution(t, sys.Stats(), kind)
		})
	}
}

// TestFaultAttributionViaRunner runs the same table as one concurrent
// batch: attribution must survive the supervisor — snapshotted stats,
// worker-pool scheduling and all.
func TestFaultAttributionViaRunner(t *testing.T) {
	w, err := workloads.ByName("rgb_gray")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	for _, kind := range faultKinds {
		jobs = append(jobs, Job{
			Name:     "rgb_gray/" + kind.String(),
			Workload: w,
			CPU:      cpu.DefaultConfig(),
			DSA:      faultedConfig(kind),
		})
	}
	rep := Run(context.Background(), jobs, Options{Workers: len(jobs)})
	for i, r := range rep.Results {
		kind := faultKinds[i]
		if r.Status != StatusOK {
			t.Errorf("%s: status = %s (cause %q), want ok via in-run fallback", r.Job, r.Status, r.Cause)
			continue
		}
		if r.Stats == nil {
			t.Errorf("%s: no stats snapshot", r.Job)
			continue
		}
		requireSoleAttribution(t, r.Stats, kind)
	}
}
