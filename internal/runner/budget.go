package runner

import (
	"context"
	"sync"

	"repro/internal/mem"
)

// jobOverheadBytes is the modelled per-job footprint beyond the flat
// memory image: checkpoint journal pages, DSA cache entries, engine
// tracks and stats. A generous constant — the journal saves at most a
// few hundred 256-byte pages per takeover and the DSA cache is 8 KB —
// so the budget errs toward admitting fewer jobs, never toward OOM.
const jobOverheadBytes = 1 << 20

// footprint estimates the peak resident bytes one attempt of job needs:
// its machine's flat memory plus the fixed overhead.
func footprint(job Job) int64 {
	mb := job.CPU.MemBytes
	if mb <= 0 {
		mb = mem.DefaultSize
	}
	return int64(mb) + jobOverheadBytes
}

// memBudget caps the summed footprint of in-flight jobs so a large
// batch on a big worker pool cannot OOM: workers block in acquire until
// enough earlier jobs release. A job larger than the whole budget is
// admitted only while nothing else is in flight (it runs alone rather
// than deadlocking the pool).
type memBudget struct {
	mu    sync.Mutex
	cond  *sync.Cond
	cap   int64
	inUse int64
}

func newMemBudget(ctx context.Context, capBytes int64) *memBudget {
	if capBytes <= 0 {
		return nil // unlimited
	}
	b := &memBudget{cap: capBytes}
	b.cond = sync.NewCond(&b.mu)
	// Wake blocked acquirers when the batch is canceled so they can
	// observe ctx and bail instead of waiting on releases forever.
	go func() {
		<-ctx.Done()
		b.cond.Broadcast()
	}()
	return b
}

// acquire blocks until n bytes fit under the cap (or the job is alone),
// or ctx is canceled. Nil receivers (unlimited budget) only check ctx.
func (b *memBudget) acquire(ctx context.Context, n int64) error {
	if b == nil {
		return ctx.Err()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.inUse > 0 && b.inUse+n > b.cap {
		if err := ctx.Err(); err != nil {
			return err
		}
		b.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	b.inUse += n
	return nil
}

// release returns n bytes to the budget and wakes waiting workers.
func (b *memBudget) release(n int64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.inUse -= n
	b.mu.Unlock()
	b.cond.Broadcast()
}

// DefaultMemBudgetBytes sizes the in-flight cap when Options leaves it
// zero: room for four default-sized machines — enough to keep a small
// pool busy, small enough for constrained CI runners.
const DefaultMemBudgetBytes = 4 * (mem.DefaultSize + jobOverheadBytes)
