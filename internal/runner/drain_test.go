package runner

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/dsa"
)

// TestRetryResumeDegradeAttribution is the regression test for the
// ordering/attribution nit: a job that walks the full
// retry→resume→degrade ladder must keep (a) every failed attempt's
// classified cause in order, and (b) the resume note from a *failed*
// early attempt — both used to be dropped because only the successful
// attempt's outcome reached the terminal result.
func TestRetryResumeDegradeAttribution(t *testing.T) {
	job := snapshotTestJob(t)
	// Every DSA attempt dies on a hard oracle divergence (retryable);
	// only the scalar degradation rung can finish the job.
	job.DSA.Fault = dsa.FaultConfig{Kind: dsa.FaultCorruptCache, EveryN: 500}
	job.DSA.Verify = dsa.VerifyConfig{Enabled: true, Fallback: false}

	// Scalar reference: what the degraded rerun must reproduce.
	scalarJob := job
	scalarJob.DSAOff = true
	scalarRef := Run(context.Background(), []Job{scalarJob}, Options{Workers: 1}).Results[0]
	if scalarRef.Status != StatusOK {
		t.Fatalf("scalar reference: %+v", scalarRef)
	}

	// A corrupt pre-existing checkpoint makes attempt 1's resume fail
	// with an attributed restart-from-zero. The harness writes it with
	// the clean config (the faulted one cannot finish its sizing run);
	// the bit flip trips the CRC before any config comparison.
	dir := t.TempDir()
	path, _ := writeMidRunCheckpoint(t, snapshotTestJob(t), dir)
	if err := dsa.InjectSnapshotFault(path, dsa.SnapBitFlip); err != nil {
		t.Fatal(err)
	}

	rep := Run(context.Background(), []Job{job}, Options{
		Workers:       1,
		Retries:       1,
		SnapshotDir:   dir,
		SnapshotEvery: 1000,
		Resume:        true,
	})
	r := rep.Results[0]

	if r.Status != StatusDegraded || !r.Degraded {
		t.Fatalf("status = %s (cause %q, err %v), want degraded", r.Status, r.Cause, r.Err)
	}
	if r.Cause != "divergence" {
		t.Errorf("Cause = %q, want divergence (the DSA path's terminal cause)", r.Cause)
	}
	// Two DSA attempts failed, in order, before the scalar salvage.
	want := []string{"divergence", "divergence"}
	if len(r.AttemptCauses) != len(want) {
		t.Fatalf("AttemptCauses = %v, want %v", r.AttemptCauses, want)
	}
	for i := range want {
		if r.AttemptCauses[i] != want[i] {
			t.Errorf("AttemptCauses[%d] = %q, want %q", i, r.AttemptCauses[i], want[i])
		}
	}
	// The failed first attempt's resume trouble survives, attributed to
	// its attempt, ahead of anything later.
	if !strings.HasPrefix(r.ResumeNote, "attempt 1: restart-from-zero: snapshot-corrupt") {
		t.Errorf("ResumeNote = %q, want it to open with attempt 1's restart-from-zero", r.ResumeNote)
	}
	// Degraded memory must still equal the scalar reference.
	if r.MemSum != scalarRef.MemSum {
		t.Errorf("degraded mem digest %016x != scalar reference %016x", r.MemSum, scalarRef.MemSum)
	}
}

// TestPoolDrainAndResume drives the daemon's crash-recovery story at
// the runner level: Drain stops a running job at a step boundary with
// a final checkpoint, and a fresh pool resumes it to the bit-identical
// result of an uninterrupted run.
func TestPoolDrainAndResume(t *testing.T) {
	job := snapshotTestJob(t)
	ref := referenceResult(t, job)
	dir := t.TempDir()

	// Drain from inside the progress callback: it runs on the attempt's
	// own goroutine before stepping resumes, so the very next drain-hook
	// check observes the flag — the interruption is deterministic, the
	// job can never win a race to the finish line.
	var p *Pool
	var mu sync.Mutex
	var samples []Progress
	opts := Options{
		Workers:       1,
		SnapshotDir:   dir,
		ProgressEvery: 1000,
		OnProgress: func(pr Progress) {
			mu.Lock()
			samples = append(samples, pr)
			mu.Unlock()
			if pr.Steps > 5000 {
				p.Drain()
			}
		},
	}

	p = NewPool(opts)
	r := p.Do(context.Background(), job)
	p.Close()

	if r.Status != StatusFailed || r.Cause != CauseDrained {
		t.Fatalf("drained job: status %s cause %q (err %v), want failed/%s", r.Status, r.Cause, r.Err, CauseDrained)
	}
	path := filepath.Join(dir, snapshotFileName(job.Name))
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("drain left no checkpoint: %v", err)
	}

	// Progress samples must belong to this job, attempt 1, with
	// non-decreasing step counts.
	mu.Lock()
	if len(samples) == 0 {
		t.Fatal("no progress samples")
	}
	var lastSteps uint64
	for _, s := range samples {
		if s.Job != job.Name || s.Attempt != 1 || s.DSAOff {
			t.Fatalf("sample %+v, want job %q attempt 1 dsa-on", s, job.Name)
		}
		if s.Steps < lastSteps {
			t.Fatalf("progress steps went backwards: %d after %d", s.Steps, lastSteps)
		}
		lastSteps = s.Steps
	}
	mu.Unlock()

	// A fresh pool resumes the drained job bit-identically.
	resumed := job
	resumed.Resume = true
	p2 := NewPool(Options{Workers: 1, SnapshotDir: dir})
	defer p2.Close()
	r2 := p2.Do(context.Background(), resumed)
	if r2.Status != StatusOK {
		t.Fatalf("resumed job: %+v (err %v)", r2, r2.Err)
	}
	if r2.ResumedFromStep == 0 {
		t.Error("resumed job restarted from zero, want resume from the drain checkpoint")
	}
	if r2.MemSum != ref.MemSum || r2.Ticks != ref.Ticks || r2.Steps != ref.Steps {
		t.Errorf("resumed result diverged: mem %016x ticks %d steps %d, want mem %016x ticks %d steps %d",
			r2.MemSum, r2.Ticks, r2.Steps, ref.MemSum, ref.Ticks, ref.Steps)
	}
}
