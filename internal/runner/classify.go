package runner

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/mem"
)

// ErrCheckFailed marks a job whose program ran to completion but whose
// output failed the workload's Go-reference check. With the DSA on,
// this is exactly the class of failure a DSA-off degradation run can
// repair.
var ErrCheckFailed = errors.New("runner: output check failed")

// PanicError wraps a panic recovered from a job goroutine so it flows
// through the supervisor as an ordinary attributed failure instead of
// killing the process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("job panicked: %v", e.Value) }

// classify maps a job error to an attribution cause and a retry
// verdict, using typed sentinels only.
//
// Retryable causes are the fault-shaped ones: injected executor
// faults, oracle divergences, guard trips (step budget, out-of-range),
// panics, wrong output, and blown per-attempt deadlines (each attempt
// gets a fresh deadline). Non-retryable causes are deterministic walls
// (global step limit, wild PC, unimplemented opcode) and batch
// cancellation, where retrying only burns the batch's remaining time.
func classify(err error) (cause string, retryable bool) {
	var pe *PanicError
	var div *dsa.Divergence
	switch {
	case errors.As(err, &pe):
		return "panic", true
	case errors.Is(err, ErrDrained):
		// A pool drain is not a failure of the job: the attempt
		// checkpointed and unwound so the owner can resume it later.
		return CauseDrained, false
	case errors.Is(err, ErrRevoked):
		// A revoked lease is drain semantics scoped to one job: the
		// checkpoint is kept for the job's next owner; retrying here
		// would race that owner.
		return CauseRevoked, false
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline", true
	case errors.Is(err, context.Canceled):
		return "canceled", false
	case errors.As(err, &div):
		return "divergence", true
	case errors.Is(err, dsa.ErrInjected):
		return "injected-fault", true
	case errors.Is(err, dsa.ErrStepBudget):
		return "step-budget", true
	case errors.Is(err, mem.ErrOutOfRange):
		return "out-of-range", true
	case errors.Is(err, ErrCheckFailed):
		return "output-mismatch", true
	case errors.Is(err, cpu.ErrMaxSteps):
		return "max-steps", false
	case errors.Is(err, cpu.ErrInvalidPC):
		return "invalid-pc", false
	case errors.Is(err, cpu.ErrUnimplemented):
		return "unimplemented", false
	case errors.Is(err, cpu.ErrCanceled):
		// A cancel hook firing without a context cause (custom hook).
		return "canceled", false
	default:
		return "error", true
	}
}

// degradable reports whether a final DSA-off rerun could still salvage
// the job. Batch cancellation cannot be outrun, and a deterministic
// scalar wall (global step limit, wild PC, unimplemented opcode) will
// stop a scalar rerun in exactly the same place — the scalar core
// executes a superset of every degraded run.
func degradable(err error) bool {
	switch {
	case errors.Is(err, context.Canceled),
		errors.Is(err, ErrDrained),
		errors.Is(err, ErrRevoked),
		errors.Is(err, cpu.ErrMaxSteps),
		errors.Is(err, cpu.ErrInvalidPC),
		errors.Is(err, cpu.ErrUnimplemented):
		return false
	}
	return true
}
