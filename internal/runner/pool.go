package runner

import (
	"context"
	"errors"
	"os"
	"sync"
	"sync/atomic"
)

// ErrDrained marks an attempt stopped by Pool.Drain: the attempt wrote
// a final checkpoint at a step boundary (when checkpointing is on) and
// unwound, so a restarted owner can resume it bit-identically. Drained
// jobs are neither retried nor degraded — they are not failures of the
// job, only of the moment.
var ErrDrained = errors.New("runner: drained")

// ErrRevoked marks an attempt stopped by Pool.Revoke: the job's lease
// was lost (a cluster coordinator reassigned it, or the worker fenced
// itself), so the attempt wrote a final checkpoint and unwound exactly
// like a drain — snapshot kept, never retried or degraded. The new
// owner resumes from the checkpoint.
var ErrRevoked = errors.New("runner: lease revoked")

// CauseDrained is the classified cause of a drained job, exposed so
// callers (the service daemon) can tell interrupted work from failed
// work without string-matching errors.
const CauseDrained = "drained"

// CauseRevoked is the classified cause of a job whose lease was
// revoked mid-run.
const CauseRevoked = "revoked"

// Progress is a live sample of one running attempt, emitted through
// Options.OnProgress from the attempt's own goroutine at step
// boundaries (engine-quiescent points for DSA systems).
type Progress struct {
	// Job is the job's name (the service uses job IDs here).
	Job string
	// Attempt numbers the run this sample belongs to, 1-based;
	// degradation reruns count like retries.
	Attempt int
	// DSAOff marks samples from scalar-only runs (baseline jobs and
	// the degradation rung).
	DSAOff bool
	// Steps/Ticks are the machine's counters at the sample point; a
	// resumed attempt starts from its checkpoint's counters, not zero.
	Steps uint64
	Ticks int64
	// Takeovers/Fallbacks mirror the DSA stats counters (0 when DSAOff).
	Takeovers uint64
	Fallbacks uint64
}

// DefaultProgressEvery is the step interval between progress samples
// when Options.ProgressEvery is zero.
const DefaultProgressEvery = 250_000

// Pool is a long-lived job executor: the same robustness ladder as
// Run, but accepting jobs one at a time for as long as the pool lives.
// The service daemon owns one Pool across all HTTP submissions so the
// memory budget and worker bound hold globally, not per batch.
type Pool struct {
	opts     Options
	bud      *memBudget
	sem      chan struct{}
	stop     context.CancelFunc
	draining atomic.Bool
	inflight atomic.Int64

	// revGen counts Revoke calls; the per-attempt hook rechecks the
	// revocation set only when it moves, keeping the per-step cost of
	// an idle revocation surface to one atomic load.
	revGen  atomic.Uint64
	revMu   sync.Mutex
	revoked map[string]struct{}
}

// NewPool builds a pool. opts.Workers bounds how many jobs Do admits
// concurrently; Close releases the pool's internals.
func NewPool(opts Options) *Pool {
	opts = opts.withDefaults()
	if opts.SnapshotDir != "" {
		// Best-effort: if the directory cannot be created, each job's
		// first save fails and disables its checkpointing with a note.
		_ = os.MkdirAll(opts.SnapshotDir, 0o755)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Pool{
		opts:    opts,
		bud:     newMemBudget(ctx, opts.MemBudgetBytes),
		sem:     make(chan struct{}, opts.Workers),
		stop:    cancel,
		revoked: map[string]struct{}{},
	}
}

// Do runs one job to its terminal result, blocking until a worker slot
// frees. Like Run it never loses a job: a canceled ctx yields a failed
// result with cause "canceled", a drain in flight yields cause
// "drained" with the job's checkpoint preserved on disk.
func (p *Pool) Do(ctx context.Context, job Job) Result {
	name := job.Name
	if name == "" && job.Workload != nil {
		name = job.Workload.Name
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return Result{Job: name, Status: StatusFailed, Cause: "canceled", Err: ctx.Err()}
	}
	defer func() { <-p.sem }()
	// A revocation always targets the run in flight at call time; a
	// lingering entry from a previous run of the same name must not
	// instantly kill this one (cluster reconciliation re-delivers any
	// still-wanted stop on the next heartbeat).
	p.revMu.Lock()
	delete(p.revoked, name)
	p.revMu.Unlock()
	p.inflight.Add(1)
	defer p.inflight.Add(-1)
	return runJob(ctx, job, p.opts, p)
}

// Revoke asks the named job's running attempt to stop at its next step
// boundary after writing a final checkpoint, unwinding with
// Status failed / Cause CauseRevoked and its snapshot kept — the
// drain semantics, scoped to one job. A cluster worker calls it when
// the coordinator withdraws an assignment or when the worker's own
// lease lapses (self-fencing). Revoking a job that is not running is
// harmless: the marker is cleared when that name next enters Do.
func (p *Pool) Revoke(jobName string) {
	p.revMu.Lock()
	p.revoked[jobName] = struct{}{}
	p.revMu.Unlock()
	p.revGen.Add(1)
}

func (p *Pool) isRevoked(jobName string) bool {
	p.revMu.Lock()
	_, ok := p.revoked[jobName]
	p.revMu.Unlock()
	return ok
}

// Drain asks every running attempt to stop at its next step boundary
// after writing a final checkpoint (when checkpointing is on). Drained
// jobs return with Status failed / Cause CauseDrained and keep their
// snapshot files, so a later pool (or daemon restart) resumes them.
// Drain does not block; callers wait on their own Do calls.
func (p *Pool) Drain() { p.draining.Store(true) }

// Draining reports whether Drain has been called.
func (p *Pool) Draining() bool { return p.draining.Load() }

// Inflight returns the number of jobs currently inside Do.
func (p *Pool) Inflight() int64 { return p.inflight.Load() }

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// MemUsage returns the in-flight memory budget occupancy in bytes;
// capacity is 0 when the budget is unlimited.
func (p *Pool) MemUsage() (inUse, capacity int64) {
	if p.bud == nil {
		return 0, 0
	}
	p.bud.mu.Lock()
	defer p.bud.mu.Unlock()
	return p.bud.inUse, p.bud.cap
}

// Close releases the pool's background resources. Jobs already inside
// Do finish normally; new Do calls after Close are a caller bug.
func (p *Pool) Close() { p.stop() }

// drainHook returns the hook that turns a pool drain — or a revocation
// of this job's lease — into a clean attempt stop: force a final
// checkpoint, then unwind with ErrDrained/ErrRevoked. Nil when the
// attempt runs outside a pool (plain Run batches drain via context
// cancellation instead). The revocation set is rechecked only when the
// pool's revocation generation moves, so the steady-state per-step
// cost is two atomic loads.
func (p *Pool) drainHook(ck *checkpointer, jobName string) func() error {
	if p == nil {
		return nil
	}
	var seenGen uint64
	return func() error {
		if p.draining.Load() {
			ck.saveNow()
			return ErrDrained
		}
		if g := p.revGen.Load(); g != seenGen {
			seenGen = g
			if p.isRevoked(jobName) {
				ck.saveNow()
				return ErrRevoked
			}
		}
		return nil
	}
}

// progressHook samples the attempt's counters every ProgressEvery
// steps and hands them to OnProgress. stats is nil for scalar runs.
func progressHook(opts Options, job string, attempt int, dsaOff bool,
	steps func() uint64, ticks func() int64, stats func() (takeovers, fallbacks uint64)) func() error {
	if opts.OnProgress == nil {
		return nil
	}
	every := opts.ProgressEvery
	if every == 0 {
		every = DefaultProgressEvery
	}
	last := steps()
	return func() error {
		now := steps()
		if now-last < every {
			return nil
		}
		last = now
		p := Progress{Job: job, Attempt: attempt, DSAOff: dsaOff, Steps: now, Ticks: ticks()}
		if stats != nil {
			p.Takeovers, p.Fallbacks = stats()
		}
		opts.OnProgress(p)
		return nil
	}
}

// chainHooks composes run hooks in order, skipping nils; the first
// error stops the chain (and the run).
func chainHooks(hooks ...func() error) func() error {
	live := hooks[:0]
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	chain := append([]func() error(nil), live...)
	return func() error {
		for _, h := range chain {
			if err := h(); err != nil {
				return err
			}
		}
		return nil
	}
}
