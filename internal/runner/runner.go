// Package runner is the simulation supervisor: it executes batches of
// dsa.System jobs (workload × configuration) on a bounded worker pool
// and guarantees that every job yields exactly one attributed result,
// whatever happens inside it.
//
// The robustness ladder, per job:
//
//  1. Run the job with its configured DSA, under a per-attempt
//     context deadline plumbed into the cpu step loop (checked every
//     CancelEvery instructions) and a panic guard that converts a
//     crashing job into an attributed failure.
//  2. On a fault-shaped failure (injected fault, divergence, guard
//     trip, panic, wrong output, blown deadline) retry up to Retries
//     times with exponential backoff.
//  3. If every DSA attempt failed, degrade: rerun the job DSA-off so
//     the batch still gets a scalar-correct result, marked degraded
//     and carrying the DSA failure's cause.
//  4. Only when even the scalar rerun fails does the job report
//     failed — always with a classified cause.
//
// An in-flight memory budget caps the summed footprint of concurrently
// resident machines, and results retain only counters and an 8-byte
// memory digest, so batch size is bounded by time, not by RAM.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/energy"
	"repro/internal/workloads"
)

// Status is a job's terminal state. Every job in a batch ends in
// exactly one of these — the supervisor never loses a job.
type Status string

// Job terminal states.
const (
	// StatusOK: the job completed with its configured DSA and passed
	// its output check (possibly after retries).
	StatusOK Status = "ok"
	// StatusDegraded: every DSA attempt failed but the DSA-off rerun
	// produced a verified scalar result. Cause records why the DSA
	// path was abandoned.
	StatusDegraded Status = "degraded"
	// StatusFailed: no rung of the ladder produced a good result.
	// Cause and Err record the terminal failure.
	StatusFailed Status = "failed"
)

// Job is one simulation to run: a workload under one machine + DSA
// configuration.
type Job struct {
	// Name labels the job in reports (defaults to the workload name).
	Name     string
	Workload *workloads.Workload
	CPU      cpu.Config
	DSA      dsa.Config
	// DSAOff runs the job scalar-only from the start (baseline jobs).
	DSAOff bool
	// Timeout overrides Options.Timeout for this job (0 = inherit).
	Timeout time.Duration
	// Resume lets this job's first attempt restore from a pre-existing
	// checkpoint even when Options.Resume is off — the service daemon
	// sets it per job when re-enqueueing work interrupted by a drain.
	Resume bool
	// Epoch is the lease epoch (fencing token) of this assignment,
	// stamped into every checkpoint the job writes. Restore considers
	// only checkpoints at or below it, so a fenced former owner's
	// later writes can never be preferred over the current owner's.
	// Zero outside cluster operation.
	Epoch uint64
}

// Options parameterizes a batch.
type Options struct {
	// Workers bounds pool concurrency (0 = GOMAXPROCS).
	Workers int
	// Timeout is the per-attempt deadline (0 = none). Each retry and
	// the degradation rerun get a fresh deadline.
	Timeout time.Duration
	// Retries is the number of extra same-config attempts after a
	// retryable failure.
	Retries int
	// Backoff is the sleep before the first retry, doubling per
	// attempt (0 = no backoff).
	Backoff time.Duration
	// CancelEvery is the step interval of the in-loop deadline check
	// (0 = cpu.DefaultCancelEvery).
	CancelEvery uint64
	// MemBudgetBytes caps the summed footprint of in-flight jobs
	// (0 = DefaultMemBudgetBytes, < 0 = unlimited).
	MemBudgetBytes int64
	// NoDegrade disables the final DSA-off rung (ablation runs where
	// a degraded result would be misleading).
	NoDegrade bool
	// SnapshotDir, when non-empty, enables durable checkpointing: each
	// job periodically writes a crash-consistent snapshot of its full
	// simulation state under this directory, retries resume from the
	// last good checkpoint instead of restarting, and a snapshot whose
	// restore fails validation is discarded with an attributed
	// restart-from-zero. Snapshots of successful jobs are deleted; a
	// failed job's last checkpoint is kept for post-mortem resume.
	SnapshotDir string
	// SnapshotEvery is the step interval between checkpoints
	// (0 = DefaultSnapshotEvery).
	SnapshotEvery uint64
	// SnapshotInterval is the wall-clock interval between checkpoints
	// (0 = DefaultSnapshotInterval); a checkpoint is written when
	// either threshold is crossed.
	SnapshotInterval time.Duration
	// SnapshotOwner, when non-empty, namespaces checkpoint files by
	// this owner ID and each job's lease epoch
	// ("<job>.<owner>.e<epoch>.dsnp"), so multiple worker processes
	// sharing SnapshotDir never clobber each other, and restore scans
	// for the highest-epoch valid checkpoint of the job (the cluster
	// takeover path). Empty keeps the single-owner "<job>.dsnp" naming.
	SnapshotOwner string
	// Resume lets the *first* attempt of each job restore from a
	// checkpoint left by a previous batch run. Without it, pre-existing
	// snapshot files are ignored (and overwritten); retries within this
	// run resume from their own checkpoints regardless.
	Resume bool
	// OnProgress, when non-nil, receives periodic Progress samples from
	// running attempts. It is called from worker goroutines — it must
	// be fast and safe for concurrent use.
	OnProgress func(Progress)
	// ProgressEvery is the step interval between progress samples
	// (0 = DefaultProgressEvery).
	ProgressEvery uint64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MemBudgetBytes == 0 {
		o.MemBudgetBytes = DefaultMemBudgetBytes
	}
	return o
}

// Result is one job's terminal report.
type Result struct {
	Job    string
	Status Status
	// Cause classifies the failure (failed) or the reason the DSA path
	// was abandoned (degraded); empty for clean ok runs.
	Cause string
	// Attempts counts every run made, degradation rerun included.
	Attempts int
	Degraded bool
	Wall     time.Duration
	// Ticks is the simulated wall-clock of the successful run (0 when
	// failed).
	Ticks int64
	// Steps counts the retired instructions of the successful run
	// (0 when failed).
	Steps uint64
	// AttemptCauses records the classified cause of every *failed*
	// attempt in the order they occurred (degradation rerun included),
	// so retry attribution survives however the job ends.
	AttemptCauses []string
	// Stats is a deep snapshot of the successful run's DSA counters
	// (nil for DSA-off and failed runs).
	Stats *dsa.Stats
	// Energy is the paper's energy-model breakdown for the successful
	// run (zero when failed).
	Energy energy.Breakdown
	// MemSum digests the successful run's final memory image; equal
	// digests mean byte-identical images.
	MemSum uint64
	// ResumedFromStep is the step count the successful attempt restored
	// from (0 = ran from the beginning).
	ResumedFromStep uint64
	// ResumeNote attributes snapshot trouble that did not fail the job:
	// a discarded-as-corrupt checkpoint ("restart-from-zero: ...") or
	// checkpointing disabled after a save error.
	ResumeNote string
	// Err is the terminal error of a failed job.
	Err error
}

// Report aggregates a batch.
type Report struct {
	Results []Result
	OK      int
	Degrade int
	Failed  int
	// Retries counts extra attempts across the batch (degradation
	// reruns included).
	Retries int
	Wall    time.Duration
}

// Run executes jobs on the worker pool and returns one Result per job,
// in input order. It never returns early: a canceled context drains
// the queue, failing the remaining jobs with cause "canceled" so the
// report still accounts for every job.
func Run(ctx context.Context, jobs []Job, opts Options) *Report {
	p := NewPool(opts)
	defer p.Close()
	results := make([]Result, len(jobs))

	start := time.Now()
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < p.opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runJob(ctx, jobs[i], p.opts, p)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	rep := &Report{Results: results, Wall: time.Since(start)}
	for i := range results {
		switch results[i].Status {
		case StatusOK:
			rep.OK++
		case StatusDegraded:
			rep.Degrade++
		default:
			rep.Failed++
		}
		rep.Retries += results[i].Attempts - 1
	}
	return rep
}

// runJob walks one job down the ladder. It always returns a terminal
// Result; no error or panic escapes.
func runJob(ctx context.Context, job Job, opts Options, p *Pool) (res Result) {
	start := time.Now()
	if job.Name == "" && job.Workload != nil {
		job.Name = job.Workload.Name
	}
	res = Result{Job: job.Name, Status: StatusFailed, Cause: "error"}
	defer func() { res.Wall = time.Since(start) }()

	ck := newCheckpointer(job, opts)

	// notes accumulates every attempt's snapshot trouble in the order
	// it occurred, so a note from a failed or resumed-over attempt
	// survives into the terminal result however the job ends.
	var notes []string
	addNote := func(attempt int, n string) {
		if n != "" {
			notes = append(notes, fmt.Sprintf("attempt %d: %s", attempt, n))
		}
	}

	var lastCause string
	var lastErr error
	for a := 0; a <= opts.Retries; a++ {
		if a > 0 && opts.Backoff > 0 {
			if !sleepCtx(ctx, opts.Backoff<<(a-1)) {
				break
			}
		}
		res.Attempts++
		// The first attempt resumes a previous run's checkpoint only
		// when the batch or the job opted in; retries always resume
		// from this run's own last good checkpoint.
		resume := opts.Resume || job.Resume || a > 0
		out, rf, note, err := attempt(ctx, job, opts, p, job.DSAOff, ck, resume, res.Attempts)
		addNote(res.Attempts, note)
		if err == nil {
			res.Status = StatusOK
			res.Cause = ""
			res.ResumedFromStep = rf
			fillOutcome(&res, out, ck, notes)
			return res
		}
		cause, retryable := classify(err)
		res.AttemptCauses = append(res.AttemptCauses, cause)
		lastCause, lastErr = cause, err
		if !retryable || ctx.Err() != nil {
			break
		}
	}

	// Degradation rung: the DSA path is lost; salvage a scalar result.
	// It always runs fresh from zero with no checkpointing: the last
	// checkpoint belongs to the abandoned DSA path and must not leak
	// simulation state into the scalar-correct rerun.
	if !opts.NoDegrade && !job.DSAOff && ctx.Err() == nil && degradable(lastErr) {
		res.Attempts++
		out, _, note, err := attempt(ctx, job, opts, p, true, nil, false, res.Attempts)
		addNote(res.Attempts, note)
		if err == nil {
			res.Status = StatusDegraded
			res.Degraded = true
			res.Cause = lastCause
			fillOutcome(&res, out, ck, notes)
			return res
		}
		// The scalar rerun's own failure is the terminal one, but keep
		// the DSA cause visible in the chain.
		cause, _ := classify(err)
		res.AttemptCauses = append(res.AttemptCauses, cause)
		lastCause = cause
		lastErr = fmt.Errorf("degraded rerun: %w (dsa path: %v)", err, lastErr)
	}

	res.Status = StatusFailed
	res.Cause = lastCause
	res.Err = lastErr
	res.ResumeNote = joinNotes(notes, ck)
	return res
}

// outcome carries what a successful attempt leaves behind — counters
// and a digest, never the machine.
type outcome struct {
	ticks  int64
	steps  uint64
	stats  *dsa.Stats
	energy energy.Breakdown
	memSum uint64
}

// fillOutcome copies a successful attempt's outcome into the terminal
// result and retires the job's snapshot — a finished job needs no
// checkpoint, and a stale one would poison a future -resume batch.
func fillOutcome(res *Result, out *outcome, ck *checkpointer, notes []string) {
	res.Ticks, res.Steps, res.Stats, res.MemSum = out.ticks, out.steps, out.stats, out.memSum
	res.Energy = out.energy
	res.ResumeNote = joinNotes(notes, ck)
	if ck != nil {
		ck.cleanup()
	}
}

// joinNotes renders the ordered per-attempt snapshot notes plus the
// checkpointer's own non-fatal trouble (a disabled save) as the
// result's ResumeNote.
func joinNotes(notes []string, ck *checkpointer) string {
	if n := ck.note(); n != "" {
		notes = append(notes, n)
	}
	return strings.Join(notes, "; ")
}

// attempt runs the job once, DSA on or off, under the memory budget,
// the per-attempt deadline and the panic guard. A non-nil ck wires
// periodic checkpointing into the run; resume additionally restores
// the last good checkpoint before running (restart-from-zero with an
// attributed note if the file is missing, corrupt, or mismatched).
// resumedFrom and note are valid even when err is non-nil — they are
// set the moment the resume decision is made, so a later failure (or
// panic) cannot erase the attribution.
func attempt(ctx context.Context, job Job, opts Options, p *Pool, dsaOff bool, ck *checkpointer, resume bool, attemptNo int) (out *outcome, resumedFrom uint64, note string, err error) {
	fp := footprint(job)
	if err := p.bud.acquire(ctx, fp); err != nil {
		return nil, 0, "", err
	}
	defer p.bud.release(fp)

	timeout := opts.Timeout
	if job.Timeout > 0 {
		timeout = job.Timeout
	}
	actx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// Panic isolation: a crash anywhere in the simulator becomes an
	// attributed failure of this attempt, not of the process.
	defer func() {
		if r := recover(); r != nil {
			out = nil
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()

	if dsaOff {
		// Baseline jobs carry machine-only snapshots (no dsa.* sections).
		newM := func() (*cpu.Machine, error) {
			m, err := cpu.New(job.Workload.Scalar(), job.CPU)
			if err != nil {
				return nil, err
			}
			m.SetCancelCheck(actx.Err, opts.CancelEvery)
			job.Workload.Setup(m)
			var ckHook func() error
			if ck != nil {
				ckHook = ck.machineHook(m)
			}
			m.SetRunHook(chainHooks(
				p.drainHook(ck, job.Name),
				ckHook,
				progressHook(opts, job.Name, attemptNo, true,
					func() uint64 { return m.Steps }, func() int64 { return m.Ticks }, nil),
			))
			return m, nil
		}
		m, err := newM()
		if err != nil {
			return nil, 0, "", err
		}
		if ck != nil && resume {
			resumedFrom, note = ck.resumeMachine(m)
			if note != "" {
				// A failed restore may leave the machine half-written;
				// rebuild it from scratch and run from zero.
				if m, err = newM(); err != nil {
					return nil, resumedFrom, note, err
				}
			}
		}
		if err := m.Run(nil); err != nil {
			return nil, resumedFrom, note, err
		}
		if err := job.Workload.Check(m); err != nil {
			return nil, resumedFrom, note, fmt.Errorf("%w: %v", ErrCheckFailed, err)
		}
		return &outcome{ticks: m.Ticks, steps: m.Steps, memSum: m.Mem.Sum64(),
		energy: energy.Compute(energy.DefaultParams(), m.Counts,
			m.Caches.L1Stats(), m.Caches.L2Stats(), energy.DSAEvents{})}, resumedFrom, note, nil
	}

	newSys := func() (*dsa.System, error) {
		sys, err := dsa.NewSystem(job.Workload.Scalar(), job.CPU, job.DSA)
		if err != nil {
			return nil, err
		}
		sys.M.SetCancelCheck(actx.Err, opts.CancelEvery)
		job.Workload.Setup(sys.M)
		var ckHook func() error
		if ck != nil {
			ckHook = ck.systemHook(sys)
		}
		st := sys.Stats()
		sys.SetRunHook(chainHooks(
			p.drainHook(ck, job.Name),
			ckHook,
			progressHook(opts, job.Name, attemptNo, false,
				func() uint64 { return sys.M.Steps }, func() int64 { return sys.M.Ticks },
				func() (uint64, uint64) { return st.Takeovers, st.Fallbacks }),
		))
		return sys, nil
	}
	sys, err := newSys()
	if err != nil {
		return nil, 0, "", err
	}
	if ck != nil && resume {
		resumedFrom, note = ck.resumeSystem(sys)
		if note != "" {
			if sys, err = newSys(); err != nil {
				return nil, resumedFrom, note, err
			}
		}
	}
	if err := sys.Run(); err != nil {
		return nil, resumedFrom, note, err
	}
	if err := job.Workload.Check(sys.M); err != nil {
		return nil, resumedFrom, note, fmt.Errorf("%w: %v", ErrCheckFailed, err)
	}
	return &outcome{ticks: sys.M.Ticks, steps: sys.M.Steps, stats: sys.Stats().Snapshot(), memSum: sys.M.Mem.Sum64(),
		energy: energy.Compute(energy.DefaultParams(), sys.M.Counts,
			sys.M.Caches.L1Stats(), sys.M.Caches.L2Stats(), sys.Stats().EnergyEvents())}, resumedFrom, note, nil
}

// sleepCtx sleeps for d unless ctx is canceled first; it reports
// whether the full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Matrix builds the workload × configuration job grid the batch CLI
// and the chaos soak run: every workload in ws crossed with every
// named DSA configuration. A nil cpu config field means
// cpu.DefaultConfig().
func Matrix(ws []*workloads.Workload, configs map[string]dsa.Config, cpuCfg cpu.Config) []Job {
	if cpuCfg.Width == 0 {
		cpuCfg = cpu.DefaultConfig()
	}
	names := make([]string, 0, len(configs))
	for name := range configs {
		names = append(names, name)
	}
	sort.Strings(names)
	var jobs []Job
	for _, w := range ws {
		for _, name := range names {
			jobs = append(jobs, Job{
				Name:     w.Name + "/" + name,
				Workload: w,
				CPU:      cpuCfg,
				DSA:      configs[name],
			})
		}
	}
	return jobs
}
