package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/dsa"
	"repro/internal/snapshot"
)

// ownedSnapshotPath is the epoch-namespaced checkpoint file for a job
// under a cluster owner — the name newCheckpointer derives.
func ownedSnapshotPath(dir, jobName, owner string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s.%s.e%d.dsnp", snapshotBase(jobName), owner, epoch))
}

// writeOwnedCheckpoint is writeMidRunCheckpoint for cluster mode: it
// leaves an epoch-stamped, owner-namespaced checkpoint at roughly
// frac of the job's run behind, as a dead worker would.
func writeOwnedCheckpoint(t *testing.T, job Job, dir, owner string, epoch uint64, frac float64) (path string, atStep uint64) {
	t.Helper()
	sys, err := dsa.NewSystem(job.Workload.Scalar(), job.CPU, job.DSA)
	if err != nil {
		t.Fatal(err)
	}
	job.Workload.Setup(sys.M)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	killStep := uint64(float64(sys.M.Steps) * frac)

	sys, err = dsa.NewSystem(job.Workload.Scalar(), job.CPU, job.DSA)
	if err != nil {
		t.Fatal(err)
	}
	job.Workload.Setup(sys.M)
	path = ownedSnapshotPath(dir, job.Name, owner, epoch)
	sys.SetRunHook(func() error {
		if sys.M.Steps < killStep {
			return nil
		}
		var w snapshot.Writer
		w.Epoch = epoch
		if err := sys.SaveState(&w); err != nil {
			return err
		}
		if err := w.WriteFile(path); err != nil {
			return err
		}
		atStep = sys.M.Steps
		return errStopForSnapshot
	})
	if err := sys.Run(); !errors.Is(err, errStopForSnapshot) {
		t.Fatalf("harness run ended with %v, want snapshot stop", err)
	}
	return path, atStep
}

// revokeMidRun runs job on a pool with the given owner and revokes its
// lease from the progress callback (deterministic: the callback runs on
// the attempt's goroutine, so the next drain-hook check observes it).
func revokeMidRun(t *testing.T, job Job, dir, owner string) Result {
	t.Helper()
	var p *Pool
	p = NewPool(Options{
		Workers:       1,
		SnapshotDir:   dir,
		SnapshotOwner: owner,
		ProgressEvery: 1000,
		OnProgress: func(pr Progress) {
			if pr.Steps > 5000 {
				p.Revoke(job.Name)
			}
		},
	})
	defer p.Close()
	return p.Do(context.Background(), job)
}

// TestPoolRevokeAndTakeover is the runner half of a cluster takeover:
// Revoke stops the attempt at a step boundary with a final checkpoint
// under the old owner's name and epoch, classified CauseRevoked (never
// retried or degraded); a different owner at a higher epoch then
// resumes that checkpoint to the bit-identical result of an
// uninterrupted run, and its success cleans every leftover file up.
func TestPoolRevokeAndTakeover(t *testing.T) {
	job := snapshotTestJob(t)
	ref := referenceResult(t, job)
	dir := t.TempDir()

	job.Epoch = 3
	r := revokeMidRun(t, job, dir, "w1")
	if r.Status != StatusFailed || r.Cause != CauseRevoked {
		t.Fatalf("revoked job: status %s cause %q (err %v), want failed/%s", r.Status, r.Cause, r.Err, CauseRevoked)
	}
	if r.Degraded {
		t.Error("revoked job was degraded; revocation must not trigger the DSA-off rung")
	}
	old := ownedSnapshotPath(dir, job.Name, "w1", 3)
	if _, err := os.Stat(old); err != nil {
		t.Fatalf("revoke left no checkpoint at %s: %v", old, err)
	}

	// Takeover: new owner, bumped fencing epoch.
	resumed := job
	resumed.Epoch = 4
	resumed.Resume = true
	p2 := NewPool(Options{Workers: 1, SnapshotDir: dir, SnapshotOwner: "w2"})
	defer p2.Close()
	r2 := p2.Do(context.Background(), resumed)
	if r2.Status != StatusOK {
		t.Fatalf("takeover run: %+v (err %v)", r2, r2.Err)
	}
	if r2.ResumedFromStep == 0 {
		t.Error("takeover restarted from zero, want resume from the revoked owner's checkpoint")
	}
	if r2.ResumeNote != "" {
		t.Errorf("ResumeNote = %q, want clean resume", r2.ResumeNote)
	}
	if r2.MemSum != ref.MemSum || r2.Ticks != ref.Ticks || r2.Steps != ref.Steps {
		t.Errorf("takeover diverged: mem %016x ticks %d steps %d, want mem %016x ticks %d steps %d",
			r2.MemSum, r2.Ticks, r2.Steps, ref.MemSum, ref.Ticks, ref.Steps)
	}
	// Success removes this job's checkpoints at or below our epoch.
	for _, p := range remainingSnapshots(t, dir, job.Name) {
		t.Errorf("leftover checkpoint after successful takeover: %s", p)
	}
}

// TestRestorePrefersHighestEpoch: with several owners' checkpoints of
// one job in a shared directory, restore picks the highest-epoch one at
// or below the assignment's epoch and deletes the stale lower-epoch
// leftovers at restore time — never "whichever file we saw first".
func TestRestorePrefersHighestEpoch(t *testing.T) {
	job := snapshotTestJob(t)
	dir := t.TempDir()

	// A legacy single-owner file (epoch 0) and two owned checkpoints at
	// different points of the run. Highest epoch is the furthest along.
	legacy, _ := writeMidRunCheckpoint(t, job, dir)
	low, _ := writeOwnedCheckpoint(t, job, dir, "w1", 1, 0.3)
	high, at2 := writeOwnedCheckpoint(t, job, dir, "w2", 2, 0.6)

	// The pruning happens during restore, before the attempt steps;
	// observe it from the first progress sample — mid-run, well before
	// the terminal cleanup could also have deleted the files.
	var once sync.Once
	var legacyGone, lowGone, highKept bool
	p := NewPool(Options{
		Workers:       1,
		SnapshotDir:   dir,
		SnapshotOwner: "w3",
		ProgressEvery: 1000,
		OnProgress: func(pr Progress) {
			once.Do(func() {
				_, err := os.Stat(legacy)
				legacyGone = errors.Is(err, os.ErrNotExist)
				_, err = os.Stat(low)
				lowGone = errors.Is(err, os.ErrNotExist)
				_, err = os.Stat(high)
				highKept = err == nil
			})
		},
	})
	defer p.Close()
	resumed := job
	resumed.Epoch = 5
	resumed.Resume = true
	r := p.Do(context.Background(), resumed)
	if r.Status != StatusOK {
		t.Fatalf("takeover run: %+v (err %v)", r, r.Err)
	}
	if r.ResumedFromStep != at2 {
		t.Errorf("ResumedFromStep = %d, want %d (the epoch-2 checkpoint)", r.ResumedFromStep, at2)
	}
	if !legacyGone {
		t.Error("legacy epoch-0 leftover survived restore")
	}
	if !lowGone {
		t.Error("stale epoch-1 leftover survived restore")
	}
	if !highKept {
		t.Error("the restored epoch-2 checkpoint was deleted before the run finished")
	}
}

// TestRestoreRejectsEpochSkew: a checkpoint whose filename and header
// disagree on the fencing epoch (a renamed or replayed file) must never
// be resumed — it is removed, the restart is attributed as epoch skew,
// and the from-zero run still produces the reference result.
func TestRestoreRejectsEpochSkew(t *testing.T) {
	job := snapshotTestJob(t)
	ref := referenceResult(t, job)
	dir := t.TempDir()

	// Header says epoch 1; rename the file to claim epoch 7.
	path, _ := writeOwnedCheckpoint(t, job, dir, "w1", 1, 0.5)
	forged := ownedSnapshotPath(dir, job.Name, "w1", 7)
	if err := os.Rename(path, forged); err != nil {
		t.Fatal(err)
	}

	resumed := job
	resumed.Epoch = 9
	resumed.Resume = true
	p := NewPool(Options{Workers: 1, SnapshotDir: dir, SnapshotOwner: "w2"})
	defer p.Close()
	r := p.Do(context.Background(), resumed)
	if r.Status != StatusOK {
		t.Fatalf("run after forged checkpoint: %+v (err %v)", r, r.Err)
	}
	if r.ResumedFromStep != 0 {
		t.Errorf("ResumedFromStep = %d, want 0 (forged checkpoint must not be resumed)", r.ResumedFromStep)
	}
	if !strings.Contains(r.ResumeNote, "restart-from-zero: snapshot-epoch-skew") {
		t.Errorf("ResumeNote = %q, want snapshot-epoch-skew attribution", r.ResumeNote)
	}
	if _, err := os.Stat(forged); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("forged checkpoint survived: %v", err)
	}
	if r.MemSum != ref.MemSum || r.Ticks != ref.Ticks || r.Steps != ref.Steps {
		t.Errorf("from-zero run diverged from reference")
	}
}

// TestRestoreIgnoresHigherEpochs: a checkpoint from an epoch above this
// assignment's means *we* hold the stale lease. The file is neither
// resumed nor deleted — fencing at the coordinator, not this worker,
// owns that conflict.
func TestRestoreIgnoresHigherEpochs(t *testing.T) {
	job := snapshotTestJob(t)
	dir := t.TempDir()
	future, _ := writeOwnedCheckpoint(t, job, dir, "w9", 9, 0.5)

	resumed := job
	resumed.Epoch = 2
	resumed.Resume = true
	p := NewPool(Options{Workers: 1, SnapshotDir: dir, SnapshotOwner: "w1"})
	defer p.Close()
	r := p.Do(context.Background(), resumed)
	if r.Status != StatusOK {
		t.Fatalf("stale-epoch run: %+v (err %v)", r, r.Err)
	}
	if r.ResumedFromStep != 0 {
		t.Errorf("ResumedFromStep = %d, want 0 (higher-epoch checkpoint is not ours)", r.ResumedFromStep)
	}
	if r.ResumeNote != "" {
		t.Errorf("ResumeNote = %q, want clean cold start", r.ResumeNote)
	}
	if _, err := os.Stat(future); err != nil {
		t.Errorf("higher-epoch checkpoint was touched: %v", err)
	}
}

// TestOwnedCheckpointsDoNotClobber: two owners of the same job name
// sharing one snapshot directory write distinct files — the collision
// the owner/epoch namespacing exists to prevent.
func TestOwnedCheckpointsDoNotClobber(t *testing.T) {
	job := snapshotTestJob(t)
	dir := t.TempDir()

	j1 := job
	j1.Epoch = 1
	if r := revokeMidRun(t, j1, dir, "w1"); r.Cause != CauseRevoked {
		t.Fatalf("w1 run: %+v", r)
	}
	j2 := job
	j2.Epoch = 2 // no Resume: a fresh assignment, not a takeover
	if r := revokeMidRun(t, j2, dir, "w2"); r.Cause != CauseRevoked {
		t.Fatalf("w2 run: %+v", r)
	}

	for _, p := range []string{
		ownedSnapshotPath(dir, job.Name, "w1", 1),
		ownedSnapshotPath(dir, job.Name, "w2", 2),
	} {
		rd, err := snapshot.ReadFile(p)
		if err != nil {
			t.Fatalf("checkpoint %s: %v", p, err)
		}
		want := uint64(1)
		if strings.Contains(p, ".w2.") {
			want = 2
		}
		if rd.Epoch() != want {
			t.Errorf("%s header epoch = %d, want %d", p, rd.Epoch(), want)
		}
	}
}

// remainingSnapshots lists the job's checkpoint files still in dir.
func remainingSnapshots(t *testing.T, dir, jobName string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), snapshotBase(jobName)+".") {
			out = append(out, e.Name())
		}
	}
	return out
}
