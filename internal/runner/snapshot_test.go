package runner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/snapshot"
	"repro/internal/workloads"
)

// snapshotTestJob is the one job these tests run: a workload long
// enough to checkpoint mid-run, under the extended DSA.
func snapshotTestJob(t *testing.T) Job {
	t.Helper()
	w, err := workloads.ByName("mm_32x32")
	if err != nil {
		t.Fatal(err)
	}
	return Job{
		Name:     w.Name + "/extended",
		Workload: w,
		CPU:      cpu.DefaultConfig(),
		DSA:      dsa.DefaultConfig(),
	}
}

// referenceResult runs the job without any checkpointing.
func referenceResult(t *testing.T, job Job) Result {
	t.Helper()
	rep := Run(context.Background(), []Job{job}, Options{Workers: 1})
	r := rep.Results[0]
	if r.Status != StatusOK {
		t.Fatalf("reference run: %+v", r)
	}
	return r
}

var errStopForSnapshot = errors.New("snapshot harness: stop")

// writeMidRunCheckpoint simulates a killed batch: it runs the job's
// system up to roughly the middle and leaves a checkpoint file behind,
// exactly where the runner would look for it.
func writeMidRunCheckpoint(t *testing.T, job Job, dir string) (path string, atStep uint64) {
	t.Helper()
	sys, err := dsa.NewSystem(job.Workload.Scalar(), job.CPU, job.DSA)
	if err != nil {
		t.Fatal(err)
	}
	job.Workload.Setup(sys.M)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	killStep := sys.M.Steps / 2

	sys, err = dsa.NewSystem(job.Workload.Scalar(), job.CPU, job.DSA)
	if err != nil {
		t.Fatal(err)
	}
	job.Workload.Setup(sys.M)
	path = filepath.Join(dir, snapshotFileName(job.Name))
	sys.SetRunHook(func() error {
		if sys.M.Steps < killStep {
			return nil
		}
		var w snapshot.Writer
		if err := sys.SaveState(&w); err != nil {
			return err
		}
		if err := w.WriteFile(path); err != nil {
			return err
		}
		atStep = sys.M.Steps
		return errStopForSnapshot
	})
	if err := sys.Run(); !errors.Is(err, errStopForSnapshot) {
		t.Fatalf("harness run ended with %v, want snapshot stop", err)
	}
	return path, atStep
}

// TestRunnerResumeFromCheckpoint: a batch with -resume picks up a
// previous run's checkpoint mid-stream and still produces the exact
// result of an uninterrupted run, attributed via ResumedFromStep; the
// snapshot is deleted once the job succeeds.
func TestRunnerResumeFromCheckpoint(t *testing.T) {
	job := snapshotTestJob(t)
	ref := referenceResult(t, job)
	dir := t.TempDir()
	path, atStep := writeMidRunCheckpoint(t, job, dir)

	rep := Run(context.Background(), []Job{job}, Options{
		Workers:     1,
		SnapshotDir: dir,
		Resume:      true,
	})
	r := rep.Results[0]
	if r.Status != StatusOK {
		t.Fatalf("resumed run: %+v (err %v)", r, r.Err)
	}
	if r.ResumedFromStep != atStep {
		t.Errorf("ResumedFromStep = %d, want %d", r.ResumedFromStep, atStep)
	}
	if r.ResumeNote != "" {
		t.Errorf("ResumeNote = %q, want clean resume", r.ResumeNote)
	}
	if r.MemSum != ref.MemSum || r.Ticks != ref.Ticks {
		t.Errorf("resumed result diverged: mem %016x ticks %d, want mem %016x ticks %d",
			r.MemSum, r.Ticks, ref.MemSum, ref.Ticks)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("snapshot not cleaned up after success: stat err %v", err)
	}
}

// TestRunnerResumeWithoutFlag: without -resume a pre-existing
// checkpoint must be ignored — the job runs from zero.
func TestRunnerResumeWithoutFlag(t *testing.T) {
	job := snapshotTestJob(t)
	ref := referenceResult(t, job)
	dir := t.TempDir()
	writeMidRunCheckpoint(t, job, dir)

	rep := Run(context.Background(), []Job{job}, Options{
		Workers:     1,
		SnapshotDir: dir,
	})
	r := rep.Results[0]
	if r.Status != StatusOK {
		t.Fatalf("run: %+v (err %v)", r, r.Err)
	}
	if r.ResumedFromStep != 0 {
		t.Errorf("ResumedFromStep = %d, want 0 (resume not requested)", r.ResumedFromStep)
	}
	if r.MemSum != ref.MemSum || r.Ticks != ref.Ticks {
		t.Errorf("run diverged from reference: mem %016x ticks %d, want mem %016x ticks %d",
			r.MemSum, r.Ticks, ref.MemSum, ref.Ticks)
	}
}

// TestRunnerSnapshotFaultClasses sweeps every snapshot-file fault
// class (truncation, bit flip, version skew): each must be *detected*
// at restore — attributed restart-from-zero with the bad file deleted
// — and never resumed into divergent execution.
func TestRunnerSnapshotFaultClasses(t *testing.T) {
	job := snapshotTestJob(t)
	ref := referenceResult(t, job)

	wantCause := map[dsa.SnapshotFault]string{
		dsa.SnapTruncate:    "snapshot-corrupt",
		dsa.SnapBitFlip:     "snapshot-corrupt",
		dsa.SnapVersionSkew: "snapshot-version-skew",
	}
	for _, fault := range dsa.SnapshotFaults {
		fault := fault
		t.Run(fault.String(), func(t *testing.T) {
			dir := t.TempDir()
			path, _ := writeMidRunCheckpoint(t, job, dir)
			if err := dsa.InjectSnapshotFault(path, fault); err != nil {
				t.Fatal(err)
			}
			rep := Run(context.Background(), []Job{job}, Options{
				Workers:     1,
				SnapshotDir: dir,
				Resume:      true,
			})
			r := rep.Results[0]
			if r.Status != StatusOK {
				t.Fatalf("run after %v: %+v (err %v)", fault, r, r.Err)
			}
			if r.ResumedFromStep != 0 {
				t.Errorf("resumed from step %d off a %v snapshot — fault not detected", r.ResumedFromStep, fault)
			}
			if !strings.Contains(r.ResumeNote, wantCause[fault]) {
				t.Errorf("ResumeNote = %q, want cause %q", r.ResumeNote, wantCause[fault])
			}
			// Detected, not divergent: the restart must reproduce the
			// uninterrupted result exactly.
			if r.MemSum != ref.MemSum || r.Ticks != ref.Ticks {
				t.Errorf("restart after %v diverged: mem %016x ticks %d, want mem %016x ticks %d",
					fault, r.MemSum, r.Ticks, ref.MemSum, ref.Ticks)
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Errorf("bad snapshot left on disk: stat err %v", err)
			}
		})
	}
}

// TestRunnerMismatchedSnapshot: a checkpoint from a *different* job
// (different program) must be rejected by the fingerprint gate and
// restart from zero, not resume alien state.
func TestRunnerMismatchedSnapshot(t *testing.T) {
	job := snapshotTestJob(t)
	ref := referenceResult(t, job)

	other, err := workloads.ByName("bit_count")
	if err != nil {
		t.Fatal(err)
	}
	otherJob := Job{Name: other.Name + "/extended", Workload: other, CPU: job.CPU, DSA: job.DSA}

	dir := t.TempDir()
	otherPath, _ := writeMidRunCheckpoint(t, otherJob, dir)
	// Park the alien snapshot where job's resume will look.
	if err := os.Rename(otherPath, filepath.Join(dir, snapshotFileName(job.Name))); err != nil {
		t.Fatal(err)
	}

	rep := Run(context.Background(), []Job{job}, Options{
		Workers:     1,
		SnapshotDir: dir,
		Resume:      true,
	})
	r := rep.Results[0]
	if r.Status != StatusOK {
		t.Fatalf("run: %+v (err %v)", r, r.Err)
	}
	if r.ResumedFromStep != 0 {
		t.Errorf("resumed from step %d off a mismatched snapshot", r.ResumedFromStep)
	}
	if !strings.Contains(r.ResumeNote, "snapshot-mismatch") {
		t.Errorf("ResumeNote = %q, want snapshot-mismatch", r.ResumeNote)
	}
	if r.MemSum != ref.MemSum || r.Ticks != ref.Ticks {
		t.Errorf("restart diverged from reference")
	}
}

// TestRunnerPeriodicCheckpointing: with a small step interval the
// runner must leave a valid checkpoint behind when an attempt dies,
// and the retry must resume from it.
func TestRunnerPeriodicCheckpointing(t *testing.T) {
	job := snapshotTestJob(t)
	ref := referenceResult(t, job)
	dir := t.TempDir()

	// The attempt dies on a silently corrupting fault surfaced as a
	// hard oracle error (no in-run fallback), leaving its periodic
	// checkpoint behind.
	faulted := job
	faulted.DSA.Fault = dsa.FaultConfig{Kind: dsa.FaultCorruptCache, EveryN: 500}
	faulted.DSA.Verify = dsa.VerifyConfig{Enabled: true, Fallback: false}

	rep := Run(context.Background(), []Job{faulted}, Options{
		Workers:       1,
		Retries:       0,
		NoDegrade:     true,
		SnapshotDir:   dir,
		SnapshotEvery: 1000,
	})
	r := rep.Results[0]
	if r.Status != StatusFailed {
		t.Fatalf("faulted run: %+v, want failed (so the checkpoint survives)", r)
	}
	path := filepath.Join(dir, snapshotFileName(job.Name))
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("failed job left no checkpoint: %v", err)
	}
	if _, err := snapshot.ReadFile(path); err != nil {
		t.Fatalf("left-behind checkpoint does not parse: %v", err)
	}

	// A healthy batch with -resume picks the checkpoint up. The clean
	// config differs from the faulted one, so this also exercises the
	// config gate: restore must refuse and restart from zero.
	rep = Run(context.Background(), []Job{job}, Options{
		Workers:     1,
		SnapshotDir: dir,
		Resume:      true,
	})
	r = rep.Results[0]
	if r.Status != StatusOK {
		t.Fatalf("resumed run: %+v (err %v)", r, r.Err)
	}
	if !strings.Contains(r.ResumeNote, "snapshot-mismatch") {
		t.Errorf("ResumeNote = %q, want snapshot-mismatch (fault config differs)", r.ResumeNote)
	}
	if r.MemSum != ref.MemSum {
		t.Errorf("result diverged from reference")
	}
}
