package runner

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/snapshot"
)

// DefaultSnapshotEvery is the step interval between periodic
// checkpoints when Options.SnapshotEvery is zero.
const DefaultSnapshotEvery = 5_000_000

// DefaultSnapshotInterval is the wall-clock interval between periodic
// checkpoints when Options.SnapshotInterval is zero — a checkpoint is
// written when *either* threshold is crossed.
const DefaultSnapshotInterval = 30 * time.Second

// checkpointer owns one job's snapshot file: it decides when a
// checkpoint is due, writes it crash-consistently, and restores the
// last good one. Save failures disable further checkpointing but never
// fail the run — a job without durability still beats no job.
type checkpointer struct {
	path       string
	everySteps uint64
	interval   time.Duration

	lastSteps uint64
	lastWall  time.Time
	disabled  bool
	saveErr   error

	// save is the current attempt's serializer, retained so a drain
	// can force a final checkpoint outside the periodic cadence.
	save func(w *snapshot.Writer) error
}

func newCheckpointer(jobName string, opts Options) *checkpointer {
	if opts.SnapshotDir == "" {
		return nil
	}
	ck := &checkpointer{
		path:       filepath.Join(opts.SnapshotDir, snapshotFileName(jobName)),
		everySteps: opts.SnapshotEvery,
		interval:   opts.SnapshotInterval,
	}
	if ck.everySteps == 0 {
		ck.everySteps = DefaultSnapshotEvery
	}
	if ck.interval == 0 {
		ck.interval = DefaultSnapshotInterval
	}
	return ck
}

// snapshotFileName maps a job name ("mm_32/extended") to a flat,
// filesystem-safe file name.
func snapshotFileName(jobName string) string {
	r := strings.NewReplacer("/", "_", string(os.PathSeparator), "_", " ", "_")
	return r.Replace(jobName) + ".dsnp"
}

// hook returns the run-hook closure for one attempt: it fires between
// steps (at quiescent points for DSA systems), checks whether a
// checkpoint is due by steps or wall clock, and saves. steps reads the
// machine's current step counter; save serializes the full state.
func (ck *checkpointer) hook(steps func() uint64, save func(w *snapshot.Writer) error) func() error {
	ck.lastSteps = steps()
	ck.lastWall = time.Now()
	ck.save = save
	return func() error {
		if ck.disabled {
			return nil
		}
		now := steps()
		if now-ck.lastSteps < ck.everySteps && time.Since(ck.lastWall) < ck.interval {
			return nil
		}
		if !ck.saveNow() {
			return nil
		}
		ck.lastSteps = now
		ck.lastWall = time.Now()
		return nil
	}
}

// saveNow serializes and writes a checkpoint immediately, reporting
// whether it succeeded. Failures disable the checkpointer (attributed
// via note) but never fail the run.
func (ck *checkpointer) saveNow() bool {
	if ck == nil || ck.disabled || ck.save == nil {
		return false
	}
	var w snapshot.Writer
	if err := ck.save(&w); err != nil {
		ck.disable(err)
		return false
	}
	if err := w.WriteFile(ck.path); err != nil {
		ck.disable(err)
		return false
	}
	return true
}

func (ck *checkpointer) disable(err error) {
	ck.disabled = true
	if ck.saveErr == nil {
		ck.saveErr = err
	}
}

// restore loads the last good checkpoint into the restorer. It returns
// (resumedFromStep, "") on success and (0, note) when no resume was
// possible — the note attributes why the run restarts from zero
// (missing file, corruption class, version skew, mismatch). A bad file
// is deleted so the next attempt does not trip over it again, and the
// caller MUST rebuild its machine from scratch: a failed restore may
// have partially overwritten state.
func (ck *checkpointer) restore(restoreFn func(r *snapshot.Reader) error, steps func() uint64) (uint64, string) {
	rd, err := snapshot.ReadFile(ck.path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, ""
		}
		os.Remove(ck.path)
		return 0, "restart-from-zero: " + restoreCause(err)
	}
	if err := restoreFn(rd); err != nil {
		os.Remove(ck.path)
		return 0, "restart-from-zero: " + restoreCause(err)
	}
	return steps(), ""
}

// restoreCause classifies a restore failure through the snapshot
// package's typed sentinels, never message text.
func restoreCause(err error) string {
	switch {
	case errors.Is(err, snapshot.ErrVersion):
		return "snapshot-version-skew"
	case errors.Is(err, snapshot.ErrMismatch):
		return "snapshot-mismatch"
	case errors.Is(err, snapshot.ErrBadMagic):
		return "snapshot-bad-magic"
	case errors.Is(err, snapshot.ErrTruncated), errors.Is(err, snapshot.ErrCorrupt):
		return "snapshot-corrupt"
	default:
		return "snapshot-read-error"
	}
}

// cleanup removes the job's snapshot after a successful terminal
// result; a failed job's last checkpoint stays on disk for post-mortem
// resume.
func (ck *checkpointer) cleanup() {
	os.Remove(ck.path)
}

// machineHook wires a scalar machine's serializer into the
// checkpointer and returns the periodic hook for the attempt's chain.
func (ck *checkpointer) machineHook(m *cpu.Machine) func() error {
	return ck.hook(
		func() uint64 { return m.Steps },
		func(w *snapshot.Writer) error { m.SaveState(w); return nil },
	)
}

// systemHook wires a DSA system's serializer into the checkpointer;
// the system calls the hook only at engine-quiescent points, so a due
// checkpoint mid-analysis is postponed a few steps.
func (ck *checkpointer) systemHook(sys *dsa.System) func() error {
	return ck.hook(
		func() uint64 { return sys.M.Steps },
		sys.SaveState,
	)
}

// resumeMachine tries to restore a scalar machine from the last good
// checkpoint. On failure the machine must be rebuilt by the caller.
func (ck *checkpointer) resumeMachine(m *cpu.Machine) (uint64, string) {
	return ck.restore(m.RestoreState, func() uint64 { return m.Steps })
}

// resumeSystem tries to restore a DSA system from the last good
// checkpoint. On failure the system must be rebuilt by the caller.
func (ck *checkpointer) resumeSystem(sys *dsa.System) (uint64, string) {
	return ck.restore(sys.RestoreState, func() uint64 { return sys.M.Steps })
}

// note renders the checkpointer's non-fatal trouble (a disabled save)
// for result attribution.
func (ck *checkpointer) note() string {
	if ck == nil || ck.saveErr == nil {
		return ""
	}
	return fmt.Sprintf("checkpointing-disabled: %v", ck.saveErr)
}
