package runner

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/snapshot"
)

// DefaultSnapshotEvery is the step interval between periodic
// checkpoints when Options.SnapshotEvery is zero.
const DefaultSnapshotEvery = 5_000_000

// DefaultSnapshotInterval is the wall-clock interval between periodic
// checkpoints when Options.SnapshotInterval is zero — a checkpoint is
// written when *either* threshold is crossed.
const DefaultSnapshotInterval = 30 * time.Second

// checkpointer owns one job's snapshot files: it decides when a
// checkpoint is due, writes it crash-consistently, and restores the
// last good one. Save failures disable further checkpointing but never
// fail the run — a job without durability still beats no job.
//
// With Options.SnapshotOwner set (cluster workers), checkpoint files
// are namespaced by owner ID and lease epoch
// ("<job>.<owner>.e<epoch>.dsnp") so co-located workers sharing one
// snapshot directory can never clobber each other's files, and restore
// scans for the highest-epoch valid snapshot at or below this
// assignment's epoch — the takeover path: a new owner picks up the
// dead owner's last checkpoint by epoch order, never by luck.
type checkpointer struct {
	dir   string
	base  string // sanitized job name, extension stripped
	owner string // "" = single-owner legacy naming
	epoch uint64
	path  string // this attempt's write target

	everySteps uint64
	interval   time.Duration

	lastSteps uint64
	lastWall  time.Time
	disabled  bool
	saveErr   error

	// save is the current attempt's serializer, retained so a drain
	// can force a final checkpoint outside the periodic cadence.
	save func(w *snapshot.Writer) error
}

func newCheckpointer(job Job, opts Options) *checkpointer {
	if opts.SnapshotDir == "" {
		return nil
	}
	ck := &checkpointer{
		dir:        opts.SnapshotDir,
		base:       snapshotBase(job.Name),
		owner:      opts.SnapshotOwner,
		epoch:      job.Epoch,
		everySteps: opts.SnapshotEvery,
		interval:   opts.SnapshotInterval,
	}
	if ck.owner == "" {
		ck.path = filepath.Join(ck.dir, ck.base+".dsnp")
	} else {
		ck.path = filepath.Join(ck.dir, fmt.Sprintf("%s.%s.e%d.dsnp", ck.base, ck.owner, ck.epoch))
	}
	if ck.everySteps == 0 {
		ck.everySteps = DefaultSnapshotEvery
	}
	if ck.interval == 0 {
		ck.interval = DefaultSnapshotInterval
	}
	return ck
}

// snapshotBase maps a job name ("mm_32/extended") to a flat,
// filesystem-safe name stem.
func snapshotBase(jobName string) string {
	r := strings.NewReplacer("/", "_", string(os.PathSeparator), "_", " ", "_", ".", "_")
	return r.Replace(jobName)
}

// snapshotFileName is the single-owner checkpoint file name for a job.
func snapshotFileName(jobName string) string {
	return snapshotBase(jobName) + ".dsnp"
}

// hook returns the run-hook closure for one attempt: it fires between
// steps (at quiescent points for DSA systems), checks whether a
// checkpoint is due by steps or wall clock, and saves. steps reads the
// machine's current step counter; save serializes the full state.
func (ck *checkpointer) hook(steps func() uint64, save func(w *snapshot.Writer) error) func() error {
	ck.lastSteps = steps()
	ck.lastWall = time.Now()
	ck.save = save
	return func() error {
		if ck.disabled {
			return nil
		}
		now := steps()
		if now-ck.lastSteps < ck.everySteps && time.Since(ck.lastWall) < ck.interval {
			return nil
		}
		if !ck.saveNow() {
			return nil
		}
		ck.lastSteps = now
		ck.lastWall = time.Now()
		return nil
	}
}

// saveNow serializes and writes a checkpoint immediately, reporting
// whether it succeeded. Failures disable the checkpointer (attributed
// via note) but never fail the run.
func (ck *checkpointer) saveNow() bool {
	if ck == nil || ck.disabled || ck.save == nil {
		return false
	}
	var w snapshot.Writer
	w.Epoch = ck.epoch
	if err := ck.save(&w); err != nil {
		ck.disable(err)
		return false
	}
	if err := w.WriteFile(ck.path); err != nil {
		ck.disable(err)
		return false
	}
	return true
}

func (ck *checkpointer) disable(err error) {
	ck.disabled = true
	if ck.saveErr == nil {
		ck.saveErr = err
	}
}

// restore loads the last good checkpoint into the restorer. It returns
// (resumedFromStep, "") on success and (0, note) when no resume was
// possible — the note attributes why the run restarts from zero
// (missing file, corruption class, version skew, epoch skew,
// mismatch). A bad file is deleted so the next attempt does not trip
// over it again, and the caller MUST rebuild its machine from scratch:
// a failed restore may have partially overwritten state.
//
// In owner/epoch mode the candidate set is every checkpoint of this
// job in the shared directory with an epoch at or below this
// assignment's; the highest-epoch structurally valid one is restored
// (validity is checked *before* touching the machine, so a corrupt
// high-epoch file falls through to the predecessor, and exactly one
// restoreFn call ever runs). After a successful restore, stale
// lower-epoch leftovers are deleted.
func (ck *checkpointer) restore(restoreFn func(r *snapshot.Reader) error, steps func() uint64) (uint64, string) {
	path, rd, cause := ck.pickSnapshot()
	if rd == nil {
		if cause != "" {
			return 0, "restart-from-zero: " + cause
		}
		return 0, ""
	}
	if err := restoreFn(rd); err != nil {
		os.Remove(path)
		return 0, "restart-from-zero: " + restoreCause(err)
	}
	ck.pruneStale(path)
	return steps(), ""
}

// pickSnapshot selects the checkpoint to resume from. It returns a
// fully validated reader (or nil with the attributed cause of the
// best candidate's failure; cause is "" when no checkpoint exists at
// all — a clean cold start).
func (ck *checkpointer) pickSnapshot() (path string, rd *snapshot.Reader, cause string) {
	if ck.owner == "" {
		// Single-owner mode: exactly one well-known file.
		rd, err := snapshot.ReadFile(ck.path)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return "", nil, ""
			}
			os.Remove(ck.path)
			return "", nil, restoreCause(err)
		}
		return ck.path, rd, ""
	}
	for _, c := range ck.candidates() {
		p := filepath.Join(ck.dir, c.name)
		rd, err := snapshot.ReadFile(p)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue // lost a race with another owner's cleanup
			}
		} else if rd.Epoch() != c.epoch {
			// The filename and the header disagree on the fencing
			// token — a renamed or replayed file. Never resume it.
			err = fmt.Errorf("%w: file claims e%d, header says e%d", snapshot.ErrEpochSkew, c.epoch, rd.Epoch())
		} else {
			return p, rd, ""
		}
		// Invalid candidate: remove it and fall through to the next
		// lower epoch, keeping the *highest* candidate's failure as
		// the attributed cause.
		os.Remove(p)
		if cause == "" {
			cause = restoreCause(err)
		}
	}
	return "", nil, cause
}

// snapCand is one restorable checkpoint file of this job.
type snapCand struct {
	name  string
	epoch uint64
}

// candidates lists this job's checkpoint files with epochs at or below
// this assignment's, highest epoch first. Files from epochs above ours
// would mean *we* are the stale owner; they are left untouched — the
// coordinator's fencing, not this worker, decides that conflict.
func (ck *checkpointer) candidates() []snapCand {
	ents, err := os.ReadDir(ck.dir)
	if err != nil {
		return nil
	}
	var out []snapCand
	prefix := ck.base + "."
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".dsnp") {
			continue
		}
		if name == ck.base+".dsnp" {
			// Legacy single-owner file: epoch 0.
			out = append(out, snapCand{name: name, epoch: 0})
			continue
		}
		stem := strings.TrimSuffix(name, ".dsnp") // "<base>.<owner>.e<epoch>"
		i := strings.LastIndex(stem, ".e")
		if i < len(prefix) {
			continue
		}
		epoch, perr := strconv.ParseUint(stem[i+2:], 10, 64)
		if perr != nil || epoch > ck.epoch {
			continue
		}
		out = append(out, snapCand{name: name, epoch: epoch})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].epoch > out[j].epoch })
	return out
}

// pruneStale removes this job's checkpoint files below the epoch of
// the one just restored — dead owners' leftovers that can never be
// preferred again.
func (ck *checkpointer) pruneStale(keep string) {
	if ck.owner == "" {
		return
	}
	for _, c := range ck.candidates() {
		if p := filepath.Join(ck.dir, c.name); p != keep {
			os.Remove(p)
		}
	}
}

// restoreCause classifies a restore failure through the snapshot
// package's typed sentinels, never message text.
func restoreCause(err error) string {
	switch {
	case errors.Is(err, snapshot.ErrVersion):
		return "snapshot-version-skew"
	case errors.Is(err, snapshot.ErrEpochSkew):
		return "snapshot-epoch-skew"
	case errors.Is(err, snapshot.ErrMismatch):
		return "snapshot-mismatch"
	case errors.Is(err, snapshot.ErrBadMagic):
		return "snapshot-bad-magic"
	case errors.Is(err, snapshot.ErrTruncated), errors.Is(err, snapshot.ErrCorrupt):
		return "snapshot-corrupt"
	default:
		return "snapshot-read-error"
	}
}

// cleanup removes the job's snapshots after a successful terminal
// result; a failed job's last checkpoint stays on disk for post-mortem
// resume. In owner/epoch mode every file at or below our epoch goes —
// dead owners' leftovers included — but never a higher epoch's file:
// if one exists, we are the fenced stale owner and the current owner's
// state is not ours to delete.
func (ck *checkpointer) cleanup() {
	os.Remove(ck.path)
	for _, c := range ck.candidates() {
		os.Remove(filepath.Join(ck.dir, c.name))
	}
}

// machineHook wires a scalar machine's serializer into the
// checkpointer and returns the periodic hook for the attempt's chain.
func (ck *checkpointer) machineHook(m *cpu.Machine) func() error {
	return ck.hook(
		func() uint64 { return m.Steps },
		func(w *snapshot.Writer) error { m.SaveState(w); return nil },
	)
}

// systemHook wires a DSA system's serializer into the checkpointer;
// the system calls the hook only at engine-quiescent points, so a due
// checkpoint mid-analysis is postponed a few steps.
func (ck *checkpointer) systemHook(sys *dsa.System) func() error {
	return ck.hook(
		func() uint64 { return sys.M.Steps },
		sys.SaveState,
	)
}

// resumeMachine tries to restore a scalar machine from the last good
// checkpoint. On failure the machine must be rebuilt by the caller.
func (ck *checkpointer) resumeMachine(m *cpu.Machine) (uint64, string) {
	return ck.restore(m.RestoreState, func() uint64 { return m.Steps })
}

// resumeSystem tries to restore a DSA system from the last good
// checkpoint. On failure the system must be rebuilt by the caller.
func (ck *checkpointer) resumeSystem(sys *dsa.System) (uint64, string) {
	return ck.restore(sys.RestoreState, func() uint64 { return sys.M.Steps })
}

// note renders the checkpointer's non-fatal trouble (a disabled save)
// for result attribution.
func (ck *checkpointer) note() string {
	if ck == nil || ck.saveErr == nil {
		return ""
	}
	return fmt.Sprintf("checkpointing-disabled: %v", ck.saveErr)
}
