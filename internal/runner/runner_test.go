package runner

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/workloads"
)

// synth builds a synthetic workload around one assembly kernel.
func synth(t *testing.T, name, src string, setup func(*cpu.Machine), check func(*cpu.Machine) error) *workloads.Workload {
	t.Helper()
	prog, err := asm.Parse(name, src)
	if err != nil {
		t.Fatal(err)
	}
	if setup == nil {
		setup = func(*cpu.Machine) {}
	}
	if check == nil {
		check = func(*cpu.Machine) error { return nil }
	}
	return &workloads.Workload{
		Name:   name,
		Scalar: func() *armlite.Program { return prog },
		Setup:  setup,
		Check:  check,
	}
}

const spinSrc = "x: b x"

// busySrc retires ~300k instructions then halts — long enough that
// concurrent jobs overlap, short enough for tight test budgets.
const busySrc = `
        mov   r4, #100000
loop:   subs  r4, r4, #1
        bne   loop
        halt`

func smallCPU() cpu.Config {
	c := cpu.DefaultConfig()
	c.MemBytes = 1 << 20
	return c
}

func TestPanicIsolationAlwaysPanics(t *testing.T) {
	w := synth(t, "crasher", "halt", func(*cpu.Machine) { panic("synthetic setup crash") }, nil)
	rep := Run(context.Background(), []Job{{Workload: w, CPU: smallCPU(), DSA: dsa.DefaultConfig()}},
		Options{Workers: 1, Retries: 1})
	r := rep.Results[0]
	if r.Status != StatusFailed {
		t.Fatalf("status = %s, want failed", r.Status)
	}
	if r.Cause != "panic" {
		t.Errorf("cause = %q, want panic", r.Cause)
	}
	// 2 DSA attempts + 1 degraded rerun, all panicking, none escaping.
	if r.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", r.Attempts)
	}
	if r.Err == nil {
		t.Error("failed result carries no error")
	}
}

func TestPanicRetryRecovers(t *testing.T) {
	var once atomic.Bool
	w := synth(t, "flaky", "halt", func(*cpu.Machine) {
		if once.CompareAndSwap(false, true) {
			panic("first attempt only")
		}
	}, nil)
	rep := Run(context.Background(), []Job{{Workload: w, CPU: smallCPU(), DSA: dsa.DefaultConfig()}},
		Options{Workers: 1, Retries: 2})
	r := rep.Results[0]
	if r.Status != StatusOK {
		t.Fatalf("status = %s (cause %q), want ok after retry", r.Status, r.Cause)
	}
	if r.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", r.Attempts)
	}
	if rep.Retries != 1 {
		t.Errorf("report retries = %d, want 1", rep.Retries)
	}
}

func TestDeadlineFailsJob(t *testing.T) {
	w := synth(t, "spin", spinSrc, nil, nil)
	start := time.Now()
	rep := Run(context.Background(),
		[]Job{{Workload: w, CPU: smallCPU(), DSA: dsa.DefaultConfig(), Timeout: 50 * time.Millisecond}},
		Options{Workers: 1})
	r := rep.Results[0]
	if r.Status != StatusFailed || r.Cause != "deadline" {
		t.Fatalf("status = %s cause = %q, want failed/deadline", r.Status, r.Cause)
	}
	// One DSA attempt plus the (also timing out) degraded rerun.
	if r.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", r.Attempts)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("deadline job took %v; cancellation not reaching the step loop", el)
	}
}

func TestMaxStepsNotRetried(t *testing.T) {
	c := smallCPU()
	c.MaxSteps = 1000
	w := synth(t, "runaway", spinSrc, nil, nil)
	rep := Run(context.Background(), []Job{{Workload: w, CPU: c, DSA: dsa.DefaultConfig()}},
		Options{Workers: 1, Retries: 3})
	r := rep.Results[0]
	if r.Status != StatusFailed || r.Cause != "max-steps" {
		t.Fatalf("status = %s cause = %q, want failed/max-steps", r.Status, r.Cause)
	}
	// Deterministic wall: no retries, no degradation rerun.
	if r.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", r.Attempts)
	}
}

func TestBatchCancelDrainsAllJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := synth(t, "never", busySrc, nil, nil)
	jobs := []Job{
		{Name: "a", Workload: w, CPU: smallCPU(), DSA: dsa.DefaultConfig()},
		{Name: "b", Workload: w, CPU: smallCPU(), DSA: dsa.DefaultConfig()},
		{Name: "c", Workload: w, CPU: smallCPU(), DSA: dsa.DefaultConfig()},
	}
	rep := Run(ctx, jobs, Options{Workers: 2, Retries: 2})
	if len(rep.Results) != len(jobs) {
		t.Fatalf("lost jobs: %d results for %d jobs", len(rep.Results), len(jobs))
	}
	for _, r := range rep.Results {
		if r.Status != StatusFailed || r.Cause != "canceled" {
			t.Errorf("%s: status = %s cause = %q, want failed/canceled", r.Job, r.Status, r.Cause)
		}
	}
}

func TestMemBudgetSerializesOversubscribedJobs(t *testing.T) {
	var inFlight, peak int32
	var mu sync.Mutex
	enter := func(*cpu.Machine) {
		n := atomic.AddInt32(&inFlight, 1)
		mu.Lock()
		if n > peak {
			peak = n
		}
		mu.Unlock()
	}
	leave := func(*cpu.Machine) error {
		atomic.AddInt32(&inFlight, -1)
		return nil
	}
	var jobs []Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, Job{
			Name:     "busy",
			Workload: synth(t, "busy", busySrc, enter, leave),
			CPU:      smallCPU(), // 1 MiB image + 1 MiB overhead = 2 MiB
			DSA:      dsa.DefaultConfig(),
		})
	}
	// 3 MiB budget admits exactly one 2 MiB job at a time even with
	// four eager workers.
	rep := Run(context.Background(), jobs, Options{Workers: 4, MemBudgetBytes: 3 << 20})
	for _, r := range rep.Results {
		if r.Status != StatusOK {
			t.Fatalf("%s: %s (%q)", r.Job, r.Status, r.Cause)
		}
	}
	if peak != 1 {
		t.Errorf("peak in-flight = %d under a one-job budget, want 1", peak)
	}
}

func TestMemBudgetAdmitsOversizeJobAlone(t *testing.T) {
	w := synth(t, "big", "halt", nil, nil)
	c := cpu.DefaultConfig() // 16 MiB image > 4 MiB budget
	rep := Run(context.Background(), []Job{{Workload: w, CPU: c, DSA: dsa.DefaultConfig()}},
		Options{Workers: 2, MemBudgetBytes: 4 << 20})
	if r := rep.Results[0]; r.Status != StatusOK {
		t.Fatalf("oversize job: %s (%q), want ok (admitted alone)", r.Status, r.Cause)
	}
}

func TestDegradationSalvagesFaultedJob(t *testing.T) {
	// A truncated-range fault under the hard (non-fallback) oracle is a
	// guaranteed divergence error on any workload with takeovers; the
	// ladder must land on a degraded scalar result with the reference
	// memory image.
	w, err := workloads.ByName("rgb_gray")
	if err != nil {
		t.Fatal(err)
	}
	cfg := dsa.DefaultConfig()
	cfg.Fault = dsa.FaultConfig{Kind: dsa.FaultTruncateRange, EveryN: 1}
	cfg.Verify = dsa.VerifyConfig{Enabled: true} // hard mode: divergence is an error

	ref := Run(context.Background(),
		[]Job{{Name: "ref", Workload: w, CPU: cpu.DefaultConfig(), DSAOff: true}},
		Options{Workers: 1}).Results[0]
	if ref.Status != StatusOK {
		t.Fatalf("scalar reference: %s (%q)", ref.Status, ref.Cause)
	}

	rep := Run(context.Background(),
		[]Job{{Workload: w, CPU: cpu.DefaultConfig(), DSA: cfg}},
		Options{Workers: 1, Retries: 1, Backoff: time.Millisecond})
	r := rep.Results[0]
	if r.Status != StatusDegraded || !r.Degraded {
		t.Fatalf("status = %s (cause %q), want degraded", r.Status, r.Cause)
	}
	if r.Cause != "divergence" {
		t.Errorf("cause = %q, want divergence", r.Cause)
	}
	// 1 + Retries DSA attempts, then the salvage run.
	if r.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", r.Attempts)
	}
	if r.MemSum != ref.MemSum {
		t.Errorf("degraded memory digest %#x != scalar reference %#x", r.MemSum, ref.MemSum)
	}
}

func TestMatrixOrderAndNames(t *testing.T) {
	w := synth(t, "w1", "halt", nil, nil)
	jobs := Matrix([]*workloads.Workload{w},
		map[string]dsa.Config{"extended": dsa.DefaultConfig(), "original": dsa.OriginalConfig()},
		cpu.Config{})
	if len(jobs) != 2 {
		t.Fatalf("len = %d, want 2", len(jobs))
	}
	if jobs[0].Name != "w1/extended" || jobs[1].Name != "w1/original" {
		t.Errorf("names = %q, %q; want deterministic workload/config order", jobs[0].Name, jobs[1].Name)
	}
	if jobs[0].CPU.Width == 0 {
		t.Error("zero cpu config not defaulted")
	}
}
