package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/snapshot"
)

// stateSection names the one section of the daemon's job-state file —
// a snapshot-container file ("DSNP" magic, CRC-validated, written
// atomically) whose payload is JSON: the surviving job table and the
// ID counter. Per-job simulation state lives in the runner's own
// checkpoint files; this file only records *which* jobs exist and
// where they stood, so a restarted daemon can re-queue and resume.
const stateSection = "dsasimd.jobs"

// persistedJob is one job's durable row.
type persistedJob struct {
	ID      string      `json:"id"`
	Spec    JobSpec     `json:"spec"`
	Status  string      `json:"status"`
	IdemKey string      `json:"idem_key,omitempty"`
	Queued  string      `json:"queued,omitempty"`
	Result  *ResultJSON `json:"result,omitempty"`
}

// stateFile is the payload of the state section.
type stateFile struct {
	NextID int            `json:"next_id"`
	Jobs   []persistedJob `json:"jobs"`
}

// saveState writes the daemon's job table crash-consistently. The
// caller must hold s.mu.
func (s *Server) saveStateLocked() error {
	if s.cfg.StateFile == "" {
		return nil
	}
	st := stateFile{NextID: s.nextID}
	for _, id := range s.order {
		js := s.jobs[id]
		st.Jobs = append(st.Jobs, persistedJob{
			ID:      js.id,
			Spec:    js.spec,
			Status:  js.status,
			IdemKey: js.idemKey,
			Queued:  fmtTime(js.queued),
			Result:  js.result,
		})
	}
	payload, err := json.Marshal(st)
	if err != nil {
		return err
	}
	var w snapshot.Writer
	w.Add(stateSection, payload)
	return w.WriteFile(s.cfg.StateFile)
}

// loadState reads a previous daemon's job table. A missing file means
// a fresh start; a corrupt or mismatched file is renamed aside (never
// silently overwritten) and reported, also starting fresh.
func loadState(path string) (*stateFile, error) {
	if path == "" {
		return nil, nil
	}
	rd, err := snapshot.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		quarantine := path + ".bad"
		_ = os.Rename(path, quarantine)
		return nil, fmt.Errorf("state file %s unreadable (%w); moved to %s, starting fresh", path, err, quarantine)
	}
	payload, err := rd.Section(stateSection)
	if err != nil {
		return nil, fmt.Errorf("state file %s: %w", path, err)
	}
	var st stateFile
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, fmt.Errorf("state file %s: %w", path, err)
	}
	return &st, nil
}
