package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/runner"
)

// Config parameterizes the service.
type Config struct {
	// QueueDepth bounds the admission queue (0 = DefaultQueueDepth).
	// A full queue refuses submissions with 429 + Retry-After.
	QueueDepth int
	// Workers bounds concurrent simulations (0 = runner default).
	Workers int
	// SnapshotDir holds per-job runner checkpoints. Empty disables
	// durability: drains then interrupt without resume.
	SnapshotDir string
	// StateFile is the daemon-owned job table (snapshot container).
	// Empty disables job-table persistence.
	StateFile string
	// Runner carries the execution knobs (timeout, retries, backoff,
	// memory budget, snapshot cadence, progress cadence). Workers,
	// SnapshotDir and OnProgress are owned by the server and
	// overwritten.
	Runner runner.Options
	// RetryAfter is the backpressure hint on 429 responses
	// (0 = DefaultRetryAfter). The advertised value carries a small
	// random jitter above this base so a rejected fleet does not
	// reconverge on one retry instant.
	RetryAfter time.Duration
	// Ready, when set, contributes to GET /readyz: a non-nil error
	// marks the instance not ready with that reason (a cluster worker
	// reports its lease state here). Liveness (/healthz) is unaffected.
	Ready func() error
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// Service defaults.
const (
	DefaultQueueDepth = 64
	DefaultRetryAfter = 2 * time.Second
)

// jobState is one job's in-memory record. Mutable fields are guarded
// by Server.mu; events has its own lock.
type jobState struct {
	id     string
	spec   JobSpec
	status string
	queued time.Time
	// started/finished bracket the job's time on the pool.
	started  time.Time
	finished time.Time
	progress *ProgressJSON
	result   *ResultJSON
	// resume marks a job re-queued after a drain or restart: its first
	// attempt restores from its checkpoint file.
	resume bool
	// idemKey, when set, is the Idempotency-Key the job was submitted
	// under; later submissions with the same key replay this job.
	idemKey string
	events  *Broadcaster
}

// Server is the dsasimd service core, transport-agnostic: Handler
// serves its HTTP API, Drain runs the graceful shutdown. One Server
// owns one runner.Pool for its whole life.
type Server struct {
	cfg     Config
	pool    *runner.Pool
	queue   chan *jobState
	stopCh  chan struct{}
	wg      sync.WaitGroup
	baseCtx context.Context
	cancel  context.CancelFunc
	metrics *metrics

	mu     sync.Mutex
	jobs   map[string]*jobState
	order  []string
	nextID int
	// idem maps Idempotency-Key → job ID; persisted with the job
	// table, so the dedup survives a restart.
	idem map[string]string

	drainOnce sync.Once
}

// New builds the service, restores the job table from cfg.StateFile
// (re-queueing unfinished jobs with resume semantics), and starts the
// worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	s := &Server{
		cfg:     cfg,
		queue:   make(chan *jobState, cfg.QueueDepth),
		stopCh:  make(chan struct{}),
		metrics: newMetrics(),
		jobs:    map[string]*jobState{},
		idem:    map[string]string{},
		nextID:  1,
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())

	ropts := cfg.Runner
	ropts.Workers = cfg.Workers
	ropts.SnapshotDir = cfg.SnapshotDir
	ropts.OnProgress = s.onProgress
	s.pool = runner.NewPool(ropts)

	if err := s.restore(); err != nil {
		// A bad state file is quarantined, not fatal: the service must
		// come back up even when its own table is damaged.
		cfg.Logf("dsasimd: %v", err)
	}

	// One server worker per pool slot: queue latency stays visible in
	// queue depth instead of hiding inside blocked Do calls.
	for i := 0; i < s.pool.Workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// restore loads the persisted job table and re-queues unfinished work.
func (s *Server) restore() error {
	st, err := loadState(s.cfg.StateFile)
	if st == nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID = st.NextID
	requeued := 0
	for i := range st.Jobs {
		pj := st.Jobs[i]
		js := &jobState{
			id:      pj.ID,
			spec:    pj.Spec,
			status:  pj.Status,
			idemKey: pj.IdemKey,
			result:  pj.Result,
			events:  NewBroadcaster(),
		}
		if t, terr := time.Parse(time.RFC3339Nano, pj.Queued); terr == nil {
			js.queued = t
		}
		s.jobs[js.id] = js
		s.order = append(s.order, js.id)
		if js.idemKey != "" {
			s.idem[js.idemKey] = js.id
		}
		if Terminal(js.status) {
			if js.result != nil {
				done := Event{Type: "done", Job: js.id, Status: js.status, Result: js.result}
				js.events.Publish(done)
			}
			continue
		}
		// Interrupted and mid-run jobs resume from their checkpoint;
		// queued ones simply run (their resume finds no file and
		// starts clean).
		js.resume = js.status != StatusQueued
		js.status = StatusQueued
		select {
		case s.queue <- js:
			requeued++
		default:
			// More surviving jobs than queue slots: keep them queued in
			// the table; they re-enter on the next restart. This can
			// only happen when QueueDepth shrank across the restart.
			s.cfg.Logf("dsasimd: job %s does not fit the shrunken queue; parked", js.id)
		}
	}
	if requeued > 0 {
		s.cfg.Logf("dsasimd: restored %d job(s) from %s, %d re-queued", len(st.Jobs), s.cfg.StateFile, requeued)
	}
	return err
}

// worker pulls admitted jobs until the server drains or closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		if s.pool.Draining() {
			return
		}
		select {
		case <-s.stopCh:
			return
		case js := <-s.queue:
			s.runOne(js)
		}
	}
}

// runOne executes one admitted job through the pool and publishes its
// lifecycle.
func (s *Server) runOne(js *jobState) {
	job, err := js.spec.RunnerJob(js.id)
	if err != nil {
		// Validate() gates submissions, so this is a state-file edit or
		// a workload renamed across versions — fail the job, keep the
		// service.
		s.finish(js, ResultJSON{Job: js.id, Status: string(runner.StatusFailed), Cause: "bad-spec", Error: err.Error()})
		return
	}
	job.Resume = js.resume

	s.mu.Lock()
	js.status = StatusRunning
	js.started = time.Now()
	s.mu.Unlock()
	js.events.Publish(Event{Type: "status", Job: js.id, Status: StatusRunning})

	res := s.pool.Do(s.baseCtx, job)

	if res.Status == runner.StatusFailed && res.Cause == runner.CauseDrained {
		s.mu.Lock()
		js.status = StatusInterrupted
		js.resume = true
		s.mu.Unlock()
		s.metrics.onInterrupt()
		js.events.Publish(Event{Type: "status", Job: js.id, Status: StatusInterrupted})
		s.cfg.Logf("dsasimd: job %s interrupted by drain (checkpoint kept)", js.id)
		return
	}
	if res.ResumedFromStep > 0 {
		s.metrics.onResume()
	}
	s.finish(js, ResultFromRunner(res))
}

// finish records a terminal result, persists the table, and notifies.
func (s *Server) finish(js *jobState, r ResultJSON) {
	s.mu.Lock()
	js.status = r.Status
	js.finished = time.Now()
	js.result = &r
	wall := js.finished.Sub(js.started)
	if err := s.saveStateLocked(); err != nil {
		s.cfg.Logf("dsasimd: saving state: %v", err)
	}
	s.mu.Unlock()
	s.metrics.onDone(r, wall)
	js.events.Publish(Event{Type: "done", Job: js.id, Status: r.Status, Result: &r})
	s.cfg.Logf("dsasimd: job %s %s (attempts=%d wall=%s)", js.id, r.Status, r.Attempts, wall.Round(time.Millisecond))
}

// onProgress routes pool progress samples to their job.
func (s *Server) onProgress(p runner.Progress) {
	s.mu.Lock()
	js := s.jobs[p.Job]
	var pj *ProgressJSON
	if js != nil {
		pj = &ProgressJSON{Job: p.Job, Attempt: p.Attempt, DSAOff: p.DSAOff,
			Steps: p.Steps, Ticks: p.Ticks, Takeovers: p.Takeovers, Fallbacks: p.Fallbacks}
		js.progress = pj
	}
	s.mu.Unlock()
	if js != nil {
		js.events.Publish(Event{Type: "progress", Job: p.Job, Status: StatusRunning, Progress: pj})
	}
}

// Submit admits a job. It returns the assigned ID, or an admissionError
// carrying the HTTP status the transport should answer with. A
// non-empty idemKey matching an earlier submission replays that job
// (deduped=true) instead of creating a twin — checked before the
// draining and queue-full refusals, so a client retrying after an
// ambiguous success always converges on the job it already created.
func (s *Server) Submit(spec JobSpec, idemKey string) (view *JobView, deduped bool, err error) {
	spec.Name = trimSourceName(spec.Name)
	s.mu.Lock()
	if idemKey != "" {
		if jid, ok := s.idem[idemKey]; ok {
			v := s.viewLocked(s.jobs[jid])
			s.mu.Unlock()
			s.metrics.onDedup()
			return &v, true, nil
		}
	}
	if verr := spec.Validate(); verr != nil {
		s.mu.Unlock()
		return nil, false, &admissionError{code: http.StatusBadRequest, msg: verr.Error()}
	}
	if s.pool.Draining() {
		s.mu.Unlock()
		s.metrics.onReject()
		return nil, false, &admissionError{code: http.StatusServiceUnavailable, msg: "draining"}
	}
	id := fmt.Sprintf("j%06d", s.nextID)
	js := &jobState{id: id, spec: spec, status: StatusQueued, idemKey: idemKey, queued: time.Now(), events: NewBroadcaster()}
	select {
	case s.queue <- js:
	default:
		s.mu.Unlock()
		s.metrics.onReject()
		return nil, false, &admissionError{code: http.StatusTooManyRequests,
			msg: fmt.Sprintf("queue full (%d jobs waiting)", s.cfg.QueueDepth), retryAfter: s.cfg.RetryAfter}
	}
	s.nextID++
	s.jobs[id] = js
	s.order = append(s.order, id)
	if idemKey != "" {
		s.idem[idemKey] = id
	}
	if err := s.saveStateLocked(); err != nil {
		s.cfg.Logf("dsasimd: saving state: %v", err)
	}
	v := s.viewLocked(js)
	s.mu.Unlock()
	s.metrics.onSubmit()
	return &v, false, nil
}

// Job returns one job's current view.
func (s *Server) Job(id string) (*JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	v := s.viewLocked(js)
	return &v, true
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.viewLocked(s.jobs[id]))
	}
	return out
}

func (s *Server) viewLocked(js *jobState) JobView {
	return JobView{
		ID:       js.id,
		Status:   js.status,
		Spec:     js.spec,
		Queued:   fmtTime(js.queued),
		Started:  fmtTime(js.started),
		Finished: fmtTime(js.finished),
		Progress: js.progress,
		Result:   js.result,
	}
}

// Drain is the graceful-shutdown path: refuse new work, ask every
// running attempt to checkpoint and unwind, wait for the workers
// (bounded by ctx), persist the job table, and release the pool.
// Interrupted and queued jobs survive in the table; a New() on the
// same StateFile/SnapshotDir resumes them bit-identically. Drain is
// idempotent: only the first call does the work (and reports errors),
// repeats return nil immediately.
func (s *Server) Drain(ctx context.Context) error {
	var err error
	s.drainOnce.Do(func() { err = s.drain(ctx) })
	return err
}

func (s *Server) drain(ctx context.Context) error {
	s.pool.Drain()
	close(s.stopCh)

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("drain: workers still busy: %w", ctx.Err())
	}

	s.mu.Lock()
	if serr := s.saveStateLocked(); serr != nil && err == nil {
		err = serr
	}
	s.mu.Unlock()
	s.cancel()
	s.pool.Close()
	s.cfg.Logf("dsasimd: drained")
	return err
}

// Metrics renders the Prometheus exposition.
func (s *Server) Metrics() string {
	inUse, capacity := s.pool.MemUsage()
	return s.metrics.render(gauges{
		queueDepth:    len(s.queue),
		queueCapacity: s.cfg.QueueDepth,
		inflight:      s.pool.Inflight(),
		memInUse:      inUse,
		memCapacity:   capacity,
	})
}

// admissionError carries the HTTP answer for a refused submission.
type admissionError struct {
	code       int
	msg        string
	retryAfter time.Duration
}

func (e *admissionError) Error() string { return e.msg }

// JitterSeconds renders a Retry-After duration as whole seconds with
// random positive jitter of up to ~25% of the base: every rejected
// client backing off the literal hint would otherwise return in one
// synchronized wave and re-trip the same full queue. Shared with the
// cluster coordinator's admission path.
func JitterSeconds(d time.Duration) int {
	base := int((d + time.Second - 1) / time.Second)
	return base + rand.Intn(2+base/4)
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	view, deduped, err := s.Submit(spec, r.Header.Get("Idempotency-Key"))
	if err != nil {
		var ae *admissionError
		if !errors.As(err, &ae) {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if ae.retryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", JitterSeconds(ae.retryAfter)))
		}
		httpError(w, ae.code, ae.msg)
		return
	}
	if deduped {
		w.Header().Set("Idempotency-Replayed", "true")
	}
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleEvents streams a job's lifecycle as server-sent events until
// the job finishes or the client disconnects. A client attaching after
// completion receives the terminal event immediately.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	js, ok := s.jobs[r.PathValue("id")]
	var status string
	if ok {
		status = js.status
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	StreamEvents(w, r, js.events, js.id, status)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.Metrics())
}

// handleHealth is pure liveness: the process is up and serving. It
// stays 200 through a drain — a draining instance is alive, just not
// accepting work; that distinction belongs to /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	state := "ok"
	if s.pool.Draining() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": state})
}

// handleReady is readiness: 200 only when the instance can usefully
// accept a submission right now — not draining, admission queue not
// full, and any configured Ready hook content (a cluster worker's
// lease currency). Anything else is 503 with the first failing reason.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	reason := ""
	switch {
	case s.pool.Draining():
		reason = "draining"
	case len(s.queue) >= s.cfg.QueueDepth:
		reason = "queue full"
	default:
		if s.cfg.Ready != nil {
			if err := s.cfg.Ready(); err != nil {
				reason = err.Error()
			}
		}
	}
	if reason != "" {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "unready", "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
