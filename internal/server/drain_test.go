package server

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServiceDrainRestart is the durability e2e: a drain mid-run
// checkpoints the in-flight job and persists the job table; a second
// Server on the same state resumes the interrupted job from its
// checkpoint and finishes with a result bit-identical to an
// uninterrupted run. Completed jobs survive the restart verbatim.
func TestServiceDrainRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers:     2,
		SnapshotDir: filepath.Join(dir, "snapshots"),
		StateFile:   filepath.Join(dir, "jobs.dsnp"),
	}
	cfg.Runner.ProgressEvery = 50_000
	// Loose enough that periodic 16 MiB image saves don't dominate the
	// test; the drain forces its own checkpoint regardless of cadence.
	cfg.Runner.SnapshotEvery = 10_000_000

	longSpec := JobSpec{Name: "long", Source: longSource(8_000_000), Config: "scalar"}
	mmSpec := JobSpec{Workload: "mm_32x32", Config: "extended"}

	s1, ts1 := newTestServer(t, cfg)
	lv, _ := submit(t, ts1, longSpec, http.StatusAccepted)
	mv, _ := submit(t, ts1, mmSpec, http.StatusAccepted)

	// The matrix job finishes quickly; it rides along to prove terminal
	// results survive the restart.
	mmBefore := waitTerminal(t, ts1, mv.ID, 60*time.Second)
	if mmBefore.Result.Status != "ok" {
		t.Fatalf("mm job: %+v", mmBefore.Result)
	}

	// Wait until the long job is demonstrably mid-run (live progress on
	// the polling surface), then pull the plug.
	waitFor(t, ts1, lv.ID, 30*time.Second, "mid-run progress", func(v JobView) bool {
		return v.Status == StatusRunning && v.Progress != nil && v.Progress.Steps >= 100_000
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	after := getJob(t, ts1, lv.ID)
	if after.Status != StatusInterrupted {
		t.Fatalf("long job after drain: status = %s, want interrupted", after.Status)
	}
	ckpt := filepath.Join(cfg.SnapshotDir, lv.ID+".dsnp")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("drain left no checkpoint: %v", err)
	}
	if m := s1.Metrics(); !strings.Contains(m, "dsasimd_jobs_interrupted_total 1") {
		t.Errorf("interrupted counter not incremented")
	}
	ts1.Close()

	// Restart on the same state directory: the interrupted job is
	// re-queued and resumes from its checkpoint.
	s2, ts2 := newTestServer(t, cfg)
	got := waitTerminal(t, ts2, lv.ID, 120*time.Second)
	if got.Result.Status != "ok" {
		t.Fatalf("resumed job: %+v", got.Result)
	}
	if got.Result.ResumedFromStep == 0 {
		t.Errorf("resumed job reports resumed_from_step = 0")
	}

	// Bit-identical to an uninterrupted run of the same spec.
	want := referenceResult(t, longSpec)
	if got.Result.MemDigest != want.MemDigest {
		t.Errorf("resumed digest = %s, want %s", got.Result.MemDigest, want.MemDigest)
	}
	if got.Result.Ticks != want.Ticks || got.Result.Steps != want.Steps {
		t.Errorf("resumed ticks/steps = %d/%d, want %d/%d",
			got.Result.Ticks, got.Result.Steps, want.Ticks, want.Steps)
	}

	// The completed matrix job survived the restart with its result.
	mmAfter := getJob(t, ts2, mv.ID)
	if !Terminal(mmAfter.Status) || mmAfter.Result == nil ||
		mmAfter.Result.MemDigest != mmBefore.Result.MemDigest {
		t.Errorf("mm job after restart: %+v", mmAfter)
	}

	if m := s2.Metrics(); !strings.Contains(m, "dsasimd_jobs_resumed_total 1") {
		t.Errorf("resumed counter not incremented:\n%s", m)
	}
}
