package server

import (
	"sync"
)

// broadcaster fans one job's event stream out to any number of SSE
// subscribers. Slow subscribers never block the publisher: a
// subscriber whose buffer is full drops intermediate progress events
// (each sample supersedes the last) but always receives status changes
// and the terminal event, because publish retries those after clearing
// room.
type broadcaster struct {
	mu   sync.Mutex
	subs map[chan Event]struct{}
	// last terminal event, replayed to late subscribers so a client
	// attaching after completion still gets its answer.
	done *Event
}

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: map[chan Event]struct{}{}}
}

// subscribe registers a new listener. If the job already finished, the
// terminal event is pre-queued. The returned cancel func must be
// called exactly once; it closes the channel.
func (b *broadcaster) subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 16)
	b.mu.Lock()
	if b.done != nil {
		ch <- *b.done
	}
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
		b.mu.Unlock()
	}
	return ch, cancel
}

// publish delivers ev to every subscriber. Progress events are
// droppable; status and done events evict the oldest buffered event
// until they fit.
func (b *broadcaster) publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ev.Type == "done" {
		done := ev
		b.done = &done
	}
	for ch := range b.subs {
		select {
		case ch <- ev:
			continue
		default:
		}
		if ev.Type == "progress" {
			continue // droppable; the subscriber keeps older events
		}
		// Must-deliver event on a full buffer: evict the oldest until
		// it fits. publish holds the mutex, so no other goroutine can
		// race the eviction.
		delivered := false
		for !delivered {
			select {
			case ch <- ev:
				delivered = true
			default:
				select {
				case <-ch:
				default:
				}
			}
		}
	}
}
