package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// Broadcaster fans one job's event stream out to any number of SSE
// subscribers. Slow subscribers never block the publisher: a
// subscriber whose buffer is full drops intermediate progress events
// (each sample supersedes the last) but always receives status changes
// and the terminal event, because Publish retries those after clearing
// room. It is exported so the cluster coordinator can feed the same
// per-job streams from worker-pushed events.
type Broadcaster struct {
	mu   sync.Mutex
	subs map[chan Event]struct{}
	// last terminal event, replayed to late subscribers so a client
	// attaching after completion still gets its answer.
	done *Event
}

func NewBroadcaster() *Broadcaster {
	return &Broadcaster{subs: map[chan Event]struct{}{}}
}

// Subscribe registers a new listener. If the job already finished, the
// terminal event is pre-queued. The returned cancel func must be
// called exactly once; it closes the channel.
func (b *Broadcaster) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 16)
	b.mu.Lock()
	if b.done != nil {
		ch <- *b.done
	}
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
		b.mu.Unlock()
	}
	return ch, cancel
}

// Publish delivers ev to every subscriber. Progress events are
// droppable; status and done events evict the oldest buffered event
// until they fit.
func (b *Broadcaster) Publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ev.Type == "done" {
		done := ev
		b.done = &done
	}
	for ch := range b.subs {
		select {
		case ch <- ev:
			continue
		default:
		}
		if ev.Type == "progress" {
			continue // droppable; the subscriber keeps older events
		}
		// Must-deliver event on a full buffer: evict the oldest until
		// it fits. Publish holds the mutex, so no other goroutine can
		// race the eviction.
		delivered := false
		for !delivered {
			select {
			case ch <- ev:
				delivered = true
			default:
				select {
				case <-ch:
				default:
				}
			}
		}
	}
}

// StreamEvents serves one job's Broadcaster as a server-sent-event
// stream until the job's terminal event or client disconnect. status
// is the job's state at call time: non-terminal states open the stream
// with a status snapshot; terminal jobs get their replayed "done" from
// the subscription instead. Shared by the standalone daemon and the
// cluster coordinator so both speak the same SSE wire format.
func StreamEvents(w http.ResponseWriter, r *http.Request, b *Broadcaster, jobID, status string) {
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}

	ch, cancel := b.Subscribe()
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if !Terminal(status) {
		writeSSE(w, Event{Type: "status", Job: jobID, Status: status})
	}
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			writeSSE(w, ev)
			fl.Flush()
			if ev.Type == "done" {
				return
			}
		}
	}
}

func writeSSE(w http.ResponseWriter, ev Event) {
	payload, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, payload)
}
