package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// metrics is the service's Prometheus registry — hand-rolled, since
// the repo takes no dependencies: counters and histograms guarded by
// one mutex (updates happen at job-lifecycle cadence, not per step),
// gauges sampled at scrape time by the server.
type metrics struct {
	mu          sync.Mutex
	submitted   uint64
	rejected    uint64
	deduped     uint64
	completed   map[string]uint64 // terminal status → count
	interrupted uint64
	resumed     uint64
	retries     uint64
	duration    *histogram // job wall time, seconds
	throughput  *histogram // retired steps per wall second

	// Adaptive-policy counters, summed over terminal jobs run with the
	// "adaptive" config (zero otherwise).
	policyKept      uint64
	policySuspended uint64
	policyTrialed   uint64
	// Modeled energy in nanojoules by component, summed over successful
	// terminal jobs.
	energyNJ map[string]float64 // component → nJ
}

func newMetrics() *metrics {
	return &metrics{
		completed: map[string]uint64{"ok": 0, "degraded": 0, "failed": 0},
		// Wall-time buckets: 1ms to ~2min in decades.
		duration: newHistogram(0.001, 0.01, 0.1, 0.5, 1, 5, 15, 60, 120),
		// Step-throughput buckets: 100k/s to 200M/s.
		throughput: newHistogram(1e5, 1e6, 5e6, 1e7, 5e7, 1e8, 2e8),
		energyNJ: map[string]float64{
			"front_end": 0, "scalar": 0, "caches": 0, "neon": 0, "dsa": 0,
		},
	}
}

func (m *metrics) onSubmit() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

func (m *metrics) onReject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

func (m *metrics) onDedup() {
	m.mu.Lock()
	m.deduped++
	m.mu.Unlock()
}

func (m *metrics) onInterrupt() {
	m.mu.Lock()
	m.interrupted++
	m.mu.Unlock()
}

func (m *metrics) onResume() {
	m.mu.Lock()
	m.resumed++
	m.mu.Unlock()
}

// onDone folds one terminal result into the counters and histograms.
func (m *metrics) onDone(r ResultJSON, wall time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed[r.Status]++
	if r.Attempts > 1 {
		m.retries += uint64(r.Attempts - 1)
	}
	sec := wall.Seconds()
	m.duration.observe(sec)
	if sec > 0 && r.Steps > 0 {
		m.throughput.observe(float64(r.Steps) / sec)
	}
	m.policyKept += r.PolicyKept
	m.policySuspended += r.PolicySuspended
	m.policyTrialed += r.PolicyTrialed
	if r.Energy != nil {
		m.energyNJ["front_end"] += r.Energy.FrontEndNJ
		m.energyNJ["scalar"] += r.Energy.ScalarNJ
		m.energyNJ["caches"] += r.Energy.CachesNJ
		m.energyNJ["neon"] += r.Energy.NEONNJ
		m.energyNJ["dsa"] += r.Energy.DSANJ
	}
}

// gauges are point-in-time values the server samples at scrape.
type gauges struct {
	queueDepth    int
	queueCapacity int
	inflight      int64
	memInUse      int64
	memCapacity   int64
}

// render writes the whole registry in Prometheus text exposition
// format (version 0.0.4), deterministically ordered.
func (m *metrics) render(g gauges) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("dsasimd_queue_depth", "Jobs admitted and waiting for a worker.", int64(g.queueDepth))
	gauge("dsasimd_queue_capacity", "Bounded queue capacity.", int64(g.queueCapacity))
	gauge("dsasimd_jobs_inflight", "Jobs currently executing on the worker pool.", g.inflight)
	gauge("dsasimd_mem_inflight_bytes", "In-flight memory budget occupancy.", g.memInUse)
	gauge("dsasimd_mem_budget_bytes", "In-flight memory budget capacity (0 = unlimited).", g.memCapacity)

	counter("dsasimd_jobs_submitted_total", "Jobs accepted into the queue.", m.submitted)
	counter("dsasimd_jobs_rejected_total", "Submissions refused with 429 (queue full) or 503 (draining).", m.rejected)
	counter("dsasimd_jobs_deduped_total", "Submissions replayed from an earlier job via Idempotency-Key.", m.deduped)

	fmt.Fprintf(&b, "# HELP dsasimd_jobs_completed_total Jobs finished, by terminal status.\n# TYPE dsasimd_jobs_completed_total counter\n")
	statuses := make([]string, 0, len(m.completed))
	for s := range m.completed {
		statuses = append(statuses, s)
	}
	sort.Strings(statuses)
	for _, s := range statuses {
		fmt.Fprintf(&b, "dsasimd_jobs_completed_total{status=%q} %d\n", s, m.completed[s])
	}

	counter("dsasimd_jobs_interrupted_total", "Jobs checkpointed and unwound by a drain.", m.interrupted)
	counter("dsasimd_jobs_resumed_total", "Jobs restored from a checkpoint after a restart.", m.resumed)
	counter("dsasimd_job_retries_total", "Extra attempts across all jobs (degradation reruns included).", m.retries)

	counter("dsasimd_policy_takeovers_kept_total", "Adaptive-policy takeovers judged a win by the per-loop ledger.", m.policyKept)
	counter("dsasimd_policy_takeovers_suspended_total", "Adaptive-policy suspensions (loops benched after repeated losses).", m.policySuspended)
	counter("dsasimd_policy_takeovers_trialed_total", "Adaptive-policy trial entries granted to suspended loops.", m.policyTrialed)

	fmt.Fprintf(&b, "# HELP dsasimd_energy_nanojoules_total Modeled energy over successful jobs, by component.\n# TYPE dsasimd_energy_nanojoules_total counter\n")
	comps := make([]string, 0, len(m.energyNJ))
	for c := range m.energyNJ {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	for _, c := range comps {
		fmt.Fprintf(&b, "dsasimd_energy_nanojoules_total{component=%q} %g\n", c, m.energyNJ[c])
	}

	m.duration.render(&b, "dsasimd_job_duration_seconds", "Terminal job wall time in seconds.")
	m.throughput.render(&b, "dsasimd_job_steps_per_second", "Retired simulation steps per wall second, per terminal job.")
	return b.String()
}

// histogram is a fixed-bucket Prometheus histogram.
type histogram struct {
	bounds []float64
	counts []uint64
	sum    float64
	total  uint64
}

func newHistogram(bounds ...float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds))}
}

func (h *histogram) observe(v float64) {
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i]++
		}
	}
	h.sum += v
	h.total++
}

func (h *histogram) render(b *strings.Builder, name, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for i, ub := range h.bounds {
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatBound(ub), h.counts[i])
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.total)
	fmt.Fprintf(b, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(b, "%s_count %d\n", name, h.total)
}

func formatBound(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}
