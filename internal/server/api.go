// Package server is the dsasimd simulation service: an HTTP/JSON
// front end that accepts simulation jobs (a named workload or raw
// armlite assembly × a DSA configuration), admits them through a
// bounded queue with explicit backpressure, executes them on the
// runner's worker pool with the full retry/degradation ladder, and
// exposes job lifecycle over polling, server-sent events, and
// Prometheus metrics. A SIGTERM drain checkpoints in-flight jobs
// through the runner's snapshot machinery so a restarted daemon
// resumes them bit-identically.
package server

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/runner"
	"repro/internal/workloads"
)

// JobSpec is the submission body of POST /v1/jobs. Exactly one of
// Workload (a built-in suite name) or Source (raw armlite assembly)
// must be set.
type JobSpec struct {
	// Name labels the job in reports; it defaults to the workload name
	// or "source".
	Name string `json:"name,omitempty"`
	// Workload names a built-in workload (see workloads.Names).
	Workload string `json:"workload,omitempty"`
	// Source is raw armlite assembly, parsed with the error-returning
	// parser; submissions with syntax errors are rejected with 400.
	Source string `json:"source,omitempty"`
	// Config picks the system setup: "extended" (default), "original",
	// "adaptive" (extended DSA plus the per-loop takeover policy), or
	// "scalar" (DSA off).
	Config string `json:"config,omitempty"`
	// Verify enables the differential oracle on every takeover.
	Verify bool `json:"verify,omitempty"`
	// TimeoutMS overrides the daemon's per-attempt deadline (0 = inherit).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ConfigByName resolves a system-config name shared by the service
// and the batch CLI.
func ConfigByName(name string) (cfg dsa.Config, dsaOff bool, err error) {
	switch name {
	case "extended", "":
		return dsa.DefaultConfig(), false, nil
	case "original":
		return dsa.OriginalConfig(), false, nil
	case "adaptive":
		return dsa.AdaptiveConfig(), false, nil
	case "scalar":
		return dsa.Config{}, true, nil
	default:
		return dsa.Config{}, false, fmt.Errorf("unknown config %q (want extended, original, adaptive or scalar)", name)
	}
}

// Validate normalizes the spec and reports the first problem. It is
// called at submission time so clients get a 400, never a failed job,
// for malformed requests.
func (s *JobSpec) Validate() error {
	if (s.Workload == "") == (s.Source == "") {
		return fmt.Errorf("exactly one of workload or source must be set")
	}
	if s.Workload != "" {
		if _, err := workloads.ByName(s.Workload); err != nil {
			return err
		}
	} else if _, err := asm.Parse(s.sourceName(), s.Source); err != nil {
		return err
	}
	if _, _, err := ConfigByName(s.Config); err != nil {
		return err
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0")
	}
	return nil
}

func (s *JobSpec) sourceName() string {
	if s.Name != "" {
		return s.Name
	}
	return "source"
}

// RunnerJob converts a validated spec into a runner job named id (the
// service keys checkpoints and progress by job ID, so resubmitting the
// same spec never collides).
func (s *JobSpec) RunnerJob(id string) (runner.Job, error) {
	cfg, dsaOff, err := ConfigByName(s.Config)
	if err != nil {
		return runner.Job{}, err
	}
	if !dsaOff && s.Verify {
		cfg.Verify = dsa.VerifyConfig{Enabled: true, Fallback: true}
	}
	w, err := s.workload()
	if err != nil {
		return runner.Job{}, err
	}
	return runner.Job{
		Name:     id,
		Workload: w,
		CPU:      cpu.DefaultConfig(),
		DSA:      cfg,
		DSAOff:   dsaOff,
		Timeout:  time.Duration(s.TimeoutMS) * time.Millisecond,
	}, nil
}

// workload resolves the spec to a runnable workload: a suite entry, or
// a synthetic wrapper around client source (no memory setup beyond the
// machine default, no output check — the result is the digest).
func (s *JobSpec) workload() (*workloads.Workload, error) {
	if s.Workload != "" {
		return workloads.ByName(s.Workload)
	}
	prog, err := asm.Parse(s.sourceName(), s.Source)
	if err != nil {
		return nil, err
	}
	return &workloads.Workload{
		Name:        s.sourceName(),
		Description: "client-submitted source",
		Scalar:      func() *armlite.Program { return prog },
		Setup:       func(*cpu.Machine) {},
		Check:       func(*cpu.Machine) error { return nil },
	}, nil
}

// Job statuses the service adds on top of the runner's terminal ones.
const (
	// StatusQueued: admitted, waiting for a worker.
	StatusQueued = "queued"
	// StatusRunning: on a worker right now.
	StatusRunning = "running"
	// StatusInterrupted: stopped by a drain with its checkpoint saved;
	// a restarted daemon re-queues and resumes it.
	StatusInterrupted = "interrupted"
)

// ResultJSON is the terminal result schema shared by GET /v1/jobs/{id}
// and `dsasim -batch -json`, so CLI and service output are diffable.
type ResultJSON struct {
	Job      string `json:"job"`
	Status   string `json:"status"`
	Cause    string `json:"cause,omitempty"`
	Attempts int    `json:"attempts"`
	// AttemptCauses lists every failed attempt's classified cause in
	// the order they occurred.
	AttemptCauses []string `json:"attempt_causes,omitempty"`
	Degraded      bool     `json:"degraded,omitempty"`
	WallNS        int64    `json:"wall_ns"`
	Ticks         int64    `json:"ticks,omitempty"`
	Steps         uint64   `json:"steps,omitempty"`
	// MemDigest is the FNV-1a digest of the final memory image as 16
	// hex digits (a string: JSON numbers cannot carry 64 bits).
	MemDigest       string            `json:"mem_digest,omitempty"`
	Takeovers       uint64            `json:"takeovers,omitempty"`
	VectorizedIters uint64            `json:"vectorized_iters,omitempty"`
	Fallbacks       uint64            `json:"fallbacks,omitempty"`
	FallbackReasons map[string]uint64 `json:"fallback_reasons,omitempty"`
	// Energy is the paper's energy-model breakdown for the successful
	// run (absent for failed jobs).
	Energy *EnergyJSON `json:"energy,omitempty"`
	// Adaptive-policy counters (absent outside the "adaptive" config).
	PolicyKept      uint64 `json:"policy_kept,omitempty"`
	PolicySuspended uint64 `json:"policy_suspended,omitempty"`
	PolicyTrialed   uint64 `json:"policy_trialed,omitempty"`
	ResumedFromStep uint64 `json:"resumed_from_step,omitempty"`
	ResumeNote      string `json:"resume_note,omitempty"`
	Error           string `json:"error,omitempty"`
}

// EnergyJSON is the energy breakdown in nanojoules, by component.
type EnergyJSON struct {
	FrontEndNJ float64 `json:"front_end_nj"`
	ScalarNJ   float64 `json:"scalar_nj"`
	CachesNJ   float64 `json:"caches_nj"`
	NEONNJ     float64 `json:"neon_nj"`
	DSANJ      float64 `json:"dsa_nj"`
	TotalNJ    float64 `json:"total_nj"`
}

// ResultFromRunner renders a runner result in the wire schema.
func ResultFromRunner(r runner.Result) ResultJSON {
	out := ResultJSON{
		Job:             r.Job,
		Status:          string(r.Status),
		Cause:           r.Cause,
		Attempts:        r.Attempts,
		AttemptCauses:   append([]string(nil), r.AttemptCauses...),
		Degraded:        r.Degraded,
		WallNS:          r.Wall.Nanoseconds(),
		Ticks:           r.Ticks,
		Steps:           r.Steps,
		ResumedFromStep: r.ResumedFromStep,
		ResumeNote:      r.ResumeNote,
	}
	if r.Status != runner.StatusFailed {
		out.MemDigest = fmt.Sprintf("%016x", r.MemSum)
		out.Energy = &EnergyJSON{
			FrontEndNJ: r.Energy.FrontEnd,
			ScalarNJ:   r.Energy.Scalar,
			CachesNJ:   r.Energy.Caches,
			NEONNJ:     r.Energy.NEON,
			DSANJ:      r.Energy.DSA,
			TotalNJ:    r.Energy.Total(),
		}
	}
	if r.Stats != nil {
		out.Takeovers = r.Stats.Takeovers
		out.VectorizedIters = r.Stats.VectorizedIters
		out.Fallbacks = r.Stats.Fallbacks
		out.PolicyKept = r.Stats.PolicyKept
		out.PolicySuspended = r.Stats.PolicySuspended
		out.PolicyTrialed = r.Stats.PolicyTrialed
		if len(r.Stats.FallbackReasons) > 0 {
			out.FallbackReasons = make(map[string]uint64, len(r.Stats.FallbackReasons))
			for k, v := range r.Stats.FallbackReasons {
				out.FallbackReasons[k] = v
			}
		}
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	return out
}

// ProgressJSON is one live progress sample on the SSE stream.
type ProgressJSON struct {
	Job       string `json:"job"`
	Attempt   int    `json:"attempt"`
	DSAOff    bool   `json:"dsa_off,omitempty"`
	Steps     uint64 `json:"steps"`
	Ticks     int64  `json:"ticks"`
	Takeovers uint64 `json:"takeovers"`
	Fallbacks uint64 `json:"fallbacks"`
}

// JobView is the polling shape of GET /v1/jobs/{id}.
type JobView struct {
	ID     string  `json:"id"`
	Status string  `json:"status"`
	Spec   JobSpec `json:"spec"`
	// Queued/Started/Finished are RFC 3339 timestamps ("" = not yet).
	Queued   string        `json:"queued,omitempty"`
	Started  string        `json:"started,omitempty"`
	Finished string        `json:"finished,omitempty"`
	Progress *ProgressJSON `json:"progress,omitempty"`
	Result   *ResultJSON   `json:"result,omitempty"`
	// Owner/Epoch are cluster-mode fields: the worker currently leased
	// the job and the assignment's fencing epoch. Standalone daemons
	// leave them zero (and they disappear from the JSON).
	Owner string `json:"owner,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// Terminal reports whether a service status is final.
func Terminal(status string) bool {
	switch status {
	case string(runner.StatusOK), string(runner.StatusDegraded), string(runner.StatusFailed):
		return true
	}
	return false
}

// Event is one SSE payload: a status change, a progress sample, or the
// terminal result.
type Event struct {
	Type     string        `json:"type"` // "status" | "progress" | "done"
	Job      string        `json:"job"`
	Status   string        `json:"status,omitempty"`
	Progress *ProgressJSON `json:"progress,omitempty"`
	Result   *ResultJSON   `json:"result,omitempty"`
}

// fmtTime renders a timestamp for JobView ("" for the zero time).
func fmtTime(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// trimSourceName keeps client-supplied names filesystem- and
// metrics-safe: the service uses job IDs for files, so this only
// guards log readability.
func trimSourceName(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '\n' || r == '\r' {
			return ' '
		}
		return r
	}, s)
}
