package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
)

// longSource builds a scalar loop retiring ~7n instructions whose
// memory image depends on the whole execution history: r5 mixes the
// induction variable with the (+i)^c map — a bijection per step with
// no fixed point on its trajectory (eor'ing the bound, not i itself,
// so 0 is not absorbing) — and streams it through a 4 KiB window.
// Digest equality between two runs therefore means the runs agree on
// the accumulator's entire orbit, not just the final counters.
func longSource(n int) string {
	return fmt.Sprintf(`
        mov   r0, #0
        mov   r1, #%d
outer:  mov   r2, #65536
        mov   r4, #0
inner:  add   r0, r0, #1
        add   r5, r5, r0
        eor   r5, r5, r1
        str   r5, [r2], #4
        add   r4, r4, #1
        cmp   r4, #1024
        blt   inner
        cmp   r0, r1
        blt   outer
        halt
`, n)
}

// newTestServer builds a service plus an HTTP front end, both torn
// down at test end (Drain is idempotent, so tests may drain earlier).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Logf = t.Logf
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
		ts.Close()
	})
	return s, ts
}

// submit posts a spec and decodes the response, asserting the status
// code. The returned view is nil for error answers.
func submit(t *testing.T, ts *httptest.Server, spec JobSpec, wantCode int) (*JobView, *http.Response) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var msg bytes.Buffer
		_, _ = msg.ReadFrom(resp.Body)
		t.Fatalf("POST /v1/jobs: code = %d, want %d (body %s)", resp.StatusCode, wantCode, msg.String())
	}
	if wantCode != http.StatusAccepted {
		return nil, resp
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	if view.ID == "" || view.Status == "" {
		t.Fatalf("submit response missing id/status: %+v", view)
	}
	return &view, resp
}

// getJob polls GET /v1/jobs/{id} once.
func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: code = %d", id, resp.StatusCode)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decode job %s: %v", id, err)
	}
	return view
}

// waitFor polls the job until cond holds, failing at the deadline.
func waitFor(t *testing.T, ts *httptest.Server, id string, timeout time.Duration, what string, cond func(JobView) bool) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := getJob(t, ts, id)
		if cond(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s: timed out waiting for %s (status %s)", id, what, v.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) JobView {
	t.Helper()
	v := waitFor(t, ts, id, timeout, "terminal status", func(v JobView) bool { return Terminal(v.Status) })
	if v.Result == nil {
		t.Fatalf("job %s: terminal (%s) but no result", id, v.Status)
	}
	return v
}

// referenceResult runs the spec directly on the supervisor — the same
// path `dsasim -batch -json` takes — for parity comparisons.
func referenceResult(t *testing.T, spec JobSpec) ResultJSON {
	t.Helper()
	job, err := spec.RunnerJob("ref")
	if err != nil {
		t.Fatalf("RunnerJob: %v", err)
	}
	rep := runner.Run(context.Background(), []runner.Job{job}, runner.Options{Workers: 1})
	if len(rep.Results) != 1 {
		t.Fatalf("reference run: %d results", len(rep.Results))
	}
	return ResultFromRunner(rep.Results[0])
}

// TestServiceParity: a job submitted over HTTP must report the same
// simulation outcome — memory digest, tick count, step count, DSA
// takeover and fallback attribution — as the same spec run directly on
// the runner (the CLI path).
func TestServiceParity(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	specs := []JobSpec{
		{Workload: "mm_32x32", Config: "extended"},
		{Workload: "mm_32x32", Config: "scalar"},
		{Name: "loop", Source: longSource(100_000), Config: "extended", Verify: true},
	}
	views := make([]*JobView, len(specs))
	for i, spec := range specs {
		views[i], _ = submit(t, ts, spec, http.StatusAccepted)
	}
	for i, spec := range specs {
		got := waitTerminal(t, ts, views[i].ID, 60*time.Second)
		want := referenceResult(t, spec)
		r := got.Result
		if r.Status != want.Status {
			t.Fatalf("%s: status = %s, want %s (err %s)", views[i].ID, r.Status, want.Status, r.Error)
		}
		if r.MemDigest != want.MemDigest {
			t.Errorf("%s: mem_digest = %s, want %s", views[i].ID, r.MemDigest, want.MemDigest)
		}
		if r.Ticks != want.Ticks {
			t.Errorf("%s: ticks = %d, want %d", views[i].ID, r.Ticks, want.Ticks)
		}
		if r.Steps != want.Steps {
			t.Errorf("%s: steps = %d, want %d", views[i].ID, r.Steps, want.Steps)
		}
		if r.Takeovers != want.Takeovers || r.Fallbacks != want.Fallbacks {
			t.Errorf("%s: takeovers/fallbacks = %d/%d, want %d/%d",
				views[i].ID, r.Takeovers, r.Fallbacks, want.Takeovers, want.Fallbacks)
		}
		if got.Queued == "" || got.Started == "" || got.Finished == "" {
			t.Errorf("%s: missing lifecycle timestamps: %+v", views[i].ID, got)
		}
	}

	// The extended and scalar runs of the same workload must agree on
	// the output image — the service end of the differential oracle.
	ext := getJob(t, ts, views[0].ID).Result
	sca := getJob(t, ts, views[1].ID).Result
	if ext.MemDigest != sca.MemDigest {
		t.Errorf("extended digest %s != scalar digest %s", ext.MemDigest, sca.MemDigest)
	}
	if ext.Takeovers == 0 {
		t.Errorf("extended run reports no takeovers")
	}
}

// TestServiceRejectsBadSpecs: malformed submissions answer 400 at
// admission; unknown jobs answer 404.
func TestServiceRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	bad := []JobSpec{
		{},                                    // neither workload nor source
		{Workload: "mm_32x32", Source: "x"},   // both
		{Workload: "no_such_workload"},        // unknown workload
		{Source: "bogus r0, r1\n halt"},       // syntax error
		{Workload: "mm_32x32", Config: "avx"}, // unknown config
		{Workload: "mm_32x32", TimeoutMS: -5}, // negative timeout
	}
	for i, spec := range bad {
		if _, resp := submit(t, ts, spec, http.StatusBadRequest); resp == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}

	// Unparseable body.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated body: code = %d, want 400", resp.StatusCode)
	}

	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: code = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestServiceBackpressure: with one worker and one queue slot, a third
// concurrent job must be refused with 429 + Retry-After, and a drained
// service must refuse everything with 503.
func TestServiceBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		RetryAfter: 7 * time.Second,
		Runner:     runner.Options{ProgressEvery: 50_000},
	})

	long := JobSpec{Name: "hog", Source: longSource(20_000_000), Config: "scalar"}
	v1, _ := submit(t, ts, long, http.StatusAccepted)
	// Wait until the worker owns job 1, so the queue slot is free and
	// the admission outcome of the next two submissions is determined.
	waitFor(t, ts, v1.ID, 10*time.Second, "running", func(v JobView) bool { return v.Status == StatusRunning })

	v2, _ := submit(t, ts, long, http.StatusAccepted)
	if got := getJob(t, ts, v2.ID); got.Status != StatusQueued {
		t.Fatalf("job 2 status = %s, want queued", got.Status)
	}

	_, resp := submit(t, ts, long, http.StatusTooManyRequests)
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Errorf("Retry-After = %q, want an integer", resp.Header.Get("Retry-After"))
	}
	// The hint jitters upward from the configured base (7s) by up to
	// 1+base/4 seconds so rejected clients don't retry in lockstep.
	if ra < 7 || ra > 7+1+7/4 {
		t.Errorf("Retry-After = %d, want in [7, %d]", ra, 7+1+7/4)
	}

	// A full queue is a readiness failure, not a liveness one.
	checkProbe(t, ts, "/readyz", http.StatusServiceUnavailable, "reason", "queue full")
	checkProbe(t, ts, "/healthz", http.StatusOK, "status", "ok")

	// Queue state is visible on the metrics surface.
	m := s.Metrics()
	for _, want := range []string{
		"dsasimd_queue_depth 1",
		"dsasimd_queue_capacity 1",
		"dsasimd_jobs_inflight 1",
		"dsasimd_jobs_rejected_total 1",
		"dsasimd_jobs_submitted_total 2",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Drain: the running job is interrupted, and submissions now get 503.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := getJob(t, ts, v1.ID); got.Status != StatusInterrupted {
		t.Errorf("job 1 after drain: status = %s, want interrupted", got.Status)
	}
	submit(t, ts, long, http.StatusServiceUnavailable)

	// Liveness stays 200 through the drain (the process is up); only
	// readiness flips to 503.
	checkProbe(t, ts, "/healthz", http.StatusOK, "status", "draining")
	checkProbe(t, ts, "/readyz", http.StatusServiceUnavailable, "reason", "draining")
}

// checkProbe asserts a health/readiness endpoint's status code and one
// field of its JSON body.
func checkProbe(t *testing.T, ts *httptest.Server, path string, wantCode int, field, want string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Errorf("GET %s: code = %d, want %d", path, resp.StatusCode, wantCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
	if body[field] != want {
		t.Errorf("%s %s = %q, want %q", path, field, body[field], want)
	}
}

// TestServiceEvents: the SSE stream carries live progress samples and
// ends with the terminal result; a late subscriber still receives the
// terminal event.
func TestServiceEvents(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Runner:  runner.Options{ProgressEvery: 20_000},
	})

	view, _ := submit(t, ts, JobSpec{Name: "sse", Source: longSource(3_000_000), Config: "scalar"}, http.StatusAccepted)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+view.ID+"/events", nil)
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	progress, done := drainSSE(t, resp.Body)
	if progress == 0 {
		t.Errorf("no progress events on the stream")
	}
	if done == nil {
		t.Fatalf("stream ended without a done event")
	}
	if done.Result == nil || done.Result.Status != string(runner.StatusOK) {
		t.Fatalf("done event: %+v", done)
	}

	// The streamed terminal result matches the polled one.
	polled := waitTerminal(t, ts, view.ID, 10*time.Second)
	if done.Result.MemDigest != polled.Result.MemDigest || done.Result.Ticks != polled.Result.Ticks {
		t.Errorf("streamed result %s/%d != polled %s/%d",
			done.Result.MemDigest, done.Result.Ticks, polled.Result.MemDigest, polled.Result.Ticks)
	}

	// A subscriber attaching after completion gets the replayed "done"
	// immediately.
	req2, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+view.ID+"/events", nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatalf("GET events (late): %v", err)
	}
	defer resp2.Body.Close()
	_, late := drainSSE(t, resp2.Body)
	if late == nil || late.Result == nil || late.Result.MemDigest != polled.Result.MemDigest {
		t.Errorf("late subscriber: done = %+v", late)
	}
}

// drainSSE reads an event stream to its terminal event, returning the
// number of progress events and the done event.
func drainSSE(t *testing.T, body io.Reader) (progress int, done *Event) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		switch ev.Type {
		case "progress":
			if ev.Progress == nil || ev.Progress.Steps == 0 {
				t.Errorf("progress event without sample: %+v", ev)
			}
			progress++
		case "done":
			return progress, &ev
		}
	}
	return progress, nil
}

// TestServiceIdempotentSubmit: the standalone daemon honors
// Idempotency-Key like the cluster coordinator — same key replays the
// original job, distinct keys create distinct jobs.
func TestServiceIdempotentSubmit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	spec := JobSpec{Workload: "mm_32x32"}

	post := func(key string) (JobView, bool) {
		t.Helper()
		body, _ := json.Marshal(spec)
		req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST /v1/jobs: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /v1/jobs (key %q): code %d", key, resp.StatusCode)
		}
		var view JobView
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		return view, resp.Header.Get("Idempotency-Replayed") == "true"
	}

	first, replayed := post("svc-key")
	if replayed {
		t.Fatal("first submission marked as a replay")
	}
	waitTerminal(t, ts, first.ID, 30*time.Second)
	// A retry after completion still replays — and carries the result.
	again, replayed := post("svc-key")
	if again.ID != first.ID || !replayed {
		t.Fatalf("replay: id %s replayed %v, want %s true", again.ID, replayed, first.ID)
	}
	if again.Result == nil {
		t.Error("replayed response missing the completed result")
	}
	if other, _ := post("svc-key-2"); other.ID == first.ID {
		t.Fatal("distinct key replayed the first job")
	}
}

// TestServiceMetricsNames pins the full metric surface: a CI name
// regression here breaks dashboards silently, so every exported family
// is asserted.
func TestServiceMetricsNames(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	view, _ := submit(t, ts, JobSpec{Workload: "mm_32x32"}, http.StatusAccepted)
	waitTerminal(t, ts, view.ID, 30*time.Second)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	m := buf.String()

	for _, name := range []string{
		"dsasimd_queue_depth",
		"dsasimd_queue_capacity",
		"dsasimd_jobs_inflight",
		"dsasimd_mem_inflight_bytes",
		"dsasimd_mem_budget_bytes",
		"dsasimd_jobs_submitted_total",
		"dsasimd_jobs_rejected_total",
		"dsasimd_jobs_deduped_total",
		"dsasimd_jobs_completed_total{status=\"ok\"}",
		"dsasimd_jobs_completed_total{status=\"degraded\"}",
		"dsasimd_jobs_completed_total{status=\"failed\"}",
		"dsasimd_jobs_interrupted_total",
		"dsasimd_jobs_resumed_total",
		"dsasimd_job_retries_total",
		"dsasimd_policy_takeovers_kept_total",
		"dsasimd_policy_takeovers_suspended_total",
		"dsasimd_policy_takeovers_trialed_total",
		"dsasimd_energy_nanojoules_total{component=\"front_end\"}",
		"dsasimd_energy_nanojoules_total{component=\"scalar\"}",
		"dsasimd_energy_nanojoules_total{component=\"caches\"}",
		"dsasimd_energy_nanojoules_total{component=\"neon\"}",
		"dsasimd_energy_nanojoules_total{component=\"dsa\"}",
		"dsasimd_job_duration_seconds_bucket",
		"dsasimd_job_duration_seconds_sum",
		"dsasimd_job_duration_seconds_count",
		"dsasimd_job_steps_per_second_bucket",
		"dsasimd_job_steps_per_second_count",
	} {
		if !strings.Contains(m, name) {
			t.Errorf("metrics missing %s", name)
		}
	}
	if !strings.Contains(m, "dsasimd_jobs_completed_total{status=\"ok\"} 1") {
		t.Errorf("completed counter not incremented:\n%s", m)
	}
	if !strings.Contains(m, "dsasimd_job_duration_seconds_count 1") {
		t.Errorf("duration histogram not observed")
	}

	// The library surface agrees with the HTTP one.
	if s.Metrics() != m {
		// Gauges may legitimately move between scrapes; compare names only.
		for _, line := range strings.Split(m, "\n") {
			if strings.HasPrefix(line, "# HELP") && !strings.Contains(s.Metrics(), strings.Fields(line)[2]) {
				t.Errorf("Server.Metrics missing family %s", strings.Fields(line)[2])
			}
		}
	}
}
