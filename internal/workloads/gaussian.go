package workloads

import (
	"fmt"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
)

// Gaussian blur, separable [1 2 1]/4 kernel applied horizontally then
// vertically over a 64×64 int32 image (OpenCV-style). Both passes are
// count loops reading three offset streams from one advancing base —
// vectorizable, but with more memory traffic than RGB→Gray.
const (
	gaussW = 64
	gaussH = 64
)

// Gaussian builds the workload.
func Gaussian() *Workload {
	const name = "gaussian"
	n := gaussW * gaussH
	// Pass 1: t[i] = (img[i] + 2*img[i+1] + img[i+2]) >> 2, i < n-2.
	// Pass 2: out[i] = (t[i] + 2*t[i+W] + t[i+2W]) >> 2, i < n-2W.
	scalar := fmt.Sprintf(`
        mov   r5, #%[1]d      ; img cursor
        mov   r2, #%[3]d      ; t cursor
        mov   r0, #0
pass1:  ldr   r3, [r5]
        ldr   r4, [r5, #4]
        ldr   r6, [r5, #8]
        add   r3, r3, r4
        add   r3, r3, r4
        add   r3, r3, r6
        asr   r3, r3, #2
        str   r3, [r2], #4
        add   r5, r5, #4
        add   r0, r0, #1
        cmp   r0, #%[4]d
        blt   pass1
        mov   r5, #%[3]d      ; t cursor
        mov   r2, #%[2]d      ; out cursor
        mov   r0, #0
pass2:  ldr   r3, [r5]
        ldr   r4, [r5, #%[6]d]
        ldr   r6, [r5, #%[7]d]
        add   r3, r3, r4
        add   r3, r3, r4
        add   r3, r3, r6
        asr   r3, r3, #2
        str   r3, [r2], #4
        add   r5, r5, #4
        add   r0, r0, #1
        cmp   r0, #%[5]d
        blt   pass2
        halt
`, AddrInA, AddrOut, AddrTmp1, n-2, n-2*gaussW, gaussW*4, gaussW*8)

	// Hand: per pass, three library calls (add, add-shifted, shift) —
	// the library has no 3-tap primitive, so the blur costs three
	// passes each plus temporaries.
	hand := fmt.Sprintf(`
        ; pass 1: t = (img + img+1) ; t = (t + img+1) ; t = (t + img+2) >> 2
        mov   r0, #%[3]d
        mov   r1, #%[1]d
        mov   r2, #%[8]d
        mov   r3, #%[4]d
        bl    vlib_add_w      ; t = img[i] + img[i+1]
        mov   r0, #%[3]d
        mov   r1, #%[3]d
        mov   r2, #%[8]d
        mov   r3, #%[4]d
        bl    vlib_add_w      ; t += img[i+1]
        mov   r0, #%[3]d
        mov   r1, #%[3]d
        mov   r2, #%[9]d
        mov   r3, #%[4]d
        bl    vlib_add_w      ; t += img[i+2]
        mov   r0, #%[3]d
        mov   r1, #%[3]d
        mov   r3, #%[4]d
        bl    vlib_shr2_w     ; t >>= 2
        ; pass 2 over rows
        mov   r0, #%[2]d
        mov   r1, #%[3]d
        mov   r2, #%[10]d
        mov   r3, #%[5]d
        bl    vlib_add_w
        mov   r0, #%[2]d
        mov   r1, #%[2]d
        mov   r2, #%[10]d
        mov   r3, #%[5]d
        bl    vlib_add_w
        mov   r0, #%[2]d
        mov   r1, #%[2]d
        mov   r2, #%[11]d
        mov   r3, #%[5]d
        bl    vlib_add_w
        mov   r0, #%[2]d
        mov   r1, #%[2]d
        mov   r3, #%[5]d
        bl    vlib_shr2_w
        halt
`, AddrInA, AddrOut, AddrTmp1, n-2, n-2*gaussW,
		gaussW*4, gaussW*8,
		AddrInA+4, AddrInA+8, AddrTmp1+gaussW*4, AddrTmp1+gaussW*8) + vlib

	rnd := newRNG(11)
	img := rnd.int32s(n, 256)
	t := make([]int32, n)
	for i := 0; i < n-2; i++ {
		t[i] = (img[i] + 2*img[i+1] + img[i+2]) >> 2
	}
	want := make([]int32, n-2*gaussW)
	for i := 0; i < n-2*gaussW; i++ {
		want[i] = (t[i] + 2*t[i+gaussW] + t[i+2*gaussW]) >> 2
	}

	return &Workload{
		Name:        name,
		Description: "separable Gaussian blur [1 2 1]/4 over a 64×64 image",
		DLP:         DLPHigh,
		NoAlias:     true,
		Scalar:      func() *armlite.Program { return asm.MustAssemble(name, scalar) },
		Hand:        func() *armlite.Program { return asm.MustAssemble(name+"_hand", hand) },
		Setup: func(m *cpu.Machine) {
			m.Mem.WriteWords(AddrInA, img)
		},
		Check: func(m *cpu.Machine) error {
			return checkWords(m, AddrOut, want, name)
		},
	}
}
