package workloads

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/vectorize"
)

// TestScalarCorrect: every workload's scalar program matches its Go
// reference.
func TestScalarCorrect(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			m := cpu.MustNew(w.Scalar(), cpu.DefaultConfig())
			w.Setup(m)
			if err := m.Run(nil); err != nil {
				t.Fatal(err)
			}
			if err := w.Check(m); err != nil {
				t.Fatal(err)
			}
			if m.Counts.VecOps != 0 {
				t.Error("scalar program must not use NEON")
			}
		})
	}
}

// TestHandCorrect: hand-vectorized variants match the reference and
// actually use the NEON engine.
func TestHandCorrect(t *testing.T) {
	for _, w := range All() {
		if w.Hand == nil {
			continue
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			m := cpu.MustNew(w.Hand(), cpu.DefaultConfig())
			w.Setup(m)
			if err := m.Run(nil); err != nil {
				t.Fatal(err)
			}
			if err := w.Check(m); err != nil {
				t.Fatal(err)
			}
			if m.Counts.VecOps == 0 {
				t.Error("hand program used no NEON operations")
			}
		})
	}
}

// TestAutoVecCorrect: the statically compiled programs stay correct.
func TestAutoVecCorrect(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, rep, err := vectorize.AutoVectorize(w.Scalar(), vectorize.Options{NoAlias: w.NoAlias})
			if err != nil {
				t.Fatal(err)
			}
			m := cpu.MustNew(prog, cpu.DefaultConfig())
			w.Setup(m)
			if err := m.Run(nil); err != nil {
				t.Fatal(err)
			}
			if err := w.Check(m); err != nil {
				t.Fatalf("%v (report: %+v)", err, rep)
			}
		})
	}
}

// TestDSACorrect: both DSA configurations stay correct on the whole
// suite.
func TestDSACorrect(t *testing.T) {
	configs := map[string]dsa.Config{
		"original": dsa.OriginalConfig(),
		"extended": dsa.DefaultConfig(),
	}
	for cfgName, cfg := range configs {
		for _, w := range All() {
			w, cfg := w, cfg
			t.Run(cfgName+"/"+w.Name, func(t *testing.T) {
				s, err := dsa.NewSystem(w.Scalar(), cpu.DefaultConfig(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				w.Setup(s.M)
				if err := s.Run(); err != nil {
					t.Fatal(err)
				}
				if err := w.Check(s.M); err != nil {
					t.Fatalf("%v\nstats: kinds=%v rejections=%v",
						err, s.Stats().ByKind, s.Stats().RejectedReasons)
				}
			})
		}
	}
}

// TestExpectedVectorization spot-checks the paper's qualitative claims
// about who can vectorize what.
func TestExpectedVectorization(t *testing.T) {
	cases := []struct {
		name             string
		autovecWant      bool // static compiler vectorizes ≥1 loop
		extendedTakeover bool // extended DSA performs ≥1 takeover
	}{
		{"mm_32x32", true, true},
		{"rgb_gray", true, true},
		{"gaussian", true, true},
		{"susan_e", true, true},
		{"q_sort", true, false}, // only the unprofitable sampling loop
		{"dijkstra", true, true},
		{"bit_count", false, true},
		{"str_prep", false, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w, err := ByName(c.name)
			if err != nil {
				t.Fatal(err)
			}
			_, rep, err := vectorize.AutoVectorize(w.Scalar(), vectorize.Options{NoAlias: w.NoAlias})
			if err != nil {
				t.Fatal(err)
			}
			if got := rep.VectorizedCount() > 0; got != c.autovecWant {
				t.Errorf("autovec vectorized=%v want %v (report %+v)", got, c.autovecWant, rep)
			}

			s, err := dsa.NewSystem(w.Scalar(), cpu.DefaultConfig(), dsa.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			w.Setup(s.M)
			if err := s.Run(); err != nil {
				t.Fatal(err)
			}
			if got := s.Stats().Takeovers > 0; got != c.extendedTakeover {
				t.Errorf("extended DSA takeovers=%d want >0=%v (kinds=%v rejections=%v)",
					s.Stats().Takeovers, c.extendedTakeover,
					s.Stats().ByKind, s.Stats().RejectedReasons)
			}
		})
	}
}

// TestDynamicOnlyExtended: on the dynamic-loop benchmarks the original
// DSA must do (almost) nothing while the extended DSA works.
func TestDynamicOnlyExtended(t *testing.T) {
	for _, name := range []string{"bit_count", "str_prep", "dijkstra"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := dsa.NewSystem(w.Scalar(), cpu.DefaultConfig(), dsa.OriginalConfig())
		if err != nil {
			t.Fatal(err)
		}
		w.Setup(orig.M)
		if err := orig.Run(); err != nil {
			t.Fatal(err)
		}
		ext, err := dsa.NewSystem(w.Scalar(), cpu.DefaultConfig(), dsa.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		w.Setup(ext.M)
		if err := ext.Run(); err != nil {
			t.Fatal(err)
		}
		if ext.Stats().VectorizedIters <= orig.Stats().VectorizedIters {
			t.Errorf("%s: extended (%d iters) must vectorize more than original (%d)",
				name, ext.Stats().VectorizedIters, orig.Stats().VectorizedIters)
		}
		if ext.M.Ticks >= orig.M.Ticks {
			t.Errorf("%s: extended %d ticks, original %d", name, ext.M.Ticks, orig.M.Ticks)
		}
	}
}
