package workloads

import (
	"fmt"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
)

// BitCount is the MiBench bit-counting benchmark: a SWAR popcount over
// groups of words whose sizes arrive at run time (dynamic-range
// loops), followed by a conditional classification pass. The static
// compiler cannot vectorize either (the counts are not compile-time
// constants; the classifier branches), the original DSA only catches
// the first group before the range changes, and the extended DSA
// re-analyzes per entry and speculates through the conditional — the
// Article 2 headline (+45 % on BitCounts).
func BitCount() *Workload {
	const name = "bit_count"
	const nGroups = 8
	rnd := newRNG(73)
	sizes := make([]int32, nGroups)
	total := int32(0)
	for i := range sizes {
		sizes[i] = int32(128 + rnd.intn(160))
		total += sizes[i]
	}
	data := rnd.int32s(int(total), 1<<30)

	// Params block: [0]=nGroups, [1..nGroups]=sizes, [nGroups+1]=total.
	params := append([]int32{nGroups}, sizes...)
	params = append(params, total)

	scalar := fmt.Sprintf(`
        mov   r10, #%[1]d     ; params cursor
        ldr   r9, [r10], #4   ; ngroups
        mov   r11, #%[2]d     ; data cursor
        mov   r12, #%[3]d     ; counts cursor
        mov   r8, #0          ; group index
gloop:  ldr   r7, [r10], #4   ; group size (dynamic range!)
        mov   r6, #0
bloop:  ldr   r0, [r11], #4
        asr   r1, r0, #1
        and   r1, r1, #0x55555555
        sub   r0, r0, r1
        and   r2, r0, #0x33333333
        asr   r1, r0, #2
        and   r1, r1, #0x33333333
        add   r0, r2, r1
        asr   r1, r0, #4
        add   r0, r0, r1
        and   r0, r0, #0x0F0F0F0F
        mov   r2, #0x01010101
        mul   r0, r0, r2
        asr   r0, r0, #24
        str   r0, [r12], #4
        add   r6, r6, #1
        cmp   r6, r7
        blt   bloop
        add   r8, r8, #1
        cmp   r8, r9
        blt   gloop
        ; ---- conditional classification: class[i] = cnt[i] > 16 ----
        ldr   r7, [r10]       ; total (dynamic)
        mov   r5, #%[3]d      ; &counts
        mov   r2, #%[4]d      ; &class
        mov   r0, #0
closs:  ldr   r3, [r5, r0, lsl #2]
        cmp   r3, #16
        blt   czero
        mov   r6, #1
        str   r6, [r2, r0, lsl #2]
        b     cend
czero:  mov   r6, #0
        str   r6, [r2, r0, lsl #2]
cend:   add   r0, r0, #1
        cmp   r0, r7
        blt   closs
        halt
`, AddrParams, AddrInA, AddrOut, AddrOut2)

	popcount := func(x int32) int32 {
		n := int32(0)
		for u := uint32(x); u != 0; u &= u - 1 {
			n++
		}
		return n
	}
	counts := make([]int32, total)
	class := make([]int32, total)
	for i, v := range data {
		counts[i] = popcount(v)
		if counts[i] >= 16 { // the kernel's `cmp #16 / blt` test
			class[i] = 1
		}
	}

	return &Workload{
		Name:         name,
		Description:  "SWAR popcount over runtime-sized groups + conditional classification (MiBench bitcount)",
		DLP:          DLPMedium,
		NoAlias:      true,
		DynamicLoops: true,
		Scalar:       func() *armlite.Program { return asm.MustAssemble(name, scalar) },
		Hand:         nil, // group sizes unknown until run time
		Setup: func(m *cpu.Machine) {
			m.Mem.WriteWords(AddrParams, params)
			m.Mem.WriteWords(AddrInA, data)
		},
		Check: func(m *cpu.Machine) error {
			if err := checkWords(m, AddrOut, counts, name+" counts"); err != nil {
				return err
			}
			return checkWords(m, AddrOut2, class, name+" class")
		},
	}
}
