package workloads

import (
	"testing"

	"repro/internal/cpu"
)

// TestDeterministicInputs: two independent instantiations of the suite
// must set up byte-identical memory — the reproducibility contract of
// the experiment harness.
func TestDeterministicInputs(t *testing.T) {
	a, b := All(), All()
	if len(a) != len(b) {
		t.Fatal("suite size varies")
	}
	for i := range a {
		ma := cpu.MustNew(a[i].Scalar(), cpu.DefaultConfig())
		mb := cpu.MustNew(b[i].Scalar(), cpu.DefaultConfig())
		a[i].Setup(ma)
		b[i].Setup(mb)
		for _, region := range []uint32{AddrParams, AddrInA, AddrInB, AddrInC} {
			ra, _ := ma.Mem.ReadBytes(region, 4096)
			rb, _ := mb.Mem.ReadBytes(region, 4096)
			for j := range ra {
				if ra[j] != rb[j] {
					t.Fatalf("%s: region %#x byte %d differs", a[i].Name, region, j)
				}
			}
		}
	}
}

// TestProgramsValidate: every workload's programs assemble and
// validate (both variants).
func TestProgramsValidate(t *testing.T) {
	for _, w := range All() {
		if err := w.Scalar().Validate(); err != nil {
			t.Errorf("%s scalar: %v", w.Name, err)
		}
		if w.Hand != nil {
			if err := w.Hand().Validate(); err != nil {
				t.Errorf("%s hand: %v", w.Name, err)
			}
		}
	}
}

// TestMetadata: names unique, descriptions present, DLP classes set.
func TestMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range All() {
		if seen[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		if w.Description == "" {
			t.Errorf("%s: missing description", w.Name)
		}
		switch w.DLP {
		case DLPHigh, DLPMedium, DLPLow:
		default:
			t.Errorf("%s: bad DLP class %q", w.Name, w.DLP)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName must fail for unknown workloads")
	}
	if len(Names()) != len(All()) {
		t.Error("Names/All mismatch")
	}
	if len(Canonical())+1 != len(All()) {
		t.Error("All must be Canonical + echo")
	}
}
