package workloads

import (
	"fmt"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
)

// qsortN is the element count.
const qsortN = 512

// QSort is the MiBench quicksort: an iterative Lomuto-partition
// quicksort with an explicit stack. Its partition loop is a
// conditional loop whose swap targets move data-dependently — no
// vectorizer (static or dynamic) can help, which is the point of the
// low-DLP class. A small fixed-trip sampling loop inside the driver is
// exactly the kind of loop the static compiler vectorizes at a loss
// (the paper's QSort auto-vectorization penalty) while the DSA's
// profitability guard skips it.
func QSort() *Workload {
	const name = "q_sort"
	scalar := fmt.Sprintf(`
        mov   r11, #%[2]d     ; explicit stack pointer
        mov   r0, #0          ; lo
        mov   r1, #%[3]d      ; hi
        str   r0, [r11], #4
        str   r1, [r11], #4
        mov   r9, #%[1]d      ; &a
        mov   r10, #%[4]d     ; &scratch
qloop:  cmp   r11, #%[2]d
        ble   qdone
        sub   r11, r11, #4
        ldr   r1, [r11]       ; hi
        sub   r11, r11, #4
        ldr   r0, [r11]       ; lo
        cmp   r0, r1
        bge   qloop
        ; median sampling copy of a[lo..lo+4] (fixed trip 5; the base
        ; depends on lo, so the compiler's versioned vector code pays
        ; its guards and frequently bails to scalar)
        lsl   r7, r0, #2
        add   r7, r7, r9      ; src cursor = &a[lo]
        mov   r8, #%[4]d      ; dst cursor
        mov   r6, #0
samp:   ldr   r5, [r7], #4
        str   r5, [r8], #4
        add   r6, r6, #1
        cmp   r6, #5
        blt   samp
        ; Lomuto partition: pivot = a[hi]
        ldr   r2, [r9, r1, lsl #2]
        sub   r3, r0, #1      ; i
        mov   r4, r0          ; j
part:   ldr   r5, [r9, r4, lsl #2]
        cmp   r5, r2
        bgt   pskip
        add   r3, r3, #1
        ldr   r6, [r9, r3, lsl #2]
        str   r5, [r9, r3, lsl #2]
        str   r6, [r9, r4, lsl #2]
pskip:  add   r4, r4, #1
        cmp   r4, r1
        blt   part
        add   r3, r3, #1
        ldr   r5, [r9, r3, lsl #2]
        ldr   r6, [r9, r1, lsl #2]
        str   r6, [r9, r3, lsl #2]
        str   r5, [r9, r1, lsl #2]
        ; push (lo, i-1) and (i+1, hi)
        sub   r6, r3, #1
        str   r0, [r11], #4
        str   r6, [r11], #4
        add   r6, r3, #1
        str   r6, [r11], #4
        str   r1, [r11], #4
        b     qloop
qdone:  halt
`, AddrInA, AddrStack, qsortN-1, AddrTmp1)

	rnd := newRNG(41)
	data := rnd.int32s(qsortN, 100000)
	want := sortedCopy(data)

	return &Workload{
		Name:        name,
		Description: "iterative quicksort over 512 integers (MiBench qsort)",
		DLP:         DLPLow,
		NoAlias:     true,
		Scalar:      func() *armlite.Program { return asm.MustAssemble(name, scalar) },
		Hand:        nil, // the vector library does not fit sorting
		Setup: func(m *cpu.Machine) {
			m.Mem.WriteWords(AddrInA, data)
		},
		Check: func(m *cpu.Machine) error {
			return checkWords(m, AddrInA, want, name)
		},
	}
}
