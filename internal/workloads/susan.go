package workloads

import (
	"fmt"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
)

// susanN is the pixel count of the Susan Edges kernel.
const susanN = 4096

// susanT is the edge threshold.
const susanT = 900

// SusanE is the MiBench Susan edge-detection kernel, reduced to its
// characteristic loop mix (medium DLP, per Article 1):
//
//	loop 0 — brightness normalization (count loop: every vectorizer
//	         handles it, giving the static compiler its partial win)
//	loop 1 — squared difference through a helper function (function
//	         loop, Fig. 16: statically inhibited by the call, run-time
//	         vectorized by the DSA)
//	loop 2 — edge thresholding (conditional loop: only the extended
//	         DSA vectorizes it)
//	loop 3 — edge counting (carry-around scalar accumulator: nothing
//	         vectorizes it)
func SusanE() *Workload {
	const name = "susan_e"
	scalar := fmt.Sprintf(`
        mov   r5, #%[1]d      ; &img
        mov   r6, #%[2]d      ; &ref
        mov   r2, #%[8]d      ; &norm
        mov   r9, #3
        mov   r0, #0
l0:     ldr   r3, [r5], #4
        ldr   r4, [r6], #4
        mul   r3, r3, r9
        add   r3, r3, r4
        asr   r3, r3, #2
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #%[6]d
        blt   l0
        mov   r5, #%[8]d      ; &norm
        mov   r6, #%[2]d      ; &ref
        mov   r2, #%[3]d      ; &t
        mov   r0, #0
l1:     ldr   r3, [r5], #4
        ldr   r4, [r6], #4
        bl    sqdiff          ; r3 = (r3-r4)² — a function loop (Fig. 16)
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #%[6]d
        blt   l1
        b     after1
sqdiff: sub   r3, r3, r4
        mul   r3, r3, r3
        bx    lr
after1: mov   r5, #%[3]d      ; &t
        mov   r2, #%[4]d      ; &edge
        mov   r0, #0
l2:     ldr   r3, [r5, r0, lsl #2]
        cmp   r3, #%[7]d
        ble   lz
        mov   r6, #1
        str   r6, [r2, r0, lsl #2]
        b     l2e
lz:     mov   r6, #0
        str   r6, [r2, r0, lsl #2]
l2e:    add   r0, r0, #1
        cmp   r0, #%[6]d
        blt   l2
        mov   r5, #%[4]d      ; &edge
        mov   r7, #0          ; count (carried scalar)
        mov   r0, #0
l3:     ldr   r3, [r5], #4
        add   r7, r7, r3
        add   r0, r0, #1
        cmp   r0, #%[6]d
        blt   l3
        mov   r6, #%[5]d
        str   r7, [r6]
        halt
`, AddrInA, AddrInB, AddrTmp1, AddrOut, AddrOut2, susanN, susanT, AddrTmp2)

	// Hand: loops 0 and 1 through library passes; loops 2 and 3 stay
	// scalar (the library has no conditional primitive).
	hand := fmt.Sprintf(`
        mov   r0, #%[8]d      ; norm = img * 3
        mov   r1, #%[1]d
        mov   r3, #%[6]d
        mov   r5, #3
        bl    vlib_mulc_w
        mov   r0, #%[8]d      ; norm += ref
        mov   r1, #%[8]d
        mov   r2, #%[2]d
        mov   r3, #%[6]d
        bl    vlib_add_w
        mov   r0, #%[8]d      ; norm >>= 2
        mov   r1, #%[8]d
        mov   r3, #%[6]d
        bl    vlib_shr2_w
        mov   r0, #%[3]d      ; t = norm - ref
        mov   r1, #%[8]d
        mov   r2, #%[2]d
        mov   r3, #%[6]d
        bl    vlib_sub_w
        mov   r0, #%[3]d      ; t = t * t
        mov   r1, #%[3]d
        mov   r2, #%[3]d
        mov   r3, #%[6]d
        bl    vlib_mul_w
        mov   r5, #%[3]d
        mov   r2, #%[4]d
        mov   r0, #0
hl2:    ldr   r3, [r5, r0, lsl #2]
        cmp   r3, #%[7]d
        ble   hlz
        mov   r6, #1
        str   r6, [r2, r0, lsl #2]
        b     hl2e
hlz:    mov   r6, #0
        str   r6, [r2, r0, lsl #2]
hl2e:   add   r0, r0, #1
        cmp   r0, #%[6]d
        blt   hl2
        mov   r5, #%[4]d
        mov   r7, #0
        mov   r0, #0
hl3:    ldr   r3, [r5], #4
        add   r7, r7, r3
        add   r0, r0, #1
        cmp   r0, #%[6]d
        blt   hl3
        mov   r6, #%[5]d
        str   r7, [r6]
        halt
`, AddrInA, AddrInB, AddrTmp1, AddrOut, AddrOut2, susanN, susanT, AddrTmp2) + vlib

	rnd := newRNG(23)
	img := rnd.int32s(susanN, 256)
	ref := rnd.int32s(susanN, 256)
	edge := make([]int32, susanN)
	var count int32
	for i := 0; i < susanN; i++ {
		norm := (3*img[i] + ref[i]) >> 2
		d := norm - ref[i]
		if d*d > susanT {
			edge[i] = 1
			count++
		}
	}

	return &Workload{
		Name:         name,
		Description:  "Susan Edges kernel: normalization, function-loop difference, conditional threshold, edge count",
		DLP:          DLPMedium,
		NoAlias:      true,
		DynamicLoops: true,
		Scalar:       func() *armlite.Program { return asm.MustAssemble(name, scalar) },
		Hand:         func() *armlite.Program { return asm.MustAssemble(name+"_hand", hand) },
		Setup: func(m *cpu.Machine) {
			m.Mem.WriteWords(AddrInA, img)
			m.Mem.WriteWords(AddrInB, ref)
		},
		Check: func(m *cpu.Machine) error {
			if err := checkWords(m, AddrOut, edge, name+" edges"); err != nil {
				return err
			}
			return checkWords(m, AddrOut2, []int32{count}, name+" count")
		},
	}
}
