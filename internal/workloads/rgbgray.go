package workloads

import (
	"fmt"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
)

// rgbGrayN is the pixel count (a 32×64 frame, sized so the working
// set of all planes fits the 64 KB L1 like the paper's frames do).
const rgbGrayN = 2048

// RGBGray is the OpenCV-style RGB→grayscale conversion over planar
// int32 channels: gray = (77·r + 151·g + 28·b) >> 8. One high-DLP
// count loop; the hand variant needs six library passes where the DSA
// fuses everything into one.
func RGBGray() *Workload {
	const name = "rgb_gray"
	scalar := fmt.Sprintf(`
        mov   r5, #%d         ; &r
        mov   r6, #%d         ; &g
        mov   r8, #%d         ; &b
        mov   r2, #%d         ; &gray
        mov   r9, #77
        mov   r10, #151
        mov   r11, #28
        mov   r0, #0
loop:   ldr   r3, [r5], #4
        ldr   r4, [r6], #4
        ldr   r7, [r8], #4
        mul   r3, r3, r9
        mul   r4, r4, r10
        mul   r7, r7, r11
        add   r3, r3, r4
        add   r3, r3, r7
        asr   r3, r3, #8
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #%d
        blt   loop
        halt
`, AddrInA, AddrInB, AddrInC, AddrOut, rgbGrayN)

	// Hand: six whole-array library passes with two temporaries.
	hand := fmt.Sprintf(`
        mov   r0, #%[1]d       ; t1 = r * 77
        mov   r1, #%[4]d
        mov   r3, #%[7]d
        mov   r5, #77
        bl    vlib_mulc_w
        mov   r0, #%[2]d       ; t2 = g * 151
        mov   r1, #%[5]d
        mov   r3, #%[7]d
        mov   r5, #151
        bl    vlib_mulc_w
        mov   r0, #%[1]d       ; t1 = t1 + t2
        mov   r1, #%[1]d
        mov   r2, #%[2]d
        mov   r3, #%[7]d
        bl    vlib_add_w
        mov   r0, #%[2]d       ; t2 = b * 28
        mov   r1, #%[6]d
        mov   r3, #%[7]d
        mov   r5, #28
        bl    vlib_mulc_w
        mov   r0, #%[1]d       ; t1 = t1 + t2
        mov   r1, #%[1]d
        mov   r2, #%[2]d
        mov   r3, #%[7]d
        bl    vlib_add_w
        mov   r0, #%[3]d       ; gray = t1 >> 8
        mov   r1, #%[1]d
        mov   r3, #%[7]d
        bl    vlib_shr8_w
        halt
`, AddrTmp1, AddrTmp2, AddrOut, AddrInA, AddrInB, AddrInC, rgbGrayN) + vlib

	rnd := newRNG(7)
	r := rnd.int32s(rgbGrayN, 256)
	g := rnd.int32s(rgbGrayN, 256)
	b := rnd.int32s(rgbGrayN, 256)
	want := make([]int32, rgbGrayN)
	for i := range want {
		want[i] = (77*r[i] + 151*g[i] + 28*b[i]) >> 8
	}

	return &Workload{
		Name:        name,
		Description: "planar RGB→grayscale conversion (OpenCV kernel), 4096 pixels",
		DLP:         DLPHigh,
		NoAlias:     true,
		Scalar:      func() *armlite.Program { return asm.MustAssemble(name, scalar) },
		Hand:        func() *armlite.Program { return asm.MustAssemble(name+"_hand", hand) },
		Setup: func(m *cpu.Machine) {
			m.Mem.WriteWords(AddrInA, r)
			m.Mem.WriteWords(AddrInB, g)
			m.Mem.WriteWords(AddrInC, b)
		},
		Check: func(m *cpu.Machine) error {
			return checkWords(m, AddrOut, want, name)
		},
	}
}
