package workloads

import (
	"fmt"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
)

// StrPrep is the sentinel-loop workload: Caesar-shift a batch of
// zero-terminated strings of unknown, varying lengths. Each string is
// a sentinel loop (dissertation §4.6.5): the stop condition is the
// terminator loaded inside the body. The extended DSA vectorizes it
// speculatively, learning the range across strings; the hand-coded
// library version must first run strlen and then a vector pass (two
// traversals); the static compiler cannot touch it at all.
func StrPrep() *Workload {
	const name = "str_prep"
	const nStrings = 40

	scalar := fmt.Sprintf(`
        mov   r10, #%[1]d
        ldr   r9, [r10]       ; number of strings
        mov   r5, #%[2]d      ; src cursor
        mov   r2, #%[3]d      ; dst cursor
        mov   r8, #0
sloop:
inner:  ldrb  r3, [r5], #1
        cmp   r3, #0
        beq   iend
        add   r4, r3, #3      ; Caesar shift
        strb  r4, [r2], #1
        b     inner
iend:   strb  r3, [r2], #1    ; copy terminator
        add   r8, r8, #1
        cmp   r8, r9
        blt   sloop
        halt
`, AddrParams, AddrInA, AddrOut)

	hand := fmt.Sprintf(`
        mov   r10, #%[1]d
        ldr   r9, [r10]
        mov   r7, #%[2]d      ; src base
        mov   r8, #%[3]d      ; dst base
        mov   r11, #0
hsl:    mov   r1, r7
        bl    vlib_strlen     ; r3 = len (first pass)
        mov   r12, r3
        mov   r0, r8
        mov   r1, r7
        mov   r5, #3
        bl    vlib_addc_b     ; second pass: dst = src + 3
        mov   r4, #0
        strb  r4, [r0]
        add   r12, r12, #1
        add   r7, r7, r12
        add   r8, r8, r12
        add   r11, r11, #1
        cmp   r11, r9
        blt   hsl
        halt
`, AddrParams, AddrInA, AddrOut) + vlib

	rnd := newRNG(91)
	var src []byte
	for s := 0; s < nStrings; s++ {
		n := 8 + rnd.intn(113)
		for i := 0; i < n; i++ {
			src = append(src, byte(1+rnd.intn(100)))
		}
		src = append(src, 0)
	}
	want := make([]byte, len(src))
	for i, c := range src {
		if c != 0 {
			want[i] = c + 3
		}
	}

	return &Workload{
		Name:         name,
		Description:  "Caesar-shift over 40 zero-terminated strings (sentinel loops)",
		DLP:          DLPMedium,
		NoAlias:      true,
		DynamicLoops: true,
		Scalar:       func() *armlite.Program { return asm.MustAssemble(name, scalar) },
		Hand:         func() *armlite.Program { return asm.MustAssemble(name+"_hand", hand) },
		Setup: func(m *cpu.Machine) {
			m.Mem.WriteWords(AddrParams, []int32{nStrings})
			m.Mem.WriteBytes(AddrInA, src)
		},
		Check: func(m *cpu.Machine) error {
			return checkBytes(m, AddrOut, want, name)
		},
	}
}
