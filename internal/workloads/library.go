package workloads

// vlib is the modelled ARM NEON vector library the hand-vectorized
// variants call: whole-array primitives invoked through BL, each
// streaming its operands through memory. The calling convention is
//
//	r0 = destination, r1 = source A, r2 = source B,
//	r3 = element count, r5 = scalar operand
//	clobbers: r0-r4, r6, q0-q2
//
// This is the dissertation's "hand-vectorized code using ARM library"
// baseline: every operation is a separate pass, so multi-operation
// kernels pay intermediate loads/stores and call overhead the DSA's
// fused SIMD generation avoids — the source of the paper's 26 %
// DSA-over-hand result.
const vlib = `
; --- dst[i] = a[i] + b[i] (words) --------------------------------
vlib_add_w:
        cmp   r3, #4
        blt   vaw_tail
vaw_vec:
        vld1.32 q0, [r1]!
        vld1.32 q1, [r2]!
        vadd.i32 q2, q0, q1
        vst1.32 q2, [r0]!
        sub   r3, r3, #4
        cmp   r3, #4
        bge   vaw_vec
vaw_tail:
        cmp   r3, #0
        ble   vaw_done
vaw_t:  ldr   r4, [r1], #4
        ldr   r6, [r2], #4
        add   r4, r4, r6
        str   r4, [r0], #4
        subs  r3, r3, #1
        bne   vaw_t
vaw_done:
        bx    lr

; --- dst[i] = a[i] * scalar (words) ------------------------------
vlib_mulc_w:
        vdup.32 q0, r5
        cmp   r3, #4
        blt   vmw_tail
vmw_vec:
        vld1.32 q1, [r1]!
        vmul.i32 q2, q1, q0
        vst1.32 q2, [r0]!
        sub   r3, r3, #4
        cmp   r3, #4
        bge   vmw_vec
vmw_tail:
        cmp   r3, #0
        ble   vmw_done
vmw_t:  ldr   r4, [r1], #4
        mul   r4, r4, r5
        str   r4, [r0], #4
        subs  r3, r3, #1
        bne   vmw_t
vmw_done:
        bx    lr

; --- dst[i] = a[i] >> 8 (arithmetic, words) ----------------------
vlib_shr8_w:
        cmp   r3, #4
        blt   vs8_tail
vs8_vec:
        vld1.32 q0, [r1]!
        vshr.i32 q1, q0, #8
        vst1.32 q1, [r0]!
        sub   r3, r3, #4
        cmp   r3, #4
        bge   vs8_vec
vs8_tail:
        cmp   r3, #0
        ble   vs8_done
vs8_t:  ldr   r4, [r1], #4
        asr   r4, r4, #8
        str   r4, [r0], #4
        subs  r3, r3, #1
        bne   vs8_t
vs8_done:
        bx    lr

; --- dst[i] = a[i] >> 2 (arithmetic, words) ----------------------
vlib_shr2_w:
        cmp   r3, #4
        blt   vs2_tail
vs2_vec:
        vld1.32 q0, [r1]!
        vshr.i32 q1, q0, #2
        vst1.32 q1, [r0]!
        sub   r3, r3, #4
        cmp   r3, #4
        bge   vs2_vec
vs2_tail:
        cmp   r3, #0
        ble   vs2_done
vs2_t:  ldr   r4, [r1], #4
        asr   r4, r4, #2
        str   r4, [r0], #4
        subs  r3, r3, #1
        bne   vs2_t
vs2_done:
        bx    lr

; --- dst[i] += a[i] * scalar (words; the BLAS-ish saxpy) ----------
vlib_saxpy_w:
        vdup.32 q0, r5
        cmp   r3, #4
        blt   vsx_tail
vsx_vec:
        vld1.32 q1, [r1]!
        vld1.32 q2, [r0]
        vmul.i32 q1, q1, q0
        vadd.i32 q2, q2, q1
        vst1.32 q2, [r0]!
        sub   r3, r3, #4
        cmp   r3, #4
        bge   vsx_vec
vsx_tail:
        cmp   r3, #0
        ble   vsx_done
vsx_t:  ldr   r4, [r1], #4
        mul   r4, r4, r5
        ldr   r6, [r0]
        add   r6, r6, r4
        str   r6, [r0], #4
        subs  r3, r3, #1
        bne   vsx_t
vsx_done:
        bx    lr

; --- dst[i] = a[i] - b[i] (words) --------------------------------
vlib_sub_w:
        cmp   r3, #4
        blt   vsw_tail
vsw_vec:
        vld1.32 q0, [r1]!
        vld1.32 q1, [r2]!
        vsub.i32 q2, q0, q1
        vst1.32 q2, [r0]!
        sub   r3, r3, #4
        cmp   r3, #4
        bge   vsw_vec
vsw_tail:
        cmp   r3, #0
        ble   vsw_done
vsw_t:  ldr   r4, [r1], #4
        ldr   r6, [r2], #4
        sub   r4, r4, r6
        str   r4, [r0], #4
        subs  r3, r3, #1
        bne   vsw_t
vsw_done:
        bx    lr

; --- dst[i] = a[i] * b[i] (words) --------------------------------
vlib_mul_w:
        cmp   r3, #4
        blt   vmulw_tail
vmulw_vec:
        vld1.32 q0, [r1]!
        vld1.32 q1, [r2]!
        vmul.i32 q2, q0, q1
        vst1.32 q2, [r0]!
        sub   r3, r3, #4
        cmp   r3, #4
        bge   vmulw_vec
vmulw_tail:
        cmp   r3, #0
        ble   vmulw_done
vmulw_t:
        ldr   r4, [r1], #4
        ldr   r6, [r2], #4
        mul   r4, r4, r6
        str   r4, [r0], #4
        subs  r3, r3, #1
        bne   vmulw_t
vmulw_done:
        bx    lr

; --- dst[i] = a[i] + scalar (bytes) -------------------------------
vlib_addc_b:
        vdup.8 q0, r5
        cmp   r3, #16
        blt   vab_tail
vab_vec:
        vld1.8 q1, [r1]!
        vadd.i8 q2, q1, q0
        vst1.8 q2, [r0]!
        sub   r3, r3, #16
        cmp   r3, #16
        bge   vab_vec
vab_tail:
        cmp   r3, #0
        ble   vab_done
vab_t:  ldrb  r4, [r1], #1
        add   r4, r4, r5
        strb  r4, [r0], #1
        subs  r3, r3, #1
        bne   vab_t
vab_done:
        bx    lr

; --- r3 := strlen(r1) (scalar sentinel scan; r1 preserved base in r0)
vlib_strlen:
        mov   r3, #0
vsl_l:  ldrb  r4, [r1], #1
        cmp   r4, #0
        beq   vsl_done
        add   r3, r3, #1
        b     vsl_l
vsl_done:
        bx    lr
`
