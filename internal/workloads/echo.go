package workloads

import (
	"fmt"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
)

// echoN is the sample count and echoLag the feedback distance.
const (
	echoN   = 2048
	echoLag = 8
)

// Echo is the supplementary partial-vectorization workload (§4.5, not
// part of the articles' suites): a feedback echo filter
// y[i] = x[i] + y[i-8]. The cross-iteration dependency at distance 8
// inhibits every static vectorizer outright, while the DSA's CIDP
// measures the distance and vectorizes in 8-iteration windows.
func Echo() *Workload {
	const name = "echo"
	scalar := fmt.Sprintf(`
        mov   r5, #%[1]d      ; x cursor
        mov   r6, #%[2]d      ; y[i-lag] cursor
        mov   r2, #%[3]d      ; y[i] cursor
        mov   r0, #0
loop:   ldr   r3, [r5], #4
        ldr   r4, [r6], #4
        add   r3, r3, r4
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #%[4]d
        blt   loop
        halt
`, AddrInA, AddrOut, AddrOut+4*echoLag, echoN)

	rnd := newRNG(101)
	x := rnd.int32s(echoN, 1000)
	// y[0..lag) is the pre-seeded tail; y[lag+i] = x[i] + y[i].
	y := make([]int32, echoN+echoLag)
	for i := 0; i < echoLag; i++ {
		y[i] = int32(10 * (i + 1))
	}
	for i := 0; i < echoN; i++ {
		y[echoLag+i] = x[i] + y[i]
	}

	return &Workload{
		Name:         name,
		Description:  "feedback echo filter y[i] = x[i] + y[i-8] (partial vectorization, §4.5)",
		DLP:          DLPMedium,
		NoAlias:      false, // the streams genuinely alias
		DynamicLoops: true,
		Scalar:       func() *armlite.Program { return asm.MustAssemble(name, scalar) },
		Hand:         nil, // the library has no windowed-dependency primitive
		Setup: func(m *cpu.Machine) {
			m.Mem.WriteWords(AddrInA, x)
			m.Mem.WriteWords(AddrOut, y[:echoLag])
		},
		Check: func(m *cpu.Machine) error {
			return checkWords(m, AddrOut, y, name)
		},
	}
}
