// Package workloads provides the benchmark suite of the dissertation's
// evaluation — armlite reimplementations of the MiBench and OpenCV
// kernels the articles measure (MM, RGB→Gray, Gaussian filter, Susan
// Edges, QSort, Dijkstra, BitCount) plus the sentinel string workload
// the extended DSA covers. Every workload carries:
//
//   - a scalar program (the "ARM Original Execution" binary, which is
//     also what the DSA observes and the auto-vectorizer compiles);
//   - optionally a hand-vectorized program modelling the ARM NEON
//     library approach (whole-array vector primitives called through
//     BL, paying call overhead and memory passes between operations);
//   - deterministic input generation and a Go-side reference check, so
//     every execution mode is verified for bit-exact correctness.
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/armlite"
	"repro/internal/cpu"
)

// Memory map shared by all workloads.
const (
	AddrInA    = 0x010000
	AddrInB    = 0x020000
	AddrInC    = 0x030000
	AddrOut    = 0x040000
	AddrOut2   = 0x050000
	AddrTmp1   = 0x060000
	AddrTmp2   = 0x068000
	AddrParams = 0x008000 // runtime parameters (dynamic ranges etc.)
	AddrStack  = 0x100000 // explicit stacks (qsort)
)

// DLPLevel documents the data-level-parallelism opportunity class the
// articles assign to each benchmark.
type DLPLevel string

// DLP classes.
const (
	DLPHigh   DLPLevel = "high"
	DLPMedium DLPLevel = "medium"
	DLPLow    DLPLevel = "low"
)

// Workload is one benchmark.
type Workload struct {
	Name        string
	Description string
	DLP         DLPLevel
	// NoAlias marks kernels whose scalar source carries restrict
	// semantics for the static compiler.
	NoAlias bool
	// DynamicLoops marks benchmarks whose gains need the extended DSA
	// (conditional / sentinel / dynamic-range loops).
	DynamicLoops bool

	// Scalar builds the baseline program.
	Scalar func() *armlite.Program
	// Hand builds the NEON-library hand-vectorized program (nil: no
	// hand version exists; the library does not fit the algorithm).
	Hand func() *armlite.Program
	// Setup initializes machine memory (deterministic inputs).
	Setup func(*cpu.Machine)
	// Check verifies the outputs against the Go reference.
	Check func(*cpu.Machine) error
}

// All returns the full suite in the articles' presentation order,
// plus the supplementary partial-vectorization workload.
func All() []*Workload {
	return append(Canonical(), Echo())
}

// Canonical returns the benchmarks of the articles' figures.
func Canonical() []*Workload {
	return []*Workload{
		MM(32),
		MM(64),
		RGBGray(),
		Gaussian(),
		SusanE(),
		QSort(),
		Dijkstra(),
		BitCount(),
		StrPrep(),
	}
}

// ByName finds a workload.
func ByName(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names lists every workload name.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name)
	}
	return out
}

// --- deterministic input generation ---------------------------------

// rng is a small xorshift PRNG so inputs are identical everywhere.
type rng uint64

func newRNG(seed uint64) *rng {
	r := rng(seed*2654435761 + 1)
	return &r
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return x
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

func (r *rng) int32s(n, lim int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.intn(lim))
	}
	return out
}

// --- check helpers ---------------------------------------------------

func checkWords(m *cpu.Machine, addr uint32, want []int32, what string) error {
	got, err := m.Mem.ReadWords(addr, len(want))
	if err != nil {
		return err
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s: word %d = %d, want %d", what, i, got[i], want[i])
		}
	}
	return nil
}

func checkBytes(m *cpu.Machine, addr uint32, want []byte, what string) error {
	got, err := m.Mem.ReadBytes(addr, len(want))
	if err != nil {
		return err
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s: byte %d = %d, want %d", what, i, got[i], want[i])
		}
	}
	return nil
}

func sortedCopy(v []int32) []int32 {
	out := append([]int32(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
