package workloads

import (
	"fmt"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
)

// MM is the MiBench-style integer matrix multiply, in the ikj form
// compilers (and the DSA) vectorize: the innermost j-loop performs
// c[i][j] += a[i][k] * b[k][j] over contiguous rows with a broadcast
// a[i][k]. Article 1/3 evaluate 32×32 and 64×64.
func MM(n int) *Workload {
	name := fmt.Sprintf("mm_%dx%d", n, n)
	rowBytes := n * 4

	scalar := fmt.Sprintf(`
        mov   r5, #%d         ; &a[0][0]
        mov   r7, #%d         ; &c[0][0]
        mov   r0, #0          ; i
iloop:  mov   r6, #%d         ; &b[0][0]
        mov   r1, #0          ; k
kloop:  ldr   r9, [r5], #4    ; aik
        mov   r2, #0          ; j
jloop:  ldr   r3, [r6, r2, lsl #2]   ; b[k][j]
        ldr   r4, [r7, r2, lsl #2]   ; c[i][j]
        mla   r4, r3, r9, r4
        str   r4, [r7, r2, lsl #2]
        add   r2, r2, #1
        cmp   r2, #%d
        blt   jloop
        add   r6, r6, #%d     ; next b row
        add   r1, r1, #1
        cmp   r1, #%d
        blt   kloop
        add   r7, r7, #%d     ; next c row
        add   r0, r0, #1
        cmp   r0, #%d
        blt   iloop
        halt
`, AddrInA, AddrOut, AddrInB, n, rowBytes, n, rowBytes, n)

	hand := fmt.Sprintf(`
        mov   r8, #%d         ; a cursor
        mov   r7, #%d         ; c row
        mov   r9, #0          ; i
hiloop: mov   r10, #%d        ; b row
        mov   r11, #0         ; k
hkloop: ldr   r5, [r8], #4    ; aik (scalar arg)
        mov   r0, r7
        mov   r1, r10
        mov   r3, #%d
        bl    vlib_saxpy_w
        add   r10, r10, #%d
        add   r11, r11, #1
        cmp   r11, #%d
        blt   hkloop
        add   r7, r7, #%d
        add   r9, r9, #1
        cmp   r9, #%d
        blt   hiloop
        halt
`, AddrInA, AddrOut, AddrInB, n, rowBytes, n, rowBytes, n) + vlib

	r := newRNG(uint64(n))
	a := r.int32s(n*n, 100)
	b := r.int32s(n*n, 100)
	want := make([]int32, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			for j := 0; j < n; j++ {
				want[i*n+j] += aik * b[k*n+j]
			}
		}
	}

	return &Workload{
		Name:        name,
		Description: fmt.Sprintf("%d×%d integer matrix multiply (ikj, MiBench-style)", n, n),
		DLP:         DLPHigh,
		NoAlias:     true,
		Scalar:      func() *armlite.Program { return asm.MustAssemble(name, scalar) },
		Hand:        func() *armlite.Program { return asm.MustAssemble(name+"_hand", hand) },
		Setup: func(m *cpu.Machine) {
			m.Mem.WriteWords(AddrInA, a)
			m.Mem.WriteWords(AddrInB, b)
			m.Mem.WriteWords(AddrOut, make([]int32, n*n))
		},
		Check: func(m *cpu.Machine) error {
			return checkWords(m, AddrOut, want, name)
		},
	}
}
