package workloads

import (
	"fmt"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
)

// dijkstra parameters: a dense 64-node graph.
const (
	dijkV   = 64
	dijkBig = 1 << 28
)

// Dijkstra is the MiBench shortest-path benchmark. Its relaxation
// loop — "if dist[u]+w < dist[v] then update" — is a conditional loop
// only the extended DSA vectorizes; the arg-min scan carries scalar
// state and stays sequential everywhere. A fixed 6-element scratch
// copy inside the main loop is small enough that the static compiler
// vectorizes it at a loss while the DSA's profitability guard skips
// it (the paper's Dijkstra auto-vectorization penalty).
func Dijkstra() *Workload {
	const name = "dijkstra"
	scalar := fmt.Sprintf(`
        mov   r7, #%[2]d      ; &dist
        mov   r6, #%[6]d      ; BIG
        mov   r0, #0
dinit:  str   r6, [r7, r0, lsl #2]
        add   r0, r0, #1
        cmp   r0, #%[5]d
        blt   dinit
        mov   r6, #0
        str   r6, [r7]        ; dist[src=0] = 0
        mov   r0, #0          ; main iteration counter
vloop:  ; ---- arg-min over unvisited (scalar) ----
        mov   r2, #0
        mov   r9, #%[6]d      ; best
        mov   r10, #0         ; best index
        mov   r12, #%[3]d     ; &visited
minl:   ldr   r3, [r12, r2, lsl #2]
        cmp   r3, #0
        bne   mskip
        ldr   r4, [r7, r2, lsl #2]
        cmp   r4, r9
        bge   mskip
        mov   r9, r4
        mov   r10, r2
mskip:  add   r2, r2, #1
        cmp   r2, #%[5]d
        blt   minl
        ; visited[u] = 1
        mov   r3, #1
        str   r3, [r12, r10, lsl #2]
        ; r8 = &w[u][0] = base + u*V*4
        lsl   r8, r10, #8
        add   r8, r8, #%[1]d
        ; ---- scratch path copy (fixed trip 6) ----
        mov   r2, #0
        mov   r11, #%[4]d
pref:   ldr   r3, [r8, r2, lsl #2]
        str   r3, [r11, r2, lsl #2]
        add   r2, r2, #1
        cmp   r2, #6
        blt   pref
        ; ---- relaxation (conditional loop) ----
        mov   r2, #0
relax:  ldr   r3, [r8, r2, lsl #2]   ; w[u][v]
        add   r3, r3, r9             ; nd = dist[u] + w
        ldr   r4, [r7, r2, lsl #2]   ; dist[v]
        cmp   r3, r4
        bge   rend
        str   r3, [r7, r2, lsl #2]
rend:   add   r2, r2, #1
        cmp   r2, #%[5]d
        blt   relax
        add   r0, r0, #1
        cmp   r0, #%[5]d
        blt   vloop
        halt
`, AddrInA, AddrOut, AddrTmp2, AddrTmp1, dijkV, dijkBig)

	rnd := newRNG(57)
	w := make([]int32, dijkV*dijkV)
	for i := range w {
		w[i] = int32(1 + rnd.intn(99))
	}
	// Go reference (same algorithm: relax every node incl. visited —
	// harmless with non-negative weights).
	dist := make([]int32, dijkV)
	visited := make([]bool, dijkV)
	for i := range dist {
		dist[i] = dijkBig
	}
	dist[0] = 0
	for it := 0; it < dijkV; it++ {
		best, bu := int32(dijkBig), 0
		for v := 0; v < dijkV; v++ {
			if !visited[v] && dist[v] < best {
				best, bu = dist[v], v
			}
		}
		visited[bu] = true
		for v := 0; v < dijkV; v++ {
			nd := best + w[bu*dijkV+v]
			if nd < dist[v] {
				dist[v] = nd
			}
		}
	}

	return &Workload{
		Name:         name,
		Description:  "Dijkstra shortest paths over a dense 64-node graph (MiBench)",
		DLP:          DLPLow,
		NoAlias:      true,
		DynamicLoops: true,
		Scalar:       func() *armlite.Program { return asm.MustAssemble(name, scalar) },
		Hand:         nil, // branchy relaxation does not fit the library
		Setup: func(m *cpu.Machine) {
			m.Mem.WriteWords(AddrInA, w)
			m.Mem.WriteWords(AddrTmp2, make([]int32, dijkV))
		},
		Check: func(m *cpu.Machine) error {
			return checkWords(m, AddrOut, dist, name)
		},
	}
}
