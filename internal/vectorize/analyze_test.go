package vectorize

import (
	"strings"
	"testing"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
)

func TestResolveConst(t *testing.T) {
	p := asm.MustAssemble("rc", `
        mov   r0, #100
        add   r1, r0, #28
        lsl   r2, r1, #2
        sub   r3, r2, #12
        halt
`)
	cases := []struct {
		reg  armlite.Reg
		at   int
		want int64
		ok   bool
	}{
		{armlite.R0, 4, 100, true},
		{armlite.R1, 4, 128, true},
		{armlite.R2, 4, 512, true},
		{armlite.R3, 4, 500, true},
		{armlite.R4, 4, 0, false}, // never defined
	}
	for _, c := range cases {
		got, ok := resolveConst(p, c.reg, c.at, 0)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("resolveConst(%v) = %d,%v want %d,%v", c.reg, got, ok, c.want, c.ok)
		}
	}
}

func TestResolveConstBranchBypass(t *testing.T) {
	// A branch can land between the definition and the use: the value
	// is no longer a unique compile-time constant.
	p := asm.MustAssemble("rb", `
        cmp   r9, #0
        beq   skip
        mov   r0, #1
skip:   mov   r1, #2
        add   r1, r1, r0
        halt
`)
	if _, ok := resolveConst(p, armlite.R0, 4, 0); ok {
		t.Error("bypassable definition must not resolve")
	}
	// r1's def at `skip` is below every branch target → resolvable.
	if v, ok := resolveConst(p, armlite.R1, 4, 0); !ok || v != 2 {
		t.Errorf("r1 = %d,%v", v, ok)
	}
}

func TestFreeRegisters(t *testing.T) {
	p := asm.MustAssemble("fr", `
        mov   r0, #1
        add   r1, r0, #2
        ldr   r2, [r1]
        halt
`)
	free := freeRegisters(p)
	for _, r := range free {
		if r == armlite.R0 || r == armlite.R1 || r == armlite.R2 ||
			r == armlite.SP || r == armlite.LR || r == armlite.PC {
			t.Errorf("register %v should not be free", r)
		}
	}
	if len(free) != 10 { // r3..r12
		t.Errorf("free count = %d (%v)", len(free), free)
	}
}

func TestGuardsEmittedForUnknownBases(t *testing.T) {
	// Base arrives in a register: versioning guards (tst/bne) must
	// appear in the compiled preamble.
	src := `
        mov   r0, #0
        lsl   r5, r9, #4
        add   r5, r5, #0x1000
        mov   r2, #0x3000
loop:   ldr   r3, [r5], #4
        add   r3, r3, #1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #32
        blt   loop
        halt
`
	p := asm.MustAssemble("g", src)
	out, rep, err := AutoVectorize(p, Options{NoAlias: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.VectorizedCount() != 1 {
		t.Fatalf("report: %+v", rep)
	}
	text := out.String()
	if !strings.Contains(text, "tst") {
		t.Errorf("no alignment guard emitted:\n%s", text)
	}
	// Constant bases: no guards.
	src2 := strings.Replace(src, "lsl   r5, r9, #4\n        add   r5, r5, #0x1000", "mov   r5, #0x1000", 1)
	p2 := asm.MustAssemble("g2", src2)
	out2, rep2, err := AutoVectorize(p2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.VectorizedCount() != 1 {
		t.Fatalf("report2: %+v", rep2)
	}
	if strings.Contains(out2.String(), "tst") {
		t.Errorf("guard emitted for statically known bases:\n%s", out2.String())
	}
}

func TestMisalignedBailsToScalar(t *testing.T) {
	// The runtime base is misaligned: the guard must route every entry
	// to the scalar loop, and results stay correct.
	src := `
        mov   r0, #0
        lsl   r5, r9, #2
        add   r5, r5, #0x1000
        mov   r2, #0x3000
loop:   ldr   r3, [r5], #4
        add   r3, r3, #1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #32
        blt   loop
        halt
`
	p := asm.MustAssemble("mis", src)
	out, _, err := AutoVectorize(p, Options{NoAlias: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, m, _ := compileRunPrograms(t, p, out, func(mch regSetter) {
		mch.SetReg(armlite.R9, 1) // base 0x1004: misaligned
		seedWords(mch, 0x1000, 64)
	})
	w, _ := ref.Mem.ReadWords(0x3000, 32)
	g, _ := m.Mem.ReadWords(0x3000, 32)
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("word %d = %d, want %d", i, g[i], w[i])
		}
	}
	if m.Counts.VecOps != 0 {
		t.Error("misaligned run must bail to scalar (no NEON ops)")
	}
}

// --- small helpers for the misalignment test --------------------------

type regSetter interface {
	SetReg(r armlite.Reg, v uint32)
	WriteWords(addr uint32, vals []int32)
}

type machineSetter struct{ m *cpu.Machine }

func (s machineSetter) SetReg(r armlite.Reg, v uint32)       { s.m.R[r] = v }
func (s machineSetter) WriteWords(addr uint32, vals []int32) { s.m.Mem.WriteWords(addr, vals) }

func seedWords(s regSetter, addr uint32, n int) {
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(i * 3)
	}
	s.WriteWords(addr, vals)
}

func compileRunPrograms(t *testing.T, ref, vec *armlite.Program, setup func(regSetter)) (*cpu.Machine, *cpu.Machine, struct{}) {
	t.Helper()
	a := cpu.MustNew(ref, cpu.DefaultConfig())
	setup(machineSetter{a})
	if err := a.Run(nil); err != nil {
		t.Fatal(err)
	}
	b := cpu.MustNew(vec, cpu.DefaultConfig())
	setup(machineSetter{b})
	if err := b.Run(nil); err != nil {
		t.Fatal(err)
	}
	return a, b, struct{}{}
}
